// Ablation: cost of the entangled-query coordination search (grounding
// excluded) as the query set grows — pairs, spoke-hubs, cycles, and the
// number of groundings per query. Justifies the arc-consistency + component
// decomposition design in DESIGN.md.

#include <benchmark/benchmark.h>

#include "src/eq/coordinator.h"

namespace youtopia::bench {
namespace {

using eq::Coordinator;
using eq::EntangledQuerySpec;
using eq::EvalItem;
using eq::Grounding;
using eq::Term;

EntangledQuerySpec PairSpec(int i, int partner, int side) {
  EntangledQuerySpec q;
  q.label = "q" + std::to_string(i);
  q.head = {{"R", {Term::Const(Value::Int(i * 2 + side))}}};
  q.post = {{"R", {Term::Const(Value::Int(partner * 2 + (1 - side)))}}};
  return q;
}

/// n/2 disjoint pairs, g groundings per query (only one matches).
void BM_SolvePairs(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int g = static_cast<int>(state.range(1));
  std::vector<EntangledQuerySpec> specs;
  specs.reserve(n);
  for (int i = 0; i < n / 2; ++i) {
    specs.push_back(PairSpec(i, i, 0));
    specs.push_back(PairSpec(i, i, 1));
  }
  std::vector<EvalItem> items(n);
  for (int i = 0; i < n; ++i) {
    items[i].spec = &specs[i];
    items[i].txn = i + 1;
    for (int j = 0; j < g; ++j) {
      Grounding gr;
      if (j == 0) {
        gr.heads = {{"R", Row({specs[i].head[0].terms[0].constant})}};
        gr.posts = {{"R", Row({specs[i].post[0].terms[0].constant})}};
      } else {
        // Decoys that can never be satisfied.
        gr.heads = {{"R", Row({Value::Int(1000000 + i * 100 + j)})}};
        gr.posts = {{"R", Row({Value::Int(2000000 + i * 100 + j)})}};
      }
      items[i].groundings.push_back(std::move(gr));
    }
  }
  size_t answered = 0;
  for (auto _ : state) {
    auto result = Coordinator::Evaluate(items, 1);
    answered = 0;
    for (const auto& o : result.outcomes) {
      if (o.kind == eq::OutcomeKind::kAnswered) ++answered;
    }
    benchmark::DoNotOptimize(result);
  }
  state.counters["answered"] = static_cast<double>(answered);
}
BENCHMARK(BM_SolvePairs)
    ->ArgsProduct({{2, 20, 100, 200}, {1, 4, 16}})
    ->Unit(benchmark::kMicrosecond);

/// One ring of size k (single entanglement op of k members).
void BM_SolveCycle(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  std::vector<EntangledQuerySpec> specs(k);
  std::vector<EvalItem> items(k);
  for (int i = 0; i < k; ++i) {
    specs[i].head = {{"C", {Term::Const(Value::Int(i))}}};
    specs[i].post = {{"C", {Term::Const(Value::Int((i + 1) % k))}}};
    Grounding g;
    g.heads = {{"C", Row({Value::Int(i)})}};
    g.posts = {{"C", Row({Value::Int((i + 1) % k)})}};
    items[i].spec = &specs[i];
    items[i].txn = i + 1;
    items[i].groundings = {g};
  }
  for (auto _ : state) {
    auto result = Coordinator::Evaluate(items, 1);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SolveCycle)->DenseRange(2, 10, 2)->Unit(benchmark::kMicrosecond);

/// Spoke-hub of size k: the hub's queries arrive one at a time in the run,
/// but here we measure the joint evaluation of all 2(k-1) queries at once.
void BM_SolveHub(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  std::vector<EntangledQuerySpec> specs;
  std::vector<EvalItem> items;
  for (int i = 1; i < k; ++i) {
    EntangledQuerySpec hub_q;
    hub_q.head = {{"C", {Term::Const(Value::Int(i)),
                         Term::Const(Value::Str("hub"))}}};
    hub_q.post = {{"C", {Term::Const(Value::Int(i)),
                         Term::Const(Value::Str("spoke"))}}};
    EntangledQuerySpec spoke_q;
    spoke_q.head = hub_q.post;
    spoke_q.post = hub_q.head;
    specs.push_back(std::move(hub_q));
    specs.push_back(std::move(spoke_q));
  }
  items.resize(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    Grounding g;
    g.heads = {{specs[i].head[0].relation,
                Row({specs[i].head[0].terms[0].constant,
                     specs[i].head[0].terms[1].constant})}};
    g.posts = {{specs[i].post[0].relation,
                Row({specs[i].post[0].terms[0].constant,
                     specs[i].post[0].terms[1].constant})}};
    items[i].spec = &specs[i];
    items[i].txn = i + 1;
    items[i].groundings = {g};
  }
  for (auto _ : state) {
    auto result = Coordinator::Evaluate(items, 1);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SolveHub)->DenseRange(2, 10, 2)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace youtopia::bench

BENCHMARK_MAIN();
