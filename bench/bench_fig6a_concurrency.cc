// Reproduces Figure 6(a) "Concurrent transactions": total time to execute a
// fixed batch of travel-booking programs vs the number of concurrent DBMS
// connections, for the six workloads NoSocial/Social/Entangled x -T/-Q.
//
// Paper setup: 10,000 transactions, connections 10..100, MySQL middle tier;
// entangled transactions submitted so every one finds its partner within
// its batch. Here: scaled-down N with a simulated per-statement round trip
// (the paper's bottleneck is connection-bound, not CPU-bound). Expected
// shape: time inversely proportional to connections for every workload;
// Entangled-T sits marginally above NoSocial-T/Social-T, and the T-vs-Q gap
// for Entangled matches the pure entangled-query evaluation gap.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace youtopia::bench {
namespace {

constexpr size_t kTxns = 600;               // paper: 10,000
constexpr int64_t kLatencyMicros = 500;     // simulated client<->DBMS trip
constexpr size_t kBatch = 100;              // arrivals per run (all matched)

// Third arg: read-path ablation. 0 runs the generated specs as-is (their
// default kFullEntangled level, where MVCC snapshot reads are inert); 1
// re-levels every spec to kReadCommitted with snapshot reads ON (scans
// serve a versioned cut, no S locks); 2 is the same at snapshot reads OFF
// (scans back under shared locks). The 1-vs-2 gap is the fig. 6(a) delta
// attributable to readers never blocking writers.
enum class ReadMode : long { kDefault = 0, kSnapRead = 1, kLockRead = 2 };

void BM_Fig6a(benchmark::State& state) {
  auto type = static_cast<workload::WorkloadType>(state.range(0));
  size_t connections = static_cast<size_t>(state.range(1));
  auto read_mode = static_cast<ReadMode>(state.range(2));

  for (auto _ : state) {
    state.PauseTiming();
    // Small tables keep query CPU negligible next to the simulated round
    // trips (this host has few cores; the paper's bottleneck is
    // connections, not compute).
    workload::TravelDataOptions dopts;
    dopts.num_users = 300;
    dopts.edges_per_node = 3;
    dopts.num_cities = 6;
    auto stack = Stack::Create(dopts);
    if (!stack.ok()) {
      state.SkipWithError(stack.status().ToString().c_str());
      return;
    }
    etxn::EngineOptions eopts;
    eopts.auto_scheduler = true;
    eopts.num_connections = connections;
    eopts.statement_latency_micros = kLatencyMicros;
    eopts.run_frequency = static_cast<int>(kBatch);
    eopts.scheduler_poll_micros = 2000;
    eopts.default_timeout_micros = 60'000'000;
    etxn::EntangledTransactionEngine engine(stack.value()->tm.get(), eopts);
    workload::WorkloadGenerator gen(&stack.value()->data, 42);
    auto specs = gen.Generate(type, kTxns, 60'000'000);
    if (!specs.ok()) {
      state.SkipWithError(specs.status().ToString().c_str());
      return;
    }
    if (read_mode != ReadMode::kDefault) {
      stack.value()->tm->set_mvcc_reads_enabled(read_mode ==
                                                ReadMode::kSnapRead);
      for (auto& sp : specs.value()) {
        sp.isolation = IsolationLevel::kReadCommitted;
      }
    }
    state.ResumeTiming();
    double secs = RunSpecs(&engine, std::move(specs).value());
    state.PauseTiming();
    state.counters["time_s"] = secs;
    state.counters["txn_per_s"] = kTxns / secs;
    state.counters["committed"] =
        static_cast<double>(engine.stats().committed.load());
    // Scan sharing across concurrent connections (grounding scans of the
    // social tables are the scan-heavy part of these curves).
    const TxnStats& tstats = stack.value()->tm->stats();
    state.counters["shared_scan_leads"] =
        static_cast<double>(tstats.shared_scan_leads.load());
    state.counters["shared_scan_attaches"] =
        static_cast<double>(tstats.shared_scan_attaches.load());
    state.counters["snapshot_reads"] =
        static_cast<double>(tstats.snapshot_reads.load());
    state.ResumeTiming();
  }
}

void RegisterAll() {
  using workload::WorkloadType;
  for (WorkloadType type :
       {WorkloadType::kNoSocialT, WorkloadType::kSocialT,
        WorkloadType::kEntangledT, WorkloadType::kNoSocialQ,
        WorkloadType::kSocialQ, WorkloadType::kEntangledQ}) {
    for (int conns : {10, 25, 50, 100}) {
      std::string name = std::string("Fig6a/") +
                         workload::WorkloadTypeName(type) + "/conns:" +
                         std::to_string(conns);
      benchmark::RegisterBenchmark(name.c_str(), BM_Fig6a)
          ->Args({static_cast<long>(type), conns,
                  static_cast<long>(ReadMode::kDefault)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime();
    }
  }
  // Read-path ablation points: NoSocial-T at 50 connections with its specs
  // re-leveled to kReadCommitted, snapshot reads on vs off.
  for (ReadMode mode : {ReadMode::kSnapRead, ReadMode::kLockRead}) {
    std::string name =
        std::string("Fig6a/NoSocial-T-") +
        (mode == ReadMode::kSnapRead ? "SnapRead" : "LockRead") + "/conns:50";
    benchmark::RegisterBenchmark(name.c_str(), BM_Fig6a)
        ->Args({static_cast<long>(WorkloadType::kNoSocialT), 50,
                static_cast<long>(mode)})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }
}

}  // namespace
}  // namespace youtopia::bench

int main(int argc, char** argv) {
  youtopia::bench::RegisterAll();
#ifdef NDEBUG
  benchmark::AddCustomContext("youtopia_build_type", "release");
#else
  benchmark::AddCustomContext("youtopia_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf(
      "\nFigure 6(a) notes: expect time ~ 1/connections for all series;\n"
      "Entangled-T above NoSocial-T by roughly the Entangled-Q vs "
      "NoSocial-Q gap\n(entanglement overhead = entangled-query evaluation, "
      "not transactional machinery).\n");
  benchmark::Shutdown();
  return 0;
}
