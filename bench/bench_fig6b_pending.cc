// Reproduces Figure 6(b) "Number of pending transactions": total time to
// commit a stream of matched entangled pairs while p partner-less
// transactions sit in the system, for run frequencies f in {1, 10, 50}
// (f = start a run after f new arrivals).
//
// Paper setup: batches engineered so each run holds exactly p unmatched
// transactions; p from 0 to 100. Expected shape: time linear in p, steeper
// for higher run frequency (f=1 re-executes the p doomed transactions on
// every arrival; f=50 amortizes them over 50).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace youtopia::bench {
namespace {

constexpr size_t kTxns = 150;              // committed stream (paper: 10,000)
constexpr int64_t kLatencyMicros = 100;
constexpr int64_t kInterArrivalMicros = 400;  // paced arrivals: f is defined
                                              // relative to the arrival rate

void BM_Fig6b(benchmark::State& state) {
  int f = static_cast<int>(state.range(0));
  size_t p = static_cast<size_t>(state.range(1));

  for (auto _ : state) {
    state.PauseTiming();
    workload::TravelDataOptions dopts;
    dopts.num_users = 300;
    dopts.edges_per_node = 3;
    dopts.num_cities = 6;
    auto stack = Stack::Create(dopts);
    if (!stack.ok()) {
      state.SkipWithError(stack.status().ToString().c_str());
      return;
    }
    etxn::EngineOptions eopts;
    eopts.auto_scheduler = true;
    eopts.num_connections = 100;
    eopts.statement_latency_micros = kLatencyMicros;
    eopts.run_frequency = f;
    eopts.scheduler_poll_micros = 2000;
    eopts.default_timeout_micros = 120'000'000;
    etxn::EntangledTransactionEngine engine(stack.value()->tm.get(), eopts);
    workload::WorkloadGenerator gen(&stack.value()->data, 42);
    // Loners first (their partners never arrive within the measurement).
    auto loners = gen.Loners(p, 600'000'000);
    auto pairs = gen.Generate(workload::WorkloadType::kEntangledT, kTxns,
                              120'000'000);
    if (!loners.ok() || !pairs.ok()) {
      state.SkipWithError("workload generation failed");
      return;
    }
    std::vector<std::shared_ptr<etxn::TxnHandle>> loner_handles;
    for (auto& s : loners.value()) {
      loner_handles.push_back(engine.Submit(std::move(s)));
    }
    state.ResumeTiming();
    // Paced submission: the run frequency f only has meaning relative to
    // the arrival rate (§4); instantaneous submission would merge all
    // arrivals into one run regardless of f.
    Stopwatch sw(SystemClock::Default());
    std::vector<std::shared_ptr<etxn::TxnHandle>> handles;
    for (auto& s : pairs.value()) {
      handles.push_back(engine.Submit(std::move(s)));
      SystemClock::Default()->SleepMicros(kInterArrivalMicros);
    }
    engine.WaitAll(handles);
    double secs = sw.ElapsedSeconds();
    state.PauseTiming();
    state.counters["time_s"] = secs;
    state.counters["runs"] = static_cast<double>(engine.stats().runs.load());
    state.counters["retries"] =
        static_cast<double>(engine.stats().retried.load());
    state.ResumeTiming();
  }
}

void RegisterAll() {
  for (int f : {1, 10, 50}) {
    for (int p : {0, 10, 25, 50, 100}) {
      std::string name = "Fig6b/f:" + std::to_string(f) +
                         "/pending:" + std::to_string(p);
      benchmark::RegisterBenchmark(name.c_str(), BM_Fig6b)
          ->Args({f, p})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime();
    }
  }
}

}  // namespace
}  // namespace youtopia::bench

int main(int argc, char** argv) {
  youtopia::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf(
      "\nFigure 6(b) notes: expect linear growth in p with the steepest\n"
      "slope at f=1 (a run per arrival re-executes every pending "
      "transaction)\nand the flattest at f=50.\n");
  benchmark::Shutdown();
  return 0;
}
