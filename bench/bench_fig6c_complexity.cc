// Reproduces Figure 6(c) "Entangled queries per transaction": total time vs
// the size of the coordinating set for the Spoke-hub and Cyclic structures,
// at run frequencies f in {10, 50}.
//
// Spoke-hub(k): one hub transaction with k-1 entangled queries, each
// coordinating with a distinct single-query spoke. Cycle(k): k transactions
// with 2 entangled queries each; each query ring closes into one cyclic
// entanglement operation of size k. Expected shape: time grows with k with
// a small slope (entanglement complexity is not a major cost), cycles at or
// above spoke-hubs.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace youtopia::bench {
namespace {

constexpr size_t kGroups = 25;           // coordinating groups per point
constexpr int64_t kLatencyMicros = 100;

void BM_Fig6c(benchmark::State& state) {
  bool cycle = state.range(0) != 0;
  int f = static_cast<int>(state.range(1));
  size_t k = static_cast<size_t>(state.range(2));

  for (auto _ : state) {
    state.PauseTiming();
    workload::TravelDataOptions dopts;
    dopts.num_users = 200;
    dopts.edges_per_node = 3;
    dopts.num_cities = 4;
    auto stack = Stack::Create(dopts);
    if (!stack.ok()) {
      state.SkipWithError(stack.status().ToString().c_str());
      return;
    }
    etxn::EngineOptions eopts;
    eopts.auto_scheduler = true;
    eopts.num_connections = 100;
    eopts.statement_latency_micros = kLatencyMicros;
    eopts.run_frequency = f;
    eopts.scheduler_poll_micros = 2000;
    eopts.default_timeout_micros = 120'000'000;
    etxn::EntangledTransactionEngine engine(stack.value()->tm.get(), eopts);
    workload::WorkloadGenerator gen(&stack.value()->data, 42);
    std::vector<etxn::EntangledTransactionSpec> specs;
    for (size_t g = 0; g < kGroups; ++g) {
      auto group = cycle ? gen.CycleGroup(k, g, 120'000'000)
                         : gen.SpokeHubGroup(k, g, 120'000'000);
      if (!group.ok()) {
        state.SkipWithError(group.status().ToString().c_str());
        return;
      }
      for (auto& s : group.value()) specs.push_back(std::move(s));
    }
    state.ResumeTiming();
    double secs = RunSpecs(&engine, std::move(specs));
    state.PauseTiming();
    state.counters["time_s"] = secs;
    state.counters["eval_rounds"] =
        static_cast<double>(engine.stats().eval_rounds.load());
    state.counters["entangle_ops"] =
        static_cast<double>(engine.stats().entangle_ops.load());
    state.ResumeTiming();
  }
}

void RegisterAll() {
  for (int cycle : {0, 1}) {
    for (int f : {10, 50}) {
      for (int k : {2, 4, 6, 8, 10}) {
        std::string name = std::string("Fig6c/") +
                           (cycle ? "Cycle" : "Spoke-hub") +
                           "/f:" + std::to_string(f) +
                           "/k:" + std::to_string(k);
        benchmark::RegisterBenchmark(name.c_str(), BM_Fig6c)
            ->Args({cycle, f, k})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond)
            ->UseRealTime();
      }
    }
  }
}

}  // namespace
}  // namespace youtopia::bench

int main(int argc, char** argv) {
  youtopia::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf(
      "\nFigure 6(c) notes: expect a small positive slope in k for both\n"
      "structures (entanglement complexity is cheap); the cyclic structure\n"
      "needs whole-ring availability so it sits at or above spoke-hub.\n");
  benchmark::Shutdown();
  return 0;
}
