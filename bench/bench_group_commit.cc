// Ablation: the commit-path cost of entangled group commits — per-member
// COMMIT records plus one GROUP_COMMIT record and a single flush — versus
// plain commits, over a real WAL file.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/txn/transaction_manager.h"
#include "src/wal/wal_writer.h"

namespace youtopia::bench {
namespace {

Schema KV() {
  return Schema({{"k", TypeId::kInt64}, {"v", TypeId::kString}});
}

struct WalStack {
  Database db;
  LockManager locks;
  WalWriter wal;
  std::unique_ptr<TransactionManager> tm;
  std::string path;

  explicit WalStack(bool sync) {
    path = ::std::string("/tmp/yt_bench_group_commit_") +
           std::to_string(reinterpret_cast<uintptr_t>(this)) + ".walog";
    WalWriter::Options wopts;
    wopts.sync_on_flush = sync;
    (void)wal.Open(path, wopts, /*truncate=*/true);
    tm = std::make_unique<TransactionManager>(&db, &locks, &wal);
    (void)tm->CreateTable("T", KV());
  }
  ~WalStack() {
    (void)wal.Close();
    std::remove(path.c_str());
  }
};

void BM_PlainCommit(benchmark::State& state) {
  WalStack s(/*sync=*/false);
  int64_t k = 0;
  for (auto _ : state) {
    auto txn = s.tm->Begin();
    benchmark::DoNotOptimize(
        s.tm->Insert(txn.get(), "T", Row({Value::Int(++k), Value::Str("v")})));
    benchmark::DoNotOptimize(s.tm->Commit(txn.get()));
  }
}
BENCHMARK(BM_PlainCommit)->Unit(benchmark::kMicrosecond);

void BM_GroupCommit(benchmark::State& state) {
  size_t group_size = static_cast<size_t>(state.range(0));
  WalStack s(/*sync=*/false);
  int64_t k = 0;
  for (auto _ : state) {
    std::vector<std::unique_ptr<Transaction>> txns;
    std::vector<Transaction*> raw;
    for (size_t i = 0; i < group_size; ++i) {
      txns.push_back(s.tm->Begin());
      raw.push_back(txns.back().get());
      benchmark::DoNotOptimize(s.tm->Insert(
          txns.back().get(), "T", Row({Value::Int(++k), Value::Str("v")})));
    }
    benchmark::DoNotOptimize(s.tm->LogEntangle(++k, raw));
    benchmark::DoNotOptimize(s.tm->CommitGroup(raw));
  }
  // Report per-transaction cost for a fair comparison with BM_PlainCommit.
  state.counters["per_txn_us"] = benchmark::Counter(
      static_cast<double>(state.iterations() * group_size),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_GroupCommit)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_CommitWithFsync(benchmark::State& state) {
  WalStack s(/*sync=*/true);
  int64_t k = 0;
  for (auto _ : state) {
    auto txn = s.tm->Begin();
    benchmark::DoNotOptimize(
        s.tm->Insert(txn.get(), "T", Row({Value::Int(++k), Value::Str("v")})));
    benchmark::DoNotOptimize(s.tm->Commit(txn.get()));
  }
}
BENCHMARK(BM_CommitWithFsync)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace youtopia::bench

BENCHMARK_MAIN();
