// Ablation: the paper's isolation knob (§3.3.3/§4) — throughput of a mixed
// read/write workload over one hot table under full entangled isolation
// (table-S scans held to commit) versus the relaxed read-lock levels.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace youtopia::bench {
namespace {

void BM_IsolationLevel(benchmark::State& state) {
  auto level = static_cast<IsolationLevel>(state.range(0));
  size_t readers = 6, writers = 2, stmts = 40;

  for (auto _ : state) {
    state.PauseTiming();
    workload::TravelDataOptions dopts;
    dopts.num_users = 300;
    dopts.edges_per_node = 3;
    dopts.num_cities = 4;
    auto stack = Stack::Create(dopts);
    if (!stack.ok()) {
      state.SkipWithError(stack.status().ToString().c_str());
      return;
    }
    etxn::EngineOptions eopts;
    eopts.auto_scheduler = false;
    eopts.num_connections = readers + writers;
    eopts.default_timeout_micros = 60'000'000;
    etxn::EntangledTransactionEngine engine(stack.value()->tm.get(), eopts);

    std::vector<etxn::EntangledTransactionSpec> specs;
    for (size_t r = 0; r < readers; ++r) {
      etxn::EntangledTransactionSpec spec;
      spec.name = "reader" + std::to_string(r);
      spec.isolation = level;
      for (size_t i = 0; i < stmts; ++i) {
        spec.statements.push_back(
            etxn::Statement::Sql(
                "SELECT uid FROM User WHERE hometown='CITY00' LIMIT 1")
                .value());
      }
      specs.push_back(std::move(spec));
    }
    for (size_t w = 0; w < writers; ++w) {
      etxn::EntangledTransactionSpec spec;
      spec.name = "writer" + std::to_string(w);
      spec.isolation = level;
      for (size_t i = 0; i < stmts; ++i) {
        spec.statements.push_back(
            etxn::Statement::Sql(
                "INSERT INTO Reserve (uid, fid) VALUES (" +
                std::to_string(w * 1000 + i) + ", 1)")
                .value());
      }
      specs.push_back(std::move(spec));
    }
    state.ResumeTiming();
    double secs = RunSpecs(&engine, std::move(specs));
    state.PauseTiming();
    state.counters["time_s"] = secs;
    state.counters["deadlocks"] = static_cast<double>(
        stack.value()->locks.stats().deadlocks.load());
    state.counters["lock_waits"] =
        static_cast<double>(stack.value()->locks.stats().waits.load());
    state.ResumeTiming();
  }
}

void RegisterAll() {
  struct LevelArg {
    IsolationLevel level;
    const char* name;
  };
  for (LevelArg arg :
       {LevelArg{IsolationLevel::kFullEntangled, "FullEntangled"},
        LevelArg{IsolationLevel::kSerializable, "Serializable"},
        LevelArg{IsolationLevel::kReadCommitted, "ReadCommitted"},
        LevelArg{IsolationLevel::kReadUncommitted, "ReadUncommitted"}}) {
    std::string name = std::string("IsolationLevel/") + arg.name;
    benchmark::RegisterBenchmark(name.c_str(), BM_IsolationLevel)
        ->Args({static_cast<long>(arg.level)})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }
}

}  // namespace
}  // namespace youtopia::bench

int main(int argc, char** argv) {
  youtopia::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf(
      "\nIsolation ablation: relaxed read-lock levels trade anomaly "
      "freedom\nfor fewer lock waits between scanners and writers.\n");
  benchmark::Shutdown();
  return 0;
}
