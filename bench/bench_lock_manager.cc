// Ablation: lock-manager costs — uncontended acquire/release, hierarchical
// (table IS + row S) acquisition, contended shared locking across threads,
// and the deadlock-detection path.

#include <benchmark/benchmark.h>

#include <atomic>

#include "src/lock/lock_manager.h"

namespace youtopia::bench {
namespace {

void BM_AcquireReleaseUncontended(benchmark::State& state) {
  LockManager lm;
  TxnId txn = 1;
  uint64_t row = 0;
  for (auto _ : state) {
    LockKey key = LockKey::RowOf(1, ++row % 1024 + 1);
    benchmark::DoNotOptimize(lm.Acquire(txn, key, LockMode::kX, 0));
    lm.ReleaseAll(txn);
    ++txn;
  }
}
BENCHMARK(BM_AcquireReleaseUncontended);

void BM_HierarchicalReadLock(benchmark::State& state) {
  LockManager lm;
  TxnId txn = 1;
  uint64_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lm.Acquire(txn, LockKey::Table(1), LockMode::kIS, 0));
    benchmark::DoNotOptimize(
        lm.Acquire(txn, LockKey::RowOf(1, ++row % 1024 + 1), LockMode::kS, 0));
    lm.ReleaseAll(txn);
    ++txn;
  }
}
BENCHMARK(BM_HierarchicalReadLock);

void BM_SharedContention(benchmark::State& state) {
  static LockManager* lm = nullptr;
  static std::atomic<TxnId> next_txn{1};
  if (state.thread_index() == 0) lm = new LockManager();
  LockKey key = LockKey::Table(7);
  for (auto _ : state) {
    TxnId t = next_txn.fetch_add(1);
    benchmark::DoNotOptimize(lm->Acquire(t, key, LockMode::kS, 1'000'000));
    lm->ReleaseAll(t);
  }
  if (state.thread_index() == 0) {
    state.SetLabel("shared S on one table");
  }
}
BENCHMARK(BM_SharedContention)->Threads(1)->Threads(4)->Threads(8);

void BM_DeadlockCheckCost(benchmark::State& state) {
  // Measures Acquire when many waiters force waits-for graph scans: one X
  // holder, the measured txn repeatedly times out a short wait (runs the
  // deadlock check each wakeup).
  LockManager lm;
  LockKey key = LockKey::Table(1);
  (void)lm.Acquire(1, key, LockMode::kX, 0);
  TxnId t = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.Acquire(++t, key, LockMode::kS, 100));
  }
  lm.ReleaseAll(1);
}
BENCHMARK(BM_DeadlockCheckCost)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace youtopia::bench

BENCHMARK_MAIN();
