// Ablation: SQL front-end micro-costs for the §D workload statements —
// lexing/parsing, point selects, the three-way Social join (with pushdown),
// DML, and entangled-query compilation + grounding.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "src/common/metrics.h"
#include "src/eq/compiler.h"
#include "src/eq/grounder.h"
#include "src/shard/router.h"
#include "src/sql/session.h"
#include "src/sql/session_server.h"
#include "src/txn/transaction_manager.h"
#include "src/workload/travel_data.h"

namespace youtopia::bench {
namespace {

constexpr char kSocialJoin[] =
    "SELECT uid2 FROM Friends, User u1, User u2 "
    "WHERE Friends.uid1=7 AND Friends.uid2=u2.uid AND u1.uid=7 "
    "AND u1.hometown=u2.hometown LIMIT 1";

// The full §D social join (no LIMIT): u2 is fetched by bind-driven index
// probes keyed on Friends.uid2, or — with the executor's ablation switch
// off — by one eager 500-row snapshot cross-filtered in memory.
constexpr char kThreeWayJoin[] =
    "SELECT u2.uid FROM Friends, User u1, User u2 "
    "WHERE Friends.uid1=7 AND u1.uid=7 AND Friends.uid2=u2.uid "
    "AND u1.hometown=u2.hometown";

// Fig. 6(c)-style entangled body over variables only:
// Friends(x,y), User(x,c), User(y,c). Both User atoms ground by per-binding
// probes on the primary key once the Friends scan binds x and y.
constexpr char kEntangledPairSql[] =
    "SELECT u1, u2 INTO ANSWER Pair "
    "WHERE u1, u2 IN (SELECT uid1, uid2 FROM Friends, User a, User b "
    "WHERE Friends.uid1=a.uid AND Friends.uid2=b.uid "
    "AND a.hometown=b.hometown) "
    "AND (u2, u1) IN ANSWER Pair CHOOSE 1";

constexpr char kEntangledSql[] =
    "SELECT 7 AS @uid, 'CITY01' AS @destination INTO ANSWER Reserve "
    "WHERE (7, 9) IN (SELECT uid1, uid2 FROM Friends, User u1, User u2 "
    "WHERE Friends.uid1=7 AND Friends.uid2=9 AND u1.uid=7 AND u2.uid=9 "
    "AND u1.hometown=u2.hometown) "
    "AND (9, 'CITY01') IN ANSWER Reserve CHOOSE 1";

struct SqlStack {
  Database db;
  LockManager locks;
  std::unique_ptr<TransactionManager> tm;
  workload::TravelData data;

  SqlStack() {
    tm = std::make_unique<TransactionManager>(&db, &locks, nullptr);
    workload::TravelDataOptions opts;
    opts.num_users = 500;
    opts.edges_per_node = 4;
    opts.num_cities = 6;
    data = workload::TravelData::Build(tm.get(), opts).value();
  }
};

void BM_ParseSelect(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::Parser::ParseStatement(kSocialJoin));
  }
}
BENCHMARK(BM_ParseSelect);

void BM_ParseEntangled(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::Parser::ParseStatement(kEntangledSql));
  }
}
BENCHMARK(BM_ParseEntangled);

void BM_PointSelect(benchmark::State& state) {
  // User.uid is a primary key, so this runs through the hash-index path.
  SqlStack s;
  sql::Session session(s.tm.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.Execute("SELECT @uid, @hometown FROM User WHERE uid=77"));
  }
}
BENCHMARK(BM_PointSelect)->Unit(benchmark::kMicrosecond);

void BM_PointSelectMetricsOff(benchmark::State& state) {
  // Instrumentation ablation: identical to BM_PointSelect with the global
  // metrics switch off. The gap between the two is the full observability
  // overhead on the statement hot path (budget: <= 5%).
  set_metrics_enabled(false);
  SqlStack s;
  sql::Session session(s.tm.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.Execute("SELECT @uid, @hometown FROM User WHERE uid=77"));
  }
  set_metrics_enabled(true);
}
BENCHMARK(BM_PointSelectMetricsOff)->Unit(benchmark::kMicrosecond);

void BM_PointSelectScan(benchmark::State& state) {
  // Same query over an unindexed twin of User: the access-path ablation.
  SqlStack s;
  sql::Session session(s.tm.get());
  (void)session.Execute("CREATE TABLE UserScan (uid INT, hometown VARCHAR)");
  Table* src = s.db.GetTable("User").value();
  Table* dst = s.db.GetTable("UserScan").value();
  src->Scan([&](RowId, const Row& row) {
    (void)dst->Insert(row);
    return true;
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.Execute("SELECT @uid, @hometown FROM UserScan WHERE uid=77"));
  }
}
BENCHMARK(BM_PointSelectScan)->Unit(benchmark::kMicrosecond);

void BM_PointUpdate(benchmark::State& state) {
  // Indexed UPDATE: X locks on the key and matched row, no table X lock.
  SqlStack s;
  sql::Session session(s.tm.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.Execute("UPDATE User SET hometown='CITY00' WHERE uid=77"));
  }
}
BENCHMARK(BM_PointUpdate)->Unit(benchmark::kMicrosecond);

void BM_SocialThreeWayJoin(benchmark::State& state) {
  SqlStack s;
  sql::Session session(s.tm.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.Execute(kSocialJoin));
  }
}
BENCHMARK(BM_SocialThreeWayJoin)->Unit(benchmark::kMicrosecond);

void BM_ThreeWayJoin(benchmark::State& state) {
  // Bind-driven probes: the inner User table is never snapshotted.
  SqlStack s;
  sql::Session session(s.tm.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.Execute(kThreeWayJoin));
  }
  // Per-query probe count (invariant of plan shape, not of iteration count).
  state.counters["join_probes"] = benchmark::Counter(
      static_cast<double>(s.tm->stats().join_probes.load()),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ThreeWayJoin)->Unit(benchmark::kMicrosecond);

void BM_ThreeWayJoinSnapshot(benchmark::State& state) {
  // The pre-probe path on identical data: eager per-table snapshots
  // cross-filtered in the join loop (the ablation baseline).
  SqlStack s;
  sql::Session session(s.tm.get());
  session.executor().set_join_probes_enabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.Execute(kThreeWayJoin));
  }
}
BENCHMARK(BM_ThreeWayJoinSnapshot)->Unit(benchmark::kMicrosecond);

/// 500-row price table for the range/order ablations: "Prices" carries an
/// ordered index on price, "PricesScan" is an identical unindexed twin.
/// Prices are spread over [0, 5000) so a 100-wide band is ~2% selective —
/// the travel workload's price/date filter shape.
struct RangeStack : SqlStack {
  RangeStack() {
    sql::Session s(tm.get());
    (void)s.Execute(
        "CREATE TABLE Prices (id INT PRIMARY KEY, price INT, city VARCHAR)");
    (void)s.Execute(
        "CREATE TABLE PricesScan (id INT, price INT, city VARCHAR)");
    (void)s.Execute("CREATE INDEX ON Prices (price) USING ORDERED");
    for (int id = 0; id < 500; ++id) {
      std::string vals = "(" + std::to_string(id) + ", " +
                         std::to_string((id * 7919) % 5000) + ", 'CITY0" +
                         std::to_string(id % 6) + "')";
      (void)s.Execute("INSERT INTO Prices VALUES " + vals);
      (void)s.Execute("INSERT INTO PricesScan VALUES " + vals);
    }
  }
};

constexpr char kRangeWhere[] = " WHERE price >= 2000 AND price < 2100";

void BM_RangeSelect(benchmark::State& state) {
  // Selective range predicate through the ordered index: O(log n + k) reads
  // under a key-range S lock on the scanned interval.
  RangeStack s;
  sql::Session session(s.tm.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.Execute(
        std::string("SELECT @id, @price FROM Prices") + kRangeWhere));
  }
  state.counters["range_lookups"] = benchmark::Counter(
      static_cast<double>(s.tm->stats().range_lookups.load()),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_RangeSelect)->Unit(benchmark::kMicrosecond);

void BM_RangeSelectScan(benchmark::State& state) {
  // The same predicate over the unindexed twin: full scan under a table S
  // lock (the ablation baseline).
  RangeStack s;
  sql::Session session(s.tm.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.Execute(
        std::string("SELECT @id, @price FROM PricesScan") + kRangeWhere));
  }
}
BENCHMARK(BM_RangeSelectScan)->Unit(benchmark::kMicrosecond);

void BM_OrderByLimit(benchmark::State& state) {
  // ORDER BY <indexed prefix> LIMIT served straight from index order: no
  // sort, and the covered predicate lets the LIMIT stop the fetch after 5
  // keys.
  RangeStack s;
  sql::Session session(s.tm.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.Execute("SELECT @id, @price FROM Prices "
                        "WHERE price > 1000 ORDER BY price LIMIT 5"));
  }
}
BENCHMARK(BM_OrderByLimit)->Unit(benchmark::kMicrosecond);

void BM_OrderByLimitScan(benchmark::State& state) {
  // Twin baseline: full scan, materialize, sort, then truncate.
  RangeStack s;
  sql::Session session(s.tm.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.Execute("SELECT @id, @price FROM PricesScan "
                        "WHERE price > 1000 ORDER BY price LIMIT 5"));
  }
}
BENCHMARK(BM_OrderByLimitScan)->Unit(benchmark::kMicrosecond);

/// Shared-vs-private scan ablation: 8 threads repeatedly full-scan the same
/// heap. With sharing on, concurrent scans attach to one circular heap walk
/// (one std::map traversal + one batch materialization, N cheap consumers);
/// with sharing off every thread re-walks the heap privately. Aggregate
/// throughput with sharing on should be well above the private baseline —
/// this is the scan-heavy regime of the fig. 6(a) concurrency curves.
struct ConcurrentScanStack {
  Database db;
  LockManager locks;
  std::unique_ptr<TransactionManager> tm;
  Table* table = nullptr;
  static constexpr int kRows = 16384;

  explicit ConcurrentScanStack(bool shared_scans) {
    TransactionManager::Options opts;
    opts.enable_shared_scans = shared_scans;
    tm = std::make_unique<TransactionManager>(&db, &locks, nullptr, opts);
    Schema schema({{"a", TypeId::kInt64},
                   {"b", TypeId::kInt64},
                   {"c", TypeId::kInt64}});
    table = tm->CreateTable("Wide", schema).value();
    for (int i = 0; i < kRows; ++i) {
      (void)table->Insert(
          Row({Value::Int(i), Value::Int(i * 7), Value::Int(i % 97)}));
    }
  }
};

std::unique_ptr<ConcurrentScanStack> g_scan_stack;  // NOLINT

void ConcurrentScanBody(benchmark::State& state, bool shared_scans) {
  if (state.thread_index() == 0) {
    g_scan_stack = std::make_unique<ConcurrentScanStack>(shared_scans);
  }
  // Threads synchronize at the loop barrier, so non-zero threads only touch
  // the stack inside the loop.
  for (auto _ : state) {
    ConcurrentScanStack& s = *g_scan_stack;
    auto txn = s.tm->Begin(IsolationLevel::kSerializable);
    auto cursor = s.tm->OpenCursor(txn.get(), s.table,
                                   AccessPlan::TableScan(),
                                   ReadOrigin::kStatement);
    if (!cursor.ok()) {
      state.SkipWithError(cursor.status().ToString().c_str());
      return;
    }
    size_t rows = 0;
    int64_t sum = 0;
    RowId rid = 0;
    const Row* row = nullptr;
    while (true) {
      auto more = cursor.value()->NextRef(&rid, &row);
      if (!more.ok()) {
        state.SkipWithError(more.status().ToString().c_str());
        return;
      }
      if (!more.value()) break;
      ++rows;
      sum += (*row)[0].as_int();
    }
    benchmark::DoNotOptimize(sum);
    cursor.value().reset();
    (void)s.tm->Commit(txn.get());
    if (rows != static_cast<size_t>(ConcurrentScanStack::kRows)) {
      state.SkipWithError("scan returned wrong row count");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * ConcurrentScanStack::kRows);
  if (state.thread_index() == 0) {
    state.counters["shared_leads"] = static_cast<double>(
        g_scan_stack->tm->stats().shared_scan_leads.load());
    state.counters["shared_attaches"] = static_cast<double>(
        g_scan_stack->tm->stats().shared_scan_attaches.load());
    g_scan_stack.reset();
  }
}

void BM_ConcurrentScans(benchmark::State& state) {
  ConcurrentScanBody(state, /*shared_scans=*/true);
}
BENCHMARK(BM_ConcurrentScans)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_ConcurrentScansPrivate(benchmark::State& state) {
  ConcurrentScanBody(state, /*shared_scans=*/false);
}
BENCHMARK(BM_ConcurrentScansPrivate)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// MVCC-vs-locking read-path ablation stack: a 4096-row heap read at
/// kReadCommitted. With snapshot reads on, scans serve a versioned cut with
/// zero locks; the locking ablation puts every scan back under a table S
/// lock that serializes against writers' IX/X.
struct MvccMixStack {
  Database db;
  LockManager locks;
  std::unique_ptr<TransactionManager> tm;
  Table* table = nullptr;
  static constexpr int kRows = 4096;

  explicit MvccMixStack(bool mvcc_reads) {
    TransactionManager::Options opts;
    opts.enable_mvcc_reads = mvcc_reads;
    // Under the locking ablation writers queue behind scans; wait, don't
    // time out — the queueing *is* the measurement.
    opts.lock_timeout_micros = 30'000'000;
    tm = std::make_unique<TransactionManager>(&db, &locks, nullptr, opts);
    Schema schema({{"id", TypeId::kInt64}, {"val", TypeId::kInt64}});
    table = tm->CreateTable("Mix", schema).value();
    for (int i = 0; i < kRows; ++i) {
      (void)table->Insert(Row({Value::Int(i), Value::Int(i)}));
    }
  }
};

std::unique_ptr<MvccMixStack> g_mix_stack;  // NOLINT

/// 8 threads, 90% kReadCommitted full scans / 10% single-row updates.
/// Aggregate throughput with snapshot reads on should sit well above the
/// locking baseline: the scans cost the same, but nobody waits.
void ReadMostlyMixedBody(benchmark::State& state, bool mvcc_reads) {
  if (state.thread_index() == 0) {
    g_mix_stack = std::make_unique<MvccMixStack>(mvcc_reads);
  }
  uint64_t seq = static_cast<uint64_t>(state.thread_index()) * 1000003u;
  for (auto _ : state) {
    MvccMixStack& s = *g_mix_stack;
    ++seq;
    if (seq % 10 == 0) {
      RowId rid = 1 + (seq * 2654435761u) % MvccMixStack::kRows;
      auto txn = s.tm->Begin(IsolationLevel::kSerializable);
      Status st = s.tm->Update(
          txn.get(), "Mix", rid,
          Row({Value::Int(static_cast<int64_t>(rid) - 1),
               Value::Int(static_cast<int64_t>(seq))}));
      if (st.ok()) {
        (void)s.tm->Commit(txn.get());
      } else {
        (void)s.tm->Abort(txn.get());
      }
    } else {
      auto txn = s.tm->Begin(IsolationLevel::kReadCommitted);
      auto cursor = s.tm->OpenCursor(txn.get(), s.table,
                                     AccessPlan::TableScan(),
                                     ReadOrigin::kStatement);
      if (!cursor.ok()) {
        state.SkipWithError(cursor.status().ToString().c_str());
        return;
      }
      int64_t sum = 0;
      RowId rid = 0;
      const Row* row = nullptr;
      while (cursor.value()->NextRef(&rid, &row).value()) {
        sum += (*row)[1].as_int();
      }
      benchmark::DoNotOptimize(sum);
      cursor.value().reset();
      (void)s.tm->Commit(txn.get());
    }
  }
  if (state.thread_index() == 0) {
    state.counters["snapshot_reads"] = static_cast<double>(
        g_mix_stack->tm->stats().snapshot_reads.load());
    g_mix_stack.reset();
  }
}

void BM_ReadMostlyMixed(benchmark::State& state) {
  ReadMostlyMixedBody(state, /*mvcc_reads=*/true);
}
BENCHMARK(BM_ReadMostlyMixed)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_ReadMostlyMixedLocking(benchmark::State& state) {
  ReadMostlyMixedBody(state, /*mvcc_reads=*/false);
}
BENCHMARK(BM_ReadMostlyMixedLocking)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// Scan latency while a background writer holds row X (+ table IX) locks
/// for ~1 ms per transaction, back to back. With snapshot reads the scan
/// never touches the lock manager and proceeds at heap-walk speed; the
/// locking ablation's table S queues behind the writer's IX every time, so
/// per-scan latency absorbs the writer's hold time.
void SnapshotScanUnderWritersBody(benchmark::State& state, bool mvcc_reads) {
  MvccMixStack s(mvcc_reads);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t k = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      RowId rid = 1 + (++k * 2654435761u) % MvccMixStack::kRows;
      auto txn = s.tm->Begin(IsolationLevel::kSerializable);
      Status st = s.tm->Update(
          txn.get(), "Mix", rid,
          Row({Value::Int(static_cast<int64_t>(rid) - 1),
               Value::Int(static_cast<int64_t>(k))}));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (st.ok()) {
        (void)s.tm->Commit(txn.get());
      } else {
        (void)s.tm->Abort(txn.get());
      }
    }
  });
  for (auto _ : state) {
    auto txn = s.tm->Begin(IsolationLevel::kReadCommitted);
    auto cursor = s.tm->OpenCursor(txn.get(), s.table,
                                   AccessPlan::TableScan(),
                                   ReadOrigin::kStatement);
    if (!cursor.ok()) {
      state.SkipWithError(cursor.status().ToString().c_str());
      stop.store(true);
      writer.join();
      return;
    }
    int64_t sum = 0;
    RowId rid = 0;
    const Row* row = nullptr;
    while (cursor.value()->NextRef(&rid, &row).value()) {
      sum += (*row)[1].as_int();
    }
    benchmark::DoNotOptimize(sum);
    cursor.value().reset();
    (void)s.tm->Commit(txn.get());
  }
  stop.store(true);
  writer.join();
  state.counters["snapshot_reads"] =
      static_cast<double>(s.tm->stats().snapshot_reads.load());
  state.counters["versions_created"] =
      static_cast<double>(s.tm->stats().versions_created.load());
}

void BM_SnapshotScanUnderWriters(benchmark::State& state) {
  SnapshotScanUnderWritersBody(state, /*mvcc_reads=*/true);
}
BENCHMARK(BM_SnapshotScanUnderWriters)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_SnapshotScanUnderWritersLocking(benchmark::State& state) {
  SnapshotScanUnderWritersBody(state, /*mvcc_reads=*/false);
}
BENCHMARK(BM_SnapshotScanUnderWritersLocking)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// The sharded twin of SqlStack: the same 500-user travel database behind a
/// hash-partitioned router (User/Flight partition by primary key, Friends/
/// Reserve broadcast).
struct ShardedStack {
  std::unique_ptr<shard::Router> router;

  explicit ShardedStack(size_t num_shards) {
    shard::Router::Options opts;
    opts.num_shards = num_shards;
    router = shard::Router::Open(opts).value();
    workload::TravelDataOptions topts;
    topts.num_users = 500;
    topts.edges_per_node = 4;
    topts.num_cities = 6;
    (void)workload::TravelData::Build(router.get(), topts).value();
  }
};

void BM_ShardedPointSelect(benchmark::State& state) {
  // The same point select as BM_PointSelect, through the 4-shard router:
  // the plan pins the partition key, so exactly one shard is touched and
  // the commit takes the one-phase fast path. The acceptance bar is ~2x of
  // the unsharded point select (routing hash + branch enlistment + tagging
  // are the only additions).
  ShardedStack s(4);
  sql::Session session(s.router.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.Execute("SELECT @uid, @hometown FROM User WHERE uid=77"));
  }
  TxnStats& st = s.router->stats();
  state.counters["shard_routed_lookups"] = benchmark::Counter(
      static_cast<double>(st.shard_routed_lookups.load()),
      benchmark::Counter::kAvgIterations);
  state.counters["single_shard_txns"] = benchmark::Counter(
      static_cast<double>(st.single_shard_txns.load()),
      benchmark::Counter::kAvgIterations);
  state.counters["two_phase_commits"] =
      static_cast<double>(st.two_phase_commits.load());
}
BENCHMARK(BM_ShardedPointSelect)->Unit(benchmark::kMicrosecond);

void BM_ShardedScan(benchmark::State& state) {
  // An uncovered predicate over the partitioned User table: fans out to
  // every shard and merges (each iteration is one fanout cursor).
  ShardedStack s(4);
  sql::Session session(s.router.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.Execute("SELECT @uid FROM User WHERE hometown='CITY01'"));
  }
  state.counters["fanout_cursors"] = benchmark::Counter(
      static_cast<double>(s.router->stats().fanout_cursors.load()),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ShardedScan)->Unit(benchmark::kMicrosecond);

/// A 32k-row partitioned table for the fanout/aggregate scaling benches:
/// Wide(id PK, a = id*7, b = id%97 — 97 groups).
constexpr int64_t kWideRows = 32768;

std::unique_ptr<shard::Router> MakeWideRouter(size_t num_shards) {
  shard::Router::Options opts;
  opts.num_shards = num_shards;
  auto router = shard::Router::Open(opts).value();
  Schema schema({{"id", TypeId::kInt64},
                 {"a", TypeId::kInt64},
                 {"b", TypeId::kInt64}});
  schema.set_primary_key({0});
  (void)router->CreateTable("Wide", schema).value();
  for (int64_t i = 0; i < kWideRows; ++i) {
    (void)router->Load("Wide", Row({Value::Int(i), Value::Int(i * 7),
                                    Value::Int(i % 97)}));
  }
  return router;
}

void BM_ShardedScanFanout(benchmark::State& state) {
  // Fanout scaling: one full scan of a 32k-row partitioned table at 1, 2,
  // and 4 shards. The per-shard heap walks run on one thread per shard, so
  // wall time falls as shards grow — on multi-core hardware. On a 1-vCPU
  // box the threads timeslice one core and wall time stays flat; the CPU
  // column still shows the serving thread's share dropping with shard
  // count (the drains moved off it).
  const size_t num_shards = static_cast<size_t>(state.range(0));
  auto router = MakeWideRouter(num_shards);
  constexpr int64_t kRows = kWideRows;
  for (auto _ : state) {
    auto txn = router->Begin(IsolationLevel::kSerializable);
    auto cursor = router->OpenCursor(txn.get(), "Wide",
                                     AccessPlan::TableScan(),
                                     ReadOrigin::kStatement);
    if (!cursor.ok()) {
      state.SkipWithError(cursor.status().ToString().c_str());
      return;
    }
    int64_t rows = 0, sum = 0;
    RowId rid = 0;
    const Row* row = nullptr;
    while (cursor.value()->NextRef(&rid, &row).value()) {
      ++rows;
      sum += (*row)[1].as_int();
    }
    benchmark::DoNotOptimize(sum);
    cursor.value().reset();
    (void)router->Commit(txn.get());
    if (rows != kRows) {
      state.SkipWithError("sharded scan returned wrong row count");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["fanout_cursors"] = benchmark::Counter(
      static_cast<double>(router->stats().fanout_cursors.load()),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ShardedScanFanout)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_ShardedScanBatchSweep(benchmark::State& state) {
  // Consumer-side pacing sweep over the 4-shard fanout scan: max_rows = 1
  // is the scalar row-at-a-time pull loop (one virtual call per row);
  // larger targets move whole merged chunks across the cursor seam per
  // call, so per-row cost falls as the batch grows.
  const size_t batch = static_cast<size_t>(state.range(0));
  auto router = MakeWideRouter(4);
  for (auto _ : state) {
    auto txn = router->Begin(IsolationLevel::kSerializable);
    auto cursor = router->OpenCursor(txn.get(), "Wide",
                                     AccessPlan::TableScan(),
                                     ReadOrigin::kStatement);
    if (!cursor.ok()) {
      state.SkipWithError(cursor.status().ToString().c_str());
      return;
    }
    int64_t rows = 0, sum = 0;
    if (batch <= 1) {
      RowId rid = 0;
      Row row;
      while (cursor.value()->Next(&rid, &row).value()) {
        ++rows;
        sum += row[1].as_int();
      }
    } else {
      RowBatch rb;
      while (cursor.value()->NextBatch(&rb, batch).value()) {
        rows += static_cast<int64_t>(rb.size());
        for (const auto& [rid, row] : rb.rows) sum += row[1].as_int();
      }
    }
    benchmark::DoNotOptimize(sum);
    cursor.value().reset();
    (void)router->Commit(txn.get());
    if (rows != kWideRows) {
      state.SkipWithError("sharded batch scan returned wrong row count");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * kWideRows);
}
BENCHMARK(BM_ShardedScanBatchSweep)
    ->Arg(1)
    ->Arg(32)
    ->Arg(256)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void GroupByAggregateBody(benchmark::State& state, bool pushdown) {
  // One GROUP BY over the 32k-row partitioned table (97 groups, four
  // aggregate columns), through the full SQL path. With pushdown each
  // shard folds its partition inside its own drain thread and only 97
  // partial states per shard reach the coordinator; the row-shipping
  // ablation drags all 32k rows through the merged fan-out cursor and
  // folds centrally.
  const size_t num_shards = static_cast<size_t>(state.range(0));
  auto router = MakeWideRouter(num_shards);
  router->set_aggregate_pushdown_enabled(pushdown);
  sql::Session session(router.get());
  for (auto _ : state) {
    auto res = session.Execute(
        "SELECT b, COUNT(*), SUM(a), MIN(a), MAX(a) FROM Wide GROUP BY b");
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    if (res.value().rows.size() != 97u) {
      state.SkipWithError("aggregate returned wrong group count");
      return;
    }
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * kWideRows);
  state.counters["aggregate_pushdowns"] = benchmark::Counter(
      static_cast<double>(router->stats().aggregate_pushdowns.load()),
      benchmark::Counter::kAvgIterations);
}

void BM_GroupByAggregate(benchmark::State& state) {
  GroupByAggregateBody(state, /*pushdown=*/true);
}
BENCHMARK(BM_GroupByAggregate)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_GroupByAggregateRowShip(benchmark::State& state) {
  GroupByAggregateBody(state, /*pushdown=*/false);
}
BENCHMARK(BM_GroupByAggregateRowShip)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_Insert(benchmark::State& state) {
  SqlStack s;
  sql::Session session(s.tm.get());
  int64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.Execute(
        "INSERT INTO Reserve (uid, fid) VALUES (" + std::to_string(++k) +
        ", 100)"));
  }
}
BENCHMARK(BM_Insert)->Unit(benchmark::kMicrosecond);

void BM_CompileEntangled(benchmark::State& state) {
  SqlStack s;
  auto parsed = sql::Parser::ParseStatement(kEntangledSql).value();
  sql::VarEnv vars;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eq::Compiler::Compile(*parsed.entangled, vars, s.db, "bench"));
  }
}
BENCHMARK(BM_CompileEntangled)->Unit(benchmark::kMicrosecond);

void BM_GroundEntangled(benchmark::State& state) {
  // Grounds Friends(x,y), User(x,c), User(y,c): the Friends scan drives
  // per-binding primary-key probes into both User atoms.
  SqlStack s;
  auto parsed = sql::Parser::ParseStatement(kEntangledPairSql).value();
  sql::VarEnv vars;
  auto spec = eq::Compiler::Compile(*parsed.entangled, vars, s.db, "bench")
                  .value();
  for (auto _ : state) {
    auto txn = s.tm->Begin();
    benchmark::DoNotOptimize(eq::Grounder::Ground(spec, s.tm.get(),
                                                  txn.get()));
    (void)s.tm->Commit(txn.get());
  }
  state.counters["grounding_join_probes"] = benchmark::Counter(
      static_cast<double>(s.tm->stats().grounding_join_probes.load()),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_GroundEntangled)->Unit(benchmark::kMicrosecond);

void BM_GroundEntangledSnapshot(benchmark::State& state) {
  // Same body with probes disabled: one full snapshot per atom,
  // cross-filtered — O(|Friends| * |User|) valuation attempts.
  SqlStack s;
  auto parsed = sql::Parser::ParseStatement(kEntangledPairSql).value();
  sql::VarEnv vars;
  auto spec = eq::Compiler::Compile(*parsed.entangled, vars, s.db, "bench")
                  .value();
  eq::Grounder::Options opts;
  opts.use_index_probes = false;
  for (auto _ : state) {
    auto txn = s.tm->Begin();
    benchmark::DoNotOptimize(eq::Grounder::Ground(spec, s.tm.get(),
                                                  txn.get(), opts));
    (void)s.tm->Commit(txn.get());
  }
}
BENCHMARK(BM_GroundEntangledSnapshot)->Unit(benchmark::kMicrosecond);

/// Durable 4-shard stack for the commit-path benches: WAL-backed router in a
/// scratch dir; keys come from one atomic counter so every insert is a fresh
/// row regardless of thread or rerun.
struct GroupCommitStack {
  std::string dir;
  std::unique_ptr<shard::Router> router;
  std::atomic<int64_t> next_key{1};
  uint64_t commits0 = 0, flushes0 = 0;
  HistogramSnapshot commit_hist0;

  explicit GroupCommitStack(bool group_commit) {
    static std::atomic<int> seq{0};
    dir = (std::filesystem::temp_directory_path() /
           ("yt_bench_gc_" + std::to_string(::getpid()) + "_" +
            std::to_string(seq.fetch_add(1))))
              .string();
    std::filesystem::remove_all(dir);
    shard::Router::Options opts;
    opts.num_shards = 4;
    opts.dir = dir;
    router = shard::Router::Open(opts).value();
    Schema schema({{"id", TypeId::kInt64}, {"v", TypeId::kInt64}});
    schema.set_primary_key({0});
    (void)router->CreateTable("acct", schema).value();
    router->set_group_commit_enabled(group_commit);
    commits0 = router->stats().commits.load();
    flushes0 = router->stats().wal_flushes.load();
    commit_hist0 =
        MetricsRegistry::Global()->MergedHistogram("txn.commit_micros.");
  }
  ~GroupCommitStack() {
    router.reset();
    std::filesystem::remove_all(dir);
  }
};

std::unique_ptr<GroupCommitStack> g_gc_stack;  // NOLINT

/// N threads each run autocommit single-row inserts against the durable
/// router. With group commit on, concurrent committers ride one WAL flush
/// — leader pacing (100 us) holds the batch window open, so throughput
/// scales with committers while flushes_per_commit falls toward 1/N. The
/// Solo ablation performs a flush per commit at any thread count. (The
/// smoke tree runs fflush-only; under sync_on_flush the flush dominates
/// and the counter gap becomes the wall-clock gap.)
void GroupCommitBody(benchmark::State& state, bool group_commit) {
  if (state.thread_index() == 0) {
    g_gc_stack = std::make_unique<GroupCommitStack>(group_commit);
    if (group_commit) g_gc_stack->router->set_group_commit_delay_micros(100);
  }
  for (auto _ : state) {
    GroupCommitStack& s = *g_gc_stack;
    int64_t key = s.next_key.fetch_add(1);
    auto txn = s.router->Begin();
    Status st =
        s.router
            ->Insert(txn.get(), "acct", Row({Value::Int(key), Value::Int(0)}))
            .status();
    if (st.ok()) st = s.router->Commit(txn.get());
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    const double commits = static_cast<double>(
        g_gc_stack->router->stats().commits.load() - g_gc_stack->commits0);
    const double flushes = static_cast<double>(
        g_gc_stack->router->stats().wal_flushes.load() - g_gc_stack->flushes0);
    state.counters["commits"] = commits;
    state.counters["wal_flushes"] = flushes;
    state.counters["flushes_per_commit"] =
        commits > 0 ? flushes / commits : 0.0;
    // Commit latency percentiles for THIS bench run: the global histogram
    // minus its state at stack creation (bucket counts subtract exactly).
    HistogramSnapshot delta =
        MetricsRegistry::Global()->MergedHistogram("txn.commit_micros.");
    delta.count -= g_gc_stack->commit_hist0.count;
    delta.sum -= g_gc_stack->commit_hist0.sum;
    for (int i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      delta.buckets[i] -= g_gc_stack->commit_hist0.buckets[i];
    }
    state.counters["commit_p50_us"] = delta.p50();
    state.counters["commit_p95_us"] = delta.p95();
    state.counters["commit_p99_us"] = delta.p99();
    g_gc_stack.reset();
  }
}

void BM_GroupCommit(benchmark::State& state) {
  GroupCommitBody(state, /*group_commit=*/true);
}
BENCHMARK(BM_GroupCommit)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_GroupCommitMetricsOff(benchmark::State& state) {
  // Instrumentation ablation for the durable commit path (flush-wait
  // recorders, batch histograms, 2PC spans all gated off). Compare against
  // BM_GroupCommit at the same thread count; budget <= 5%.
  if (state.thread_index() == 0) set_metrics_enabled(false);
  GroupCommitBody(state, /*group_commit=*/true);
  if (state.thread_index() == 0) set_metrics_enabled(true);
}
BENCHMARK(BM_GroupCommitMetricsOff)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_GroupCommitSolo(benchmark::State& state) {
  GroupCommitBody(state, /*group_commit=*/false);
}
BENCHMARK(BM_GroupCommitSolo)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// Arg(0) sessions of autocommit inserts through the SessionServer. The
/// multiplexed variant serves them all on 2 worker threads (a blocked commit
/// parks its ticket and the worker drives another session); the ThreadPer
/// baseline spends one thread per session. Leader pacing is on (100 us) so
/// the batch window is real in both.
void ManySessionsBody(benchmark::State& state, bool thread_per_session) {
  const size_t sessions = static_cast<size_t>(state.range(0));
  GroupCommitStack s(/*group_commit=*/true);
  s.router->set_group_commit_delay_micros(100);
  sql::SessionServer server(
      s.router.get(),
      sql::SessionServer::Options{thread_per_session ? sessions : 2});
  std::vector<sql::SessionServer::SessionId> ids;
  ids.reserve(sessions);
  for (size_t i = 0; i < sessions; ++i) ids.push_back(server.OpenSession());
  for (auto _ : state) {
    for (size_t i = 0; i < sessions; ++i) {
      server.Submit(ids[i],
                    "INSERT INTO acct VALUES (" +
                        std::to_string(s.next_key.fetch_add(1)) + ", 0)");
    }
    server.Drain();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(sessions));
  state.counters["server_threads"] = static_cast<double>(server.num_threads());
  state.counters["parked_runs"] = static_cast<double>(server.parked_runs());
  state.counters["wal_flushes"] =
      static_cast<double>(s.router->stats().wal_flushes.load() - s.flushes0);
}

void BM_ManySessions(benchmark::State& state) {
  ManySessionsBody(state, /*thread_per_session=*/false);
}
BENCHMARK(BM_ManySessions)
    ->Arg(8)
    ->Arg(32)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_ManySessionsThreadPer(benchmark::State& state) {
  ManySessionsBody(state, /*thread_per_session=*/true);
}
BENCHMARK(BM_ManySessionsThreadPer)
    ->Arg(8)
    ->Arg(32)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace youtopia::bench

// Custom main instead of BENCHMARK_MAIN(): refuses to record numbers from an
// assert-enabled binary (scripts/check.sh greps the emitted context to make
// the same refusal on the JSON side). The system benchmark *library* reports
// its own build type; `youtopia_build_type` reports ours.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("youtopia_build_type", "release");
#else
  benchmark::AddCustomContext("youtopia_build_type", "debug");
  if (std::getenv("YOUTOPIA_ALLOW_DEBUG_BENCH") == nullptr) {
    std::fprintf(stderr,
                 "bench_sql: refusing to bench an assert-enabled build; use "
                 "-DCMAKE_BUILD_TYPE=Release (or set "
                 "YOUTOPIA_ALLOW_DEBUG_BENCH=1 to override)\n");
    return 1;
  }
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  // Metrics exposition on exit, to stderr so JSON output stays parseable.
  std::fprintf(stderr, "--- metrics snapshot ---\n%s",
               youtopia::MetricsRegistry::Global()->DumpText().c_str());
  benchmark::Shutdown();
  return 0;
}
