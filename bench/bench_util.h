#ifndef YOUTOPIA_BENCH_BENCH_UTIL_H_
#define YOUTOPIA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/clock.h"
#include "src/etxn/engine.h"
#include "src/txn/transaction_manager.h"
#include "src/workload/workloads.h"

namespace youtopia::bench {

/// One self-contained engine stack over a fresh travel database. Rebuilt per
/// measurement point so points are independent (the paper averages over
/// fresh runs as well).
struct Stack {
  Database db;
  LockManager locks;
  std::unique_ptr<TransactionManager> tm;
  workload::TravelData data;

  static StatusOr<std::unique_ptr<Stack>> Create(
      workload::TravelDataOptions opts) {
    auto s = std::make_unique<Stack>();
    s->tm = std::make_unique<TransactionManager>(&s->db, &s->locks, nullptr);
    YT_ASSIGN_OR_RETURN(s->data, workload::TravelData::Build(s->tm.get(),
                                                             opts));
    return s;
  }
};

/// Submits all specs (in order) and waits for completion; returns elapsed
/// wall seconds. `batch` > 0 submits in batches of that size with a small
/// gap so the run scheduler can group them (Fig 6(a) setup).
inline double RunSpecs(etxn::EntangledTransactionEngine* engine,
                       std::vector<etxn::EntangledTransactionSpec> specs) {
  std::vector<std::shared_ptr<etxn::TxnHandle>> handles;
  handles.reserve(specs.size());
  Stopwatch sw(SystemClock::Default());
  for (auto& s : specs) handles.push_back(engine->Submit(std::move(s)));
  engine->WaitAll(handles);
  return sw.ElapsedSeconds();
}

/// Fraction of handles that committed (sanity check for bench validity).
inline double CommitRate(
    const std::vector<std::shared_ptr<etxn::TxnHandle>>& handles) {
  if (handles.empty()) return 1.0;
  size_t ok = 0;
  for (const auto& h : handles) {
    if (h->done() && h->Wait().ok()) ++ok;
  }
  return static_cast<double>(ok) / handles.size();
}

}  // namespace youtopia::bench

#endif  // YOUTOPIA_BENCH_BENCH_UTIL_H_
