// Ablation: WAL durability costs and recovery speed — append/flush path,
// recovery replay time vs log size, and the checkpoint effect on recovery.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "src/txn/transaction_manager.h"
#include "src/wal/recovery.h"
#include "src/wal/wal_writer.h"

namespace youtopia::bench {
namespace {

Schema KV() {
  return Schema({{"k", TypeId::kInt64}, {"v", TypeId::kString}});
}

std::string TempPath(const char* tag) {
  return std::string("/tmp/yt_bench_") + tag + ".walog";
}

/// Writes a log with `n` committed single-insert transactions.
void BuildLog(const std::string& path, size_t n, bool checkpoint_halfway) {
  std::remove(path.c_str());
  std::remove((path + ".ckpt").c_str());
  Database db;
  LockManager locks;
  WalWriter wal;
  (void)wal.Open(path, {}, /*truncate=*/true);
  TransactionManager tm(&db, &locks, &wal);
  (void)tm.CreateTable("T", KV());
  for (size_t i = 0; i < n; ++i) {
    auto txn = tm.Begin();
    (void)tm.Insert(txn.get(), "T",
                    Row({Value::Int(static_cast<int64_t>(i)),
                         Value::Str("value-" + std::to_string(i))}));
    (void)tm.Commit(txn.get());
    if (checkpoint_halfway && i == n / 2) {
      (void)tm.Checkpoint(path + ".ckpt");
    }
  }
  (void)wal.Close();
}

void BM_WalAppendBuffered(benchmark::State& state) {
  std::string path = TempPath("append");
  WalWriter wal;
  (void)wal.Open(path, {}, true);
  int64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal.Append(
        WalRecord::Insert(1, "T", ++k, Row({Value::Int(k)}))));
  }
  (void)wal.Close();
  std::remove(path.c_str());
}
BENCHMARK(BM_WalAppendBuffered);

void BM_WalAppendAndFlush(benchmark::State& state) {
  std::string path = TempPath("flush");
  WalWriter wal;
  (void)wal.Open(path, {}, true);
  int64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal.AppendAndFlush(
        WalRecord::Insert(1, "T", ++k, Row({Value::Int(k)}))));
  }
  (void)wal.Close();
  std::remove(path.c_str());
}
BENCHMARK(BM_WalAppendAndFlush)->Unit(benchmark::kMicrosecond);

void BM_Recovery(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::string path = TempPath(("recover_" + std::to_string(n)).c_str());
  BuildLog(path, n, /*checkpoint_halfway=*/false);
  for (auto _ : state) {
    auto r = RecoveryManager::Recover(path);
    benchmark::DoNotOptimize(r);
    if (!r.ok() || r.value().db->GetTable("T").value()->size() != n) {
      state.SkipWithError("recovery mismatch");
      return;
    }
  }
  state.counters["txns"] = static_cast<double>(n);
  std::remove(path.c_str());
}
BENCHMARK(BM_Recovery)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_RecoveryWithCheckpoint(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::string path = TempPath(("recover_ckpt_" + std::to_string(n)).c_str());
  BuildLog(path, n, /*checkpoint_halfway=*/true);
  for (auto _ : state) {
    auto r = RecoveryManager::Recover(path);
    benchmark::DoNotOptimize(r);
    if (!r.ok() || r.value().db->GetTable("T").value()->size() != n) {
      state.SkipWithError("recovery mismatch");
      return;
    }
  }
  std::remove(path.c_str());
  std::remove((path + ".ckpt").c_str());
}
BENCHMARK(BM_RecoveryWithCheckpoint)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace youtopia::bench

BENCHMARK_MAIN();
