// Entanglement-aware crash recovery (paper §4): two transactions entangle
// and write their bookings. We simulate a crash landing exactly between one
// partner's COMMIT record and the group's GROUP_COMMIT record. Recovery
// must roll BOTH back — a classical recovery algorithm would wrongly keep
// the committed half, creating a durable widowed transaction.

#include <cstdio>
#include <string>

#include "src/txn/transaction_manager.h"
#include "src/wal/recovery.h"
#include "src/wal/wal_writer.h"

using namespace youtopia;

namespace {

Schema BookingSchema() {
  return Schema({{"name", TypeId::kString}, {"fno", TypeId::kInt64}});
}

Status Scenario(const std::string& wal_path, bool torn_group_commit) {
  Database db;
  LockManager locks;
  WalWriter wal;
  YT_RETURN_IF_ERROR(wal.Open(wal_path, {}, /*truncate=*/true));
  TransactionManager tm(&db, &locks, &wal);
  YT_RETURN_IF_ERROR(tm.CreateTable("Bookings", BookingSchema()).status());

  auto mickey = tm.Begin();
  auto minnie = tm.Begin();
  YT_RETURN_IF_ERROR(
      tm.Insert(mickey.get(), "Bookings",
                Row({Value::Str("Mickey"), Value::Int(122)}))
          .status());
  YT_RETURN_IF_ERROR(
      tm.Insert(minnie.get(), "Bookings",
                Row({Value::Str("Minnie"), Value::Int(122)}))
          .status());
  // They entangled on flight 122 (persistent ENTANGLE record).
  YT_RETURN_IF_ERROR(tm.LogEntangle(1, {mickey.get(), minnie.get()}));

  if (torn_group_commit) {
    // Crash injection: Mickey's COMMIT record reaches the disk, the
    // GROUP_COMMIT record does not.
    YT_RETURN_IF_ERROR(
        wal.AppendAndFlush(WalRecord::Commit(mickey->id())).status());
    std::printf("  ...crash after Mickey's COMMIT, before GROUP_COMMIT\n");
  } else {
    YT_RETURN_IF_ERROR(tm.CommitGroup({mickey.get(), minnie.get()}));
    std::printf("  ...group committed cleanly, then crash\n");
  }
  return Status::Ok();  // drop everything: the "crash"
}

Status Recover(const std::string& wal_path) {
  YT_ASSIGN_OR_RETURN(RecoveryManager::Result r,
                      RecoveryManager::Recover(wal_path));
  std::printf("  recovery: %zu durably committed, %zu rolled back by the "
              "group-commit rule, %zu discarded\n",
              r.committed.size(), r.rolled_back.size(), r.discarded.size());
  Table* t = r.db->GetTable("Bookings").value();
  std::printf("  Bookings after recovery (%zu rows):\n", t->size());
  t->Scan([](RowId, const Row& row) {
    std::printf("    %s flight %s\n", row[0].as_string().c_str(),
                row[1].ToString().c_str());
    return true;
  });
  return Status::Ok();
}

}  // namespace

int main() {
  std::string wal_path = "/tmp/yt_example_crash.walog";

  std::printf("Case 1: crash tears the group commit apart\n");
  if (Status s = Scenario(wal_path, /*torn_group_commit=*/true); !s.ok()) {
    std::fprintf(stderr, "failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = Recover(wal_path); !s.ok()) {
    std::fprintf(stderr, "failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("  => neither booking survived: no durable widow.\n\n");

  std::printf("Case 2: the GROUP_COMMIT record made it\n");
  if (Status s = Scenario(wal_path, /*torn_group_commit=*/false); !s.ok()) {
    std::fprintf(stderr, "failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = Recover(wal_path); !s.ok()) {
    std::fprintf(stderr, "failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("  => both bookings durable: the group is atomic.\n");
  std::remove(wal_path.c_str());
  return 0;
}
