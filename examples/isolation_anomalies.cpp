// The paper's Figure 3 anomalies, machine-checked: builds the widowed-
// transaction schedule (3a) and the unrepeatable quasi-read schedule (3b),
// runs the entangled-isolation checker (Definition C.5) on each, and shows
// the Theorem 3.6 oracle-serializability verdicts.

#include <cstdio>

#include "src/isolation/checker.h"
#include "src/isolation/oracle.h"

using namespace youtopia;
using iso::IsolationChecker;
using iso::Op;
using iso::OracleSerializability;
using iso::Schedule;

namespace {

ObjectRef Obj(const std::string& name) { return ObjectRef{name, 0}; }

void Show(const char* title, const Schedule& s) {
  std::printf("%s\n  schedule: %s\n", title, s.ToString().c_str());
  std::printf("  with quasi-reads: %s\n",
              s.WithQuasiReads().ToString().c_str());
  iso::IsolationReport report = IsolationChecker::Check(s);
  std::printf("  verdict: %s\n", report.ToString().c_str());
  auto oracle = OracleSerializability::CheckAnyOrder(s, {{"Airlines", 7}});
  std::printf("  oracle-serializable (any order): %s%s%s\n\n",
              oracle.oracle_serializable ? "YES" : "NO",
              oracle.reason.empty() ? "" : " — ", oracle.reason.c_str());
}

}  // namespace

int main() {
  // --- Figure 3(a): widowed transaction. Mickey (1) and Minnie (2)
  // entangle on flight and hotel; Minnie aborts during the hotel booking
  // while Mickey commits.
  {
    auto s = Schedule::Create(
        {Op::RG(1, Obj("Flights")), Op::RG(2, Obj("Flights")),
         Op::E(1, {1, 2}), Op::W(1, Obj("Tickets")), Op::W(2, Obj("Tickets")),
         Op::RG(1, Obj("Hotels")), Op::RG(2, Obj("Hotels")), Op::E(2, {1, 2}),
         Op::W(1, Obj("Rooms")), Op::A(2), Op::C(1)});
    Show("Figure 3(a) — widowed transaction:", s.value());
  }

  // --- Figure 3(b): unrepeatable quasi-read. Minnie (2) grounds on
  // Airlines; entangling gives Mickey (1) a quasi-read on it; Donald (3)
  // inserts flight 125; Mickey then reads Airlines directly and bases a
  // write on what he sees.
  {
    auto s = Schedule::Create(
        {Op::RG(2, Obj("Airlines")), Op::RG(1, Obj("Flights")),
         Op::E(1, {1, 2}), Op::W(3, Obj("Airlines")), Op::C(3),
         Op::R(1, Obj("Airlines")), Op::W(1, Obj("Plan")), Op::C(1),
         Op::C(2)});
    Show("Figure 3(b) — unrepeatable quasi-read:", s.value());
  }

  // --- The same interleaving WITHOUT entanglement is perfectly fine:
  // Donald's insert between two independent readers is not an anomaly.
  {
    auto s = Schedule::Create(
        {Op::R(2, Obj("Airlines")), Op::R(1, Obj("Flights")),
         Op::W(3, Obj("Airlines")), Op::C(3), Op::R(1, Obj("Airlines")),
         Op::W(1, Obj("Plan")), Op::C(1), Op::C(2)});
    Show("Control — same interleaving, no entanglement:", s.value());
  }

  // --- A clean entangled execution (the Appendix C.1 example) passes and
  // serializes.
  {
    auto s = Schedule::Create(
        {Op::RG(1, Obj("x")), Op::RG(2, Obj("y")), Op::R(3, Obj("z")),
         Op::E(1, {1, 2}), Op::W(1, Obj("z")), Op::W(2, Obj("w")), Op::C(1),
         Op::C(2), Op::C(3)});
    Show("Appendix C.1 example — entangled-isolated:", s.value());
  }

  std::printf(
      "Note: Figure 3's anomalous schedules can still be final-state\n"
      "oracle-serializable — Theorem 3.6 is one-directional (entangled\n"
      "isolation IMPLIES oracle-serializability, not vice versa). The\n"
      "anomalies are about the consistency of what a transaction OBSERVES,\n"
      "which final-state equivalence alone cannot capture.\n");
  return 0;
}
