// Quickstart: the paper's Figure 1 example end to end.
//
// Mickey and Minnie each pose an entangled query over the flight database;
// the system answers both simultaneously with a coordinated choice of
// flight (mutual constraint satisfaction, Figure 1(b)).

#include <cstdio>

#include "src/eq/compiler.h"
#include "src/eq/coordinator.h"
#include "src/eq/grounder.h"
#include "src/lock/lock_manager.h"
#include "src/sql/parser.h"
#include "src/storage/database.h"
#include "src/txn/transaction_manager.h"
#include "src/workload/travel_data.h"

using namespace youtopia;

namespace {

StatusOr<eq::EntangledQuerySpec> Compile(const std::string& text,
                                         const Database& db,
                                         const std::string& who) {
  YT_ASSIGN_OR_RETURN(sql::ParsedStatement stmt,
                      sql::Parser::ParseStatement(text));
  return eq::Compiler::Compile(*stmt.entangled, {}, db, who);
}

Status RunDemo() {
  // --- The Figure 1(a) database.
  Database db;
  LockManager locks;
  TransactionManager tm(&db, &locks, nullptr);
  YT_RETURN_IF_ERROR(workload::TravelData::BuildFigure1Tables(&tm));

  // --- The two entangled queries, verbatim from Section 2 (dates are day
  // numbers: May 3 = 503).
  YT_ASSIGN_OR_RETURN(
      eq::EntangledQuerySpec mickey,
      Compile("SELECT 'Mickey', fno, fdate INTO ANSWER Reservation "
              "WHERE fno, fdate IN (SELECT fno, fdate FROM Flights "
              "WHERE dest='LA') "
              "AND ('Minnie', fno, fdate) IN ANSWER Reservation CHOOSE 1",
              db, "Mickey"));
  YT_ASSIGN_OR_RETURN(
      eq::EntangledQuerySpec minnie,
      Compile("SELECT 'Minnie', fno, fdate INTO ANSWER Reservation "
              "WHERE fno, fdate IN (SELECT fno, fdate FROM Flights F, "
              "Airlines A WHERE F.dest='LA' AND F.fno=A.fno "
              "AND A.airline='United') "
              "AND ('Mickey', fno, fdate) IN ANSWER Reservation CHOOSE 1",
              db, "Minnie"));

  std::printf("Intermediate representation (paper Fig. 7a):\n");
  std::printf("  Mickey: %s\n", mickey.ToString().c_str());
  std::printf("  Minnie: %s\n\n", minnie.ToString().c_str());

  // --- Ground both queries (grounding reads under table S locks).
  auto txn = tm.Begin();
  std::vector<eq::EvalItem> items(2);
  items[0].spec = &mickey;
  items[0].txn = 1;
  YT_ASSIGN_OR_RETURN(items[0].groundings,
                      eq::Grounder::Ground(mickey, &tm, txn.get()));
  items[1].spec = &minnie;
  items[1].txn = 2;
  YT_ASSIGN_OR_RETURN(items[1].groundings,
                      eq::Grounder::Ground(minnie, &tm, txn.get()));

  std::printf("Groundings (paper Fig. 7b):\n");
  for (size_t i = 0; i < items.size(); ++i) {
    for (const auto& g : items[i].groundings) {
      std::printf("  %s\n", g.ToString().c_str());
    }
  }

  // --- Joint evaluation: find a coordinating set.
  eq::EvalResult result = eq::Coordinator::Evaluate(items, 1);
  std::printf("\nAnswers:\n");
  const char* names[] = {"Mickey", "Minnie"};
  for (size_t i = 0; i < 2; ++i) {
    const eq::Outcome& o = result.outcomes[i];
    if (o.kind == eq::OutcomeKind::kAnswered) {
      std::printf("  %s -> %s%s   (entanglement op E%llu)\n", names[i],
                  o.answers[0].first.c_str(),
                  o.answers[0].second.ToString().c_str(),
                  static_cast<unsigned long long>(o.eid));
    } else {
      std::printf("  %s -> no answer\n", names[i]);
    }
  }
  std::printf("\nANSWER relation contents:\n");
  for (const auto& [rel, rows] : result.answer_relations) {
    for (const Row& r : rows) {
      std::printf("  %s%s\n", rel.c_str(), r.ToString().c_str());
    }
  }
  YT_RETURN_IF_ERROR(tm.Commit(txn.get()));
  std::printf(
      "\nBoth flew on the same United flight; flight 124 (USAir) was never\n"
      "chosen because Minnie's constraints exclude it.\n");
  return Status::Ok();
}

}  // namespace

int main() {
  Status s = RunDemo();
  if (!s.ok()) {
    std::fprintf(stderr, "quickstart failed: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
