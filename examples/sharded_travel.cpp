// Sharded quickstart: the travel workload over a 4-shard router.
//
// Users and flights are hash-partitioned by primary key across four
// in-process shards (each with its own database, lock manager, and WAL);
// bookings are rows in the partitioned Reserve table. Two bookings are
// made:
//   * a CROSS-SHARD trip — the booking transaction writes Reserve rows
//     whose keys live on different shards, so commit runs classical
//     two-phase commit: each shard force-writes PREPARE, the coordinator
//     force-writes the commit decision to its own log, then the shards are
//     told;
//   * a SAME-SHARD trip — both writes land on one shard, so commit takes
//     the one-phase fast path: no prepare records at all (watch the stats).

#include <cstdio>
#include <filesystem>

#include "src/shard/router.h"
#include "src/sql/session.h"
#include "src/wal/wal_reader.h"

using namespace youtopia;

namespace {

Status RunDemo() {
  const std::string dir =
      std::filesystem::temp_directory_path() / "youtopia_sharded_travel";
  std::filesystem::remove_all(dir);

  shard::Router::Options opts;
  opts.num_shards = 4;
  opts.dir = dir;
  YT_ASSIGN_OR_RETURN(std::unique_ptr<shard::Router> router,
                      shard::Router::Open(opts));

  // --- Schema + data. Reserve is partitioned by uid (explicit partition
  // columns — it has no primary key), so one user's bookings live on one
  // shard.
  sql::Session ddl(router.get());
  YT_RETURN_IF_ERROR(
      ddl.Execute("CREATE TABLE User (uid INT PRIMARY KEY, hometown VARCHAR)")
          .status());
  YT_RETURN_IF_ERROR(
      router->SetPartitioning("Reserve", {"uid"}));
  YT_RETURN_IF_ERROR(
      ddl.Execute("CREATE TABLE Reserve (uid INT, fid INT)").status());
  for (int uid = 0; uid < 32; ++uid) {
    YT_RETURN_IF_ERROR(router->Load(
        "User", Row({Value::Int(uid),
                     Value::Str(uid % 2 ? "CITY01" : "CITY02")})));
  }

  // Pick two users on different shards and two on the same shard.
  auto shard_of = [&](int64_t uid) {
    return router->shard_map().ShardOfKey(Row({Value::Int(uid)}));
  };
  int64_t alice = 0, bob = 1, carol = 1;
  while (shard_of(bob) == shard_of(alice)) ++bob;
  while (shard_of(carol) != shard_of(alice) || carol == alice) ++carol;

  std::printf("users: alice=%lld (shard %zu), bob=%lld (shard %zu), "
              "carol=%lld (shard %zu)\n",
              static_cast<long long>(alice), shard_of(alice),
              static_cast<long long>(bob), shard_of(bob),
              static_cast<long long>(carol), shard_of(carol));

  // --- The cross-shard booking: alice and bob reserve the same flight in
  // ONE transaction. Writes land on two shards => two-phase commit.
  {
    sql::Session s(router.get());
    YT_RETURN_IF_ERROR(s.Execute("BEGIN").status());
    YT_RETURN_IF_ERROR(
        s.Execute("INSERT INTO Reserve VALUES (" + std::to_string(alice) +
                  ", 500)")
            .status());
    YT_RETURN_IF_ERROR(
        s.Execute("INSERT INTO Reserve VALUES (" + std::to_string(bob) +
                  ", 500)")
            .status());
    YT_RETURN_IF_ERROR(s.Execute("COMMIT").status());
  }
  std::printf("cross-shard booking committed: two_phase_commits=%llu\n",
              static_cast<unsigned long long>(
                  router->stats().two_phase_commits.load()));

  // --- The same-shard booking: alice and carol share a shard, so the
  // identical flow commits one-phase — no prepare round.
  {
    sql::Session s(router.get());
    YT_RETURN_IF_ERROR(s.Execute("BEGIN").status());
    YT_RETURN_IF_ERROR(
        s.Execute("INSERT INTO Reserve VALUES (" + std::to_string(alice) +
                  ", 501)")
            .status());
    YT_RETURN_IF_ERROR(
        s.Execute("INSERT INTO Reserve VALUES (" + std::to_string(carol) +
                  ", 501)")
            .status());
    YT_RETURN_IF_ERROR(s.Execute("COMMIT").status());
  }
  std::printf("same-shard booking committed:  single_shard_txns=%llu, "
              "two_phase_commits=%llu\n",
              static_cast<unsigned long long>(
                  router->stats().single_shard_txns.load()),
              static_cast<unsigned long long>(
                  router->stats().two_phase_commits.load()));

  // --- Reads route and fan out through the same plans as ever.
  sql::Session reader(router.get());
  YT_ASSIGN_OR_RETURN(
      sql::QueryResult bookings,
      reader.Execute("SELECT uid, fid FROM Reserve WHERE fid = 500"));
  std::printf("flight 500 passengers (fanout read): %zu rows\n",
              bookings.rows.size());

  // --- Peek at the WAL streams: prepares exist only on the shards the
  // cross-shard booking wrote, and the coordinator logged one decision.
  for (size_t s = 0; s < router->num_shards(); ++s) {
    YT_ASSIGN_OR_RETURN(WalReader::Result log,
                        WalReader::ReadAll(router->shard_wal_path(s)));
    size_t prepares = 0;
    for (const WalRecord& rec : log.records) {
      if (rec.type == WalRecordType::kPrepare) ++prepares;
    }
    std::printf("shard %zu: %zu WAL records, %zu PREPARE\n", s,
                log.records.size(), prepares);
  }
  YT_ASSIGN_OR_RETURN(WalReader::Result coord,
                      WalReader::ReadAll(router->coord_wal_path()));
  size_t decisions = 0;
  for (const WalRecord& rec : coord.records) {
    if (rec.type == WalRecordType::kCommitDecision) ++decisions;
  }
  std::printf("coordinator log: %zu records, %zu COMMIT_DECISION\n",
              coord.records.size(), decisions);

  std::filesystem::remove_all(dir);
  return Status::Ok();
}

}  // namespace

int main() {
  Status s = RunDemo();
  if (!s.ok()) {
    std::fprintf(stderr, "sharded_travel failed: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
