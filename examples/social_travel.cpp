// The §5.2 / Appendix-D social travel workload at a small scale: builds a
// synthetic Slashdot-like friendship graph plus the travel schema, then
// pushes all six workload variants (NoSocial/Social/Entangled x -T/-Q)
// through the run-based engine and reports throughput and coordination
// statistics.

#include <cstdio>

#include "src/etxn/engine.h"
#include "src/txn/transaction_manager.h"
#include "src/workload/workloads.h"

using namespace youtopia;

namespace {

Status RunDemo() {
  Database db;
  LockManager locks;
  TransactionManager tm(&db, &locks, nullptr);

  workload::TravelDataOptions dopts;
  dopts.num_users = 800;
  dopts.edges_per_node = 4;
  dopts.num_cities = 8;
  YT_ASSIGN_OR_RETURN(workload::TravelData data,
                      workload::TravelData::Build(&tm, dopts));
  std::printf("Travel database: %zu users, %zu friendships (max degree %zu), "
              "%zu same-town friend pairs, %zu flights\n\n",
              data.num_users(), data.graph().num_edges(),
              data.graph().MaxDegree(), data.same_town_pairs().size(),
              db.GetTable("Flight").value()->size());

  std::printf("%-14s %8s %10s %8s %8s %10s\n", "workload", "txns", "time(ms)",
              "runs", "evals", "entangles");
  for (workload::WorkloadType type :
       {workload::WorkloadType::kNoSocialT, workload::WorkloadType::kSocialT,
        workload::WorkloadType::kEntangledT,
        workload::WorkloadType::kNoSocialQ, workload::WorkloadType::kSocialQ,
        workload::WorkloadType::kEntangledQ}) {
    etxn::EngineOptions eopts;
    eopts.auto_scheduler = true;
    eopts.num_connections = 25;
    eopts.statement_latency_micros = 100;
    eopts.run_frequency = 20;
    eopts.scheduler_poll_micros = 2000;
    eopts.default_timeout_micros = 30'000'000;
    etxn::EntangledTransactionEngine engine(&tm, eopts);
    workload::WorkloadGenerator gen(&data, 7);
    YT_ASSIGN_OR_RETURN(auto specs, gen.Generate(type, 100, 30'000'000));

    Stopwatch sw(SystemClock::Default());
    std::vector<std::shared_ptr<etxn::TxnHandle>> handles;
    for (auto& s : specs) handles.push_back(engine.Submit(std::move(s)));
    engine.WaitAll(handles);
    double ms = sw.ElapsedMicros() / 1000.0;
    size_t ok = 0;
    for (auto& h : handles) {
      if (h->Wait().ok()) ++ok;
    }
    std::printf("%-14s %5zu/%-3zu %9.1f %8lu %8lu %10lu\n",
                workload::WorkloadTypeName(type), ok, handles.size(), ms,
                engine.stats().runs.load(), engine.stats().eval_rounds.load(),
                engine.stats().entangle_ops.load());
  }

  std::printf("\nReserve rows written: %zu\n",
              db.GetTable("Reserve").value()->size());
  return Status::Ok();
}

}  // namespace

int main() {
  Status s = RunDemo();
  if (!s.ok()) {
    std::fprintf(stderr, "social_travel failed: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
