// The paper's Figure 2 / Figure 4 scenario on the full engine: Mickey and
// Minnie submit multi-query entangled transactions (flight THEN hotel);
// Donald wants to coordinate with the absent Daffy. One run answers Mickey
// and Minnie's queries in two evaluation rounds and group-commits them,
// while Donald's transaction is aborted back to the dormant pool and
// finally times out — exactly the walkthrough of Figure 4.

#include <cstdio>

#include "src/etxn/engine.h"
#include "src/txn/transaction_manager.h"
#include "src/workload/travel_data.h"

using namespace youtopia;

namespace {

StatusOr<etxn::EntangledTransactionSpec> TravelProgram(
    const std::string& me, const std::string& partner) {
  // Figure 2, with dates as day numbers (May 3 = 503; departure fixed 506).
  std::string script =
      "BEGIN TRANSACTION WITH TIMEOUT 300 MILLISECONDS;"
      "SELECT '" + me + "', fno, fdate AS @ArrivalDay INTO ANSWER FlightRes "
      "WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA') "
      "AND ('" + partner + "', fno, fdate) IN ANSWER FlightRes CHOOSE 1;"
      "INSERT INTO Bookings (name, what, ref) VALUES ('" + me +
      "', 'flight', @ArrivalDay);"
      "SET @StayLength = 506 - @ArrivalDay;"
      "SELECT '" + me + "', hid, @ArrivalDay, @StayLength "
      "INTO ANSWER HotelRes "
      "WHERE hid IN (SELECT hid FROM Hotels WHERE location='LA') "
      "AND ('" + partner + "', hid, @ArrivalDay, @StayLength) IN "
      "ANSWER HotelRes CHOOSE 1;"
      "INSERT INTO Bookings (name, what, ref) VALUES ('" + me +
      "', 'hotel', @StayLength);"
      "COMMIT;";
  return etxn::EntangledTransactionSpec::FromScript(me, script);
}

Status RunDemo() {
  Database db;
  LockManager locks;
  TransactionManager tm(&db, &locks, nullptr);
  YT_RETURN_IF_ERROR(workload::TravelData::BuildFigure1Tables(&tm));
  YT_RETURN_IF_ERROR(
      tm.CreateTable("Bookings", Schema({{"name", TypeId::kString},
                                         {"what", TypeId::kString},
                                         {"ref", TypeId::kInt64}}))
          .status());

  etxn::EngineOptions opts;
  opts.auto_scheduler = false;  // drive runs explicitly for the narrative
  opts.num_connections = 8;
  etxn::EntangledTransactionEngine engine(&tm, opts);

  YT_ASSIGN_OR_RETURN(auto mickey, TravelProgram("Mickey", "Minnie"));
  YT_ASSIGN_OR_RETURN(auto minnie, TravelProgram("Minnie", "Mickey"));
  YT_ASSIGN_OR_RETURN(auto donald, TravelProgram("Donald", "Daffy"));

  auto hm = engine.Submit(mickey);
  auto hn = engine.Submit(minnie);
  auto hd = engine.Submit(donald);
  std::printf("Submitted Mickey, Minnie and Donald (Donald waits for the "
              "absent Daffy).\n\n");

  etxn::RunReport r1 = engine.RunOnce();
  std::printf("Run %llu: participants=%zu eval_rounds=%zu entangle_ops=%zu "
              "group_commits=%zu committed=%zu retried=%zu\n",
              static_cast<unsigned long long>(r1.run_id), r1.participants,
              r1.eval_rounds, r1.entangle_ops, r1.group_commits, r1.committed,
              r1.retried);

  std::printf("\nMickey:  %s", hm->Wait().ToString().c_str());
  std::printf("  arrival day %s, stay %s nights\n",
              hm->final_vars().at("arrivalday").ToString().c_str(),
              hm->final_vars().at("staylength").ToString().c_str());
  std::printf("Minnie:  %s", hn->Wait().ToString().c_str());
  std::printf("  arrival day %s, stay %s nights\n",
              hn->final_vars().at("arrivalday").ToString().c_str(),
              hn->final_vars().at("staylength").ToString().c_str());
  std::printf("Donald:  still dormant (attempts so far: %d)\n\n",
              hd->attempts());

  std::printf("Bookings table after the run:\n");
  Table* bookings = db.GetTable("Bookings").value();
  bookings->Scan([](RowId, const Row& row) {
    std::printf("  %-8s %-8s %s\n", row[0].as_string().c_str(),
                row[1].as_string().c_str(), row[2].ToString().c_str());
    return true;
  });

  std::printf("\nLetting Donald's 300ms timeout expire...\n");
  SystemClock::Default()->SleepMicros(320'000);
  etxn::RunReport r2 = engine.RunOnce();
  std::printf("Run %llu: timed_out=%zu\n",
              static_cast<unsigned long long>(r2.run_id), r2.timed_out);
  std::printf("Donald:  %s\n", hd->Wait().ToString().c_str());
  return Status::Ok();
}

}  // namespace

int main() {
  Status s = RunDemo();
  if (!s.ok()) {
    std::fprintf(stderr, "travel_planning failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  return 0;
}
