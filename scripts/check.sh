#!/usr/bin/env bash
# Tier-1 verification: configure + build + ctest, exactly as ROADMAP.md
# specifies. With --bench-smoke, additionally runs a short bench_sql pass
# from a dedicated Release tree (build-bench) and emits a BENCH_sql.json
# trajectory point in the repo root. Debug binaries are never benched: the
# configuration is checked, the binary refuses to run without NDEBUG, and
# the emitted JSON is grepped for the release marker.
# With --tsan, additionally builds a ThreadSanitizer tree (build-tsan) and
# races the lock/txn/sql suites under it — the key-range lock conflict
# paths (range reader vs point writer, FIFO queueing, deadlock cycles) are
# all exercised by those three binaries' concurrent tests.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

for arg in "$@"; do
  case "${arg}" in
  --bench-smoke)
    cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release \
          -DYOUTOPIA_BUILD_TESTS=OFF -DYOUTOPIA_BUILD_EXAMPLES=OFF
    build_type=$(grep '^CMAKE_BUILD_TYPE' build-bench/CMakeCache.txt \
                 | cut -d= -f2)
    if [[ "${build_type}" != "Release" ]]; then
      echo "refusing to bench: build-bench is '${build_type}', not Release" >&2
      exit 1
    fi
    cmake --build build-bench -j --target bench_sql
    ./build-bench/bench_sql \
      --benchmark_filter='BM_PointSelect|BM_PointSelectScan|BM_PointUpdate|BM_ThreeWayJoin|BM_ThreeWayJoinSnapshot|BM_GroundEntangled|BM_GroundEntangledSnapshot|BM_RangeSelect|BM_RangeSelectScan|BM_OrderByLimit|BM_OrderByLimitScan' \
      --benchmark_min_time=0.1 \
      --benchmark_out=BENCH_sql.json \
      --benchmark_out_format=json
    if ! grep -q '"youtopia_build_type": "release"' BENCH_sql.json; then
      echo "BENCH_sql.json came from a non-release binary; discarding" >&2
      rm -f BENCH_sql.json
      exit 1
    fi
    echo "wrote BENCH_sql.json (Release)"
    ;;
  --tsan)
    cmake -B build-tsan -S . -DYOUTOPIA_TSAN=ON \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DYOUTOPIA_BUILD_BENCH=OFF -DYOUTOPIA_BUILD_EXAMPLES=OFF
    cmake --build build-tsan -j --target lock_test txn_test sql_test
    for t in lock_test txn_test sql_test; do
      echo "== tsan: ${t}"
      ./build-tsan/${t}
    done
    echo "tsan suites passed"
    ;;
  *)
    echo "unknown argument: ${arg} (expected --bench-smoke and/or --tsan)" >&2
    exit 1
    ;;
  esac
done
