#!/usr/bin/env bash
# Tier-1 verification: configure + build + ctest, exactly as ROADMAP.md
# specifies. Every suite runs under a ctest per-test timeout (set in
# CMakeLists.txt) so a hung test — e.g. a wedged shared-scan consumer —
# fails fast instead of stalling the whole run; on failure this script
# names the suites that timed out.
# With --bench-smoke, additionally runs a short bench_sql pass plus a
# fig6a concurrency point from a dedicated Release tree (build-bench) and
# emits BENCH_sql.json / BENCH_fig6a.json trajectory points in the repo
# root. bench_sql prints a MetricsRegistry::DumpText() snapshot to stderr
# on exit, and the *MetricsOff ablation pair is diffed into an
# instrumentation-overhead table (budget: <= 5%). Debug binaries are never benched: the configuration is checked,
# bench_sql refuses to run without NDEBUG, and the emitted JSON is grepped
# for the release marker. Adding --bench-strict turns the regression diff
# into a gate: any benchmark more than 1.5x slower than the committed
# baseline fails the script (1.3x stays a warning — smoke boxes are noisy).
# With --tsan, additionally builds a ThreadSanitizer tree (build-tsan) and
# races the lock/txn/sql/shard/mvcc/torture suites under it — the key-range
# lock conflict paths, the shared-scan attach/produce/wrap machinery, the
# shard router's parallel fanout drains + concurrent-writer differential,
# the MVCC snapshot-vs-writer races, and the fault-injected crash-recover
# cycles are all exercised by those binaries' concurrent tests.
# With --torture, runs the long crash-recover torture gate: >= 50 seeded
# randomized kill/recover cycles under a wall-clock budget. The seed is
# printed on entry and repeated on failure; --torture-seed N reruns a
# reported seed bit-exactly. The torture binary dumps the global metrics
# snapshot on exit and again (alongside the seed) on failure.
set -euo pipefail

cd "$(dirname "$0")/.."

bench_smoke=0
bench_strict=0
tsan=0
torture=0
# Default torture seed: wall clock, so every unpinned gate run explores a
# fresh schedule. Printed either way — failures are always reproducible.
torture_seed=$(date +%s)
while [[ $# -gt 0 ]]; do
  case "$1" in
  --bench-smoke) bench_smoke=1 ;;
  --bench-strict) bench_smoke=1; bench_strict=1 ;;
  --tsan) tsan=1 ;;
  --torture) torture=1 ;;
  --torture-seed)
    torture=1
    torture_seed="$2"
    shift
    ;;
  *)
    echo "unknown argument: $1 (expected --bench-smoke, --bench-strict," \
         "--tsan, --torture, and/or --torture-seed N)" >&2
    exit 1
    ;;
  esac
  shift
done

cmake -B build -S .
cmake --build build -j
ctest_log=$(mktemp)
if ! (cd build && ctest --output-on-failure -j 2>&1 | tee "${ctest_log}"); then
  if grep -q 'Timeout' "${ctest_log}"; then
    echo "== suites that timed out:" >&2
    grep -E '\*\*\*Timeout' "${ctest_log}" >&2
  fi
  rm -f "${ctest_log}"
  exit 1
fi
rm -f "${ctest_log}"

if [[ "${bench_smoke}" == 1 ]]; then
  cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release \
        -DYOUTOPIA_BUILD_TESTS=OFF -DYOUTOPIA_BUILD_EXAMPLES=OFF
  build_type=$(grep '^CMAKE_BUILD_TYPE' build-bench/CMakeCache.txt \
               | cut -d= -f2)
  if [[ "${build_type}" != "Release" ]]; then
    echo "refusing to bench: build-bench is '${build_type}', not Release" >&2
    exit 1
  fi
  cmake --build build-bench -j --target bench_sql bench_fig6a_concurrency
  # Keep the committed baseline around for the regression diff below.
  bench_baseline=$(mktemp)
  git show HEAD:BENCH_sql.json > "${bench_baseline}" 2>/dev/null || \
    : > "${bench_baseline}"
  ./build-bench/bench_sql \
    --benchmark_filter='BM_PointSelect|BM_PointSelectScan|BM_PointUpdate|BM_ThreeWayJoin|BM_ThreeWayJoinSnapshot|BM_GroundEntangled|BM_GroundEntangledSnapshot|BM_RangeSelect|BM_RangeSelectScan|BM_OrderByLimit|BM_OrderByLimitScan|BM_ConcurrentScans|BM_ShardedPointSelect|BM_ShardedScan|BM_ShardedScanFanout|BM_ShardedScanBatchSweep|BM_GroupByAggregate|BM_ReadMostlyMixed|BM_SnapshotScanUnderWriters|BM_GroupCommit|BM_ManySessions' \
    --benchmark_min_time=0.1 \
    --benchmark_out=BENCH_sql.json \
    --benchmark_out_format=json
  if ! grep -q '"youtopia_build_type": "release"' BENCH_sql.json; then
    echo "BENCH_sql.json came from a non-release binary; discarding" >&2
    rm -f BENCH_sql.json
    exit 1
  fi
  echo "wrote BENCH_sql.json (Release)"
  # Diff the fresh run against the committed trajectory point: a table of
  # real-time ratios, warning on anything more than 1.3x slower. Under
  # --bench-strict, >1.5x fails the script.
  python3 - "${bench_baseline}" BENCH_sql.json "${bench_strict}" <<'PYEOF'
import json, sys

def times(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError):
        return {}
    return {b["name"]: b["real_time"] for b in doc.get("benchmarks", [])
            if b.get("run_type") == "iteration"}

old, new = times(sys.argv[1]), times(sys.argv[2])
strict = sys.argv[3] == "1"
common = [n for n in new if n in old]
if not common:
    print("no committed BENCH_sql.json baseline; skipping regression diff")
    sys.exit(0)
width = max(len(n) for n in common)
print(f"== bench regression table (vs committed BENCH_sql.json)")
print(f"{'benchmark':<{width}}  {'old_us':>10}  {'new_us':>10}  {'ratio':>6}")
regressed = []
failed = []
for name in common:
    ratio = new[name] / old[name] if old[name] > 0 else float("inf")
    flag = ""
    if ratio > 1.5:
        flag = "  <-- FAIL >1.5x" if strict else "  <-- WARN >1.5x"
    elif ratio > 1.3:
        flag = "  <-- WARN >1.3x"
    print(f"{name:<{width}}  {old[name]:>10.1f}  {new[name]:>10.1f}"
          f"  {ratio:>6.2f}{flag}")
    if ratio > 1.3:
        regressed.append(name)
    if ratio > 1.5:
        failed.append(name)
for name in sorted(set(new) - set(old)):
    print(f"{name:<{width}}  {'-':>10}  {new[name]:>10.1f}    new")
if regressed:
    print(f"WARNING: {len(regressed)} benchmark(s) regressed >1.3x: "
          + ", ".join(regressed))
if strict and failed:
    print(f"FAIL (--bench-strict): {len(failed)} benchmark(s) regressed "
          f">1.5x: " + ", ".join(failed))
    sys.exit(1)
PYEOF
  rm -f "${bench_baseline}"
  # Instrumentation overhead: each *MetricsOff ablation against its
  # metrics-on twin. Informational — the enabled path's budget is <= 5%,
  # but smoke boxes are too noisy to hard-gate single-digit percentages.
  python3 - BENCH_sql.json <<'PYEOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
times = {b["name"]: b["real_time"] for b in doc.get("benchmarks", [])
         if b.get("run_type") == "iteration"}
pairs = []
for name, t in times.items():
    if "MetricsOff" in name:
        on = name.replace("MetricsOff", "")
        if on in times:
            pairs.append((on, times[on], t))
if pairs:
    print("== instrumentation overhead (metrics on vs off)")
    for on, t_on, t_off in sorted(pairs):
        pct = (t_on / t_off - 1.0) * 100.0 if t_off > 0 else float("inf")
        flag = "  <-- WARN >5%" if pct > 5.0 else ""
        print(f"{on}: on={t_on:.2f}us off={t_off:.2f}us "
              f"overhead={pct:+.1f}%{flag}")
PYEOF
  # One fig6a point per workload extreme: many connections hammering the
  # same tables — the regime scan sharing is for (watch the
  # shared_scan_attaches counter) — plus the MVCC read-path ablation pair
  # (NoSocial-T re-leveled to kReadCommitted, snapshot reads on vs off).
  ./build-bench/bench_fig6a_concurrency \
    --benchmark_filter='Fig6a/(NoSocial-T|Entangled-Q|NoSocial-T-SnapRead|NoSocial-T-LockRead)/conns:50' \
    --benchmark_out=BENCH_fig6a.json \
    --benchmark_out_format=json
  if ! grep -q '"youtopia_build_type": "release"' BENCH_fig6a.json; then
    echo "BENCH_fig6a.json came from a non-release binary; discarding" >&2
    rm -f BENCH_fig6a.json
    exit 1
  fi
  echo "wrote BENCH_fig6a.json (Release)"
fi

if [[ "${tsan}" == 1 ]]; then
  cmake -B build-tsan -S . -DYOUTOPIA_TSAN=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DYOUTOPIA_BUILD_BENCH=OFF -DYOUTOPIA_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j \
        --target lock_test txn_test sql_test shard_test mvcc_test torture_test
  for t in lock_test txn_test sql_test shard_test mvcc_test; do
    echo "== tsan: ${t}"
    ./build-tsan/${t}
  done
  # A short torture slice under tsan: enough cycles to race the fault
  # probes, the crash latch, and recovery against the worker threads.
  echo "== tsan: torture_test (short slice)"
  YT_TORTURE_SEED="${torture_seed}" YT_TORTURE_CYCLES=8 \
    ./build-tsan/torture_test
  echo "tsan suites passed"
fi

if [[ "${torture}" == 1 ]]; then
  echo "== torture gate: seed=${torture_seed}" \
       "(rerun: scripts/check.sh --torture-seed ${torture_seed})"
  if ! YT_TORTURE_SEED="${torture_seed}" \
       YT_TORTURE_CYCLES=50 \
       YT_TORTURE_THREADS=4 \
       YT_TORTURE_TXNS=80 \
       YT_TORTURE_BUDGET_S=600 \
       ./build/torture_test --gtest_filter='TortureTest.*'; then
    echo "TORTURE FAILED — reproduce with:" \
         "scripts/check.sh --torture-seed ${torture_seed}" >&2
    exit 1
  fi
  # Ablation differential: the same gate with WAL group commit forced off
  # (flush-per-commit baseline). The main run's per-cycle coin flip covers
  # the mixed regime; this slice pins the ablation so a group-commit-only
  # bug cannot hide behind lucky flips.
  echo "== torture gate (group commit off): seed=${torture_seed}"
  if ! YT_TORTURE_SEED="${torture_seed}" \
       YT_TORTURE_CYCLES=12 \
       YT_TORTURE_THREADS=4 \
       YT_TORTURE_TXNS=80 \
       YT_TORTURE_BUDGET_S=180 \
       YT_TORTURE_GROUP_COMMIT=0 \
       ./build/torture_test --gtest_filter='TortureTest.*'; then
    echo "TORTURE (group commit off) FAILED — reproduce with:" \
         "YT_TORTURE_GROUP_COMMIT=0 scripts/check.sh --torture-seed" \
         "${torture_seed}" >&2
    exit 1
  fi
  echo "torture gate passed (seed=${torture_seed})"
fi
