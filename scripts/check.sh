#!/usr/bin/env bash
# Tier-1 verification: configure + build + ctest, exactly as ROADMAP.md
# specifies. With --bench-smoke, additionally runs a short bench_sql pass and
# emits a BENCH_sql.json trajectory point in the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "${1:-}" == "--bench-smoke" ]]; then
  ./build/bench_sql \
    --benchmark_filter='BM_PointSelect|BM_PointSelectScan|BM_PointUpdate' \
    --benchmark_min_time=0.1 \
    --benchmark_out=BENCH_sql.json \
    --benchmark_out_format=json
  echo "wrote BENCH_sql.json"
fi
