#ifndef YOUTOPIA_COMMON_CLOCK_H_
#define YOUTOPIA_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace youtopia {

using Duration = std::chrono::microseconds;
using TimePoint = std::chrono::steady_clock::time_point;

/// Abstract time source. The engine takes a Clock so that tests can use a
/// manually advanced clock (deterministic timeouts) while benches use wall
/// time.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Microseconds since an arbitrary epoch.
  virtual int64_t NowMicros() = 0;
  /// Blocks (or virtually advances) for the given duration.
  virtual void SleepMicros(int64_t micros) = 0;
};

/// std::chrono::steady_clock-backed wall clock.
class SystemClock : public Clock {
 public:
  int64_t NowMicros() override;
  void SleepMicros(int64_t micros) override;
  /// Process-wide shared instance.
  static SystemClock* Default();
};

/// Manually advanced clock for deterministic tests. SleepMicros advances the
/// clock instead of blocking.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_micros = 0) : now_(start_micros) {}
  int64_t NowMicros() override { return now_.load(); }
  void SleepMicros(int64_t micros) override { Advance(micros); }
  void Advance(int64_t micros) { now_.fetch_add(micros); }

 private:
  std::atomic<int64_t> now_;
};

/// Simple stopwatch over a Clock.
class Stopwatch {
 public:
  explicit Stopwatch(Clock* clock) : clock_(clock), start_(clock->NowMicros()) {}
  int64_t ElapsedMicros() const { return clock_->NowMicros() - start_; }
  double ElapsedSeconds() const { return ElapsedMicros() / 1e6; }
  void Restart() { start_ = clock_->NowMicros(); }

 private:
  Clock* clock_;
  int64_t start_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_CLOCK_H_
