#include "src/common/fault.h"

#include <algorithm>

namespace youtopia {

FaultInjector* FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return instance;
}

void FaultInjector::Arm(const std::string& site, SiteConfig config) {
  std::lock_guard<std::mutex> g(mu_);
  sites_[site] = SiteState{config, 0, 0};
  armed_.store(sites_.size(), std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> g(mu_);
  sites_.erase(site);
  armed_.store(sites_.size(), std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> g(mu_);
  sites_.clear();
  armed_.store(0, std::memory_order_relaxed);
  crashed_.store(false, std::memory_order_release);
  crash_site_.clear();
}

void FaultInjector::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> g(mu_);
  rng_.seed(seed);
}

bool FaultInjector::ShouldFire(SiteState* st) {
  ++st->hits;
  const SiteConfig& c = st->config;
  if (c.shots >= 0 && st->fires >= static_cast<uint64_t>(c.shots)) {
    return false;  // exhausted: keeps counting hits, stops firing
  }
  bool fire;
  if (c.nth > 0) {
    fire = st->hits == c.nth;
  } else {
    fire = c.probability >= 1.0 ||
           std::uniform_real_distribution<double>(0.0, 1.0)(rng_) <
               c.probability;
  }
  if (fire) ++st->fires;
  return fire;
}

void FaultInjector::LatchCrash(const std::string& site) {
  if (crash_site_.empty()) crash_site_ = site;  // first crash wins
  crashed_.store(true, std::memory_order_release);
}

Status FaultInjector::Hit(const char* site) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return Status::Ok();
  SiteState& st = it->second;
  if (st.config.action == Action::kShortWrite) {
    ++st.hits;  // short-write sites only fire through TornWriteLen
    return Status::Ok();
  }
  if (!ShouldFire(&st)) return Status::Ok();
  if (st.config.action == Action::kCrash) {
    LatchCrash(site);
    return Status::Internal(std::string("simulated crash at ") + site);
  }
  return Status(st.config.code,
                std::string("injected fault at ") + site);
}

size_t FaultInjector::TornWriteLen(const char* site, size_t frame_len) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || frame_len < 2) return frame_len;
  SiteState& st = it->second;
  if (st.config.action != Action::kShortWrite) return frame_len;
  if (!ShouldFire(&st)) return frame_len;
  size_t keep = st.config.keep_bytes;
  if (keep == kRandomTear) {
    keep = std::uniform_int_distribution<size_t>(1, frame_len - 1)(rng_);
  }
  keep = std::clamp<size_t>(keep, 1, frame_len - 1);
  LatchCrash(site);
  return keep;
}

void FaultInjector::ForceCrash(const std::string& why) {
  std::lock_guard<std::mutex> g(mu_);
  LatchCrash(why);
}

std::string FaultInjector::crash_site() const {
  std::lock_guard<std::mutex> g(mu_);
  return crash_site_;
}

void FaultInjector::ClearCrash() {
  std::lock_guard<std::mutex> g(mu_);
  crashed_.store(false, std::memory_order_release);
  crash_site_.clear();
}

uint64_t FaultInjector::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::FireCount(const std::string& site) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

}  // namespace youtopia
