#ifndef YOUTOPIA_COMMON_FAULT_H_
#define YOUTOPIA_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <unordered_map>

#include "src/common/status.h"

namespace youtopia {

/// Process-wide fault-injection registry — the engine's one switchboard for
/// simulated I/O failures, process crashes, and torn writes.
///
/// The engine's durability and commit paths probe *named sites* (dotted
/// `<layer>.<operation>` strings: "wal.append", "wal.flush",
/// "wal.append.torn", "2pc.before_prepare" ... "2pc.after_shard_decision",
/// "txn.phase2.append", "recovery.redo", "lock.acquire"). A test arms a
/// site with a trigger policy and an action; unarmed sites cost one relaxed
/// atomic load (`enabled()`), so production paths keep their speed.
///
/// Trigger policies (per armed site, evaluated per hit):
///   * nth-hit: fire exactly on the nth probe since arming (1-based) — the
///     seeded-schedule knob: a torture run picks nth from its RNG to land a
///     crash at a reproducible but arbitrary point of the schedule.
///   * probability: fire each hit with probability p (when nth == 0), drawn
///     from the injector's seeded RNG.
///   * shots: total number of fires allowed (default 1 = one-shot;
///     negative = unlimited). An exhausted site stops firing but keeps
///     counting hits.
///
/// Actions:
///   * kError — the site returns Status(code, ...); the engine treats it as
///     a real transient/IO failure (statement fails, commit aborts, ...).
///   * kCrash — latches the process-wide *crashed* state and returns an
///     error. Every WalWriter freezes instantly (appends/flushes rejected,
///     close discards the userspace buffer instead of flushing), so the log
///     files end up byte-identical to a SIGKILL at that point. The harness
///     then drops the engine, calls ClearCrash()/Reset(), and recovers.
///   * kShortWrite — consulted by WalWriter::Append via TornWriteLen: a
///     prefix of the framed record reaches the file, then the crash state
///     latches (a torn tail, exactly what a mid-write power cut leaves).
///
/// ForceCrash() is the same latch exposed as a panic switch: the engine
/// calls it when a commit-record or decision-record force-write fails,
/// because after a failed flush the durable state of that record is
/// unknowable — aborting in memory could contradict a record that did reach
/// the device (the classical fsync-failure rule). Stopping cold and letting
/// recovery decide is the only sound move, real fault or injected.
///
/// Thread-safe. Tests must Reset() when done so later tests (and the
/// process exit path) see a clean, unarmed injector.
class FaultInjector {
 public:
  enum class Action {
    kError,       ///< return Status(code) from the site
    kCrash,       ///< latch crashed state; WALs freeze; return error
    kShortWrite,  ///< torn WAL append: write a prefix, then crash
  };

  /// Marks "tear at a seeded-random byte within the frame".
  static constexpr size_t kRandomTear = static_cast<size_t>(-1);

  struct SiteConfig {
    Action action = Action::kError;
    /// Code returned by kError sites (kCrash always returns kInternal).
    StatusCode code = StatusCode::kInternal;
    /// Fire on exactly the nth hit since arming (1-based). 0 = fire per
    /// hit with `probability` instead.
    uint64_t nth = 0;
    double probability = 1.0;
    /// Fires allowed in total; negative = unlimited.
    int shots = 1;
    /// kShortWrite: bytes of the frame that reach the file. Clamped to
    /// [1, frame-1]; kRandomTear picks uniformly in that interval.
    size_t keep_bytes = kRandomTear;
  };

  /// The process-wide instance every engine site probes.
  static FaultInjector* Global();

  /// Arms (or re-arms, resetting its hit count) one site.
  void Arm(const std::string& site, SiteConfig config);
  void Disarm(const std::string& site);
  /// Disarms every site, clears the crash latch and all counters — the
  /// clean slate every test should leave behind.
  void Reset();
  /// Seeds the probability / random-tear RNG (torture reproducibility).
  void Seed(uint64_t seed);

  /// Fast probe guard: any site armed, or the crash latch set. Engine code
  /// checks this before calling Hit() so the unarmed cost is one load.
  bool enabled() const {
    return armed_.load(std::memory_order_relaxed) != 0 ||
           crashed_.load(std::memory_order_relaxed);
  }

  /// Probes `site`: Ok unless an armed config fires. kCrash fires latch
  /// the crash state before returning.
  Status Hit(const char* site);

  /// Probes a kShortWrite site: returns `frame_len` normally, or (on fire)
  /// the prefix length to write before dying — the crash state is latched
  /// so the caller's writer freezes right after the torn bytes.
  size_t TornWriteLen(const char* site, size_t frame_len);

  /// Latches the crash state directly (engine panic on ambiguous
  /// commit-record write failures, harness end-of-cycle kill).
  void ForceCrash(const std::string& why);
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  /// The site (or ForceCrash reason) that latched the crash.
  std::string crash_site() const;
  void ClearCrash();

  /// Probe / fire counts since a site was last armed (observability; a
  /// disarmed site reports 0).
  uint64_t HitCount(const std::string& site) const;
  uint64_t FireCount(const std::string& site) const;

 private:
  struct SiteState {
    SiteConfig config;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  FaultInjector() = default;

  /// Applies the trigger policy; true = this hit fires (consumes a shot).
  bool ShouldFire(SiteState* st);
  void LatchCrash(const std::string& site);

  mutable std::mutex mu_;
  std::unordered_map<std::string, SiteState> sites_;  // guarded by mu_
  std::mt19937_64 rng_{0x746f727475726521ull};        // guarded by mu_
  std::atomic<size_t> armed_{0};
  std::atomic<bool> crashed_{false};
  std::string crash_site_;  // guarded by mu_
};

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_FAULT_H_
