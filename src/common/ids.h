#ifndef YOUTOPIA_COMMON_IDS_H_
#define YOUTOPIA_COMMON_IDS_H_

#include <cstdint>

namespace youtopia {

/// Transaction identifier, unique per TransactionManager instance and
/// monotonically increasing (used as age for deadlock victim selection).
using TxnId = uint64_t;

/// Identifier of one entanglement operation (the paper's E^k superscript).
using EntanglementId = uint64_t;

/// Identifier of a group-commit group (transitively entangled transactions).
using GroupId = uint64_t;

constexpr TxnId kInvalidTxnId = 0;

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_IDS_H_
