#include "src/common/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>

#include "src/common/clock.h"

namespace youtopia {

namespace metrics_internal {
std::atomic<bool> g_enabled{true};
}  // namespace metrics_internal

void set_metrics_enabled(bool on) {
  metrics_internal::g_enabled.store(on, std::memory_order_relaxed);
}

// --- Counter. ---------------------------------------------------------------

size_t Counter::StripeIndex() {
  // Threads pick up stripes round-robin on first use: consecutive worker
  // threads land on distinct cache lines without hashing thread ids.
  static std::atomic<size_t> next{0};
  thread_local const size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return idx;
}

// --- Histogram. -------------------------------------------------------------

int Histogram::BucketOf(int64_t value) {
  if (value <= 0) return 0;
  return std::bit_width(static_cast<uint64_t>(value));
}

void Histogram::BucketBounds(int b, uint64_t* lo, uint64_t* hi) {
  if (b <= 0) {
    *lo = 0;
    *hi = 1;
    return;
  }
  *lo = uint64_t{1} << (b - 1);
  *hi = b >= 63 ? ~uint64_t{0} : uint64_t{1} << b;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  for (int i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  for (int i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
}

double HistogramSnapshot::Quantile(double q) const {
  // Percentiles come from the bucket totals, not `count` (which can be
  // momentarily ahead of a racing Record's bucket bump).
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = seen + buckets[i];
    if (static_cast<double>(next) >= rank) {
      uint64_t lo = 0, hi = 0;
      Histogram::BucketBounds(i, &lo, &hi);
      // Linear interpolation inside the covering power-of-two bucket.
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(buckets[i]);
      return static_cast<double>(lo) +
             frac * static_cast<double>(hi - lo);
    }
    seen = next;
  }
  uint64_t lo = 0, hi = 0;
  Histogram::BucketBounds(kBuckets - 1, &lo, &hi);
  return static_cast<double>(hi);
}

// --- Thread-local attribution + trace context. ------------------------------

ThreadOpStats& CurrentThreadOpStats() {
  thread_local ThreadOpStats stats;
  return stats;
}

TraceContext& CurrentTraceContext() {
  thread_local TraceContext ctx;
  return ctx;
}

// --- Tracer. ----------------------------------------------------------------

Tracer* Tracer::Global() {
  static Tracer* t = new Tracer();  // leaked: outlives static destructors
  return t;
}

void Tracer::Record(Span span) {
  std::lock_guard<std::mutex> g(mu_);
  if (ring_.size() < kCapacity) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[next_] = std::move(span);
  next_ = (next_ + 1) % kCapacity;
}

std::vector<Tracer::Span> Tracer::Trace(uint64_t trace_id) const {
  std::vector<Span> out;
  std::lock_guard<std::mutex> g(mu_);
  for (const Span& s : ring_) {
    if (s.trace_id == trace_id) out.push_back(s);
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.span_id < b.span_id;
  });
  return out;
}

std::vector<Tracer::Span> Tracer::RecentSpans(size_t max) const {
  std::vector<Span> out;
  std::lock_guard<std::mutex> g(mu_);
  out = ring_;
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.span_id > b.span_id;
  });
  if (out.size() > max) out.resize(max);
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> g(mu_);
  ring_.clear();
  next_ = 0;
}

ScopedTraceSpan::ScopedTraceSpan(const char* name, uint64_t force_trace_id) {
  if (!metrics_enabled()) return;
  TraceContext& ctx = CurrentTraceContext();
  if (ctx.trace_id == 0 && force_trace_id == 0) return;
  Tracer* tracer = Tracer::Global();
  active_ = true;
  name_ = name;
  saved_ = ctx;
  trace_id_ = ctx.trace_id != 0 ? ctx.trace_id : force_trace_id;
  parent_id_ = ctx.trace_id != 0 ? ctx.span_id : 0;
  span_id_ = tracer->NewSpanId();
  start_micros_ = SystemClock::Default()->NowMicros();
  ctx.trace_id = trace_id_;
  ctx.span_id = span_id_;
}

ScopedTraceSpan::~ScopedTraceSpan() {
  if (!active_) return;
  Tracer::Span span;
  span.trace_id = trace_id_;
  span.span_id = span_id_;
  span.parent_id = parent_id_;
  span.name = name_;
  span.start_micros = start_micros_;
  span.duration_micros = SystemClock::Default()->NowMicros() - start_micros_;
  Tracer::Global()->Record(std::move(span));
  CurrentTraceContext() = saved_;
}

// --- SlowQueryLog. ----------------------------------------------------------

SlowQueryLog* SlowQueryLog::Global() {
  static SlowQueryLog* log = new SlowQueryLog();  // leaked on purpose
  return log;
}

void SlowQueryLog::set_capacity(size_t n) {
  std::lock_guard<std::mutex> g(mu_);
  capacity_ = n == 0 ? 1 : n;
  while (entries_.size() > capacity_) {
    auto min_it = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) {
          return a.total_micros < b.total_micros;
        });
    entries_.erase(min_it);
  }
  int64_t floor = 0;
  if (entries_.size() >= capacity_) {
    for (const Entry& e : entries_) {
      floor = floor == 0 ? e.total_micros
                         : std::min(floor, e.total_micros);
    }
  }
  floor_.store(floor, std::memory_order_relaxed);
}

void SlowQueryLog::Record(Entry e) {
  if (e.total_micros < threshold_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> g(mu_);
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(e));
  } else {
    auto min_it = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) {
          return a.total_micros < b.total_micros;
        });
    if (min_it->total_micros >= e.total_micros) return;
    *min_it = std::move(e);
  }
  if (entries_.size() >= capacity_) {
    int64_t floor = entries_.front().total_micros;
    for (const Entry& it : entries_) {
      floor = std::min(floor, it.total_micros);
    }
    floor_.store(floor, std::memory_order_relaxed);
  }
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Snapshot() const {
  std::vector<Entry> out;
  {
    std::lock_guard<std::mutex> g(mu_);
    out = entries_;
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.total_micros > b.total_micros;
  });
  return out;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> g(mu_);
  entries_.clear();
  floor_.store(0, std::memory_order_relaxed);
}

// --- MetricsRegistry. -------------------------------------------------------

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* r = new MetricsRegistry();  // leaked on purpose
  return r;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

HistogramSnapshot MetricsRegistry::MergedHistogram(
    std::string_view prefix) const {
  HistogramSnapshot merged;
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& [name, h] : histograms_) {
    if (name.size() >= prefix.size() &&
        std::string_view(name).substr(0, prefix.size()) == prefix) {
      merged.Merge(h->snapshot());
    }
  }
  return merged;
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::Counters()
    const {
  std::vector<std::pair<std::string, uint64_t>> out;
  std::lock_guard<std::mutex> g(mu_);
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::Gauges() const {
  std::vector<std::pair<std::string, int64_t>> out;
  std::lock_guard<std::mutex> g(mu_);
  out.reserve(gauges_.size());
  for (const auto& [name, ga] : gauges_) out.emplace_back(name, ga->value());
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::Histograms() const {
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  std::lock_guard<std::mutex> g(mu_);
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name, h->snapshot());
  }
  return out;
}

std::string MetricsRegistry::DumpText() const {
  std::string out;
  char line[256];
  for (const auto& [name, value] : Counters()) {
    std::snprintf(line, sizeof(line), "%s %" PRIu64 "\n", name.c_str(),
                  value);
    out += line;
  }
  for (const auto& [name, value] : Gauges()) {
    std::snprintf(line, sizeof(line), "%s %" PRId64 "\n", name.c_str(),
                  value);
    out += line;
  }
  for (const auto& [name, snap] : Histograms()) {
    std::snprintf(line, sizeof(line),
                  "%s count=%" PRIu64 " sum=%" PRIu64
                  " p50=%.1f p95=%.1f p99=%.1f\n",
                  name.c_str(), snap.count, snap.sum, snap.p50(), snap.p95(),
                  snap.p99());
    out += line;
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  {
    std::lock_guard<std::mutex> g(mu_);
    for (auto& [name, c] : counters_) c->Reset();
    for (auto& [name, ga] : gauges_) {
      ga->Set(0);
    }
    for (auto& [name, h] : histograms_) h->Reset();
  }
  Tracer::Global()->Clear();
  SlowQueryLog::Global()->Clear();
}

// --- LatencyTimer. ----------------------------------------------------------

LatencyTimer::LatencyTimer(Histogram* h)
    : h_(metrics_enabled() ? h : nullptr) {
  if (h_ != nullptr) start_ = SystemClock::Default()->NowMicros();
}

int64_t LatencyTimer::Finish() {
  const int64_t elapsed = SystemClock::Default()->NowMicros() - start_;
  h_->Record(elapsed);
  return elapsed;
}

}  // namespace youtopia
