#ifndef YOUTOPIA_COMMON_METRICS_H_
#define YOUTOPIA_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace youtopia {

// --- Global ablation switch. -----------------------------------------------
//
// Every instrumentation site in the engine gates on this one relaxed load:
// with metrics off, the hot paths pay a load+branch and nothing else (no
// clock reads, no atomics, no allocations). Benches prove the enabled
// overhead stays <= 5% by flipping it.

namespace metrics_internal {
extern std::atomic<bool> g_enabled;
}  // namespace metrics_internal

inline bool metrics_enabled() {
  return metrics_internal::g_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool on);

// --- Counter: lock-striped monotonic count. --------------------------------

/// Monotonic counter striped across cache lines so concurrent bumpers from
/// different threads don't ping-pong one line. Reads sum the stripes (racy
/// but monotone — fine for observability).
class Counter {
 public:
  static constexpr size_t kStripes = 16;

  void Add(uint64_t n = 1) {
    stripes_[StripeIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const {
    uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (Stripe& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> v{0};
  };
  static size_t StripeIndex();
  Stripe stripes_[kStripes];
};

// --- Gauge: a point-in-time signed level. ----------------------------------

class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  /// Tracks the high-water mark alongside the level (racy max — fine).
  void SetMaxHint(int64_t v) {
    int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t max_value() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
  std::atomic<int64_t> max_{0};
};

// --- Histogram: log-bucketed latency distribution. -------------------------

/// Immutable copy of a histogram's state. Mergeable: per-shard snapshots
/// added together are exactly the snapshot of the combined stream (bucket
/// counts are order-independent), so cross-shard percentiles come from one
/// merged snapshot.
struct HistogramSnapshot {
  static constexpr int kBuckets = 64;
  uint64_t count = 0;
  uint64_t sum = 0;  ///< sum of recorded values (micros)
  std::array<uint64_t, kBuckets> buckets{};

  void Merge(const HistogramSnapshot& other);
  /// Estimated value at quantile q in [0,1] by linear interpolation inside
  /// the covering power-of-two bucket. 0 when empty.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Lock-free log-bucketed histogram: bucket i counts values whose bit width
/// is i (i.e. v in [2^(i-1), 2^i)), bucket 0 counts zero/negative. Record is
/// three relaxed fetch_adds; snapshots are racy-but-consistent-enough reads.
class Histogram {
 public:
  void Record(int64_t value) {
    const int b = BucketOf(value);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value > 0 ? static_cast<uint64_t>(value) : 0,
                   std::memory_order_relaxed);
  }
  HistogramSnapshot snapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

  static int BucketOf(int64_t value);
  /// Inclusive-exclusive value range [lo, hi) a bucket covers.
  static void BucketBounds(int b, uint64_t* lo, uint64_t* hi);

 private:
  std::atomic<uint64_t> buckets_[HistogramSnapshot::kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// --- Per-thread statement attribution. -------------------------------------

/// Monotonic per-thread accumulators the blocking layers bump (lock waits,
/// flush waits). A statement snapshots them on entry and reads the delta on
/// exit to attribute where its latency went. Monotonic on purpose: a parked
/// worker running ANOTHER session's statement mid-wait adds that statement's
/// waits to the same thread totals — deltas may over-attribute under
/// park-don't-block, never lose or reset each other.
struct ThreadOpStats {
  int64_t lock_wait_micros = 0;
  int64_t flush_wait_micros = 0;
};
ThreadOpStats& CurrentThreadOpStats();

// --- Tracing. ---------------------------------------------------------------

/// Thread-local trace context: the active trace and the span new child spans
/// parent under. Propagated down the synchronous call chain (statement ->
/// commit -> 2PC phases -> per-branch prepare -> WAL append); save/restore
/// via ScopedTraceSpan.
struct TraceContext {
  uint64_t trace_id = 0;  ///< 0 = not tracing
  uint64_t span_id = 0;   ///< parent for new spans
};
TraceContext& CurrentTraceContext();

/// Ring buffer of finished spans. Span ids are process-unique; a trace is
/// the set of spans sharing one trace id, reassembled by parent links.
class Tracer {
 public:
  struct Span {
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    uint64_t parent_id = 0;  ///< 0 = root
    std::string name;
    int64_t start_micros = 0;
    int64_t duration_micros = 0;
  };

  static Tracer* Global();

  uint64_t NewTraceId() {
    return next_trace_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t NewSpanId() {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }

  void Record(Span span);
  /// All retained spans of `trace_id`, oldest first.
  std::vector<Span> Trace(uint64_t trace_id) const;
  std::vector<Span> RecentSpans(size_t max) const;
  void Clear();

  /// Statement-level traces are sampled (1 in N) so the per-statement hot
  /// path doesn't pay ring+string costs every time; commit-path traces are
  /// unsampled. The sequence is per-thread — a shared counter would put one
  /// contended cache line in every Begin — so each thread samples its own
  /// 1st, N+1th, ... draw.
  void set_sample_every(uint64_t n) {
    sample_every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  bool ShouldSample() {
    static thread_local uint64_t seq = 0;
    const uint64_t n = sample_every_.load(std::memory_order_relaxed);
    return seq++ % n == 0;
  }

 private:
  static constexpr size_t kCapacity = 4096;
  mutable std::mutex mu_;
  std::vector<Span> ring_;
  size_t next_ = 0;  ///< ring write position once full
  std::atomic<uint64_t> next_trace_{1};
  std::atomic<uint64_t> next_span_{1};
  std::atomic<uint64_t> sample_every_{64};
};

/// RAII span: on construction (when metrics are on AND a trace is active —
/// or `force_trace_id` != 0 starts/continues one explicitly) pushes itself
/// as the thread's current span; on destruction records the finished span
/// and restores the previous context. No-op otherwise: one branch.
class ScopedTraceSpan {
 public:
  explicit ScopedTraceSpan(const char* name, uint64_t force_trace_id = 0);
  ~ScopedTraceSpan();

  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

  bool active() const { return active_; }
  uint64_t trace_id() const { return trace_id_; }
  uint64_t span_id() const { return span_id_; }

 private:
  bool active_ = false;
  const char* name_ = nullptr;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  int64_t start_micros_ = 0;
  TraceContext saved_{};
};

// --- Slow-query log. --------------------------------------------------------

/// Bounded log of the N slowest statements seen (at or above the threshold):
/// a new entry evicts the current fastest once full. Snapshot returns
/// slowest-first.
class SlowQueryLog {
 public:
  struct Entry {
    std::string sql;
    int64_t total_micros = 0;
    int64_t lock_wait_micros = 0;
    int64_t flush_wait_micros = 0;
    uint64_t trace_id = 0;
    int64_t when_micros = 0;  ///< wall-ish timestamp of completion
  };

  static SlowQueryLog* Global();

  void set_threshold_micros(int64_t t) {
    threshold_.store(t, std::memory_order_relaxed);
  }
  int64_t threshold_micros() const {
    return threshold_.load(std::memory_order_relaxed);
  }
  void set_capacity(size_t n);

  /// Cheap pre-check so callers can skip building an Entry (and copying the
  /// SQL text) for statements that can't possibly be admitted.
  bool WouldAdmit(int64_t total_micros) const {
    if (total_micros < threshold_.load(std::memory_order_relaxed)) {
      return false;
    }
    return total_micros >= floor_.load(std::memory_order_relaxed);
  }
  void Record(Entry e);
  std::vector<Entry> Snapshot() const;
  void Clear();

 private:
  /// Default 10ms: fast statements must not pay the log's mutex + SQL text
  /// copy. set_slow_query_micros(0) opts into logging everything.
  std::atomic<int64_t> threshold_{10'000};
  /// Admission floor: the slowest log's current minimum once full (0 while
  /// it still has room). Kept redundantly so WouldAdmit needs no lock.
  std::atomic<int64_t> floor_{0};
  mutable std::mutex mu_;
  size_t capacity_ = 32;
  std::vector<Entry> entries_;
};

inline void set_slow_query_micros(int64_t micros) {
  SlowQueryLog::Global()->set_threshold_micros(micros);
}

// --- Registry. --------------------------------------------------------------

/// Process-global name -> metric registry. Lookup takes a mutex and is meant
/// for registration: call sites resolve their handles ONCE (static local or
/// member) and bump through the pointer — pointers are stable for process
/// lifetime. DumpText renders every metric in a flat `name value` text
/// exposition (histograms expand to count/sum/p50/p95/p99 lines).
class MetricsRegistry {
 public:
  static MetricsRegistry* Global();

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Merged snapshot of every histogram whose name starts with `prefix`
  /// (cross-shard merge: per-shard histograms share a prefix).
  HistogramSnapshot MergedHistogram(std::string_view prefix) const;

  std::string DumpText() const;
  /// Zeroes every counter/gauge/histogram and clears the tracer + slow-query
  /// log. For bench/test isolation; names stay registered.
  void ResetAll();

  /// Name-sorted listings for SHOW METRICS.
  std::vector<std::pair<std::string, uint64_t>> Counters() const;
  std::vector<std::pair<std::string, int64_t>> Gauges() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> Histograms() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// --- Latency timer. ---------------------------------------------------------

/// RAII latency recorder: reads the clock only when metrics are on; records
/// into `h` on destruction (or StopAndRecord for an explicit elapsed value).
class LatencyTimer {
 public:
  explicit LatencyTimer(Histogram* h);
  ~LatencyTimer() {
    if (h_ != nullptr) Finish();
  }

  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

  bool active() const { return h_ != nullptr; }
  /// Records now and disarms; returns elapsed micros (0 when inactive).
  int64_t StopAndRecord() {
    if (h_ == nullptr) return 0;
    int64_t e = Finish();
    h_ = nullptr;
    return e;
  }

 private:
  int64_t Finish();
  Histogram* h_;
  int64_t start_ = 0;
};

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_METRICS_H_
