#ifndef YOUTOPIA_COMMON_OP_OBSERVER_H_
#define YOUTOPIA_COMMON_OP_OBSERVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/ids.h"

namespace youtopia {

/// Identifies a read/write target for schedule recording: a whole table
/// (row == 0) or one row. Grounding reads are table-granular (a conjunctive
/// query reads the relation); point reads are row-granular. Two ObjectRefs
/// conflict when they name the same table and either is whole-table or both
/// name the same row.
struct ObjectRef {
  std::string table;
  uint64_t row = 0;

  bool whole_table() const { return row == 0; }
  bool Overlaps(const ObjectRef& o) const {
    return table == o.table && (row == 0 || o.row == 0 || row == o.row);
  }
  bool operator==(const ObjectRef& o) const {
    return table == o.table && row == o.row;
  }
  std::string ToString() const {
    return row == 0 ? table : table + "#" + std::to_string(row);
  }
};

/// Observation tap for every logical operation the engine performs. The
/// isolation module's ScheduleRecorder implements this to capture the
/// R / W / R^G / E / C / A streams of Appendix C; the default no-op keeps
/// the hot path free.
class OpObserver {
 public:
  virtual ~OpObserver() = default;
  virtual void OnRead(TxnId /*txn*/, const ObjectRef& /*obj*/) {}
  virtual void OnWrite(TxnId /*txn*/, const ObjectRef& /*obj*/) {}
  virtual void OnGroundingRead(TxnId /*txn*/, const ObjectRef& /*obj*/) {}
  virtual void OnEntangle(EntanglementId /*eid*/,
                          const std::vector<TxnId>& /*members*/) {}
  virtual void OnCommit(TxnId /*txn*/) {}
  virtual void OnAbort(TxnId /*txn*/) {}
};

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_OP_OBSERVER_H_
