#include "src/common/rng.h"

#include <cmath>

namespace youtopia {

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> d(lo, hi);
  return d(gen_);
}

double Rng::NextDouble() {
  std::uniform_real_distribution<double> d(0.0, 1.0);
  return d(gen_);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

size_t Rng::Index(size_t n) {
  if (n == 0) return 0;
  return static_cast<size_t>(Uniform(0, static_cast<int64_t>(n) - 1));
}

size_t Rng::Zipf(size_t n, double theta) {
  if (n == 0) return 0;
  // Inverse-CDF sampling over a truncated power law; cheap and adequate for
  // workload skew (we do not need exact Zipfian moments).
  double u = NextDouble();
  double x = std::pow(static_cast<double>(n), 1.0 - theta);
  double v = std::pow((x - 1.0) * u + 1.0, 1.0 / (1.0 - theta));
  size_t idx = static_cast<size_t>(v) - 1;
  return idx >= n ? n - 1 : idx;
}

}  // namespace youtopia
