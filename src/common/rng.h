#ifndef YOUTOPIA_COMMON_RNG_H_
#define YOUTOPIA_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace youtopia {

/// Deterministic pseudo-random source for workload generation and property
/// tests. All experiment shapes must be reproducible given a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : gen_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// True with probability p.
  bool Bernoulli(double p);
  /// Uniform index in [0, n).
  size_t Index(size_t n);
  /// Zipf-like heavy-tailed index in [0, n) with exponent `theta`.
  size_t Zipf(size_t n, double theta);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      std::swap((*v)[i], (*v)[Index(i + 1)]);
    }
  }

  std::mt19937_64& gen() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_RNG_H_
