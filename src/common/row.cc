#include "src/common/row.h"

namespace youtopia {

Row Row::Concat(const Row& a, const Row& b) {
  std::vector<Value> vals = a.vals_;
  vals.insert(vals.end(), b.vals_.begin(), b.vals_.end());
  return Row(std::move(vals));
}

std::string Row::ToString() const {
  std::string s = "(";
  for (size_t i = 0; i < vals_.size(); ++i) {
    if (i) s += ", ";
    s += vals_[i].ToString();
  }
  s += ")";
  return s;
}

int Row::Compare(const Row& o) const {
  size_t n = std::min(vals_.size(), o.vals_.size());
  for (size_t i = 0; i < n; ++i) {
    int c = vals_[i].Compare(o.vals_[i]);
    if (c != 0) return c;
  }
  if (vals_.size() == o.vals_.size()) return 0;
  return vals_.size() < o.vals_.size() ? -1 : 1;
}

size_t Row::Hash() const {
  size_t h = 0x345678;
  for (const Value& v : vals_) {
    h = h * 1000003 ^ v.Hash();
  }
  return h ^ vals_.size();
}

}  // namespace youtopia
