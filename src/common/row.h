#ifndef YOUTOPIA_COMMON_ROW_H_
#define YOUTOPIA_COMMON_ROW_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/value.h"

namespace youtopia {

/// A tuple of values. Used both for stored rows and for answer-relation
/// tuples; totally ordered and hashable so rows can key hash indexes and
/// answer-tuple lookup tables.
class Row {
 public:
  Row() = default;
  explicit Row(std::vector<Value> vals) : vals_(std::move(vals)) {}
  Row(std::initializer_list<Value> vals) : vals_(vals) {}

  size_t size() const { return vals_.size(); }
  bool empty() const { return vals_.empty(); }
  const Value& at(size_t i) const { return vals_[i]; }
  Value& at(size_t i) { return vals_[i]; }
  const Value& operator[](size_t i) const { return vals_[i]; }
  Value& operator[](size_t i) { return vals_[i]; }
  const std::vector<Value>& values() const { return vals_; }

  void Append(Value v) { vals_.push_back(std::move(v)); }

  /// Concatenation of two rows (used by nested-loop joins).
  static Row Concat(const Row& a, const Row& b);

  /// "(1, 'LA', 3.5)"
  std::string ToString() const;

  int Compare(const Row& o) const;
  bool operator==(const Row& o) const { return Compare(o) == 0; }
  bool operator!=(const Row& o) const { return Compare(o) != 0; }
  bool operator<(const Row& o) const { return Compare(o) < 0; }

  size_t Hash() const;

 private:
  std::vector<Value> vals_;
};

struct RowHash {
  size_t operator()(const Row& r) const { return r.Hash(); }
};

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_ROW_H_
