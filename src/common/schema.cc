#include "src/common/schema.h"

#include "src/common/strings.h"

namespace youtopia {

StatusOr<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (EqualsIgnoreCase(cols_[i].name, name)) return i;
  }
  return Status::NotFound("no column named " + name);
}

bool Schema::HasColumn(const std::string& name) const {
  return IndexOf(name).ok();
}

std::string Schema::ToString() const {
  std::string s = "(";
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (i) s += ", ";
    s += cols_[i].name;
    s += " ";
    s += TypeName(cols_[i].type);
  }
  s += ")";
  return s;
}

Status Schema::SetPrimaryKeyByName(const std::vector<std::string>& names) {
  std::vector<size_t> pk;
  pk.reserve(names.size());
  for (const std::string& n : names) {
    YT_ASSIGN_OR_RETURN(size_t i, IndexOf(n));
    pk.push_back(i);
  }
  pk_ = std::move(pk);
  return Status::Ok();
}

bool Schema::operator==(const Schema& o) const {
  if (cols_.size() != o.cols_.size()) return false;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (!EqualsIgnoreCase(cols_[i].name, o.cols_[i].name) ||
        cols_[i].type != o.cols_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace youtopia
