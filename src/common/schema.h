#ifndef YOUTOPIA_COMMON_SCHEMA_H_
#define YOUTOPIA_COMMON_SCHEMA_H_

#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/common/value.h"

namespace youtopia {

/// A named, typed column.
struct Column {
  std::string name;
  TypeId type = TypeId::kString;
};

/// An ordered list of columns describing a table or intermediate result.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> cols) : cols_(std::move(cols)) {}

  size_t num_columns() const { return cols_.size(); }
  const Column& column(size_t i) const { return cols_[i]; }
  const std::vector<Column>& columns() const { return cols_; }

  /// Index of column `name` (case-insensitive), or NotFound.
  StatusOr<size_t> IndexOf(const std::string& name) const;
  bool HasColumn(const std::string& name) const;

  void AddColumn(Column c) { cols_.push_back(std::move(c)); }

  /// Primary-key column positions (empty = no declared key). Tables build a
  /// unique index over these columns automatically — a hash index by
  /// default, an ordered one when `pk_ordered` is set (PRIMARY KEY ...
  /// USING ORDERED), which makes the key range-scannable.
  const std::vector<size_t>& primary_key() const { return pk_; }
  void set_primary_key(std::vector<size_t> cols) { pk_ = std::move(cols); }
  /// Resolves `names` against the columns; fails on unknown names.
  Status SetPrimaryKeyByName(const std::vector<std::string>& names);

  bool pk_ordered() const { return pk_ordered_; }
  void set_pk_ordered(bool ordered) { pk_ordered_ = ordered; }

  /// "(a INT, b VARCHAR)"
  std::string ToString() const;

  bool operator==(const Schema& o) const;

 private:
  std::vector<Column> cols_;
  std::vector<size_t> pk_;
  bool pk_ordered_ = false;
};

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_SCHEMA_H_
