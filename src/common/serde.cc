#include "src/common/serde.h"

#include <cstring>

namespace youtopia {

namespace {
Status Truncated() { return Status::Corruption("truncated encoding"); }
}  // namespace

void EncodeU8(std::string* dst, uint8_t v) {
  dst->push_back(static_cast<char>(v));
}

void EncodeU32(std::string* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) dst->push_back(static_cast<char>(v >> (8 * i)));
}

void EncodeU64(std::string* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) dst->push_back(static_cast<char>(v >> (8 * i)));
}

void EncodeI64(std::string* dst, int64_t v) {
  EncodeU64(dst, static_cast<uint64_t>(v));
}

void EncodeDouble(std::string* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  EncodeU64(dst, bits);
}

void EncodeString(std::string* dst, const std::string& s) {
  EncodeU32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s);
}

void EncodeValue(std::string* dst, const Value& v) {
  EncodeU8(dst, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case TypeId::kNull: break;
    case TypeId::kBool: EncodeU8(dst, v.as_bool() ? 1 : 0); break;
    case TypeId::kInt64: EncodeI64(dst, v.as_int()); break;
    case TypeId::kDouble: EncodeDouble(dst, v.as_double()); break;
    case TypeId::kString: EncodeString(dst, v.as_string()); break;
  }
}

void EncodeRow(std::string* dst, const Row& r) {
  EncodeU32(dst, static_cast<uint32_t>(r.size()));
  for (size_t i = 0; i < r.size(); ++i) EncodeValue(dst, r[i]);
}

void EncodeSchema(std::string* dst, const Schema& s) {
  EncodeU32(dst, static_cast<uint32_t>(s.num_columns()));
  for (const Column& c : s.columns()) {
    EncodeString(dst, c.name);
    EncodeU8(dst, static_cast<uint8_t>(c.type));
  }
  EncodeU32(dst, static_cast<uint32_t>(s.primary_key().size()));
  for (size_t i : s.primary_key()) {
    EncodeU32(dst, static_cast<uint32_t>(i));
  }
  EncodeU8(dst, s.pk_ordered() ? 1 : 0);
}

Status DecodeU8(const char** p, const char* end, uint8_t* out) {
  if (end - *p < 1) return Truncated();
  *out = static_cast<uint8_t>(**p);
  ++*p;
  return Status::Ok();
}

Status DecodeU32(const char** p, const char* end, uint32_t* out) {
  if (end - *p < 4) return Truncated();
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>((*p)[i])) << (8 * i);
  }
  *p += 4;
  *out = v;
  return Status::Ok();
}

Status DecodeU64(const char** p, const char* end, uint64_t* out) {
  if (end - *p < 8) return Truncated();
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>((*p)[i])) << (8 * i);
  }
  *p += 8;
  *out = v;
  return Status::Ok();
}

Status DecodeI64(const char** p, const char* end, int64_t* out) {
  uint64_t u;
  YT_RETURN_IF_ERROR(DecodeU64(p, end, &u));
  *out = static_cast<int64_t>(u);
  return Status::Ok();
}

Status DecodeDouble(const char** p, const char* end, double* out) {
  uint64_t bits;
  YT_RETURN_IF_ERROR(DecodeU64(p, end, &bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::Ok();
}

Status DecodeString(const char** p, const char* end, std::string* out) {
  uint32_t n;
  YT_RETURN_IF_ERROR(DecodeU32(p, end, &n));
  if (end - *p < static_cast<ptrdiff_t>(n)) return Truncated();
  out->assign(*p, n);
  *p += n;
  return Status::Ok();
}

Status DecodeValue(const char** p, const char* end, Value* out) {
  uint8_t tag;
  YT_RETURN_IF_ERROR(DecodeU8(p, end, &tag));
  switch (static_cast<TypeId>(tag)) {
    case TypeId::kNull:
      *out = Value::Null();
      return Status::Ok();
    case TypeId::kBool: {
      uint8_t b;
      YT_RETURN_IF_ERROR(DecodeU8(p, end, &b));
      *out = Value::Bool(b != 0);
      return Status::Ok();
    }
    case TypeId::kInt64: {
      int64_t i;
      YT_RETURN_IF_ERROR(DecodeI64(p, end, &i));
      *out = Value::Int(i);
      return Status::Ok();
    }
    case TypeId::kDouble: {
      double d;
      YT_RETURN_IF_ERROR(DecodeDouble(p, end, &d));
      *out = Value::Double(d);
      return Status::Ok();
    }
    case TypeId::kString: {
      std::string s;
      YT_RETURN_IF_ERROR(DecodeString(p, end, &s));
      *out = Value::Str(std::move(s));
      return Status::Ok();
    }
  }
  return Status::Corruption("bad value tag");
}

Status DecodeRow(const char** p, const char* end, Row* out) {
  uint32_t n;
  YT_RETURN_IF_ERROR(DecodeU32(p, end, &n));
  std::vector<Value> vals;
  vals.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    YT_RETURN_IF_ERROR(DecodeValue(p, end, &v));
    vals.push_back(std::move(v));
  }
  *out = Row(std::move(vals));
  return Status::Ok();
}

Status DecodeSchema(const char** p, const char* end, Schema* out) {
  uint32_t n;
  YT_RETURN_IF_ERROR(DecodeU32(p, end, &n));
  std::vector<Column> cols;
  cols.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Column c;
    YT_RETURN_IF_ERROR(DecodeString(p, end, &c.name));
    uint8_t t;
    YT_RETURN_IF_ERROR(DecodeU8(p, end, &t));
    c.type = static_cast<TypeId>(t);
    cols.push_back(std::move(c));
  }
  Schema schema(std::move(cols));
  uint32_t num_pk;
  YT_RETURN_IF_ERROR(DecodeU32(p, end, &num_pk));
  if (num_pk > schema.num_columns()) {
    return Status::Corruption("bad primary-key column count");
  }
  std::vector<size_t> pk;
  pk.reserve(num_pk);
  for (uint32_t i = 0; i < num_pk; ++i) {
    uint32_t col;
    YT_RETURN_IF_ERROR(DecodeU32(p, end, &col));
    if (col >= schema.num_columns()) {
      return Status::Corruption("primary-key column out of range");
    }
    pk.push_back(col);
  }
  schema.set_primary_key(std::move(pk));
  uint8_t pk_ordered;
  YT_RETURN_IF_ERROR(DecodeU8(p, end, &pk_ordered));
  schema.set_pk_ordered(pk_ordered != 0);
  *out = std::move(schema);
  return Status::Ok();
}

uint32_t Crc32(const std::string& data) {
  static uint32_t table[256];
  static bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)init;
  uint32_t c = 0xFFFFFFFFu;
  for (unsigned char ch : data) {
    c = table[(c ^ ch) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace youtopia
