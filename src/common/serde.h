#ifndef YOUTOPIA_COMMON_SERDE_H_
#define YOUTOPIA_COMMON_SERDE_H_

#include <cstdint>
#include <string>

#include "src/common/row.h"
#include "src/common/schema.h"
#include "src/common/statusor.h"

namespace youtopia {

/// Little-endian, length-prefixed binary encoding used by the WAL and
/// checkpoint files. Decoders take a cursor range and fail with Corruption
/// on truncation or bad tags (never crash on malformed input).

void EncodeU8(std::string* dst, uint8_t v);
void EncodeU32(std::string* dst, uint32_t v);
void EncodeU64(std::string* dst, uint64_t v);
void EncodeI64(std::string* dst, int64_t v);
void EncodeDouble(std::string* dst, double v);
void EncodeString(std::string* dst, const std::string& s);
void EncodeValue(std::string* dst, const Value& v);
void EncodeRow(std::string* dst, const Row& r);
void EncodeSchema(std::string* dst, const Schema& s);

Status DecodeU8(const char** p, const char* end, uint8_t* out);
Status DecodeU32(const char** p, const char* end, uint32_t* out);
Status DecodeU64(const char** p, const char* end, uint64_t* out);
Status DecodeI64(const char** p, const char* end, int64_t* out);
Status DecodeDouble(const char** p, const char* end, double* out);
Status DecodeString(const char** p, const char* end, std::string* out);
Status DecodeValue(const char** p, const char* end, Value* out);
Status DecodeRow(const char** p, const char* end, Row* out);
Status DecodeSchema(const char** p, const char* end, Schema* out);

/// CRC32 (polynomial 0xEDB88320) over `data`; guards WAL records against
/// torn writes.
uint32_t Crc32(const std::string& data);

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_SERDE_H_
