#include "src/common/status.h"

namespace youtopia {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kTimedOut: return "TimedOut";
    case StatusCode::kBusy: return "Busy";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kUnanswerable: return "Unanswerable";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kUnimplemented: return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace youtopia
