#ifndef YOUTOPIA_COMMON_STATUS_H_
#define YOUTOPIA_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace youtopia {

/// Error categories used across the library. Modeled on the RocksDB /
/// LevelDB convention: library code never throws; every fallible operation
/// returns a Status (or StatusOr<T>).
enum class StatusCode {
  kOk = 0,
  kNotFound,         ///< A named table/row/object does not exist.
  kAlreadyExists,    ///< Create of an object that already exists.
  kInvalidArgument,  ///< Malformed input (bad SQL, arity mismatch, ...).
  kAborted,          ///< Transaction aborted (deadlock victim, group abort,
                     ///< widowed-prevention cascade, explicit ROLLBACK).
  kTimedOut,         ///< Lock wait or entangled-transaction timeout expired.
  kBusy,             ///< Resource (connection slot) temporarily unavailable.
  kCorruption,       ///< WAL / checkpoint integrity failure.
  kUnanswerable,     ///< Entangled query cannot be part of any combined
                     ///< query (Appendix B failure: transaction must wait).
  kInternal,         ///< Invariant violation inside the library.
  kUnimplemented,    ///< Feature intentionally out of the supported subset.
};

/// Plain status object: a code plus a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status TimedOut(std::string m) {
    return Status(StatusCode::kTimedOut, std::move(m));
  }
  static Status Busy(std::string m) {
    return Status(StatusCode::kBusy, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status Unanswerable(std::string m) {
    return Status(StatusCode::kUnanswerable, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsUnanswerable() const { return code_ == StatusCode::kUnanswerable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& o) const {
    return code_ == o.code_ && msg_ == o.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Name of a status code, e.g. "NotFound".
const char* StatusCodeName(StatusCode code);

}  // namespace youtopia

/// Propagates a non-OK Status to the caller.
#define YT_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::youtopia::Status _yt_st = (expr);           \
    if (!_yt_st.ok()) return _yt_st;              \
  } while (0)

#define YT_CONCAT_INNER_(a, b) a##b
#define YT_CONCAT_(a, b) YT_CONCAT_INNER_(a, b)

/// Evaluates a StatusOr<T> expression; on error returns the Status, otherwise
/// moves the value into `lhs` (which may be a declaration).
#define YT_ASSIGN_OR_RETURN(lhs, expr)                            \
  auto YT_CONCAT_(_yt_sor_, __LINE__) = (expr);                   \
  if (!YT_CONCAT_(_yt_sor_, __LINE__).ok())                       \
    return YT_CONCAT_(_yt_sor_, __LINE__).status();               \
  lhs = std::move(YT_CONCAT_(_yt_sor_, __LINE__)).value()

#endif  // YOUTOPIA_COMMON_STATUS_H_
