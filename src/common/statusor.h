#ifndef YOUTOPIA_COMMON_STATUSOR_H_
#define YOUTOPIA_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace youtopia {

/// Holds either a value of type T or a non-OK Status explaining why the value
/// is absent. Accessing value() on an error StatusOr is a programming error
/// (assert in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit from error Status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }
  /// Implicit from value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_STATUSOR_H_
