#include "src/common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace youtopia {

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(a[i]) != std::toupper(b[i])) return false;
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace youtopia
