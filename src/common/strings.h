#ifndef YOUTOPIA_COMMON_STRINGS_H_
#define YOUTOPIA_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace youtopia {

/// ASCII upper-case copy.
std::string ToUpper(const std::string& s);
/// ASCII lower-case copy.
std::string ToLower(const std::string& s);
/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);
/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);
/// Splits on a single character, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char sep);
/// Strips leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);
/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...);

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_STRINGS_H_
