#ifndef YOUTOPIA_COMMON_THREAD_POOL_H_
#define YOUTOPIA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace youtopia {

/// Fixed-size worker pool. Used by the entangled transaction manager as its
/// "connection pool": the number of workers models the DBMS's maximum number
/// of concurrent connections (the paper's concurrency bound, §5.2.1).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks run FIFO across workers.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_THREAD_POOL_H_
