#include "src/common/value.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstring>
#include <functional>

#include "src/common/strings.h"

namespace youtopia {

const char* TypeName(TypeId t) {
  switch (t) {
    case TypeId::kNull: return "NULL";
    case TypeId::kBool: return "BOOL";
    case TypeId::kInt64: return "INT";
    case TypeId::kDouble: return "DOUBLE";
    case TypeId::kString: return "VARCHAR";
  }
  return "?";
}

StatusOr<TypeId> TypeFromName(const std::string& name) {
  std::string u = ToUpper(name);
  if (u == "INT" || u == "INTEGER" || u == "BIGINT") return TypeId::kInt64;
  if (u == "DOUBLE" || u == "FLOAT" || u == "REAL") return TypeId::kDouble;
  if (u == "VARCHAR" || u == "TEXT" || u == "STRING" || u == "CHAR") {
    return TypeId::kString;
  }
  if (u == "BOOL" || u == "BOOLEAN") return TypeId::kBool;
  return Status::InvalidArgument("unknown type name: " + name);
}

TypeId Value::type() const {
  switch (v_.index()) {
    case 0: return TypeId::kNull;
    case 1: return TypeId::kBool;
    case 2: return TypeId::kInt64;
    case 3: return TypeId::kDouble;
    case 4: return TypeId::kString;
  }
  return TypeId::kNull;
}

double Value::NumericAsDouble() const {
  if (is_int()) return static_cast<double>(as_int());
  return as_double();
}

std::string Value::ToString() const {
  switch (type()) {
    case TypeId::kNull: return "NULL";
    case TypeId::kBool: return as_bool() ? "TRUE" : "FALSE";
    case TypeId::kInt64: return std::to_string(as_int());
    case TypeId::kDouble: {
      char buf[32];
      snprintf(buf, sizeof(buf), "%g", as_double());
      return buf;
    }
    case TypeId::kString: return "'" + as_string() + "'";
  }
  return "?";
}

bool Value::Truthy() const {
  switch (type()) {
    case TypeId::kNull: return false;
    case TypeId::kBool: return as_bool();
    case TypeId::kInt64: return as_int() != 0;
    case TypeId::kDouble: return as_double() != 0.0;
    case TypeId::kString: return !as_string().empty();
  }
  return false;
}

namespace {
int TypeRank(TypeId t) {
  switch (t) {
    case TypeId::kNull: return 0;
    case TypeId::kBool: return 1;
    case TypeId::kInt64: return 2;
    case TypeId::kDouble: return 2;  // numerics compare cross-type
    case TypeId::kString: return 3;
  }
  return 4;
}
}  // namespace

int Value::Compare(const Value& o) const {
  int ra = TypeRank(type()), rb = TypeRank(o.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type()) {
    case TypeId::kNull:
      return 0;
    case TypeId::kBool: {
      bool a = as_bool(), b = o.as_bool();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case TypeId::kInt64:
    case TypeId::kDouble: {
      if (is_int() && o.is_int()) {
        int64_t a = as_int(), b = o.as_int();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      double a = NumericAsDouble(), b = o.NumericAsDouble();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case TypeId::kString:
      return as_string().compare(o.as_string()) < 0
                 ? -1
                 : (as_string() == o.as_string() ? 0 : 1);
  }
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case TypeId::kNull: return 0x9e3779b97f4a7c15ULL;
    case TypeId::kBool: return as_bool() ? 2 : 1;
    case TypeId::kInt64: return std::hash<int64_t>{}(as_int());
    case TypeId::kDouble: {
      double d = as_double();
      // Hash doubles that are exact integers like the integer, so cross-type
      // numeric equality is consistent with hashing.
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case TypeId::kString: return std::hash<std::string>{}(as_string());
  }
  return 0;
}

StatusOr<Value> Value::Add(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.is_string() && b.is_string()) {
    return Value::Str(a.as_string() + b.as_string());
  }
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::InvalidArgument("'+' requires numeric or string operands");
  }
  if (a.is_int() && b.is_int()) return Value::Int(a.as_int() + b.as_int());
  return Value::Double(a.NumericAsDouble() + b.NumericAsDouble());
}

StatusOr<Value> Value::Sub(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::InvalidArgument("'-' requires numeric operands");
  }
  if (a.is_int() && b.is_int()) return Value::Int(a.as_int() - b.as_int());
  return Value::Double(a.NumericAsDouble() - b.NumericAsDouble());
}

StatusOr<Value> Value::Mul(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::InvalidArgument("'*' requires numeric operands");
  }
  if (a.is_int() && b.is_int()) return Value::Int(a.as_int() * b.as_int());
  return Value::Double(a.NumericAsDouble() * b.NumericAsDouble());
}

StatusOr<Value> Value::Div(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::InvalidArgument("'/' requires numeric operands");
  }
  double denom = b.NumericAsDouble();
  if (denom == 0.0) return Status::InvalidArgument("division by zero");
  if (a.is_int() && b.is_int() && a.as_int() % b.as_int() == 0) {
    return Value::Int(a.as_int() / b.as_int());
  }
  return Value::Double(a.NumericAsDouble() / denom);
}

StatusOr<Value> Value::CoerceTo(TypeId t) const {
  if (is_null() || type() == t) return *this;
  switch (t) {
    case TypeId::kInt64:
      if (is_double()) {
        double d = as_double();
        if (d == std::floor(d)) return Value::Int(static_cast<int64_t>(d));
        return Status::InvalidArgument("non-integral double to INT");
      }
      if (is_string()) {
        int64_t out = 0;
        const std::string& s = as_string();
        auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
        if (ec == std::errc() && p == s.data() + s.size()) {
          return Value::Int(out);
        }
        return Status::InvalidArgument("cannot parse INT from " + ToString());
      }
      if (is_bool()) return Value::Int(as_bool() ? 1 : 0);
      break;
    case TypeId::kDouble:
      if (is_int()) return Value::Double(static_cast<double>(as_int()));
      if (is_string()) {
        try {
          size_t pos = 0;
          double d = std::stod(as_string(), &pos);
          if (pos == as_string().size()) return Value::Double(d);
        } catch (...) {
        }
        return Status::InvalidArgument("cannot parse DOUBLE from " +
                                       ToString());
      }
      break;
    case TypeId::kString:
      if (is_int()) return Value::Str(std::to_string(as_int()));
      if (is_bool()) return Value::Str(as_bool() ? "TRUE" : "FALSE");
      if (is_double()) {
        char buf[32];
        snprintf(buf, sizeof(buf), "%g", as_double());
        return Value::Str(buf);
      }
      break;
    case TypeId::kBool:
      if (is_int()) return Value::Bool(as_int() != 0);
      break;
    case TypeId::kNull:
      break;
  }
  return Status::InvalidArgument(std::string("cannot coerce ") +
                                 TypeName(type()) + " to " + TypeName(t));
}

}  // namespace youtopia
