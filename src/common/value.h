#ifndef YOUTOPIA_COMMON_VALUE_H_
#define YOUTOPIA_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "src/common/statusor.h"

namespace youtopia {

/// Column / value types supported by the engine. Dates in the travel schema
/// are stored as kInt64 day numbers or as kString, at the application's
/// choice (the paper's examples use both styles).
enum class TypeId : uint8_t {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
};

/// Name of a type, e.g. "INT".
const char* TypeName(TypeId t);

/// Parses a SQL type name (INT/BIGINT, DOUBLE/FLOAT, VARCHAR/TEXT/STRING,
/// BOOL/BOOLEAN). Case-insensitive.
StatusOr<TypeId> TypeFromName(const std::string& name);

/// A dynamically typed SQL value. Total order: NULL < BOOL < INT/DOUBLE
/// (numerics compare by numeric value across the two types) < STRING.
/// Hashable and totally ordered so values can key indexes and answer
/// relations.
class Value {
 public:
  /// NULL value.
  Value() : v_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Repr(b)); }
  static Value Int(int64_t i) { return Value(Repr(i)); }
  static Value Double(double d) { return Value(Repr(d)); }
  static Value Str(std::string s) { return Value(Repr(std::move(s))); }

  TypeId type() const;

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_numeric() const { return is_int() || is_double(); }

  bool as_bool() const { return std::get<bool>(v_); }
  int64_t as_int() const { return std::get<int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  /// Numeric value as double regardless of int/double representation.
  double NumericAsDouble() const;

  /// SQL-ish rendering: NULL, TRUE, 42, 3.5, 'text'.
  std::string ToString() const;

  /// Truthiness for WHERE evaluation: NULL and FALSE are false; nonzero
  /// numerics and nonempty handling follow SQL-ish boolean coercion.
  bool Truthy() const;

  /// Three-valued total order ignoring SQL NULL semantics (used by indexes
  /// and canonical sorting): -1, 0, +1.
  int Compare(const Value& o) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  bool operator<=(const Value& o) const { return Compare(o) <= 0; }
  bool operator>(const Value& o) const { return Compare(o) > 0; }
  bool operator>=(const Value& o) const { return Compare(o) >= 0; }

  size_t Hash() const;

  /// Checked arithmetic on numerics; strings support + (concatenation).
  static StatusOr<Value> Add(const Value& a, const Value& b);
  static StatusOr<Value> Sub(const Value& a, const Value& b);
  static StatusOr<Value> Mul(const Value& a, const Value& b);
  static StatusOr<Value> Div(const Value& a, const Value& b);

  /// Coerces this value to the given column type (int<->double, parse from
  /// string where unambiguous). NULL coerces to any type.
  StatusOr<Value> CoerceTo(TypeId t) const;

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Repr v) : v_(std::move(v)) {}
  Repr v_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_VALUE_H_
