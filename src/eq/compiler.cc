#include "src/eq/compiler.h"

#include <unordered_map>

#include "src/common/strings.h"

namespace youtopia::eq {

namespace {

using sql::Expr;
using sql::ExprKind;

/// Union-find over variable names with constant binding on representatives.
class Unifier {
 public:
  std::string Find(const std::string& v) {
    auto it = parent_.find(v);
    if (it == parent_.end() || it->second == v) return v;
    std::string root = Find(it->second);
    parent_[v] = root;
    return root;
  }

  void Union(const std::string& a, const std::string& b) {
    std::string ra = Find(a), rb = Find(b);
    if (ra == rb) return;
    // Keep the lexicographically smaller name as representative so the
    // compilation is deterministic.
    if (rb < ra) std::swap(ra, rb);
    parent_[rb] = ra;
    auto it = consts_.find(rb);
    if (it != consts_.end()) {
      BindConst(ra, it->second);
      consts_.erase(rb);
    }
  }

  void BindConst(const std::string& v, const Value& value) {
    std::string r = Find(v);
    auto it = consts_.find(r);
    if (it != consts_.end()) {
      if (it->second != value) unsat_ = true;
      return;
    }
    consts_[r] = value;
  }

  /// Final resolution of a variable name into an IR term.
  Term Resolve(const std::string& v) {
    std::string r = Find(v);
    auto it = consts_.find(r);
    if (it != consts_.end()) return Term::Const(it->second);
    return Term::Var(r);
  }

  Term ResolveTerm(const Term& t) {
    return t.is_var ? Resolve(t.var) : t;
  }

  bool unsat() const { return unsat_; }

 private:
  std::unordered_map<std::string, std::string> parent_;
  std::unordered_map<std::string, Value> consts_;
  bool unsat_ = false;
};

/// Splits a conjunctive WHERE tree into conjuncts; fails on OR / NOT.
Status FlattenConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return Status::Ok();
  if (e->kind == ExprKind::kBinary && e->op == "AND") {
    YT_RETURN_IF_ERROR(FlattenConjuncts(e->lhs.get(), out));
    return FlattenConjuncts(e->rhs.get(), out);
  }
  if (e->kind == ExprKind::kBinary && e->op == "OR") {
    return Status::Unimplemented(
        "OR is not supported in entangled WHERE clauses "
        "(select-project-join restriction)");
  }
  if (e->kind == ExprKind::kNot) {
    return Status::Unimplemented(
        "NOT is not supported in entangled WHERE clauses");
  }
  out->push_back(e);
  return Status::Ok();
}

Value HostVarValue(const sql::VarEnv& vars, const std::string& name) {
  auto it = vars.find(ToLower(name));
  return it == vars.end() ? Value::Null() : it->second;
}

/// Context for compiling the IN-subqueries: the FROM aliases with schemas.
struct SubTable {
  std::string alias_lower;
  const Schema* schema;
};

std::string ColVar(const std::string& alias, const std::string& col) {
  return ToLower(alias) + "." + ToLower(col);
}

/// Resolves a column reference inside a subquery to its canonical variable.
StatusOr<std::string> SubColumnVar(const std::vector<SubTable>& tables,
                                   const std::string& qualifier,
                                   const std::string& column) {
  for (const SubTable& t : tables) {
    if (!qualifier.empty() && ToLower(qualifier) != t.alias_lower) continue;
    if (t.schema->HasColumn(column)) return ColVar(t.alias_lower, column);
  }
  return Status::InvalidArgument("unresolved column '" + column +
                                 "' in entangled subquery");
}

/// Turns a scalar AST node into an IR term in subquery scope.
StatusOr<Term> SubTerm(const Expr& e, const std::vector<SubTable>& tables,
                       const sql::VarEnv& vars, Unifier* uf) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return Term::Const(e.literal);
    case ExprKind::kHostVar:
      return Term::Const(HostVarValue(vars, e.var));
    case ExprKind::kColumnRef: {
      YT_ASSIGN_OR_RETURN(std::string v,
                          SubColumnVar(tables, e.qualifier, e.column));
      (void)uf;
      return Term::Var(v);
    }
    default:
      return Status::Unimplemented(
          "only columns, literals and host variables are supported in "
          "entangled subquery predicates");
  }
}

/// Turns a scalar AST node into an IR term in the OUTER entangled scope
/// (head / postconditions / top-level predicates), where bare column names
/// are coordination variables.
StatusOr<Term> OuterTerm(const Expr& e, const sql::VarEnv& vars) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return Term::Const(e.literal);
    case ExprKind::kHostVar:
      return Term::Const(HostVarValue(vars, e.var));
    case ExprKind::kColumnRef:
      return Term::Var(ToLower(e.column));
    default:
      return Status::Unimplemented(
          "entangled select items / tuple members must be columns, literals "
          "or host variables");
  }
}

}  // namespace

StatusOr<EntangledQuerySpec> Compiler::Compile(
    const sql::EntangledSelectStmt& stmt, const sql::VarEnv& vars,
    const Database& db, const std::string& label) {
  if (stmt.answer_relations.size() != 1) {
    return Status::Unimplemented(
        "the SQL front-end supports exactly one ANSWER relation per "
        "entangled query (use the IR API for multi-answer queries)");
  }
  EntangledQuerySpec spec;
  spec.label = label;
  spec.choose = stmt.choose;

  Unifier uf;

  // --- Head atom from the SELECT items.
  Atom head;
  head.relation = stmt.answer_relations[0];
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const sql::SelectItem& item = stmt.items[i];
    YT_ASSIGN_OR_RETURN(Term t, OuterTerm(*item.expr, vars));
    head.terms.push_back(std::move(t));
    if (item.alias_is_hostvar) {
      spec.answer_bindings.push_back({0, i, ToLower(item.alias)});
    }
  }
  spec.head.push_back(std::move(head));

  // --- WHERE conjuncts.
  std::vector<const Expr*> conjuncts;
  YT_RETURN_IF_ERROR(FlattenConjuncts(stmt.where.get(), &conjuncts));

  for (const Expr* c : conjuncts) {
    switch (c->kind) {
      case ExprKind::kInAnswer: {
        Atom post;
        post.relation = c->answer_relation;
        for (const sql::ExprPtr& item : c->tuple) {
          YT_ASSIGN_OR_RETURN(Term t, OuterTerm(*item, vars));
          post.terms.push_back(std::move(t));
        }
        spec.post.push_back(std::move(post));
        break;
      }
      case ExprKind::kInSubquery: {
        const sql::SelectStmt& sub = *c->subquery;
        if (sub.from.empty()) {
          return Status::InvalidArgument(
              "entangled IN subquery needs a FROM clause");
        }
        // Body atoms: one per subquery table, fresh variable per column.
        std::vector<SubTable> tables;
        for (const sql::TableRef& ref : sub.from) {
          YT_ASSIGN_OR_RETURN(const Table* t, db.GetTableConst(ref.table));
          tables.push_back({ToLower(ref.alias), &t->schema()});
          Atom atom;
          atom.relation = t->name();
          for (const Column& col : t->schema().columns()) {
            atom.terms.push_back(
                Term::Var(ColVar(ref.alias, col.name)));
          }
          spec.body.push_back(std::move(atom));
        }
        // Outer tuple <-> subquery select items.
        if (c->tuple.size() != sub.items.size()) {
          return Status::InvalidArgument(
              "IN tuple arity does not match subquery select arity");
        }
        for (size_t k = 0; k < c->tuple.size(); ++k) {
          const Expr& sub_item = *sub.items[k].expr;
          if (sub_item.kind != ExprKind::kColumnRef) {
            return Status::Unimplemented(
                "entangled subquery select items must be plain columns");
          }
          YT_ASSIGN_OR_RETURN(
              std::string sub_var,
              SubColumnVar(tables, sub_item.qualifier, sub_item.column));
          const Expr& outer = *c->tuple[k];
          switch (outer.kind) {
            case ExprKind::kColumnRef:
              uf.Union(ToLower(outer.column), sub_var);
              break;
            case ExprKind::kLiteral:
              uf.BindConst(sub_var, outer.literal);
              break;
            case ExprKind::kHostVar:
              uf.BindConst(sub_var, HostVarValue(vars, outer.var));
              break;
            default:
              return Status::Unimplemented(
                  "IN tuple members must be columns, literals or host "
                  "variables");
          }
        }
        // Subquery WHERE: equalities unify / bind; the rest are residual
        // predicates.
        std::vector<const Expr*> sub_conjs;
        YT_RETURN_IF_ERROR(FlattenConjuncts(sub.where.get(), &sub_conjs));
        for (const Expr* sc : sub_conjs) {
          if (sc->kind != ExprKind::kBinary) {
            return Status::Unimplemented(
                "unsupported predicate in entangled subquery: " +
                sc->ToString());
          }
          YT_ASSIGN_OR_RETURN(Term lhs,
                              SubTerm(*sc->lhs, tables, vars, &uf));
          YT_ASSIGN_OR_RETURN(Term rhs,
                              SubTerm(*sc->rhs, tables, vars, &uf));
          if (sc->op == "=") {
            if (lhs.is_var && rhs.is_var) {
              uf.Union(lhs.var, rhs.var);
            } else if (lhs.is_var) {
              uf.BindConst(lhs.var, rhs.constant);
            } else if (rhs.is_var) {
              uf.BindConst(rhs.var, lhs.constant);
            } else if (lhs.constant != rhs.constant) {
              spec.body_unsatisfiable = true;
            }
          } else {
            spec.preds.push_back({std::move(lhs), sc->op, std::move(rhs)});
          }
        }
        break;
      }
      case ExprKind::kBinary: {
        // Top-level comparison over coordination variables.
        YT_ASSIGN_OR_RETURN(Term lhs, OuterTerm(*c->lhs, vars));
        YT_ASSIGN_OR_RETURN(Term rhs, OuterTerm(*c->rhs, vars));
        if (c->op == "=") {
          if (lhs.is_var && rhs.is_var) {
            uf.Union(lhs.var, rhs.var);
          } else if (lhs.is_var) {
            uf.BindConst(lhs.var, rhs.constant);
          } else if (rhs.is_var) {
            uf.BindConst(rhs.var, lhs.constant);
          } else if (lhs.constant != rhs.constant) {
            spec.body_unsatisfiable = true;
          }
        } else {
          spec.preds.push_back({std::move(lhs), c->op, std::move(rhs)});
        }
        break;
      }
      default:
        return Status::Unimplemented("unsupported entangled WHERE conjunct: " +
                                     c->ToString());
    }
  }

  // --- Resolution pass: rewrite every term through the unifier.
  auto resolve_atoms = [&uf](std::vector<Atom>* atoms) {
    for (Atom& a : *atoms) {
      for (Term& t : a.terms) t = uf.ResolveTerm(t);
    }
  };
  resolve_atoms(&spec.head);
  resolve_atoms(&spec.post);
  resolve_atoms(&spec.body);
  for (BodyPredicate& p : spec.preds) {
    p.lhs = uf.ResolveTerm(p.lhs);
    p.rhs = uf.ResolveTerm(p.rhs);
  }
  if (uf.unsat()) spec.body_unsatisfiable = true;

  YT_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

}  // namespace youtopia::eq
