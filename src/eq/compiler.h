#ifndef YOUTOPIA_EQ_COMPILER_H_
#define YOUTOPIA_EQ_COMPILER_H_

#include <string>

#include "src/eq/ir.h"
#include "src/sql/ast.h"
#include "src/sql/expr_eval.h"
#include "src/storage/database.h"

namespace youtopia::eq {

/// Compiles the paper's extended-SQL entangled query into the Datalog-style
/// IR of Appendix A. Host variables are substituted as constants at compile
/// time (the statement runs after earlier statements bound them).
///
/// Supported WHERE forms (conjunctions of):
///   * `cols IN (SELECT cols FROM T1 [, T2...] [WHERE conj])` — body atoms;
///     subquery equality predicates unify variables / bind constants;
///     other comparisons become residual body predicates.
///   * `(t1, ..., tk) IN ANSWER Rel` — a postcondition atom.
///   * `col op literal/@var/col` — residual body predicate.
class Compiler {
 public:
  /// `label` names the query in diagnostics. `db` supplies table schemas.
  static StatusOr<EntangledQuerySpec> Compile(
      const sql::EntangledSelectStmt& stmt, const sql::VarEnv& vars,
      const Database& db, const std::string& label);
};

}  // namespace youtopia::eq

#endif  // YOUTOPIA_EQ_COMPILER_H_
