#include "src/eq/coordinator.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/eq/safety.h"

namespace youtopia::eq {

namespace {

/// Hashable (relation, tuple) key for head/post matching.
struct TupleKey {
  std::string rel;
  Row row;
  bool operator==(const TupleKey& o) const {
    return rel == o.rel && row == o.row;
  }
};
struct TupleKeyHash {
  size_t operator()(const TupleKey& k) const {
    return std::hash<std::string>{}(k.rel) * 1000003 ^ k.row.Hash();
  }
};

using KeySet = std::unordered_set<TupleKey, TupleKeyHash>;

/// Union-find over item indexes for component decomposition.
class DSU {
 public:
  explicit DSU(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

EvalResult Coordinator::Evaluate(const std::vector<EvalItem>& items,
                                 EntanglementId first_eid) {
  return Evaluate(items, first_eid, Options());
}

EvalResult Coordinator::Evaluate(const std::vector<EvalItem>& items,
                                 EntanglementId first_eid, Options options) {
  const size_t n = items.size();
  EvalResult result;
  result.outcomes.resize(n);

  // --- Appendix-B formability (database-independent).
  std::vector<const EntangledQuerySpec*> specs;
  specs.reserve(n);
  for (const EvalItem& it : items) specs.push_back(it.spec);
  std::vector<bool> formable = ComputeFormable(specs);
  for (size_t i = 0; i < n; ++i) {
    result.outcomes[i].kind =
        formable[i] ? OutcomeKind::kEmptySuccess : OutcomeKind::kNoPartner;
  }

  // --- Viable groundings + arc-consistency pruning.
  std::vector<std::vector<int>> viable(n);
  for (size_t i = 0; i < n; ++i) {
    if (!formable[i]) continue;
    viable[i].resize(items[i].groundings.size());
    for (size_t g = 0; g < items[i].groundings.size(); ++g) {
      viable[i][g] = static_cast<int>(g);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    // Heads currently available from each item (any viable grounding).
    std::vector<KeySet> avail(n);
    for (size_t i = 0; i < n; ++i) {
      for (int g : viable[i]) {
        for (const auto& [rel, row] : items[i].groundings[g].heads) {
          avail[i].insert({rel, row});
        }
      }
    }
    for (size_t i = 0; i < n; ++i) {
      std::vector<int> keep;
      for (int g : viable[i]) {
        const Grounding& gr = items[i].groundings[g];
        KeySet own;
        for (const auto& [rel, row] : gr.heads) own.insert({rel, row});
        bool ok = true;
        for (const auto& [rel, row] : gr.posts) {
          TupleKey key{rel, row};
          bool provided = own.count(key) > 0;
          for (size_t j = 0; j < n && !provided; ++j) {
            if (j == i) continue;
            provided = avail[j].count(key) > 0;
          }
          if (!provided) {
            ok = false;
            break;
          }
        }
        if (ok) keep.push_back(g);
      }
      if (keep.size() != viable[i].size()) {
        viable[i] = std::move(keep);
        changed = true;
      }
    }
  }

  // --- Component decomposition over potential provision edges.
  DSU dsu(n);
  {
    // Index: tuple key -> items that can provide it.
    std::unordered_map<TupleKey, std::vector<size_t>, TupleKeyHash> providers;
    for (size_t i = 0; i < n; ++i) {
      for (int g : viable[i]) {
        for (const auto& [rel, row] : items[i].groundings[g].heads) {
          providers[{rel, row}].push_back(i);
        }
      }
    }
    for (size_t i = 0; i < n; ++i) {
      for (int g : viable[i]) {
        for (const auto& [rel, row] : items[i].groundings[g].posts) {
          auto it = providers.find({rel, row});
          if (it == providers.end()) continue;
          for (size_t j : it->second) dsu.Union(i, j);
        }
      }
    }
  }
  std::map<size_t, std::vector<size_t>> components;
  for (size_t i = 0; i < n; ++i) {
    if (!formable[i] || viable[i].empty()) continue;
    components[dsu.Find(i)].push_back(i);
  }

  // --- Per-component exact search (node-capped) with greedy fallback.
  std::vector<int> chosen(n, -1);
  for (auto& [root, comp] : components) {
    (void)root;
    std::vector<size_t> order = comp;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (viable[a].size() != viable[b].size()) {
        return viable[a].size() < viable[b].size();
      }
      return a < b;
    });

    std::vector<int> assign(order.size(), -1);
    std::vector<int> best_assign;
    size_t best_count = 0;
    size_t nodes = 0;
    bool capped = false;

    // Validity of a complete assignment: union of chosen heads contains
    // every chosen grounding's postconditions.
    auto validate = [&](const std::vector<int>& a) -> bool {
      KeySet heads;
      for (size_t k = 0; k < order.size(); ++k) {
        if (a[k] < 0) continue;
        for (const auto& [rel, row] : items[order[k]].groundings[a[k]].heads) {
          heads.insert({rel, row});
        }
      }
      for (size_t k = 0; k < order.size(); ++k) {
        if (a[k] < 0) continue;
        for (const auto& [rel, row] : items[order[k]].groundings[a[k]].posts) {
          if (!heads.count({rel, row})) return false;
        }
      }
      return true;
    };

    std::function<void(size_t, size_t)> dfs = [&](size_t k, size_t count) {
      if (capped) return;
      if (++nodes > options.max_search_nodes_per_component) {
        capped = true;
        return;
      }
      // Bound: even answering everything remaining cannot beat best.
      if (count + (order.size() - k) <= best_count) return;
      if (k == order.size()) {
        if (count > best_count && validate(assign)) {
          best_count = count;
          best_assign = assign;
        }
        return;
      }
      for (int g : viable[order[k]]) {
        assign[k] = g;
        dfs(k + 1, count + 1);
        if (capped) return;
      }
      assign[k] = -1;
      dfs(k + 1, count);
    };
    dfs(0, 0);
    result.search_nodes += nodes;

    if (capped && best_count < order.size()) {
      // Sound greedy fallback: choose the first viable grounding everywhere,
      // then iteratively drop any grounding with an unsatisfied post.
      result.used_greedy_fallback = true;
      std::vector<int> greedy(order.size());
      for (size_t k = 0; k < order.size(); ++k) greedy[k] = viable[order[k]][0];
      bool removed = true;
      while (removed) {
        removed = false;
        KeySet heads;
        for (size_t k = 0; k < order.size(); ++k) {
          if (greedy[k] < 0) continue;
          for (const auto& [rel, row] :
               items[order[k]].groundings[greedy[k]].heads) {
            heads.insert({rel, row});
          }
        }
        for (size_t k = 0; k < order.size(); ++k) {
          if (greedy[k] < 0) continue;
          for (const auto& [rel, row] :
               items[order[k]].groundings[greedy[k]].posts) {
            if (!heads.count({rel, row})) {
              greedy[k] = -1;
              removed = true;
              break;
            }
          }
        }
      }
      size_t greedy_count = 0;
      for (int g : greedy) {
        if (g >= 0) ++greedy_count;
      }
      if (greedy_count > best_count) {
        best_count = greedy_count;
        best_assign = greedy;
      }
    }

    if (!best_assign.empty()) {
      for (size_t k = 0; k < order.size(); ++k) {
        chosen[order[k]] = best_assign[k];
      }
    }
  }

  // --- Entanglement operations: connected components of the satisfaction
  // graph over answered items.
  DSU ops_dsu(n);
  {
    std::unordered_map<TupleKey, std::vector<size_t>, TupleKeyHash> head_of;
    for (size_t i = 0; i < n; ++i) {
      if (chosen[i] < 0) continue;
      for (const auto& [rel, row] : items[i].groundings[chosen[i]].heads) {
        head_of[{rel, row}].push_back(i);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (chosen[i] < 0) continue;
      for (const auto& [rel, row] : items[i].groundings[chosen[i]].posts) {
        auto it = head_of.find({rel, row});
        if (it == head_of.end()) continue;
        for (size_t j : it->second) ops_dsu.Union(i, j);
      }
    }
  }
  std::map<size_t, std::vector<size_t>> op_groups;
  for (size_t i = 0; i < n; ++i) {
    if (chosen[i] < 0) continue;
    op_groups[ops_dsu.Find(i)].push_back(i);
  }
  EntanglementId next_eid = first_eid;
  for (auto& [root, group] : op_groups) {
    (void)root;
    EntanglementId eid = 0;
    if (group.size() >= 2) {
      eid = next_eid++;
      result.operations.emplace_back(eid, group);
    }
    for (size_t i : group) {
      Outcome& o = result.outcomes[i];
      o.kind = OutcomeKind::kAnswered;
      o.grounding_index = chosen[i];
      o.answers = items[i].groundings[chosen[i]].heads;
      o.eid = eid;
      for (size_t j : group) {
        if (j != i) o.partners.push_back(j);
      }
    }
  }

  // --- Final ANSWER relation contents (set semantics, deterministic order).
  std::map<std::string, std::set<Row>> rels;
  for (size_t i = 0; i < n; ++i) {
    if (chosen[i] < 0) continue;
    for (const auto& [rel, row] : items[i].groundings[chosen[i]].heads) {
      rels[rel].insert(row);
    }
  }
  for (auto& [rel, rows] : rels) {
    result.answer_relations[rel] =
        std::vector<Row>(rows.begin(), rows.end());
  }
  return result;
}

}  // namespace youtopia::eq
