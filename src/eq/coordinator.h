#ifndef YOUTOPIA_EQ_COORDINATOR_H_
#define YOUTOPIA_EQ_COORDINATOR_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/eq/grounder.h"
#include "src/eq/ir.h"

namespace youtopia::eq {

/// One query submitted to a joint evaluation: its spec, its owner
/// transaction, and its groundings on the current database.
struct EvalItem {
  const EntangledQuerySpec* spec = nullptr;
  TxnId txn = 0;
  std::vector<Grounding> groundings;
};

/// Per-query outcome of a joint evaluation, following the Appendix-B
/// dichotomy:
///   kAnswered     — a grounding was chosen; `answers` holds the answer
///                   tuple(s) (the query's own contribution, Figure 1(b));
///   kEmptySuccess — a combined query was formulated but evaluation returned
///                   an empty result; the transaction proceeds with NULLs;
///   kNoPartner    — no combined query could be formulated; the transaction
///                   must wait (run scheduler aborts it back to the pool).
enum class OutcomeKind { kAnswered, kEmptySuccess, kNoPartner };

struct Outcome {
  OutcomeKind kind = OutcomeKind::kNoPartner;
  int grounding_index = -1;
  std::vector<std::pair<std::string, Row>> answers;
  EntanglementId eid = 0;          ///< nonzero when >= 2 queries entangled
  std::vector<size_t> partners;    ///< indexes of co-entangled EvalItems
};

/// Result of evaluating a set of entangled queries together.
struct EvalResult {
  std::vector<Outcome> outcomes;  ///< parallel to the input items
  /// Entanglement operations: (eid, participating item indexes).
  std::vector<std::pair<EntanglementId, std::vector<size_t>>> operations;
  /// Final ANSWER relation contents (set semantics).
  std::map<std::string, std::vector<Row>> answer_relations;
  size_t search_nodes = 0;
  bool used_greedy_fallback = false;
};

/// Finds a coordinating set (Appendix A): at most one grounding per query
/// such that the union of chosen heads contains every chosen grounding's
/// postconditions, maximizing the number of answered queries.
///
/// Pipeline: Appendix-B formability filter -> arc-consistency pruning of
/// groundings -> connected-component decomposition -> exact backtracking
/// per component (node-capped, deterministic) with a sound greedy fallback.
class Coordinator {
 public:
  struct Options {
    size_t max_search_nodes_per_component = 200000;
  };

  static EvalResult Evaluate(const std::vector<EvalItem>& items,
                             EntanglementId first_eid);
  static EvalResult Evaluate(const std::vector<EvalItem>& items,
                             EntanglementId first_eid, Options options);
};

}  // namespace youtopia::eq

#endif  // YOUTOPIA_EQ_COORDINATOR_H_
