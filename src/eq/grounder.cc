#include "src/eq/grounder.h"

#include <map>
#include <set>
#include <unordered_map>

#include "src/sql/planner.h"

namespace youtopia::eq {

std::string Grounding::ToString() const {
  std::string s = "{";
  for (size_t i = 0; i < posts.size(); ++i) {
    if (i) s += ", ";
    s += posts[i].first + posts[i].second.ToString();
  }
  s += "} ";
  for (size_t i = 0; i < heads.size(); ++i) {
    if (i) s += ", ";
    s += heads[i].first + heads[i].second.ToString();
  }
  return s;
}

namespace {

using Valuation = std::unordered_map<std::string, Value>;

StatusOr<Value> TermValue(const Term& t, const Valuation& val) {
  if (!t.is_var) return t.constant;
  auto it = val.find(t.var);
  if (it == val.end()) {
    return Status::Internal("unbound variable " + t.var +
                            " during grounding");
  }
  return it->second;
}

bool PredHolds(const BodyPredicate& p, const Valuation& val) {
  auto l = TermValue(p.lhs, val);
  auto r = TermValue(p.rhs, val);
  if (!l.ok() || !r.ok()) return false;
  if (l.value().is_null() || r.value().is_null()) return false;
  int c = l.value().Compare(r.value());
  if (p.op == "=") return c == 0;
  if (p.op == "<>" || p.op == "!=") return c != 0;
  if (p.op == "<") return c < 0;
  if (p.op == "<=") return c <= 0;
  if (p.op == ">") return c > 0;
  if (p.op == ">=") return c >= 0;
  return false;
}

/// True when every variable of `p` is bound in `val`.
bool PredReady(const BodyPredicate& p, const Valuation& val) {
  if (p.lhs.is_var && !val.count(p.lhs.var)) return false;
  if (p.rhs.is_var && !val.count(p.rhs.var)) return false;
  return true;
}

}  // namespace

StatusOr<std::vector<Grounding>> Grounder::Ground(const EntangledQuerySpec& q,
                                                  TransactionManager* tm,
                                                  Transaction* txn) {
  return Ground(q, tm, txn, Options());
}

StatusOr<std::vector<Grounding>> Grounder::Ground(const EntangledQuerySpec& q,
                                                  TransactionManager* tm,
                                                  Transaction* txn,
                                                  Options options) {
  std::vector<Grounding> out;
  if (q.body_unsatisfiable) return out;

  // Snapshot the body relations, one filtered snapshot per atom. Constant
  // positions in an atom body are exactly equality keys: when a hash index
  // covers them the snapshot is an index lookup under the key's predicate
  // lock (a fully constant atom like Friends(36513, 45747) touches only its
  // matching rows), otherwise a grounding scan under the table S lock. The
  // visitor filter below stays in place either way — it handles constant
  // positions the chosen index does not cover.
  std::vector<std::vector<Row>> atom_rows(q.body.size());
  for (size_t ai = 0; ai < q.body.size(); ++ai) {
    const Atom& a = q.body[ai];
    std::vector<Row>& rows = atom_rows[ai];
    Status arity_error = Status::Ok();
    auto visit = [&](RowId, const Row& row) {
      if (row.size() != a.terms.size()) {
        arity_error = Status::InvalidArgument(
            "atom arity mismatch for relation " + a.relation);
        return false;
      }
      for (size_t i = 0; i < a.terms.size(); ++i) {
        if (!a.terms[i].is_var && a.terms[i].constant != row[i]) {
          return true;  // constant mismatch: skip row
        }
      }
      rows.push_back(row);
      return true;
    };
    sql::AccessPlan plan;
    auto table = tm->db()->GetTable(a.relation);
    if (table.ok()) {
      std::vector<std::pair<size_t, Value>> eqs;
      for (size_t i = 0; i < a.terms.size(); ++i) {
        if (!a.terms[i].is_var &&
            i < table.value()->schema().num_columns()) {
          eqs.emplace_back(i, a.terms[i].constant);
        }
      }
      plan = sql::Planner::PlanPointLookup(*table.value(), eqs);
    }
    if (plan.is_index()) {
      YT_RETURN_IF_ERROR(tm->LookupForGrounding(txn, a.relation, plan.columns,
                                                plan.key, visit));
    } else {
      YT_RETURN_IF_ERROR(tm->ScanForGrounding(txn, a.relation, visit));
    }
    YT_RETURN_IF_ERROR(arity_error);
  }

  std::set<std::string> seen;  // dedup on rendered grounding
  Valuation val;

  // Track which predicates have been applied at which join depth so each
  // fires as soon as its variables are bound.
  std::vector<bool> pred_done(q.preds.size(), false);

  std::function<Status(size_t)> recurse = [&](size_t depth) -> Status {
    if (out.size() >= options.max_groundings) return Status::Ok();
    if (depth == q.body.size()) {
      Grounding g;
      for (const Atom& h : q.head) {
        std::vector<Value> vals;
        vals.reserve(h.terms.size());
        for (const Term& t : h.terms) {
          YT_ASSIGN_OR_RETURN(Value v, TermValue(t, val));
          vals.push_back(std::move(v));
        }
        g.heads.emplace_back(h.relation, Row(std::move(vals)));
      }
      for (const Atom& c : q.post) {
        std::vector<Value> vals;
        vals.reserve(c.terms.size());
        for (const Term& t : c.terms) {
          YT_ASSIGN_OR_RETURN(Value v, TermValue(t, val));
          vals.push_back(std::move(v));
        }
        g.posts.emplace_back(c.relation, Row(std::move(vals)));
      }
      std::string key = g.ToString();
      if (seen.insert(std::move(key)).second) {
        out.push_back(std::move(g));
      }
      return Status::Ok();
    }

    const Atom& atom = q.body[depth];
    const std::vector<Row>& rows = atom_rows[depth];
    for (const Row& row : rows) {
      // Try to extend the valuation with this row.
      std::vector<std::string> bound_here;
      bool ok = true;
      for (size_t i = 0; i < atom.terms.size() && ok; ++i) {
        const Term& t = atom.terms[i];
        if (!t.is_var) {
          if (t.constant != row[i]) ok = false;
        } else {
          auto it = val.find(t.var);
          if (it != val.end()) {
            if (it->second != row[i]) ok = false;
          } else {
            val[t.var] = row[i];
            bound_here.push_back(t.var);
          }
        }
      }
      // Apply any predicate that just became ready.
      std::vector<size_t> preds_here;
      if (ok) {
        for (size_t pi = 0; pi < q.preds.size() && ok; ++pi) {
          if (pred_done[pi] || !PredReady(q.preds[pi], val)) continue;
          pred_done[pi] = true;
          preds_here.push_back(pi);
          if (!PredHolds(q.preds[pi], val)) ok = false;
        }
      }
      if (ok) {
        Status s = recurse(depth + 1);
        if (!s.ok()) {
          for (size_t pi : preds_here) pred_done[pi] = false;
          for (const std::string& v : bound_here) val.erase(v);
          return s;
        }
      }
      for (size_t pi : preds_here) pred_done[pi] = false;
      for (const std::string& v : bound_here) val.erase(v);
    }
    return Status::Ok();
  };

  YT_RETURN_IF_ERROR(recurse(0));
  return out;
}

}  // namespace youtopia::eq
