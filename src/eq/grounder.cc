#include "src/eq/grounder.h"

#include <unordered_map>
#include <unordered_set>

#include "src/sql/planner.h"

namespace youtopia::eq {

size_t Grounding::Hash() const {
  size_t h = 0x9e3779b97f4a7c15ull;
  auto mix = [&h](size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  for (const auto& [rel, row] : heads) {
    mix(std::hash<std::string>{}(rel));
    mix(row.Hash());
  }
  mix(0x517cc1b727220a95ull);  // heads/posts boundary
  for (const auto& [rel, row] : posts) {
    mix(std::hash<std::string>{}(rel));
    mix(row.Hash());
  }
  return h;
}

std::string Grounding::ToString() const {
  std::string s = "{";
  for (size_t i = 0; i < posts.size(); ++i) {
    if (i) s += ", ";
    s += posts[i].first + posts[i].second.ToString();
  }
  s += "} ";
  for (size_t i = 0; i < heads.size(); ++i) {
    if (i) s += ", ";
    s += heads[i].first + heads[i].second.ToString();
  }
  return s;
}

namespace {

using Valuation = std::unordered_map<std::string, Value>;

StatusOr<Value> TermValue(const Term& t, const Valuation& val) {
  if (!t.is_var) return t.constant;
  auto it = val.find(t.var);
  if (it == val.end()) {
    return Status::Internal("unbound variable " + t.var +
                            " during grounding");
  }
  return it->second;
}

bool PredHolds(const BodyPredicate& p, const Valuation& val) {
  auto l = TermValue(p.lhs, val);
  auto r = TermValue(p.rhs, val);
  if (!l.ok() || !r.ok()) return false;
  if (l.value().is_null() || r.value().is_null()) return false;
  int c = l.value().Compare(r.value());
  if (p.op == "=") return c == 0;
  if (p.op == "<>" || p.op == "!=") return c != 0;
  if (p.op == "<") return c < 0;
  if (p.op == "<=") return c <= 0;
  if (p.op == ">") return c > 0;
  if (p.op == ">=") return c >= 0;
  return false;
}

/// True when every variable of `p` is bound in `val`.
bool PredReady(const BodyPredicate& p, const Valuation& val) {
  if (p.lhs.is_var && !val.count(p.lhs.var)) return false;
  if (p.rhs.is_var && !val.count(p.rhs.var)) return false;
  return true;
}

}  // namespace

StatusOr<std::vector<Grounding>> Grounder::Ground(const EntangledQuerySpec& q,
                                                  TxnEngine* tm,
                                                  Transaction* txn) {
  return Ground(q, tm, txn, Options());
}

StatusOr<std::vector<Grounding>> Grounder::Ground(const EntangledQuerySpec& q,
                                                  TxnEngine* tm,
                                                  Transaction* txn,
                                                  Options options) {
  std::vector<Grounding> out;
  if (q.body_unsatisfiable) return out;

  // Access planning per body atom, in atom order (= the join order of the
  // recursion below). Constant atom positions are plan-time equality keys;
  // variable positions first bound by an *earlier* atom are runtime keys.
  // When a hash index covers a key mix that includes at least one
  // runtime-bound variable, the atom is not snapshotted at all: it is
  // fetched lazily inside the join loop, one kGroundingJoin probe cursor
  // per distinct binding (cached per atom), under the same index-key predicate
  // locks as constant lookups — so phantom safety carries over. Constant-
  // only coverage keeps the eager indexed snapshot (one lookup beats
  // per-binding probes) and everything else keeps the grounding scan under
  // the table S lock. The filters in the fetch visitors and the recursion
  // stay in place either way, so plans only prune, never change results.
  struct AtomAccess {
    std::vector<Row> rows;  ///< eager paths
    Table* table = nullptr;
    sql::JoinProbePlan plan;  ///< lazy path when plan.is_probe()
    /// Valuation key per runtime-bound plan part: var_names[part.outer].
    std::vector<std::string> var_names;
    sql::ProbeCache cache;
  };
  std::vector<AtomAccess> access(q.body.size());
  std::unordered_map<std::string, TypeId> bound_vars;  // first-binding type
  for (size_t ai = 0; ai < q.body.size(); ++ai) {
    const Atom& a = q.body[ai];
    AtomAccess& acc = access[ai];
    auto table = tm->db()->GetTable(a.relation);
    if (table.ok()) acc.table = table.value();

    std::vector<sql::JoinRangeCandidate> range_cands;
    if (acc.table != nullptr) {
      const Schema& schema = acc.table->schema();
      std::vector<sql::JoinEqCandidate> eqs;
      std::vector<std::string> var_names;
      // Term positions whose variable is *first bound by this atom* — these
      // are the columns a body predicate can range-constrain.
      std::unordered_map<std::string, size_t> fresh_pos;
      for (size_t i = 0; i < a.terms.size() && i < schema.num_columns();
           ++i) {
        sql::JoinEqCandidate cand;
        cand.column = i;
        if (!a.terms[i].is_var) {
          cand.is_const = true;
          cand.constant = a.terms[i].constant;
        } else {
          auto it = bound_vars.find(a.terms[i].var);
          if (it == bound_vars.end()) {
            fresh_pos.emplace(a.terms[i].var, i);
            continue;
          }
          cand.outer = var_names.size();
          cand.bound_type = it->second;
          var_names.push_back(a.terms[i].var);
        }
        eqs.push_back(std::move(cand));
      }
      // Range candidates: body predicates `v OP src` where v is first bound
      // here and src is a constant (eager interval filter below) or an
      // earlier-bound variable — the PR-2 follow-on shape
      // `inner.col > outer.col`, driven per binding.
      for (const BodyPredicate& p : q.preds) {
        std::string op = p.op;
        const Term* target = &p.lhs;
        const Term* source = &p.rhs;
        if (op != "<" && op != "<=" && op != ">" && op != ">=") continue;
        if (!(target->is_var && fresh_pos.count(target->var))) {
          std::swap(target, source);
          op = op == "<" ? ">" : op == "<=" ? ">=" : op == ">" ? "<" : "<=";
        }
        if (!(target->is_var && fresh_pos.count(target->var))) continue;
        sql::JoinRangeCandidate cand;
        cand.column = fresh_pos.at(target->var);
        cand.is_lo = op == ">" || op == ">=";
        cand.incl = op == ">=" || op == "<=";
        if (!source->is_var) {
          cand.is_const = true;
          cand.constant = source->constant;
        } else {
          auto it = bound_vars.find(source->var);
          if (it == bound_vars.end()) continue;  // also fresh: not a bound
          cand.outer = var_names.size();
          cand.bound_type = it->second;
          var_names.push_back(source->var);
        }
        range_cands.push_back(std::move(cand));
      }
      if (options.use_index_probes) {
        acc.plan = sql::Planner::PlanJoinProbe(*acc.table, eqs, range_cands);
        acc.var_names = std::move(var_names);
      }
    }

    if (!acc.plan.is_lazy()) {
      // Eager snapshot, filtered on constant positions.
      std::vector<Row>& rows = acc.rows;
      Status arity_error = Status::Ok();
      auto keep = [&](const Row& row) -> StatusOr<bool> {
        if (row.size() != a.terms.size()) {
          return Status::InvalidArgument("atom arity mismatch for relation " +
                                         a.relation);
        }
        for (size_t i = 0; i < a.terms.size(); ++i) {
          if (!a.terms[i].is_var && a.terms[i].constant != row[i]) {
            return false;  // constant mismatch: skip row
          }
        }
        return true;
      };
      sql::AccessPlan plan;
      if (acc.table != nullptr) {
        std::vector<std::pair<size_t, Value>> eqs;
        for (size_t i = 0; i < a.terms.size(); ++i) {
          if (!a.terms[i].is_var && i < acc.table->schema().num_columns()) {
            eqs.emplace_back(i, a.terms[i].constant);
          }
        }
        plan = sql::Planner::PlanPointLookup(*acc.table, eqs);
        if (!plan.is_index()) {
          // Constant range predicates over a variable this atom binds
          // (`Vals(y, p), y <= 60`) make an eager interval fetch under a
          // key-range S lock instead of a grounding scan. Sound because
          // every predicate is re-checked once its variables bind, and a
          // NULL row value fails the predicate just as it is skipped by
          // the bound-constrained interval.
          plan = sql::Planner::PlanRangeLookup(*acc.table, eqs, range_cands);
        }
      }
      if (plan.is_index() || plan.is_range()) {
        // Eager indexed/interval fetch as a grounding read (R^G), via the
        // same cursor seam as every other access path.
        plan.limit = -1;  // grounding never caps the fetch
        YT_ASSIGN_OR_RETURN(auto cursor,
                            tm->OpenCursor(txn, acc.table, std::move(plan),
                                           ReadOrigin::kGrounding));
        YT_RETURN_IF_ERROR(cursor->Drain([&](RowId, Row&& row) {
          auto k = keep(row);
          if (!k.ok()) {
            arity_error = k.status();
            return false;
          }
          if (k.value()) rows.push_back(std::move(row));
          return true;
        }));
      } else {
        if (acc.table != nullptr) rows.reserve(acc.table->size());
        // Name-based open: a missing relation surfaces as NotFound here.
        // The borrowing drain visits the heap zero-copy, so atoms with
        // constant filters copy only the rows they keep.
        YT_ASSIGN_OR_RETURN(auto cursor,
                            tm->OpenCursor(txn, a.relation,
                                           AccessPlan::TableScan(),
                                           ReadOrigin::kGrounding));
        YT_RETURN_IF_ERROR(cursor->DrainRef([&](RowId, const Row& row) {
          auto k = keep(row);
          if (!k.ok()) {
            arity_error = k.status();
            return false;
          }
          if (k.value()) rows.push_back(row);
          return true;
        }));
      }
      YT_RETURN_IF_ERROR(arity_error);
    }

    // This atom's variables are bound for the deeper atoms that follow.
    if (acc.table != nullptr) {
      const Schema& schema = acc.table->schema();
      for (size_t i = 0; i < a.terms.size() && i < schema.num_columns();
           ++i) {
        if (a.terms[i].is_var) {
          bound_vars.emplace(a.terms[i].var, schema.column(i).type);
        }
      }
    }
  }

  // Dedup on hashed groundings over `out` itself (no string rendering):
  // candidates are appended first, then popped again if already seen.
  struct IndexHash {
    const std::vector<Grounding>* v;
    size_t operator()(size_t i) const { return (*v)[i].Hash(); }
  };
  struct IndexEq {
    const std::vector<Grounding>* v;
    bool operator()(size_t a, size_t b) const { return (*v)[a] == (*v)[b]; }
  };
  std::unordered_set<size_t, IndexHash, IndexEq> seen(
      16, IndexHash{&out}, IndexEq{&out});
  Valuation val;

  // Track which predicates have been applied at which join depth so each
  // fires as soon as its variables are bound.
  std::vector<bool> pred_done(q.preds.size(), false);

  std::function<Status(size_t)> recurse = [&](size_t depth) -> Status {
    if (out.size() >= options.max_groundings) return Status::Ok();
    if (depth == q.body.size()) {
      Grounding g;
      for (const Atom& h : q.head) {
        std::vector<Value> vals;
        vals.reserve(h.terms.size());
        for (const Term& t : h.terms) {
          YT_ASSIGN_OR_RETURN(Value v, TermValue(t, val));
          vals.push_back(std::move(v));
        }
        g.heads.emplace_back(h.relation, Row(std::move(vals)));
      }
      for (const Atom& c : q.post) {
        std::vector<Value> vals;
        vals.reserve(c.terms.size());
        for (const Term& t : c.terms) {
          YT_ASSIGN_OR_RETURN(Value v, TermValue(t, val));
          vals.push_back(std::move(v));
        }
        g.posts.emplace_back(c.relation, Row(std::move(vals)));
      }
      out.push_back(std::move(g));
      if (!seen.insert(out.size() - 1).second) out.pop_back();
      return Status::Ok();
    }

    const Atom& atom = q.body[depth];
    AtomAccess& acc = access[depth];
    const std::vector<Row>* depth_rows = &acc.rows;
    std::vector<Row> uncached;  // probe rows when the cache is full
    if (acc.plan.is_lazy()) {
      // Assemble the probe key from constants and the valuation built by
      // shallower atoms. Unlike the SQL executor (where `= NULL` is never
      // true and a NULL binding short-circuits to zero rows), valuation
      // unification matches NULL against NULL — and the indexes store
      // NULL-keyed rows — so a NULL binding probes like any other value on
      // the equality positions. Range *bounds*, by contrast, come from
      // predicates, and PredHolds is false on NULL: a NULL bound yields no
      // rows for this binding.
      std::vector<Value> kv;
      kv.reserve(acc.plan.parts.size());
      for (const sql::JoinProbePlan::KeyPart& part : acc.plan.parts) {
        if (part.is_const) {
          kv.push_back(part.constant);
          continue;
        }
        const std::string& var = acc.var_names[part.outer];
        auto vit = val.find(var);
        if (vit == val.end()) {
          return Status::Internal("probe variable " + var +
                                  " unbound at its join depth");
        }
        kv.push_back(vit->second);
      }
      // The fetch visitor shared by both probe kinds: arity check plus
      // pruning on constants the index did not cover.
      Status arity_error = Status::Ok();
      auto make_collector = [&](std::vector<Row>* rows) {
        return [&, rows](RowId, Row&& row) {
          if (row.size() != atom.terms.size()) {
            arity_error = Status::InvalidArgument(
                "atom arity mismatch for relation " + atom.relation);
            return false;
          }
          for (size_t i = 0; i < atom.terms.size(); ++i) {
            if (!atom.terms[i].is_var && atom.terms[i].constant != row[i]) {
              return true;  // constant the index did not cover
            }
          }
          rows->push_back(std::move(row));
          return true;
        };
      };
      if (acc.plan.is_probe()) {
        YT_ASSIGN_OR_RETURN(
            depth_rows,
            acc.cache.GetOrFetch(
                Row(std::move(kv)),
                tm->stats().grounding_join_probe_cache_hits, &uncached,
                [&](const Row& key, std::vector<Row>* rows) -> Status {
                  YT_ASSIGN_OR_RETURN(
                      auto cursor,
                      tm->OpenCursor(txn, acc.table,
                                     AccessPlan::Lookup(acc.plan.columns, key),
                                     ReadOrigin::kGroundingJoin));
                  YT_RETURN_IF_ERROR(cursor->Drain(make_collector(rows)));
                  return arity_error;
                }));
      } else {
        auto resolve = [&](const sql::JoinProbePlan::RangeBound& b,
                           Value* out) -> StatusOr<bool> {
          if (b.is_const) {
            *out = b.constant;
          } else {
            const std::string& var = acc.var_names[b.outer];
            auto vit = val.find(var);
            if (vit == val.end()) {
              return Status::Internal("range bound variable " + var +
                                      " unbound at its join depth");
            }
            *out = vit->second;
          }
          return !out->is_null();
        };
        Value lo_v, hi_v;
        if (acc.plan.lo.present) {
          YT_ASSIGN_OR_RETURN(bool ok, resolve(acc.plan.lo, &lo_v));
          if (!ok) return Status::Ok();
        }
        if (acc.plan.hi.present) {
          YT_ASSIGN_OR_RETURN(bool ok, resolve(acc.plan.hi, &hi_v));
          if (!ok) return Status::Ok();
        }
        // null_filter_from = parts.size(): unlike SQL, unification matches
        // NULL on the eq prefix; only the range column filters NULLs.
        IndexRangeSpec spec = acc.plan.MakeRangeSpec(
            kv, lo_v, hi_v, /*null_filter_from=*/acc.plan.parts.size());
        YT_ASSIGN_OR_RETURN(
            depth_rows,
            acc.cache.GetOrFetch(
                acc.plan.MakeRangeCacheKey(std::move(kv), lo_v, hi_v),
                tm->stats().grounding_range_probe_cache_hits, &uncached,
                [&](const Row&, std::vector<Row>* rows) -> Status {
                  YT_ASSIGN_OR_RETURN(
                      auto cursor,
                      tm->OpenCursor(txn, acc.table, AccessPlan::Range(spec),
                                     ReadOrigin::kGroundingJoin));
                  YT_RETURN_IF_ERROR(cursor->Drain(make_collector(rows)));
                  return arity_error;
                }));
      }
    }
    for (const Row& row : *depth_rows) {
      // Try to extend the valuation with this row.
      std::vector<std::string> bound_here;
      bool ok = true;
      for (size_t i = 0; i < atom.terms.size() && ok; ++i) {
        const Term& t = atom.terms[i];
        if (!t.is_var) {
          if (t.constant != row[i]) ok = false;
        } else {
          auto it = val.find(t.var);
          if (it != val.end()) {
            if (it->second != row[i]) ok = false;
          } else {
            val[t.var] = row[i];
            bound_here.push_back(t.var);
          }
        }
      }
      // Apply any predicate that just became ready.
      std::vector<size_t> preds_here;
      if (ok) {
        for (size_t pi = 0; pi < q.preds.size() && ok; ++pi) {
          if (pred_done[pi] || !PredReady(q.preds[pi], val)) continue;
          pred_done[pi] = true;
          preds_here.push_back(pi);
          if (!PredHolds(q.preds[pi], val)) ok = false;
        }
      }
      if (ok) {
        Status s = recurse(depth + 1);
        if (!s.ok()) {
          for (size_t pi : preds_here) pred_done[pi] = false;
          for (const std::string& v : bound_here) val.erase(v);
          return s;
        }
      }
      for (size_t pi : preds_here) pred_done[pi] = false;
      for (const std::string& v : bound_here) val.erase(v);
    }
    return Status::Ok();
  };

  YT_RETURN_IF_ERROR(recurse(0));
  return out;
}

}  // namespace youtopia::eq
