#ifndef YOUTOPIA_EQ_GROUNDER_H_
#define YOUTOPIA_EQ_GROUNDER_H_

#include <string>
#include <utility>
#include <vector>

#include "src/eq/ir.h"
#include "src/txn/txn_engine.h"

namespace youtopia::eq {

/// One grounding of an entangled query (Appendix A): the head and
/// postcondition atoms instantiated by a body valuation. Bodies are
/// discarded after grounding, exactly as in the paper's Figure 7(b).
struct Grounding {
  /// (answer relation, tuple) per head atom.
  std::vector<std::pair<std::string, Row>> heads;
  /// (answer relation, tuple) per postcondition atom.
  std::vector<std::pair<std::string, Row>> posts;

  bool operator==(const Grounding& o) const {
    return heads == o.heads && posts == o.posts;
  }
  /// Combined hash over relations and tuples — keys the grounder's dedup
  /// set (no string rendering on the hot path).
  size_t Hash() const;
  std::string ToString() const;
};

/// Evaluates an entangled query's body over the database — the *grounding
/// reads* R^G of the formal model. Reads go through the engine's
/// grounding-origin cursors so they take the same table S locks as ordinary
/// scans (this is what makes quasi-reads repeatable under full isolation)
/// and are recorded as R^G by the schedule observer. Against a sharded
/// engine the same cursors fan out per atom — point-covered atoms probe
/// exactly the owning shard.
class Grounder {
 public:
  struct Options {
    size_t max_groundings = 100000;  ///< guardrail against runaway products
    /// Ablation switch for bind-driven atom probes: when false, every body
    /// atom is snapshotted eagerly (the pre-probe behavior). Groundings are
    /// identical either way — only the access path changes.
    bool use_index_probes = true;
  };

  /// Returns the groundings in deterministic (scan) order, deduplicated.
  /// An unsatisfiable body yields an empty list.
  static StatusOr<std::vector<Grounding>> Ground(const EntangledQuerySpec& q,
                                                 TxnEngine* tm,
                                                 Transaction* txn,
                                                 Options options);
  static StatusOr<std::vector<Grounding>> Ground(const EntangledQuerySpec& q,
                                                 TxnEngine* tm,
                                                 Transaction* txn);
};

}  // namespace youtopia::eq

#endif  // YOUTOPIA_EQ_GROUNDER_H_
