#include "src/eq/ir.h"

#include <set>

namespace youtopia::eq {

std::string Atom::ToString() const {
  std::string s = relation + "(";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i) s += ", ";
    s += terms[i].ToString();
  }
  return s + ")";
}

Status EntangledQuerySpec::Validate() const {
  if (head.empty()) {
    return Status::InvalidArgument("entangled query " + label +
                                   " has no head atom");
  }
  if (choose != 1) {
    return Status::Unimplemented("only CHOOSE 1 is supported");
  }
  std::set<std::string> body_vars;
  for (const Atom& a : body) {
    for (const Term& t : a.terms) {
      if (t.is_var) body_vars.insert(t.var);
    }
  }
  auto check_atoms = [&](const std::vector<Atom>& atoms,
                         const char* what) -> Status {
    for (const Atom& a : atoms) {
      for (const Term& t : a.terms) {
        if (t.is_var && !body_vars.count(t.var)) {
          return Status::InvalidArgument(
              "query " + label + ": " + what + " variable '" + t.var +
              "' violates range restriction (not bound in body)");
        }
      }
    }
    return Status::Ok();
  };
  YT_RETURN_IF_ERROR(check_atoms(head, "head"));
  YT_RETURN_IF_ERROR(check_atoms(post, "postcondition"));
  for (const BodyPredicate& p : preds) {
    if (p.lhs.is_var && !body_vars.count(p.lhs.var)) {
      return Status::InvalidArgument("query " + label + ": predicate var '" +
                                     p.lhs.var + "' not bound in body");
    }
    if (p.rhs.is_var && !body_vars.count(p.rhs.var)) {
      return Status::InvalidArgument("query " + label + ": predicate var '" +
                                     p.rhs.var + "' not bound in body");
    }
  }
  return Status::Ok();
}

std::string EntangledQuerySpec::ToString() const {
  std::string s = "{";
  for (size_t i = 0; i < post.size(); ++i) {
    if (i) s += ", ";
    s += post[i].ToString();
  }
  s += "} ";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i) s += ", ";
    s += head[i].ToString();
  }
  s += " <- ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i) s += " & ";
    s += body[i].ToString();
  }
  for (const BodyPredicate& p : preds) {
    s += " & " + p.ToString();
  }
  if (body_unsatisfiable) s += " & FALSE";
  return s;
}

}  // namespace youtopia::eq
