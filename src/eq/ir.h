#ifndef YOUTOPIA_EQ_IR_H_
#define YOUTOPIA_EQ_IR_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/row.h"
#include "src/common/statusor.h"

namespace youtopia::eq {

/// A term in an atom: a constant or a variable (Appendix A intermediate
/// representation).
struct Term {
  bool is_var = false;
  Value constant;
  std::string var;

  static Term Const(Value v) {
    Term t;
    t.constant = std::move(v);
    return t;
  }
  static Term Var(std::string name) {
    Term t;
    t.is_var = true;
    t.var = std::move(name);
    return t;
  }

  bool operator==(const Term& o) const {
    if (is_var != o.is_var) return false;
    return is_var ? var == o.var : constant == o.constant;
  }
  std::string ToString() const {
    return is_var ? var : constant.ToString();
  }
};

/// A relational atom R(t1, ..., tk) over either an ANSWER relation (head /
/// postcondition) or a database relation (body).
struct Atom {
  std::string relation;
  std::vector<Term> terms;

  std::string ToString() const;
  bool operator==(const Atom& o) const {
    return relation == o.relation && terms == o.terms;
  }
};

/// A comparison restricting body valuations, e.g. price < 100 or x <> y.
/// Equalities are compiled away by unification; only the residue lands here.
struct BodyPredicate {
  Term lhs;
  std::string op;  ///< = <> != < <= > >=
  Term rhs;

  std::string ToString() const {
    return lhs.ToString() + " " + op + " " + rhs.ToString();
  }
};

/// An entangled query in the paper's intermediate representation
/// {C} H <- B (Appendix A): heads H and postconditions C over ANSWER
/// relations, body B a conjunctive query (atoms + residual predicates) over
/// database relations. Range restriction: every head/postcondition variable
/// must occur in the body.
struct EntangledQuerySpec {
  std::string label;  ///< diagnostics, e.g. "Mickey.flight"
  std::vector<Atom> head;
  std::vector<Atom> post;
  std::vector<Atom> body;
  std::vector<BodyPredicate> preds;
  int64_t choose = 1;
  bool body_unsatisfiable = false;  ///< conflicting constant constraints

  /// Bindings of answer-tuple positions to host variables:
  /// (head index, term index, variable name). `fdate AS @ArrivalDay` binds
  /// @arrivalday to that position of the answer tuple.
  struct AnswerBinding {
    size_t head_index;
    size_t term_index;
    std::string var;
  };
  std::vector<AnswerBinding> answer_bindings;

  /// Checks range restriction and basic well-formedness.
  Status Validate() const;
  std::string ToString() const;
};

}  // namespace youtopia::eq

#endif  // YOUTOPIA_EQ_IR_H_
