#include "src/eq/safety.h"

namespace youtopia::eq {

bool TemplatesUnify(const Atom& a, const Atom& b) {
  if (a.relation != b.relation) return false;
  if (a.terms.size() != b.terms.size()) return false;
  for (size_t i = 0; i < a.terms.size(); ++i) {
    const Term& x = a.terms[i];
    const Term& y = b.terms[i];
    if (!x.is_var && !y.is_var && x.constant != y.constant) return false;
  }
  return true;
}

std::vector<bool> ComputeFormable(
    const std::vector<const EntangledQuerySpec*>& queries) {
  const size_t n = queries.size();
  std::vector<bool> formable(n, true);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      if (!formable[i]) continue;
      bool ok = true;
      for (const Atom& post : queries[i]->post) {
        bool provided = false;
        for (size_t j = 0; j < n && !provided; ++j) {
          if (j == i || !formable[j]) continue;
          for (const Atom& head : queries[j]->head) {
            if (TemplatesUnify(post, head)) {
              provided = true;
              break;
            }
          }
        }
        if (!provided) {
          ok = false;
          break;
        }
      }
      if (!ok) {
        formable[i] = false;
        changed = true;
      }
    }
  }
  return formable;
}

}  // namespace youtopia::eq
