#ifndef YOUTOPIA_EQ_SAFETY_H_
#define YOUTOPIA_EQ_SAFETY_H_

#include <vector>

#include "src/eq/ir.h"

namespace youtopia::eq {

/// Template-level (database-independent) unification: two atoms unify when
/// they name the same relation with the same arity and agree on every
/// position where both carry constants. Variables unify with anything.
bool TemplatesUnify(const Atom& a, const Atom& b);

/// The Appendix-B "combined query formulated" test, which by the paper's own
/// requirement must be independent of the underlying database. A query is
/// *formable* iff every one of its postcondition atoms unifies with the head
/// atom of some *other* formable query in the set (greatest fixpoint:
/// start optimistic, strip queries whose posts lost all potential providers,
/// iterate). A query with no postconditions is trivially formable.
///
/// Formable + evaluated-but-empty  => query success with an empty answer
///                                    (the transaction proceeds, App. B);
/// not formable                    => query failure (the transaction waits).
std::vector<bool> ComputeFormable(
    const std::vector<const EntangledQuerySpec*>& queries);

}  // namespace youtopia::eq

#endif  // YOUTOPIA_EQ_SAFETY_H_
