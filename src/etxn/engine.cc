#include "src/etxn/engine.h"

#include <algorithm>
#include <map>

namespace youtopia::etxn {

EntangledTransactionEngine::EntangledTransactionEngine(TxnEngine* tm,
                                                       EngineOptions options)
    : tm_(tm),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SystemClock::Default()),
      executor_(tm) {
  if (options_.num_connections == 0) options_.num_connections = 1;
  if (options_.run_frequency < 1) options_.run_frequency = 1;
  connections_ = std::make_unique<ThreadPool>(options_.num_connections);
  if (options_.auto_scheduler) {
    scheduler_ = std::make_unique<std::thread>([this] { SchedulerLoop(); });
  }
}

EntangledTransactionEngine::~EntangledTransactionEngine() {
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_ = true;
  }
  scheduler_cv_.notify_all();
  controller_cv_.notify_all();
  if (scheduler_ != nullptr) scheduler_->join();
  // Resolve anything still dormant so no client blocks forever.
  std::deque<PoolEntry> leftovers;
  {
    std::lock_guard<std::mutex> g(mu_);
    leftovers.swap(dormant_);
  }
  for (PoolEntry& e : leftovers) {
    e.handle->Resolve(Status::Aborted("engine shut down"), 0, {});
  }
  connections_.reset();
}

std::shared_ptr<TxnHandle> EntangledTransactionEngine::Submit(
    EntangledTransactionSpec spec) {
  PoolEntry entry;
  int64_t timeout = spec.timeout_micros > 0 ? spec.timeout_micros
                                            : options_.default_timeout_micros;
  entry.spec = std::make_shared<EntangledTransactionSpec>(std::move(spec));
  entry.handle = std::make_shared<TxnHandle>();
  entry.deadline_micros = Now() + timeout;
  std::shared_ptr<TxnHandle> handle = entry.handle;
  {
    std::lock_guard<std::mutex> g(mu_);
    dormant_.push_back(std::move(entry));
    ++arrivals_since_run_;
  }
  scheduler_cv_.notify_all();
  return handle;
}

size_t EntangledTransactionEngine::dormant_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return dormant_.size();
}

void EntangledTransactionEngine::SchedulerLoop() {
  std::unique_lock<std::mutex> l(mu_);
  while (!stop_) {
    scheduler_cv_.wait_for(
        l, std::chrono::microseconds(options_.scheduler_poll_micros), [this] {
          return stop_ ||
                 (!run_in_progress_ && !dormant_.empty() &&
                  arrivals_since_run_ >=
                      static_cast<size_t>(options_.run_frequency));
        });
    if (stop_) return;
    if (run_in_progress_ || dormant_.empty()) continue;
    run_in_progress_ = true;
    arrivals_since_run_ = 0;
    std::vector<PoolEntry> entries(dormant_.begin(), dormant_.end());
    dormant_.clear();
    l.unlock();
    (void)ExecuteRun(std::move(entries));
    l.lock();
    run_in_progress_ = false;
    controller_cv_.notify_all();
  }
}

RunReport EntangledTransactionEngine::RunOnce() {
  std::vector<PoolEntry> entries;
  {
    std::unique_lock<std::mutex> l(mu_);
    controller_cv_.wait(l, [this] { return !run_in_progress_ || stop_; });
    if (stop_) return RunReport{};
    run_in_progress_ = true;
    arrivals_since_run_ = 0;
    entries.assign(dormant_.begin(), dormant_.end());
    dormant_.clear();
  }
  RunReport report = ExecuteRun(std::move(entries));
  {
    std::lock_guard<std::mutex> g(mu_);
    run_in_progress_ = false;
  }
  controller_cv_.notify_all();
  return report;
}

void EntangledTransactionEngine::WaitAll(
    const std::vector<std::shared_ptr<TxnHandle>>& handles) {
  if (options_.auto_scheduler) {
    for (const auto& h : handles) (void)h->Wait();
    return;
  }
  for (;;) {
    bool all_done = true;
    for (const auto& h : handles) {
      if (!h->done()) {
        all_done = false;
        break;
      }
    }
    if (all_done) return;
    RunReport r = RunOnce();
    if (r.participants == 0) {
      // Pool momentarily empty but handles unresolved: let time pass so
      // deadlines can expire (advances ManualClock in tests).
      clock_->SleepMicros(1000);
    }
  }
}

void EntangledTransactionEngine::SleepLatency() {
  if (options_.statement_latency_micros > 0) {
    clock_->SleepMicros(options_.statement_latency_micros);
  }
}

void EntangledTransactionEngine::RollbackParticipant(Participant* p) {
  if (p->txn != nullptr && p->txn->active()) {
    (void)tm_->Abort(p->txn.get());
  }
  p->txn.reset();
}

RunReport EntangledTransactionEngine::ExecuteRun(
    std::vector<PoolEntry> entries) {
  RunReport report;
  {
    std::lock_guard<std::mutex> g(mu_);
    report.run_id = next_run_id_++;
  }
  stats_.runs.fetch_add(1, std::memory_order_relaxed);

  RunState run;
  int64_t now = Now();
  for (PoolEntry& e : entries) {
    if (now >= e.deadline_micros) {
      e.handle->Resolve(
          Status::TimedOut("entangled transaction '" + e.spec->name +
                           "' timed out waiting for partners"),
          0, {});
      ++report.timed_out;
      stats_.timed_out.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    auto p = std::make_unique<Participant>();
    p->entry = std::move(e);
    p->entry.handle->BumpAttempts();
    run.participants.push_back(std::move(p));
  }
  report.participants = run.participants.size();
  if (run.participants.empty()) return report;

  for (auto& p : run.participants) {
    Participant* raw = p.get();
    RunState* run_ptr = &run;
    connections_->Submit([this, run_ptr, raw] { RunParticipant(run_ptr, raw); });
  }

  // Controller loop: wait for quiescence, evaluate pending entangled
  // queries jointly, repeat until no progress; then finalize.
  std::unique_lock<std::mutex> l(mu_);
  for (;;) {
    controller_cv_.wait_for(l, std::chrono::milliseconds(2));
    if (run.running > 0) continue;
    size_t queued = 0;
    size_t parked = 0;     // any participant still inside the eq wait,
                           // whether or not its decision was delivered —
                           // its worker thread may still be waking up and
                           // touching participant state
    size_t undecided = 0;  // parked and awaiting a decision
    for (auto& p : run.participants) {
      if (p->state == PState::kQueued) ++queued;
      if (p->state == PState::kWaitingEq) {
        ++parked;
        if (p->decision == EqDecision::kNone) ++undecided;
      }
    }
    if (queued > 0 && parked < options_.num_connections) {
      continue;  // free connections exist: the pool will start them
    }
    // Only evaluate once every parked participant's previous decision has
    // been consumed (parked == undecided), so a delivered-but-not-yet-awake
    // worker is never raced.
    if (undecided > 0 && undecided == parked) {
      l.unlock();
      bool progress = EvaluatePending(&run, &report);
      l.lock();
      if (!progress) {
        // Nothing can be answered in this wave: abort the blocked
        // transactions back to the pool (paper §4).
        for (auto& p : run.participants) {
          if (p->state == PState::kWaitingEq &&
              p->decision == EqDecision::kNone) {
            p->decision = EqDecision::kRetryRun;
            p->cv.notify_all();
          }
        }
      }
      continue;
    }
    // Exit only when no worker can still be inside RunParticipant: nothing
    // running, nothing queued, and nobody parked (even with a delivered
    // decision — those workers are mid-wakeup).
    if (queued == 0 && parked == 0 && run.running == 0) break;
  }
  l.unlock();

  FinalizeRun(&run, &report);
  return report;
}

bool EntangledTransactionEngine::EvaluatePending(RunState* run,
                                                 RunReport* report) {
  // Snapshot parked participants with undelivered decisions.
  std::vector<Participant*> pending;
  {
    std::lock_guard<std::mutex> g(mu_);
    for (auto& p : run->participants) {
      if (p->state == PState::kWaitingEq && p->decision == EqDecision::kNone &&
          p->pending_eq.has_value()) {
        pending.push_back(p.get());
      }
    }
  }
  if (pending.empty()) return false;
  ++report->eval_rounds;
  stats_.eval_rounds.fetch_add(1, std::memory_order_relaxed);

  // Ground every pending query on the current database, each under its own
  // transaction's locks (non-transactional programs ground in a short
  // read-only transaction).
  std::vector<eq::EvalItem> items;
  std::vector<std::unique_ptr<Transaction>> temp_txns(pending.size());
  std::vector<Participant*> item_owner;
  std::vector<Participant*> ground_failures;
  for (size_t i = 0; i < pending.size(); ++i) {
    Participant* p = pending[i];
    Transaction* gtxn = p->txn.get();
    if (gtxn == nullptr) {
      temp_txns[i] = tm_->Begin(p->entry.spec->isolation);
      gtxn = temp_txns[i].get();
    }
    auto groundings = eq::Grounder::Ground(*p->pending_eq, tm_, gtxn);
    if (!groundings.ok()) {
      ground_failures.push_back(p);
      continue;
    }
    eq::EvalItem item;
    item.spec = &*p->pending_eq;
    item.txn = gtxn->id();
    item.groundings = std::move(groundings).value();
    items.push_back(std::move(item));
    item_owner.push_back(p);
  }

  eq::EvalResult result;
  if (!items.empty()) {
    EntanglementId first =
        next_eid_.fetch_add(items.size(), std::memory_order_relaxed);
    result = eq::Coordinator::Evaluate(items, first);
    // Make the entanglement persistent (ENTANGLE WAL record) and visible to
    // the schedule recorder.
    for (const auto& [eid, idxs] : result.operations) {
      std::vector<Transaction*> members;
      for (size_t idx : idxs) {
        Participant* p = item_owner[idx];
        Transaction* t = p->txn != nullptr ? p->txn.get() : nullptr;
        if (t == nullptr) {
          // Non-transactional: the grounding transaction stands in.
          for (size_t k = 0; k < pending.size(); ++k) {
            if (pending[k] == p && temp_txns[k] != nullptr) {
              t = temp_txns[k].get();
            }
          }
        }
        if (t != nullptr) members.push_back(t);
      }
      if (members.size() >= 2) {
        (void)tm_->LogEntangle(eid, members);
      }
      ++report->entangle_ops;
      stats_.entangle_ops.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Release the short grounding transactions (-Q path).
  for (auto& t : temp_txns) {
    if (t != nullptr && t->active()) (void)tm_->Commit(t.get());
  }

  // Deliver decisions.
  bool progress = false;
  {
    std::lock_guard<std::mutex> g(mu_);
    for (size_t i = 0; i < items.size(); ++i) {
      Participant* p = item_owner[i];
      const eq::Outcome& o = result.outcomes[i];
      switch (o.kind) {
        case eq::OutcomeKind::kAnswered:
          p->decision = EqDecision::kAnswered;
          p->answer = o.answers;
          progress = true;
          if (o.eid != 0) {
            p->entangled = true;
            for (size_t j : o.partners) {
              Participant* q = item_owner[j];
              if (std::find(p->partners.begin(), p->partners.end(), q) ==
                  p->partners.end()) {
                p->partners.push_back(q);
              }
            }
          }
          break;
        case eq::OutcomeKind::kEmptySuccess:
          p->decision = EqDecision::kEmpty;
          progress = true;
          break;
        case eq::OutcomeKind::kNoPartner:
          break;  // stays parked; retried next round or retired
      }
      if (p->decision != EqDecision::kNone) p->cv.notify_all();
    }
    for (Participant* p : ground_failures) {
      p->decision = EqDecision::kRetryRun;
      p->cv.notify_all();
    }
  }
  return progress;
}

void EntangledTransactionEngine::RunParticipant(RunState* run,
                                                Participant* p) {
  const EntangledTransactionSpec& spec = *p->entry.spec;
  {
    std::lock_guard<std::mutex> g(mu_);
    p->state = PState::kRunning;
    ++run->running;
  }
  p->vars = p->entry.saved_vars;
  p->stmt_index = p->entry.resume_index;

  if (spec.transactional) {
    SleepLatency();  // BEGIN round trip
    p->txn = tm_->Begin(spec.isolation);
  }

  StepResult r = StepResult::kContinue;
  while (p->stmt_index < spec.statements.size()) {
    r = ExecuteStatement(run, p, spec.statements[p->stmt_index]);
    if (r != StepResult::kContinue) break;
    ++p->stmt_index;
  }
  if (r == StepResult::kContinue) {
    if (spec.transactional) SleepLatency();  // COMMIT round trip
    r = StepResult::kReadyToCommit;
  }

  PState final_state;
  switch (r) {
    case StepResult::kReadyToCommit:
      final_state = PState::kReady;
      break;
    case StepResult::kRetry:
      RollbackParticipant(p);
      final_state = PState::kRetry;
      break;
    case StepResult::kFail:
    default:
      RollbackParticipant(p);
      final_state = PState::kFailed;
      break;
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    p->state = final_state;
    --run->running;
  }
  controller_cv_.notify_all();
}

EntangledTransactionEngine::StepResult
EntangledTransactionEngine::ExecuteStatement(RunState* run, Participant* p,
                                             const Statement& stmt) {
  SleepLatency();
  if (stmt.kind == Statement::Kind::kNative) {
    ExecContext ctx(&executor_, p->txn.get(), &p->vars);
    Status s = stmt.native(ctx);
    if (s.ok()) return StepResult::kContinue;
    p->final_status = s;  // native failures are application-level: permanent
    return StepResult::kFail;
  }

  const sql::ParsedStatement& parsed = *stmt.parsed;
  switch (parsed.kind) {
    case sql::StatementKind::kEntangledSelect:
      return HandleEntangledQuery(run, p, *parsed.entangled);
    case sql::StatementKind::kRollback:
      p->final_status = Status::Aborted("explicit ROLLBACK in program '" +
                                        p->entry.spec->name + "'");
      return StepResult::kFail;
    case sql::StatementKind::kBegin:
    case sql::StatementKind::kCommit:
      return StepResult::kContinue;  // stripped by FromScript normally
    default:
      break;
  }

  StatusOr<sql::QueryResult> result = Status::Internal("unreachable");
  if (p->entry.spec->transactional) {
    result = executor_.Execute(parsed, p->txn.get(), &p->vars);
  } else {
    std::unique_ptr<Transaction> txn = tm_->Begin(p->entry.spec->isolation);
    result = executor_.Execute(parsed, txn.get(), &p->vars);
    if (result.ok()) {
      Status c = tm_->Commit(txn.get());
      if (!c.ok()) result = c;
    } else {
      (void)tm_->Abort(txn.get());
    }
  }
  if (result.ok()) return StepResult::kContinue;

  const Status& s = result.status();
  if (s.code() == StatusCode::kAborted || s.code() == StatusCode::kTimedOut) {
    // Deadlock victim / lock-wait timeout: transient, retry in a later run.
    if (!p->entry.spec->transactional) {
      p->entry.resume_index = p->stmt_index;  // resume at this statement
      p->entry.saved_vars = p->vars;
    } else {
      p->entry.resume_index = 0;
      p->entry.saved_vars.clear();
    }
    return StepResult::kRetry;
  }
  p->final_status = s;
  return StepResult::kFail;
}

EntangledTransactionEngine::StepResult
EntangledTransactionEngine::HandleEntangledQuery(
    RunState* run, Participant* p, const sql::EntangledSelectStmt& stmt) {
  auto compiled = eq::Compiler::Compile(
      stmt, p->vars, *tm_->db(),
      p->entry.spec->name + "#q" + std::to_string(p->stmt_index));
  if (!compiled.ok()) {
    p->final_status = compiled.status();
    return StepResult::kFail;
  }
  eq::EntangledQuerySpec spec_copy = compiled.value();

  EqDecision decision;
  std::vector<std::pair<std::string, Row>> answer;
  {
    std::unique_lock<std::mutex> l(mu_);
    p->pending_eq = std::move(compiled).value();
    p->decision = EqDecision::kNone;
    p->answer.clear();
    p->state = PState::kWaitingEq;
    --run->running;
    controller_cv_.notify_all();
    p->cv.wait(l, [p] { return p->decision != EqDecision::kNone; });
    decision = p->decision;
    p->decision = EqDecision::kNone;
    answer = std::move(p->answer);
    p->pending_eq.reset();
    p->state = PState::kRunning;
    ++run->running;
  }

  switch (decision) {
    case EqDecision::kAnswered: {
      // Bind AS @var positions from the answer tuple(s).
      for (const auto& b : spec_copy.answer_bindings) {
        if (b.head_index < answer.size() &&
            b.term_index < answer[b.head_index].second.size()) {
          p->vars[b.var] = answer[b.head_index].second[b.term_index];
        }
      }
      return StepResult::kContinue;
    }
    case EqDecision::kEmpty: {
      // Combined query formulated but evaluation was empty: proceed with
      // NULL bindings (Appendix B success-with-empty-answer).
      for (const auto& b : spec_copy.answer_bindings) {
        p->vars[b.var] = Value::Null();
      }
      return StepResult::kContinue;
    }
    case EqDecision::kRetryRun:
    default: {
      if (!p->entry.spec->transactional) {
        p->entry.resume_index = p->stmt_index;  // resume at this query
        p->entry.saved_vars = p->vars;
      } else {
        p->entry.resume_index = 0;
        p->entry.saved_vars.clear();
      }
      return StepResult::kRetry;
    }
  }
}

void EntangledTransactionEngine::FinalizeRun(RunState* run,
                                             RunReport* report) {
  auto& parts = run->participants;
  const size_t n = parts.size();

  // Union-find over participants along entanglement partner edges.
  std::vector<size_t> dsu(n);
  for (size_t i = 0; i < n; ++i) dsu[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (dsu[x] != x) {
      dsu[x] = dsu[dsu[x]];
      x = dsu[x];
    }
    return x;
  };
  std::map<Participant*, size_t> index_of;
  for (size_t i = 0; i < n; ++i) index_of[parts[i].get()] = i;
  for (size_t i = 0; i < n; ++i) {
    for (Participant* q : parts[i]->partners) {
      auto it = index_of.find(q);
      if (it != index_of.end()) dsu[find(i)] = find(it->second);
    }
  }
  std::map<size_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < n; ++i) groups[find(i)].push_back(i);

  for (auto& [root, members] : groups) {
    (void)root;
    // A group commits iff every *transactional* member is ready. (Singleton
    // non-entangled groups degrade to plain commit.)
    bool all_ready = true;
    bool any_entangled = false;
    std::vector<Participant*> txn_members;
    for (size_t i : members) {
      Participant* p = parts[i].get();
      if (p->entangled) any_entangled = true;
      if (p->entry.spec->transactional) {
        txn_members.push_back(p);
        if (p->state != PState::kReady) all_ready = false;
      }
    }

    if (all_ready && any_entangled && !txn_members.empty()) {
      std::vector<Transaction*> txns;
      for (Participant* p : txn_members) {
        if (p->txn != nullptr) txns.push_back(p->txn.get());
      }
      Status s = txns.empty() ? Status::Ok() : tm_->CommitGroup(txns);
      if (s.ok()) {
        ++report->group_commits;
        for (size_t i : members) {
          Participant* p = parts[i].get();
          if (p->state == PState::kReady) {
            p->entry.handle->Resolve(
                Status::Ok(), p->txn != nullptr ? p->txn->id() : 0, p->vars);
            p->state = PState::kRunning;  // consumed marker
            ++report->committed;
            stats_.committed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } else {
        for (Participant* p : txn_members) {
          if (p->state == PState::kReady) {
            RollbackParticipant(p);
            p->state = PState::kRetry;
          }
        }
      }
    } else if (any_entangled) {
      // Widow prevention: some member aborted/blocked — every ready
      // transactional partner must abort too and retry later.
      for (Participant* p : txn_members) {
        if (p->state == PState::kReady) {
          RollbackParticipant(p);
          p->entry.resume_index = 0;
          p->entry.saved_vars.clear();
          p->state = PState::kRetry;
        }
      }
    }
  }

  // Second pass: everything not consumed above.
  std::vector<PoolEntry> requeue;
  int64_t now = Now();
  for (auto& up : parts) {
    Participant* p = up.get();
    switch (p->state) {
      case PState::kReady: {
        // Non-entangled (or non-transactional) completion.
        Status s = Status::Ok();
        TxnId id = 0;
        if (p->txn != nullptr) {
          id = p->txn->id();
          s = p->txn->entangled()
                  ? tm_->CommitGroup({p->txn.get()})
                  : tm_->Commit(p->txn.get());
        }
        if (s.ok()) {
          p->entry.handle->Resolve(Status::Ok(), id, p->vars);
          ++report->committed;
          stats_.committed.fetch_add(1, std::memory_order_relaxed);
        } else {
          RollbackParticipant(p);
          if (now >= p->entry.deadline_micros) {
            p->entry.handle->Resolve(
                Status::TimedOut("timed out after commit failure"), 0, {});
            ++report->timed_out;
            stats_.timed_out.fetch_add(1, std::memory_order_relaxed);
          } else {
            requeue.push_back(std::move(p->entry));
            ++report->retried;
            stats_.retried.fetch_add(1, std::memory_order_relaxed);
          }
        }
        break;
      }
      case PState::kRetry: {
        if (now >= p->entry.deadline_micros) {
          p->entry.handle->Resolve(
              Status::TimedOut("entangled transaction '" +
                               p->entry.spec->name +
                               "' timed out waiting for partners"),
              0, {});
          ++report->timed_out;
          stats_.timed_out.fetch_add(1, std::memory_order_relaxed);
        } else {
          requeue.push_back(std::move(p->entry));
          ++report->retried;
          stats_.retried.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      case PState::kFailed: {
        RollbackParticipant(p);
        p->entry.handle->Resolve(p->final_status, 0, p->vars);
        ++report->failed;
        stats_.failed.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      default:
        break;  // consumed by a group commit above
    }
  }
  if (!requeue.empty()) {
    // Retried transactions keep their FIFO seniority: they re-enter at the
    // FRONT of the dormant pool (in their original relative order), ahead
    // of anything that arrived while the run executed. Otherwise a
    // transaction whose partner arrived mid-run can leapfrog it forever
    // when the pool is saturated with pending transactions (observed at
    // p == num_connections in the Fig 6(b) setup).
    std::lock_guard<std::mutex> g(mu_);
    for (auto it = requeue.rbegin(); it != requeue.rend(); ++it) {
      dormant_.push_front(std::move(*it));
    }
  }
  scheduler_cv_.notify_all();
}

}  // namespace youtopia::etxn
