#ifndef YOUTOPIA_ETXN_ENGINE_H_
#define YOUTOPIA_ETXN_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/thread_pool.h"
#include "src/eq/compiler.h"
#include "src/eq/coordinator.h"
#include "src/eq/grounder.h"
#include "src/etxn/handle.h"
#include "src/etxn/spec.h"
#include "src/txn/txn_engine.h"

namespace youtopia::etxn {

/// Engine configuration. `num_connections` is the paper's concurrency bound
/// (one transaction per DBMS connection, §5.2.1); `statement_latency_micros`
/// models the client<->DBMS round trip of the middle-tier architecture so
/// that run time is connection-bound, not CPU-bound, exactly as in the
/// paper's MySQL setup; `run_frequency` is the paper's f (start a run after
/// f new arrivals).
struct EngineOptions {
  size_t num_connections = 100;
  int64_t statement_latency_micros = 0;
  int run_frequency = 1;
  int64_t scheduler_poll_micros = 20'000;  ///< idle kick for the auto scheduler
  int64_t default_timeout_micros = 10'000'000;
  bool auto_scheduler = true;  ///< false: tests drive RunOnce() manually
  Clock* clock = nullptr;      ///< defaults to SystemClock
};

/// Outcome counters for one run.
struct RunReport {
  uint64_t run_id = 0;
  size_t participants = 0;
  size_t committed = 0;
  size_t retried = 0;   ///< blocked on an unanswered eq; back to the pool
  size_t failed = 0;    ///< permanent program error / explicit rollback
  size_t timed_out = 0;
  size_t eval_rounds = 0;
  size_t entangle_ops = 0;
  size_t group_commits = 0;
};

/// Cumulative engine statistics.
struct EngineStats {
  std::atomic<uint64_t> runs{0};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> retried{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> timed_out{0};
  std::atomic<uint64_t> eval_rounds{0};
  std::atomic<uint64_t> entangle_ops{0};
};

/// The middle-tier entangled transaction manager (paper §4/§5, Figure 5):
///
///  * Submit() places a program in the dormant pool; the scheduler starts a
///    run every `run_frequency` arrivals (or on an idle kick).
///  * A run executes every dormant program on the connection pool. Each
///    program runs until it blocks on an entangled query, fails, or reaches
///    ready-to-commit. When all started programs are parked, the engine
///    grounds every pending entangled query (grounding reads under the
///    posing transaction's locks) and evaluates them jointly; answered
///    programs resume. Rounds repeat until none makes progress — the
///    Figure 4 walkthrough is this loop verbatim.
///  * Finalization enforces group commits: transitively entangled
///    transactions commit together through a WAL GROUP_COMMIT record or
///    abort together (widowed-transaction prevention, Requirement C.4).
///    Blocked programs are aborted back to the dormant pool; expired ones
///    resolve kTimedOut.
class EntangledTransactionEngine {
 public:
  EntangledTransactionEngine(TxnEngine* tm, EngineOptions options);
  ~EntangledTransactionEngine();

  EntangledTransactionEngine(const EntangledTransactionEngine&) = delete;
  EntangledTransactionEngine& operator=(const EntangledTransactionEngine&) =
      delete;

  /// Submits a program; returns its completion handle.
  std::shared_ptr<TxnHandle> Submit(EntangledTransactionSpec spec);

  /// Executes one run over the current dormant pool (manual mode; also
  /// usable alongside the auto scheduler for draining).
  RunReport RunOnce();

  /// Blocks until every handle is resolved. In auto mode the scheduler keeps
  /// issuing runs; in manual mode this loops RunOnce until the pool drains.
  void WaitAll(const std::vector<std::shared_ptr<TxnHandle>>& handles);

  size_t dormant_count() const;
  EngineStats& stats() { return stats_; }
  TxnEngine* tm() const { return tm_; }

 private:
  struct PoolEntry {
    std::shared_ptr<EntangledTransactionSpec> spec;
    std::shared_ptr<TxnHandle> handle;
    int64_t deadline_micros = 0;
    size_t resume_index = 0;  ///< for non-transactional retries
    sql::VarEnv saved_vars;   ///< for non-transactional retries
  };

  enum class PState {
    kQueued,
    kRunning,
    kWaitingEq,
    kReady,
    kRetry,
    kFailed,
  };

  enum class EqDecision { kNone, kAnswered, kEmpty, kRetryRun };

  struct Participant {
    PoolEntry entry;
    PState state = PState::kQueued;
    std::unique_ptr<Transaction> txn;
    sql::VarEnv vars;
    size_t stmt_index = 0;
    // Pending entangled query (set while kWaitingEq).
    std::optional<eq::EntangledQuerySpec> pending_eq;
    EqDecision decision = EqDecision::kNone;
    std::vector<std::pair<std::string, Row>> answer;
    Status final_status;
    std::condition_variable cv;
    // Entanglement partners among this run's participants, accumulated
    // across evaluation rounds; drives group commit + widow prevention.
    std::vector<Participant*> partners;
    bool entangled = false;
  };

  struct RunState {
    std::vector<std::unique_ptr<Participant>> participants;
    size_t running = 0;
  };

  void SchedulerLoop();
  RunReport ExecuteRun(std::vector<PoolEntry> entries);
  void RunParticipant(RunState* run, Participant* p);
  /// Executes one program statement; returns the loop action.
  enum class StepResult { kContinue, kReadyToCommit, kRetry, kFail };
  StepResult ExecuteStatement(RunState* run, Participant* p,
                              const Statement& stmt);
  StepResult HandleEntangledQuery(RunState* run, Participant* p,
                                  const sql::EntangledSelectStmt& stmt);
  /// Grounds + jointly evaluates all pending eqs; returns true if any
  /// participant received an answer or empty-success (progress).
  bool EvaluatePending(RunState* run, RunReport* report);
  void FinalizeRun(RunState* run, RunReport* report);
  void RollbackParticipant(Participant* p);
  void SleepLatency();
  int64_t Now() const { return clock_->NowMicros(); }

  TxnEngine* tm_;
  EngineOptions options_;
  Clock* clock_;
  sql::Executor executor_;

  mutable std::mutex mu_;
  std::condition_variable controller_cv_;
  std::deque<PoolEntry> dormant_;
  size_t arrivals_since_run_ = 0;
  bool run_in_progress_ = false;
  bool stop_ = false;
  uint64_t next_run_id_ = 1;
  std::atomic<EntanglementId> next_eid_{1};

  std::unique_ptr<ThreadPool> connections_;
  std::unique_ptr<std::thread> scheduler_;
  std::condition_variable scheduler_cv_;
  EngineStats stats_;
};

}  // namespace youtopia::etxn

#endif  // YOUTOPIA_ETXN_ENGINE_H_
