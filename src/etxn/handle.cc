#include "src/etxn/handle.h"

namespace youtopia::etxn {

Status TxnHandle::Wait() {
  std::unique_lock<std::mutex> g(mu_);
  cv_.wait(g, [this] { return done_; });
  return result_;
}

bool TxnHandle::done() const {
  std::lock_guard<std::mutex> g(mu_);
  return done_;
}

int TxnHandle::attempts() const {
  std::lock_guard<std::mutex> g(mu_);
  return attempts_;
}

TxnId TxnHandle::committed_txn_id() const {
  std::lock_guard<std::mutex> g(mu_);
  return committed_txn_;
}

sql::VarEnv TxnHandle::final_vars() const {
  std::lock_guard<std::mutex> g(mu_);
  return final_vars_;
}

void TxnHandle::Resolve(Status s, TxnId txn, sql::VarEnv vars) {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (done_) return;
    done_ = true;
    result_ = std::move(s);
    committed_txn_ = txn;
    final_vars_ = std::move(vars);
  }
  cv_.notify_all();
}

void TxnHandle::BumpAttempts() {
  std::lock_guard<std::mutex> g(mu_);
  ++attempts_;
}

}  // namespace youtopia::etxn
