#ifndef YOUTOPIA_ETXN_HANDLE_H_
#define YOUTOPIA_ETXN_HANDLE_H_

#include <condition_variable>
#include <mutex>
#include <string>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/sql/expr_eval.h"

namespace youtopia::etxn {

/// Future-like completion handle for a submitted entangled transaction.
/// Resolution statuses:
///   OK         — committed (group-committed when entangled);
///   kTimedOut  — the WITH TIMEOUT deadline expired while waiting for
///                entanglement partners (the §3.1 error thrown to the app);
///   kAborted   — explicit ROLLBACK / native-abort or widow-prevention
///                cascade that could not be retried;
///   other      — program error (bad SQL etc.).
class TxnHandle {
 public:
  /// Blocks until the transaction reaches a final state.
  Status Wait();

  /// Non-blocking poll.
  bool done() const;

  /// Number of run attempts (1 = committed in its first run).
  int attempts() const;

  /// The classical transaction id of the successful attempt (0 otherwise).
  TxnId committed_txn_id() const;

  /// Snapshot of the host variables at completion (answer bindings like
  /// @ArrivalDay end up here on success).
  sql::VarEnv final_vars() const;

 private:
  friend class EntangledTransactionEngine;

  void Resolve(Status s, TxnId txn, sql::VarEnv vars);
  void BumpAttempts();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  Status result_;
  int attempts_ = 0;
  TxnId committed_txn_ = 0;
  sql::VarEnv final_vars_;
};

}  // namespace youtopia::etxn

#endif  // YOUTOPIA_ETXN_HANDLE_H_
