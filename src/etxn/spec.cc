#include "src/etxn/spec.h"

#include "src/common/strings.h"

namespace youtopia::etxn {

StatusOr<sql::QueryResult> ExecContext::Sql(const std::string& text) {
  YT_ASSIGN_OR_RETURN(sql::ParsedStatement stmt,
                      sql::Parser::ParseStatement(text));
  if (stmt.kind == sql::StatementKind::kEntangledSelect ||
      stmt.kind == sql::StatementKind::kBegin ||
      stmt.kind == sql::StatementKind::kCommit ||
      stmt.kind == sql::StatementKind::kRollback) {
    return Status::InvalidArgument(
        "native hooks may only run plain SQL statements");
  }
  if (txn_ != nullptr) {
    return executor_->Execute(stmt, txn_, vars_);
  }
  // Non-transactional program: autocommit.
  std::unique_ptr<Transaction> txn = executor_->tm()->Begin();
  auto result = executor_->Execute(stmt, txn.get(), vars_);
  if (!result.ok()) {
    (void)executor_->tm()->Abort(txn.get());
    return result;
  }
  YT_RETURN_IF_ERROR(executor_->tm()->Commit(txn.get()));
  return result;
}

Value ExecContext::GetVar(const std::string& name) const {
  auto it = vars_->find(ToLower(name));
  return it == vars_->end() ? Value::Null() : it->second;
}

void ExecContext::SetVar(const std::string& name, Value v) {
  (*vars_)[ToLower(name)] = std::move(v);
}

StatusOr<Statement> Statement::Sql(const std::string& text) {
  YT_ASSIGN_OR_RETURN(sql::ParsedStatement parsed,
                      sql::Parser::ParseStatement(text));
  Statement s;
  s.kind = Kind::kSql;
  s.parsed = std::make_shared<const sql::ParsedStatement>(std::move(parsed));
  s.text = text;
  return s;
}

Statement Statement::Native(std::string label,
                            std::function<Status(ExecContext&)> fn) {
  Statement s;
  s.kind = Kind::kNative;
  s.text = std::move(label);
  s.native = std::move(fn);
  return s;
}

StatusOr<EntangledTransactionSpec> EntangledTransactionSpec::FromScript(
    const std::string& name, const std::string& script) {
  YT_ASSIGN_OR_RETURN(std::vector<sql::ParsedStatement> stmts,
                      sql::Parser::ParseScript(script));
  EntangledTransactionSpec spec;
  spec.name = name;
  spec.transactional = false;
  size_t i = 0;
  if (!stmts.empty() && stmts[0].kind == sql::StatementKind::kBegin) {
    spec.transactional = true;
    if (stmts[0].begin->timeout_micros > 0) {
      spec.timeout_micros = stmts[0].begin->timeout_micros;
    }
    i = 1;
  }
  for (; i < stmts.size(); ++i) {
    if (stmts[i].kind == sql::StatementKind::kCommit) {
      if (i + 1 != stmts.size()) {
        return Status::InvalidArgument(
            "COMMIT must be the last statement of the program");
      }
      break;
    }
    if (stmts[i].kind == sql::StatementKind::kBegin) {
      return Status::InvalidArgument("nested BEGIN is not supported");
    }
    Statement s;
    s.kind = Statement::Kind::kSql;
    s.parsed =
        std::make_shared<const sql::ParsedStatement>(std::move(stmts[i]));
    spec.statements.push_back(std::move(s));
  }
  return spec;
}

size_t EntangledTransactionSpec::NumEntangledQueries() const {
  size_t n = 0;
  for (const Statement& s : statements) {
    if (s.kind == Statement::Kind::kSql && s.parsed != nullptr &&
        s.parsed->kind == sql::StatementKind::kEntangledSelect) {
      ++n;
    }
  }
  return n;
}

}  // namespace youtopia::etxn
