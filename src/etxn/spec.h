#ifndef YOUTOPIA_ETXN_SPEC_H_
#define YOUTOPIA_ETXN_SPEC_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sql/executor.h"
#include "src/sql/parser.h"
#include "src/txn/isolation_level.h"

namespace youtopia::etxn {

/// Execution context handed to native (C++) statements inside an entangled
/// transaction program. Native statements let examples/tests inject
/// application logic — e.g. a hotel-booking step that fails — between SQL
/// statements, like the "(Code to perform booking omitted)" blocks in the
/// paper's Figure 2.
class ExecContext {
 public:
  ExecContext(sql::Executor* executor, Transaction* txn, sql::VarEnv* vars)
      : executor_(executor), txn_(txn), vars_(vars) {}

  /// Runs one classical SQL statement inside the surrounding transaction
  /// (or autocommitted when the program is non-transactional).
  StatusOr<sql::QueryResult> Sql(const std::string& text);

  Value GetVar(const std::string& name) const;
  void SetVar(const std::string& name, Value v);

  Transaction* txn() const { return txn_; }
  sql::VarEnv* vars() const { return vars_; }

 private:
  sql::Executor* executor_;
  Transaction* txn_;
  sql::VarEnv* vars_;
};

/// One program statement: parsed SQL or a native C++ hook. A native hook
/// returning Status::Aborted(...) is an explicit ROLLBACK (permanent abort);
/// any other error is a program failure.
struct Statement {
  enum class Kind { kSql, kNative };
  Kind kind = Kind::kSql;
  std::shared_ptr<const sql::ParsedStatement> parsed;
  std::string text;  ///< original SQL (diagnostics)
  std::function<Status(ExecContext&)> native;

  static StatusOr<Statement> Sql(const std::string& text);
  static Statement Native(std::string label,
                          std::function<Status(ExecContext&)> fn);
};

/// A complete entangled transaction program (§3.1 syntax): a statement list
/// with a timeout, submitted as a unit (non-interactive model, §4).
/// `transactional = false` gives the paper's -Q workloads: the same
/// statements without the transaction block (each statement autocommits;
/// entangled queries still coordinate through runs).
struct EntangledTransactionSpec {
  std::string name;
  std::vector<Statement> statements;
  int64_t timeout_micros = -1;  ///< -1: engine default
  bool transactional = true;
  IsolationLevel isolation = IsolationLevel::kFullEntangled;

  /// Parses a ';'-separated script. A leading BEGIN TRANSACTION [WITH
  /// TIMEOUT ...] marks the spec transactional and sets the timeout; the
  /// trailing COMMIT ends it. Without BEGIN the spec is non-transactional.
  static StatusOr<EntangledTransactionSpec> FromScript(
      const std::string& name, const std::string& script);

  /// Number of entangled queries in the program.
  size_t NumEntangledQueries() const;
};

}  // namespace youtopia::etxn

#endif  // YOUTOPIA_ETXN_SPEC_H_
