#include "src/isolation/abstract_exec.h"

#include <set>

namespace youtopia::iso {

uint64_t AbstractExecution::Mix(uint64_t h, uint64_t v) {
  uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

AbstractExecution::RunResult AbstractExecution::Run(const Schedule& sched,
                                                    const Db& initial) {
  RunResult result;
  Db db = initial;
  const auto& ops = sched.ops();
  result.read_values.assign(ops.size(), 0);

  struct TxnState {
    uint64_t fold = 0;              // reads + answers so far
    uint64_t write_count = 0;
    std::vector<std::pair<std::string, uint64_t>> undo;  // (obj, old value)
    std::vector<uint64_t> rg_since_entangle;
  };
  std::map<TxnId, TxnState> txns;
  // (txn, key, value) in schedule order; the final database is defined as
  // "exactly the writes of all the committed transactions in sigma, in the
  // order in which these writes occurred" (Appendix C.1), applied to the
  // initial database.
  struct WriteEvent {
    TxnId txn;
    std::string key;
    uint64_t value;
  };
  std::vector<WriteEvent> write_log;
  std::set<TxnId> committed;

  auto db_read = [&db](const ObjectRef& o) -> uint64_t {
    auto it = db.find(o.ToString());
    return it == db.end() ? 0 : it->second;
  };

  for (size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    switch (op.type) {
      case OpType::kRead: {
        uint64_t v = db_read(op.obj);
        result.read_values[i] = v;
        TxnState& st = txns[op.txn];
        st.fold = Mix(st.fold, v);
        break;
      }
      case OpType::kGroundingRead: {
        uint64_t v = db_read(op.obj);
        result.read_values[i] = v;
        txns[op.txn].rg_since_entangle.push_back(v);
        break;
      }
      case OpType::kQuasiRead:
        // Formal device only; the information flow is carried by the
        // entangled answer below.
        result.read_values[i] = db_read(op.obj);
        break;
      case OpType::kWrite: {
        TxnState& st = txns[op.txn];
        std::string key = op.obj.ToString();
        uint64_t old = db.count(key) ? db[key] : 0;
        st.undo.emplace_back(key, old);
        uint64_t val = Mix(Mix(Mix(1, op.txn), ++st.write_count), st.fold);
        db[key] = val;
        write_log.push_back({op.txn, key, val});
        break;
      }
      case OpType::kEntangle: {
        uint64_t base = Mix(2, op.eid);
        for (TxnId m : op.members) {
          for (uint64_t v : txns[m].rg_since_entangle) base = Mix(base, v);
        }
        for (TxnId m : op.members) {
          uint64_t ans = Mix(base, m);
          result.answers[{op.eid, m}] = ans;
          TxnState& st = txns[m];
          st.fold = Mix(st.fold, ans);
          st.rg_since_entangle.clear();
        }
        break;
      }
      case OpType::kAbort: {
        TxnState& st = txns[op.txn];
        for (auto it = st.undo.rbegin(); it != st.undo.rend(); ++it) {
          db[it->first] = it->second;
        }
        st.undo.clear();
        break;
      }
      case OpType::kCommit:
        committed.insert(op.txn);
        break;
    }
  }
  // Final database per Appendix C.1: initial state plus the committed
  // transactions' writes in schedule order. (The physical `db` map above is
  // only the view reads observe during the run; dirty/aborted writes never
  // reach the final state.)
  Db final_db = initial;
  for (const WriteEvent& w : write_log) {
    if (committed.count(w.txn)) final_db[w.key] = w.value;
  }
  for (auto it = final_db.begin(); it != final_db.end();) {
    if (it->second == 0) {
      it = final_db.erase(it);
    } else {
      ++it;
    }
  }
  result.final_db = std::move(final_db);
  return result;
}

}  // namespace youtopia::iso
