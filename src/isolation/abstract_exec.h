#ifndef YOUTOPIA_ISOLATION_ABSTRACT_EXEC_H_
#define YOUTOPIA_ISOLATION_ABSTRACT_EXEC_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/isolation/schedule.h"

namespace youtopia::iso {

/// Deterministic abstract interpretation of schedules, used to make
/// Theorem 3.6 machine-checkable. Objects hold uint64 values (missing = 0).
/// The determinism assumption of Appendix C.4 is realized literally: a
/// transaction's n-th write stores a hash of (txn, n, every value the
/// transaction has read so far, every entangled answer it has received so
/// far). Entangled answers are a hash of the grounding-read values of all
/// participants — the information flow that quasi-reads model.
class AbstractExecution {
 public:
  using Db = std::map<std::string, uint64_t>;

  struct RunResult {
    Db final_db;
    /// Recorded oracle answers Ans_k(i): (eid, txn) -> answer value.
    std::map<std::pair<EntanglementId, TxnId>, uint64_t> answers;
    /// Value observed by the read at each op index (0 for non-reads).
    std::vector<uint64_t> read_values;
  };

  /// Executes the schedule as interleaved, applying undo on aborts. Pass the
  /// raw (un-expanded) schedule; quasi-reads, if present, are ignored.
  static RunResult Run(const Schedule& sched, const Db& initial);

  /// Deterministic mixing hash (splitmix64 core).
  static uint64_t Mix(uint64_t h, uint64_t v);
};

}  // namespace youtopia::iso

#endif  // YOUTOPIA_ISOLATION_ABSTRACT_EXEC_H_
