#include "src/isolation/checker.h"

namespace youtopia::iso {

std::string IsolationReport::ToString() const {
  std::string s = entangled_isolated ? "entangled-isolated"
                                     : "NOT entangled-isolated";
  for (const std::string& f : findings) {
    s += "\n  - " + f;
  }
  return s;
}

IsolationReport IsolationChecker::Check(const Schedule& raw) {
  IsolationReport report;
  Schedule sched = raw.WithQuasiReads();
  const auto& ops = sched.ops();
  std::set<TxnId> committed = sched.CommittedTxns();
  std::set<TxnId> aborted = sched.AbortedTxns();

  // --- Requirement C.2: acyclic conflict graph.
  ConflictGraph graph = ConflictGraph::Build(sched);
  if (graph.HasCycle()) {
    report.conflict_cycle = true;
    report.findings.push_back("conflict-graph cycle (C.2): " +
                              graph.ToString());
  }

  // --- Requirement C.3: no committed read of an aborted write.
  for (size_t i = 0; i < ops.size() && !report.read_from_aborted; ++i) {
    const Op& w = ops[i];
    if (!w.is_write() || !aborted.count(w.txn)) continue;
    for (size_t j = i + 1; j < ops.size(); ++j) {
      const Op& r = ops[j];
      if (!r.is_read() || r.txn == w.txn || !committed.count(r.txn)) continue;
      if (!w.obj.Overlaps(r.obj)) continue;
      // The read-from-aborted only materializes if the aborted value was
      // still in place, i.e. the abort happens after the read OR no
      // intervening write replaced it. We flag the syntactic C.3 pattern,
      // as the paper does.
      report.read_from_aborted = true;
      report.findings.push_back("read-from-aborted (C.3): " + w.ToString() +
                                " ... " + r.ToString() + " with txn " +
                                std::to_string(w.txn) + " aborted and txn " +
                                std::to_string(r.txn) + " committed");
      break;
    }
  }

  // --- Requirement C.4: no widowed transactions.
  for (const Op& e : ops) {
    if (e.type != OpType::kEntangle) continue;
    for (TxnId i : e.members) {
      if (!aborted.count(i)) continue;
      for (TxnId j : e.members) {
        if (i == j || !committed.count(j)) continue;
        report.widowed_transaction = true;
        report.findings.push_back(
            "widowed transaction (C.4): E" + std::to_string(e.eid) +
            " entangled txns " + std::to_string(i) + " and " +
            std::to_string(j) + "; " + std::to_string(i) +
            " aborted while " + std::to_string(j) + " committed");
      }
    }
  }

  // --- Diagnostic classification (not part of the C.5 verdict, but names
  // the classical/entangled anomalies the schedule exhibits).
  // Unrepeatable (quasi-)read: two reads of x by i with a committed write
  // by j in between, at least one read being a quasi/grounding read.
  for (size_t i = 0; i < ops.size(); ++i) {
    const Op& r1 = ops[i];
    if (!r1.is_read() || !committed.count(r1.txn)) continue;
    for (size_t j = i + 1; j < ops.size(); ++j) {
      const Op& w = ops[j];
      if (!w.is_write() || w.txn == r1.txn || !committed.count(w.txn)) {
        continue;
      }
      if (!w.obj.Overlaps(r1.obj)) continue;
      for (size_t k = j + 1; k < ops.size(); ++k) {
        const Op& r2 = ops[k];
        if (r2.txn != r1.txn || !r2.is_read()) continue;
        if (!r2.obj.Overlaps(w.obj)) continue;
        bool quasi = r1.type == OpType::kQuasiRead ||
                     r1.type == OpType::kGroundingRead ||
                     r2.type == OpType::kQuasiRead ||
                     r2.type == OpType::kGroundingRead;
        report.findings.push_back(
            std::string(quasi ? "unrepeatable quasi-read" :
                                "unrepeatable read") +
            " on " + w.obj.table + " by txn " + std::to_string(r1.txn) +
            ": " + r1.ToString() + " ... " + w.ToString() + " ... " +
            r2.ToString());
        goto next_read;  // one finding per starting read is enough
      }
    }
  next_read:;
  }

  report.entangled_isolated = !report.conflict_cycle &&
                              !report.read_from_aborted &&
                              !report.widowed_transaction;
  return report;
}

}  // namespace youtopia::iso
