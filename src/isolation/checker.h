#ifndef YOUTOPIA_ISOLATION_CHECKER_H_
#define YOUTOPIA_ISOLATION_CHECKER_H_

#include <string>
#include <vector>

#include "src/isolation/conflict_graph.h"
#include "src/isolation/schedule.h"

namespace youtopia::iso {

/// Result of checking a schedule against the entangled-isolation definition
/// (Definition C.5 = Requirements C.2 + C.3 + C.4), plus best-effort named
/// anomaly classifications for diagnostics.
struct IsolationReport {
  bool entangled_isolated = false;

  bool conflict_cycle = false;       ///< violates C.2
  bool read_from_aborted = false;    ///< violates C.3
  bool widowed_transaction = false;  ///< violates C.4

  /// Human-readable findings ("widowed: E1 entangled 1 and 2; 1 aborted
  /// while 2 committed", "unrepeatable quasi-read on Airlines by txn 3"...).
  std::vector<std::string> findings;

  std::string ToString() const;
};

/// Checks Definition C.5 on a schedule. Quasi-reads are expanded internally,
/// so callers pass raw schedules (recorded or hand-built).
class IsolationChecker {
 public:
  static IsolationReport Check(const Schedule& sched);
};

}  // namespace youtopia::iso

#endif  // YOUTOPIA_ISOLATION_CHECKER_H_
