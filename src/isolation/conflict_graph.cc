#include "src/isolation/conflict_graph.h"

#include <functional>

namespace youtopia::iso {

ConflictGraph ConflictGraph::Build(const Schedule& sched) {
  ConflictGraph g;
  std::set<TxnId> committed = sched.CommittedTxns();
  g.nodes_ = committed;
  const auto& ops = sched.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    const Op& a = ops[i];
    if (!(a.is_read() || a.is_write())) continue;
    if (!committed.count(a.txn)) continue;
    for (size_t j = i + 1; j < ops.size(); ++j) {
      const Op& b = ops[j];
      if (!(b.is_read() || b.is_write())) continue;
      if (b.txn == a.txn || !committed.count(b.txn)) continue;
      if (!a.obj.Overlaps(b.obj)) continue;
      if (!a.is_write() && !b.is_write()) continue;
      g.edges_[a.txn].insert(b.txn);
    }
  }
  return g;
}

bool ConflictGraph::HasEdge(TxnId from, TxnId to) const {
  auto it = edges_.find(from);
  return it != edges_.end() && it->second.count(to) > 0;
}

bool ConflictGraph::HasCycle() const { return !TopologicalOrder().ok(); }

StatusOr<std::vector<TxnId>> ConflictGraph::TopologicalOrder() const {
  std::map<TxnId, int> indegree;
  for (TxnId t : nodes_) indegree[t] = 0;
  for (const auto& [from, tos] : edges_) {
    (void)from;
    for (TxnId to : tos) ++indegree[to];
  }
  // Deterministic Kahn's algorithm: always pick the smallest ready node.
  std::set<TxnId> ready;
  for (const auto& [t, d] : indegree) {
    if (d == 0) ready.insert(t);
  }
  std::vector<TxnId> order;
  while (!ready.empty()) {
    TxnId t = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(t);
    auto it = edges_.find(t);
    if (it == edges_.end()) continue;
    for (TxnId to : it->second) {
      if (--indegree[to] == 0) ready.insert(to);
    }
  }
  if (order.size() != nodes_.size()) {
    return Status::InvalidArgument("conflict graph has a cycle");
  }
  return order;
}

std::string ConflictGraph::ToString() const {
  std::string s;
  for (const auto& [from, tos] : edges_) {
    for (TxnId to : tos) {
      if (!s.empty()) s += ", ";
      s += std::to_string(from) + "->" + std::to_string(to);
    }
  }
  return s.empty() ? "(no edges)" : s;
}

}  // namespace youtopia::iso
