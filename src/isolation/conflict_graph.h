#ifndef YOUTOPIA_ISOLATION_CONFLICT_GRAPH_H_
#define YOUTOPIA_ISOLATION_CONFLICT_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/isolation/schedule.h"

namespace youtopia::iso {

/// Conflict graph over the *committed* transactions of a schedule
/// (Appendix C.2.1): nodes are transactions, an edge i -> j exists when an
/// operation of i precedes a conflicting operation of j on an overlapping
/// object (at least one of the two is a write). Quasi-reads and grounding
/// reads count as reads, which is precisely how unrepeatable quasi-reads
/// show up as cycles.
class ConflictGraph {
 public:
  /// Builds the graph; `sched` should already have quasi-reads expanded
  /// (Schedule::WithQuasiReads) for the entangled anomalies to register.
  static ConflictGraph Build(const Schedule& sched);

  const std::set<TxnId>& nodes() const { return nodes_; }
  const std::map<TxnId, std::set<TxnId>>& edges() const { return edges_; }

  bool HasEdge(TxnId from, TxnId to) const;
  bool HasCycle() const;

  /// Topological order; error when cyclic.
  StatusOr<std::vector<TxnId>> TopologicalOrder() const;

  std::string ToString() const;

 private:
  std::set<TxnId> nodes_;
  std::map<TxnId, std::set<TxnId>> edges_;
};

}  // namespace youtopia::iso

#endif  // YOUTOPIA_ISOLATION_CONFLICT_GRAPH_H_
