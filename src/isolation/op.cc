#include "src/isolation/op.h"

#include <algorithm>

namespace youtopia::iso {

const char* OpTypeName(OpType t) {
  switch (t) {
    case OpType::kRead: return "R";
    case OpType::kWrite: return "W";
    case OpType::kGroundingRead: return "RG";
    case OpType::kQuasiRead: return "RQ";
    case OpType::kEntangle: return "E";
    case OpType::kCommit: return "C";
    case OpType::kAbort: return "A";
  }
  return "?";
}

bool Op::Involves(TxnId t) const {
  return std::find(members.begin(), members.end(), t) != members.end();
}

std::string Op::ToString() const {
  std::string s = OpTypeName(type);
  if (type == OpType::kEntangle) {
    s += std::to_string(eid);
    s += "{";
    for (size_t i = 0; i < members.size(); ++i) {
      if (i) s += ",";
      s += std::to_string(members[i]);
    }
    s += "}";
    return s;
  }
  s += std::to_string(txn);
  if (is_read() || is_write()) {
    s += "(" + obj.ToString() + ")";
  }
  return s;
}

}  // namespace youtopia::iso
