#ifndef YOUTOPIA_ISOLATION_OP_H_
#define YOUTOPIA_ISOLATION_OP_H_

#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/op_observer.h"

namespace youtopia::iso {

/// Operation kinds of the Appendix-C schedule model: reads R, writes W,
/// grounding reads R^G, quasi-reads R^Q (derived, modeling the information
/// flow of entanglement), entanglement operations E^k, commits C and
/// aborts A.
enum class OpType {
  kRead = 0,
  kWrite,
  kGroundingRead,
  kQuasiRead,
  kEntangle,
  kCommit,
  kAbort,
};

const char* OpTypeName(OpType t);

/// One schedule operation. Reads/writes carry an object; entanglement ops
/// carry an id and the participating transactions.
struct Op {
  OpType type = OpType::kRead;
  TxnId txn = 0;
  ObjectRef obj;
  EntanglementId eid = 0;
  std::vector<TxnId> members;

  static Op R(TxnId t, ObjectRef o) { return {OpType::kRead, t, std::move(o), 0, {}}; }
  static Op W(TxnId t, ObjectRef o) { return {OpType::kWrite, t, std::move(o), 0, {}}; }
  static Op RG(TxnId t, ObjectRef o) {
    return {OpType::kGroundingRead, t, std::move(o), 0, {}};
  }
  static Op RQ(TxnId t, ObjectRef o) {
    return {OpType::kQuasiRead, t, std::move(o), 0, {}};
  }
  static Op E(EntanglementId eid, std::vector<TxnId> members) {
    return {OpType::kEntangle, 0, {}, eid, std::move(members)};
  }
  static Op C(TxnId t) { return {OpType::kCommit, t, {}, 0, {}}; }
  static Op A(TxnId t) { return {OpType::kAbort, t, {}, 0, {}}; }

  bool is_read() const {
    return type == OpType::kRead || type == OpType::kGroundingRead ||
           type == OpType::kQuasiRead;
  }
  bool is_write() const { return type == OpType::kWrite; }

  /// Membership test for entanglement ops.
  bool Involves(TxnId t) const;

  /// e.g. "RG1(Flights)", "E7{1,3}", "C2".
  std::string ToString() const;
};

}  // namespace youtopia::iso

#endif  // YOUTOPIA_ISOLATION_OP_H_
