#include "src/isolation/oracle.h"

#include <algorithm>

#include "src/isolation/conflict_graph.h"

namespace youtopia::iso {

OracleCheckResult OracleSerializability::CheckOrder(
    const Schedule& sched, const AbstractExecution::Db& initial,
    const std::vector<TxnId>& order) {
  OracleCheckResult result;
  result.order = order;

  // Step 1: run sigma, recording the oracle and sigma's final state.
  AbstractExecution::RunResult sigma = AbstractExecution::Run(sched, initial);

  // Step 2: serial replay with the oracle.
  AbstractExecution::Db db = initial;
  const auto& ops = sched.ops();
  auto db_read = [&db](const ObjectRef& o) -> uint64_t {
    auto it = db.find(o.ToString());
    return it == db.end() ? 0 : it->second;
  };

  result.validity_ok = true;
  for (TxnId t : order) {
    uint64_t fold = 0;
    uint64_t write_count = 0;
    std::vector<size_t> pending_rg;  // op indexes of unvalidated RG reads
    for (size_t i = 0; i < ops.size(); ++i) {
      const Op& op = ops[i];
      if (op.type == OpType::kEntangle) {
        if (!op.Involves(t)) continue;
        // Validating reads for this oracle call (proof of Theorem 3.6).
        for (size_t rg : pending_rg) {
          uint64_t now = db_read(ops[rg].obj);
          if (now != sigma.read_values[rg]) {
            result.validity_ok = false;
            result.reason = "validating read for " + ops[rg].ToString() +
                            " saw a different value than sigma";
          }
        }
        pending_rg.clear();
        auto it = sigma.answers.find({op.eid, t});
        if (it != sigma.answers.end()) {
          fold = AbstractExecution::Mix(fold, it->second);
        }
        continue;
      }
      if (op.txn != t) continue;
      switch (op.type) {
        case OpType::kRead:
          fold = AbstractExecution::Mix(fold, db_read(op.obj));
          break;
        case OpType::kGroundingRead:
          pending_rg.push_back(i);
          break;
        case OpType::kQuasiRead:
          break;  // formal device; not replayed
        case OpType::kWrite: {
          uint64_t val = AbstractExecution::Mix(
              AbstractExecution::Mix(AbstractExecution::Mix(1, t),
                                     ++write_count),
              fold);
          db[op.obj.ToString()] = val;
          break;
        }
        default:
          break;
      }
    }
  }
  for (auto it = db.begin(); it != db.end();) {
    if (it->second == 0) {
      it = db.erase(it);
    } else {
      ++it;
    }
  }
  result.final_state_ok = (db == sigma.final_db);
  if (!result.final_state_ok && result.reason.empty()) {
    result.reason = "serial final state differs from sigma's final state";
  }
  result.oracle_serializable = result.validity_ok && result.final_state_ok;
  return result;
}

OracleCheckResult OracleSerializability::CheckTopological(
    const Schedule& sched, const AbstractExecution::Db& db) {
  Schedule expanded = sched.WithQuasiReads();
  ConflictGraph graph = ConflictGraph::Build(expanded);
  auto order = graph.TopologicalOrder();
  if (!order.ok()) {
    OracleCheckResult r;
    r.reason = "conflict graph is cyclic; no topological order";
    return r;
  }
  return CheckOrder(sched, db, order.value());
}

OracleCheckResult OracleSerializability::CheckAnyOrder(
    const Schedule& sched, const AbstractExecution::Db& db, size_t max_txns) {
  std::set<TxnId> committed = sched.CommittedTxns();
  std::vector<TxnId> order(committed.begin(), committed.end());
  if (order.size() > max_txns) {
    OracleCheckResult r;
    r.reason = "too many transactions for exhaustive order search";
    return r;
  }
  std::sort(order.begin(), order.end());
  OracleCheckResult last;
  do {
    last = CheckOrder(sched, db, order);
    if (last.oracle_serializable) return last;
  } while (std::next_permutation(order.begin(), order.end()));
  last.reason = "no serialization order yields a valid, state-equivalent "
                "execution";
  return last;
}

}  // namespace youtopia::iso
