#ifndef YOUTOPIA_ISOLATION_ORACLE_H_
#define YOUTOPIA_ISOLATION_ORACLE_H_

#include <string>
#include <vector>

#include "src/isolation/abstract_exec.h"
#include "src/isolation/schedule.h"

namespace youtopia::iso {

/// Verdict of an oracle-serializability check (Definitions C.6 / C.7).
struct OracleCheckResult {
  bool oracle_serializable = false;
  std::vector<TxnId> order;  ///< serialization order used (when found)
  bool validity_ok = false;  ///< all validating reads saw the sigma values
  bool final_state_ok = false;
  std::string reason;
};

/// Machine-checks oracle-serializability on the abstract execution model:
///
/// 1. Run the schedule sigma on an initial database; record final state,
///    every grounding read's observed value, and the per-member entangled
///    answers Ans_k(i) (the custom oracle O_sigma of Appendix C.3.1).
/// 2. Replay the committed transactions serially in a candidate order: plain
///    reads hit the serial database; each oracle call O^k_i first performs
///    the *validating reads* of the proof of Theorem 3.6 (the transaction's
///    grounding reads re-executed against the serial database and compared
///    with sigma's values) and then returns Ans_k(i) verbatim; writes use
///    the same deterministic write function.
/// 3. The schedule is oracle-serializable in that order iff all validating
///    reads match (valid execution) and the serial final state equals
///    sigma's final state.
class OracleSerializability {
 public:
  /// Uses the topological order of the conflict graph — the order Theorem
  /// 3.6's proof constructs. Fails fast when the graph is cyclic.
  static OracleCheckResult CheckTopological(const Schedule& sched,
                                            const AbstractExecution::Db& db);

  /// Tries every permutation of committed transactions (<= max_txns);
  /// succeeds if any order works. Used to demonstrate that specific broken
  /// schedules are not oracle-serializable under *any* order.
  static OracleCheckResult CheckAnyOrder(const Schedule& sched,
                                         const AbstractExecution::Db& db,
                                         size_t max_txns = 8);

  /// Replays one specific order; exposed for tests.
  static OracleCheckResult CheckOrder(const Schedule& sched,
                                      const AbstractExecution::Db& db,
                                      const std::vector<TxnId>& order);
};

}  // namespace youtopia::iso

#endif  // YOUTOPIA_ISOLATION_ORACLE_H_
