#include "src/isolation/recorder.h"

namespace youtopia::iso {

void ScheduleRecorder::OnRead(TxnId txn, const ObjectRef& obj) {
  std::lock_guard<std::mutex> g(mu_);
  ops_.push_back(Op::R(txn, obj));
}

void ScheduleRecorder::OnWrite(TxnId txn, const ObjectRef& obj) {
  std::lock_guard<std::mutex> g(mu_);
  ops_.push_back(Op::W(txn, obj));
}

void ScheduleRecorder::OnGroundingRead(TxnId txn, const ObjectRef& obj) {
  std::lock_guard<std::mutex> g(mu_);
  ops_.push_back(Op::RG(txn, obj));
}

void ScheduleRecorder::OnEntangle(EntanglementId eid,
                                  const std::vector<TxnId>& members) {
  std::lock_guard<std::mutex> g(mu_);
  ops_.push_back(Op::E(eid, members));
}

void ScheduleRecorder::OnCommit(TxnId txn) {
  std::lock_guard<std::mutex> g(mu_);
  ops_.push_back(Op::C(txn));
}

void ScheduleRecorder::OnAbort(TxnId txn) {
  std::lock_guard<std::mutex> g(mu_);
  ops_.push_back(Op::A(txn));
}

StatusOr<Schedule> ScheduleRecorder::Finish() const {
  std::lock_guard<std::mutex> g(mu_);
  return Schedule::Create(ops_, /*strict=*/false);
}

size_t ScheduleRecorder::size() const {
  std::lock_guard<std::mutex> g(mu_);
  return ops_.size();
}

void ScheduleRecorder::Clear() {
  std::lock_guard<std::mutex> g(mu_);
  ops_.clear();
}

}  // namespace youtopia::iso
