#ifndef YOUTOPIA_ISOLATION_RECORDER_H_
#define YOUTOPIA_ISOLATION_RECORDER_H_

#include <mutex>
#include <vector>

#include "src/common/op_observer.h"
#include "src/isolation/schedule.h"

namespace youtopia::iso {

/// OpObserver that captures the live engine's operation stream as an
/// Appendix-C schedule. Plug into TransactionManager::Options::observer,
/// run a workload, then Finish() and feed the result to IsolationChecker —
/// this is how the integration tests machine-check that real executions of
/// the run-based engine are entangled-isolated.
class ScheduleRecorder : public OpObserver {
 public:
  void OnRead(TxnId txn, const ObjectRef& obj) override;
  void OnWrite(TxnId txn, const ObjectRef& obj) override;
  void OnGroundingRead(TxnId txn, const ObjectRef& obj) override;
  void OnEntangle(EntanglementId eid,
                  const std::vector<TxnId>& members) override;
  void OnCommit(TxnId txn) override;
  void OnAbort(TxnId txn) override;

  /// Builds the recorded schedule (lenient mode: orphan grounding reads from
  /// empty-success evaluations downgrade to plain reads).
  StatusOr<Schedule> Finish() const;

  size_t size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<Op> ops_;
};

}  // namespace youtopia::iso

#endif  // YOUTOPIA_ISOLATION_RECORDER_H_
