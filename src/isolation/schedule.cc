#include "src/isolation/schedule.h"

#include <map>

namespace youtopia::iso {

StatusOr<Schedule> Schedule::Create(std::vector<Op> ops, bool strict) {
  // Track per-transaction terminal ops and grounding-read windows.
  std::map<TxnId, bool> terminated;  // txn -> saw C or A
  std::map<TxnId, bool> in_grounding_window;

  // Pass 1 (lenient prep): find grounding reads with no subsequent E/A and
  // downgrade them to plain reads.
  if (!strict) {
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].type != OpType::kGroundingRead) continue;
      TxnId t = ops[i].txn;
      bool resolved = false;
      for (size_t j = i + 1; j < ops.size() && !resolved; ++j) {
        const Op& o = ops[j];
        if (o.type == OpType::kEntangle && o.Involves(t)) resolved = true;
        if (o.type == OpType::kAbort && o.txn == t) resolved = true;
        // A non-grounding op by t before any E/A means this grounding
        // attempt fizzled into empty success.
        if (o.txn == t && o.type != OpType::kGroundingRead &&
            o.type != OpType::kEntangle) {
          break;
        }
      }
      if (!resolved) ops[i].type = OpType::kRead;
    }
  }

  for (size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    if (op.type == OpType::kEntangle) {
      if (op.members.size() < 2) {
        return Status::InvalidArgument(
            "entanglement op E" + std::to_string(op.eid) +
            " needs at least two members");
      }
      for (TxnId m : op.members) {
        if (terminated.count(m) && terminated[m]) {
          return Status::InvalidArgument(
              "E" + std::to_string(op.eid) + " involves terminated txn " +
              std::to_string(m));
        }
        in_grounding_window[m] = false;
      }
      continue;
    }
    TxnId t = op.txn;
    if (terminated.count(t) && terminated[t]) {
      return Status::InvalidArgument("operation " + op.ToString() +
                                     " after txn " + std::to_string(t) +
                                     " terminated");
    }
    switch (op.type) {
      case OpType::kCommit: {
        if (strict && in_grounding_window[t]) {
          return Status::InvalidArgument(
              "txn " + std::to_string(t) +
              " commits inside a grounding window (C.1 constraint 3)");
        }
        terminated[t] = true;
        break;
      }
      case OpType::kAbort:
        terminated[t] = true;
        in_grounding_window[t] = false;
        break;
      case OpType::kGroundingRead:
        in_grounding_window[t] = true;
        break;
      case OpType::kRead:
      case OpType::kWrite:
      case OpType::kQuasiRead:
        if (strict && in_grounding_window[t] &&
            op.type != OpType::kQuasiRead) {
          return Status::InvalidArgument(
              op.ToString() +
              ": only grounding reads may appear between a grounding read "
              "and the next entangle/abort (C.1 constraint 4)");
        }
        break;
      default:
        break;
    }
  }
  if (strict) {
    for (const auto& [t, done] : in_grounding_window) {
      if (done && !(terminated.count(t) && terminated[t])) {
        return Status::InvalidArgument(
            "txn " + std::to_string(t) +
            " ends inside a grounding window with no entangle/abort "
            "(C.1 constraint 3)");
      }
    }
  }
  return Schedule(std::move(ops));
}

std::vector<TxnId> Schedule::Txns() const {
  std::set<TxnId> s;
  for (const Op& op : ops_) {
    if (op.type == OpType::kEntangle) {
      s.insert(op.members.begin(), op.members.end());
    } else {
      s.insert(op.txn);
    }
  }
  return std::vector<TxnId>(s.begin(), s.end());
}

std::set<TxnId> Schedule::CommittedTxns() const {
  std::set<TxnId> s;
  for (const Op& op : ops_) {
    if (op.type == OpType::kCommit) s.insert(op.txn);
  }
  return s;
}

std::set<TxnId> Schedule::AbortedTxns() const {
  std::set<TxnId> s;
  for (const Op& op : ops_) {
    if (op.type == OpType::kAbort) s.insert(op.txn);
  }
  return s;
}

bool Schedule::complete() const {
  std::set<TxnId> done = CommittedTxns();
  std::set<TxnId> aborted = AbortedTxns();
  done.insert(aborted.begin(), aborted.end());
  for (TxnId t : Txns()) {
    if (!done.count(t)) return false;
  }
  return true;
}

Schedule Schedule::WithQuasiReads() const {
  std::vector<Op> out;
  out.reserve(ops_.size() * 2);
  for (size_t i = 0; i < ops_.size(); ++i) {
    const Op& op = ops_[i];
    out.push_back(op);
    if (op.type != OpType::kGroundingRead) continue;
    // Find the next entangle/abort resolving this grounding read.
    for (size_t j = i + 1; j < ops_.size(); ++j) {
      const Op& o = ops_[j];
      if (o.type == OpType::kAbort && o.txn == op.txn) break;  // no RQ
      if (o.type == OpType::kEntangle && o.Involves(op.txn)) {
        for (TxnId partner : o.members) {
          if (partner == op.txn) continue;
          out.push_back(Op::RQ(partner, op.obj));
        }
        break;
      }
    }
  }
  return Schedule(std::move(out));
}

std::string Schedule::ToString() const {
  std::string s;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (i) s += " ";
    s += ops_[i].ToString();
  }
  return s;
}

}  // namespace youtopia::iso
