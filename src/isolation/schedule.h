#ifndef YOUTOPIA_ISOLATION_SCHEDULE_H_
#define YOUTOPIA_ISOLATION_SCHEDULE_H_

#include <set>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/isolation/op.h"

namespace youtopia::iso {

/// A (valid) entangled-transaction schedule per Definition C.1. Validity
/// constraints enforced by Create in strict mode:
///   1. each transaction has at most one of {A, C} (complete schedules have
///      exactly one — see `complete()`);
///   2. a transaction's A/C is its last operation;
///   3. a grounding read R^G_i is followed by an entanglement involving i or
///      by A_i;
///   4. between an R^G_i and that E/A, transaction i performs only more
///      grounding reads.
///
/// Lenient mode (used for schedules recorded from the live engine) downgrades
/// an R^G with no subsequent E/A to a plain read: that is exactly the
/// empty-success case of Appendix B, where no entanglement happened and thus
/// no information flowed beyond an ordinary read.
class Schedule {
 public:
  static StatusOr<Schedule> Create(std::vector<Op> ops, bool strict = true);

  const std::vector<Op>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }

  /// All transaction ids mentioned, ascending.
  std::vector<TxnId> Txns() const;
  std::set<TxnId> CommittedTxns() const;
  std::set<TxnId> AbortedTxns() const;

  /// True when every mentioned transaction commits or aborts.
  bool complete() const;

  /// Returns a schedule with quasi-reads made explicit: whenever transaction
  /// i performs a grounding read on x and subsequently entangles in E with
  /// partners {j...}, each partner performs a simultaneous R^Q_j(x) (placed
  /// immediately after the R^G). A grounding read followed by an abort emits
  /// no quasi-reads (Appendix C.2.1).
  Schedule WithQuasiReads() const;

  /// "RG1(x) RQ2(x) R3(z) E1{1,2} W1(z) C1 C2 C3"
  std::string ToString() const;

 private:
  explicit Schedule(std::vector<Op> ops) : ops_(std::move(ops)) {}
  std::vector<Op> ops_;
};

}  // namespace youtopia::iso

#endif  // YOUTOPIA_ISOLATION_SCHEDULE_H_
