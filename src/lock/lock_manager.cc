#include "src/lock/lock_manager.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "src/common/clock.h"
#include "src/common/fault.h"
#include "src/common/metrics.h"

namespace youtopia {

namespace {

/// Registry handles resolved once: the acquire paths bump through raw
/// pointers, never through the name map.
struct LockMetricHandles {
  Histogram* wait_micros;
  Counter* waits;
  Counter* deadlocks;
  Counter* timeouts;
};

const LockMetricHandles& LockMetrics() {
  static const LockMetricHandles h = [] {
    MetricsRegistry* r = MetricsRegistry::Global();
    return LockMetricHandles{r->histogram("lock.wait_micros"),
                             r->counter("lock.waits"),
                             r->counter("lock.deadlocks"),
                             r->counter("lock.timeouts")};
  }();
  return h;
}

/// Measures one acquire's total blocked time. Declared BEFORE the manager
/// mutex is taken so the destructor (clock read, histogram record, possible
/// trace span) runs after it is released. OnFirstWait arms it from inside
/// the wait loop; nothing is recorded for the uncontended fast path.
class LockWaitRecorder {
 public:
  ~LockWaitRecorder() {
    if (start_ < 0) return;
    const int64_t waited = SystemClock::Default()->NowMicros() - start_;
    CurrentThreadOpStats().lock_wait_micros += waited;
    LockMetrics().wait_micros->Record(waited);
    LockMetrics().waits->Add();
    TraceContext& ctx = CurrentTraceContext();
    if (ctx.trace_id != 0) {
      Tracer::Span span;
      span.trace_id = ctx.trace_id;
      span.parent_id = ctx.span_id;
      span.span_id = Tracer::Global()->NewSpanId();
      span.name = "lock.wait";
      span.start_micros = start_;
      span.duration_micros = waited;
      Tracer::Global()->Record(std::move(span));
    }
  }
  void OnFirstWait() {
    if (metrics_enabled()) start_ = SystemClock::Default()->NowMicros();
  }

 private:
  int64_t start_ = -1;
};

/// Probes the "lock.acquire" fault site (spurious timeout injection —
/// torture runs prove callers survive lock waits that fail for no real
/// reason). Returns non-Ok when a fault fires.
Status ProbeAcquireFault(LockStats* stats) {
  FaultInjector* fi = FaultInjector::Global();
  if (!fi->enabled()) return Status::Ok();
  Status s = fi->Hit("lock.acquire");
  if (s.code() == StatusCode::kTimedOut) {
    stats->timeouts.fetch_add(1, std::memory_order_relaxed);
  }
  return s;
}

/// A request is "fully granted" when it holds the mode it asked for.
bool FullyGranted(const LockManager* /*unused*/, bool granted, LockMode held,
                  LockMode wanted) {
  return granted && held == wanted;
}

}  // namespace

Status LockManager::Acquire(TxnId txn, LockKey key, LockMode mode,
                            int64_t timeout_micros) {
  YT_RETURN_IF_ERROR(ProbeAcquireFault(&stats_));
  LockWaitRecorder wait_recorder;
  std::unique_lock<std::mutex> g(mu_);
  KeyState& st = keys_[key];

  // Find or create this transaction's request on the key.
  Request* mine = nullptr;
  for (Request& r : st.requests) {
    if (r.txn == txn) {
      mine = &r;
      break;
    }
  }
  bool was_upgrade = false;
  if (mine != nullptr) {
    if (mine->granted && Covers(mine->held, mode)) {
      return Status::Ok();  // re-entrant acquire
    }
    LockMode joined = Join(mine->granted ? mine->held : mine->wanted, mode);
    if (mine->granted && joined != mine->held) {
      was_upgrade = true;
      stats_.upgrades.fetch_add(1, std::memory_order_relaxed);
    }
    mine->wanted = joined;
  } else {
    Request r;
    r.txn = txn;
    r.wanted = mode;
    r.held = mode;  // meaningful once granted
    r.granted = false;
    r.seq = next_seq_++;
    st.requests.push_back(r);
    mine = &st.requests.back();
  }

  auto find_mine = [&]() -> Request* {
    for (Request& r : keys_[key].requests) {
      if (r.txn == txn) return &r;
    }
    return nullptr;
  };

  GrantPendingLocked(key);
  mine = find_mine();

  bool waited = false;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(
                      timeout_micros < 0 ? int64_t{1} << 40 : timeout_micros);

  while (!FullyGranted(this, mine->granted, mine->held, mine->wanted)) {
    if (!waited) {
      waited = true;
      stats_.waits.fetch_add(1, std::memory_order_relaxed);
      wait_recorder.OnFirstWait();
    }
    if (DeadlockedLocked(txn)) {
      stats_.deadlocks.fetch_add(1, std::memory_order_relaxed);
      if (metrics_enabled()) LockMetrics().deadlocks->Add();
      // Roll back the request: revert an upgrade, drop a fresh request.
      if (mine->granted) {
        mine->wanted = mine->held;
      } else {
        auto& reqs = keys_[key].requests;
        reqs.erase(std::remove_if(reqs.begin(), reqs.end(),
                                  [&](const Request& r) { return r.txn == txn; }),
                   reqs.end());
      }
      GrantPendingLocked(key);
      cv_.notify_all();
      return Status::Aborted("deadlock detected; transaction " +
                             std::to_string(txn) + " chosen as victim");
    }
    if (cv_.wait_until(g, deadline) == std::cv_status::timeout) {
      mine = find_mine();
      if (mine != nullptr &&
          FullyGranted(this, mine->granted, mine->held, mine->wanted)) {
        break;  // granted exactly at the deadline
      }
      stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
      if (metrics_enabled()) LockMetrics().timeouts->Add();
      if (mine != nullptr) {
        if (mine->granted) {
          mine->wanted = mine->held;
        } else {
          auto& reqs = keys_[key].requests;
          reqs.erase(
              std::remove_if(reqs.begin(), reqs.end(),
                             [&](const Request& r) { return r.txn == txn; }),
              reqs.end());
        }
      }
      GrantPendingLocked(key);
      cv_.notify_all();
      return Status::TimedOut("lock wait timeout on table " +
                              std::to_string(key.table));
    }
    GrantPendingLocked(key);
    mine = find_mine();
    if (mine == nullptr) {
      return Status::Internal("lock request vanished while waiting");
    }
  }

  // Track the key for ReleaseAll (only once per key).
  auto& keys_held = held_[txn];
  if (std::find(keys_held.begin(), keys_held.end(), key) == keys_held.end()) {
    keys_held.push_back(key);
  }
  stats_.acquisitions.fetch_add(1, std::memory_order_relaxed);
  (void)was_upgrade;
  return Status::Ok();
}

Status LockManager::AcquireBatch(TxnId txn, const std::vector<LockKey>& keys,
                                 LockMode mode, int64_t timeout_micros) {
  if (keys.empty()) return Status::Ok();
  if (keys.size() == 1) return Acquire(txn, keys[0], mode, timeout_micros);
  YT_RETURN_IF_ERROR(ProbeAcquireFault(&stats_));
  LockWaitRecorder wait_recorder;
  std::unique_lock<std::mutex> g(mu_);

  // Enqueue every request in one pass. Re-entrant keys (already granted
  // covering `mode`) drop out of the batch immediately; duplicates collapse.
  std::unordered_set<LockKey, LockKeyHash> seen;
  std::vector<LockKey> batch;
  batch.reserve(keys.size());
  for (const LockKey& key : keys) {
    if (!seen.insert(key).second) continue;
    KeyState& st = keys_[key];
    Request* mine = nullptr;
    for (Request& r : st.requests) {
      if (r.txn == txn) {
        mine = &r;
        break;
      }
    }
    if (mine != nullptr) {
      if (mine->granted && Covers(mine->held, mode)) continue;  // re-entrant
      LockMode joined = Join(mine->granted ? mine->held : mine->wanted, mode);
      if (mine->granted && joined != mine->held) {
        stats_.upgrades.fetch_add(1, std::memory_order_relaxed);
      }
      mine->wanted = joined;
    } else {
      Request r;
      r.txn = txn;
      r.wanted = mode;
      r.held = mode;  // meaningful once granted
      r.granted = false;
      r.seq = next_seq_++;
      st.requests.push_back(r);
    }
    batch.push_back(key);
  }
  if (batch.empty()) return Status::Ok();

  auto find_mine = [&](const LockKey& key) -> Request* {
    auto it = keys_.find(key);
    if (it == keys_.end()) return nullptr;
    for (Request& r : it->second.requests) {
      if (r.txn == txn) return &r;
    }
    return nullptr;
  };
  auto settle = [&]() {
    for (const LockKey& key : batch) GrantPendingLocked(key);
  };
  auto all_granted = [&]() {
    for (const LockKey& key : batch) {
      Request* mine = find_mine(key);
      if (mine == nullptr ||
          !FullyGranted(this, mine->granted, mine->held, mine->wanted)) {
        return false;
      }
    }
    return true;
  };
  // Failure cleanup: still-waiting requests are dropped (upgrades reverted),
  // and whatever was already granted is recorded so Strict-2PL ReleaseAll
  // finds it when the caller aborts.
  auto rollback_waiting = [&]() {
    for (const LockKey& key : batch) {
      Request* mine = find_mine(key);
      if (mine == nullptr) continue;
      if (mine->granted) {
        mine->wanted = mine->held;
      } else {
        auto& reqs = keys_[key].requests;
        reqs.erase(
            std::remove_if(reqs.begin(), reqs.end(),
                           [&](const Request& r) { return r.txn == txn; }),
            reqs.end());
      }
      GrantPendingLocked(key);
    }
  };
  auto record_granted = [&]() {
    auto& keys_held = held_[txn];
    for (const LockKey& key : batch) {
      Request* mine = find_mine(key);
      if (mine == nullptr || !mine->granted) continue;
      if (std::find(keys_held.begin(), keys_held.end(), key) ==
          keys_held.end()) {
        keys_held.push_back(key);
      }
      stats_.acquisitions.fetch_add(1, std::memory_order_relaxed);
    }
  };

  settle();
  bool waited = false;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(
                      timeout_micros < 0 ? int64_t{1} << 40 : timeout_micros);
  while (!all_granted()) {
    if (!waited) {
      waited = true;
      stats_.waits.fetch_add(1, std::memory_order_relaxed);
      wait_recorder.OnFirstWait();
    }
    if (DeadlockedLocked(txn)) {
      stats_.deadlocks.fetch_add(1, std::memory_order_relaxed);
      if (metrics_enabled()) LockMetrics().deadlocks->Add();
      rollback_waiting();
      record_granted();
      cv_.notify_all();
      return Status::Aborted("deadlock detected; transaction " +
                             std::to_string(txn) + " chosen as victim");
    }
    if (cv_.wait_until(g, deadline) == std::cv_status::timeout) {
      settle();
      if (all_granted()) break;  // granted exactly at the deadline
      stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
      if (metrics_enabled()) LockMetrics().timeouts->Add();
      rollback_waiting();
      record_granted();
      cv_.notify_all();
      return Status::TimedOut("batch lock wait timeout (" +
                              std::to_string(batch.size()) + " keys)");
    }
    settle();
  }
  record_granted();
  return Status::Ok();
}

Status LockManager::AcquireRange(TxnId txn, RangeSpaceKey space,
                                 const IndexRange& range, LockMode mode,
                                 int64_t timeout_micros) {
  YT_RETURN_IF_ERROR(ProbeAcquireFault(&stats_));
  LockWaitRecorder wait_recorder;
  std::unique_lock<std::mutex> g(mu_);
  RangeSpaceState& st = ranges_[space];

  // Identity of a range request is (txn, exact interval): repeats merge and
  // upgrade like point locks; different intervals of the same transaction
  // coexist (and never conflict with each other).
  RangeRequest* mine = nullptr;
  for (RangeRequest& r : st.requests) {
    if (r.txn == txn && r.range == range) {
      mine = &r;
      break;
    }
  }
  if (mine != nullptr) {
    if (mine->granted && Covers(mine->held, mode)) {
      return Status::Ok();  // re-entrant acquire
    }
    LockMode joined = Join(mine->granted ? mine->held : mine->wanted, mode);
    if (mine->granted && joined != mine->held) {
      stats_.upgrades.fetch_add(1, std::memory_order_relaxed);
    }
    mine->wanted = joined;
  } else {
    RangeRequest r;
    r.txn = txn;
    r.range = range;
    r.wanted = mode;
    r.held = mode;  // meaningful once granted
    r.granted = false;
    r.seq = next_seq_++;
    st.requests.push_back(std::move(r));
  }

  auto find_mine = [&]() -> RangeRequest* {
    auto it = ranges_.find(space);
    if (it == ranges_.end()) return nullptr;
    for (RangeRequest& r : it->second.requests) {
      if (r.txn == txn && r.range == range) return &r;
    }
    return nullptr;
  };
  auto drop_mine = [&]() {
    auto it = ranges_.find(space);
    if (it == ranges_.end()) return;
    auto& reqs = it->second.requests;
    reqs.erase(std::remove_if(reqs.begin(), reqs.end(),
                              [&](const RangeRequest& r) {
                                return r.txn == txn && r.range == range;
                              }),
               reqs.end());
  };

  GrantPendingRangeLocked(space);
  mine = find_mine();

  bool waited = false;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(
                      timeout_micros < 0 ? int64_t{1} << 40 : timeout_micros);

  while (!(mine->granted && mine->held == mine->wanted)) {
    if (!waited) {
      waited = true;
      stats_.waits.fetch_add(1, std::memory_order_relaxed);
      wait_recorder.OnFirstWait();
    }
    if (DeadlockedLocked(txn)) {
      stats_.deadlocks.fetch_add(1, std::memory_order_relaxed);
      if (metrics_enabled()) LockMetrics().deadlocks->Add();
      if (mine->granted) {
        mine->wanted = mine->held;
      } else {
        drop_mine();
      }
      GrantPendingRangeLocked(space);
      cv_.notify_all();
      return Status::Aborted("deadlock detected; transaction " +
                             std::to_string(txn) + " chosen as victim");
    }
    if (cv_.wait_until(g, deadline) == std::cv_status::timeout) {
      mine = find_mine();
      if (mine != nullptr && mine->granted && mine->held == mine->wanted) {
        break;  // granted exactly at the deadline
      }
      stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
      if (metrics_enabled()) LockMetrics().timeouts->Add();
      if (mine != nullptr) {
        if (mine->granted) {
          mine->wanted = mine->held;
        } else {
          drop_mine();
        }
      }
      GrantPendingRangeLocked(space);
      cv_.notify_all();
      return Status::TimedOut("key-range lock wait timeout on table " +
                              std::to_string(space.table));
    }
    GrantPendingRangeLocked(space);
    mine = find_mine();
    if (mine == nullptr) {
      return Status::Internal("range lock request vanished while waiting");
    }
  }

  auto& spaces = held_ranges_[txn];
  if (std::find(spaces.begin(), spaces.end(), space) == spaces.end()) {
    spaces.push_back(space);
  }
  stats_.range_acquisitions.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

bool LockManager::GrantableRangeLocked(const RangeSpaceState& st,
                                       const RangeRequest& r) const {
  for (const RangeRequest& q : st.requests) {
    if (q.txn == r.txn || !q.granted) continue;
    if (!Compatible(q.held, r.wanted) && q.range.Overlaps(r.range)) {
      return false;
    }
  }
  return true;
}

bool LockManager::GrantPendingRangeLocked(const RangeSpaceKey& space) {
  auto it = ranges_.find(space);
  if (it == ranges_.end()) return false;
  RangeSpaceState& st = it->second;
  bool any = false;

  // Pass 1: pending upgrades jump the queue.
  for (RangeRequest& r : st.requests) {
    if (r.granted && r.held != r.wanted && GrantableRangeLocked(st, r)) {
      r.held = r.wanted;
      any = true;
    }
  }
  // Pass 2: FIFO over fresh requests, but only an *overlapping* earlier
  // incompatible waiter blocks — requests on disjoint intervals pass each
  // other freely (the whole point of range granularity).
  std::vector<RangeRequest*> pending;
  for (RangeRequest& r : st.requests) {
    if (!r.granted) pending.push_back(&r);
  }
  std::sort(pending.begin(), pending.end(),
            [](const RangeRequest* a, const RangeRequest* b) {
              return a->seq < b->seq;
            });
  for (size_t i = 0; i < pending.size(); ++i) {
    RangeRequest* r = pending[i];
    if (r->granted || !GrantableRangeLocked(st, *r)) continue;
    bool blocked = false;
    for (size_t j = 0; j < i && !blocked; ++j) {
      const RangeRequest* q = pending[j];
      blocked = !q->granted && q->txn != r->txn &&
                !Compatible(q->wanted, r->wanted) &&
                q->range.Overlaps(r->range);
    }
    if (blocked) continue;
    r->granted = true;
    r->held = r->wanted;
    any = true;
  }
  if (st.requests.empty()) ranges_.erase(it);
  if (any) cv_.notify_all();
  return any;
}

void LockManager::ReleaseSharedRange(TxnId txn, RangeSpaceKey space,
                                     const IndexRange& range) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = ranges_.find(space);
  if (it == ranges_.end()) return;
  auto& reqs = it->second.requests;
  reqs.erase(std::remove_if(reqs.begin(), reqs.end(),
                            [&](const RangeRequest& r) {
                              return r.txn == txn && r.range == range &&
                                     r.granted && r.held == r.wanted &&
                                     r.held == LockMode::kS;
                            }),
             reqs.end());
  GrantPendingRangeLocked(space);
  cv_.notify_all();
}

bool LockManager::HoldsRange(TxnId txn, RangeSpaceKey space,
                             const IndexRange& range, LockMode mode) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = ranges_.find(space);
  if (it == ranges_.end()) return false;
  for (const RangeRequest& r : it->second.requests) {
    if (r.txn == txn && r.range == range && r.granted &&
        Covers(r.held, mode)) {
      return true;
    }
  }
  return false;
}

size_t LockManager::HeldRangeCount(TxnId txn) const {
  std::lock_guard<std::mutex> g(mu_);
  size_t n = 0;
  auto hit = held_ranges_.find(txn);
  if (hit == held_ranges_.end()) return 0;
  for (const RangeSpaceKey& space : hit->second) {
    auto it = ranges_.find(space);
    if (it == ranges_.end()) continue;
    for (const RangeRequest& r : it->second.requests) {
      if (r.txn == txn && r.granted) ++n;
    }
  }
  return n;
}

bool LockManager::GrantableLocked(const KeyState& st, const Request& r) const {
  for (const Request& q : st.requests) {
    if (q.txn == r.txn || !q.granted) continue;
    if (!Compatible(q.held, r.wanted)) return false;
  }
  return true;
}

bool LockManager::GrantPendingLocked(const LockKey& key) {
  auto it = keys_.find(key);
  if (it == keys_.end()) return false;
  KeyState& st = it->second;
  bool any = false;

  // Pass 1: pending upgrades (granted but wanting more) jump the queue.
  for (Request& r : st.requests) {
    if (r.granted && r.held != r.wanted && GrantableLocked(st, r)) {
      r.held = r.wanted;
      any = true;
    }
  }
  // Pass 2: strict FIFO over fresh requests.
  std::vector<Request*> pending;
  for (Request& r : st.requests) {
    if (!r.granted) pending.push_back(&r);
  }
  std::sort(pending.begin(), pending.end(),
            [](const Request* a, const Request* b) { return a->seq < b->seq; });
  for (Request* r : pending) {
    if (!GrantableLocked(st, *r)) break;
    r->granted = true;
    r->held = r->wanted;
    any = true;
  }
  if (st.requests.empty()) keys_.erase(it);
  if (any) cv_.notify_all();
  return any;
}

void LockManager::CollectWaitsForLocked(
    TxnId /*txn*/, std::unordered_map<TxnId, std::set<TxnId>>* graph) const {
  for (const auto& [key, st] : keys_) {
    for (const Request& r : st.requests) {
      bool r_waiting = !r.granted || r.held != r.wanted;
      if (!r_waiting) continue;
      for (const Request& q : st.requests) {
        if (q.txn == r.txn) continue;
        bool blocks = false;
        if (q.granted && !Compatible(q.held, r.wanted)) blocks = true;
        // Queue-order blocking: an earlier incompatible waiter also blocks.
        if (!q.granted && q.seq < r.seq && !Compatible(q.wanted, r.wanted)) {
          blocks = true;
        }
        if (blocks) (*graph)[r.txn].insert(q.txn);
      }
    }
  }
  // Range waits: same structure, with interval overlap as the extra
  // conflict condition (disjoint intervals never block).
  for (const auto& [space, st] : ranges_) {
    for (const RangeRequest& r : st.requests) {
      bool r_waiting = !r.granted || r.held != r.wanted;
      if (!r_waiting) continue;
      for (const RangeRequest& q : st.requests) {
        if (q.txn == r.txn || !q.range.Overlaps(r.range)) continue;
        bool blocks = false;
        if (q.granted && !Compatible(q.held, r.wanted)) blocks = true;
        if (!q.granted && q.seq < r.seq && !Compatible(q.wanted, r.wanted)) {
          blocks = true;
        }
        if (blocks) (*graph)[r.txn].insert(q.txn);
      }
    }
  }
}

bool LockManager::DeadlockedLocked(TxnId txn) const {
  std::unordered_map<TxnId, std::set<TxnId>> graph;
  CollectWaitsForLocked(txn, &graph);
  // DFS from txn looking for a cycle back to txn.
  std::vector<TxnId> stack;
  std::set<TxnId> visited;
  auto it = graph.find(txn);
  if (it == graph.end()) return false;
  for (TxnId n : it->second) stack.push_back(n);
  while (!stack.empty()) {
    TxnId cur = stack.back();
    stack.pop_back();
    if (cur == txn) return true;
    if (!visited.insert(cur).second) continue;
    auto cit = graph.find(cur);
    if (cit == graph.end()) continue;
    for (TxnId n : cit->second) stack.push_back(n);
  }
  return false;
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> g(mu_);
  auto hit = held_.find(txn);
  if (hit != held_.end()) {
    for (const LockKey& key : hit->second) {
      auto kit = keys_.find(key);
      if (kit == keys_.end()) continue;
      auto& reqs = kit->second.requests;
      reqs.erase(std::remove_if(reqs.begin(), reqs.end(),
                                [&](const Request& r) { return r.txn == txn; }),
                 reqs.end());
      GrantPendingLocked(key);
    }
    held_.erase(hit);
  }
  auto rit = held_ranges_.find(txn);
  if (rit != held_ranges_.end()) {
    for (const RangeSpaceKey& space : rit->second) {
      auto sit = ranges_.find(space);
      if (sit == ranges_.end()) continue;
      auto& reqs = sit->second.requests;
      reqs.erase(
          std::remove_if(reqs.begin(), reqs.end(),
                         [&](const RangeRequest& r) { return r.txn == txn; }),
          reqs.end());
      GrantPendingRangeLocked(space);
    }
    held_ranges_.erase(rit);
  }
  cv_.notify_all();
}

void LockManager::ReleaseSharedLocks(TxnId txn) {
  std::lock_guard<std::mutex> g(mu_);
  auto hit = held_.find(txn);
  if (hit != held_.end()) {  // no early return: range locks release below
    std::vector<LockKey> remaining;
    for (const LockKey& key : hit->second) {
      auto kit = keys_.find(key);
      if (kit == keys_.end()) continue;
      auto& reqs = kit->second.requests;
      bool removed = false;
      reqs.erase(std::remove_if(reqs.begin(), reqs.end(),
                                [&](const Request& r) {
                                  if (r.txn == txn && r.granted &&
                                      r.held == r.wanted &&
                                      (r.held == LockMode::kS ||
                                       r.held == LockMode::kIS)) {
                                    removed = true;
                                    return true;
                                  }
                                  return false;
                                }),
                 reqs.end());
      if (removed) {
        GrantPendingLocked(key);
      } else {
        remaining.push_back(key);
      }
    }
    hit->second = std::move(remaining);
  }
  auto rit = held_ranges_.find(txn);
  if (rit != held_ranges_.end()) {
    for (const RangeSpaceKey& space : rit->second) {
      auto sit = ranges_.find(space);
      if (sit == ranges_.end()) continue;
      auto& reqs = sit->second.requests;
      bool removed = false;
      reqs.erase(std::remove_if(reqs.begin(), reqs.end(),
                                [&](const RangeRequest& r) {
                                  if (r.txn == txn && r.granted &&
                                      r.held == r.wanted &&
                                      r.held == LockMode::kS) {
                                    removed = true;
                                    return true;
                                  }
                                  return false;
                                }),
                 reqs.end());
      if (removed) GrantPendingRangeLocked(space);
    }
  }
  cv_.notify_all();
}

void LockManager::ReleaseKey(TxnId txn, LockKey key) {
  std::lock_guard<std::mutex> g(mu_);
  auto kit = keys_.find(key);
  if (kit != keys_.end()) {
    auto& reqs = kit->second.requests;
    reqs.erase(std::remove_if(reqs.begin(), reqs.end(),
                              [&](const Request& r) { return r.txn == txn; }),
               reqs.end());
    GrantPendingLocked(key);
  }
  auto hit = held_.find(txn);
  if (hit != held_.end()) {
    auto& v = hit->second;
    v.erase(std::remove(v.begin(), v.end(), key), v.end());
  }
  cv_.notify_all();
}

bool LockManager::Holds(TxnId txn, LockKey key, LockMode mode) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = keys_.find(key);
  if (it == keys_.end()) return false;
  for (const Request& r : it->second.requests) {
    if (r.txn == txn && r.granted && Covers(r.held, mode)) return true;
  }
  return false;
}

size_t LockManager::HeldCount(TxnId txn) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

}  // namespace youtopia
