#ifndef YOUTOPIA_LOCK_LOCK_MANAGER_H_
#define YOUTOPIA_LOCK_LOCK_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/lock/lock_mode.h"
#include "src/storage/table.h"

namespace youtopia {

/// Lock target: a whole table (row == kWholeTable), a single row, or an
/// index key. Index-key locks implement equality-predicate (phantom)
/// protection for indexed access paths: readers of `col = k` take S on the
/// key's hash, writers inserting/removing/moving a row under key `k` take X
/// on it, so an indexed equality read is repeatable without a table S lock.
/// They live in a disjoint namespace carved out of the row space by setting
/// the top bit (heap RowIds are allocated sequentially from 1 and can never
/// reach 2^63).
struct LockKey {
  TableId table = 0;
  RowId row = kWholeTable;

  static constexpr RowId kWholeTable = 0;
  static constexpr RowId kIndexKeyBit = 1ull << 63;

  static LockKey Table(TableId t) { return {t, kWholeTable}; }
  static LockKey RowOf(TableId t, RowId r) { return {t, r}; }
  static LockKey IndexKey(TableId t, uint64_t key_hash) {
    return {t, key_hash | kIndexKeyBit};
  }

  bool is_table() const { return row == kWholeTable; }
  bool is_index_key() const { return (row & kIndexKeyBit) != 0; }
  bool operator==(const LockKey& o) const {
    return table == o.table && row == o.row;
  }
};

struct LockKeyHash {
  size_t operator()(const LockKey& k) const {
    return std::hash<uint64_t>{}((static_cast<uint64_t>(k.table) << 40) ^
                                 k.row);
  }
};

/// Names one ordered index's key space for key-range locking: the table
/// plus Table::IndexColumnsHash of the index's column set. Range locks in
/// different spaces never conflict.
struct RangeSpaceKey {
  TableId table = 0;
  uint64_t index_id = 0;

  bool operator==(const RangeSpaceKey& o) const {
    return table == o.table && index_id == o.index_id;
  }
};

struct RangeSpaceKeyHash {
  size_t operator()(const RangeSpaceKey& k) const {
    return std::hash<uint64_t>{}((static_cast<uint64_t>(k.table) << 40) ^
                                 k.index_id);
  }
};

/// Counters exposed for the lock-manager ablation bench. Range locks share
/// waits/deadlocks/timeouts with point locks; range_acquisitions counts
/// successful key-range grants separately.
struct LockStats {
  std::atomic<uint64_t> acquisitions{0};
  std::atomic<uint64_t> waits{0};
  std::atomic<uint64_t> deadlocks{0};
  std::atomic<uint64_t> timeouts{0};
  std::atomic<uint64_t> upgrades{0};
  std::atomic<uint64_t> range_acquisitions{0};
};

/// Centralized Strict-2PL lock manager.
///
/// * FIFO wait queues per key; a request is granted when compatible with all
///   locks granted to *other* transactions and no earlier incompatible
///   waiter exists (upgrades jump the queue, the standard anti-starvation
///   exception).
/// * Mode upgrades merge into a single request per (txn, key) whose mode is
///   the lattice join of everything the transaction asked for.
/// * Deadlocks are detected by the blocking thread via a waits-for graph
///   cycle check; the *requesting* transaction is the victim and gets
///   kAborted("deadlock").
/// * Lock waits also honor a timeout (kTimedOut) so entangled runs can bound
///   blocking, per §4 of the paper.
class LockManager {
 public:
  LockManager() = default;

  /// Acquires (or upgrades to) `mode` on `key` for `txn`. Blocks up to
  /// `timeout_micros` (<0 means wait forever).
  Status Acquire(TxnId txn, LockKey key, LockMode mode, int64_t timeout_micros);

  /// Acquires (or upgrades to) `mode` on every key in `keys` for `txn` in
  /// one mutex round: all requests enqueue together (FIFO seats assigned in
  /// `keys` order), then one wait loop blocks until ALL are fully granted.
  /// Semantically equivalent to acquiring each key in order — including on
  /// failure: a deadlock/timeout victim drops its still-waiting requests,
  /// but keys already granted stay held (recorded for ReleaseAll), exactly
  /// the partial-hold state a sequential loop leaves when key k fails.
  /// Duplicate keys are acquired once. One "lock.acquire" fault probe per
  /// call (per statement, not per row).
  Status AcquireBatch(TxnId txn, const std::vector<LockKey>& keys,
                      LockMode mode, int64_t timeout_micros);

  /// Releases every lock held by `txn` (commit/abort under Strict 2PL).
  void ReleaseAll(TxnId txn);

  /// Releases only S/IS locks held by `txn` — used by relaxed isolation
  /// levels that shorten read-lock duration (§3.3.3 / §4).
  void ReleaseSharedLocks(TxnId txn);

  /// Releases `txn`'s lock on one specific key (early read-lock release
  /// under kReadCommitted).
  void ReleaseKey(TxnId txn, LockKey key);

  /// True if `txn` currently holds a lock on `key` covering `mode`.
  bool Holds(TxnId txn, LockKey key, LockMode mode) const;

  /// Number of distinct keys locked by `txn`.
  size_t HeldCount(TxnId txn) const;

  // --- Key-range (gap + key) locks over ordered-index key spaces. ---
  //
  // A range read of a covered `<`/`<=`/`>`/`>=` predicate takes S on the
  // interval it scans; a writer takes X on IndexRange::Point(k) for every
  // ordered-index key it inserts, deletes, or moves. Two range locks
  // conflict only when their modes are incompatible AND their intervals
  // overlap, so writers outside a scanned interval never block its readers
  // — this replaces the table-S fallback (and its phantom story) for range
  // predicates. Range locks share the waits-for graph, deadlock detection,
  // and timeout machinery with point locks.

  /// Acquires (or upgrades, for an identical interval) `mode` on `range`
  /// within `space` for `txn`. Same-transaction range locks never conflict.
  Status AcquireRange(TxnId txn, RangeSpaceKey space, const IndexRange& range,
                      LockMode mode, int64_t timeout_micros);

  /// Releases `txn`'s *shared* range lock on exactly `range` (early
  /// read-lock release under kReadCommitted); X range locks are kept.
  void ReleaseSharedRange(TxnId txn, RangeSpaceKey space,
                          const IndexRange& range);

  /// True if `txn` holds a granted range lock on exactly `range` covering
  /// `mode`.
  bool HoldsRange(TxnId txn, RangeSpaceKey space, const IndexRange& range,
                  LockMode mode) const;

  /// Number of range-lock records held by `txn`.
  size_t HeldRangeCount(TxnId txn) const;

  LockStats& stats() { return stats_; }

 private:
  struct Request {
    TxnId txn;
    LockMode held;    // meaningful when granted
    LockMode wanted;  // == held when fully granted
    bool granted = false;
    uint64_t seq = 0;  // FIFO arrival order
  };
  struct KeyState {
    std::vector<Request> requests;
  };
  struct RangeRequest {
    TxnId txn;
    IndexRange range;
    LockMode held;
    LockMode wanted;
    bool granted = false;
    uint64_t seq = 0;
  };
  struct RangeSpaceState {
    std::vector<RangeRequest> requests;
  };

  /// Grants every grantable pending request on `key`; returns true if any
  /// grant happened. Caller holds mu_.
  bool GrantPendingLocked(const LockKey& key);
  bool GrantableLocked(const KeyState& st, const Request& r) const;
  /// Range twins of the above: conflicts additionally require interval
  /// overlap, and FIFO blocking only applies between overlapping waiters
  /// (disjoint requests pass each other freely). Caller holds mu_.
  bool GrantPendingRangeLocked(const RangeSpaceKey& space);
  bool GrantableRangeLocked(const RangeSpaceState& st,
                            const RangeRequest& r) const;
  /// True if a waits-for cycle through `txn` exists. Caller holds mu_.
  bool DeadlockedLocked(TxnId txn) const;
  void CollectWaitsForLocked(
      TxnId txn, std::unordered_map<TxnId, std::set<TxnId>>* graph) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<LockKey, KeyState, LockKeyHash> keys_;
  std::unordered_map<TxnId, std::vector<LockKey>> held_;
  std::unordered_map<RangeSpaceKey, RangeSpaceState, RangeSpaceKeyHash>
      ranges_;
  /// Spaces a transaction holds (or waits on) range locks in, deduplicated.
  std::unordered_map<TxnId, std::vector<RangeSpaceKey>> held_ranges_;
  uint64_t next_seq_ = 1;
  LockStats stats_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_LOCK_LOCK_MANAGER_H_
