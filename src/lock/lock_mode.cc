#include "src/lock/lock_mode.h"

namespace youtopia {

bool Compatible(LockMode a, LockMode b) {
  switch (a) {
    case LockMode::kIS:
      return b != LockMode::kX;
    case LockMode::kIX:
      return b == LockMode::kIS || b == LockMode::kIX;
    case LockMode::kS:
      return b == LockMode::kIS || b == LockMode::kS;
    case LockMode::kX:
      return false;
  }
  return false;
}

bool Covers(LockMode held, LockMode wanted) {
  if (held == wanted) return true;
  switch (held) {
    case LockMode::kX:
      return true;
    case LockMode::kS:
      return wanted == LockMode::kIS;
    case LockMode::kIX:
      return wanted == LockMode::kIS;
    case LockMode::kIS:
      return false;
  }
  return false;
}

LockMode Join(LockMode a, LockMode b) {
  if (Covers(a, b)) return a;
  if (Covers(b, a)) return b;
  // Remaining incomparable pairs: {S, IX} and {S, IS}->S handled above.
  return LockMode::kX;
}

const char* LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kIS: return "IS";
    case LockMode::kIX: return "IX";
    case LockMode::kS: return "S";
    case LockMode::kX: return "X";
  }
  return "?";
}

}  // namespace youtopia
