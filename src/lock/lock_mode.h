#ifndef YOUTOPIA_LOCK_LOCK_MODE_H_
#define YOUTOPIA_LOCK_LOCK_MODE_H_

namespace youtopia {

/// Hierarchical lock modes. Table-level locks use all four; row-level locks
/// use S/X only. SIX is not needed by our executor (a writer that also scans
/// takes table X).
enum class LockMode {
  kIS = 0,  ///< intention shared (table level, before row S)
  kIX,      ///< intention exclusive (table level, before row X)
  kS,       ///< shared
  kX,       ///< exclusive
};

/// Standard compatibility matrix.
bool Compatible(LockMode a, LockMode b);

/// True when holding `held` already implies `wanted` (no upgrade needed).
bool Covers(LockMode held, LockMode wanted);

/// Least upper bound in the mode lattice (S join IX = X since SIX is not
/// supported).
LockMode Join(LockMode a, LockMode b);

const char* LockModeName(LockMode m);

}  // namespace youtopia

#endif  // YOUTOPIA_LOCK_LOCK_MODE_H_
