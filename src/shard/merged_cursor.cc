#include "src/shard/merged_cursor.h"

namespace youtopia::shard {

int MergedCursor::CompareKeys(const Row& a, const Row& b) const {
  for (size_t c : key_columns_) {
    int cmp = a[c].Compare(b[c]);
    if (cmp != 0) return reverse_ ? -cmp : cmp;
  }
  return 0;
}

int MergedCursor::Advance() {
  if (limit_ >= 0 && emitted_ >= limit_) return -1;
  int best = -1;
  for (size_t s = 0; s < sources_.size(); ++s) {
    if (sources_[s].pos >= sources_[s].rows.size()) continue;
    if (best < 0) {
      best = static_cast<int>(s);
      // Unordered mode concatenates: the first non-empty source wins.
      if (!ordered_) break;
      continue;
    }
    const Row& cand = sources_[s].rows[sources_[s].pos].second;
    const Row& cur =
        sources_[static_cast<size_t>(best)]
            .rows[sources_[static_cast<size_t>(best)].pos]
            .second;
    if (CompareKeys(cand, cur) < 0) best = static_cast<int>(s);
  }
  if (best >= 0) ++emitted_;
  return best;
}

StatusOr<bool> MergedCursor::NextRef(RowId* rid, const Row** row) {
  int s = Advance();
  if (s < 0) return false;
  Source& src = sources_[static_cast<size_t>(s)];
  *rid = src.rows[src.pos].first;
  *row = &src.rows[src.pos].second;
  ++src.pos;
  return true;
}

StatusOr<bool> MergedCursor::Next(RowId* rid, Row* row) {
  int s = Advance();
  if (s < 0) return false;
  Source& src = sources_[static_cast<size_t>(s)];
  *rid = src.rows[src.pos].first;
  *row = std::move(src.rows[src.pos].second);
  ++src.pos;
  return true;
}

}  // namespace youtopia::shard
