#include "src/shard/merged_cursor.h"

#include <algorithm>
#include <iterator>

namespace youtopia::shard {

int MergedCursor::CompareKeys(const Row& a, const Row& b) const {
  for (size_t c : key_columns_) {
    int cmp = a[c].Compare(b[c]);
    if (cmp != 0) return reverse_ ? -cmp : cmp;
  }
  return 0;
}

int MergedCursor::Advance() {
  if (limit_ >= 0 && emitted_ >= limit_) return -1;
  int best = -1;
  for (size_t s = 0; s < sources_.size(); ++s) {
    if (sources_[s].pos >= sources_[s].rows.size()) continue;
    if (best < 0) {
      best = static_cast<int>(s);
      // Unordered mode concatenates: the first non-empty source wins.
      if (!ordered_) break;
      continue;
    }
    const Row& cand = sources_[s].rows[sources_[s].pos].second;
    const Row& cur =
        sources_[static_cast<size_t>(best)]
            .rows[sources_[static_cast<size_t>(best)].pos]
            .second;
    if (CompareKeys(cand, cur) < 0) best = static_cast<int>(s);
  }
  if (best >= 0) ++emitted_;
  return best;
}

StatusOr<bool> MergedCursor::NextRef(RowId* rid, const Row** row) {
  int s = Advance();
  if (s < 0) return false;
  Source& src = sources_[static_cast<size_t>(s)];
  *rid = src.rows[src.pos].first;
  *row = &src.rows[src.pos].second;
  ++src.pos;
  return true;
}

StatusOr<bool> MergedCursor::NextBatch(RowBatch* batch, size_t max_rows) {
  batch->clear();
  if (max_rows == 0) max_rows = 1;
  if (!ordered_) {
    for (Source& src : sources_) {
      if (src.pos >= src.rows.size()) continue;
      size_t left = src.rows.size() - src.pos;
      if (limit_ >= 0) {
        int64_t lim_left = limit_ - emitted_;
        if (lim_left <= 0) break;
        left = std::min(left, static_cast<size_t>(lim_left));
      }
      if (batch->rows.empty() && src.pos == 0 && left == src.rows.size()) {
        // Whole untouched source: hand the buffer over by swap (max_rows
        // is a pacing target, not a cap).
        batch->rows.swap(src.rows);
        src.rows.clear();
        src.pos = 0;
        emitted_ += static_cast<int64_t>(batch->rows.size());
        return true;
      }
      size_t take = std::min(left, max_rows - batch->rows.size());
      if (take == 0) break;
      batch->reserve(batch->rows.size() + take);
      std::move(src.rows.begin() + static_cast<int64_t>(src.pos),
                src.rows.begin() + static_cast<int64_t>(src.pos + take),
                std::back_inserter(batch->rows));
      src.pos += take;
      emitted_ += static_cast<int64_t>(take);
      if (batch->rows.size() >= max_rows) break;
    }
    return !batch->rows.empty();
  }
  batch->reserve(max_rows);
  while (batch->rows.size() < max_rows) {
    int s = Advance();
    if (s < 0) break;
    Source& src = sources_[static_cast<size_t>(s)];
    batch->rows.emplace_back(src.rows[src.pos].first,
                             std::move(src.rows[src.pos].second));
    ++src.pos;
  }
  return !batch->rows.empty();
}

size_t MergedCursor::size_hint() const {
  size_t left = 0;
  for (const Source& src : sources_) left += src.rows.size() - src.pos;
  if (limit_ >= 0) {
    int64_t lim_left = limit_ - emitted_;
    left = std::min(left, static_cast<size_t>(std::max<int64_t>(0, lim_left)));
  }
  return left;
}

StatusOr<bool> MergedCursor::Next(RowId* rid, Row* row) {
  int s = Advance();
  if (s < 0) return false;
  Source& src = sources_[static_cast<size_t>(s)];
  *rid = src.rows[src.pos].first;
  *row = std::move(src.rows[src.pos].second);
  ++src.pos;
  return true;
}

}  // namespace youtopia::shard
