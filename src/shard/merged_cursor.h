#ifndef YOUTOPIA_SHARD_MERGED_CURSOR_H_
#define YOUTOPIA_SHARD_MERGED_CURSOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/storage/cursor.h"

namespace youtopia::shard {

/// TableCursor over the union of per-shard results of one fanned-out
/// AccessPlan. Each source holds one shard's rows, already materialized
/// (the router drains the per-shard cursors — in parallel — before
/// constructing this), with RowIds already shard-tagged.
///
/// Two serving modes:
///   * unordered (scans, fanned-out equality lookups): sources are
///     concatenated in shard order — consumers treat these plans as
///     unordered sets, exactly as single-node RowId order is incidental;
///   * ordered (kIndexRange plans): a k-way merge on the rows' projection
///     onto the index key columns, ascending by Value::Compare per column
///     (NULL first) or descending under `reverse`, ties broken by source
///     order — so ORDER-BY-pushdown plans keep their no-sort guarantee
///     across shards.
/// An overall `limit` caps the merged output (per-shard cursors have
/// already capped their own fetches, so top-limit-of-union is correct).
///
/// Like every TableCursor, pulling past the end keeps returning false and
/// draining an exhausted cursor visits nothing.
class MergedCursor : public TableCursor {
 public:
  struct Source {
    std::vector<std::pair<RowId, Row>> rows;
    size_t pos = 0;
  };

  MergedCursor(std::vector<Source> sources, std::vector<size_t> key_columns,
               bool reverse, int64_t limit, bool ordered)
      : sources_(std::move(sources)),
        key_columns_(std::move(key_columns)),
        reverse_(reverse),
        limit_(limit),
        ordered_(ordered) {}

  StatusOr<bool> NextRef(RowId* rid, const Row** row) override;
  StatusOr<bool> Next(RowId* rid, Row* row) override;

  /// Batched pull. Unordered mode hands an untouched source buffer over by
  /// swap (zero row moves for the common whole-shard case) and otherwise
  /// bulk-moves source remainders; ordered mode runs the k-way merge loop
  /// once per batch instead of once per row.
  StatusOr<bool> NextBatch(RowBatch* batch, size_t max_rows) override;

  size_t size_hint() const override;

 private:
  /// Advances to the next row; returns its source index or -1 at end.
  int Advance();
  /// -1 / 0 / +1 between the key projections of two rows.
  int CompareKeys(const Row& a, const Row& b) const;

  std::vector<Source> sources_;
  std::vector<size_t> key_columns_;
  bool reverse_;
  int64_t limit_;
  bool ordered_;
  int64_t emitted_ = 0;
};

}  // namespace youtopia::shard

#endif  // YOUTOPIA_SHARD_MERGED_CURSOR_H_
