#include "src/shard/router.h"

#include <algorithm>
#include <filesystem>
#include <iterator>
#include <thread>

#include "src/common/clock.h"
#include "src/common/fault.h"
#include "src/common/metrics.h"
#include "src/common/strings.h"
#include "src/shard/merged_cursor.h"
#include "src/wal/recovery.h"
#include "src/wal/wal_reader.h"

namespace youtopia::shard {

namespace {

/// Registry handles for the 2PC phases and the fan-out drain, resolved once.
struct ShardMetricHandles {
  Histogram* prepare_micros;   ///< phase 1: all write branches voted
  Histogram* decision_micros;  ///< decision append + durability wait
  Histogram* phase2_micros;    ///< all participants told
  Histogram* fanout_drain_micros;
};

const ShardMetricHandles& ShardMetrics() {
  static const ShardMetricHandles h = [] {
    MetricsRegistry* r = MetricsRegistry::Global();
    return ShardMetricHandles{r->histogram("2pc.prepare_micros"),
                              r->histogram("2pc.decision_micros"),
                              r->histogram("2pc.phase2_micros"),
                              r->histogram("shard.fanout_drain_micros")};
  }();
  return h;
}

/// Streams a single routed shard's cursor, tagging every RowId with the
/// owning shard so Update/Delete by RowId can route back. DrainRef/Drain
/// go through NextRef/Next (the base implementations), so tags are never
/// skipped.
class TaggingCursor : public TableCursor {
 public:
  TaggingCursor(std::unique_ptr<TableCursor> inner, size_t shard)
      : inner_(std::move(inner)), shard_(shard) {}

  StatusOr<bool> NextRef(RowId* rid, const Row** row) override {
    YT_ASSIGN_OR_RETURN(bool more, inner_->NextRef(rid, row));
    if (!more) return false;
    *rid = Router::TagRid(shard_, *rid);
    return true;
  }

  StatusOr<bool> Next(RowId* rid, Row* row) override {
    YT_ASSIGN_OR_RETURN(bool more, inner_->Next(rid, row));
    if (!more) return false;
    *rid = Router::TagRid(shard_, *rid);
    return true;
  }

  /// Batched pull: the inner cursor's chunks flow through untouched except
  /// for an in-place RowId tag per element.
  StatusOr<bool> NextBatch(RowBatch* batch, size_t max_rows) override {
    YT_ASSIGN_OR_RETURN(bool more, inner_->NextBatch(batch, max_rows));
    if (!more) return false;
    for (auto& [rid, row] : batch->rows) rid = Router::TagRid(shard_, rid);
    return true;
  }

  size_t size_hint() const override { return inner_->size_hint(); }

 private:
  std::unique_ptr<TableCursor> inner_;
  size_t shard_;
};

/// Keeps the coordinator transaction's open-cursor count honest across
/// router cursors: a kReadCommitted coordinator must not advance its
/// snapshot while a statement's outer cursor is still being consumed (its
/// join probes read the same cut), which RefreshCoordinatorSnapshot
/// enforces via open_cursors(). Applied only under snapshot reads — the
/// locking path's lifetimes belong to the branch cursors.
class CoordCursor : public TableCursor {
 public:
  CoordCursor(std::unique_ptr<TableCursor> inner, Transaction* coord)
      : inner_(std::move(inner)), coord_(coord) {
    coord_->cursor_opened();
  }
  ~CoordCursor() override { coord_->cursor_closed(); }

  StatusOr<bool> NextRef(RowId* rid, const Row** row) override {
    return inner_->NextRef(rid, row);
  }
  StatusOr<bool> Next(RowId* rid, Row* row) override {
    return inner_->Next(rid, row);
  }
  StatusOr<bool> NextBatch(RowBatch* batch, size_t max_rows) override {
    return inner_->NextBatch(batch, max_rows);
  }
  size_t size_hint() const override { return inner_->size_hint(); }

 private:
  std::unique_ptr<TableCursor> inner_;
  Transaction* coord_;
};

std::string PartitionAux(const std::vector<size_t>& pcols) {
  if (pcols.empty()) return "broadcast";
  std::string s = "p:";
  for (size_t i = 0; i < pcols.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(pcols[i]);
  }
  return s;
}

std::vector<size_t> ParsePartitionAux(const std::string& aux) {
  std::vector<size_t> pcols;
  if (aux.rfind("p:", 0) != 0) return pcols;  // "broadcast" or unknown
  for (const std::string& part : Split(aux.substr(2), ',')) {
    pcols.push_back(static_cast<size_t>(std::stoull(part)));
  }
  return pcols;
}

}  // namespace

Router::Router(Options options)
    : options_(std::move(options)),
      clock_(std::make_unique<VersionClock>()),
      snapshots_(std::make_unique<SnapshotRegistry>()),
      map_(options_.num_shards) {}

Router::~Router() = default;

std::string Router::shard_wal_path(size_t shard) const {
  return options_.dir + "/shard" + std::to_string(shard) + "/wal.log";
}

std::string Router::coord_wal_path() const {
  return options_.dir + "/coord.wal";
}

StatusOr<std::unique_ptr<Router>> Router::Open(Options options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  std::unique_ptr<Router> r(new Router(std::move(options)));
  const bool durable = !r->options_.dir.empty();
  WalWriter::Options wo;
  wo.sync_on_flush = r->options_.sync_on_flush;
  r->shards_.resize(r->options_.num_shards);
  for (size_t s = 0; s < r->shards_.size(); ++s) {
    Shard& sh = r->shards_[s];
    sh.db = std::make_unique<Database>();
    sh.locks = std::make_unique<LockManager>();
    if (durable) {
      std::error_code ec;
      std::filesystem::create_directories(
          r->options_.dir + "/shard" + std::to_string(s), ec);
      if (ec) {
        return Status::Corruption("cannot create shard directory under " +
                                  r->options_.dir);
      }
      sh.wal = std::make_unique<WalWriter>();
      YT_RETURN_IF_ERROR(sh.wal->Open(r->shard_wal_path(s), wo,
                                      /*truncate=*/true));
    }
    TransactionManager::Options to;
    to.default_isolation = r->options_.default_isolation;
    to.lock_timeout_micros = r->options_.lock_timeout_micros;
    to.clock = r->clock_.get();
    to.snapshots = r->snapshots_.get();
    sh.tm = std::make_unique<TransactionManager>(sh.db.get(), sh.locks.get(),
                                                 sh.wal.get(), to);
    // Physical flushes of every shard WAL count into the router's aggregate
    // (the TM constructor pointed the counter at its own per-shard stats).
    if (sh.wal != nullptr) sh.wal->set_flush_counter(&r->stats_.wal_flushes);
  }
  if (durable) {
    r->coord_wal_ = std::make_unique<WalWriter>();
    YT_RETURN_IF_ERROR(r->coord_wal_->Open(r->coord_wal_path(), wo,
                                           /*truncate=*/true));
    r->coord_wal_->set_flush_counter(&r->stats_.wal_flushes);
  }
  return r;
}

StatusOr<std::unique_ptr<Router>> Router::Recover(Options options,
                                                  RecoveryReport* report) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("recovery requires a WAL directory");
  }
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  std::unique_ptr<Router> r(new Router(std::move(options)));
  WalWriter::Options wo;
  wo.sync_on_flush = r->options_.sync_on_flush;

  // --- The coordinator's log: commit decisions + table partitionings.
  std::set<GroupId> decided;
  std::vector<WalRecord> table_records;
  GroupId max_gtid = 0;
  YT_ASSIGN_OR_RETURN(WalReader::Result coord,
                      WalReader::ReadAll(r->coord_wal_path()));
  if (coord.torn_tail) {
    // Same repair RecoveryManager applies to shard logs: drop the partial
    // trailing record so the append-mode reopen below lands new records
    // where readers can reach them.
    std::error_code ec;
    uint64_t size = std::filesystem::file_size(r->coord_wal_path(), ec);
    if (!ec && size > coord.valid_bytes) {
      std::filesystem::resize_file(r->coord_wal_path(), coord.valid_bytes, ec);
      if (ec) {
        return Status::Corruption("cannot truncate torn coordinator log " +
                                  r->coord_wal_path());
      }
    }
  }
  for (const WalRecord& rec : coord.records) {
    switch (rec.type) {
      case WalRecordType::kCommitDecision:
        decided.insert(rec.group);
        max_gtid = std::max(max_gtid, rec.group);
        break;
      case WalRecordType::kCreateTable:
        table_records.push_back(rec);
        break;
      default:
        break;
    }
  }

  // --- Per-shard replay with the decisions resolving in-doubt branches.
  RecoveryManager::Options ropts;
  ropts.committed_gtids = &decided;
  r->shards_.resize(r->options_.num_shards);
  for (size_t s = 0; s < r->shards_.size(); ++s) {
    YT_ASSIGN_OR_RETURN(RecoveryManager::Result res,
                        RecoveryManager::Recover(r->shard_wal_path(s), ropts));
    if (report != nullptr) {
      report->in_doubt_branches += res.in_doubt.size();
      for (TxnId t : res.in_doubt) {
        if (res.committed.count(t)) {
          ++report->in_doubt_committed;
        } else {
          ++report->in_doubt_aborted;
        }
      }
    }
    Shard& sh = r->shards_[s];
    sh.db = std::move(res.db);
    sh.locks = std::make_unique<LockManager>();
    sh.wal = std::make_unique<WalWriter>();
    YT_RETURN_IF_ERROR(sh.wal->Open(r->shard_wal_path(s), wo,
                                    /*truncate=*/false));
    sh.wal->set_next_lsn(res.max_lsn + 1);
    // A branch resolved *committed* purely through the coordinator's
    // decision has no durable local record of its own. Write one now (and
    // flush): the shard log becomes self-resolving, which is what lets
    // decision-log GC eventually prune the coordinator entry — and what a
    // GC that already ran relies on.
    bool appended = false;
    for (const auto& [t, g] : res.in_doubt_gtid) {
      if (!res.committed.count(t)) continue;
      YT_RETURN_IF_ERROR(
          sh.wal->Append(WalRecord::CommitDecision(t, g)).status());
      appended = true;
    }
    if (appended) YT_RETURN_IF_ERROR(sh.wal->Flush());
    TransactionManager::Options to;
    to.default_isolation = r->options_.default_isolation;
    to.lock_timeout_micros = r->options_.lock_timeout_micros;
    to.clock = r->clock_.get();
    to.snapshots = r->snapshots_.get();
    sh.tm = std::make_unique<TransactionManager>(sh.db.get(), sh.locks.get(),
                                                 sh.wal.get(), to);
    sh.tm->set_next_txn_id(res.max_txn_id + 1);
    sh.wal->set_flush_counter(&r->stats_.wal_flushes);
    max_gtid = std::max(max_gtid, res.max_gtid);
  }

  // --- Rebuild the shard map from the coordinator's DDL records.
  for (const WalRecord& rec : table_records) {
    r->map_.SetPartitioning(rec.table, ParsePartitionAux(rec.aux));
  }

  r->coord_wal_ = std::make_unique<WalWriter>();
  YT_RETURN_IF_ERROR(r->coord_wal_->Open(r->coord_wal_path(), wo,
                                         /*truncate=*/false));
  r->coord_wal_->set_next_lsn(coord.max_lsn + 1);
  r->coord_wal_->set_flush_counter(&r->stats_.wal_flushes);
  // Never reuse a gtid: a presumed-aborted prepare must not be revived by
  // a later decision under the same id.
  r->next_txn_id_.store(max_gtid + 1);
  if (report != nullptr) report->decided_commits = std::move(decided);
  return r;
}

// --- Transaction bookkeeping. -------------------------------------------

std::unique_ptr<Transaction> Router::Begin() {
  return Begin(options_.default_isolation);
}

std::unique_ptr<Transaction> Router::Begin(IsolationLevel level) {
  TxnId id = next_txn_id_.fetch_add(1);
  stats_.begins.fetch_add(1, std::memory_order_relaxed);
  auto txn = std::make_unique<Transaction>(id, level,
                                           options_.lock_timeout_micros);
  // Sampled tracing (see TransactionManager::Begin): the coordinator's
  // trace id threads through the 2PC spans so coordinator and branch spans
  // assemble into one trace; an ambient traced statement is joined rather
  // than re-drawn.
  if (metrics_enabled()) {
    const TraceContext& ctx = CurrentTraceContext();
    if (ctx.trace_id != 0) {
      txn->set_trace_id(ctx.trace_id);
    } else if (Tracer::Global()->ShouldSample()) {
      txn->set_trace_id(Tracer::Global()->NewTraceId());
    }
  }
  // kSnapshot pins one engine-wide cut for the whole transaction; every
  // branch it later enlists adopts this timestamp, so a cross-shard scan
  // reads the same point in commit order on every shard.
  if (mvcc_reads_.load(std::memory_order_relaxed) &&
      level == IsolationLevel::kSnapshot) {
    uint64_t ts = clock_->ReadTs();
    txn->set_read_ts(ts);
    snapshots_->Register(ts);
    txn->set_snapshot_registered(true);
  }
  auto dt = std::make_unique<Dtxn>();
  dt->level = level;
  dt->branches.resize(shards_.size());
  std::lock_guard<std::mutex> g(mu_);
  dtxns_[id] = std::move(dt);
  return txn;
}

void Router::set_mvcc_reads_enabled(bool on) {
  mvcc_reads_.store(on, std::memory_order_relaxed);
  for (Shard& sh : shards_) sh.tm->set_mvcc_reads_enabled(on);
}

void Router::set_group_commit_enabled(bool on) {
  for (Shard& sh : shards_) {
    if (sh.wal != nullptr) sh.wal->set_group_commit_enabled(on);
  }
  if (coord_wal_ != nullptr) coord_wal_->set_group_commit_enabled(on);
}

void Router::set_group_commit_delay_micros(int64_t micros) {
  for (Shard& sh : shards_) {
    if (sh.wal != nullptr) {
      sh.wal->group_commit()->set_max_batch_delay_micros(micros);
    }
  }
  if (coord_wal_ != nullptr) {
    coord_wal_->group_commit()->set_max_batch_delay_micros(micros);
  }
}

bool Router::group_commit_enabled() const {
  if (coord_wal_ != nullptr) return coord_wal_->group_commit_enabled();
  for (const Shard& sh : shards_) {
    if (sh.wal != nullptr) return sh.wal->group_commit_enabled();
  }
  return true;  // volatile mode: nothing to flush either way
}

void Router::RefreshCoordinatorSnapshot(Transaction* txn, bool grounding) {
  if (!SnapshotReadsActive(txn)) return;
  if (txn->isolation_level() == IsolationLevel::kSnapshot &&
      txn->snapshot_registered()) {
    return;  // pinned at Begin for the whole transaction
  }
  // Same statement-boundary rule as the local manager: a join's probe
  // cursors and a grounding's later atoms keep the cut the statement
  // started on.
  if (txn->read_ts() != 0 && (txn->open_cursors() > 0 || grounding)) return;
  uint64_t ts = clock_->ReadTs();
  if (txn->snapshot_registered()) {
    snapshots_->Update(txn->read_ts(), ts);
  } else {
    snapshots_->Register(ts);
    txn->set_snapshot_registered(true);
  }
  txn->set_read_ts(ts);
}

void Router::ReleaseCoordinatorSnapshot(Transaction* txn) {
  if (!txn->snapshot_registered()) return;
  snapshots_->Unregister(txn->read_ts());
  txn->set_snapshot_registered(false);
}

StatusOr<Router::Dtxn*> Router::FindDtxn(const Transaction* txn) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = dtxns_.find(txn->id());
  if (it == dtxns_.end()) {
    return Status::Internal("transaction " + std::to_string(txn->id()) +
                            " is not managed by this router");
  }
  return it->second.get();
}

void Router::EraseDtxn(TxnId id) {
  std::lock_guard<std::mutex> g(mu_);
  dtxns_.erase(id);
}

Transaction* Router::EnlistBranch(Dtxn* dt, const Transaction* txn,
                                  size_t shard) {
  std::unique_ptr<Transaction>& b = dt->branches[shard];
  if (b == nullptr) {
    b = shards_[shard].tm->Begin(dt->level);
    b->set_lock_timeout_micros(txn->lock_timeout_micros());
  }
  // Re-sync the coordinator's cut on every touch: a branch enlisted by an
  // earlier statement (or by a write, before the coordinator ever took a
  // snapshot) must not keep a stale timestamp once the coordinator has
  // refreshed. Adopted branches never self-refresh.
  if (SnapshotReadsActive(txn) && b->read_ts() != txn->read_ts()) {
    shards_[shard].tm->AdoptSnapshot(b.get(), txn->read_ts());
  }
  return b.get();
}

StatusOr<Table*> Router::CatalogTable(const std::string& table) const {
  return db()->GetTable(table);
}

StatusOr<std::pair<size_t, RowId>> Router::ResolveRid(RowId rid) const {
  if (!RidTagged(rid)) {
    return Status::InvalidArgument("partitioned RowId lacks a shard tag");
  }
  size_t s = RidShard(rid);
  if (s >= shards_.size()) {
    return Status::InvalidArgument("RowId shard tag out of range");
  }
  return std::make_pair(s, LocalRid(rid));
}

template <typename PerShard>
StatusOr<std::vector<std::pair<RowId, Row>>> Router::CollectForWrite(
    Dtxn* dt, const Transaction* txn, size_t lo, size_t hi,
    PerShard&& per_shard) {
  std::vector<std::pair<RowId, Row>> out;
  for (size_t s = lo; s < hi; ++s) {
    Transaction* b = EnlistBranch(dt, txn, s);
    YT_ASSIGN_OR_RETURN(auto rows, per_shard(s, b));
    out.reserve(out.size() + rows.size());
    for (auto& [rid, row] : rows) {
      out.emplace_back(TagRid(s, rid), std::move(row));
    }
  }
  return out;
}

// --- Data operations. ----------------------------------------------------

StatusOr<RowId> Router::Insert(Transaction* txn, const std::string& table,
                               const Row& row) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * cat, CatalogTable(table));
  YT_ASSIGN_OR_RETURN(Row coerced, cat->Coerce(row));
  YT_ASSIGN_OR_RETURN(Dtxn * dt, FindDtxn(txn));
  const std::string& name = cat->name();
  if (map_.IsBroadcast(name)) {
    // Replica writers serialize on the primary replica's table X lock, so
    // every replica applies broadcast writes in the same order — which is
    // what keeps the replicas' RowId assignment aligned.
    Transaction* b0 = EnlistBranch(dt, txn, 0);
    YT_RETURN_IF_ERROR(shards_[0].tm->LockTableForWrite(b0, name));
    RowId rid = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      Transaction* b = EnlistBranch(dt, txn, s);
      auto r = shards_[s].tm->Insert(b, name, coerced);
      if (!r.ok()) {
        // Some replicas already applied: only Abort can restore them.
        if (s > 0) dt->abort_only = true;
        return r.status();
      }
      if (s == 0) {
        rid = r.value();
      } else if (r.value() != rid) {
        dt->abort_only = true;
        return Status::Internal("broadcast replicas diverged on " + name);
      }
    }
    txn->count_write();
    return rid;
  }
  size_t s = map_.ShardOfRow(name, coerced);
  Transaction* b = EnlistBranch(dt, txn, s);
  YT_ASSIGN_OR_RETURN(RowId rid, shards_[s].tm->Insert(b, name, coerced));
  txn->count_write();
  return TagRid(s, rid);
}

StatusOr<Row> Router::Get(Transaction* txn, const std::string& table,
                          RowId rid) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * cat, CatalogTable(table));
  YT_ASSIGN_OR_RETURN(Dtxn * dt, FindDtxn(txn));
  RefreshCoordinatorSnapshot(txn, /*grounding=*/false);
  if (SnapshotReadsActive(txn)) {
    stats_.snapshot_reads.fetch_add(1, std::memory_order_relaxed);
  }
  const std::string& name = cat->name();
  if (map_.IsBroadcast(name)) {
    return shards_[0].tm->Get(EnlistBranch(dt, txn, 0), name, rid);
  }
  YT_ASSIGN_OR_RETURN(auto loc, ResolveRid(rid));
  return shards_[loc.first].tm->Get(EnlistBranch(dt, txn, loc.first), name,
                                    loc.second);
}

Status Router::Update(Transaction* txn, const std::string& table, RowId rid,
                      const Row& row) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * cat, CatalogTable(table));
  YT_ASSIGN_OR_RETURN(Dtxn * dt, FindDtxn(txn));
  const std::string& name = cat->name();
  if (map_.IsBroadcast(name)) {
    Transaction* b0 = EnlistBranch(dt, txn, 0);
    YT_RETURN_IF_ERROR(shards_[0].tm->LockTableForWrite(b0, name));
    for (size_t s = 0; s < shards_.size(); ++s) {
      Transaction* b = EnlistBranch(dt, txn, s);
      Status st = shards_[s].tm->Update(b, name, rid, row);
      if (!st.ok()) {
        if (s > 0) dt->abort_only = true;
        return st;
      }
    }
    txn->count_write();
    return Status::Ok();
  }
  YT_ASSIGN_OR_RETURN(auto loc, ResolveRid(rid));
  // A partition-key change that re-routes the row would strand it on a
  // shard routing can no longer find; migration (delete + reinsert) is a
  // follow-on, so reject it here. Key changes that hash to the same
  // shard stay findable and are allowed.
  YT_ASSIGN_OR_RETURN(Row coerced, cat->Coerce(row));
  if (map_.ShardOfRow(name, coerced) != loc.first) {
    return Status::Unimplemented(
        "UPDATE moves a row across shards (partition key changed); "
        "delete and reinsert instead");
  }
  YT_RETURN_IF_ERROR(shards_[loc.first].tm->Update(
      EnlistBranch(dt, txn, loc.first), name, loc.second, row));
  txn->count_write();
  return Status::Ok();
}

Status Router::Delete(Transaction* txn, const std::string& table, RowId rid) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * cat, CatalogTable(table));
  YT_ASSIGN_OR_RETURN(Dtxn * dt, FindDtxn(txn));
  const std::string& name = cat->name();
  if (map_.IsBroadcast(name)) {
    Transaction* b0 = EnlistBranch(dt, txn, 0);
    YT_RETURN_IF_ERROR(shards_[0].tm->LockTableForWrite(b0, name));
    for (size_t s = 0; s < shards_.size(); ++s) {
      Transaction* b = EnlistBranch(dt, txn, s);
      Status st = shards_[s].tm->Delete(b, name, rid);
      if (!st.ok()) {
        if (s > 0) dt->abort_only = true;
        return st;
      }
    }
    txn->count_write();
    return Status::Ok();
  }
  YT_ASSIGN_OR_RETURN(auto loc, ResolveRid(rid));
  YT_RETURN_IF_ERROR(shards_[loc.first].tm->Delete(
      EnlistBranch(dt, txn, loc.first), name, loc.second));
  txn->count_write();
  return Status::Ok();
}

Status Router::Load(const std::string& table, const Row& row) {
  YT_ASSIGN_OR_RETURN(Table * cat, CatalogTable(table));
  YT_ASSIGN_OR_RETURN(Row coerced, cat->Coerce(row));
  const std::string& name = cat->name();
  if (map_.IsBroadcast(name)) {
    RowId rid = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      YT_ASSIGN_OR_RETURN(Table * t, shards_[s].db->GetTable(name));
      YT_ASSIGN_OR_RETURN(RowId r, t->InsertCoerced(Row(coerced)));
      if (s == 0) {
        rid = r;
      } else if (r != rid) {
        return Status::Internal("broadcast replicas diverged on " + name);
      }
    }
    return Status::Ok();
  }
  size_t s = map_.ShardOfRow(name, coerced);
  YT_ASSIGN_OR_RETURN(Table * t, shards_[s].db->GetTable(name));
  return t->InsertCoerced(std::move(coerced)).status();
}

// --- The read path. -------------------------------------------------------

StatusOr<std::unique_ptr<TableCursor>> Router::OpenCursor(Transaction* txn,
                                                          Table* t,
                                                          AccessPlan plan,
                                                          ReadOrigin origin) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Dtxn * dt, FindDtxn(txn));
  const bool grounding = origin == ReadOrigin::kGrounding ||
                         origin == ReadOrigin::kGroundingJoin;
  RefreshCoordinatorSnapshot(txn, grounding);
  const bool track = SnapshotReadsActive(txn);
  if (track) {
    stats_.snapshot_reads.fetch_add(1, std::memory_order_relaxed);
  }
  auto tracked = [&](std::unique_ptr<TableCursor> c)
      -> std::unique_ptr<TableCursor> {
    if (!track) return c;
    return std::unique_ptr<TableCursor>(new CoordCursor(std::move(c), txn));
  };
  const std::string& name = t->name();
  if (map_.IsBroadcast(name)) {
    // Broadcast replicas are read on shard 0 = the catalog database, so
    // `t` is already the right table. RowIds stay untagged (identical on
    // every replica).
    Transaction* b = EnlistBranch(dt, txn, 0);
    YT_ASSIGN_OR_RETURN(auto cursor,
                        shards_[0].tm->OpenCursor(b, t, std::move(plan),
                                                  origin));
    return tracked(std::move(cursor));
  }
  size_t s = map_.RouteRead(name, plan);
  if (s != ShardMap::kAllShards) {
    stats_.shard_routed_lookups.fetch_add(1, std::memory_order_relaxed);
    Transaction* b = EnlistBranch(dt, txn, s);
    YT_ASSIGN_OR_RETURN(Table * st, shards_[s].db->GetTable(name));
    YT_ASSIGN_OR_RETURN(auto cursor,
                        shards_[s].tm->OpenCursor(b, st, std::move(plan),
                                                  origin));
    return tracked(std::unique_ptr<TableCursor>(
        new TaggingCursor(std::move(cursor), s)));
  }
  stats_.fanout_cursors.fetch_add(1, std::memory_order_relaxed);
  YT_ASSIGN_OR_RETURN(auto merged, OpenFanout(txn, dt, name, plan, origin));
  return tracked(std::move(merged));
}

StatusOr<std::unique_ptr<TableCursor>> Router::OpenFanout(
    const Transaction* txn, Dtxn* dt, const std::string& table,
    const AccessPlan& plan, ReadOrigin origin) {
  const size_t n = shards_.size();
  // Enlist + open in shard order on the calling thread: lock acquisition
  // order across shards is deterministic for readers.
  std::vector<std::unique_ptr<TableCursor>> cursors(n);
  for (size_t s = 0; s < n; ++s) {
    Transaction* b = EnlistBranch(dt, txn, s);
    YT_ASSIGN_OR_RETURN(Table * st, shards_[s].db->GetTable(table));
    YT_ASSIGN_OR_RETURN(cursors[s],
                        shards_[s].tm->OpenCursor(b, st, plan, origin));
  }
  // Drain every shard's cursor into its source buffer, one thread per
  // shard: the heap walks (and per-row lock acquisitions) of different
  // shards proceed in parallel. Each thread touches exactly one branch
  // transaction, so branch state stays single-threaded. Fresh threads
  // (not a pool) are deliberate: drains can block on lock waits for up to
  // the lock timeout, and a bounded pool whose workers are all parked in
  // lock waits would stall every other fanout behind them.
  std::vector<MergedCursor::Source> sources(n);
  if (plan.is_scan()) {
    for (size_t s = 0; s < n; ++s) {
      auto t = shards_[s].db->GetTable(table);
      if (t.ok()) sources[s].rows.reserve(t.value()->size());
    }
  }
  std::vector<Status> drained(n, Status::Ok());
  auto drain = [&](size_t s) {
    // Batched pull: a private heap scan hands whole chunks over by swap,
    // so the per-row cost here is one tag write plus one pair move — no
    // per-row virtual call or visitor indirection.
    std::vector<std::pair<RowId, Row>>& rows = sources[s].rows;
    RowBatch batch;
    while (true) {
      StatusOr<bool> more = cursors[s]->NextBatch(&batch);
      if (!more.ok()) {
        drained[s] = more.status();
        break;
      }
      if (!more.value()) break;
      for (auto& [rid, row] : batch.rows) rid = TagRid(s, rid);
      if (rows.empty() && rows.capacity() < batch.rows.size()) {
        rows.swap(batch.rows);
        batch.clear();
        continue;
      }
      rows.insert(rows.end(),
                  std::make_move_iterator(batch.rows.begin()),
                  std::make_move_iterator(batch.rows.end()));
    }
    cursors[s].reset();  // close (isolation-level early release) here
  };
  {
    LatencyTimer drain_timer(ShardMetrics().fanout_drain_micros);
    if (options_.parallel_fanout && n > 1) {
      std::vector<std::thread> threads;
      threads.reserve(n);
      for (size_t s = 0; s < n; ++s) threads.emplace_back(drain, s);
      for (std::thread& th : threads) th.join();
    } else {
      for (size_t s = 0; s < n; ++s) drain(s);
    }
  }
  for (const Status& st : drained) {
    if (!st.ok()) return st;
  }
  // Ranges merge back in index-key order (ORDER-BY pushdown stays sorted
  // across shards); scans and fanned-out lookups concatenate.
  return std::unique_ptr<TableCursor>(
      new MergedCursor(std::move(sources), plan.columns, plan.reverse,
                       plan.limit, /*ordered=*/plan.is_range()));
}

StatusOr<AggregateGroups> Router::AggregateTable(Transaction* txn, Table* t,
                                                 AccessPlan plan,
                                                 const AggregateSpec& spec,
                                                 ReadOrigin origin) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Dtxn * dt, FindDtxn(txn));
  RefreshCoordinatorSnapshot(txn, origin == ReadOrigin::kGrounding ||
                                      origin == ReadOrigin::kGroundingJoin);
  if (SnapshotReadsActive(txn)) {
    stats_.snapshot_reads.fetch_add(1, std::memory_order_relaxed);
  }
  const std::string& name = t->name();
  if (map_.IsBroadcast(name)) {
    // One replica holds every row: fold locally on shard 0.
    Transaction* b = EnlistBranch(dt, txn, 0);
    return shards_[0].tm->AggregateTable(b, t, std::move(plan), spec, origin);
  }
  size_t pinned = map_.RouteRead(name, plan);
  if (pinned != ShardMap::kAllShards) {
    stats_.shard_routed_lookups.fetch_add(1, std::memory_order_relaxed);
    Transaction* b = EnlistBranch(dt, txn, pinned);
    YT_ASSIGN_OR_RETURN(Table * st, shards_[pinned].db->GetTable(name));
    return shards_[pinned].tm->AggregateTable(b, st, std::move(plan), spec,
                                              origin);
  }
  if (!aggregate_pushdown_.load(std::memory_order_relaxed)) {
    // Ablation: ship every row to the coordinator and fold there (the base
    // fold's OpenCursor fans out through OpenFanout).
    return TxnEngine::AggregateTable(txn, t, std::move(plan), spec, origin);
  }
  stats_.aggregate_pushdowns.fetch_add(1, std::memory_order_relaxed);
  stats_.fanout_cursors.fetch_add(1, std::memory_order_relaxed);
  const size_t n = shards_.size();
  // Enlist + open in shard order on the calling thread, exactly like
  // OpenFanout: deterministic lock acquisition order for readers.
  std::vector<std::unique_ptr<TableCursor>> cursors(n);
  for (size_t s = 0; s < n; ++s) {
    Transaction* b = EnlistBranch(dt, txn, s);
    YT_ASSIGN_OR_RETURN(Table * st, shards_[s].db->GetTable(name));
    YT_ASSIGN_OR_RETURN(cursors[s],
                        shards_[s].tm->OpenCursor(b, st, plan, origin));
  }
  // The pushdown: each drain thread folds its shard's rows into a private
  // Aggregator as it pulls them, so rows die inside the thread and only
  // the per-shard group states travel to the coordinator. Fresh threads
  // for the same reason as OpenFanout (drains can park on lock waits).
  std::vector<Aggregator> partials;
  partials.reserve(n);
  for (size_t s = 0; s < n; ++s) partials.emplace_back(spec);
  std::vector<Status> drained(n, Status::Ok());
  auto drain = [&](size_t s) {
    RowBatch batch;
    while (true) {
      StatusOr<bool> more = cursors[s]->NextBatch(&batch);
      if (!more.ok()) {
        drained[s] = more.status();
        break;
      }
      if (!more.value()) break;
      for (const auto& [rid, row] : batch.rows) partials[s].Accumulate(row);
    }
    cursors[s].reset();  // close (isolation-level early release) here
  };
  {
    LatencyTimer drain_timer(ShardMetrics().fanout_drain_micros);
    if (options_.parallel_fanout && n > 1) {
      std::vector<std::thread> threads;
      threads.reserve(n);
      for (size_t s = 0; s < n; ++s) threads.emplace_back(drain, s);
      for (std::thread& th : threads) th.join();
    } else {
      for (size_t s = 0; s < n; ++s) drain(s);
    }
  }
  for (const Status& st : drained) {
    if (!st.ok()) return st;
  }
  Aggregator merged(spec);
  for (size_t s = 0; s < n; ++s) {
    YT_RETURN_IF_ERROR(partials[s].Finish());
    merged.Merge(partials[s].TakeGroups());
  }
  YT_RETURN_IF_ERROR(merged.Finish());
  return merged.TakeGroups();
}

// --- Write-statement candidate acquisition. ------------------------------

StatusOr<std::vector<std::pair<RowId, Row>>> Router::LockRowsForWrite(
    Transaction* txn, const std::string& table,
    const std::vector<size_t>& columns, const Row& key) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * cat, CatalogTable(table));
  YT_ASSIGN_OR_RETURN(Dtxn * dt, FindDtxn(txn));
  const std::string& name = cat->name();
  if (map_.IsBroadcast(name)) {
    Transaction* b0 = EnlistBranch(dt, txn, 0);
    YT_RETURN_IF_ERROR(shards_[0].tm->LockTableForWrite(b0, name));
    return shards_[0].tm->LockRowsForWrite(b0, name, columns, key);
  }
  size_t s = map_.RouteLookup(name, columns, key);
  const size_t lo = (s == ShardMap::kAllShards) ? 0 : s;
  const size_t hi = (s == ShardMap::kAllShards) ? shards_.size() : s + 1;
  return CollectForWrite(dt, txn, lo, hi, [&](size_t i, Transaction* b) {
    return shards_[i].tm->LockRowsForWrite(b, name, columns, key);
  });
}

StatusOr<std::vector<std::pair<RowId, Row>>> Router::LockRowsForWriteRange(
    Transaction* txn, const std::string& table, const IndexRangeSpec& spec) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * cat, CatalogTable(table));
  YT_ASSIGN_OR_RETURN(Dtxn * dt, FindDtxn(txn));
  const std::string& name = cat->name();
  if (map_.IsBroadcast(name)) {
    Transaction* b0 = EnlistBranch(dt, txn, 0);
    YT_RETURN_IF_ERROR(shards_[0].tm->LockTableForWrite(b0, name));
    return shards_[0].tm->LockRowsForWriteRange(b0, name, spec);
  }
  // An equality prefix that pins every partition column routes the write
  // range to one shard (same rule as reads); open ranges fan out.
  size_t pinned = map_.RouteRead(name, AccessPlan::Range(spec));
  const size_t lo = (pinned == ShardMap::kAllShards) ? 0 : pinned;
  const size_t hi = (pinned == ShardMap::kAllShards) ? shards_.size()
                                                     : pinned + 1;
  return CollectForWrite(dt, txn, lo, hi, [&](size_t s, Transaction* b) {
    return shards_[s].tm->LockRowsForWriteRange(b, name, spec);
  });
}

Status Router::LockTableForWrite(Transaction* txn, const std::string& table) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * cat, CatalogTable(table));
  YT_ASSIGN_OR_RETURN(Dtxn * dt, FindDtxn(txn));
  const std::string& name = cat->name();
  if (map_.IsBroadcast(name)) {
    return shards_[0].tm->LockTableForWrite(EnlistBranch(dt, txn, 0), name);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    YT_RETURN_IF_ERROR(
        shards_[s].tm->LockTableForWrite(EnlistBranch(dt, txn, s), name));
  }
  return Status::Ok();
}

StatusOr<std::vector<std::pair<RowId, Row>>>
Router::LockTableAndCollectForWrite(Transaction* txn,
                                    const std::string& table) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * cat, CatalogTable(table));
  YT_ASSIGN_OR_RETURN(Dtxn * dt, FindDtxn(txn));
  const std::string& name = cat->name();
  if (map_.IsBroadcast(name)) {
    return shards_[0].tm->LockTableAndCollectForWrite(EnlistBranch(dt, txn, 0),
                                                      name);
  }
  return CollectForWrite(dt, txn, 0, shards_.size(),
                         [&](size_t s, Transaction* b) {
                           return shards_[s].tm->LockTableAndCollectForWrite(
                               b, name);
                         });
}

// --- Termination. ---------------------------------------------------------

void Router::SplitBranches(
    Dtxn* dt, std::vector<std::pair<size_t, Transaction*>>* writers,
    std::vector<std::pair<size_t, Transaction*>>* readers) {
  for (size_t s = 0; s < dt->branches.size(); ++s) {
    Transaction* b = dt->branches[s].get();
    if (b == nullptr) continue;
    (b->num_writes() > 0 ? writers : readers)->emplace_back(s, b);
  }
}

void Router::AbortBranches(Dtxn* dt) {
  for (size_t s = 0; s < dt->branches.size(); ++s) {
    Transaction* b = dt->branches[s].get();
    if (b != nullptr && b->active()) (void)shards_[s].tm->Abort(b);
  }
}

Status Router::TwoPhaseCommit(
    GroupId gtid,
    const std::vector<std::pair<size_t, Transaction*>>& writers,
    const std::vector<std::pair<size_t, Transaction*>>& readers,
    bool* crashed) {
  FaultInjector* fi = FaultInjector::Global();
  // Pre-decision probe: a fired kError aborts the attempt (presumed abort
  // is still correct — no decision exists); a fired kCrash additionally
  // latches the process, and `*crashed` tells the caller to leave state
  // exactly as the kill would.
  auto probe = [&](const char* site) -> Status {
    if (!fi->enabled()) return Status::Ok();
    Status s = fi->Hit(site);
    if (!s.ok() && fi->crashed()) *crashed = true;
    return s;
  };
  // Any engine failure while the process-wide crash latch is set is part
  // of the crash, not an abortable error.
  auto check = [&](Status s) -> Status {
    if (!s.ok() && fi->enabled() && fi->crashed()) *crashed = true;
    return s;
  };
  // Post-decision probe: the decision is durable, so an in-memory abort
  // would contradict what recovery replays — every fired fault past the
  // commit point escalates to a full crash.
  auto post = [&](const char* site) -> Status {
    if (!fi->enabled()) return Status::Ok();
    Status s = fi->Hit(site);
    if (!s.ok()) {
      if (!fi->crashed()) fi->ForceCrash(site);
      *crashed = true;
    }
    return s;
  };

  // Phase 1: every write branch force-writes PREPARE (its buffered redo
  // records flush with it) and votes yes by returning Ok.
  YT_RETURN_IF_ERROR(probe("2pc.before_prepare"));
  {
    ScopedTraceSpan span("2pc.prepare");
    LatencyTimer timer(ShardMetrics().prepare_micros);
    for (const auto& [s, b] : writers) {
      YT_RETURN_IF_ERROR(check(shards_[s].tm->Prepare(b, gtid)));
      YT_RETURN_IF_ERROR(probe("2pc.after_prepare"));
    }
  }
  YT_RETURN_IF_ERROR(probe("2pc.before_decision"));
  // The commit point: the decision is durable in the coordinator's log.
  // The append serializes under coord_mu_, but the durability wait happens
  // OUTSIDE it, through the decision log's group-commit queue — concurrent
  // cross-shard commits stack their decision records into one flush instead
  // of serializing one fsync each behind the mutex.
  if (coord_wal_ != nullptr) {
    ScopedTraceSpan span("2pc.decision");
    LatencyTimer timer(ShardMetrics().decision_micros);
    StatusOr<uint64_t> lsn = 0;
    {
      std::lock_guard<std::mutex> g(coord_mu_);
      lsn = coord_wal_->Append(WalRecord::CommitDecision(0, gtid));
      // Until every branch holds its own (lazily appended) local decision,
      // this coordinator record is what resolves the transaction — GC must
      // retain it. Inserting before the flush settles is conservative: if
      // the flush fails we crash below, and recovery rebuilds the set.
      if (lsn.ok()) undelivered_.insert(gtid);
    }
    Status st = lsn.ok() ? coord_wal_->SyncToLsn(lsn.value()) : lsn.status();
    if (!st.ok()) {
      // Ambiguous outcome: the record may or may not have reached the
      // device. Aborting in memory could contradict a decision recovery
      // will read, so stop cold and let recovery arbitrate.
      fi->ForceCrash("coordinator decision write failed: " + st.message());
      *crashed = true;
      return st;
    }
  }
  YT_RETURN_IF_ERROR(post("2pc.after_decision"));
  // One commit timestamp for every write branch, stamped and published
  // before any participant commits: a distributed transaction becomes
  // visible to snapshot readers atomically, never shard by shard as
  // phase 2 reaches each participant.
  if (!writers.empty()) {
    std::lock_guard<std::mutex> g(clock_->commit_mutex());
    uint64_t ts = clock_->AllocateCommitTs();
    for (const auto& [s, b] : writers) {
      shards_[s].tm->StampWritesAt(b, ts);
    }
    clock_->Publish(ts);
  }
  YT_RETURN_IF_ERROR(post("2pc.after_stamp"));
  // Read-only branches never voted; release them with a local commit.
  for (const auto& [s, b] : readers) {
    (void)shards_[s].tm->Commit(b);
  }
  // Phase 2: tell every participant. Append failures past the commit
  // point never abort — recovery resolves from the decision log — but
  // they do keep the gtid in `undelivered_` so GC retains its record.
  bool delivered_all = true;
  {
    ScopedTraceSpan span("2pc.phase2");
    LatencyTimer timer(ShardMetrics().phase2_micros);
    for (const auto& [s, b] : writers) {
      if (!shards_[s].tm->CommitPrepared(b, gtid).ok()) delivered_all = false;
      YT_RETURN_IF_ERROR(post("2pc.after_shard_decision"));
    }
  }
  if (fi->enabled() && fi->crashed()) {
    // A WAL-layer fault (torn write, frozen log) latched the crash while
    // phase 2 ran; surface it as one.
    *crashed = true;
    return Status::Internal("simulated crash at " + fi->crash_site());
  }
  if (coord_wal_ != nullptr) {
    bool run_gc = false;
    {
      std::lock_guard<std::mutex> g(coord_mu_);
      if (delivered_all) undelivered_.erase(gtid);
      if (++commits_since_decision_gc_ >= kDecisionGcInterval) {
        commits_since_decision_gc_ = 0;
        run_gc = true;
      }
    }
    // Periodic GC outside coord_mu_ (GcDecisionLog takes it); best
    // effort — a failed GC never fails the commit that triggered it.
    if (run_gc) (void)GcDecisionLog();
  }
  return Status::Ok();
}

StatusOr<size_t> Router::GcDecisionLog() {
  if (coord_wal_ == nullptr) return static_cast<size_t>(0);
  FaultInjector* fi = FaultInjector::Global();
  if (fi->enabled() && fi->crashed()) {
    return Status::Internal("decision-log GC refused under crash latch");
  }
  std::lock_guard<std::mutex> g(coord_mu_);
  // A decision is prunable only once every branch can resolve from its own
  // shard log. Phase 2 appends those local records lazily (unflushed), so
  // flush every shard WAL first — turning "appended" into "durable", the
  // property pruning actually requires.
  for (Shard& sh : shards_) {
    if (sh.wal != nullptr) YT_RETURN_IF_ERROR(sh.wal->Flush());
  }
  YT_RETURN_IF_ERROR(coord_wal_->Flush());
  YT_ASSIGN_OR_RETURN(WalReader::Result log,
                      WalReader::ReadAll(coord_wal_path()));
  std::vector<WalRecord> keep;
  size_t pruned = 0;
  for (WalRecord& rec : log.records) {
    if (rec.type == WalRecordType::kCommitDecision &&
        undelivered_.count(rec.group) == 0) {
      ++pruned;
      continue;
    }
    keep.push_back(std::move(rec));
  }
  if (pruned == 0) return static_cast<size_t>(0);
  // Rewrite through a sibling file + atomic rename: a crash mid-GC leaves
  // either the old complete log or the new complete log, never half of
  // one.
  const std::string tmp = coord_wal_path() + ".gc";
  {
    WalWriter w;
    WalWriter::Options wo;
    wo.sync_on_flush = options_.sync_on_flush;
    YT_RETURN_IF_ERROR(w.Open(tmp, wo, /*truncate=*/true));
    for (WalRecord& rec : keep) {
      YT_RETURN_IF_ERROR(w.Append(std::move(rec)).status());
    }
    YT_RETURN_IF_ERROR(w.Flush());
    YT_RETURN_IF_ERROR(w.Close());
  }
  YT_RETURN_IF_ERROR(coord_wal_->Close());
  std::error_code ec;
  std::filesystem::rename(tmp, coord_wal_path(), ec);
  if (ec) {
    return Status::Corruption("decision-log GC rename failed for " +
                              coord_wal_path());
  }
  WalWriter::Options wo;
  wo.sync_on_flush = options_.sync_on_flush;
  YT_RETURN_IF_ERROR(coord_wal_->Open(coord_wal_path(), wo,
                                      /*truncate=*/false));
  coord_wal_->set_next_lsn(keep.size() + 1);
  return pruned;
}

size_t Router::undelivered_decisions() const {
  std::lock_guard<std::mutex> g(coord_mu_);
  return undelivered_.size();
}

Status Router::Commit(Transaction* txn) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Dtxn * dt, FindDtxn(txn));
  if (dt->abort_only) {
    return Status::Aborted(
        "transaction must abort: a broadcast write applied to only some "
        "replicas");
  }
  std::vector<std::pair<size_t, Transaction*>> writers, readers;
  SplitBranches(dt, &writers, &readers);
  if (writers.size() <= 1) {
    // The one-phase fast path: at most one shard holds writes, so its
    // local commit record alone decides the transaction — no prepare
    // round, no decision log entry (asserted via stats().prepares).
    for (const auto& [s, b] : readers) {
      YT_RETURN_IF_ERROR(shards_[s].tm->Commit(b));
    }
    for (const auto& [s, b] : writers) {
      YT_RETURN_IF_ERROR(shards_[s].tm->Commit(b));
    }
    stats_.single_shard_txns.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.two_phase_commits.fetch_add(1, std::memory_order_relaxed);
    // The coordinator's root span: phase spans and every branch's spans
    // (prepare force-writes, group-commit waits) nest under it, giving one
    // trace across coordinator and branches.
    ScopedTraceSpan span("2pc.commit", txn->trace_id());
    bool crashed = false;
    Status st = TwoPhaseCommit(txn->id(), writers, readers, &crashed);
    if (!st.ok()) {
      if (crashed) return st;  // leave state exactly as a crash would
      AbortBranches(dt);
      txn->set_state(TxnState::kAborted);
      ReleaseCoordinatorSnapshot(txn);
      EraseDtxn(txn->id());
      stats_.aborts.fetch_add(1, std::memory_order_relaxed);
      return st;
    }
  }
  txn->set_state(TxnState::kCommitted);
  ReleaseCoordinatorSnapshot(txn);
  EraseDtxn(txn->id());
  stats_.commits.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status Router::Abort(Transaction* txn) {
  if (txn->state() == TxnState::kAborted) return Status::Ok();
  if (txn->state() == TxnState::kCommitted) {
    return Status::Internal("cannot abort a committed transaction");
  }
  YT_ASSIGN_OR_RETURN(Dtxn * dt, FindDtxn(txn));
  AbortBranches(dt);
  txn->set_state(TxnState::kAborted);
  ReleaseCoordinatorSnapshot(txn);
  EraseDtxn(txn->id());
  stats_.aborts.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status Router::CommitGroup(const std::vector<Transaction*>& members) {
  if (members.empty()) return Status::Ok();
  for (Transaction* t : members) {
    if (!t->active()) {
      return Status::Aborted("group member " + std::to_string(t->id()) +
                             " not active");
    }
  }
  std::vector<Dtxn*> dts;
  dts.reserve(members.size());
  std::vector<std::pair<size_t, Transaction*>> writers, readers;
  for (Transaction* t : members) {
    YT_ASSIGN_OR_RETURN(Dtxn * dt, FindDtxn(t));
    if (dt->abort_only) {
      return Status::Aborted(
          "group member " + std::to_string(t->id()) +
          " must abort: a broadcast write applied to only some replicas");
    }
    dts.push_back(dt);
    SplitBranches(dt, &writers, &readers);
  }
  std::set<size_t> write_shards;
  for (const auto& [s, b] : writers) write_shards.insert(s);

  auto abort_all = [&](const Status& why) {
    for (size_t i = 0; i < members.size(); ++i) {
      AbortBranches(dts[i]);
      members[i]->set_state(TxnState::kAborted);
      ReleaseCoordinatorSnapshot(members[i]);
      EraseDtxn(members[i]->id());
      stats_.aborts.fetch_add(1, std::memory_order_relaxed);
    }
    return why;
  };

  if (write_shards.size() <= 1) {
    // Every member's writes land on one shard (or none): the group commits
    // through that shard's ENTANGLE + GROUP_COMMIT machinery — atomic via
    // the group record, no prepare round.
    if (!writers.empty()) {
      size_t s = *write_shards.begin();
      std::vector<Transaction*> branches;
      branches.reserve(writers.size());
      for (const auto& [ws, b] : writers) branches.push_back(b);
      if (branches.size() == 1) {
        Status st = shards_[s].tm->Commit(branches[0]);
        if (!st.ok()) return abort_all(st);
      } else {
        EntanglementId eid = next_txn_id_.fetch_add(1);
        Status st = shards_[s].tm->LogEntangle(eid, branches);
        if (st.ok()) st = shards_[s].tm->CommitGroup(branches);
        if (!st.ok()) return abort_all(st);
      }
    }
    for (const auto& [s, b] : readers) {
      (void)shards_[s].tm->Commit(b);
    }
    stats_.single_shard_txns.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Cross-shard group: one 2PC instance covers every member's write
    // branches under a single gtid — one decision record commits or aborts
    // the whole entangled group.
    stats_.two_phase_commits.fetch_add(1, std::memory_order_relaxed);
    GroupId gtid = next_txn_id_.fetch_add(1);
    bool crashed = false;
    Status st = TwoPhaseCommit(gtid, writers, readers, &crashed);
    if (!st.ok()) {
      if (crashed) return st;
      return abort_all(st);
    }
  }
  for (Transaction* t : members) {
    t->set_state(TxnState::kCommitted);
    ReleaseCoordinatorSnapshot(t);
    EraseDtxn(t->id());
    stats_.commits.fetch_add(1, std::memory_order_relaxed);
  }
  stats_.group_commits.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status Router::LogEntangle(EntanglementId eid,
                           const std::vector<Transaction*>& members) {
  std::vector<TxnId> ids;
  ids.reserve(members.size());
  for (Transaction* t : members) ids.push_back(t->id());
  for (Transaction* t : members) {
    t->MarkEntangled();
    t->AddPartners(ids);
  }
  // Durable narration only: commit-time atomicity of the group comes from
  // the single-shard ENTANGLE+GROUP_COMMIT path or the 2PC decision record,
  // both written by CommitGroup. coord_mu_ keeps the append out of a
  // concurrent decision-log GC rewrite.
  if (coord_wal_ != nullptr) {
    std::lock_guard<std::mutex> g(coord_mu_);
    auto lsn = coord_wal_->AppendAndFlush(WalRecord::Entangle(eid, ids));
    if (!lsn.ok()) return lsn.status();
  }
  return Status::Ok();
}

// --- DDL. -----------------------------------------------------------------

Status Router::SetPartitioning(const std::string& table,
                               const std::vector<std::string>& columns) {
  if (db()->GetTable(table).ok()) {
    return Status::InvalidArgument(
        "partitioning must be set before CREATE TABLE " + table);
  }
  std::lock_guard<std::mutex> g(mu_);
  overrides_[ToLower(table)] = columns;
  return Status::Ok();
}

StatusOr<Table*> Router::CreateTable(const std::string& name,
                                     const Schema& schema) {
  std::vector<size_t> pcols;
  bool overridden = false;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = overrides_.find(ToLower(name));
    if (it != overrides_.end()) {
      overridden = true;
      for (const std::string& cn : it->second) {
        YT_ASSIGN_OR_RETURN(size_t pos, schema.IndexOf(cn));
        pcols.push_back(pos);
      }
    } else {
      // Default rule: partition by primary-key hash; keyless tables are
      // broadcast.
      pcols = schema.primary_key();
    }
  }
  // The auto-built primary-key unique index is per shard: it enforces
  // global uniqueness only when equal keys co-locate, i.e. the partition
  // columns are a subset of the key.
  if (!pcols.empty() && !schema.primary_key().empty()) {
    for (size_t p : pcols) {
      if (std::find(schema.primary_key().begin(), schema.primary_key().end(),
                    p) == schema.primary_key().end()) {
        return Status::InvalidArgument(
            "partition columns of a keyed table must be a subset of its "
            "primary key (per-shard PK uniqueness would not be global)");
      }
    }
  }
  // Validation passed: the override is consumed by this CREATE. (A failed
  // CREATE above keeps it, so a corrected retry still partitions as
  // requested.)
  if (overridden) {
    std::lock_guard<std::mutex> g(mu_);
    overrides_.erase(ToLower(name));
  }
  Table* cat = nullptr;
  for (size_t s = 0; s < shards_.size(); ++s) {
    YT_ASSIGN_OR_RETURN(Table * t, shards_[s].tm->CreateTable(name, schema));
    if (s == 0) cat = t;
  }
  map_.SetPartitioning(cat->name(), pcols);
  if (coord_wal_ != nullptr) {
    std::lock_guard<std::mutex> g(coord_mu_);
    WalRecord rec = WalRecord::CreateTable(cat->name(), schema);
    rec.aux = PartitionAux(pcols);
    auto lsn = coord_wal_->AppendAndFlush(std::move(rec));
    if (!lsn.ok()) return lsn.status();
  }
  return cat;
}

Status Router::CreateIndex(const std::string& table,
                           const std::vector<std::string>& columns,
                           bool unique, bool ordered) {
  // Per-shard indexes can only enforce uniqueness globally when equal
  // keys are guaranteed to land on the same shard — i.e. the partition
  // columns are a subset of the index columns. Broadcast tables hold one
  // logical copy (every replica sees every row), so any unique index
  // works there.
  if (unique) {
    YT_ASSIGN_OR_RETURN(Table * cat, CatalogTable(table));
    if (!map_.IsBroadcast(cat->name())) {
      std::vector<size_t> positions;
      positions.reserve(columns.size());
      for (const std::string& cn : columns) {
        YT_ASSIGN_OR_RETURN(size_t pos, cat->schema().IndexOf(cn));
        positions.push_back(pos);
      }
      for (size_t p : map_.PartitionColumns(cat->name())) {
        if (std::find(positions.begin(), positions.end(), p) ==
            positions.end()) {
          return Status::InvalidArgument(
              "unique index on a partitioned table must cover the "
              "partition columns (uniqueness is enforced per shard)");
        }
      }
    }
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    YT_RETURN_IF_ERROR(
        shards_[s].tm->CreateIndex(table, columns, unique, ordered));
  }
  return Status::Ok();
}

}  // namespace youtopia::shard
