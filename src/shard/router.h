#ifndef YOUTOPIA_SHARD_ROUTER_H_
#define YOUTOPIA_SHARD_ROUTER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/lock/lock_manager.h"
#include "src/shard/shard_map.h"
#include "src/storage/mvcc.h"
#include "src/txn/transaction_manager.h"
#include "src/txn/txn_engine.h"
#include "src/wal/wal_writer.h"

namespace youtopia::shard {

/// The sharded engine's top-level entry point: a TxnEngine that hash-
/// partitions tables across N in-process shards, each owning its own
/// Database + LockManager + TransactionManager + WAL file. The SQL
/// executor, sessions, the entangled-query grounder, and the entangled
/// transaction engine all run against it unchanged — it speaks the same
/// AccessPlan/OpenCursor vocabulary as the single-node manager.
///
/// Reads: a plan that pins every partition column (point lookups,
/// single-key join probes, equality-prefix-pinned ranges) routes to exactly
/// one shard; everything else fans out to all shards — the per-shard
/// cursors are drained (in parallel) and served back through a
/// MergedCursor that preserves index-key order and the plan's limit, so
/// consumers cannot tell a fanned-out read from a local one. Broadcast
/// tables are read on shard 0 and written on every replica (replica
/// writers serialize on shard 0's table X lock, keeping replicas — and
/// their RowIds — aligned).
///
/// RowIds crossing the router are *shard-tagged* for partitioned tables
/// (shard index + 1 in the top 16 bits), so Update/Delete/Get by RowId
/// route back to the owning shard. Broadcast RowIds stay untagged (they
/// are identical on every replica).
///
/// Transactions: Begin hands out a coordinator-side handle; per-shard
/// branch transactions enlist lazily on first touch. Commit runs one-phase
/// when at most one shard holds writes (read-only branches always commit
/// locally without voting — the classical read-only optimization) and
/// classical presumed-abort two-phase commit otherwise: every write branch
/// force-writes kPrepare(branch, gtid), the coordinator force-writes
/// kCommitDecision(gtid) to its own decision log — the commit point — and
/// phase 2 lazily appends per-shard decisions and releases locks. Recovery
/// (Router::Recover) replays each shard with the coordinator's decisions:
/// prepared-but-undecided branches abort, decided ones commit. Entangled
/// group commits whose writes all land on one shard go through that
/// shard's ENTANGLE + GROUP_COMMIT machinery instead of 2PC.
///
/// Cross-shard deadlocks (two transactions locking shards in opposite
/// orders) are invisible to the per-shard waits-for graphs; the per-shard
/// lock wait timeout is the safety net that breaks them.
class Router : public TxnEngine {
 public:
  struct Options {
    size_t num_shards = 4;
    /// Directory for the coordinator decision log (coord.wal) and the
    /// per-shard WALs (shard<i>/wal.log). Empty = volatile (no logging,
    /// no recovery — benches and pure in-memory tests).
    std::string dir;
    IsolationLevel default_isolation = IsolationLevel::kFullEntangled;
    int64_t lock_timeout_micros = 2'000'000;
    bool sync_on_flush = false;
    /// Fan-out cursor opens drain the per-shard cursors on one thread per
    /// shard; off = sequential (ablation / debugging).
    bool parallel_fanout = true;
  };

  /// What Recover resolved (tests / operators).
  struct RecoveryReport {
    std::set<GroupId> decided_commits;  ///< gtids in the decision log
    size_t in_doubt_branches = 0;       ///< prepared, no local outcome
    size_t in_doubt_committed = 0;      ///< ... resolved commit
    size_t in_doubt_aborted = 0;        ///< ... presumed abort
  };

  /// Fresh engine: creates the shard directories and truncates all logs.
  static StatusOr<std::unique_ptr<Router>> Open(Options options);

  /// Crash recovery: reads the coordinator decision log, replays every
  /// shard WAL against it (in-doubt branches resolve from the decisions),
  /// and reopens the logs for appending.
  static StatusOr<std::unique_ptr<Router>> Recover(
      Options options, RecoveryReport* report = nullptr);

  ~Router() override;

  // --- TxnEngine. ---

  /// The catalog view: shard 0's database. Every table and index exists on
  /// every shard with identical schemas; shard 0 additionally holds the
  /// broadcast replicas the router reads. Partitioned tables keep only
  /// their own rows here — never scan a catalog table directly.
  Database* db() const override { return shards_[0].db.get(); }
  TxnStats& stats() override { return stats_; }

  std::unique_ptr<Transaction> Begin() override;
  std::unique_ptr<Transaction> Begin(IsolationLevel level) override;

  StatusOr<RowId> Insert(Transaction* txn, const std::string& table,
                         const Row& row) override;
  StatusOr<Row> Get(Transaction* txn, const std::string& table,
                    RowId rid) override;
  Status Update(Transaction* txn, const std::string& table, RowId rid,
                const Row& row) override;
  Status Delete(Transaction* txn, const std::string& table,
                RowId rid) override;
  Status Load(const std::string& table, const Row& row) override;

  /// Router cursors reference the per-shard *branch* transactions, which
  /// are destroyed by Commit/Abort — close (drop) every cursor of a
  /// transaction before terminating it. (The executor and the drain
  /// wrappers always do; this only binds callers holding raw cursors.)
  using TxnEngine::OpenCursor;
  StatusOr<std::unique_ptr<TableCursor>> OpenCursor(
      Transaction* txn, Table* t, AccessPlan plan, ReadOrigin origin) override;

  /// Distributed aggregation with partial-state pushdown: a fanned-out
  /// plan folds `spec` inside each shard's drain thread and merges the
  /// per-shard group states at the coordinator, so the bytes crossing the
  /// shard boundary scale with the number of groups, not the number of
  /// rows. Pinned/broadcast plans fold on their one shard. With pushdown
  /// disabled (ablation) falls back to the base row-shipping fold over a
  /// fanned-out cursor.
  using TxnEngine::AggregateTable;
  StatusOr<AggregateGroups> AggregateTable(Transaction* txn, Table* t,
                                           AccessPlan plan,
                                           const AggregateSpec& spec,
                                           ReadOrigin origin) override;

  /// Ablation: route fanned-out aggregates through the row-shipping base
  /// fold instead of per-shard partials (benches measure the difference).
  void set_aggregate_pushdown_enabled(bool on) {
    aggregate_pushdown_.store(on, std::memory_order_relaxed);
  }

  /// Group-commit ablation: toggles the WAL group-commit queue on every
  /// shard WAL and the coordinator decision log at once. Off = every
  /// committer performs its own flush (the thread-per-flush baseline).
  void set_group_commit_enabled(bool on);
  bool group_commit_enabled() const;

  /// Group-commit pacing: the leader lingers up to `micros` before its batch
  /// flush so more concurrent committers can ride it. Fans to every shard
  /// WAL and the coordinator decision log. 0 (the default) = no lingering.
  void set_group_commit_delay_micros(int64_t micros);

  /// MVCC ablation: toggles snapshot reads on the coordinator and on every
  /// shard manager at once, so a cross-shard read either uses one
  /// timestamped cut per shard (on) or the classical locking path (off).
  void set_mvcc_reads_enabled(bool on) override;
  bool mvcc_reads_enabled() const override {
    return mvcc_reads_.load(std::memory_order_relaxed);
  }

  /// The engine-wide commit clock and snapshot registry shared by every
  /// shard: commits on any shard advance one clock, so a coordinator
  /// timestamp names the same cut everywhere (tests / GC inspection).
  VersionClock* clock() { return clock_.get(); }
  SnapshotRegistry* snapshots() { return snapshots_.get(); }

  StatusOr<std::vector<std::pair<RowId, Row>>> LockRowsForWrite(
      Transaction* txn, const std::string& table,
      const std::vector<size_t>& columns, const Row& key) override;
  StatusOr<std::vector<std::pair<RowId, Row>>> LockRowsForWriteRange(
      Transaction* txn, const std::string& table,
      const IndexRangeSpec& spec) override;
  Status LockTableForWrite(Transaction* txn,
                           const std::string& table) override;
  StatusOr<std::vector<std::pair<RowId, Row>>> LockTableAndCollectForWrite(
      Transaction* txn, const std::string& table) override;

  Status Commit(Transaction* txn) override;
  Status Abort(Transaction* txn) override;
  Status CommitGroup(const std::vector<Transaction*>& members) override;
  Status LogEntangle(EntanglementId eid,
                     const std::vector<Transaction*>& members) override;

  StatusOr<Table*> CreateTable(const std::string& name,
                               const Schema& schema) override;
  Status CreateIndex(const std::string& table,
                     const std::vector<std::string>& columns,
                     bool unique = false, bool ordered = false) override;

  // --- Sharding controls. ---

  /// Overrides the partitioning the next CreateTable(`table`) would derive
  /// (default: the schema's primary key; no key = broadcast). Empty
  /// `columns` forces broadcast. Must precede the CREATE.
  Status SetPartitioning(const std::string& table,
                         const std::vector<std::string>& columns);

  size_t num_shards() const { return shards_.size(); }
  const ShardMap& shard_map() const { return map_; }
  TransactionManager* shard_tm(size_t shard) { return shards_[shard].tm.get(); }
  Database* shard_db(size_t shard) { return shards_[shard].db.get(); }
  /// Path of one shard's WAL (tests inspect the record stream).
  std::string shard_wal_path(size_t shard) const;
  std::string coord_wal_path() const;

  // --- RowId shard tags. ---

  static constexpr int kShardTagShift = 48;
  static RowId TagRid(size_t shard, RowId rid) {
    return (static_cast<RowId>(shard + 1) << kShardTagShift) | rid;
  }
  static bool RidTagged(RowId rid) { return (rid >> kShardTagShift) != 0; }
  static size_t RidShard(RowId rid) {
    return static_cast<size_t>(rid >> kShardTagShift) - 1;
  }
  static RowId LocalRid(RowId rid) {
    return rid & ((1ull << kShardTagShift) - 1);
  }

  // --- Fault injection (2PC crash windows; see src/common/fault.h). ---
  //
  // The commit path probes these FaultInjector sites. Arming one with
  // Action::kCrash reproduces the classical 2PC crash windows — state and
  // logs are left exactly as a process kill would leave them (the caller
  // must then drop the router and FaultInjector::Global()->Reset() before
  // Recover):
  //
  //   2pc.before_prepare        no prepare written anywhere
  //   2pc.after_prepare         after each participant's yes-vote
  //                             (nth=1: one voted, the rest did not)
  //   2pc.before_decision       all voted, no decision logged
  //   2pc.after_decision        decision durable, no branch stamped/told
  //   2pc.after_stamp           decision durable and visible to snapshot
  //                             readers, no branch's locks released
  //   2pc.after_shard_decision  after each phase-2 delivery (nth=1: one
  //                             shard told, the rest resolve from the
  //                             coordinator's log)
  //
  // Faults at or past 2pc.after_decision always escalate to a full crash
  // latch: the decision is durable, so an in-memory abort would contradict
  // what recovery replays.

  // --- Decision-log GC. ---

  /// Prunes coordinator decision records whose branches can all resolve
  /// from their own shard logs. Phase-2 per-shard decisions are appended
  /// lazily (unflushed), so GC first flushes every shard WAL — turning
  /// "appended" into "durable", which is what pruning actually requires —
  /// then rewrites the coordinator log (temp file + rename) keeping DDL,
  /// ENTANGLE, and the decisions of gtids with an undelivered branch.
  /// Runs automatically every kDecisionGcInterval cross-shard commits;
  /// callable directly (tests / operators). Returns records pruned.
  StatusOr<size_t> GcDecisionLog();

  /// Decided gtids at least one of whose branches lacks an appended local
  /// decision record — GC retains these until delivery (or recovery)
  /// repairs them.
  size_t undelivered_decisions() const;

 private:
  struct Shard {
    std::unique_ptr<Database> db;
    std::unique_ptr<LockManager> locks;
    std::unique_ptr<WalWriter> wal;  // null in volatile mode
    std::unique_ptr<TransactionManager> tm;
  };

  /// Coordinator-side state of one distributed transaction: the lazily
  /// enlisted per-shard branches (index = shard).
  struct Dtxn {
    IsolationLevel level;
    std::vector<std::unique_ptr<Transaction>> branches;
    /// Set when a broadcast write applied to some replicas and failed on
    /// another: replicas are diverged, so only Abort may terminate this
    /// transaction (Commit refuses).
    bool abort_only = false;
  };

  explicit Router(Options options);

  StatusOr<Dtxn*> FindDtxn(const Transaction* txn);
  void EraseDtxn(TxnId id);
  /// The branch of `dt` on `shard`, enlisting (shard-level Begin) on first
  /// touch. Under snapshot reads the branch adopts the coordinator's
  /// current timestamp (re-synced on every touch), so all branches of one
  /// statement read the same cut — and a branch's first-updater-wins check
  /// runs against the coordinator's snapshot, not its own enlist time.
  Transaction* EnlistBranch(Dtxn* dt, const Transaction* txn, size_t shard);
  /// True when this transaction's reads go through the versioned heap.
  bool SnapshotReadsActive(const Transaction* txn) const {
    return mvcc_reads_.load(std::memory_order_relaxed) &&
           UsesSnapshotReads(txn->isolation_level());
  }
  /// Coordinator-side mirror of TransactionManager::MaybeRefreshSnapshot:
  /// advances a kReadCommitted coordinator's cut at statement boundaries
  /// (kSnapshot keeps its Begin-time pin; mid-statement and grounding
  /// refreshes are suppressed) and keeps the registry pin current so GC
  /// never prunes under an open coordinator snapshot.
  void RefreshCoordinatorSnapshot(Transaction* txn, bool grounding);
  /// Drops the coordinator's registry pin (terminal paths).
  void ReleaseCoordinatorSnapshot(Transaction* txn);
  /// Resolves `table` to its canonical catalog entry.
  StatusOr<Table*> CatalogTable(const std::string& table) const;
  /// Splits a distributed transaction's branches into writers and readers.
  void SplitBranches(Dtxn* dt,
                     std::vector<std::pair<size_t, Transaction*>>* writers,
                     std::vector<std::pair<size_t, Transaction*>>* readers);
  /// Decodes a partitioned table's shard-tagged RowId.
  StatusOr<std::pair<size_t, RowId>> ResolveRid(RowId rid) const;
  /// Fanout-collect for write-candidate acquisition: runs `per_shard`
  /// (shard index, branch) -> StatusOr<rows> over [lo, hi) and returns
  /// the shard-tagged concatenation.
  template <typename PerShard>
  StatusOr<std::vector<std::pair<RowId, Row>>> CollectForWrite(
      Dtxn* dt, const Transaction* txn, size_t lo, size_t hi,
      PerShard&& per_shard);
  /// The 2PC core shared by Commit and CommitGroup. `writers` span >= 2
  /// shards. A fired crash fault (or any failure while the process-wide
  /// crash latch is set) sets `*crashed` and returns an error with state
  /// and logs left exactly as a crash would leave them — the caller must
  /// skip abort cleanup then.
  Status TwoPhaseCommit(GroupId gtid,
                        const std::vector<std::pair<size_t, Transaction*>>&
                            writers,
                        const std::vector<std::pair<size_t, Transaction*>>&
                            readers,
                        bool* crashed);
  /// Aborts every branch (best effort) — failure/abort cleanup.
  void AbortBranches(Dtxn* dt);
  /// Opens one fanned-out plan: per-shard cursors, parallel drain, merge.
  StatusOr<std::unique_ptr<TableCursor>> OpenFanout(const Transaction* txn,
                                                    Dtxn* dt,
                                                    const std::string& table,
                                                    const AccessPlan& plan,
                                                    ReadOrigin origin);

  Options options_;
  /// Shared across shards (constructed before them, destroyed after): one
  /// commit clock and one snapshot registry give cross-shard statements a
  /// single consistent cut and GC a global horizon.
  std::unique_ptr<VersionClock> clock_;
  std::unique_ptr<SnapshotRegistry> snapshots_;
  std::vector<Shard> shards_;
  std::unique_ptr<WalWriter> coord_wal_;  // null in volatile mode
  ShardMap map_;

  std::mutex mu_;  ///< guards dtxns_ and partition overrides
  std::unordered_map<TxnId, std::unique_ptr<Dtxn>> dtxns_;
  /// Pre-CREATE partitioning overrides, keyed by lower-cased table name.
  std::unordered_map<std::string, std::vector<std::string>> overrides_;

  std::atomic<TxnId> next_txn_id_{1};
  TxnStats stats_;
  /// Fanned-out aggregates fold per-shard partials when true (default);
  /// false = row-shipping ablation.
  std::atomic<bool> aggregate_pushdown_{true};
  /// Versioned snapshot reads when true (default); false = locking-read
  /// ablation (mirrored into every shard manager).
  std::atomic<bool> mvcc_reads_{true};

  /// Guards the coordinator log (decision writes, DDL/ENTANGLE appends,
  /// the GC rewrite) plus `undelivered_` and the GC cadence counter.
  mutable std::mutex coord_mu_;
  /// Decided gtids with a branch whose local decision append failed (or
  /// has not happened yet): their coordinator records are not GC-eligible.
  std::set<GroupId> undelivered_;
  size_t commits_since_decision_gc_ = 0;
  static constexpr size_t kDecisionGcInterval = 128;
};

}  // namespace youtopia::shard

#endif  // YOUTOPIA_SHARD_ROUTER_H_
