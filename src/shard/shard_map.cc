#include "src/shard/shard_map.h"

#include <algorithm>

namespace youtopia::shard {

void ShardMap::SetPartitioning(const std::string& table,
                               std::vector<size_t> columns) {
  std::unique_lock lock(mu_);
  tables_[table] = std::move(columns);
}

bool ShardMap::Knows(const std::string& table) const {
  std::shared_lock lock(mu_);
  return tables_.count(table) > 0;
}

bool ShardMap::IsBroadcast(const std::string& table) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(table);
  return it == tables_.end() || it->second.empty();
}

std::vector<size_t> ShardMap::PartitionColumns(const std::string& table) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(table);
  return it == tables_.end() ? std::vector<size_t>() : it->second;
}

size_t ShardMap::ShardOfKey(const Row& partition_values) const {
  return partition_values.Hash() % num_shards_;
}

size_t ShardMap::ShardOfRow(const std::string& table, const Row& row) const {
  std::vector<size_t> pcols = PartitionColumns(table);
  if (pcols.empty()) return 0;
  std::vector<Value> vals;
  vals.reserve(pcols.size());
  for (size_t c : pcols) vals.push_back(row[c]);
  return ShardOfKey(Row(std::move(vals)));
}

size_t ShardMap::RouteLookup(const std::string& table,
                             const std::vector<size_t>& columns,
                             const Row& key) const {
  std::vector<size_t> pcols = PartitionColumns(table);
  if (pcols.empty()) return 0;
  // The lookup pins `columns[i] = key[i]` for every i; a single shard is
  // determined iff every partition column is among them.
  std::vector<Value> vals;
  vals.reserve(pcols.size());
  for (size_t p : pcols) {
    auto it = std::find(columns.begin(), columns.end(), p);
    if (it == columns.end()) return kAllShards;
    vals.push_back(key[static_cast<size_t>(it - columns.begin())]);
  }
  return ShardOfKey(Row(std::move(vals)));
}

size_t ShardMap::RouteRead(const std::string& table,
                           const AccessPlan& plan) const {
  std::vector<size_t> pcols = PartitionColumns(table);
  if (pcols.empty()) return 0;
  switch (plan.kind) {
    case AccessPlan::Kind::kTableScan:
      return kAllShards;
    case AccessPlan::Kind::kIndexLookup:
      return RouteLookup(table, plan.columns, plan.key);
    case AccessPlan::Kind::kIndexRange: {
      // A range pins a column only on its inclusive equality prefix:
      // lo[i] == hi[i] with both bounds present. Partition columns wholly
      // inside that prefix route to one shard; anything else fans out.
      if (plan.range.lo_unbounded || plan.range.hi_unbounded ||
          !plan.range.lo_incl || !plan.range.hi_incl) {
        return kAllShards;
      }
      size_t eq_prefix = 0;
      size_t common = std::min(plan.range.lo.size(), plan.range.hi.size());
      while (eq_prefix < common &&
             plan.range.lo[eq_prefix] == plan.range.hi[eq_prefix]) {
        ++eq_prefix;
      }
      std::vector<Value> vals;
      vals.reserve(pcols.size());
      for (size_t p : pcols) {
        auto it = std::find(plan.columns.begin(), plan.columns.end(), p);
        if (it == plan.columns.end()) return kAllShards;
        size_t pos = static_cast<size_t>(it - plan.columns.begin());
        if (pos >= eq_prefix) return kAllShards;
        vals.push_back(plan.range.lo[pos]);
      }
      return ShardOfKey(Row(std::move(vals)));
    }
  }
  return kAllShards;
}

}  // namespace youtopia::shard
