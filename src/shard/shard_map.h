#ifndef YOUTOPIA_SHARD_SHARD_MAP_H_
#define YOUTOPIA_SHARD_SHARD_MAP_H_

#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/storage/cursor.h"

namespace youtopia::shard {

/// Table -> partition-column-set -> shard routing for the hash-partitioned
/// engine. A *partitioned* table's rows live on exactly one shard each,
/// chosen by the 64-bit hash of the row's projection onto the partition
/// columns (by default the table's primary key). A *broadcast* table (no
/// partition columns — small or unpartitionable relations) is fully
/// replicated on every shard: reads go to shard 0, writes to all replicas.
///
/// Routing interprets the engine-wide AccessPlan vocabulary:
///   * a point lookup (or single-key join probe) whose key pins every
///     partition column routes to exactly one shard;
///   * a range whose equality prefix pins every partition column routes to
///     one shard too;
///   * everything else — full scans, open ranges, lookups missing a
///     partition column — fans out to all shards (kAllShards).
/// Routing only prunes shards that cannot hold matching rows; it never
/// changes results.
class ShardMap {
 public:
  static constexpr size_t kAllShards = static_cast<size_t>(-1);

  explicit ShardMap(size_t num_shards) : num_shards_(num_shards) {}

  size_t num_shards() const { return num_shards_; }

  /// Registers `table` as partitioned by `columns` (schema positions), or
  /// as broadcast when `columns` is empty. Called once per table at DDL
  /// time (re-registering overwrites).
  void SetPartitioning(const std::string& table, std::vector<size_t> columns);

  bool Knows(const std::string& table) const;
  /// Unregistered tables are treated as broadcast (single replica set —
  /// with one shard the distinction vanishes anyway).
  bool IsBroadcast(const std::string& table) const;
  /// Partition column positions; empty for broadcast/unknown tables.
  std::vector<size_t> PartitionColumns(const std::string& table) const;

  /// Owning shard of a full (schema-ordered, coerced) row of `table`.
  /// Broadcast tables report shard 0 (the read replica).
  size_t ShardOfRow(const std::string& table, const Row& row) const;

  /// Owning shard for the projected partition-column values themselves.
  size_t ShardOfKey(const Row& partition_values) const;

  /// The single shard `plan` can touch, or kAllShards when it must fan
  /// out. Broadcast tables always route to shard 0.
  size_t RouteRead(const std::string& table, const AccessPlan& plan) const;

  /// RouteRead for the indexed-write path: the (index columns, key) pair of
  /// LockRowsForWrite.
  size_t RouteLookup(const std::string& table,
                     const std::vector<size_t>& columns, const Row& key) const;

 private:
  size_t num_shards_;
  mutable std::shared_mutex mu_;
  /// Partition columns per table; empty vector = broadcast.
  std::unordered_map<std::string, std::vector<size_t>> tables_;
};

}  // namespace youtopia::shard

#endif  // YOUTOPIA_SHARD_SHARD_MAP_H_
