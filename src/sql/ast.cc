#include "src/sql/ast.h"

namespace youtopia::sql {

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case ExprKind::kHostVar:
      return "@" + var;
    case ExprKind::kBinary:
      return "(" + lhs->ToString() + " " + op + " " + rhs->ToString() + ")";
    case ExprKind::kNot:
      return "(NOT " + lhs->ToString() + ")";
    case ExprKind::kAggregate:
      return op + "(" + (lhs ? lhs->ToString() : "*") + ")";
    case ExprKind::kTuple: {
      std::string s = "(";
      for (size_t i = 0; i < tuple.size(); ++i) {
        if (i) s += ", ";
        s += tuple[i]->ToString();
      }
      return s + ")";
    }
    case ExprKind::kInSubquery: {
      std::string s = "(";
      for (size_t i = 0; i < tuple.size(); ++i) {
        if (i) s += ", ";
        s += tuple[i]->ToString();
      }
      return s + ") IN (SELECT ...)";
    }
    case ExprKind::kInAnswer: {
      std::string s = "(";
      for (size_t i = 0; i < tuple.size(); ++i) {
        if (i) s += ", ";
        s += tuple[i]->ToString();
      }
      return s + ") IN ANSWER " + answer_relation;
    }
  }
  return "?";
}

}  // namespace youtopia::sql
