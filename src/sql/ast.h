#ifndef YOUTOPIA_SQL_AST_H_
#define YOUTOPIA_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/schema.h"
#include "src/common/value.h"

namespace youtopia::sql {

struct SelectStmt;

enum class ExprKind {
  kLiteral,     ///< constant Value
  kColumnRef,   ///< [qualifier.]column
  kHostVar,     ///< @name
  kBinary,      ///< lhs op rhs (arith/compare/AND/OR)
  kTuple,       ///< (e1, e2, ...) — only as the LHS of IN
  kInSubquery,  ///< tuple IN (SELECT ...)
  kInAnswer,    ///< tuple IN ANSWER relation — entangled postcondition
  kNot,         ///< NOT child
  kAggregate,   ///< COUNT/SUM/MIN/MAX/AVG(arg) — op holds the upper-cased
                ///< function name, lhs the argument (null = COUNT(*))
};

/// Expression tree node. A tagged union kept flat (one struct) for
/// simplicity; only the fields for the active kind are meaningful.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;
  Value literal;                       // kLiteral
  std::string qualifier;               // kColumnRef (optional table alias)
  std::string column;                  // kColumnRef
  std::string var;                     // kHostVar
  std::string op;                      // kBinary
  std::unique_ptr<Expr> lhs, rhs;      // kBinary / kNot(lhs)
  std::vector<std::unique_ptr<Expr>> tuple;  // kTuple / IN lhs items
  std::unique_ptr<SelectStmt> subquery;      // kInSubquery
  std::string answer_relation;               // kInAnswer

  std::string ToString() const;
};

using ExprPtr = std::unique_ptr<Expr>;

/// One SELECT output item: expression plus optional alias. When the alias is
/// a host variable (`fdate AS @ArrivalDay`), executing the select binds the
/// variable; for entangled queries the binding applies to the answer tuple.
struct SelectItem {
  ExprPtr expr;
  std::string alias;
  bool alias_is_hostvar = false;
};

struct TableRef {
  std::string table;
  std::string alias;  ///< defaults to table name
};

/// One ORDER BY key: expression plus direction.
struct OrderByItem {
  ExprPtr expr;
  bool desc = false;
};

/// Classical SELECT (also used for IN-subqueries).
struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;      // may be null
  std::vector<ExprPtr> group_by;  // GROUP BY keys (column refs)
  ExprPtr having;     // HAVING predicate over groups (may be null)
  std::vector<OrderByItem> order_by;
  int64_t limit = -1; // -1 = unlimited
};

/// The paper's extended entangled query:
///   SELECT items INTO ANSWER rel [, ANSWER rel]...
///   [WHERE where_answer_condition] CHOOSE 1
struct EntangledSelectStmt {
  std::vector<SelectItem> items;
  std::vector<std::string> answer_relations;
  ExprPtr where;  // conjunction over body + ANSWER constraints
  int64_t choose = 1;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  ///< empty = positional
  std::vector<std::vector<ExprPtr>> rows;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> sets;
  ExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

struct CreateTableStmt {
  std::string table;
  Schema schema;
};

struct CreateIndexStmt {
  std::string table;
  std::vector<std::string> columns;
  bool unique = false;   ///< CREATE UNIQUE INDEX
  bool ordered = false;  ///< USING ORDERED (B-tree; enables range access)
};

struct BeginStmt {
  int64_t timeout_micros = -1;  ///< WITH TIMEOUT clause; -1 = none given
};

struct SetStmt {
  std::string var;
  ExprPtr value;
};

/// Observability surface: SHOW STATS (curated engine counters + commit
/// latency percentiles), SHOW METRICS (every registered metric), SHOW SLOW
/// QUERIES (slow-query ring, slowest first).
struct ShowStmt {
  enum class What { kStats, kMetrics, kSlowQueries };
  What what = What::kStats;
};

enum class StatementKind {
  kSelect,
  kEntangledSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kCreateIndex,
  kBegin,
  kCommit,
  kRollback,
  kSet,
  kShow,
};

/// A parsed statement (tagged union).
struct ParsedStatement {
  StatementKind kind;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<EntangledSelectStmt> entangled;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<BeginStmt> begin;
  std::unique_ptr<SetStmt> set;
  std::unique_ptr<ShowStmt> show;
};

}  // namespace youtopia::sql

#endif  // YOUTOPIA_SQL_AST_H_
