#include "src/sql/executor.h"

#include <algorithm>

#include "src/common/metrics.h"
#include "src/common/strings.h"
#include "src/sql/planner.h"

namespace youtopia::sql {

std::string QueryResult::ToString() const {
  std::string s = Join(column_names, " | ") + "\n";
  for (const Row& r : rows) {
    for (size_t i = 0; i < r.size(); ++i) {
      if (i) s += " | ";
      s += r[i].ToString();
    }
    s += "\n";
  }
  return s;
}

StatusOr<QueryResult> Executor::Execute(const ParsedStatement& stmt,
                                        Transaction* txn, VarEnv* vars) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecuteSelect(*stmt.select, txn, vars);
    case StatementKind::kInsert:
      return ExecuteInsert(*stmt.insert, txn, vars);
    case StatementKind::kUpdate:
      return ExecuteUpdate(*stmt.update, txn, vars);
    case StatementKind::kDelete:
      return ExecuteDelete(*stmt.del, txn, vars);
    case StatementKind::kSet:
      return ExecuteSet(*stmt.set, vars);
    case StatementKind::kShow:
      return ExecuteShow(*stmt.show);
    case StatementKind::kCreateTable: {
      YT_ASSIGN_OR_RETURN(Table * t,
                          tm_->CreateTable(stmt.create_table->table,
                                           stmt.create_table->schema));
      (void)t;
      return QueryResult{};
    }
    case StatementKind::kCreateIndex: {
      YT_RETURN_IF_ERROR(tm_->CreateIndex(stmt.create_index->table,
                                          stmt.create_index->columns,
                                          stmt.create_index->unique,
                                          stmt.create_index->ordered));
      return QueryResult{};
    }
    case StatementKind::kEntangledSelect:
      return Status::InvalidArgument(
          "entangled queries must run inside the entangled transaction "
          "engine");
    case StatementKind::kBegin:
    case StatementKind::kCommit:
    case StatementKind::kRollback:
      return Status::InvalidArgument(
          "transaction control statements are handled by the session");
  }
  return Status::Internal("bad statement kind");
}

Status Executor::DrainRows(TableCursor* cursor, std::vector<Row>* rows) {
  if (batch_size_ <= 1) {
    // Row-at-a-time ablation: the scalar pull loop (NextBatch's swap paths
    // may exceed any max_rows, so this is the only true size-1 drain).
    RowId rid;
    Row row;
    while (true) {
      YT_ASSIGN_OR_RETURN(bool more, cursor->Next(&rid, &row));
      if (!more) return Status::Ok();
      rows->push_back(std::move(row));
    }
  }
  if (size_t hint = cursor->size_hint(); hint > 0) {
    rows->reserve(rows->size() + hint);
  }
  RowBatch batch;
  while (true) {
    YT_ASSIGN_OR_RETURN(bool more, cursor->NextBatch(&batch, batch_size_));
    if (!more) return Status::Ok();
    for (auto& [rid, row] : batch.rows) rows->push_back(std::move(row));
  }
}

Status Executor::MaterializeSubqueries(
    const Expr* where, Transaction* txn, VarEnv* vars,
    std::unordered_map<const Expr*, std::unordered_set<Row, RowHash>>* out) {
  std::vector<const Expr*> subs;
  CollectSubqueries(where, &subs);
  for (const Expr* node : subs) {
    YT_ASSIGN_OR_RETURN(QueryResult res,
                        ExecuteSelect(*node->subquery, txn, vars));
    if (!res.rows.empty() && res.rows[0].size() != node->tuple.size()) {
      return Status::InvalidArgument(
          "IN subquery arity does not match tuple arity");
    }
    std::unordered_set<Row, RowHash> set;
    for (Row& r : res.rows) set.insert(std::move(r));
    (*out)[node] = std::move(set);
  }
  return Status::Ok();
}

StatusOr<QueryResult> Executor::ExecuteSelect(const SelectStmt& sel,
                                              Transaction* txn, VarEnv* vars) {
  // GROUP BY, HAVING, or any aggregate select item routes to the aggregate
  // path (which also rejects half-aggregate queries with a plan-time
  // error).
  bool has_aggregate = !sel.group_by.empty() || sel.having != nullptr;
  for (const SelectItem& item : sel.items) {
    has_aggregate = has_aggregate || ContainsAggregate(item.expr.get());
  }
  if (has_aggregate) return ExecuteSelectAggregate(sel, txn, vars);

  // Pre-materialize IN (SELECT...) sets (uncorrelated subqueries).
  std::unordered_map<const Expr*, std::unordered_set<Row, RowHash>> in_sets;
  YT_RETURN_IF_ERROR(MaterializeSubqueries(sel.where.get(), txn, vars,
                                           &in_sets));

  // Access-path planning per FROM table. Four shapes come out:
  //   * constant equality covered by an index -> eager index lookup under
  //     row-granular locks (PR-1 path);
  //   * constant range/prefix conjuncts (and/or a served ORDER BY) covered
  //     by an ordered index -> eager range fetch in key order, under a
  //     key-range S lock on the scanned interval instead of a table S lock;
  //   * join equality or inequality `inner.col OP outer.col` covered by an
  //     index -> bind-driven probe: no snapshot at all, the table is
  //     fetched lazily inside the join loop, one probe per distinct outer
  //     binding (cached per depth). Equality probes take index-key
  //     predicate locks, range probes key-range interval locks, so phantom
  //     safety carries over;
  //   * everything else -> full scan under a table S lock, the phantom-safe
  //     fallback for uncovered predicates.
  // The full WHERE is still evaluated on every candidate row, so plans only
  // prune, never change results.
  struct Scanned {
    std::string alias;
    const Schema* schema;
    Table* table;
    std::vector<Row> rows;  ///< eager paths
    JoinProbePlan probe;    ///< lazy path
    ProbeCache probe_cache;
  };
  std::vector<TableScope> scope;
  std::vector<Table*> tables;
  scope.reserve(sel.from.size());
  tables.reserve(sel.from.size());
  for (const TableRef& ref : sel.from) {
    YT_ASSIGN_OR_RETURN(Table * t, tm_->db()->GetTable(ref.table));
    scope.push_back({ref.alias, &t->schema()});
    tables.push_back(t);
  }

  // ORDER BY service: with a single FROM table and plain, uniformly
  // directed column keys, the planner may pick an ordered index whose key
  // order serves the sort; otherwise we sort the result set afterwards.
  OrderSpec order_spec;
  bool order_spec_ok = false;
  if (!sel.order_by.empty() && sel.from.size() == 1) {
    order_spec_ok = true;
    order_spec.desc = sel.order_by[0].desc;
    for (const OrderByItem& item : sel.order_by) {
      if (item.expr->kind != ExprKind::kColumnRef ||
          item.desc != order_spec.desc ||
          (!item.expr->qualifier.empty() &&
           !EqualsIgnoreCase(scope[0].alias, item.expr->qualifier))) {
        order_spec_ok = false;
        break;
      }
      auto pos = scope[0].schema->IndexOf(item.expr->column);
      if (!pos.ok()) {
        order_spec_ok = false;
        break;
      }
      order_spec.columns.push_back(pos.value());
    }
  }
  bool order_served = sel.order_by.empty();

  std::vector<Scanned> scans;
  scans.reserve(sel.from.size());
  for (size_t i = 0; i < sel.from.size(); ++i) {
    const TableRef& ref = sel.from[i];
    Table* t = tables[i];
    Scanned s;
    s.alias = ref.alias;
    s.schema = &t->schema();
    s.table = t;
    if (join_probes_enabled_ && i > 0) {
      YT_ASSIGN_OR_RETURN(
          s.probe, Planner::PlanJoinProbe(*t, scope, i, sel.where.get(), vars));
    }
    if (!s.probe.is_lazy()) {
      YT_ASSIGN_OR_RETURN(
          AccessPlan plan,
          Planner::Plan(*t, scope, i, sel.where.get(), vars,
                        i == 0 && order_spec_ok ? &order_spec : nullptr));
      if (plan.is_range()) {
        // LIMIT pushes into the fetch only when no residual predicate can
        // filter rows away afterwards and the fetch order is the output
        // order (or no ORDER BY was asked).
        if (sel.from.size() == 1 && plan.covers_where && sel.limit >= 0 &&
            (sel.order_by.empty() || plan.ordered)) {
          plan.limit = sel.limit;
        }
        if (i == 0 && plan.ordered) order_served = true;
      }
      // One cursor per eager table: the transaction manager interprets the
      // plan under the right locks; rows come back by batch (the cursor's
      // size hint pre-sizes the cache, so a heap scan lands as a handful
      // of chunk moves instead of per-row push_backs).
      YT_ASSIGN_OR_RETURN(auto cursor,
                          tm_->OpenCursor(txn, t, std::move(plan),
                                          ReadOrigin::kStatement));
      YT_RETURN_IF_ERROR(DrainRows(cursor.get(), &s.rows));
    }
    scans.push_back(std::move(s));
  }

  // Pre-resolve the paper-style `SELECT @uid FROM ...` auto-column items:
  // a bare host var over a FROM table with a same-named column reads that
  // column and binds the variable.
  struct ItemPlan {
    const Expr* expr;
    std::string name;          // output column name
    std::string bind_var;      // nonempty => bind @var from first row
    ExprPtr replacement;       // owns a synthesized column ref, if any
  };
  std::vector<ItemPlan> plans;
  plans.reserve(sel.items.size());
  for (const SelectItem& item : sel.items) {
    ItemPlan p;
    p.expr = item.expr.get();
    p.name = item.alias.empty() ? item.expr->ToString() : item.alias;
    if (item.alias_is_hostvar) p.bind_var = ToLower(item.alias);
    if (item.expr->kind == ExprKind::kHostVar && !scans.empty()) {
      for (const Scanned& s : scans) {
        if (s.schema->HasColumn(item.expr->var)) {
          auto col = std::make_unique<Expr>();
          col->kind = ExprKind::kColumnRef;
          col->column = item.expr->var;
          p.replacement = std::move(col);
          p.expr = p.replacement.get();
          p.bind_var = ToLower(item.expr->var);
          p.name = "@" + item.expr->var;
          break;
        }
      }
    }
    plans.push_back(std::move(p));
  }

  QueryResult result;
  for (const ItemPlan& p : plans) result.column_names.push_back(p.name);

  // Bind-time validation: every column reference must resolve against some
  // FROM table, even when tables are empty (an unknown column is a query
  // error, not an empty result).
  std::function<Status(const Expr*)> validate_refs =
      [&](const Expr* e) -> Status {
    if (e == nullptr) return Status::Ok();
    if (e->kind == ExprKind::kColumnRef) {
      for (const Scanned& s : scans) {
        bool qual_ok = e->qualifier.empty() ||
                       EqualsIgnoreCase(s.alias, e->qualifier);
        if (qual_ok && s.schema->HasColumn(e->column)) return Status::Ok();
      }
      return Status::NotFound(
          "unresolved column " +
          (e->qualifier.empty() ? e->column : e->qualifier + "." + e->column));
    }
    YT_RETURN_IF_ERROR(validate_refs(e->lhs.get()));
    YT_RETURN_IF_ERROR(validate_refs(e->rhs.get()));
    for (const ExprPtr& t : e->tuple) {
      YT_RETURN_IF_ERROR(validate_refs(t.get()));
    }
    return Status::Ok();
  };
  for (const ItemPlan& p : plans) {
    YT_RETURN_IF_ERROR(validate_refs(p.expr));
  }
  YT_RETURN_IF_ERROR(validate_refs(sel.where.get()));
  for (const OrderByItem& item : sel.order_by) {
    YT_RETURN_IF_ERROR(validate_refs(item.expr.get()));
  }

  // Predicate pushdown for the nested-loop join: split the WHERE into
  // conjuncts and evaluate each at the shallowest join depth where all its
  // column references are bound. This turns the paper's three-way §D joins
  // from a cartesian product into an early-pruned loop.
  std::function<void(const Expr*, std::vector<const Expr*>*)> flatten =
      [&](const Expr* e, std::vector<const Expr*>* out) {
        if (e == nullptr) return;
        if (e->kind == ExprKind::kBinary && e->op == "AND") {
          flatten(e->lhs.get(), out);
          flatten(e->rhs.get(), out);
          return;
        }
        out->push_back(e);
      };
  // Depth needed to evaluate an expression: max over its column refs of the
  // first FROM table that binds them; +inf (scans.size()) when unknown.
  std::function<size_t(const Expr*)> depth_needed = [&](const Expr* e) -> size_t {
    if (e == nullptr) return 0;
    size_t d = 0;
    if (e->kind == ExprKind::kColumnRef) {
      for (size_t t = 0; t < scans.size(); ++t) {
        bool qual_ok = e->qualifier.empty() ||
                       EqualsIgnoreCase(scans[t].alias, e->qualifier);
        if (qual_ok && scans[t].schema->HasColumn(e->column)) {
          return t + 1;
        }
      }
      return scans.size();  // unknown column: defer to the deepest level
    }
    if (e->lhs) d = std::max(d, depth_needed(e->lhs.get()));
    if (e->rhs) d = std::max(d, depth_needed(e->rhs.get()));
    for (const ExprPtr& t : e->tuple) d = std::max(d, depth_needed(t.get()));
    return d;
  };
  std::vector<std::vector<const Expr*>> conjuncts_at(scans.size() + 1);
  {
    std::vector<const Expr*> conjuncts;
    flatten(sel.where.get(), &conjuncts);
    for (const Expr* c : conjuncts) {
      size_t d = std::min(depth_needed(c), scans.size());
      conjuncts_at[d].push_back(c);
    }
  }

  EvalEnv env;
  env.vars = vars;
  env.in_sets = &in_sets;
  env.tables.resize(scans.size());
  // When a sort is needed, LIMIT applies only after sorting — the recursion
  // must see every qualifying row. A table-less select yields at most one
  // row; nothing to sort.
  const bool need_sort =
      !sel.order_by.empty() && !order_served && !scans.empty();
  int64_t limit = (sel.limit < 0 || need_sort) ? INT64_MAX : sel.limit;
  std::vector<std::vector<Value>> order_keys;  // parallel to result.rows

  std::function<Status(size_t)> recurse = [&](size_t depth) -> Status {
    if (static_cast<int64_t>(result.rows.size()) >= limit) return Status::Ok();
    if (depth == scans.size()) {
      std::vector<Value> out;
      out.reserve(plans.size());
      for (const ItemPlan& p : plans) {
        YT_ASSIGN_OR_RETURN(Value v, EvalScalar(*p.expr, env));
        out.push_back(std::move(v));
      }
      if (need_sort) {
        std::vector<Value> key;
        key.reserve(sel.order_by.size());
        for (const OrderByItem& item : sel.order_by) {
          YT_ASSIGN_OR_RETURN(Value v, EvalScalar(*item.expr, env));
          key.push_back(std::move(v));
        }
        order_keys.push_back(std::move(key));
      }
      result.rows.emplace_back(std::move(out));
      return Status::Ok();
    }
    Scanned& sc = scans[depth];
    const std::vector<Row>* depth_rows = &sc.rows;
    std::vector<Row> uncached;  // probe rows when the cache is full
    if (sc.probe.is_lazy()) {
      // Assemble the probe key from plan-time constants and the outer
      // rows already bound at shallower depths. A NULL outer value can
      // match nothing under SQL comparison, so the whole depth yields no
      // rows for this binding.
      std::vector<Value> kv;
      kv.reserve(sc.probe.parts.size());
      for (const JoinProbePlan::KeyPart& part : sc.probe.parts) {
        if (part.is_const) {
          kv.push_back(part.constant);
          continue;
        }
        const Row* outer_row = env.tables[part.outer].row;
        const Value& v = (*outer_row)[part.outer_column];
        if (v.is_null()) return Status::Ok();
        kv.push_back(v);
      }
      if (sc.probe.is_probe()) {
        YT_ASSIGN_OR_RETURN(
            depth_rows,
            sc.probe_cache.GetOrFetch(
                Row(std::move(kv)), tm_->stats().join_probe_cache_hits,
                &uncached, [&](const Row& key, std::vector<Row>* rows) {
                  auto cursor = tm_->OpenCursor(
                      txn, sc.table,
                      AccessPlan::Lookup(sc.probe.columns, key),
                      ReadOrigin::kJoin);
                  if (!cursor.ok()) return cursor.status();
                  return DrainRows(cursor.value().get(), rows);
                }));
      } else {
        // Range probe: the interval's bound values come from the outer
        // binding (or plan-time constants) per iteration.
        auto resolve = [&](const JoinProbePlan::RangeBound& b, Value* out) {
          if (b.is_const) {
            *out = b.constant;
          } else {
            *out = (*env.tables[b.outer].row)[b.outer_column];
          }
          return !out->is_null();
        };
        Value lo_v, hi_v;
        if (sc.probe.lo.present && !resolve(sc.probe.lo, &lo_v)) {
          return Status::Ok();
        }
        if (sc.probe.hi.present && !resolve(sc.probe.hi, &hi_v)) {
          return Status::Ok();
        }
        // null_filter_from 0: SQL comparisons with NULL never match.
        IndexRangeSpec spec =
            sc.probe.MakeRangeSpec(kv, lo_v, hi_v, /*null_filter_from=*/0);
        YT_ASSIGN_OR_RETURN(
            depth_rows,
            sc.probe_cache.GetOrFetch(
                sc.probe.MakeRangeCacheKey(std::move(kv), lo_v, hi_v),
                tm_->stats().range_probe_cache_hits,
                &uncached, [&](const Row&, std::vector<Row>* rows) {
                  auto cursor = tm_->OpenCursor(txn, sc.table,
                                                AccessPlan::Range(spec),
                                                ReadOrigin::kJoin);
                  if (!cursor.ok()) return cursor.status();
                  return DrainRows(cursor.value().get(), rows);
                }));
      }
    }
    for (const Row& row : *depth_rows) {
      env.tables[depth] = {sc.alias, sc.schema, &row};
      bool keep = true;
      for (const Expr* c : conjuncts_at[depth + 1]) {
        YT_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*c, env));
        if (!ok) {
          keep = false;
          break;
        }
      }
      if (!keep) continue;
      YT_RETURN_IF_ERROR(recurse(depth + 1));
      if (static_cast<int64_t>(result.rows.size()) >= limit) break;
    }
    return Status::Ok();
  };

  if (scans.empty()) {
    // Expression-only select: evaluate once over the var environment.
    if (sel.where == nullptr) {
      std::vector<Value> out;
      for (const ItemPlan& p : plans) {
        YT_ASSIGN_OR_RETURN(Value v, EvalScalar(*p.expr, env));
        out.push_back(std::move(v));
      }
      result.rows.emplace_back(std::move(out));
    } else {
      YT_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*sel.where, env));
      if (keep) {
        std::vector<Value> out;
        for (const ItemPlan& p : plans) {
          YT_ASSIGN_OR_RETURN(Value v, EvalScalar(*p.expr, env));
          out.push_back(std::move(v));
        }
        result.rows.emplace_back(std::move(out));
      }
    }
  } else {
    // Depth-0 conjuncts reference no tables (pure variable/constant tests).
    bool keep = true;
    for (const Expr* c : conjuncts_at[0]) {
      YT_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*c, env));
      if (!ok) {
        keep = false;
        break;
      }
    }
    if (keep) {
      YT_RETURN_IF_ERROR(recurse(0));
    }
  }

  // Sort fallback for an ORDER BY no index path served; LIMIT applies to
  // the sorted output. Value::Compare puts NULL first ascending — the same
  // total order an ordered index's key order yields, so both paths agree.
  if (need_sort && !result.rows.empty()) {
    std::vector<size_t> idx(result.rows.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      for (size_t i = 0; i < sel.order_by.size(); ++i) {
        int c = order_keys[a][i].Compare(order_keys[b][i]);
        if (c != 0) return sel.order_by[i].desc ? c > 0 : c < 0;
      }
      return false;
    });
    std::vector<Row> sorted;
    sorted.reserve(idx.size());
    for (size_t i : idx) sorted.push_back(std::move(result.rows[i]));
    result.rows = std::move(sorted);
  }
  if (sel.limit >= 0 &&
      result.rows.size() > static_cast<size_t>(sel.limit)) {
    result.rows.resize(static_cast<size_t>(sel.limit));
  }

  // Host-variable bindings from the first row (NULL when empty).
  if (vars != nullptr) {
    for (size_t i = 0; i < plans.size(); ++i) {
      if (plans[i].bind_var.empty()) continue;
      (*vars)[plans[i].bind_var] =
          result.rows.empty() ? Value::Null() : result.rows[0][i];
    }
  }
  return result;
}

StatusOr<QueryResult> Executor::ExecuteSelectAggregate(const SelectStmt& sel,
                                                       Transaction* txn,
                                                       VarEnv* vars) {
  if (sel.from.size() != 1) {
    return Status::InvalidArgument(
        "aggregate queries require exactly one FROM table");
  }
  YT_ASSIGN_OR_RETURN(Table * t, tm_->db()->GetTable(sel.from[0].table));
  std::vector<TableScope> scope{{sel.from[0].alias, &t->schema()}};
  YT_ASSIGN_OR_RETURN(AggregateQueryPlan plan,
                      Planner::PlanAggregate(*t, scope, sel, vars));

  AggregateGroups groups;
  if (plan.pushable) {
    // The WHERE compiled completely into engine-level filters: the fold
    // runs inside the engine — per-shard partials on a sharded one, so
    // only group states cross the shard boundary.
    YT_ASSIGN_OR_RETURN(groups,
                        tm_->AggregateTable(txn, t, std::move(plan.access),
                                            plan.spec,
                                            ReadOrigin::kStatement));
  } else {
    // Residual WHERE (IN-subqueries, OR trees, column-vs-column...): drain
    // the planned cursor here and fold under the full predicate. The spec
    // carries no filters on this path — the predicate below is the filter.
    std::unordered_map<const Expr*, std::unordered_set<Row, RowHash>> in_sets;
    YT_RETURN_IF_ERROR(MaterializeSubqueries(sel.where.get(), txn, vars,
                                             &in_sets));
    EvalEnv env;
    env.vars = vars;
    env.in_sets = &in_sets;
    env.tables.resize(1);
    Aggregator agg(plan.spec);
    YT_ASSIGN_OR_RETURN(auto cursor,
                        tm_->OpenCursor(txn, t, std::move(plan.access),
                                        ReadOrigin::kStatement));
    auto fold = [&](const Row& row) -> Status {
      env.tables[0] = {scope[0].alias, scope[0].schema, &row};
      if (sel.where != nullptr) {
        YT_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*sel.where, env));
        if (!keep) return Status::Ok();
      }
      agg.Accumulate(row);
      return Status::Ok();
    };
    if (batch_size_ <= 1) {
      RowId rid;
      Row row;
      while (true) {
        YT_ASSIGN_OR_RETURN(bool more, cursor->Next(&rid, &row));
        if (!more) break;
        YT_RETURN_IF_ERROR(fold(row));
      }
    } else {
      RowBatch batch;
      while (true) {
        YT_ASSIGN_OR_RETURN(bool more, cursor->NextBatch(&batch, batch_size_));
        if (!more) break;
        for (const auto& [rid, row] : batch.rows) {
          YT_RETURN_IF_ERROR(fold(row));
        }
      }
    }
    YT_RETURN_IF_ERROR(agg.Finish());
    groups = agg.TakeGroups();
  }

  // SQL empty-input semantics: a global aggregate still answers one row
  // (COUNT 0, SUM/MIN/MAX/AVG NULL); GROUP BY over nothing answers none.
  if (plan.spec.group_by.empty() && groups.empty()) {
    groups.emplace(Row(), Aggregator::EmptyStates(plan.spec));
  }

  // Deterministic output: groups in key order (Row::Compare's total order,
  // NULL first — matching the engine's canonical sort).
  std::vector<std::pair<Row, std::vector<AggState>>> in_order;
  in_order.reserve(groups.size());
  for (auto& [key, states] : groups) {
    in_order.emplace_back(key, std::move(states));
  }
  std::sort(in_order.begin(), in_order.end(),
            [](const auto& a, const auto& b) {
              return a.first.Compare(b.first) < 0;
            });

  // HAVING: the planner rewrote it against the synthetic post-grouping row
  // (group keys as "__group<g>", finalized aggregates as "__agg<i>") —
  // evaluate it per group and drop the groups it rejects.
  if (plan.having != nullptr) {
    std::vector<Column> hcols;
    for (size_t g = 0; g < plan.spec.group_by.size(); ++g) {
      hcols.push_back({"__group" + std::to_string(g),
                       t->schema().column(plan.spec.group_by[g]).type});
    }
    for (size_t i = 0; i < plan.spec.aggs.size(); ++i) {
      const AggSpec& a = plan.spec.aggs[i];
      TypeId ty = TypeId::kInt64;
      if (a.func == AggFunc::kAvg) {
        ty = TypeId::kDouble;
      } else if (a.func == AggFunc::kSum || a.func == AggFunc::kMin ||
                 a.func == AggFunc::kMax) {
        ty = t->schema().column(a.column).type;
      }
      hcols.push_back({"__agg" + std::to_string(i), ty});
    }
    Schema hschema(std::move(hcols));
    EvalEnv henv;
    henv.vars = vars;
    henv.tables.resize(1);
    std::vector<std::pair<Row, std::vector<AggState>>> kept;
    kept.reserve(in_order.size());
    for (auto& entry : in_order) {
      std::vector<Value> synth;
      synth.reserve(entry.first.size() + plan.spec.aggs.size());
      for (size_t g = 0; g < entry.first.size(); ++g) {
        synth.push_back(entry.first[g]);
      }
      for (size_t i = 0; i < plan.spec.aggs.size(); ++i) {
        synth.push_back(Aggregator::Finalize(plan.spec.aggs[i].func,
                                             entry.second[i]));
      }
      Row hrow{std::move(synth)};
      henv.tables[0] = {"", &hschema, &hrow};
      YT_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*plan.having, henv));
      if (keep) kept.push_back(std::move(entry));
    }
    in_order = std::move(kept);
  }

  QueryResult result;
  for (const SelectItem& item : sel.items) {
    result.column_names.push_back(
        item.alias.empty() ? item.expr->ToString() : item.alias);
  }
  for (auto& [key, states] : in_order) {
    std::vector<Value> out;
    out.reserve(plan.outputs.size());
    for (const AggregateQueryPlan::Output& o : plan.outputs) {
      out.push_back(o.is_agg ? Aggregator::Finalize(
                                   plan.spec.aggs[o.index].func,
                                   states[o.index])
                             : key[o.index]);
    }
    result.rows.emplace_back(std::move(out));
  }

  // ORDER BY must name a select item (by alias or by spelling): grouped
  // output has no other columns to sort on.
  if (!sel.order_by.empty()) {
    std::vector<std::pair<size_t, bool>> sort_keys;
    for (const OrderByItem& item : sel.order_by) {
      const std::string want = item.expr->ToString();
      size_t found = sel.items.size();
      for (size_t i = 0; i < sel.items.size() && found == sel.items.size();
           ++i) {
        if (EqualsIgnoreCase(sel.items[i].expr->ToString(), want) ||
            (!sel.items[i].alias.empty() &&
             EqualsIgnoreCase(sel.items[i].alias, want))) {
          found = i;
        }
      }
      if (found == sel.items.size()) {
        return Status::InvalidArgument(
            "ORDER BY in an aggregate query must name a select item: " +
            want);
      }
      sort_keys.emplace_back(found, item.desc);
    }
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (const auto& [i, desc] : sort_keys) {
                         int c = a[i].Compare(b[i]);
                         if (c != 0) return desc ? c > 0 : c < 0;
                       }
                       return false;
                     });
  }
  if (sel.limit >= 0 &&
      result.rows.size() > static_cast<size_t>(sel.limit)) {
    result.rows.resize(static_cast<size_t>(sel.limit));
  }

  // Host-variable bindings from the first row (NULL when empty), matching
  // the scalar select path.
  if (vars != nullptr) {
    for (size_t i = 0; i < sel.items.size(); ++i) {
      if (!sel.items[i].alias_is_hostvar) continue;
      (*vars)[ToLower(sel.items[i].alias)] =
          result.rows.empty() ? Value::Null() : result.rows[0][i];
    }
  }
  return result;
}

StatusOr<QueryResult> Executor::ExecuteInsert(const InsertStmt& ins,
                                              Transaction* txn, VarEnv* vars) {
  YT_ASSIGN_OR_RETURN(Table * t, tm_->db()->GetTable(ins.table));
  const Schema& schema = t->schema();
  EvalEnv env;
  env.vars = vars;
  QueryResult result;
  for (const auto& exprs : ins.rows) {
    std::vector<Value> vals(schema.num_columns(), Value::Null());
    if (ins.columns.empty()) {
      if (exprs.size() != schema.num_columns()) {
        return Status::InvalidArgument("INSERT arity mismatch for table " +
                                       ins.table);
      }
      for (size_t i = 0; i < exprs.size(); ++i) {
        YT_ASSIGN_OR_RETURN(vals[i], EvalScalar(*exprs[i], env));
      }
    } else {
      if (exprs.size() != ins.columns.size()) {
        return Status::InvalidArgument("INSERT arity mismatch for table " +
                                       ins.table);
      }
      for (size_t i = 0; i < exprs.size(); ++i) {
        YT_ASSIGN_OR_RETURN(size_t col, schema.IndexOf(ins.columns[i]));
        YT_ASSIGN_OR_RETURN(vals[col], EvalScalar(*exprs[i], env));
      }
    }
    YT_ASSIGN_OR_RETURN(RowId rid, tm_->Insert(txn, ins.table,
                                               Row(std::move(vals))));
    (void)rid;
    ++result.affected;
  }
  return result;
}

StatusOr<QueryResult> Executor::ExecuteUpdate(const UpdateStmt& upd,
                                              Transaction* txn, VarEnv* vars) {
  YT_ASSIGN_OR_RETURN(Table * t, tm_->db()->GetTable(upd.table));
  const Schema& schema = t->schema();

  // Candidate rows: X row locks up front through the index when an
  // equality or range conjunct is covered (the key/interval is X-locked
  // BEFORE any row is read, so no S->X upgrade can deadlock two writers
  // scanning the same rows), else the table-X fast path (whole-table lock
  // up front, same reasoning at table granularity). A WHERE with
  // IN-subqueries always takes the fast path: write locks must come BEFORE
  // the subquery scans' S locks for the same reason, and the lock lattice
  // has no SIX to layer row X under a same-table subquery scan.
  std::vector<const Expr*> subqueries;
  CollectSubqueries(upd.where.get(), &subqueries);
  std::vector<TableScope> scope{{upd.table, &schema}};
  YT_ASSIGN_OR_RETURN(AccessPlan plan,
                      Planner::Plan(*t, scope, 0, upd.where.get(), vars));
  std::vector<std::pair<RowId, Row>> candidates;
  if (plan.is_index() && subqueries.empty()) {
    YT_ASSIGN_OR_RETURN(
        candidates,
        tm_->LockRowsForWrite(txn, upd.table, plan.columns, plan.key));
  } else if (plan.is_range() && !plan.range.fully_unbounded() &&
             subqueries.empty()) {
    IndexRangeSpec spec;
    spec.columns = plan.columns;
    spec.range = plan.range;
    YT_ASSIGN_OR_RETURN(candidates,
                        tm_->LockRowsForWriteRange(txn, upd.table, spec));
  } else {
    // Table X + full collection through the engine (a partitioned engine
    // locks and collects on every shard — the catalog table's heap is not
    // the whole relation there).
    YT_ASSIGN_OR_RETURN(candidates,
                        tm_->LockTableAndCollectForWrite(txn, upd.table));
  }

  std::unordered_map<const Expr*, std::unordered_set<Row, RowHash>> in_sets;
  YT_RETURN_IF_ERROR(MaterializeSubqueries(upd.where.get(), txn, vars,
                                           &in_sets));

  std::vector<std::pair<RowId, Row>> matches;
  for (auto& [rid, row] : candidates) {
    EvalEnv env;
    env.vars = vars;
    env.in_sets = &in_sets;
    env.tables.push_back({upd.table, &schema, &row});
    if (upd.where != nullptr) {
      YT_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*upd.where, env));
      if (!keep) continue;
    }
    matches.emplace_back(rid, std::move(row));
  }

  QueryResult result;
  for (auto& [rid, row] : matches) {
    Row updated = row;
    EvalEnv env;
    env.vars = vars;
    env.in_sets = &in_sets;
    env.tables.push_back({upd.table, &schema, &row});
    for (const auto& [col, expr] : upd.sets) {
      YT_ASSIGN_OR_RETURN(size_t i, schema.IndexOf(col));
      YT_ASSIGN_OR_RETURN(updated[i], EvalScalar(*expr, env));
    }
    YT_RETURN_IF_ERROR(tm_->Update(txn, upd.table, rid, updated));
    ++result.affected;
  }
  return result;
}

StatusOr<QueryResult> Executor::ExecuteDelete(const DeleteStmt& del,
                                              Transaction* txn, VarEnv* vars) {
  YT_ASSIGN_OR_RETURN(Table * t, tm_->db()->GetTable(del.table));
  const Schema& schema = t->schema();

  // Same lock-before-subqueries and X-before-read discipline as
  // ExecuteUpdate, including the range-covered path.
  std::vector<const Expr*> subqueries;
  CollectSubqueries(del.where.get(), &subqueries);
  std::vector<TableScope> scope{{del.table, &schema}};
  YT_ASSIGN_OR_RETURN(AccessPlan plan,
                      Planner::Plan(*t, scope, 0, del.where.get(), vars));
  std::vector<std::pair<RowId, Row>> candidates;
  if (plan.is_index() && subqueries.empty()) {
    YT_ASSIGN_OR_RETURN(
        candidates,
        tm_->LockRowsForWrite(txn, del.table, plan.columns, plan.key));
  } else if (plan.is_range() && !plan.range.fully_unbounded() &&
             subqueries.empty()) {
    IndexRangeSpec spec;
    spec.columns = plan.columns;
    spec.range = plan.range;
    YT_ASSIGN_OR_RETURN(candidates,
                        tm_->LockRowsForWriteRange(txn, del.table, spec));
  } else {
    // Same engine-level fallback as ExecuteUpdate.
    YT_ASSIGN_OR_RETURN(candidates,
                        tm_->LockTableAndCollectForWrite(txn, del.table));
  }

  std::unordered_map<const Expr*, std::unordered_set<Row, RowHash>> in_sets;
  YT_RETURN_IF_ERROR(MaterializeSubqueries(del.where.get(), txn, vars,
                                           &in_sets));

  std::vector<RowId> matches;
  for (const auto& [rid, row] : candidates) {
    EvalEnv env;
    env.vars = vars;
    env.in_sets = &in_sets;
    env.tables.push_back({del.table, &schema, &row});
    if (del.where != nullptr) {
      YT_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*del.where, env));
      if (!keep) continue;
    }
    matches.push_back(rid);
  }

  QueryResult result;
  for (RowId rid : matches) {
    YT_RETURN_IF_ERROR(tm_->Delete(txn, del.table, rid));
    ++result.affected;
  }
  return result;
}

StatusOr<QueryResult> Executor::ExecuteSet(const SetStmt& set, VarEnv* vars) {
  if (vars == nullptr) return Status::Internal("no variable environment");
  EvalEnv env;
  env.vars = vars;
  YT_ASSIGN_OR_RETURN(Value v, EvalScalar(*set.value, env));
  (*vars)[ToLower(set.var)] = std::move(v);
  return QueryResult{};
}

namespace {

void PushStat(QueryResult* out, const std::string& name, Value v) {
  Row r;
  r.Append(Value::Str(name));
  r.Append(std::move(v));
  out->rows.push_back(std::move(r));
}

/// The three latency rows SHOW STATS derives from one merged snapshot.
void PushPercentiles(QueryResult* out, const std::string& prefix,
                     const HistogramSnapshot& snap) {
  PushStat(out, prefix + "_p50_micros", Value::Double(snap.p50()));
  PushStat(out, prefix + "_p95_micros", Value::Double(snap.p95()));
  PushStat(out, prefix + "_p99_micros", Value::Double(snap.p99()));
}

}  // namespace

StatusOr<QueryResult> Executor::ExecuteShow(const ShowStmt& show) {
  MetricsRegistry* reg = MetricsRegistry::Global();
  QueryResult out;
  switch (show.what) {
    case ShowStmt::What::kStats: {
      // Curated engine health: headline counters plus commit / statement
      // latency percentiles merged across isolation levels (the per-level
      // histograms share the "txn.commit_micros." prefix — the same merge a
      // cross-shard deployment would do per shard).
      out.column_names = {"stat", "value"};
      for (const char* name :
           {"txn.commits", "txn.aborts", "sql.statements", "lock.waits",
            "lock.deadlocks", "lock.timeouts", "wal.flushes"}) {
        PushStat(&out, name,
                 Value::Int(static_cast<int64_t>(reg->counter(name)->value())));
      }
      PushPercentiles(&out, "commit_latency",
                      reg->MergedHistogram("txn.commit_micros."));
      PushPercentiles(&out, "statement_latency",
                      reg->MergedHistogram("sql.statement_micros"));
      return out;
    }
    case ShowStmt::What::kMetrics: {
      // Everything registered, name-sorted; histograms expand like DumpText.
      out.column_names = {"metric", "value"};
      for (const auto& [name, v] : reg->Counters()) {
        PushStat(&out, name, Value::Int(static_cast<int64_t>(v)));
      }
      for (const auto& [name, v] : reg->Gauges()) {
        PushStat(&out, name, Value::Int(v));
      }
      for (const auto& [name, snap] : reg->Histograms()) {
        PushStat(&out, name + ".count",
                 Value::Int(static_cast<int64_t>(snap.count)));
        PushStat(&out, name + ".sum",
                 Value::Int(static_cast<int64_t>(snap.sum)));
        PushStat(&out, name + ".p50", Value::Double(snap.p50()));
        PushStat(&out, name + ".p95", Value::Double(snap.p95()));
        PushStat(&out, name + ".p99", Value::Double(snap.p99()));
      }
      return out;
    }
    case ShowStmt::What::kSlowQueries: {
      out.column_names = {"sql", "total_micros", "lock_wait_micros",
                          "flush_wait_micros", "trace_id"};
      for (const SlowQueryLog::Entry& e : SlowQueryLog::Global()->Snapshot()) {
        Row r;
        r.Append(Value::Str(e.sql));
        r.Append(Value::Int(e.total_micros));
        r.Append(Value::Int(e.lock_wait_micros));
        r.Append(Value::Int(e.flush_wait_micros));
        r.Append(Value::Int(static_cast<int64_t>(e.trace_id)));
        out.rows.push_back(std::move(r));
      }
      return out;
    }
  }
  return Status::Internal("bad SHOW target");
}

}  // namespace youtopia::sql
