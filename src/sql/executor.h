#ifndef YOUTOPIA_SQL_EXECUTOR_H_
#define YOUTOPIA_SQL_EXECUTOR_H_

#include <string>
#include <vector>

#include "src/sql/ast.h"
#include "src/sql/expr_eval.h"
#include "src/txn/txn_engine.h"

namespace youtopia::sql {

/// Result of a statement: column names plus rows (DML reports affected rows
/// in `affected`, no result rows).
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<Row> rows;
  size_t affected = 0;

  bool empty() const { return rows.empty(); }
  std::string ToString() const;
};

/// Executes classical statements within a transaction: nested-loop SPJ
/// SELECT (table S locks via the transaction manager), DML, DDL, SET.
/// Host-variable semantics follow the paper's examples:
///   * `expr AS @v` binds @v from the first result row;
///   * a bare `@v` select item over a FROM table that has a column named `v`
///     reads the column and binds @v (the §D workload style
///     `SELECT @uid, @hometown FROM User WHERE ...`).
/// Entangled selects and BEGIN/COMMIT/ROLLBACK are out of scope here (the
/// entangled engine and Session own them).
class Executor {
 public:
  explicit Executor(TxnEngine* tm) : tm_(tm) {}

  TxnEngine* tm() const { return tm_; }

  /// Ablation switch for bind-driven index nested-loop joins: when off,
  /// every FROM table is snapshotted eagerly (the pre-probe behavior).
  /// Results must be identical either way — only the access path changes.
  void set_join_probes_enabled(bool on) { join_probes_enabled_ = on; }
  bool join_probes_enabled() const { return join_probes_enabled_; }

  /// Batch pacing for cursor drains; <= 1 switches to the row-at-a-time
  /// Next() loop (differential-test ablation — NextBatch's swap paths may
  /// legitimately exceed any max_rows, so true row-at-a-time needs the
  /// scalar entry point). Results must be identical at any size.
  void set_batch_size(size_t n) { batch_size_ = n; }
  size_t batch_size() const { return batch_size_; }

  StatusOr<QueryResult> Execute(const ParsedStatement& stmt, Transaction* txn,
                                VarEnv* vars);

  StatusOr<QueryResult> ExecuteSelect(const SelectStmt& sel, Transaction* txn,
                                      VarEnv* vars);

 private:
  /// The GROUP BY / aggregate SELECT path: compiles the query to an
  /// engine-level AggregateSpec, folds through TxnEngine::AggregateTable
  /// when the WHERE pushes down completely (per-shard partials on a
  /// Router), else drains a cursor and folds locally under the full WHERE.
  StatusOr<QueryResult> ExecuteSelectAggregate(const SelectStmt& sel,
                                               Transaction* txn, VarEnv* vars);

  /// Drains `cursor` into `rows`, appending. Batched (reusing one RowBatch
  /// and reserving from the cursor's size hint) unless batch_size_ <= 1,
  /// which runs the scalar Next() loop instead.
  Status DrainRows(TableCursor* cursor, std::vector<Row>* rows);

  StatusOr<QueryResult> ExecuteInsert(const InsertStmt& ins, Transaction* txn,
                                      VarEnv* vars);
  StatusOr<QueryResult> ExecuteUpdate(const UpdateStmt& upd, Transaction* txn,
                                      VarEnv* vars);
  StatusOr<QueryResult> ExecuteDelete(const DeleteStmt& del, Transaction* txn,
                                      VarEnv* vars);
  StatusOr<QueryResult> ExecuteSet(const SetStmt& set, VarEnv* vars);
  /// SHOW STATS / METRICS / SLOW QUERIES over the process-global
  /// MetricsRegistry — no transaction involved, reads are racy snapshots.
  StatusOr<QueryResult> ExecuteShow(const ShowStmt& show);

  /// Runs every IN (SELECT...) in `where` and materializes its row set.
  Status MaterializeSubqueries(
      const Expr* where, Transaction* txn, VarEnv* vars,
      std::unordered_map<const Expr*, std::unordered_set<Row, RowHash>>* out);

  TxnEngine* tm_;
  bool join_probes_enabled_ = true;
  size_t batch_size_ = RowBatch::kDefaultRows;
};

}  // namespace youtopia::sql

#endif  // YOUTOPIA_SQL_EXECUTOR_H_
