#include "src/sql/expr_eval.h"

#include "src/common/strings.h"

namespace youtopia::sql {

StatusOr<Value> ResolveColumn(const EvalEnv& env, const std::string& qualifier,
                              const std::string& column) {
  for (const TableBinding& tb : env.tables) {
    if (!qualifier.empty() && !EqualsIgnoreCase(tb.alias, qualifier)) continue;
    auto idx = tb.schema->IndexOf(column);
    if (idx.ok()) return (*tb.row)[idx.value()];
  }
  return Status::NotFound("unresolved column " +
                          (qualifier.empty() ? column
                                             : qualifier + "." + column));
}

namespace {

StatusOr<Value> EvalBinary(const Expr& e, const EvalEnv& env) {
  // AND/OR get short-circuit evaluation with SQL-ish truthiness.
  if (e.op == "AND") {
    YT_ASSIGN_OR_RETURN(Value l, EvalScalar(*e.lhs, env));
    if (!l.Truthy()) return Value::Bool(false);
    YT_ASSIGN_OR_RETURN(Value r, EvalScalar(*e.rhs, env));
    return Value::Bool(r.Truthy());
  }
  if (e.op == "OR") {
    YT_ASSIGN_OR_RETURN(Value l, EvalScalar(*e.lhs, env));
    if (l.Truthy()) return Value::Bool(true);
    YT_ASSIGN_OR_RETURN(Value r, EvalScalar(*e.rhs, env));
    return Value::Bool(r.Truthy());
  }
  YT_ASSIGN_OR_RETURN(Value l, EvalScalar(*e.lhs, env));
  YT_ASSIGN_OR_RETURN(Value r, EvalScalar(*e.rhs, env));
  if (e.op == "+") return Value::Add(l, r);
  if (e.op == "-") return Value::Sub(l, r);
  if (e.op == "*") return Value::Mul(l, r);
  if (e.op == "/") return Value::Div(l, r);
  if (e.op == "%") {
    if (!l.is_int() || !r.is_int() || r.as_int() == 0) {
      return Status::InvalidArgument("'%' requires nonzero integers");
    }
    return Value::Int(l.as_int() % r.as_int());
  }
  // Comparisons: SQL semantics — comparing with NULL yields NULL (false).
  if (l.is_null() || r.is_null()) return Value::Null();
  int c = l.Compare(r);
  if (e.op == "=") return Value::Bool(c == 0);
  if (e.op == "<>" || e.op == "!=") return Value::Bool(c != 0);
  if (e.op == "<") return Value::Bool(c < 0);
  if (e.op == "<=") return Value::Bool(c <= 0);
  if (e.op == ">") return Value::Bool(c > 0);
  if (e.op == ">=") return Value::Bool(c >= 0);
  return Status::InvalidArgument("unknown operator " + e.op);
}

}  // namespace

StatusOr<Value> EvalScalar(const Expr& e, const EvalEnv& env) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef:
      return ResolveColumn(env, e.qualifier, e.column);
    case ExprKind::kHostVar: {
      if (env.vars == nullptr) return Value::Null();
      auto it = env.vars->find(ToLower(e.var));
      if (it == env.vars->end()) return Value::Null();
      return it->second;
    }
    case ExprKind::kBinary:
      return EvalBinary(e, env);
    case ExprKind::kNot: {
      YT_ASSIGN_OR_RETURN(Value v, EvalScalar(*e.lhs, env));
      return Value::Bool(!v.Truthy());
    }
    case ExprKind::kTuple:
      return Status::InvalidArgument(
          "tuple expression only valid as the left side of IN");
    case ExprKind::kInSubquery: {
      if (env.in_sets == nullptr) {
        return Status::Internal("IN subquery set not materialized");
      }
      auto it = env.in_sets->find(&e);
      if (it == env.in_sets->end()) {
        return Status::Internal("IN subquery set missing for node");
      }
      std::vector<Value> vals;
      vals.reserve(e.tuple.size());
      for (const ExprPtr& item : e.tuple) {
        YT_ASSIGN_OR_RETURN(Value v, EvalScalar(*item, env));
        vals.push_back(std::move(v));
      }
      return Value::Bool(it->second.count(Row(std::move(vals))) > 0);
    }
    case ExprKind::kInAnswer:
      return Status::InvalidArgument(
          "IN ANSWER is only valid inside an entangled query");
    case ExprKind::kAggregate:
      return Status::InvalidArgument(
          "aggregate " + e.op +
          "() is only valid as a SELECT item of an aggregate query");
  }
  return Status::Internal("bad expression kind");
}

StatusOr<bool> EvalPredicate(const Expr& e, const EvalEnv& env) {
  YT_ASSIGN_OR_RETURN(Value v, EvalScalar(e, env));
  return v.Truthy();
}

void CollectSubqueries(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kInSubquery) out->push_back(e);
  CollectSubqueries(e->lhs.get(), out);
  CollectSubqueries(e->rhs.get(), out);
  for (const ExprPtr& t : e->tuple) CollectSubqueries(t.get(), out);
}

}  // namespace youtopia::sql
