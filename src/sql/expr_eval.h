#ifndef YOUTOPIA_SQL_EXPR_EVAL_H_
#define YOUTOPIA_SQL_EXPR_EVAL_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/row.h"
#include "src/common/schema.h"
#include "src/common/statusor.h"
#include "src/sql/ast.h"

namespace youtopia::sql {

/// Host-variable environment: lower-cased name -> value.
using VarEnv = std::unordered_map<std::string, Value>;

/// One table's row bound into scope during evaluation.
struct TableBinding {
  std::string alias;     ///< FROM alias (case-insensitive match)
  const Schema* schema;  ///< column names
  const Row* row;        ///< current row
};

/// Evaluation environment for one candidate joined row.
struct EvalEnv {
  std::vector<TableBinding> tables;
  const VarEnv* vars = nullptr;
  /// Materialized IN (SELECT ...) sets, keyed by the kInSubquery node.
  const std::unordered_map<const Expr*, std::unordered_set<Row, RowHash>>*
      in_sets = nullptr;
};

/// Resolves a column reference against the bound tables; the first match in
/// FROM order wins when no qualifier is given.
StatusOr<Value> ResolveColumn(const EvalEnv& env, const std::string& qualifier,
                              const std::string& column);

/// Evaluates a scalar expression. kInSubquery membership requires env.in_sets
/// to contain the materialized set; kInAnswer is only meaningful inside the
/// entangled evaluator and errors here.
StatusOr<Value> EvalScalar(const Expr& e, const EvalEnv& env);

/// SQL truthiness of EvalScalar.
StatusOr<bool> EvalPredicate(const Expr& e, const EvalEnv& env);

/// Collects every kInSubquery node under `e` (for pre-materialization).
void CollectSubqueries(const Expr* e, std::vector<const Expr*>* out);

}  // namespace youtopia::sql

#endif  // YOUTOPIA_SQL_EXPR_EVAL_H_
