#include "src/sql/lexer.h"

#include <cctype>

namespace youtopia::sql {

StatusOr<std::vector<Token>> Lex(const std::string& in) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = in.size();
  while (i < n) {
    char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && in[i + 1] == '-') {
      while (i < n && in[i] != '\n') ++i;
      continue;
    }
    Token t;
    t.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(in[j])) ||
                       in[j] == '_')) {
        ++j;
      }
      t.kind = TokenKind::kIdent;
      t.text = in.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(in[j])) ||
                       in[j] == '.')) {
        if (in[j] == '.') {
          // Two dots => not part of this number.
          if (is_double) break;
          is_double = true;
        }
        ++j;
      }
      std::string num = in.substr(i, j - i);
      t.kind = TokenKind::kNumber;
      if (is_double) {
        t.literal = Value::Double(std::stod(num));
      } else {
        t.literal = Value::Int(std::stoll(num));
      }
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string s;
      bool closed = false;
      while (j < n) {
        if (in[j] == '\'') {
          if (j + 1 < n && in[j + 1] == '\'') {
            s.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        s.push_back(in[j]);
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(i));
      }
      t.kind = TokenKind::kString;
      t.literal = Value::Str(std::move(s));
      i = j;
    } else if (c == '@') {
      size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(in[j])) ||
                       in[j] == '_')) {
        ++j;
      }
      if (j == i + 1) {
        return Status::InvalidArgument("empty host variable name at offset " +
                                       std::to_string(i));
      }
      t.kind = TokenKind::kHostVar;
      t.text = in.substr(i + 1, j - i - 1);
      i = j;
    } else {
      // Multi-char operators first.
      static const char* two_char[] = {"<=", ">=", "<>", "!=", ":="};
      bool matched = false;
      for (const char* op : two_char) {
        if (c == op[0] && i + 1 < n && in[i + 1] == op[1]) {
          t.kind = TokenKind::kSymbol;
          t.text = op;
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        static const std::string singles = "(),;*=<>+-/.%";
        if (singles.find(c) == std::string::npos) {
          return Status::InvalidArgument(std::string("unexpected character '") +
                                         c + "' at offset " +
                                         std::to_string(i));
        }
        t.kind = TokenKind::kSymbol;
        t.text = std::string(1, c);
        ++i;
      }
    }
    out.push_back(std::move(t));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  out.push_back(end);
  return out;
}

}  // namespace youtopia::sql
