#ifndef YOUTOPIA_SQL_LEXER_H_
#define YOUTOPIA_SQL_LEXER_H_

#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/common/value.h"

namespace youtopia::sql {

enum class TokenKind {
  kIdent,    ///< identifier or keyword (matched case-insensitively)
  kNumber,   ///< integer or double literal
  kString,   ///< 'single quoted'
  kHostVar,  ///< @name
  kSymbol,   ///< punctuation / operator, in `text`
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   ///< identifier/symbol text (original case for idents)
  Value literal;      ///< for kNumber / kString
  size_t offset = 0;  ///< byte offset for error messages
};

/// Tokenizes a SQL statement. Supports `--` line comments, single-quoted
/// strings with '' escapes, @host variables, and the multi-char operators
/// <= >= <> !=.
StatusOr<std::vector<Token>> Lex(const std::string& input);

}  // namespace youtopia::sql

#endif  // YOUTOPIA_SQL_LEXER_H_
