#include "src/sql/parser.h"

#include "src/common/strings.h"

namespace youtopia::sql {

namespace {

ExprPtr MakeBinary(std::string op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = std::move(op);
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

/// Deep copy of a scalar expression (BETWEEN desugars `e BETWEEN a AND b`
/// into `e >= a AND e <= b`, which needs `e` twice). Subquery nodes cannot
/// appear in a BETWEEN operand, so they are not cloned.
StatusOr<ExprPtr> CloneExpr(const Expr& e) {
  if (e.subquery != nullptr) {
    return Status::InvalidArgument("subquery not allowed in BETWEEN operand");
  }
  auto c = std::make_unique<Expr>();
  c->kind = e.kind;
  c->literal = e.literal;
  c->qualifier = e.qualifier;
  c->column = e.column;
  c->var = e.var;
  c->op = e.op;
  c->answer_relation = e.answer_relation;
  if (e.lhs != nullptr) {
    YT_ASSIGN_OR_RETURN(c->lhs, CloneExpr(*e.lhs));
  }
  if (e.rhs != nullptr) {
    YT_ASSIGN_OR_RETURN(c->rhs, CloneExpr(*e.rhs));
  }
  for (const ExprPtr& t : e.tuple) {
    YT_ASSIGN_OR_RETURN(ExprPtr ct, CloneExpr(*t));
    c->tuple.push_back(std::move(ct));
  }
  return c;
}

/// Multiplier for BEGIN TRANSACTION WITH TIMEOUT <n> <unit>, in micros.
StatusOr<int64_t> TimeoutUnitMicros(const std::string& unit) {
  std::string u = ToUpper(unit);
  if (!u.empty() && u.back() == 'S') u.pop_back();  // DAYS -> DAY
  if (u == "MICROSECOND") return int64_t{1};
  if (u == "MILLISECOND") return int64_t{1000};
  if (u == "SECOND") return int64_t{1000} * 1000;
  if (u == "MINUTE") return int64_t{60} * 1000 * 1000;
  if (u == "HOUR") return int64_t{3600} * 1000 * 1000;
  if (u == "DAY") return int64_t{86400} * 1000 * 1000;
  return Status::InvalidArgument("unknown timeout unit: " + unit);
}

}  // namespace

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= toks_.size()) i = toks_.size() - 1;
  return toks_[i];
}

const Token& Parser::Advance() {
  const Token& t = toks_[pos_];
  if (pos_ + 1 < toks_.size()) ++pos_;
  return t;
}

bool Parser::PeekIdent(const char* kw, size_t ahead) const {
  const Token& t = Peek(ahead);
  return t.kind == TokenKind::kIdent && EqualsIgnoreCase(t.text, kw);
}

bool Parser::MatchIdent(const char* kw) {
  if (PeekIdent(kw)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectIdent(const char* kw) {
  if (MatchIdent(kw)) return Status::Ok();
  return ErrorHere(std::string("expected ") + kw);
}

bool Parser::MatchSymbol(const char* sym) {
  const Token& t = Peek();
  if (t.kind == TokenKind::kSymbol && t.text == sym) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectSymbol(const char* sym) {
  if (MatchSymbol(sym)) return Status::Ok();
  return ErrorHere(std::string("expected '") + sym + "'");
}

Status Parser::ErrorHere(const std::string& msg) const {
  const Token& t = Peek();
  std::string got = t.kind == TokenKind::kEnd ? "<end>" : t.text;
  if (t.kind == TokenKind::kNumber || t.kind == TokenKind::kString) {
    got = t.literal.ToString();
  }
  return Status::InvalidArgument(msg + " at offset " +
                                 std::to_string(t.offset) + ", got '" + got +
                                 "'");
}

StatusOr<ParsedStatement> Parser::ParseStatement(const std::string& text) {
  YT_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(text));
  Parser p(std::move(toks));
  YT_ASSIGN_OR_RETURN(ParsedStatement stmt, p.ParseOne());
  p.MatchSymbol(";");
  if (!p.AtEnd()) return p.ErrorHere("trailing input after statement");
  return stmt;
}

StatusOr<std::vector<ParsedStatement>> Parser::ParseScript(
    const std::string& text) {
  YT_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(text));
  Parser p(std::move(toks));
  std::vector<ParsedStatement> out;
  while (!p.AtEnd()) {
    if (p.MatchSymbol(";")) continue;
    YT_ASSIGN_OR_RETURN(ParsedStatement stmt, p.ParseOne());
    out.push_back(std::move(stmt));
    if (!p.AtEnd()) {
      YT_RETURN_IF_ERROR(p.ExpectSymbol(";"));
    }
  }
  return out;
}

StatusOr<ParsedStatement> Parser::ParseOne() {
  if (PeekIdent("SELECT")) return ParseSelectLike();
  if (PeekIdent("INSERT")) return ParseInsert();
  if (PeekIdent("UPDATE")) return ParseUpdate();
  if (PeekIdent("DELETE")) return ParseDelete();
  if (PeekIdent("CREATE")) return ParseCreate();
  if (PeekIdent("BEGIN")) return ParseBegin();
  if (PeekIdent("SET")) return ParseSet();
  if (PeekIdent("SHOW")) return ParseShow();
  if (MatchIdent("COMMIT")) {
    ParsedStatement s;
    s.kind = StatementKind::kCommit;
    return s;
  }
  if (MatchIdent("ROLLBACK")) {
    ParsedStatement s;
    s.kind = StatementKind::kRollback;
    return s;
  }
  return ErrorHere("expected a statement");
}

StatusOr<std::vector<SelectItem>> Parser::ParseSelectItems() {
  std::vector<SelectItem> items;
  do {
    SelectItem item;
    YT_ASSIGN_OR_RETURN(item.expr, ParseAdditive());
    if (MatchIdent("AS")) {
      const Token& t = Peek();
      if (t.kind == TokenKind::kHostVar) {
        item.alias = t.text;
        item.alias_is_hostvar = true;
        Advance();
      } else if (t.kind == TokenKind::kIdent) {
        item.alias = t.text;
        Advance();
      } else {
        return ErrorHere("expected alias after AS");
      }
    }
    items.push_back(std::move(item));
  } while (MatchSymbol(","));
  return items;
}

StatusOr<std::vector<TableRef>> Parser::ParseFromList() {
  std::vector<TableRef> from;
  do {
    const Token& t = Peek();
    if (t.kind != TokenKind::kIdent) return ErrorHere("expected table name");
    TableRef ref;
    ref.table = t.text;
    ref.alias = t.text;
    Advance();
    (void)MatchIdent("AS");
    const Token& a = Peek();
    // An alias must be a plain identifier that is not a clause keyword.
    if (a.kind == TokenKind::kIdent && !PeekIdent("WHERE") &&
        !PeekIdent("LIMIT") && !PeekIdent("CHOOSE") && !PeekIdent("ORDER") &&
        !PeekIdent("GROUP") && !PeekIdent("HAVING")) {
      ref.alias = a.text;
      Advance();
    }
    from.push_back(std::move(ref));
  } while (MatchSymbol(","));
  return from;
}

StatusOr<ParsedStatement> Parser::ParseSelectLike() {
  YT_RETURN_IF_ERROR(ExpectIdent("SELECT"));
  YT_ASSIGN_OR_RETURN(std::vector<SelectItem> items, ParseSelectItems());

  // INTO ANSWER => entangled query.
  if (MatchIdent("INTO")) {
    YT_RETURN_IF_ERROR(ExpectIdent("ANSWER"));
    auto ent = std::make_unique<EntangledSelectStmt>();
    ent->items = std::move(items);
    const Token& r0 = Peek();
    if (r0.kind != TokenKind::kIdent) {
      return ErrorHere("expected answer relation name");
    }
    ent->answer_relations.push_back(r0.text);
    Advance();
    while (MatchSymbol(",")) {
      YT_RETURN_IF_ERROR(ExpectIdent("ANSWER"));
      const Token& rn = Peek();
      if (rn.kind != TokenKind::kIdent) {
        return ErrorHere("expected answer relation name");
      }
      ent->answer_relations.push_back(rn.text);
      Advance();
    }
    if (MatchIdent("WHERE")) {
      YT_ASSIGN_OR_RETURN(ent->where, ParseOr());
    }
    YT_RETURN_IF_ERROR(ExpectIdent("CHOOSE"));
    const Token& n = Peek();
    if (n.kind != TokenKind::kNumber || !n.literal.is_int()) {
      return ErrorHere("expected integer after CHOOSE");
    }
    ent->choose = n.literal.as_int();
    Advance();
    ParsedStatement s;
    s.kind = StatementKind::kEntangledSelect;
    s.entangled = std::move(ent);
    return s;
  }

  auto sel = std::make_unique<SelectStmt>();
  sel->items = std::move(items);
  if (MatchIdent("FROM")) {
    YT_ASSIGN_OR_RETURN(sel->from, ParseFromList());
  }
  if (MatchIdent("WHERE")) {
    YT_ASSIGN_OR_RETURN(sel->where, ParseOr());
  }
  YT_RETURN_IF_ERROR(ParseOrderLimit(sel.get()));
  ParsedStatement s;
  s.kind = StatementKind::kSelect;
  s.select = std::move(sel);
  return s;
}

Status Parser::ParseOrderLimit(SelectStmt* sel) {
  if (MatchIdent("GROUP")) {
    YT_RETURN_IF_ERROR(ExpectIdent("BY"));
    do {
      YT_ASSIGN_OR_RETURN(ExprPtr key, ParseAdditive());
      sel->group_by.push_back(std::move(key));
    } while (MatchSymbol(","));
  }
  if (MatchIdent("HAVING")) {
    if (sel->group_by.empty()) {
      return ErrorHere("HAVING requires GROUP BY");
    }
    YT_ASSIGN_OR_RETURN(sel->having, ParseOr());
  }
  if (MatchIdent("ORDER")) {
    YT_RETURN_IF_ERROR(ExpectIdent("BY"));
    do {
      OrderByItem item;
      YT_ASSIGN_OR_RETURN(item.expr, ParseAdditive());
      if (MatchIdent("DESC")) {
        item.desc = true;
      } else {
        (void)MatchIdent("ASC");
      }
      sel->order_by.push_back(std::move(item));
    } while (MatchSymbol(","));
  }
  if (MatchIdent("LIMIT")) {
    const Token& n = Peek();
    if (n.kind != TokenKind::kNumber || !n.literal.is_int()) {
      return ErrorHere("expected integer after LIMIT");
    }
    sel->limit = n.literal.as_int();
    Advance();
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<SelectStmt>> Parser::ParseSubquerySelect() {
  YT_RETURN_IF_ERROR(ExpectIdent("SELECT"));
  auto sel = std::make_unique<SelectStmt>();
  YT_ASSIGN_OR_RETURN(sel->items, ParseSelectItems());
  if (MatchIdent("FROM")) {
    YT_ASSIGN_OR_RETURN(sel->from, ParseFromList());
  }
  if (MatchIdent("WHERE")) {
    YT_ASSIGN_OR_RETURN(sel->where, ParseOr());
  }
  YT_RETURN_IF_ERROR(ParseOrderLimit(sel.get()));
  return sel;
}

StatusOr<ParsedStatement> Parser::ParseInsert() {
  YT_RETURN_IF_ERROR(ExpectIdent("INSERT"));
  YT_RETURN_IF_ERROR(ExpectIdent("INTO"));
  const Token& t = Peek();
  if (t.kind != TokenKind::kIdent) return ErrorHere("expected table name");
  auto ins = std::make_unique<InsertStmt>();
  ins->table = t.text;
  Advance();
  if (MatchSymbol("(")) {
    do {
      const Token& c = Peek();
      if (c.kind != TokenKind::kIdent) return ErrorHere("expected column");
      ins->columns.push_back(c.text);
      Advance();
    } while (MatchSymbol(","));
    YT_RETURN_IF_ERROR(ExpectSymbol(")"));
  }
  YT_RETURN_IF_ERROR(ExpectIdent("VALUES"));
  do {
    YT_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<ExprPtr> row;
    do {
      YT_ASSIGN_OR_RETURN(ExprPtr e, ParseAdditive());
      row.push_back(std::move(e));
    } while (MatchSymbol(","));
    YT_RETURN_IF_ERROR(ExpectSymbol(")"));
    ins->rows.push_back(std::move(row));
  } while (MatchSymbol(","));
  ParsedStatement s;
  s.kind = StatementKind::kInsert;
  s.insert = std::move(ins);
  return s;
}

StatusOr<ParsedStatement> Parser::ParseUpdate() {
  YT_RETURN_IF_ERROR(ExpectIdent("UPDATE"));
  const Token& t = Peek();
  if (t.kind != TokenKind::kIdent) return ErrorHere("expected table name");
  auto upd = std::make_unique<UpdateStmt>();
  upd->table = t.text;
  Advance();
  YT_RETURN_IF_ERROR(ExpectIdent("SET"));
  do {
    const Token& c = Peek();
    if (c.kind != TokenKind::kIdent) return ErrorHere("expected column");
    std::string col = c.text;
    Advance();
    YT_RETURN_IF_ERROR(ExpectSymbol("="));
    YT_ASSIGN_OR_RETURN(ExprPtr e, ParseAdditive());
    upd->sets.emplace_back(std::move(col), std::move(e));
  } while (MatchSymbol(","));
  if (MatchIdent("WHERE")) {
    YT_ASSIGN_OR_RETURN(upd->where, ParseOr());
  }
  ParsedStatement s;
  s.kind = StatementKind::kUpdate;
  s.update = std::move(upd);
  return s;
}

StatusOr<ParsedStatement> Parser::ParseDelete() {
  YT_RETURN_IF_ERROR(ExpectIdent("DELETE"));
  YT_RETURN_IF_ERROR(ExpectIdent("FROM"));
  const Token& t = Peek();
  if (t.kind != TokenKind::kIdent) return ErrorHere("expected table name");
  auto del = std::make_unique<DeleteStmt>();
  del->table = t.text;
  Advance();
  if (MatchIdent("WHERE")) {
    YT_ASSIGN_OR_RETURN(del->where, ParseOr());
  }
  ParsedStatement s;
  s.kind = StatementKind::kDelete;
  s.del = std::move(del);
  return s;
}

StatusOr<ParsedStatement> Parser::ParseCreate() {
  YT_RETURN_IF_ERROR(ExpectIdent("CREATE"));
  bool unique = MatchIdent("UNIQUE");
  if (MatchIdent("INDEX")) {
    YT_RETURN_IF_ERROR(ExpectIdent("ON"));
    const Token& t = Peek();
    if (t.kind != TokenKind::kIdent) return ErrorHere("expected table name");
    auto ci = std::make_unique<CreateIndexStmt>();
    ci->table = t.text;
    ci->unique = unique;
    Advance();
    YT_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      const Token& c = Peek();
      if (c.kind != TokenKind::kIdent) return ErrorHere("expected column");
      ci->columns.push_back(c.text);
      Advance();
    } while (MatchSymbol(","));
    YT_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (MatchIdent("USING")) {
      if (MatchIdent("ORDERED")) {
        ci->ordered = true;
      } else if (!MatchIdent("HASH")) {
        return ErrorHere("expected ORDERED or HASH after USING");
      }
    }
    ParsedStatement s;
    s.kind = StatementKind::kCreateIndex;
    s.create_index = std::move(ci);
    return s;
  }
  if (unique) return ErrorHere("expected INDEX after CREATE UNIQUE");
  YT_RETURN_IF_ERROR(ExpectIdent("TABLE"));
  const Token& t = Peek();
  if (t.kind != TokenKind::kIdent) return ErrorHere("expected table name");
  auto ct = std::make_unique<CreateTableStmt>();
  ct->table = t.text;
  Advance();
  YT_RETURN_IF_ERROR(ExpectSymbol("("));
  std::vector<Column> cols;
  std::vector<std::string> pk;
  bool pk_ordered = false;
  do {
    // Table-level PRIMARY KEY (a, b) [USING ORDERED] constraint.
    if (PeekIdent("PRIMARY")) {
      Advance();
      YT_RETURN_IF_ERROR(ExpectIdent("KEY"));
      YT_RETURN_IF_ERROR(ExpectSymbol("("));
      do {
        const Token& k = Peek();
        if (k.kind != TokenKind::kIdent) return ErrorHere("expected column");
        pk.push_back(k.text);
        Advance();
      } while (MatchSymbol(","));
      YT_RETURN_IF_ERROR(ExpectSymbol(")"));
      if (MatchIdent("USING")) {
        if (MatchIdent("ORDERED")) {
          pk_ordered = true;
        } else if (!MatchIdent("HASH")) {
          return ErrorHere("expected ORDERED or HASH after USING");
        }
      }
      continue;
    }
    const Token& c = Peek();
    if (c.kind != TokenKind::kIdent) return ErrorHere("expected column name");
    Column col;
    col.name = c.text;
    Advance();
    const Token& ty = Peek();
    if (ty.kind != TokenKind::kIdent) return ErrorHere("expected column type");
    YT_ASSIGN_OR_RETURN(col.type, TypeFromName(ty.text));
    Advance();
    // Swallow optional length suffix: VARCHAR(32).
    if (MatchSymbol("(")) {
      while (!AtEnd() && !MatchSymbol(")")) Advance();
    }
    // Column-level PRIMARY KEY marker.
    if (MatchIdent("PRIMARY")) {
      YT_RETURN_IF_ERROR(ExpectIdent("KEY"));
      pk.push_back(col.name);
    }
    cols.push_back(std::move(col));
  } while (MatchSymbol(","));
  YT_RETURN_IF_ERROR(ExpectSymbol(")"));
  ct->schema = Schema(std::move(cols));
  if (!pk.empty()) {
    YT_RETURN_IF_ERROR(ct->schema.SetPrimaryKeyByName(pk));
    ct->schema.set_pk_ordered(pk_ordered);
  }
  ParsedStatement s;
  s.kind = StatementKind::kCreateTable;
  s.create_table = std::move(ct);
  return s;
}

StatusOr<ParsedStatement> Parser::ParseBegin() {
  YT_RETURN_IF_ERROR(ExpectIdent("BEGIN"));
  (void)MatchIdent("TRANSACTION");
  auto b = std::make_unique<BeginStmt>();
  if (MatchIdent("WITH")) {
    YT_RETURN_IF_ERROR(ExpectIdent("TIMEOUT"));
    const Token& n = Peek();
    if (n.kind != TokenKind::kNumber || !n.literal.is_int()) {
      return ErrorHere("expected integer timeout");
    }
    int64_t amount = n.literal.as_int();
    Advance();
    const Token& unit = Peek();
    if (unit.kind != TokenKind::kIdent) {
      return ErrorHere("expected timeout unit");
    }
    YT_ASSIGN_OR_RETURN(int64_t mult, TimeoutUnitMicros(unit.text));
    Advance();
    b->timeout_micros = amount * mult;
  }
  ParsedStatement s;
  s.kind = StatementKind::kBegin;
  s.begin = std::move(b);
  return s;
}

StatusOr<ParsedStatement> Parser::ParseSet() {
  YT_RETURN_IF_ERROR(ExpectIdent("SET"));
  const Token& v = Peek();
  if (v.kind != TokenKind::kHostVar) {
    return ErrorHere("expected @variable after SET");
  }
  auto set = std::make_unique<SetStmt>();
  set->var = v.text;
  Advance();
  if (!MatchSymbol("=") && !MatchSymbol(":=")) {
    return ErrorHere("expected '=' in SET");
  }
  YT_ASSIGN_OR_RETURN(set->value, ParseAdditive());
  ParsedStatement s;
  s.kind = StatementKind::kSet;
  s.set = std::move(set);
  return s;
}

StatusOr<ParsedStatement> Parser::ParseShow() {
  YT_RETURN_IF_ERROR(ExpectIdent("SHOW"));
  auto show = std::make_unique<ShowStmt>();
  if (MatchIdent("STATS")) {
    show->what = ShowStmt::What::kStats;
  } else if (MatchIdent("METRICS")) {
    show->what = ShowStmt::What::kMetrics;
  } else if (MatchIdent("SLOW")) {
    YT_RETURN_IF_ERROR(ExpectIdent("QUERIES"));
    show->what = ShowStmt::What::kSlowQueries;
  } else {
    return ErrorHere("expected STATS, METRICS, or SLOW QUERIES after SHOW");
  }
  ParsedStatement s;
  s.kind = StatementKind::kShow;
  s.show = std::move(show);
  return s;
}

StatusOr<ExprPtr> Parser::ParseOr() {
  YT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (MatchIdent("OR")) {
    YT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = MakeBinary("OR", std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<ExprPtr> Parser::ParseAnd() {
  YT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseConjunct());
  while (MatchIdent("AND")) {
    YT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseConjunct());
    lhs = MakeBinary("AND", std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<ExprPtr> Parser::ParseConjunct() {
  if (MatchIdent("NOT")) {
    YT_ASSIGN_OR_RETURN(ExprPtr inner, ParseConjunct());
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kNot;
    e->lhs = std::move(inner);
    return e;
  }
  YT_ASSIGN_OR_RETURN(ExprPtr first, ParseAdditive());

  // The paper's bare tuple form: `fno, fdate IN (SELECT ...)`.
  if (allow_bare_tuple_ && Peek().kind == TokenKind::kSymbol &&
      Peek().text == "," && first->kind != ExprKind::kTuple) {
    auto tup = std::make_unique<Expr>();
    tup->kind = ExprKind::kTuple;
    tup->tuple.push_back(std::move(first));
    while (MatchSymbol(",")) {
      YT_ASSIGN_OR_RETURN(ExprPtr e, ParseAdditive());
      tup->tuple.push_back(std::move(e));
    }
    if (!PeekIdent("IN")) {
      return ErrorHere("expected IN after bare tuple in WHERE");
    }
    first = std::move(tup);
  }

  if (MatchIdent("IN")) {
    return ParseInTail(std::move(first));
  }
  return ParseComparisonTail(std::move(first));
}

StatusOr<ExprPtr> Parser::ParseInTail(ExprPtr lhs) {
  // Normalize LHS to a tuple list.
  std::vector<ExprPtr> lhs_items;
  if (lhs->kind == ExprKind::kTuple) {
    lhs_items = std::move(lhs->tuple);
  } else {
    lhs_items.push_back(std::move(lhs));
  }
  if (MatchIdent("ANSWER")) {
    const Token& r = Peek();
    if (r.kind != TokenKind::kIdent) {
      return ErrorHere("expected answer relation name");
    }
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kInAnswer;
    e->tuple = std::move(lhs_items);
    e->answer_relation = r.text;
    Advance();
    return e;
  }
  YT_RETURN_IF_ERROR(ExpectSymbol("("));
  if (!PeekIdent("SELECT")) {
    return ErrorHere("expected SELECT subquery after IN (");
  }
  YT_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sub, ParseSubquerySelect());
  YT_RETURN_IF_ERROR(ExpectSymbol(")"));
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kInSubquery;
  e->tuple = std::move(lhs_items);
  e->subquery = std::move(sub);
  return e;
}

StatusOr<ExprPtr> Parser::ParseComparisonTail(ExprPtr lhs) {
  if (MatchIdent("BETWEEN")) {
    // `e BETWEEN a AND b` desugars to `e >= a AND e <= b`, so the planner's
    // range extraction sees two ordinary sargable conjuncts.
    YT_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    YT_RETURN_IF_ERROR(ExpectIdent("AND"));
    YT_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    YT_ASSIGN_OR_RETURN(ExprPtr lhs_copy, CloneExpr(*lhs));
    return MakeBinary(
        "AND", MakeBinary(">=", std::move(lhs), std::move(lo)),
        MakeBinary("<=", std::move(lhs_copy), std::move(hi)));
  }
  static const char* cmps[] = {"=", "<>", "!=", "<=", ">=", "<", ">"};
  for (const char* op : cmps) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == op) {
      Advance();
      YT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      return MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }
  return lhs;
}

StatusOr<ExprPtr> Parser::ParseAdditive() {
  YT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  for (;;) {
    if (Peek().kind == TokenKind::kSymbol &&
        (Peek().text == "+" || Peek().text == "-")) {
      std::string op = Advance().text;
      YT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

StatusOr<ExprPtr> Parser::ParseMultiplicative() {
  YT_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePrimary());
  for (;;) {
    if (Peek().kind == TokenKind::kSymbol &&
        (Peek().text == "*" || Peek().text == "/" || Peek().text == "%")) {
      std::string op = Advance().text;
      YT_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePrimary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

StatusOr<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kNumber:
    case TokenKind::kString: {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kLiteral;
      e->literal = t.literal;
      Advance();
      return e;
    }
    case TokenKind::kHostVar: {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kHostVar;
      e->var = t.text;
      Advance();
      return e;
    }
    case TokenKind::kIdent: {
      if (MatchIdent("NULL")) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kLiteral;
        e->literal = Value::Null();
        return e;
      }
      if (MatchIdent("TRUE")) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kLiteral;
        e->literal = Value::Bool(true);
        return e;
      }
      if (MatchIdent("FALSE")) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kLiteral;
        e->literal = Value::Bool(false);
        return e;
      }
      // Aggregate call: COUNT/SUM/MIN/MAX/AVG followed by '('. Plain
      // identifiers with those names stay column refs (no paren follows).
      static const char* agg_names[] = {"COUNT", "SUM", "MIN", "MAX", "AVG"};
      for (const char* fn : agg_names) {
        if (EqualsIgnoreCase(t.text, fn) &&
            Peek(1).kind == TokenKind::kSymbol && Peek(1).text == "(") {
          Advance();  // function name
          Advance();  // '('
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kAggregate;
          e->op = fn;
          if (Peek().kind == TokenKind::kSymbol && Peek().text == "*") {
            if (!EqualsIgnoreCase(fn, "COUNT")) {
              return ErrorHere("'*' argument is only valid in COUNT(*)");
            }
            Advance();
          } else {
            YT_ASSIGN_OR_RETURN(e->lhs, ParseAdditive());
          }
          YT_RETURN_IF_ERROR(ExpectSymbol(")"));
          return e;
        }
      }
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kColumnRef;
      e->column = t.text;
      Advance();
      if (MatchSymbol(".")) {
        const Token& c = Peek();
        if (c.kind != TokenKind::kIdent) {
          return ErrorHere("expected column after '.'");
        }
        e->qualifier = e->column;
        e->column = c.text;
        Advance();
      }
      return e;
    }
    case TokenKind::kSymbol: {
      if (t.text == "-") {
        Advance();
        YT_ASSIGN_OR_RETURN(ExprPtr inner, ParsePrimary());
        auto zero = std::make_unique<Expr>();
        zero->kind = ExprKind::kLiteral;
        zero->literal = Value::Int(0);
        return MakeBinary("-", std::move(zero), std::move(inner));
      }
      if (t.text == "(") {
        Advance();
        bool saved = allow_bare_tuple_;
        allow_bare_tuple_ = false;
        auto parse_parenthesized = [&]() -> StatusOr<ExprPtr> {
          YT_ASSIGN_OR_RETURN(ExprPtr first, ParseOr());
          if (MatchSymbol(",")) {
            auto tup = std::make_unique<Expr>();
            tup->kind = ExprKind::kTuple;
            tup->tuple.push_back(std::move(first));
            do {
              YT_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
              tup->tuple.push_back(std::move(e));
            } while (MatchSymbol(","));
            YT_RETURN_IF_ERROR(ExpectSymbol(")"));
            return tup;
          }
          YT_RETURN_IF_ERROR(ExpectSymbol(")"));
          return first;
        };
        auto result = parse_parenthesized();
        allow_bare_tuple_ = saved;
        return result;
      }
      break;
    }
    default:
      break;
  }
  return ErrorHere("expected an expression");
}

}  // namespace youtopia::sql
