#ifndef YOUTOPIA_SQL_PARSER_H_
#define YOUTOPIA_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/sql/ast.h"
#include "src/sql/lexer.h"

namespace youtopia::sql {

/// Recursive-descent parser for the supported SQL subset plus the paper's
/// extensions:
///
///   SELECT items [INTO ANSWER rel [, ANSWER rel]...] [FROM t [, t]...]
///     [WHERE cond] [ORDER BY expr [ASC|DESC] [, ...]] [LIMIT n] [CHOOSE n]
///   INSERT INTO t [(cols)] VALUES (exprs) [, (exprs)]...
///   UPDATE t SET col = expr [, ...] [WHERE cond]
///   DELETE FROM t [WHERE cond]
///   CREATE TABLE t (col TYPE [PRIMARY KEY], ...,
///                   [PRIMARY KEY (cols) [USING ORDERED]])
///   CREATE [UNIQUE] INDEX ON t (cols) [USING ORDERED|HASH]
///   BEGIN TRANSACTION [WITH TIMEOUT n unit]
///   COMMIT | ROLLBACK
///   SET @var = expr
///
/// WHERE conditions support AND/OR/NOT, comparisons, BETWEEN (desugared to
/// >= AND <=), arithmetic, and the entangled forms
/// `(t1,...,tk) IN (SELECT ...)`, the paper's bare-list
/// `a, b IN (SELECT ...)`, and `(t1,...,tk) IN ANSWER Rel`.
class Parser {
 public:
  /// Parses exactly one statement (a trailing ';' is allowed).
  static StatusOr<ParsedStatement> ParseStatement(const std::string& text);

  /// Parses a ';'-separated script into a statement list.
  static StatusOr<std::vector<ParsedStatement>> ParseScript(
      const std::string& text);

 private:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  bool PeekIdent(const char* kw, size_t ahead = 0) const;
  bool MatchIdent(const char* kw);
  Status ExpectIdent(const char* kw);
  bool MatchSymbol(const char* sym);
  Status ExpectSymbol(const char* sym);
  Status ErrorHere(const std::string& msg) const;

  StatusOr<ParsedStatement> ParseOne();
  StatusOr<ParsedStatement> ParseSelectLike();
  StatusOr<std::unique_ptr<SelectStmt>> ParseSubquerySelect();
  StatusOr<ParsedStatement> ParseInsert();
  StatusOr<ParsedStatement> ParseUpdate();
  StatusOr<ParsedStatement> ParseDelete();
  StatusOr<ParsedStatement> ParseCreate();
  StatusOr<ParsedStatement> ParseBegin();
  StatusOr<ParsedStatement> ParseSet();
  StatusOr<ParsedStatement> ParseShow();

  StatusOr<std::vector<SelectItem>> ParseSelectItems();
  StatusOr<std::vector<TableRef>> ParseFromList();
  /// Parses the optional [ORDER BY ...] [LIMIT n] tail into `sel`.
  Status ParseOrderLimit(SelectStmt* sel);

  StatusOr<ExprPtr> ParseOr();
  StatusOr<ExprPtr> ParseAnd();
  StatusOr<ExprPtr> ParseConjunct();
  StatusOr<ExprPtr> ParseInTail(ExprPtr lhs_tuple);
  StatusOr<ExprPtr> ParseComparisonTail(ExprPtr lhs);
  StatusOr<ExprPtr> ParseAdditive();
  StatusOr<ExprPtr> ParseMultiplicative();
  StatusOr<ExprPtr> ParsePrimary();

  std::vector<Token> toks_;
  size_t pos_ = 0;
  /// The paper's bare-list form `a, b IN (...)` is only legal at top-level
  /// WHERE conjuncts; inside parentheses a comma means an explicit tuple.
  bool allow_bare_tuple_ = true;
};

}  // namespace youtopia::sql

#endif  // YOUTOPIA_SQL_PARSER_H_
