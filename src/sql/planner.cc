#include "src/sql/planner.h"

#include <algorithm>

#include "src/common/strings.h"

namespace youtopia::sql {

namespace {

void FlattenConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->op == "AND") {
    FlattenConjuncts(e->lhs.get(), out);
    FlattenConjuncts(e->rhs.get(), out);
    return;
  }
  out->push_back(e);
}

/// True when `col` (a kColumnRef) binds to scope[target] under the
/// executor's resolution rule: an explicit qualifier must match the target's
/// alias; an unqualified name binds to the first table that has the column.
bool BindsToTarget(const Expr& col, const std::vector<TableScope>& scope,
                   size_t target) {
  if (!col.qualifier.empty()) {
    return EqualsIgnoreCase(scope[target].alias, col.qualifier) &&
           scope[target].schema->HasColumn(col.column);
  }
  for (size_t i = 0; i < scope.size(); ++i) {
    if (scope[i].schema->HasColumn(col.column)) return i == target;
  }
  return false;
}

/// Evaluates `e` using only the variable environment; fails when the
/// expression touches a table column or a subquery, which is exactly the
/// non-sargable case.
StatusOr<Value> ConstFold(const Expr& e, const VarEnv* vars) {
  EvalEnv env;
  env.vars = vars;
  return EvalScalar(e, env);
}

}  // namespace

std::string AccessPlan::ToString() const {
  if (kind == Kind::kTableScan) return "scan";
  std::string s = "index(";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(columns[i]);
  }
  s += ")=" + key.ToString();
  return s;
}

StatusOr<AccessPlan> Planner::Plan(const Table& table,
                                   const std::vector<TableScope>& scope,
                                   size_t target, const Expr* where,
                                   const VarEnv* vars) {
  if (target >= scope.size()) {
    return Status::InvalidArgument("planner target out of scope");
  }
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(where, &conjuncts);

  std::vector<std::pair<size_t, Value>> eqs;
  for (const Expr* c : conjuncts) {
    if (c->kind != ExprKind::kBinary || c->op != "=") continue;
    const Expr* col = c->lhs.get();
    const Expr* val = c->rhs.get();
    if (col->kind != ExprKind::kColumnRef) std::swap(col, val);
    if (col->kind != ExprKind::kColumnRef) continue;
    if (val->kind == ExprKind::kColumnRef) continue;  // join predicate
    if (!BindsToTarget(*col, scope, target)) continue;
    auto folded = ConstFold(*val, vars);
    if (!folded.ok()) continue;  // references a table or subquery
    auto pos = scope[target].schema->IndexOf(col->column);
    if (!pos.ok()) continue;
    eqs.emplace_back(pos.value(), std::move(folded).value());
  }
  return PlanPointLookup(table, eqs);
}

AccessPlan Planner::PlanPointLookup(
    const Table& table, const std::vector<std::pair<size_t, Value>>& eqs) {
  AccessPlan plan;
  if (eqs.empty()) return plan;

  const Schema& schema = table.schema();
  // Coerce to column types so key hashing/equality matches stored rows;
  // NULL keys and failed coercions are not sargable.
  std::vector<std::pair<size_t, Value>> usable;
  for (const auto& [col, v] : eqs) {
    if (col >= schema.num_columns() || v.is_null()) continue;
    auto coerced = v.CoerceTo(schema.column(col).type);
    if (!coerced.ok()) continue;
    bool duplicate = false;
    for (const auto& [c, _] : usable) duplicate |= (c == col);
    if (!duplicate) usable.emplace_back(col, std::move(coerced).value());
  }
  if (usable.empty()) return plan;

  // Pick the widest index fully covered by the equality columns (more
  // columns = more selective key).
  const std::vector<std::vector<size_t>> candidates =
      table.IndexedColumnSets();
  const std::vector<size_t>* best = nullptr;
  for (const auto& cols : candidates) {
    bool covered = !cols.empty();
    for (size_t c : cols) {
      bool found = false;
      for (const auto& [uc, _] : usable) found |= (uc == c);
      covered &= found;
    }
    if (covered && (best == nullptr || cols.size() > best->size())) {
      best = &cols;
    }
  }
  if (best == nullptr) return plan;

  plan.kind = AccessPlan::Kind::kIndexLookup;
  plan.columns = *best;
  std::vector<Value> key;
  key.reserve(best->size());
  for (size_t c : *best) {
    for (const auto& [uc, v] : usable) {
      if (uc == c) {
        key.push_back(v);
        break;
      }
    }
  }
  plan.key = Row(std::move(key));
  return plan;
}

}  // namespace youtopia::sql
