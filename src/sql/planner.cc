#include "src/sql/planner.h"

#include <algorithm>

#include "src/common/strings.h"

namespace youtopia::sql {

namespace {

void FlattenConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->op == "AND") {
    FlattenConjuncts(e->lhs.get(), out);
    FlattenConjuncts(e->rhs.get(), out);
    return;
  }
  out->push_back(e);
}

/// Resolves a column reference to its (scope index, column position) under
/// the evaluator's rule (expr_eval ResolveColumn): the FIRST table whose
/// alias matches the qualifier (any table when unqualified) and that has
/// the column. False when unresolved.
bool ResolveScopeColumn(const Expr& col, const std::vector<TableScope>& scope,
                        size_t* table_out, size_t* column_out) {
  for (size_t i = 0; i < scope.size(); ++i) {
    bool qual_ok = col.qualifier.empty() ||
                   EqualsIgnoreCase(scope[i].alias, col.qualifier);
    if (!qual_ok) continue;
    auto pos = scope[i].schema->IndexOf(col.column);
    if (!pos.ok()) continue;
    *table_out = i;
    *column_out = pos.value();
    return true;
  }
  return false;
}

/// True when `col` (a kColumnRef) binds to scope[target] under the
/// evaluator's resolution rule. First-match matters even for qualified
/// refs: with duplicate aliases (FROM User, User), `User.uid` evaluates
/// against the FIRST User, so a plan for the second must not claim it.
bool BindsToTarget(const Expr& col, const std::vector<TableScope>& scope,
                   size_t target) {
  size_t table = 0, column = 0;
  return ResolveScopeColumn(col, scope, &table, &column) && table == target;
}

/// Evaluates `e` using only the variable environment; fails when the
/// expression touches a table column or a subquery, which is exactly the
/// non-sargable case.
StatusOr<Value> ConstFold(const Expr& e, const VarEnv* vars) {
  EvalEnv env;
  env.vars = vars;
  return EvalScalar(e, env);
}

}  // namespace

std::string AccessPlan::ToString() const {
  if (kind == Kind::kTableScan) return "scan";
  std::string s = "index(";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(columns[i]);
  }
  s += ")=" + key.ToString();
  return s;
}

std::string JoinProbePlan::ToString() const {
  if (kind == Kind::kSnapshot) return "snapshot";
  std::string s = "probe(";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(columns[i]) + "=";
    if (parts[i].is_const) {
      s += parts[i].constant.ToString();
    } else {
      s += "$" + std::to_string(parts[i].outer) + "." +
           std::to_string(parts[i].outer_column);
    }
  }
  return s + ")";
}

StatusOr<AccessPlan> Planner::Plan(const Table& table,
                                   const std::vector<TableScope>& scope,
                                   size_t target, const Expr* where,
                                   const VarEnv* vars) {
  if (target >= scope.size()) {
    return Status::InvalidArgument("planner target out of scope");
  }
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(where, &conjuncts);

  std::vector<std::pair<size_t, Value>> eqs;
  for (const Expr* c : conjuncts) {
    if (c->kind != ExprKind::kBinary || c->op != "=") continue;
    const Expr* col = c->lhs.get();
    const Expr* val = c->rhs.get();
    if (col->kind != ExprKind::kColumnRef) std::swap(col, val);
    if (col->kind != ExprKind::kColumnRef) continue;
    if (val->kind == ExprKind::kColumnRef) continue;  // join predicate
    if (!BindsToTarget(*col, scope, target)) continue;
    auto folded = ConstFold(*val, vars);
    if (!folded.ok()) continue;  // references a table or subquery
    auto pos = scope[target].schema->IndexOf(col->column);
    if (!pos.ok()) continue;
    eqs.emplace_back(pos.value(), std::move(folded).value());
  }
  return PlanPointLookup(table, eqs);
}

AccessPlan Planner::PlanPointLookup(
    const Table& table, const std::vector<std::pair<size_t, Value>>& eqs) {
  AccessPlan plan;
  if (eqs.empty()) return plan;

  const Schema& schema = table.schema();
  // Coerce to column types so key hashing/equality matches stored rows;
  // NULL keys and failed coercions are not sargable.
  std::vector<std::pair<size_t, Value>> usable;
  for (const auto& [col, v] : eqs) {
    if (col >= schema.num_columns() || v.is_null()) continue;
    auto coerced = v.CoerceTo(schema.column(col).type);
    if (!coerced.ok()) continue;
    bool duplicate = false;
    for (const auto& [c, _] : usable) duplicate |= (c == col);
    if (!duplicate) usable.emplace_back(col, std::move(coerced).value());
  }
  if (usable.empty()) return plan;

  // Pick the widest index fully covered by the equality columns (more
  // columns = more selective key).
  const std::vector<std::vector<size_t>> candidates =
      table.IndexedColumnSets();
  const std::vector<size_t>* best = nullptr;
  for (const auto& cols : candidates) {
    bool covered = !cols.empty();
    for (size_t c : cols) {
      bool found = false;
      for (const auto& [uc, _] : usable) found |= (uc == c);
      covered &= found;
    }
    if (covered && (best == nullptr || cols.size() > best->size())) {
      best = &cols;
    }
  }
  if (best == nullptr) return plan;

  plan.kind = AccessPlan::Kind::kIndexLookup;
  plan.columns = *best;
  std::vector<Value> key;
  key.reserve(best->size());
  for (size_t c : *best) {
    for (const auto& [uc, v] : usable) {
      if (uc == c) {
        key.push_back(v);
        break;
      }
    }
  }
  plan.key = Row(std::move(key));
  return plan;
}

StatusOr<JoinProbePlan> Planner::PlanJoinProbe(
    const Table& table, const std::vector<TableScope>& scope, size_t target,
    const Expr* where, const VarEnv* vars) {
  if (target >= scope.size()) {
    return Status::InvalidArgument("planner target out of scope");
  }
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(where, &conjuncts);

  std::vector<JoinEqCandidate> eqs;
  for (const Expr* c : conjuncts) {
    if (c->kind != ExprKind::kBinary || c->op != "=") continue;
    const Expr* col = c->lhs.get();
    const Expr* val = c->rhs.get();
    // Orient so `col` binds to the target; a join conjunct has column refs
    // on both sides, so try both orientations.
    if (col->kind != ExprKind::kColumnRef ||
        !BindsToTarget(*col, scope, target)) {
      std::swap(col, val);
    }
    if (col->kind != ExprKind::kColumnRef ||
        !BindsToTarget(*col, scope, target)) {
      continue;
    }
    auto pos = scope[target].schema->IndexOf(col->column);
    if (!pos.ok()) continue;

    JoinEqCandidate cand;
    cand.column = pos.value();
    auto folded = ConstFold(*val, vars);
    if (folded.ok()) {
      cand.is_const = true;
      cand.constant = std::move(folded).value();
    } else if (val->kind == ExprKind::kColumnRef) {
      // Runtime-bound part: the other side must resolve to an *earlier*
      // FROM table (already iterating when this depth probes) and carry the
      // same column type, so the stored outer value can key the index
      // directly without coercion.
      size_t outer = 0, outer_col = 0;
      if (!ResolveScopeColumn(*val, scope, &outer, &outer_col)) continue;
      if (outer >= target) continue;
      cand.outer = outer;
      cand.outer_column = outer_col;
      cand.bound_type = scope[outer].schema->column(outer_col).type;
    } else {
      continue;  // expression over outer columns: not probe-able
    }
    eqs.push_back(std::move(cand));
  }
  return PlanJoinProbe(table, eqs);
}

JoinProbePlan Planner::PlanJoinProbe(const Table& table,
                                     const std::vector<JoinEqCandidate>& eqs) {
  JoinProbePlan plan;
  if (eqs.empty()) return plan;

  const Schema& schema = table.schema();
  // Per-column usable sources, first candidate per column wins. Constants
  // are coerced to the column type at plan time; runtime-bound parts demand
  // an exact type match (probe keys must hash/compare like stored rows, and
  // there is no place to fail a coercion per binding).
  std::vector<std::pair<size_t, JoinProbePlan::KeyPart>> usable;
  for (const JoinEqCandidate& c : eqs) {
    if (c.column >= schema.num_columns()) continue;
    bool duplicate = false;
    for (const auto& [uc, _] : usable) duplicate |= (uc == c.column);
    if (duplicate) continue;
    JoinProbePlan::KeyPart part;
    if (c.is_const) {
      if (c.constant.is_null()) continue;
      auto coerced = c.constant.CoerceTo(schema.column(c.column).type);
      if (!coerced.ok()) continue;
      part.is_const = true;
      part.constant = std::move(coerced).value();
    } else {
      if (c.bound_type != schema.column(c.column).type) continue;
      part.outer = c.outer;
      part.outer_column = c.outer_column;
    }
    usable.emplace_back(c.column, std::move(part));
  }
  if (usable.empty()) return plan;

  // Widest fully covered index wins; it must use at least one runtime-bound
  // part, otherwise the constant-only AccessPlan path already handles it
  // with a single eager lookup.
  const std::vector<std::vector<size_t>> candidates =
      table.IndexedColumnSets();
  const std::vector<size_t>* best = nullptr;
  for (const auto& cols : candidates) {
    bool covered = !cols.empty();
    bool any_bound = false;
    for (size_t col : cols) {
      bool found = false;
      for (const auto& [uc, part] : usable) {
        if (uc == col) {
          found = true;
          any_bound |= !part.is_const;
        }
      }
      covered &= found;
    }
    if (covered && any_bound && (best == nullptr || cols.size() > best->size())) {
      best = &cols;
    }
  }
  if (best == nullptr) return plan;

  plan.kind = JoinProbePlan::Kind::kIndexProbe;
  plan.columns = *best;
  plan.parts.reserve(best->size());
  for (size_t col : *best) {
    for (const auto& [uc, part] : usable) {
      if (uc == col) {
        plan.parts.push_back(part);
        break;
      }
    }
  }
  return plan;
}

}  // namespace youtopia::sql
