#include "src/sql/planner.h"

#include <algorithm>

#include "src/common/strings.h"

namespace youtopia::sql {

namespace {

void FlattenConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->op == "AND") {
    FlattenConjuncts(e->lhs.get(), out);
    FlattenConjuncts(e->rhs.get(), out);
    return;
  }
  out->push_back(e);
}

/// Resolves a column reference to its (scope index, column position) under
/// the evaluator's rule (expr_eval ResolveColumn): the FIRST table whose
/// alias matches the qualifier (any table when unqualified) and that has
/// the column. False when unresolved.
bool ResolveScopeColumn(const Expr& col, const std::vector<TableScope>& scope,
                        size_t* table_out, size_t* column_out) {
  for (size_t i = 0; i < scope.size(); ++i) {
    bool qual_ok = col.qualifier.empty() ||
                   EqualsIgnoreCase(scope[i].alias, col.qualifier);
    if (!qual_ok) continue;
    auto pos = scope[i].schema->IndexOf(col.column);
    if (!pos.ok()) continue;
    *table_out = i;
    *column_out = pos.value();
    return true;
  }
  return false;
}

/// True when `col` (a kColumnRef) binds to scope[target] under the
/// evaluator's resolution rule. First-match matters even for qualified
/// refs: with duplicate aliases (FROM User, User), `User.uid` evaluates
/// against the FIRST User, so a plan for the second must not claim it.
bool BindsToTarget(const Expr& col, const std::vector<TableScope>& scope,
                   size_t target) {
  size_t table = 0, column = 0;
  return ResolveScopeColumn(col, scope, &table, &column) && table == target;
}

/// Evaluates `e` using only the variable environment; fails when the
/// expression touches a table column or a subquery, which is exactly the
/// non-sargable case.
StatusOr<Value> ConstFold(const Expr& e, const VarEnv* vars) {
  EvalEnv env;
  env.vars = vars;
  return EvalScalar(e, env);
}

/// `const OP col` reads as `col FLIP(OP) const`.
std::string FlipOp(const std::string& op) {
  if (op == "<") return ">";
  if (op == "<=") return ">=";
  if (op == ">") return "<";
  if (op == ">=") return "<=";
  return op;
}

/// One sargable conjunct, classified and column-typed.
struct Sarg {
  enum class Kind { kOther, kEq, kRange };
  Kind kind = Kind::kOther;
  size_t column = 0;
  std::string op;  ///< kRange: normalized with the column on the left
  Value value;     ///< coerced to the column type
};

/// One side of an accumulated range constraint on a column.
struct BoundC {
  bool present = false;
  Value value;
  bool incl = false;
};

/// Intersection of every range conjunct on one column.
struct RangeC {
  BoundC lo, hi;
};

/// Classifies each top-level conjunct of `where` against `scope[target]`.
/// Range bounds must survive coercion *exactly* (a shifted bound would move
/// the interval; e.g. `col < 0.5` on an INT column is not `col < 0`), so
/// lossy coercions demote the conjunct to residual-only.
std::vector<Sarg> ClassifyConjuncts(const std::vector<const Expr*>& conjuncts,
                                    const Schema& schema,
                                    const std::vector<TableScope>& scope,
                                    size_t target, const VarEnv* vars) {
  std::vector<Sarg> sargs(conjuncts.size());
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    const Expr* c = conjuncts[i];
    if (c->kind != ExprKind::kBinary) continue;
    const bool is_eq = c->op == "=";
    const bool is_range =
        c->op == "<" || c->op == "<=" || c->op == ">" || c->op == ">=";
    if (!is_eq && !is_range) continue;
    const Expr* col = c->lhs.get();
    const Expr* val = c->rhs.get();
    std::string op = c->op;
    if (col->kind != ExprKind::kColumnRef) {
      std::swap(col, val);
      op = FlipOp(op);
    }
    if (col->kind != ExprKind::kColumnRef) continue;
    if (val->kind == ExprKind::kColumnRef) continue;  // join predicate
    if (!BindsToTarget(*col, scope, target)) continue;
    auto folded = ConstFold(*val, vars);
    if (!folded.ok() || folded.value().is_null()) continue;
    auto pos = scope[target].schema->IndexOf(col->column);
    if (!pos.ok() || pos.value() >= schema.num_columns()) continue;
    size_t column = pos.value();
    auto coerced = folded.value().CoerceTo(schema.column(column).type);
    if (!coerced.ok()) continue;
    if (is_range && coerced.value().Compare(folded.value()) != 0) continue;
    sargs[i].kind = is_eq ? Sarg::Kind::kEq : Sarg::Kind::kRange;
    sargs[i].column = column;
    sargs[i].op = std::move(op);
    sargs[i].value = std::move(coerced).value();
  }
  return sargs;
}

/// Folds one range sarg into the per-column constraint (intersection:
/// tightest bound wins; on a tie the exclusive bound is tighter).
void TightenRange(RangeC* rc, const Sarg& s) {
  const bool is_lo = s.op == ">" || s.op == ">=";
  const bool incl = s.op == ">=" || s.op == "<=";
  BoundC* b = is_lo ? &rc->lo : &rc->hi;
  if (!b->present) {
    *b = {true, s.value, incl};
    return;
  }
  int c = s.value.Compare(b->value);
  if ((is_lo && c > 0) || (!is_lo && c < 0) || (c == 0 && !incl)) {
    *b = {true, s.value, incl};
  }
}

/// Builds the kIndexRange plan for one ordered index: interval bounds from
/// the equality-pinned prefix `cols[0..e)` plus the range constraint on
/// `cols[e]` (prefix-only bounds when a side is open and e > 0).
AccessPlan MakeRangePlan(const std::vector<size_t>& cols, size_t e,
                         const std::vector<Value>& eq_val, const RangeC& rc) {
  AccessPlan plan;
  plan.kind = AccessPlan::Kind::kIndexRange;
  plan.columns = cols;
  std::vector<Value> prefix;
  prefix.reserve(e + 1);
  for (size_t i = 0; i < e; ++i) prefix.push_back(eq_val[cols[i]]);
  if (rc.lo.present) {
    std::vector<Value> lo = prefix;
    lo.push_back(rc.lo.value);
    plan.range.lo = Row(std::move(lo));
    plan.range.lo_unbounded = false;
    plan.range.lo_incl = rc.lo.incl;
  } else if (e > 0) {
    plan.range.lo = Row(prefix);
    plan.range.lo_unbounded = false;
    plan.range.lo_incl = true;
  }
  if (rc.hi.present) {
    std::vector<Value> hi = prefix;
    hi.push_back(rc.hi.value);
    plan.range.hi = Row(std::move(hi));
    plan.range.hi_unbounded = false;
    plan.range.hi_incl = rc.hi.incl;
  } else if (e > 0) {
    plan.range.hi = Row(std::move(prefix));
    plan.range.hi_unbounded = false;
    plan.range.hi_incl = true;
  }
  return plan;
}

/// True when an index's key order (with `eq_cols` pinned to constants)
/// yields rows already sorted per `order`.
bool OrderServed(const std::vector<size_t>& index_cols,
                 const std::vector<bool>& eq_cols, const OrderSpec& order) {
  size_t ci = 0;
  for (size_t oi = 0; oi < order.columns.size();) {
    size_t oc = order.columns[oi];
    if (oc < eq_cols.size() && eq_cols[oc]) {
      ++oi;  // equality-pinned: constant in the output, order-neutral
      continue;
    }
    while (ci < index_cols.size() && index_cols[ci] < eq_cols.size() &&
           eq_cols[index_cols[ci]]) {
      ++ci;  // equality-pinned index column: does not vary
    }
    if (ci < index_cols.size() && index_cols[ci] == oc) {
      ++ci;
      ++oi;
      continue;
    }
    return false;
  }
  return true;
}

/// Picks the best ordered-index range plan for the accumulated per-column
/// equality pins and range constraints — shared by the SQL path (which adds
/// the ORDER BY-served bonus) and the grounder's eager constant-range path
/// (order == nullptr). `*score_out` is 0 when nothing qualifies.
AccessPlan BestRangePlan(const Table& table, const std::vector<bool>& has_eq,
                         const std::vector<Value>& eq_val,
                         const std::vector<RangeC>& range_c,
                         const OrderSpec* order, int* score_out) {
  AccessPlan best;
  int best_score = 0;
  for (const IndexInfo& info : table.IndexInfos()) {
    if (!info.ordered) continue;
    size_t e = 0;
    while (e < info.columns.size() && has_eq[info.columns[e]]) ++e;
    if (e == info.columns.size()) continue;  // full eq: point territory
    const RangeC& rc = range_c[info.columns[e]];
    const bool has_range = rc.lo.present || rc.hi.present;
    const bool served =
        order != nullptr && OrderServed(info.columns, has_eq, *order);
    int score = 100 * static_cast<int>(e) + (has_range ? 70 : 0) +
                (served ? 10 : 0);
    if (score <= 0 || score <= best_score) continue;
    AccessPlan plan = MakeRangePlan(info.columns, e, eq_val, rc);
    plan.ordered = served;
    plan.reverse = served && order->desc;
    best = std::move(plan);
    best_score = score;
  }
  *score_out = best_score;
  return best;
}

/// Compiles one COUNT/SUM/MIN/MAX/AVG call into an engine AggSpec with
/// plan-time validation (plain-column argument, numeric SUM/AVG) — shared
/// by the select-item loop and the HAVING rewriter.
StatusOr<AggSpec> CompileAggregateCall(const Expr& e, const Schema& schema,
                                       const std::vector<TableScope>& scope) {
  AggSpec a;
  if (e.lhs == nullptr) {
    a.func = AggFunc::kCountStar;
    return a;
  }
  if (e.lhs->kind != ExprKind::kColumnRef) {
    return Status::InvalidArgument(
        "aggregate argument must be a plain column: " + e.ToString());
  }
  size_t t = 0, c = 0;
  if (!ResolveScopeColumn(*e.lhs, scope, &t, &c)) {
    return Status::NotFound("unresolved column in " + e.ToString());
  }
  a.column = c;
  if (e.op == "COUNT") {
    a.func = AggFunc::kCount;
  } else if (e.op == "SUM") {
    a.func = AggFunc::kSum;
  } else if (e.op == "MIN") {
    a.func = AggFunc::kMin;
  } else if (e.op == "MAX") {
    a.func = AggFunc::kMax;
  } else if (e.op == "AVG") {
    a.func = AggFunc::kAvg;
  } else {
    return Status::InvalidArgument("unknown aggregate " + e.op);
  }
  if ((a.func == AggFunc::kSum || a.func == AggFunc::kAvg) &&
      schema.column(c).type != TypeId::kInt64 &&
      schema.column(c).type != TypeId::kDouble) {
    return Status::InvalidArgument(
        e.op + "(" + e.lhs->column + ") requires a numeric column, " +
        e.lhs->column + " is " + TypeName(schema.column(c).type));
  }
  return a;
}

/// Rewrites a HAVING subtree against the synthetic post-grouping row:
/// aggregate calls dedup/append into `spec->aggs` and become "__agg<i>"
/// column refs, grouped columns become "__group<g>". Anything without a
/// single value per group (ungrouped columns, tuples, subqueries) is a
/// plan-time error.
StatusOr<ExprPtr> CompileHaving(const Expr& e, const Schema& schema,
                                const std::vector<TableScope>& scope,
                                AggregateSpec* spec) {
  auto out = std::make_unique<Expr>();
  switch (e.kind) {
    case ExprKind::kLiteral:
      out->kind = ExprKind::kLiteral;
      out->literal = e.literal;
      return out;
    case ExprKind::kHostVar:
      out->kind = ExprKind::kHostVar;
      out->var = e.var;
      return out;
    case ExprKind::kAggregate: {
      YT_ASSIGN_OR_RETURN(AggSpec a, CompileAggregateCall(e, schema, scope));
      size_t i = 0;
      while (i < spec->aggs.size() &&
             !(spec->aggs[i].func == a.func &&
               spec->aggs[i].column == a.column)) {
        ++i;
      }
      if (i == spec->aggs.size()) spec->aggs.push_back(a);
      out->kind = ExprKind::kColumnRef;
      out->column = "__agg" + std::to_string(i);
      return out;
    }
    case ExprKind::kColumnRef: {
      size_t t = 0, c = 0;
      if (!ResolveScopeColumn(e, scope, &t, &c)) {
        return Status::NotFound("unresolved HAVING column " + e.ToString());
      }
      for (size_t g = 0; g < spec->group_by.size(); ++g) {
        if (spec->group_by[g] == c) {
          out->kind = ExprKind::kColumnRef;
          out->column = "__group" + std::to_string(g);
          return out;
        }
      }
      return Status::InvalidArgument(
          "HAVING column " + e.ToString() +
          " must appear in GROUP BY or inside an aggregate");
    }
    case ExprKind::kBinary: {
      out->kind = ExprKind::kBinary;
      out->op = e.op;
      YT_ASSIGN_OR_RETURN(out->lhs, CompileHaving(*e.lhs, schema, scope, spec));
      YT_ASSIGN_OR_RETURN(out->rhs, CompileHaving(*e.rhs, schema, scope, spec));
      return out;
    }
    case ExprKind::kNot: {
      out->kind = ExprKind::kNot;
      YT_ASSIGN_OR_RETURN(out->lhs, CompileHaving(*e.lhs, schema, scope, spec));
      return out;
    }
    default:
      return Status::InvalidArgument("HAVING does not support " +
                                     e.ToString());
  }
}

}  // namespace

bool ContainsAggregate(const Expr* e) {
  if (e == nullptr) return false;
  if (e->kind == ExprKind::kAggregate) return true;
  if (ContainsAggregate(e->lhs.get()) || ContainsAggregate(e->rhs.get())) {
    return true;
  }
  for (const ExprPtr& t : e->tuple) {
    if (ContainsAggregate(t.get())) return true;
  }
  return false;
}

IndexRangeSpec JoinProbePlan::MakeRangeSpec(const std::vector<Value>& kv,
                                            const Value& lo_v,
                                            const Value& hi_v,
                                            size_t null_filter_from) const {
  IndexRangeSpec spec;
  spec.columns = columns;
  spec.null_filter_from = null_filter_from;
  if (lo.present) {
    std::vector<Value> vals = kv;
    vals.push_back(lo_v);
    spec.range.lo = Row(std::move(vals));
    spec.range.lo_unbounded = false;
    spec.range.lo_incl = lo.incl;
  } else if (!kv.empty()) {
    spec.range.lo = Row(kv);
    spec.range.lo_unbounded = false;
    spec.range.lo_incl = true;
  }
  if (hi.present) {
    std::vector<Value> vals = kv;
    vals.push_back(hi_v);
    spec.range.hi = Row(std::move(vals));
    spec.range.hi_unbounded = false;
    spec.range.hi_incl = hi.incl;
  } else if (!kv.empty()) {
    spec.range.hi = Row(kv);
    spec.range.hi_unbounded = false;
    spec.range.hi_incl = true;
  }
  return spec;
}

Row JoinProbePlan::MakeRangeCacheKey(std::vector<Value> kv, const Value& lo_v,
                                     const Value& hi_v) const {
  if (lo.present) kv.push_back(lo_v);
  if (hi.present) kv.push_back(hi_v);
  return Row(std::move(kv));
}

std::string JoinProbePlan::ToString() const {
  if (kind == Kind::kSnapshot) return "snapshot";
  auto bound_src = [](const RangeBound& b) {
    if (b.is_const) return b.constant.ToString();
    return "$" + std::to_string(b.outer) + "." +
           std::to_string(b.outer_column);
  };
  std::string s = kind == Kind::kIndexProbe ? "probe(" : "range-probe(";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(columns[i]) + "=";
    if (parts[i].is_const) {
      s += parts[i].constant.ToString();
    } else {
      s += "$" + std::to_string(parts[i].outer) + "." +
           std::to_string(parts[i].outer_column);
    }
  }
  if (kind == Kind::kIndexRangeProbe) {
    if (parts.size() < columns.size()) {
      if (!parts.empty()) s += ",";
      s += std::to_string(columns[parts.size()]);
      if (lo.present) s += (lo.incl ? ">=" : ">") + bound_src(lo);
      if (hi.present) s += (hi.incl ? "<=" : "<") + bound_src(hi);
    }
  }
  return s + ")";
}

StatusOr<AccessPlan> Planner::Plan(const Table& table,
                                   const std::vector<TableScope>& scope,
                                   size_t target, const Expr* where,
                                   const VarEnv* vars,
                                   const OrderSpec* order) {
  if (target >= scope.size()) {
    return Status::InvalidArgument("planner target out of scope");
  }
  const Schema& schema = table.schema();
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(where, &conjuncts);
  std::vector<Sarg> sargs =
      ClassifyConjuncts(conjuncts, schema, scope, target, vars);

  // First equality value per column wins (a conflicting second stays
  // residual); range conjuncts intersect per column.
  std::vector<bool> has_eq(schema.num_columns(), false);
  std::vector<Value> eq_val(schema.num_columns());
  std::vector<RangeC> range_c(schema.num_columns());
  std::vector<std::pair<size_t, Value>> eq_pairs;
  for (const Sarg& s : sargs) {
    if (s.kind == Sarg::Kind::kEq) {
      if (!has_eq[s.column]) {
        has_eq[s.column] = true;
        eq_val[s.column] = s.value;
        eq_pairs.emplace_back(s.column, s.value);
      }
    } else if (s.kind == Sarg::Kind::kRange) {
      TightenRange(&range_c[s.column], s);
    }
  }

  // Point candidate: the widest fully equality-covered index (hash or
  // ordered — equality lookups work on both).
  AccessPlan point = PlanPointLookup(table, eq_pairs);
  int point_score = 0;
  if (point.is_index()) {
    point_score = 100 * static_cast<int>(point.columns.size()) + 60;
  }

  // Range candidates: ordered indexes with an equality-covered prefix, an
  // optional range constraint on the next column, and/or an order match.
  int range_score = 0;
  AccessPlan best_range =
      BestRangePlan(table, has_eq, eq_val, range_c, order, &range_score);

  AccessPlan chosen =
      range_score > point_score ? std::move(best_range) : std::move(point);
  if (chosen.kind == AccessPlan::Kind::kTableScan) return chosen;

  // covers_where: every top-level conjunct absorbed into the plan's key or
  // interval — only then can a LIMIT be pushed into the fetch (no residual
  // re-evaluation filters rows away afterwards).
  size_t eq_prefix = 0;
  if (chosen.is_range()) {
    while (eq_prefix < chosen.columns.size() &&
           has_eq[chosen.columns[eq_prefix]]) {
      ++eq_prefix;
    }
  }
  bool covers = true;
  for (const Sarg& s : sargs) {
    bool absorbed = false;
    if (s.kind == Sarg::Kind::kEq) {
      // Absorbed when the plan pins this column to the same value.
      const std::vector<size_t>& cols = chosen.columns;
      size_t limit = chosen.is_range() ? eq_prefix : cols.size();
      for (size_t i = 0; i < limit && !absorbed; ++i) {
        const Value& used = chosen.is_range() ? eq_val[cols[i]] : chosen.key[i];
        absorbed = cols[i] == s.column && used.Compare(s.value) == 0;
      }
    } else if (s.kind == Sarg::Kind::kRange) {
      // Absorbed when the interval's range column is this one (the interval
      // is the intersection of every range conjunct on it).
      absorbed = chosen.is_range() && eq_prefix < chosen.columns.size() &&
                 chosen.columns[eq_prefix] == s.column;
    }
    if (!absorbed) {
      covers = false;
      break;
    }
  }
  chosen.covers_where = covers;
  return chosen;
}

StatusOr<AggregateQueryPlan> Planner::PlanAggregate(
    const Table& table, const std::vector<TableScope>& scope,
    const SelectStmt& sel, const VarEnv* vars) {
  if (scope.size() != 1) {
    return Status::InvalidArgument(
        "aggregate queries support exactly one FROM table");
  }
  const Schema& schema = table.schema();
  if (ContainsAggregate(sel.where.get())) {
    return Status::InvalidArgument("aggregates are not allowed in WHERE");
  }

  AggregateQueryPlan out;

  // GROUP BY keys: plain columns of the table. NULL groups like a value
  // downstream (Row equality treats NULL == NULL).
  for (const ExprPtr& key : sel.group_by) {
    if (key->kind != ExprKind::kColumnRef) {
      return Status::InvalidArgument("GROUP BY supports plain columns, got " +
                                     key->ToString());
    }
    size_t t = 0, c = 0;
    if (!ResolveScopeColumn(*key, scope, &t, &c)) {
      return Status::NotFound("unresolved GROUP BY column " + key->ToString());
    }
    out.spec.group_by.push_back(c);
  }

  // Select items: a bare aggregate call or a grouped column — anything
  // else has no single value per group, so it is a plan-time error.
  for (const SelectItem& item : sel.items) {
    const Expr* e = item.expr.get();
    if (e->kind == ExprKind::kAggregate) {
      YT_ASSIGN_OR_RETURN(AggSpec a, CompileAggregateCall(*e, schema, scope));
      out.outputs.push_back({true, out.spec.aggs.size()});
      out.spec.aggs.push_back(a);
      continue;
    }
    if (e->kind == ExprKind::kColumnRef) {
      size_t t = 0, c = 0;
      if (!ResolveScopeColumn(*e, scope, &t, &c)) {
        return Status::NotFound("unresolved column " + e->ToString());
      }
      bool grouped = false;
      for (size_t g = 0; g < out.spec.group_by.size() && !grouped; ++g) {
        if (out.spec.group_by[g] == c) {
          out.outputs.push_back({false, g});
          grouped = true;
        }
      }
      if (!grouped) {
        return Status::InvalidArgument(
            "column " + e->ToString() +
            " must appear in GROUP BY or inside an aggregate");
      }
      continue;
    }
    return Status::InvalidArgument(
        "select item " + e->ToString() +
        " must be an aggregate or a grouped column in an aggregate query");
  }

  // HAVING filters whole groups: rewrite it against the synthetic
  // post-grouping row, folding any aggregates it mentions alongside the
  // select items (the fold itself — and its shard pushdown — is unchanged;
  // extra HAVING-only aggregates just ride in spec.aggs).
  if (sel.having != nullptr) {
    YT_ASSIGN_OR_RETURN(out.having,
                        CompileHaving(*sel.having, schema, scope, &out.spec));
  }

  // The access plan prunes like any read (an indexed equality/range WHERE
  // narrows what the fold sees); consumers still apply the full predicate.
  YT_ASSIGN_OR_RETURN(out.access, Plan(table, scope, 0, sel.where.get(), vars));

  // Pushable when EVERY top-level conjunct compiles to `col OP constant`
  // with engine-level ColumnFilter semantics (which mirror EvalBinary:
  // Value::Compare, NULL on either side fails the filter). One residual
  // conjunct keeps the whole WHERE at the executor — filters would
  // double-prune correctly, but the executor must re-check everything
  // anyway, so we keep the fold spec clean.
  out.pushable = true;
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(sel.where.get(), &conjuncts);
  for (const Expr* c : conjuncts) {
    ColumnFilter f;
    bool compiled = false;
    if (c->kind == ExprKind::kBinary) {
      const Expr* col = c->lhs.get();
      const Expr* val = c->rhs.get();
      std::string op = c->op;
      if (col->kind != ExprKind::kColumnRef) {
        std::swap(col, val);
        op = FlipOp(op);
      }
      if (col->kind == ExprKind::kColumnRef &&
          val->kind != ExprKind::kColumnRef) {
        size_t t = 0, pos = 0;
        auto folded = ConstFold(*val, vars);
        if (ResolveScopeColumn(*col, scope, &t, &pos) && folded.ok()) {
          f.column = pos;
          f.value = std::move(folded).value();
          if (op == "=") {
            f.op = ColumnFilter::Op::kEq;
          } else if (op == "<>" || op == "!=") {
            f.op = ColumnFilter::Op::kNe;
          } else if (op == "<") {
            f.op = ColumnFilter::Op::kLt;
          } else if (op == "<=") {
            f.op = ColumnFilter::Op::kLe;
          } else if (op == ">") {
            f.op = ColumnFilter::Op::kGt;
          } else if (op == ">=") {
            f.op = ColumnFilter::Op::kGe;
          } else {
            op.clear();  // arithmetic/AND residue: not a filter
          }
          compiled = !op.empty();
        }
      }
    }
    if (!compiled) {
      out.pushable = false;
      out.spec.filters.clear();
      break;
    }
    out.spec.filters.push_back(std::move(f));
  }
  return out;
}

AccessPlan Planner::PlanPointLookup(
    const Table& table, const std::vector<std::pair<size_t, Value>>& eqs) {
  AccessPlan plan;
  if (eqs.empty()) return plan;

  const Schema& schema = table.schema();
  // Coerce to column types so key hashing/equality matches stored rows;
  // NULL keys and failed coercions are not sargable.
  std::vector<std::pair<size_t, Value>> usable;
  for (const auto& [col, v] : eqs) {
    if (col >= schema.num_columns() || v.is_null()) continue;
    auto coerced = v.CoerceTo(schema.column(col).type);
    if (!coerced.ok()) continue;
    bool duplicate = false;
    for (const auto& [c, _] : usable) duplicate |= (c == col);
    if (!duplicate) usable.emplace_back(col, std::move(coerced).value());
  }
  if (usable.empty()) return plan;

  // Pick the widest index fully covered by the equality columns (more
  // columns = more selective key).
  const std::vector<std::vector<size_t>> candidates =
      table.IndexedColumnSets();
  const std::vector<size_t>* best = nullptr;
  for (const auto& cols : candidates) {
    bool covered = !cols.empty();
    for (size_t c : cols) {
      bool found = false;
      for (const auto& [uc, _] : usable) found |= (uc == c);
      covered &= found;
    }
    if (covered && (best == nullptr || cols.size() > best->size())) {
      best = &cols;
    }
  }
  if (best == nullptr) return plan;

  plan.kind = AccessPlan::Kind::kIndexLookup;
  plan.columns = *best;
  std::vector<Value> key;
  key.reserve(best->size());
  for (size_t c : *best) {
    for (const auto& [uc, v] : usable) {
      if (uc == c) {
        key.push_back(v);
        break;
      }
    }
  }
  plan.key = Row(std::move(key));
  return plan;
}

StatusOr<JoinProbePlan> Planner::PlanJoinProbe(
    const Table& table, const std::vector<TableScope>& scope, size_t target,
    const Expr* where, const VarEnv* vars) {
  if (target >= scope.size()) {
    return Status::InvalidArgument("planner target out of scope");
  }
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(where, &conjuncts);

  std::vector<JoinEqCandidate> eqs;
  std::vector<JoinRangeCandidate> ranges;
  for (const Expr* c : conjuncts) {
    if (c->kind != ExprKind::kBinary) continue;
    const bool is_eq = c->op == "=";
    const bool is_range =
        c->op == "<" || c->op == "<=" || c->op == ">" || c->op == ">=";
    if (!is_eq && !is_range) continue;
    const Expr* col = c->lhs.get();
    const Expr* val = c->rhs.get();
    std::string op = c->op;
    // Orient so `col` binds to the target; a join conjunct has column refs
    // on both sides, so try both orientations.
    if (col->kind != ExprKind::kColumnRef ||
        !BindsToTarget(*col, scope, target)) {
      std::swap(col, val);
      op = FlipOp(op);
    }
    if (col->kind != ExprKind::kColumnRef ||
        !BindsToTarget(*col, scope, target)) {
      continue;
    }
    auto pos = scope[target].schema->IndexOf(col->column);
    if (!pos.ok()) continue;

    // The source side: a plan-time constant or an earlier FROM table's
    // column (already iterating when this depth probes).
    bool is_const = false;
    Value constant;
    size_t outer = 0, outer_col = 0;
    TypeId bound_type = TypeId::kNull;
    auto folded = ConstFold(*val, vars);
    if (folded.ok()) {
      is_const = true;
      constant = std::move(folded).value();
    } else if (val->kind == ExprKind::kColumnRef) {
      if (!ResolveScopeColumn(*val, scope, &outer, &outer_col)) continue;
      if (outer >= target) continue;
      bound_type = scope[outer].schema->column(outer_col).type;
    } else {
      continue;  // expression over outer columns: not probe-able
    }
    if (is_eq) {
      JoinEqCandidate cand;
      cand.column = pos.value();
      cand.is_const = is_const;
      cand.constant = std::move(constant);
      cand.outer = outer;
      cand.outer_column = outer_col;
      cand.bound_type = bound_type;
      eqs.push_back(std::move(cand));
    } else {
      JoinRangeCandidate cand;
      cand.column = pos.value();
      cand.is_lo = op == ">" || op == ">=";
      cand.incl = op == ">=" || op == "<=";
      cand.is_const = is_const;
      cand.constant = std::move(constant);
      cand.outer = outer;
      cand.outer_column = outer_col;
      cand.bound_type = bound_type;
      ranges.push_back(std::move(cand));
    }
  }
  return PlanJoinProbe(table, eqs, ranges);
}

JoinProbePlan Planner::PlanJoinProbe(const Table& table,
                                     const std::vector<JoinEqCandidate>& eqs) {
  JoinProbePlan plan;
  if (eqs.empty()) return plan;

  const Schema& schema = table.schema();
  // Per-column usable sources, first candidate per column wins. Constants
  // are coerced to the column type at plan time; runtime-bound parts demand
  // an exact type match (probe keys must hash/compare like stored rows, and
  // there is no place to fail a coercion per binding).
  std::vector<std::pair<size_t, JoinProbePlan::KeyPart>> usable;
  for (const JoinEqCandidate& c : eqs) {
    if (c.column >= schema.num_columns()) continue;
    bool duplicate = false;
    for (const auto& [uc, _] : usable) duplicate |= (uc == c.column);
    if (duplicate) continue;
    JoinProbePlan::KeyPart part;
    if (c.is_const) {
      if (c.constant.is_null()) continue;
      auto coerced = c.constant.CoerceTo(schema.column(c.column).type);
      if (!coerced.ok()) continue;
      part.is_const = true;
      part.constant = std::move(coerced).value();
    } else {
      if (c.bound_type != schema.column(c.column).type) continue;
      part.outer = c.outer;
      part.outer_column = c.outer_column;
    }
    usable.emplace_back(c.column, std::move(part));
  }
  if (usable.empty()) return plan;

  // Widest fully covered index wins; it must use at least one runtime-bound
  // part, otherwise the constant-only AccessPlan path already handles it
  // with a single eager lookup.
  const std::vector<std::vector<size_t>> candidates =
      table.IndexedColumnSets();
  const std::vector<size_t>* best = nullptr;
  for (const auto& cols : candidates) {
    bool covered = !cols.empty();
    bool any_bound = false;
    for (size_t col : cols) {
      bool found = false;
      for (const auto& [uc, part] : usable) {
        if (uc == col) {
          found = true;
          any_bound |= !part.is_const;
        }
      }
      covered &= found;
    }
    if (covered && any_bound && (best == nullptr || cols.size() > best->size())) {
      best = &cols;
    }
  }
  if (best == nullptr) return plan;

  plan.kind = JoinProbePlan::Kind::kIndexProbe;
  plan.columns = *best;
  plan.parts.reserve(best->size());
  for (size_t col : *best) {
    for (const auto& [uc, part] : usable) {
      if (uc == col) {
        plan.parts.push_back(part);
        break;
      }
    }
  }
  return plan;
}

AccessPlan Planner::PlanRangeLookup(
    const Table& table, const std::vector<std::pair<size_t, Value>>& eqs,
    const std::vector<JoinRangeCandidate>& ranges) {
  AccessPlan plan;
  const Schema& schema = table.schema();
  std::vector<bool> has_eq(schema.num_columns(), false);
  std::vector<Value> eq_val(schema.num_columns());
  for (const auto& [col, v] : eqs) {
    if (col >= schema.num_columns() || v.is_null() || has_eq[col]) continue;
    auto coerced = v.CoerceTo(schema.column(col).type);
    if (!coerced.ok()) continue;
    has_eq[col] = true;
    eq_val[col] = std::move(coerced).value();
  }
  std::vector<RangeC> range_c(schema.num_columns());
  for (const JoinRangeCandidate& c : ranges) {
    if (!c.is_const || c.column >= schema.num_columns() ||
        c.constant.is_null()) {
      continue;
    }
    auto coerced = c.constant.CoerceTo(schema.column(c.column).type);
    if (!coerced.ok() || coerced.value().Compare(c.constant) != 0) continue;
    Sarg s;
    s.kind = Sarg::Kind::kRange;
    s.column = c.column;
    s.op = c.is_lo ? (c.incl ? ">=" : ">") : (c.incl ? "<=" : "<");
    s.value = std::move(coerced).value();
    TightenRange(&range_c[c.column], s);
  }
  int score = 0;
  plan = BestRangePlan(table, has_eq, eq_val, range_c, /*order=*/nullptr,
                       &score);
  return plan;
}

JoinProbePlan Planner::PlanJoinProbe(
    const Table& table, const std::vector<JoinEqCandidate>& eqs,
    const std::vector<JoinRangeCandidate>& ranges) {
  // Full equality coverage is the cheaper probe; try it first.
  JoinProbePlan plan = PlanJoinProbe(table, eqs);
  if (plan.is_probe() || ranges.empty()) return plan;

  const Schema& schema = table.schema();
  // Usable eq sources per column, first candidate per column wins (same
  // validation as the eq path: constants coerce at plan time, runtime-bound
  // parts demand an exact type match).
  std::vector<std::pair<size_t, JoinProbePlan::KeyPart>> usable;
  for (const JoinEqCandidate& c : eqs) {
    if (c.column >= schema.num_columns()) continue;
    bool duplicate = false;
    for (const auto& [uc, _] : usable) duplicate |= (uc == c.column);
    if (duplicate) continue;
    JoinProbePlan::KeyPart part;
    if (c.is_const) {
      if (c.constant.is_null()) continue;
      auto coerced = c.constant.CoerceTo(schema.column(c.column).type);
      if (!coerced.ok()) continue;
      part.is_const = true;
      part.constant = std::move(coerced).value();
    } else {
      if (c.bound_type != schema.column(c.column).type) continue;
      part.outer = c.outer;
      part.outer_column = c.outer_column;
    }
    usable.emplace_back(c.column, std::move(part));
  }

  // Validates one range candidate as a bound on `column`; constants must
  // survive coercion exactly (a shifted bound would move the interval).
  auto make_bound = [&schema](const JoinRangeCandidate& c,
                              JoinProbePlan::RangeBound* out) {
    if (c.is_const) {
      if (c.constant.is_null()) return false;
      auto coerced = c.constant.CoerceTo(schema.column(c.column).type);
      if (!coerced.ok() || coerced.value().Compare(c.constant) != 0) {
        return false;
      }
      out->is_const = true;
      out->constant = std::move(coerced).value();
    } else {
      if (c.bound_type != schema.column(c.column).type) return false;
      out->outer = c.outer;
      out->outer_column = c.outer_column;
    }
    out->present = true;
    out->incl = c.incl;
    return true;
  };

  // Best ordered index: longest equality-covered prefix whose next column
  // has at least one valid bound; the probe must use at least one
  // runtime-bound source (constant-only coverage is the eager range plan's
  // job) .
  const JoinProbePlan empty;
  JoinProbePlan best = empty;
  int best_score = -1;
  for (const IndexInfo& info : table.IndexInfos()) {
    if (!info.ordered) continue;
    JoinProbePlan cand;
    cand.kind = JoinProbePlan::Kind::kIndexRangeProbe;
    cand.columns = info.columns;
    bool any_bound = false;
    size_t e = 0;
    for (; e < info.columns.size(); ++e) {
      bool found = false;
      for (const auto& [uc, part] : usable) {
        if (uc == info.columns[e]) {
          cand.parts.push_back(part);
          any_bound |= !part.is_const;
          found = true;
          break;
        }
      }
      if (!found) break;
    }
    if (e == info.columns.size()) continue;  // full eq coverage: eq probe
    const size_t range_col = info.columns[e];
    for (const JoinRangeCandidate& c : ranges) {
      if (c.column != range_col) continue;
      JoinProbePlan::RangeBound* slot = c.is_lo ? &cand.lo : &cand.hi;
      if (slot->present) continue;  // first candidate per side wins
      JoinProbePlan::RangeBound bound;
      if (!make_bound(c, &bound)) continue;
      any_bound |= !bound.is_const;
      *slot = std::move(bound);
    }
    if (!cand.lo.present && !cand.hi.present) continue;
    if (!any_bound) continue;
    int score = static_cast<int>(e) * 4 + (cand.lo.present ? 1 : 0) +
                (cand.hi.present ? 1 : 0);
    if (score > best_score) {
      best_score = score;
      best = std::move(cand);
    }
  }
  if (best_score < 0) return empty;
  return best;
}

}  // namespace youtopia::sql
