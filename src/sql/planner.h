#ifndef YOUTOPIA_SQL_PLANNER_H_
#define YOUTOPIA_SQL_PLANNER_H_

#include <atomic>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sql/ast.h"
#include "src/sql/expr_eval.h"
#include "src/storage/aggregate.h"
#include "src/storage/cursor.h"
#include "src/storage/table.h"

namespace youtopia::sql {

/// One FROM-clause entry visible while planning (alias resolution follows
/// the executor: an unqualified column binds to the first table that has
/// it).
struct TableScope {
  std::string alias;
  const Schema* schema = nullptr;
};

// The access path chosen for one table is the engine-wide AccessPlan
// (src/storage/cursor.h): planners emit it, TransactionManager::OpenCursor
// interprets it. The using-declaration keeps `sql::AccessPlan` spelling
// valid at call sites outside this namespace.
using ::youtopia::AccessPlan;

/// A requested output order, resolved to schema positions of one table:
/// `ORDER BY <cols> [DESC]` with a uniform direction (mixed directions are
/// never index-servable here).
struct OrderSpec {
  std::vector<size_t> columns;
  bool desc = false;
};

/// Bind-driven access plan for one inner join table (or body atom): at each
/// join depth, the probe key is assembled from plan-time constants and
/// values bound by the *outer* side of the join, and the table is fetched
/// lazily through a per-binding index probe instead of being snapshotted up
/// front. `kSnapshot` means "keep the existing eager path".
struct JoinProbePlan {
  enum class Kind { kSnapshot, kIndexProbe, kIndexRangeProbe };

  /// One component of the probe key, parallel to `columns`.
  struct KeyPart {
    bool is_const = false;
    Value constant;          ///< plan-time constant (already column-typed)
    size_t outer = 0;        ///< SELECT: earlier FROM index; grounder: the
                             ///< caller-supplied binding id
    size_t outer_column = 0; ///< SELECT: column position in `outer`
  };

  /// One side of a per-binding range (kIndexRangeProbe): absent, a
  /// plan-time constant, or a value bound by the outer side of the join
  /// (`inner.col > outer.col` makes the outer value the runtime lo bound).
  struct RangeBound {
    bool present = false;
    bool incl = false;
    bool is_const = false;
    Value constant;
    size_t outer = 0;
    size_t outer_column = 0;
  };

  Kind kind = Kind::kSnapshot;
  std::vector<size_t> columns;  ///< index columns (schema positions); for
                                ///< kIndexRangeProbe the FULL index columns
  std::vector<KeyPart> parts;   ///< equality key sources; for
                                ///< kIndexRangeProbe a prefix of `columns`
  RangeBound lo, hi;            ///< kIndexRangeProbe: bounds on
                                ///< columns[parts.size()]

  bool is_probe() const { return kind == Kind::kIndexProbe; }
  bool is_range_probe() const { return kind == Kind::kIndexRangeProbe; }
  bool is_lazy() const { return kind != Kind::kSnapshot; }

  /// Assembles the per-binding range spec for a kIndexRangeProbe from the
  /// resolved eq-prefix values and bound values (each meaningful only when
  /// the corresponding bound is present). `null_filter_from` is 0 for SQL
  /// (NULL never matches any predicate) and parts.size() for the grounder
  /// (valuation unification matches NULL on the eq prefix) — keep that
  /// difference explicit at the call site.
  IndexRangeSpec MakeRangeSpec(const std::vector<Value>& kv, const Value& lo_v,
                               const Value& hi_v,
                               size_t null_filter_from) const;
  /// The probe-cache key for the same binding: eq prefix plus whichever
  /// bounds exist (their presence is fixed at plan time, so the layout is
  /// unambiguous).
  Row MakeRangeCacheKey(std::vector<Value> kv, const Value& lo_v,
                        const Value& hi_v) const;

  std::string ToString() const;
};

/// Per-depth cache for bind-driven join probes, keyed on the bound probe
/// key: repeated bindings neither re-probe nor re-lock. Bounded — past
/// kMaxKeys distinct keys, fetched rows go to the caller's scratch vector
/// and live only for the current binding (correct either way).
class ProbeCache {
 public:
  static constexpr size_t kMaxKeys = 1024;

  /// Cached rows for `key`, or nullptr on miss.
  const std::vector<Row>* Find(const Row& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Stores `rows` under `key` when under capacity, else parks them in
  /// `*overflow`; either way returns a pointer valid until the next Insert
  /// (or until `*overflow` is reused).
  const std::vector<Row>* Insert(Row key, std::vector<Row> rows,
                                 std::vector<Row>* overflow) {
    if (map_.size() < kMaxKeys) {
      return &map_.emplace(std::move(key), std::move(rows)).first->second;
    }
    *overflow = std::move(rows);
    return overflow;
  }

  /// The whole per-binding protocol: cached rows for `key` (counting the
  /// hit in `hits`), or the rows produced by `fetch(key, &rows)` — one
  /// transaction-manager probe — inserted under the capacity bound.
  template <typename Fetch>
  StatusOr<const std::vector<Row>*> GetOrFetch(Row key,
                                               std::atomic<uint64_t>& hits,
                                               std::vector<Row>* overflow,
                                               Fetch&& fetch) {
    if (const std::vector<Row>* cached = Find(key)) {
      hits.fetch_add(1, std::memory_order_relaxed);
      return cached;
    }
    std::vector<Row> rows;
    YT_RETURN_IF_ERROR(fetch(key, &rows));
    return Insert(std::move(key), std::move(rows), overflow);
  }

 private:
  std::unordered_map<Row, std::vector<Row>, RowHash> map_;
};

/// A candidate equality `target.column = <source>` for join-probe planning:
/// either a plan-time constant or a value that will be bound by an earlier
/// join level at run time (identified by a caller-defined (outer,
/// outer_column) pair; `bound_type` is the runtime value's static type).
struct JoinEqCandidate {
  size_t column = 0;
  bool is_const = false;
  Value constant;
  size_t outer = 0;
  size_t outer_column = 0;
  TypeId bound_type = TypeId::kNull;
};

/// A candidate inequality `target.column OP <source>` for range-probe
/// planning (OP in <, <=, >, >=, normalized so the target column is on the
/// left): `is_lo` says the source bounds the column from below (OP is > or
/// >=), `incl` whether the bound itself is admitted.
struct JoinRangeCandidate {
  size_t column = 0;
  bool is_lo = false;
  bool incl = false;
  bool is_const = false;
  Value constant;
  size_t outer = 0;
  size_t outer_column = 0;
  TypeId bound_type = TypeId::kNull;
};

/// True when the expression tree contains a COUNT/SUM/MIN/MAX/AVG node —
/// the executor's routing test for the aggregate SELECT path.
bool ContainsAggregate(const Expr* e);

/// A compiled single-table aggregate query: the access path, the
/// engine-level AggregateSpec it folds, and the select-item layout.
/// `pushable` reports whether the WHERE compiled completely into
/// `spec.filters` — only then may the fold run inside the engine
/// (shard-side on a Router); otherwise the executor evaluates the full
/// WHERE per row and folds with the filter-less spec.
struct AggregateQueryPlan {
  AccessPlan access;
  AggregateSpec spec;
  bool pushable = false;

  /// One SELECT item: an aggregate (index into spec.aggs) or a grouped
  /// column (index into spec.group_by).
  struct Output {
    bool is_agg = false;
    size_t index = 0;
  };
  std::vector<Output> outputs;

  /// HAVING predicate rewritten against the synthetic post-grouping row
  /// ("__group<g>" columns then "__agg<i>" columns): aggregates it
  /// mentions are folded alongside the select items (deduplicated into
  /// spec.aggs), and the executor filters whole groups with it before
  /// producing output rows. Null = no HAVING.
  ExprPtr having;
};

/// Access-path planning: extracts sargable equality conjuncts from a WHERE
/// clause and picks an index lookup over a full scan when a hash index
/// covers them. The residual predicate is NOT represented here — executors
/// re-evaluate the full WHERE on every returned row, so a plan is always
/// safe: the index only has to return a superset of the matching rows
/// restricted to the equality keys it covers.
class Planner {
 public:
  /// Plans access for `scope[target]`. Sargable conjuncts are top-level
  /// AND-ed `col = expr` terms whose column resolves to the target table and
  /// whose other side evaluates to a non-NULL constant from `vars` alone
  /// (literals, host variables, arithmetic over them), plus `col OP expr`
  /// range terms (OP in <, <=, >, >=; BETWEEN arrives pre-desugared) when an
  /// ordered index has the column right after an equality-covered prefix.
  /// NULL keys/bounds are never sargable (SQL comparison with NULL selects
  /// nothing; the scan path's residual predicate handles it). When `order`
  /// is given, an ordered index whose key order serves it is preferred and
  /// the plan's `ordered` flag reports whether the sort can be skipped.
  static StatusOr<AccessPlan> Plan(const Table& table,
                                   const std::vector<TableScope>& scope,
                                   size_t target, const Expr* where,
                                   const VarEnv* vars,
                                   const OrderSpec* order = nullptr);

  /// Compiles a single-table aggregate SELECT (`scope` must have exactly
  /// one entry, the FROM table). Plan-time validation with clear errors:
  /// every select item must be a bare aggregate call or a GROUP BY column;
  /// aggregate arguments and GROUP BY keys must be plain columns of the
  /// table; SUM/AVG require a numeric column; WHERE must be
  /// aggregate-free. The access plan prunes like any read; WHERE conjuncts
  /// of the shape `col OP constant` compile into engine-level
  /// ColumnFilters (all of them => `pushable`).
  static StatusOr<AggregateQueryPlan> PlanAggregate(
      const Table& table, const std::vector<TableScope>& scope,
      const SelectStmt& sel, const VarEnv* vars);

  /// Plans from pre-extracted (column position, value) equality pairs — the
  /// entangled-query grounder's constant atom positions are exactly this.
  /// Values are coerced to the column types; pairs that cannot coerce (or
  /// are NULL) are dropped, which can only demote the plan to a scan.
  static AccessPlan PlanPointLookup(
      const Table& table, const std::vector<std::pair<size_t, Value>>& eqs);

  /// Plans an eager ordered-index range fetch from equality pairs plus
  /// *constant* range candidates (the grounder's constant atom positions
  /// and constant body predicates over variables its atom binds:
  /// `Vals(y, p), y <= 60`). Bounds must survive coercion exactly; dropped
  /// candidates can only demote the plan to a scan. Runtime-bound
  /// candidates are ignored — they are PlanJoinProbe territory.
  static AccessPlan PlanRangeLookup(
      const Table& table, const std::vector<std::pair<size_t, Value>>& eqs,
      const std::vector<JoinRangeCandidate>& ranges);

  /// Plans a bind-driven probe for `scope[target]` at its join depth: join
  /// conjuncts `target.col = earlier.col` (earlier FROM table, identical
  /// column type, so no runtime coercion is ever needed) count as key parts
  /// alongside plan-time constants. Returns kIndexProbe only when a hash
  /// index is fully covered AND at least one part is runtime-bound —
  /// constant-only coverage is `Plan`'s job (one eager lookup beats
  /// per-binding probes there).
  static StatusOr<JoinProbePlan> PlanJoinProbe(
      const Table& table, const std::vector<TableScope>& scope, size_t target,
      const Expr* where, const VarEnv* vars);

  /// Core join-probe planning from pre-extracted candidates (the grounder
  /// derives them from atom terms: constants, plus variables bound by
  /// earlier body atoms). Constants are coerced to the column types at plan
  /// time; runtime-bound parts must match the column type exactly. Dropped
  /// candidates can only demote the plan to kSnapshot.
  static JoinProbePlan PlanJoinProbe(const Table& table,
                                     const std::vector<JoinEqCandidate>& eqs);

  /// Same with inequality candidates: when no hash index is fully
  /// equality-covered but an ordered index has an equality-covered prefix
  /// followed by a range-candidate column, plans a kIndexRangeProbe — the
  /// per-binding interval `inner.col > outer.col` fetch with a key-range S
  /// lock per probe. At least one eq part or bound must be runtime-bound.
  static JoinProbePlan PlanJoinProbe(
      const Table& table, const std::vector<JoinEqCandidate>& eqs,
      const std::vector<JoinRangeCandidate>& ranges);
};

}  // namespace youtopia::sql

#endif  // YOUTOPIA_SQL_PLANNER_H_
