#ifndef YOUTOPIA_SQL_PLANNER_H_
#define YOUTOPIA_SQL_PLANNER_H_

#include <string>
#include <utility>
#include <vector>

#include "src/sql/ast.h"
#include "src/sql/expr_eval.h"
#include "src/storage/table.h"

namespace youtopia::sql {

/// One FROM-clause entry visible while planning (alias resolution follows
/// the executor: an unqualified column binds to the first table that has
/// it).
struct TableScope {
  std::string alias;
  const Schema* schema = nullptr;
};

/// The access path chosen for one table: a full scan, or a hash-index
/// lookup with the key values already coerced to the indexed columns'
/// types.
struct AccessPlan {
  enum class Kind { kTableScan, kIndexLookup };

  Kind kind = Kind::kTableScan;
  std::vector<size_t> columns;  ///< index columns (schema positions)
  Row key;                      ///< lookup key, in `columns` order

  bool is_index() const { return kind == Kind::kIndexLookup; }
  std::string ToString() const;
};

/// Access-path planning: extracts sargable equality conjuncts from a WHERE
/// clause and picks an index lookup over a full scan when a hash index
/// covers them. The residual predicate is NOT represented here — executors
/// re-evaluate the full WHERE on every returned row, so a plan is always
/// safe: the index only has to return a superset of the matching rows
/// restricted to the equality keys it covers.
class Planner {
 public:
  /// Plans access for `scope[target]`. Sargable conjuncts are top-level
  /// AND-ed `col = expr` terms whose column resolves to the target table and
  /// whose other side evaluates to a non-NULL constant from `vars` alone
  /// (literals, host variables, arithmetic over them). NULL keys are never
  /// sargable (SQL equality with NULL selects nothing; the scan path's
  /// residual predicate handles it).
  static StatusOr<AccessPlan> Plan(const Table& table,
                                   const std::vector<TableScope>& scope,
                                   size_t target, const Expr* where,
                                   const VarEnv* vars);

  /// Plans from pre-extracted (column position, value) equality pairs — the
  /// entangled-query grounder's constant atom positions are exactly this.
  /// Values are coerced to the column types; pairs that cannot coerce (or
  /// are NULL) are dropped, which can only demote the plan to a scan.
  static AccessPlan PlanPointLookup(
      const Table& table, const std::vector<std::pair<size_t, Value>>& eqs);
};

}  // namespace youtopia::sql

#endif  // YOUTOPIA_SQL_PLANNER_H_
