#include "src/sql/session.h"

#include <chrono>
#include <thread>
#include <utility>

#include "src/common/clock.h"
#include "src/common/fault.h"
#include "src/common/metrics.h"

namespace youtopia::sql {

namespace {

struct SqlMetricHandles {
  Histogram* statement_micros;
  Counter* statements;
  Counter* retries;
};

const SqlMetricHandles& SqlMetrics() {
  static const SqlMetricHandles h = [] {
    MetricsRegistry* r = MetricsRegistry::Global();
    return SqlMetricHandles{r->histogram("sql.statement_micros"),
                            r->counter("sql.statements"),
                            r->counter("sql.statement_retries")};
  }();
  return h;
}

/// Transient = the engine killed this attempt to break a conflict, and an
/// identical rerun can win: deadlock victim / first-updater-wins
/// (kAborted) and lock-wait timeout (kTimedOut). Never retry once the
/// crash latch is set — every operation is doomed until recovery, and
/// spinning on it would just burn the backoff budget.
bool RetryableAbort(const Status& s) {
  if (s.code() != StatusCode::kAborted && s.code() != StatusCode::kTimedOut) {
    return false;
  }
  return !FaultInjector::Global()->crashed();
}

}  // namespace

Session::~Session() {
  if (txn_ != nullptr && txn_->active()) {
    (void)tm_->Abort(txn_.get());
  }
}

StatusOr<QueryResult> Session::Execute(const std::string& text) {
  if (!metrics_enabled()) {
    YT_ASSIGN_OR_RETURN(ParsedStatement stmt, Parser::ParseStatement(text));
    return ExecuteParsed(stmt);
  }
  // Statement envelope: total latency histogram, sampled root span (child
  // spans — txn.commit, 2pc.*, lock.wait, wal.group_commit_wait — nest under
  // it), and wait-attribution deltas for the slow-query log.
  const int64_t start = SystemClock::Default()->NowMicros();
  const ThreadOpStats before = CurrentThreadOpStats();
  Tracer* tracer = Tracer::Global();
  ScopedTraceSpan span("sql.statement",
                       tracer->ShouldSample() ? tracer->NewTraceId() : 0);
  StatusOr<QueryResult> result = [&]() -> StatusOr<QueryResult> {
    YT_ASSIGN_OR_RETURN(ParsedStatement stmt, Parser::ParseStatement(text));
    return ExecuteParsed(stmt);
  }();
  const int64_t total = SystemClock::Default()->NowMicros() - start;
  SqlMetrics().statement_micros->Record(total);
  SqlMetrics().statements->Add();
  if (SlowQueryLog::Global()->WouldAdmit(total)) {
    const ThreadOpStats& after = CurrentThreadOpStats();
    SlowQueryLog::Entry e;
    e.sql = text;
    e.total_micros = total;
    e.lock_wait_micros = after.lock_wait_micros - before.lock_wait_micros;
    e.flush_wait_micros = after.flush_wait_micros - before.flush_wait_micros;
    e.trace_id = span.trace_id();
    e.when_micros = start + total;
    SlowQueryLog::Global()->Record(std::move(e));
  }
  return result;
}

StatusOr<QueryResult> Session::ExecuteScript(const std::string& text) {
  YT_ASSIGN_OR_RETURN(std::vector<ParsedStatement> stmts,
                      Parser::ParseScript(text));
  QueryResult last;
  for (const ParsedStatement& stmt : stmts) {
    YT_ASSIGN_OR_RETURN(last, ExecuteParsed(stmt));
  }
  return last;
}

StatusOr<QueryResult> Session::ExecuteParsed(const ParsedStatement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kBegin: {
      if (txn_ != nullptr) {
        return Status::InvalidArgument("transaction already open");
      }
      txn_ = tm_->Begin();
      return QueryResult{};
    }
    case StatementKind::kCommit: {
      if (txn_ == nullptr) {
        return Status::InvalidArgument("no open transaction");
      }
      Status s = tm_->Commit(txn_.get());
      txn_.reset();
      if (!s.ok()) return s;
      return QueryResult{};
    }
    case StatementKind::kRollback: {
      if (txn_ == nullptr) {
        return Status::InvalidArgument("no open transaction");
      }
      Status s = tm_->Abort(txn_.get());
      txn_.reset();
      if (!s.ok()) return s;
      return QueryResult{};
    }
    case StatementKind::kEntangledSelect:
      return Status::InvalidArgument(
          "entangled queries require the entangled transaction engine");
    default:
      break;
  }

  if (txn_ != nullptr) {
    auto result = exec_.Execute(stmt, txn_.get(), &vars_);
    if (!result.ok() && result.status().code() != StatusCode::kNotFound &&
        result.status().code() != StatusCode::kInvalidArgument) {
      // Engine-level failures (deadlock victim, lock timeout) doom the
      // transaction; roll it back so locks are not stranded.
      (void)tm_->Abort(txn_.get());
      txn_.reset();
    }
    return result;
  }

  // Autocommit path: the statement is its whole transaction, so a
  // transient abort (deadlock victim, lock timeout, first-updater-wins)
  // reruns it under bounded exponential backoff.
  int64_t backoff = retry_policy_.initial_backoff_micros;
  for (int attempt = 1;; ++attempt) {
    auto result = AutocommitOnce(stmt);
    if (result.ok() || !RetryableAbort(result.status()) ||
        attempt >= retry_policy_.max_attempts) {
      return result;
    }
    statement_retries_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_enabled()) SqlMetrics().retries->Add();
    std::this_thread::sleep_for(std::chrono::microseconds(backoff));
    backoff = std::min(backoff * 2, retry_policy_.max_backoff_micros);
  }
}

StatusOr<QueryResult> Session::AutocommitOnce(const ParsedStatement& stmt) {
  std::unique_ptr<Transaction> txn = tm_->Begin();
  auto result = exec_.Execute(stmt, txn.get(), &vars_);
  if (!result.ok()) {
    (void)tm_->Abort(txn.get());
    return result;
  }
  Status cs = tm_->Commit(txn.get());
  if (!cs.ok()) {
    // A failed Commit aborted (or crashed) the transaction itself; no
    // cleanup here. Commit-time conflicts are retryable like execution
    // ones.
    return cs;
  }
  return result;
}

}  // namespace youtopia::sql
