#include "src/sql/session.h"

#include <chrono>
#include <thread>

#include "src/common/fault.h"

namespace youtopia::sql {

namespace {

/// Transient = the engine killed this attempt to break a conflict, and an
/// identical rerun can win: deadlock victim / first-updater-wins
/// (kAborted) and lock-wait timeout (kTimedOut). Never retry once the
/// crash latch is set — every operation is doomed until recovery, and
/// spinning on it would just burn the backoff budget.
bool RetryableAbort(const Status& s) {
  if (s.code() != StatusCode::kAborted && s.code() != StatusCode::kTimedOut) {
    return false;
  }
  return !FaultInjector::Global()->crashed();
}

}  // namespace

Session::~Session() {
  if (txn_ != nullptr && txn_->active()) {
    (void)tm_->Abort(txn_.get());
  }
}

StatusOr<QueryResult> Session::Execute(const std::string& text) {
  YT_ASSIGN_OR_RETURN(ParsedStatement stmt, Parser::ParseStatement(text));
  return ExecuteParsed(stmt);
}

StatusOr<QueryResult> Session::ExecuteScript(const std::string& text) {
  YT_ASSIGN_OR_RETURN(std::vector<ParsedStatement> stmts,
                      Parser::ParseScript(text));
  QueryResult last;
  for (const ParsedStatement& stmt : stmts) {
    YT_ASSIGN_OR_RETURN(last, ExecuteParsed(stmt));
  }
  return last;
}

StatusOr<QueryResult> Session::ExecuteParsed(const ParsedStatement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kBegin: {
      if (txn_ != nullptr) {
        return Status::InvalidArgument("transaction already open");
      }
      txn_ = tm_->Begin();
      return QueryResult{};
    }
    case StatementKind::kCommit: {
      if (txn_ == nullptr) {
        return Status::InvalidArgument("no open transaction");
      }
      Status s = tm_->Commit(txn_.get());
      txn_.reset();
      if (!s.ok()) return s;
      return QueryResult{};
    }
    case StatementKind::kRollback: {
      if (txn_ == nullptr) {
        return Status::InvalidArgument("no open transaction");
      }
      Status s = tm_->Abort(txn_.get());
      txn_.reset();
      if (!s.ok()) return s;
      return QueryResult{};
    }
    case StatementKind::kEntangledSelect:
      return Status::InvalidArgument(
          "entangled queries require the entangled transaction engine");
    default:
      break;
  }

  if (txn_ != nullptr) {
    auto result = exec_.Execute(stmt, txn_.get(), &vars_);
    if (!result.ok() && result.status().code() != StatusCode::kNotFound &&
        result.status().code() != StatusCode::kInvalidArgument) {
      // Engine-level failures (deadlock victim, lock timeout) doom the
      // transaction; roll it back so locks are not stranded.
      (void)tm_->Abort(txn_.get());
      txn_.reset();
    }
    return result;
  }

  // Autocommit path: the statement is its whole transaction, so a
  // transient abort (deadlock victim, lock timeout, first-updater-wins)
  // reruns it under bounded exponential backoff.
  int64_t backoff = retry_policy_.initial_backoff_micros;
  for (int attempt = 1;; ++attempt) {
    auto result = AutocommitOnce(stmt);
    if (result.ok() || !RetryableAbort(result.status()) ||
        attempt >= retry_policy_.max_attempts) {
      return result;
    }
    ++statement_retries_;
    std::this_thread::sleep_for(std::chrono::microseconds(backoff));
    backoff = std::min(backoff * 2, retry_policy_.max_backoff_micros);
  }
}

StatusOr<QueryResult> Session::AutocommitOnce(const ParsedStatement& stmt) {
  std::unique_ptr<Transaction> txn = tm_->Begin();
  auto result = exec_.Execute(stmt, txn.get(), &vars_);
  if (!result.ok()) {
    (void)tm_->Abort(txn.get());
    return result;
  }
  Status cs = tm_->Commit(txn.get());
  if (!cs.ok()) {
    // A failed Commit aborted (or crashed) the transaction itself; no
    // cleanup here. Commit-time conflicts are retryable like execution
    // ones.
    return cs;
  }
  return result;
}

}  // namespace youtopia::sql
