#include "src/sql/session.h"

namespace youtopia::sql {

Session::~Session() {
  if (txn_ != nullptr && txn_->active()) {
    (void)tm_->Abort(txn_.get());
  }
}

StatusOr<QueryResult> Session::Execute(const std::string& text) {
  YT_ASSIGN_OR_RETURN(ParsedStatement stmt, Parser::ParseStatement(text));
  return ExecuteParsed(stmt);
}

StatusOr<QueryResult> Session::ExecuteScript(const std::string& text) {
  YT_ASSIGN_OR_RETURN(std::vector<ParsedStatement> stmts,
                      Parser::ParseScript(text));
  QueryResult last;
  for (const ParsedStatement& stmt : stmts) {
    YT_ASSIGN_OR_RETURN(last, ExecuteParsed(stmt));
  }
  return last;
}

StatusOr<QueryResult> Session::ExecuteParsed(const ParsedStatement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kBegin: {
      if (txn_ != nullptr) {
        return Status::InvalidArgument("transaction already open");
      }
      txn_ = tm_->Begin();
      return QueryResult{};
    }
    case StatementKind::kCommit: {
      if (txn_ == nullptr) {
        return Status::InvalidArgument("no open transaction");
      }
      Status s = tm_->Commit(txn_.get());
      txn_.reset();
      if (!s.ok()) return s;
      return QueryResult{};
    }
    case StatementKind::kRollback: {
      if (txn_ == nullptr) {
        return Status::InvalidArgument("no open transaction");
      }
      Status s = tm_->Abort(txn_.get());
      txn_.reset();
      if (!s.ok()) return s;
      return QueryResult{};
    }
    case StatementKind::kEntangledSelect:
      return Status::InvalidArgument(
          "entangled queries require the entangled transaction engine");
    default:
      break;
  }

  if (txn_ != nullptr) {
    auto result = exec_.Execute(stmt, txn_.get(), &vars_);
    if (!result.ok() && result.status().code() != StatusCode::kNotFound &&
        result.status().code() != StatusCode::kInvalidArgument) {
      // Engine-level failures (deadlock victim, lock timeout) doom the
      // transaction; roll it back so locks are not stranded.
      (void)tm_->Abort(txn_.get());
      txn_.reset();
    }
    return result;
  }

  // Autocommit path.
  std::unique_ptr<Transaction> txn = tm_->Begin();
  auto result = exec_.Execute(stmt, txn.get(), &vars_);
  if (!result.ok()) {
    (void)tm_->Abort(txn.get());
    return result;
  }
  YT_RETURN_IF_ERROR(tm_->Commit(txn.get()));
  return result;
}

}  // namespace youtopia::sql
