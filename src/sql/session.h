#ifndef YOUTOPIA_SQL_SESSION_H_
#define YOUTOPIA_SQL_SESSION_H_

#include <memory>
#include <string>

#include "src/sql/executor.h"
#include "src/sql/parser.h"

namespace youtopia::sql {

/// A classical client session: text in, results out, with transaction
/// control and host variables. Autocommits statements issued outside an
/// explicit BEGIN ... COMMIT block. One session == one connection == at most
/// one open transaction, matching the paper's MySQL setup.
///
/// Entangled queries are rejected here: they require the run-based engine
/// (etxn::EntangledTransactionEngine).
class Session {
 public:
  explicit Session(TxnEngine* tm) : tm_(tm), exec_(tm) {}
  ~Session();

  /// Parses and executes one statement.
  StatusOr<QueryResult> Execute(const std::string& text);

  /// Executes a ';'-separated script; returns the last statement's result.
  StatusOr<QueryResult> ExecuteScript(const std::string& text);

  VarEnv& vars() { return vars_; }
  Executor& executor() { return exec_; }
  Transaction* current_txn() { return txn_.get(); }
  bool in_transaction() const { return txn_ != nullptr; }

 private:
  StatusOr<QueryResult> ExecuteParsed(const ParsedStatement& stmt);

  TxnEngine* tm_;
  Executor exec_;
  std::unique_ptr<Transaction> txn_;
  VarEnv vars_;
};

}  // namespace youtopia::sql

#endif  // YOUTOPIA_SQL_SESSION_H_
