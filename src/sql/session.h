#ifndef YOUTOPIA_SQL_SESSION_H_
#define YOUTOPIA_SQL_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/sql/executor.h"
#include "src/sql/parser.h"

namespace youtopia::sql {

/// A classical client session: text in, results out, with transaction
/// control and host variables. Autocommits statements issued outside an
/// explicit BEGIN ... COMMIT block. One session == one connection == at most
/// one open transaction, matching the paper's MySQL setup.
///
/// Autocommitted statements transparently retry *transient* aborts —
/// deadlock victims, lock-wait timeouts, first-updater-wins conflicts —
/// under a bounded exponential backoff (RetryPolicy): the statement is its
/// whole transaction, so a clean rerun is always safe. Statements inside
/// an explicit BEGIN are never retried (the application owns the
/// transaction's history and must rerun it itself), and nothing retries
/// once the fault injector's crash latch is set.
///
/// Entangled queries are rejected here: they require the run-based engine
/// (etxn::EntangledTransactionEngine).
class Session {
 public:
  /// Backoff schedule for autocommit retries. Defaults: 4 attempts total,
  /// 200us first backoff, doubling to at most 10ms.
  struct RetryPolicy {
    int max_attempts = 4;
    int64_t initial_backoff_micros = 200;
    int64_t max_backoff_micros = 10'000;
  };

  explicit Session(TxnEngine* tm) : tm_(tm), exec_(tm) {}
  ~Session();

  /// Parses and executes one statement.
  StatusOr<QueryResult> Execute(const std::string& text);

  /// Executes a ';'-separated script; returns the last statement's result.
  StatusOr<QueryResult> ExecuteScript(const std::string& text);

  VarEnv& vars() { return vars_; }
  Executor& executor() { return exec_; }
  Transaction* current_txn() { return txn_.get(); }
  bool in_transaction() const { return txn_ != nullptr; }

  void set_retry_policy(RetryPolicy p) { retry_policy_ = p; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }
  /// Transient-abort reruns performed by this session's autocommit path.
  /// Atomic: monitoring threads (SHOW STATS, tests) read it while the
  /// session's worker is mid-retry.
  uint64_t statement_retries() const {
    return statement_retries_.load(std::memory_order_relaxed);
  }

 private:
  StatusOr<QueryResult> ExecuteParsed(const ParsedStatement& stmt);
  /// One autocommit attempt: Begin, execute, Commit (abort on failure).
  StatusOr<QueryResult> AutocommitOnce(const ParsedStatement& stmt);

  TxnEngine* tm_;
  Executor exec_;
  std::unique_ptr<Transaction> txn_;
  VarEnv vars_;
  RetryPolicy retry_policy_;
  std::atomic<uint64_t> statement_retries_{0};
};

}  // namespace youtopia::sql

#endif  // YOUTOPIA_SQL_SESSION_H_
