#include "src/sql/session_server.h"

#include <algorithm>

#include "src/common/metrics.h"
#include "src/wal/group_commit.h"

namespace youtopia::sql {

namespace {

struct ServerMetricHandles {
  Gauge* queue_depth;  ///< submitted-not-finished statements (+ high water)
  Counter* park_runs;
  Counter* served;
};

const ServerMetricHandles& ServerMetrics() {
  static const ServerMetricHandles h = [] {
    MetricsRegistry* r = MetricsRegistry::Global();
    return ServerMetricHandles{r->gauge("sql.server.queue_depth"),
                               r->counter("sql.server.park_runs"),
                               r->counter("sql.server.statements_served")};
  }();
  return h;
}

/// Re-entrancy bound for park work: a parked commit may run a statement
/// whose own commit parks again. Each level pins a suspended statement's
/// stack frame, so cap it well before anything interesting happens to the
/// thread's stack.
constexpr int kMaxParkDepth = 8;
thread_local int park_depth = 0;

}  // namespace

SessionServer::SessionServer(TxnEngine* engine, Options options)
    : engine_(engine) {
  size_t n = std::max<size_t>(1, options.num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

SessionServer::~SessionServer() {
  Drain();
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

SessionServer::SessionId SessionServer::OpenSession() {
  std::lock_guard<std::mutex> g(mu_);
  SessionId id = next_id_++;
  auto state = std::make_unique<SessionState>();
  state->session = std::make_unique<Session>(engine_);
  states_.emplace(id, std::move(state));
  return id;
}

Session* SessionServer::session(SessionId id) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = states_.find(id);
  return it == states_.end() ? nullptr : it->second->session.get();
}

size_t SessionServer::num_sessions() const {
  std::lock_guard<std::mutex> g(mu_);
  return states_.size();
}

void SessionServer::Submit(SessionId id, std::string sql,
                           ResultCallback done) {
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = states_.find(id);
    if (it == states_.end()) {
      if (done) {
        done(Status::InvalidArgument("unknown session " + std::to_string(id)));
      }
      return;
    }
    SessionState* st = it->second.get();
    st->queue.emplace_back(std::move(sql), std::move(done));
    ++pending_;
    if (metrics_enabled()) {
      Gauge* depth = ServerMetrics().queue_depth;
      depth->Set(static_cast<int64_t>(pending_));
      depth->SetMaxHint(static_cast<int64_t>(pending_));
    }
    if (!st->scheduled) {
      st->scheduled = true;
      ready_.push_back(id);
    }
  }
  cv_.notify_one();
}

StatusOr<QueryResult> SessionServer::ExecuteSync(SessionId id,
                                                 const std::string& sql) {
  std::mutex m;
  std::condition_variable done_cv;
  bool done = false;
  StatusOr<QueryResult> out = Status::Internal("statement never ran");
  Submit(id, sql, [&](const StatusOr<QueryResult>& r) {
    std::lock_guard<std::mutex> g(m);
    out = r;
    done = true;
    done_cv.notify_one();
  });
  std::unique_lock<std::mutex> g(m);
  done_cv.wait(g, [&] { return done; });
  return out;
}

void SessionServer::Drain() {
  std::unique_lock<std::mutex> g(mu_);
  drain_cv_.wait(g, [&] { return pending_ == 0; });
}

void SessionServer::RunNext(std::unique_lock<std::mutex>& g) {
  SessionId id = ready_.front();
  ready_.pop_front();
  SessionState* st = states_.find(id)->second.get();
  auto [sql, cb] = std::move(st->queue.front());
  st->queue.pop_front();
  g.unlock();
  StatusOr<QueryResult> result = st->session->Execute(sql);
  if (cb) cb(result);
  g.lock();
  served_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_enabled()) ServerMetrics().served->Add();
  if (!st->queue.empty()) {
    // Re-queue at the back: round-robin fairness across busy sessions.
    ready_.push_back(id);
    cv_.notify_one();
  } else {
    st->scheduled = false;
  }
  if (metrics_enabled()) {
    ServerMetrics().queue_depth->Set(static_cast<int64_t>(pending_ - 1));
  }
  if (--pending_ == 0) drain_cv_.notify_all();
}

bool SessionServer::ParkWork() {
  if (park_depth >= kMaxParkDepth) return false;
  // try_to_lock: the hook runs deep inside a commit — never risk waiting on
  // a server that is busy; the caller falls back to a bounded cv wait.
  std::unique_lock<std::mutex> g(mu_, std::try_to_lock);
  if (!g.owns_lock() || stop_ || ready_.empty()) return false;
  ++park_depth;
  parked_runs_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_enabled()) ServerMetrics().park_runs->Add();
  RunNext(g);
  --park_depth;
  return true;
}

void SessionServer::WorkerLoop() {
  std::function<bool()> park = [this] { return ParkWork(); };
  GroupCommitQueue::SetThreadParkWork(&park);
  std::unique_lock<std::mutex> g(mu_);
  while (true) {
    cv_.wait(g, [&] { return stop_ || !ready_.empty(); });
    if (stop_) break;
    RunNext(g);
  }
  g.unlock();
  GroupCommitQueue::SetThreadParkWork(nullptr);
}

}  // namespace youtopia::sql
