#ifndef YOUTOPIA_SQL_SESSION_SERVER_H_
#define YOUTOPIA_SQL_SESSION_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sql/session.h"

namespace youtopia::sql {

/// Multiplexing front end: a small worker pool drives many Sessions, so
/// serving capacity is no longer one thread per connection. Statements are
/// submitted per session and run strictly in per-session FIFO order, at most
/// one at a time per session (Session is not thread-safe; the scheduler
/// guarantees a session is owned by one worker while its statement runs).
/// Between statements a session is just parked state — an open transaction,
/// host variables, and (through the pull-based cursor seam) any suspended
/// statement is an open TableCursor waiting for its next pull.
///
/// Park-don't-block: each worker installs a GroupCommitQueue park-work hook.
/// When a session's commit ticket waits for the group flush, the worker runs
/// OTHER ready sessions' statements instead of sleeping — their commits pile
/// into the very batch the first ticket is waiting on. Nesting is depth-
/// capped, and a nested statement that blocks on the parked transaction's
/// locks is broken by the ordinary lock timeout.
class SessionServer {
 public:
  struct Options {
    size_t num_threads = 2;
  };
  using SessionId = uint64_t;
  /// Invoked (on a worker thread, no server lock held) when the statement
  /// finishes. Must not call Drain() or ExecuteSync() on this server.
  using ResultCallback = std::function<void(const StatusOr<QueryResult>&)>;

  SessionServer(TxnEngine* engine, Options options);
  ~SessionServer();

  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  /// Creates a session; the id is its handle for Submit/ExecuteSync.
  SessionId OpenSession();

  /// The underlying session (retry policy, host variables). Only safe to
  /// touch while the session has no queued or running statement.
  Session* session(SessionId id);

  /// Enqueues one statement for `id`. Statements of one session run in
  /// submission order; statements of different sessions interleave freely.
  void Submit(SessionId id, std::string sql, ResultCallback done = nullptr);

  /// Submit + wait for this one statement's result. Must not be called from
  /// a worker thread (it would wait on itself).
  StatusOr<QueryResult> ExecuteSync(SessionId id, const std::string& sql);

  /// Blocks until every submitted statement has finished.
  void Drain();

  size_t num_threads() const { return threads_.size(); }
  size_t num_sessions() const;
  uint64_t statements_served() const {
    return served_.load(std::memory_order_relaxed);
  }
  /// Statements run by a worker while one of its commits was parked in the
  /// group-commit queue — the park-don't-block rule observable.
  uint64_t parked_runs() const {
    return parked_runs_.load(std::memory_order_relaxed);
  }

 private:
  struct SessionState {
    std::unique_ptr<Session> session;
    std::deque<std::pair<std::string, ResultCallback>> queue;
    /// True while the session sits in ready_ or a worker runs its statement
    /// — the at-most-once scheduling invariant.
    bool scheduled = false;
  };

  void WorkerLoop();
  /// Pops the front ready session and runs its next statement. Caller holds
  /// `g` (released during execution, re-held on return).
  void RunNext(std::unique_lock<std::mutex>& g);
  /// Park-work hook body: runs one ready statement if any, non-blocking.
  bool ParkWork();

  TxnEngine* engine_;
  mutable std::mutex mu_;
  std::condition_variable cv_;        ///< workers: ready work or stop
  std::condition_variable drain_cv_;  ///< Drain(): pending_ == 0
  std::unordered_map<SessionId, std::unique_ptr<SessionState>> states_;
  std::deque<SessionId> ready_;
  SessionId next_id_ = 1;
  uint64_t pending_ = 0;  ///< submitted, not yet finished
  bool stop_ = false;
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> parked_runs_{0};
  std::vector<std::thread> threads_;
};

}  // namespace youtopia::sql

#endif  // YOUTOPIA_SQL_SESSION_SERVER_H_
