#include "src/storage/aggregate.h"

#include <utility>

namespace youtopia {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

bool ColumnFilter::Matches(const Row& row) const {
  const Value& v = row[column];
  // SQL comparison against NULL yields NULL, which is falsy as a filter.
  if (v.is_null() || value.is_null()) return false;
  int cmp = v.Compare(value);
  switch (op) {
    case Op::kEq:
      return cmp == 0;
    case Op::kNe:
      return cmp != 0;
    case Op::kLt:
      return cmp < 0;
    case Op::kLe:
      return cmp <= 0;
    case Op::kGt:
      return cmp > 0;
    case Op::kGe:
      return cmp >= 0;
  }
  return false;
}

std::string AggregateSpec::ToString() const {
  std::string out = "agg{";
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i > 0) out += ", ";
    out += AggFuncName(aggs[i].func);
    out += '(';
    out += aggs[i].func == AggFunc::kCountStar ? "*"
                                               : "#" + std::to_string(aggs[i].column);
    out += ')';
  }
  if (!group_by.empty()) {
    out += " group by ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += "#" + std::to_string(group_by[i]);
    }
  }
  if (!filters.empty()) out += " +" + std::to_string(filters.size()) + " filters";
  out += '}';
  return out;
}

Aggregator::Aggregator(AggregateSpec spec) : spec_(std::move(spec)) {
  key_scratch_.reserve(spec_.group_by.size());
}

namespace {

/// Folds one input value into `state` for `func`. NULL inputs never
/// contribute (except kCountStar, which never reads the value).
Status FoldValue(AggFunc func, const Value& v, AggState* state) {
  switch (func) {
    case AggFunc::kCountStar:
      ++state->count;
      return Status::Ok();
    case AggFunc::kCount:
      if (!v.is_null()) ++state->count;
      return Status::Ok();
    case AggFunc::kSum: {
      if (v.is_null()) return Status::Ok();
      if (state->acc.is_null()) {
        state->acc = v;
        return Status::Ok();
      }
      YT_ASSIGN_OR_RETURN(state->acc, Value::Add(state->acc, v));
      return Status::Ok();
    }
    case AggFunc::kMin:
      if (!v.is_null() && (state->acc.is_null() || v.Compare(state->acc) < 0)) {
        state->acc = v;
      }
      return Status::Ok();
    case AggFunc::kMax:
      if (!v.is_null() && (state->acc.is_null() || v.Compare(state->acc) > 0)) {
        state->acc = v;
      }
      return Status::Ok();
    case AggFunc::kAvg: {
      if (v.is_null()) return Status::Ok();
      ++state->count;
      if (state->acc.is_null()) {
        state->acc = v;
        return Status::Ok();
      }
      YT_ASSIGN_OR_RETURN(state->acc, Value::Add(state->acc, v));
      return Status::Ok();
    }
  }
  return Status::Internal("unknown aggregate function");
}

/// Folds another partial's state into `into` — the shard-merge step.
/// Count-like merges add counts; value accumulators re-fold the partial
/// accumulator as if it were one input (sums add, MIN/MAX compare), which
/// is exact because each of these folds is associative and commutative.
Status MergeState(AggFunc func, AggState&& from, AggState* into) {
  switch (func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      into->count += from.count;
      return Status::Ok();
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      return FoldValue(func, from.acc, into);
    case AggFunc::kAvg: {
      into->count += from.count;
      if (from.acc.is_null()) return Status::Ok();
      if (into->acc.is_null()) {
        into->acc = std::move(from.acc);
        return Status::Ok();
      }
      YT_ASSIGN_OR_RETURN(into->acc, Value::Add(into->acc, from.acc));
      return Status::Ok();
    }
  }
  return Status::Internal("unknown aggregate function");
}

}  // namespace

void Aggregator::Accumulate(const Row& row) {
  for (const ColumnFilter& f : spec_.filters) {
    if (!f.Matches(row)) return;
  }
  key_scratch_.clear();
  for (size_t c : spec_.group_by) key_scratch_.push_back(row[c]);
  auto it = groups_.find(Row(key_scratch_));
  if (it == groups_.end()) {
    it = groups_
             .emplace(Row(key_scratch_),
                      std::vector<AggState>(spec_.aggs.size()))
             .first;
  }
  for (size_t i = 0; i < spec_.aggs.size(); ++i) {
    const AggSpec& a = spec_.aggs[i];
    const Value& v = a.func == AggFunc::kCountStar ? it->second[i].acc
                                                   : row[a.column];
    Status st = FoldValue(a.func, v, &it->second[i]);
    if (!st.ok() && error_.ok()) error_ = st;
  }
}

void Aggregator::Merge(AggregateGroups partial) {
  for (auto& [key, states] : partial) {
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      groups_.emplace(key, std::move(states));
      continue;
    }
    for (size_t i = 0; i < spec_.aggs.size(); ++i) {
      Status st =
          MergeState(spec_.aggs[i].func, std::move(states[i]), &it->second[i]);
      if (!st.ok() && error_.ok()) error_ = st;
    }
  }
}

Value Aggregator::Finalize(AggFunc func, const AggState& state) {
  switch (func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Value::Int(state.count);
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      return state.acc;
    case AggFunc::kAvg:
      if (state.count == 0) return Value::Null();
      return Value::Double(state.acc.NumericAsDouble() /
                           static_cast<double>(state.count));
  }
  return Value::Null();
}

std::vector<AggState> Aggregator::EmptyStates(const AggregateSpec& spec) {
  // Default AggState (NULL accumulator, zero count) finalizes to exactly
  // the SQL empty-input answers: COUNT -> 0, SUM/MIN/MAX/AVG -> NULL.
  return std::vector<AggState>(spec.aggs.size());
}

}  // namespace youtopia
