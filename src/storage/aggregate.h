#ifndef YOUTOPIA_STORAGE_AGGREGATE_H_
#define YOUTOPIA_STORAGE_AGGREGATE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/row.h"
#include "src/common/statusor.h"
#include "src/common/value.h"

namespace youtopia {

/// Aggregate functions the engine can fold. COUNT comes in two flavors
/// because their NULL semantics differ: kCountStar counts rows, kCount
/// counts non-NULL values of its column.
enum class AggFunc : uint8_t {
  kCountStar,
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
};

const char* AggFuncName(AggFunc f);

/// One aggregate to compute: the function plus the schema position of its
/// argument column (ignored for kCountStar).
struct AggSpec {
  AggFunc func = AggFunc::kCountStar;
  size_t column = 0;
};

/// One pushable filter `row[column] OP value`, evaluated with SQL
/// comparison semantics: a NULL on either side fails the filter (mirroring
/// the executor's three-valued comparison, where NULL is falsy). The value
/// is stored as folded — Value::Compare's cross-type numeric ordering makes
/// coercion unnecessary, exactly as in expression evaluation.
struct ColumnFilter {
  enum class Op : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

  size_t column = 0;
  Op op = Op::kEq;
  Value value;

  bool Matches(const Row& row) const;
};

/// A complete aggregation request over one table read: the grouping
/// columns (schema positions; empty = one global group), the aggregates,
/// and an AND-ed filter list. This is the engine-level vocabulary —
/// sql::Planner compiles a GROUP BY query down to it, and engines fold it
/// either locally or as per-shard partials (shard::Router). Living next to
/// AccessPlan keeps it expressible below the SQL layer, which is what lets
/// a sharded engine run the fold inside its per-shard drain threads.
struct AggregateSpec {
  std::vector<size_t> group_by;
  std::vector<AggSpec> aggs;
  std::vector<ColumnFilter> filters;

  std::string ToString() const;
};

/// Mergeable partial state of one aggregate within one group. The fields'
/// meaning depends on the function:
///   * kCountStar / kCount: `count` rows / non-NULL values seen;
///   * kSum:  `acc` is the running sum (NULL until a non-NULL input);
///   * kMin / kMax: `acc` is the best non-NULL value so far (NULL = none);
///   * kAvg:  `acc` is the running sum, `count` the non-NULL input count —
///     the classical sum+count decomposition, merged by adding both and
///     divided only at finalize, so partial AVGs compose exactly.
struct AggState {
  Value acc;
  int64_t count = 0;
};

/// Group key -> one AggState per AggSpec. The partial-aggregation unit that
/// crosses the shard boundary: each shard produces one map, the coordinator
/// merges them.
using AggregateGroups =
    std::unordered_map<Row, std::vector<AggState>, RowHash>;

/// Streaming hash aggregator: feed rows (Accumulate) or already-folded
/// partials (Merge), then take the groups. Grouping keys NULLs like values
/// — Row equality treats NULL == NULL, so NULL forms its own group, per
/// SQL GROUP BY. Not thread-safe; parallel folds use one Aggregator each
/// and merge.
class Aggregator {
 public:
  explicit Aggregator(AggregateSpec spec);

  const AggregateSpec& spec() const { return spec_; }

  /// Folds one row: applies the filters, forms the group key, updates
  /// every aggregate's state. No per-row Status — the only runtime
  /// failure mode (SUM/AVG over a non-numeric value, which plan-time
  /// column typing normally excludes) is latched and reported by
  /// Finish().
  void Accumulate(const Row& row);

  /// Merges another aggregator's groups (same spec) into this one.
  void Merge(AggregateGroups partial);

  /// First accumulation error, Ok when clean. Check before using groups.
  Status Finish() const { return error_; }

  AggregateGroups TakeGroups() { return std::move(groups_); }

  /// The final SQL value of one aggregate: COUNT -> 0-based int, SUM/MIN/
  /// MAX -> the accumulated value (NULL over no non-NULL input), AVG ->
  /// sum/count as double (NULL over no non-NULL input).
  static Value Finalize(AggFunc func, const AggState& state);

  /// The states an empty input produces — what a global aggregate (no
  /// GROUP BY) over zero rows finalizes from: COUNT(*) = 0, SUM = NULL...
  static std::vector<AggState> EmptyStates(const AggregateSpec& spec);

 private:
  AggregateSpec spec_;
  AggregateGroups groups_;
  Status error_ = Status::Ok();
  std::vector<Value> key_scratch_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_STORAGE_AGGREGATE_H_
