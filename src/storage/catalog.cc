#include "src/storage/catalog.h"

#include "src/common/strings.h"

namespace youtopia {

Status Catalog::Register(const std::string& name, TableId id) {
  std::string key = ToLower(name);
  if (by_name_.count(key)) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  by_name_[key] = id;
  return Status::Ok();
}

Status Catalog::Unregister(const std::string& name) {
  if (by_name_.erase(ToLower(name)) == 0) {
    return Status::NotFound("table " + name + " does not exist");
  }
  return Status::Ok();
}

StatusOr<TableId> Catalog::Lookup(const std::string& name) const {
  auto it = by_name_.find(ToLower(name));
  if (it == by_name_.end()) {
    return Status::NotFound("table " + name + " does not exist");
  }
  return it->second;
}

bool Catalog::Contains(const std::string& name) const {
  return by_name_.count(ToLower(name)) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, id] : by_name_) names.push_back(name);
  return names;
}

}  // namespace youtopia
