#ifndef YOUTOPIA_STORAGE_CATALOG_H_
#define YOUTOPIA_STORAGE_CATALOG_H_

#include <map>
#include <string>

#include "src/common/statusor.h"
#include "src/storage/table.h"

namespace youtopia {

/// Case-insensitive table-name -> TableId map. Not thread-safe by itself;
/// Database serializes DDL through its own latch.
class Catalog {
 public:
  Status Register(const std::string& name, TableId id);
  Status Unregister(const std::string& name);
  StatusOr<TableId> Lookup(const std::string& name) const;
  bool Contains(const std::string& name) const;

  /// Names in deterministic (sorted) order.
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, TableId> by_name_;  // lower-cased keys
};

}  // namespace youtopia

#endif  // YOUTOPIA_STORAGE_CATALOG_H_
