#include "src/storage/cursor.h"

namespace youtopia {

AccessPlan AccessPlan::Lookup(std::vector<size_t> columns, Row key) {
  AccessPlan plan;
  plan.kind = Kind::kIndexLookup;
  plan.columns = std::move(columns);
  plan.key = std::move(key);
  return plan;
}

AccessPlan AccessPlan::Range(IndexRangeSpec spec) {
  AccessPlan plan;
  plan.kind = Kind::kIndexRange;
  plan.columns = std::move(spec.columns);
  plan.range = std::move(spec.range);
  plan.reverse = spec.reverse;
  plan.limit = spec.limit;
  plan.null_filter_from = spec.null_filter_from;
  return plan;
}

IndexRangeSpec AccessPlan::ToRangeSpec() const {
  IndexRangeSpec spec;
  spec.columns = columns;
  spec.range = range;
  spec.reverse = reverse;
  spec.limit = limit;
  spec.null_filter_from = null_filter_from;
  return spec;
}

std::string AccessPlan::ToString() const {
  if (kind == Kind::kTableScan) return "scan";
  std::string s = std::string(is_index() ? "index(" : "range(");
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(columns[i]);
  }
  if (kind == Kind::kIndexLookup) return s + ")=" + key.ToString();
  s += ")=" + range.ToString();
  if (reverse) s += " desc";
  if (ordered) s += " ordered";
  if (covers_where) s += " covered";
  return s;
}

StatusOr<bool> TableCursor::Next(RowId* rid, Row* row) {
  const Row* view = nullptr;
  YT_ASSIGN_OR_RETURN(bool more, NextRef(rid, &view));
  if (!more) return false;
  *row = *view;
  return true;
}

StatusOr<bool> TableCursor::NextBatch(RowBatch* batch, size_t max_rows) {
  batch->clear();
  if (max_rows == 0) max_rows = 1;
  batch->reserve(max_rows);
  RowId rid = 0;
  Row row;
  while (batch->rows.size() < max_rows) {
    YT_ASSIGN_OR_RETURN(bool more, Next(&rid, &row));
    if (!more) break;
    batch->rows.emplace_back(rid, std::move(row));
  }
  return !batch->rows.empty();
}

Status TableCursor::Drain(const std::function<bool(RowId, Row&&)>& visitor) {
  RowBatch batch;
  while (true) {
    YT_ASSIGN_OR_RETURN(bool more, NextBatch(&batch));
    if (!more) return Status::Ok();
    for (auto& [rid, row] : batch.rows) {
      if (!visitor(rid, std::move(row))) return Status::Ok();
    }
  }
}

Status TableCursor::DrainRef(
    const std::function<bool(RowId, const Row&)>& visitor) {
  RowId rid = 0;
  const Row* row = nullptr;
  while (true) {
    YT_ASSIGN_OR_RETURN(bool more, NextRef(&rid, &row));
    if (!more) return Status::Ok();
    if (!visitor(rid, *row)) return Status::Ok();
  }
}

}  // namespace youtopia
