#ifndef YOUTOPIA_STORAGE_CURSOR_H_
#define YOUTOPIA_STORAGE_CURSOR_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/storage/table.h"

namespace youtopia {

/// The access path chosen for one table read: a full heap scan, an index
/// equality lookup with the key values already coerced to the indexed
/// columns' types, or an ordered-index range scan over an interval built
/// from equality-prefix + range-suffix conjuncts (and/or an ORDER BY
/// request). This is the contract between planners (sql::Planner, the
/// grounder's atom planning) and the transaction manager: a planner emits an
/// AccessPlan, TransactionManager::OpenCursor interprets it and hands back a
/// TableCursor under the right locks. Plans only prune, never change
/// results — consumers re-evaluate their full predicate on every row.
struct AccessPlan {
  enum class Kind { kTableScan, kIndexLookup, kIndexRange };

  Kind kind = Kind::kTableScan;
  std::vector<size_t> columns;  ///< index columns (schema positions); for
                                ///< kIndexRange the FULL index column set
  Row key;                      ///< kIndexLookup: key, in `columns` order
  IndexRange range;             ///< kIndexRange: scanned interval (bounds
                                ///< may be prefix rows)
  bool reverse = false;         ///< kIndexRange: scan descending
  int64_t limit = -1;           ///< kIndexRange: row cap (-1 = unlimited)
  size_t null_filter_from = 0;  ///< kIndexRange: IndexRangeSpec semantics

  // Planner annotations the transaction manager ignores:
  bool ordered = false;         ///< kIndexRange: output satisfies the
                                ///< requested ORDER BY without a sort
  bool covers_where = false;    ///< every WHERE conjunct absorbed into the
                                ///< plan (no residual; LIMIT may push down)

  bool is_scan() const { return kind == Kind::kTableScan; }
  bool is_index() const { return kind == Kind::kIndexLookup; }
  bool is_range() const { return kind == Kind::kIndexRange; }

  static AccessPlan TableScan() { return AccessPlan{}; }
  static AccessPlan Lookup(std::vector<size_t> columns, Row key);
  static AccessPlan Range(IndexRangeSpec spec);

  /// The storage-level range spec of a kIndexRange plan.
  IndexRangeSpec ToRangeSpec() const;

  std::string ToString() const;
};

/// A batch of rows pulled through the cursor seam in one virtual call.
/// Column-agnostic: rows keep their Row shape, so any cursor type can fill
/// one. The (RowId, Row) pair layout deliberately matches every internal
/// materialization buffer in the engine (heap-scan chunks, shared-scan
/// batches, merged fan-out sources), which lets native NextBatch overrides
/// hand whole chunks over by swap/move instead of element-wise push_back.
/// Consumers move rows out and reuse the batch object across pulls — the
/// vector's capacity then ping-pongs between producer and consumer with no
/// steady-state allocation.
struct RowBatch {
  /// Default pull target, matching SharedScan's production chunking so a
  /// batched pull maps 1:1 onto one materialized chunk.
  static constexpr size_t kDefaultRows = 256;

  std::vector<std::pair<RowId, Row>> rows;

  size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }
  void clear() { rows.clear(); }
  void reserve(size_t n) { rows.reserve(n); }
};

/// Pull-based cursor over one table read — every read access path (heap
/// scan, shared scan, hash lookup, range lookup) produces one. Row locks
/// are acquired as rows are pulled, so lock acquisition can fail mid-read:
/// Next returns a Status for that, or false/true for end/row. Destroying a
/// cursor closes it (detaches from a shared scan, performs the isolation
/// level's early lock release); a consumer that stops early just drops the
/// cursor.
class TableCursor {
 public:
  virtual ~TableCursor() = default;

  /// Pulls the next row as a borrowed view: `*row` stays valid until the
  /// next pull or the cursor's destruction. Returns false at end.
  virtual StatusOr<bool> NextRef(RowId* rid, const Row** row) = 0;

  /// Pulls the next row into `*row` by move when the cursor owns its buffer
  /// (private scans, index fetches) and by copy when the buffer is shared
  /// (shared-scan followers). Returns false at end.
  virtual StatusOr<bool> Next(RowId* rid, Row* row);

  /// Pulls the next batch of rows into `*batch` (cleared first), by move
  /// where the cursor owns its buffer and by copy where it is shared —
  /// the batched form of Next. Returns false only at end, with the batch
  /// left empty; a true return carries at least one row. `max_rows` is a
  /// pacing target, not a hard cap: a cursor that can hand over a whole
  /// already-materialized chunk by swap may exceed it rather than split
  /// the chunk. The base implementation is a row-looping fallback over
  /// Next; heap-scan, shared-scan, fetched-row, shard-merge, and
  /// shard-tagging cursors override it natively so chunks cross the seam
  /// without per-row virtual calls.
  virtual StatusOr<bool> NextBatch(RowBatch* batch,
                                   size_t max_rows = RowBatch::kDefaultRows);

  /// Approximate number of rows left to pull (0 = unknown). A sizing hint
  /// for result-vector reserves, never a contract: filters and concurrent
  /// activity can make the real count smaller or larger.
  virtual size_t size_hint() const { return 0; }

  /// Drains the cursor through a move-taking visitor (returns false to
  /// stop early). Rides NextBatch, so native batch overrides amortize the
  /// per-row virtual call here too.
  ///
  /// Exhaustion contract (all cursor types, including merged shard
  /// cursors, which are built on it): once a cursor has reported
  /// end-of-rows — through pulls or a drain that ran to completion —
  /// every further Next/NextRef returns false and every further
  /// Drain/DrainRef visits nothing and returns Ok. A drain whose
  /// *visitor* stopped early leaves the cursor mid-stream on pull-based
  /// cursors but may have consumed the remainder on batched or zero-copy
  /// fast paths — callers must not resume a drain they cut short; drop
  /// the cursor instead.
  Status Drain(const std::function<bool(RowId, Row&&)>& visitor);

  /// Drains the cursor through a borrowing visitor (returns false to stop
  /// early; same exhaustion contract as Drain). Virtual so a cursor can
  /// skip intermediate buffering for visit-only consumers (a fresh private
  /// heap scan drains zero-copy, straight off the heap — selective filters
  /// then copy only what they keep). Stays on the borrowing NextRef loop:
  /// batching here would force copies on cursors that only lend views.
  virtual Status DrainRef(const std::function<bool(RowId, const Row&)>& visitor);
};

}  // namespace youtopia

#endif  // YOUTOPIA_STORAGE_CURSOR_H_
