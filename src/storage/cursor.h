#ifndef YOUTOPIA_STORAGE_CURSOR_H_
#define YOUTOPIA_STORAGE_CURSOR_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/storage/table.h"

namespace youtopia {

/// The access path chosen for one table read: a full heap scan, an index
/// equality lookup with the key values already coerced to the indexed
/// columns' types, or an ordered-index range scan over an interval built
/// from equality-prefix + range-suffix conjuncts (and/or an ORDER BY
/// request). This is the contract between planners (sql::Planner, the
/// grounder's atom planning) and the transaction manager: a planner emits an
/// AccessPlan, TransactionManager::OpenCursor interprets it and hands back a
/// TableCursor under the right locks. Plans only prune, never change
/// results — consumers re-evaluate their full predicate on every row.
struct AccessPlan {
  enum class Kind { kTableScan, kIndexLookup, kIndexRange };

  Kind kind = Kind::kTableScan;
  std::vector<size_t> columns;  ///< index columns (schema positions); for
                                ///< kIndexRange the FULL index column set
  Row key;                      ///< kIndexLookup: key, in `columns` order
  IndexRange range;             ///< kIndexRange: scanned interval (bounds
                                ///< may be prefix rows)
  bool reverse = false;         ///< kIndexRange: scan descending
  int64_t limit = -1;           ///< kIndexRange: row cap (-1 = unlimited)
  size_t null_filter_from = 0;  ///< kIndexRange: IndexRangeSpec semantics

  // Planner annotations the transaction manager ignores:
  bool ordered = false;         ///< kIndexRange: output satisfies the
                                ///< requested ORDER BY without a sort
  bool covers_where = false;    ///< every WHERE conjunct absorbed into the
                                ///< plan (no residual; LIMIT may push down)

  bool is_scan() const { return kind == Kind::kTableScan; }
  bool is_index() const { return kind == Kind::kIndexLookup; }
  bool is_range() const { return kind == Kind::kIndexRange; }

  static AccessPlan TableScan() { return AccessPlan{}; }
  static AccessPlan Lookup(std::vector<size_t> columns, Row key);
  static AccessPlan Range(IndexRangeSpec spec);

  /// The storage-level range spec of a kIndexRange plan.
  IndexRangeSpec ToRangeSpec() const;

  std::string ToString() const;
};

/// Pull-based cursor over one table read — every read access path (heap
/// scan, shared scan, hash lookup, range lookup) produces one. Row locks
/// are acquired as rows are pulled, so lock acquisition can fail mid-read:
/// Next returns a Status for that, or false/true for end/row. Destroying a
/// cursor closes it (detaches from a shared scan, performs the isolation
/// level's early lock release); a consumer that stops early just drops the
/// cursor.
class TableCursor {
 public:
  virtual ~TableCursor() = default;

  /// Pulls the next row as a borrowed view: `*row` stays valid until the
  /// next pull or the cursor's destruction. Returns false at end.
  virtual StatusOr<bool> NextRef(RowId* rid, const Row** row) = 0;

  /// Pulls the next row into `*row` by move when the cursor owns its buffer
  /// (private scans, index fetches) and by copy when the buffer is shared
  /// (shared-scan followers). Returns false at end.
  virtual StatusOr<bool> Next(RowId* rid, Row* row);

  /// Drains the cursor through a move-taking visitor (returns false to
  /// stop early).
  ///
  /// Exhaustion contract (all cursor types, including merged shard
  /// cursors, which are built on it): once a cursor has reported
  /// end-of-rows — through pulls or a drain that ran to completion —
  /// every further Next/NextRef returns false and every further
  /// Drain/DrainRef visits nothing and returns Ok. A drain whose
  /// *visitor* stopped early leaves the cursor mid-stream on pull-based
  /// cursors but may have consumed the remainder on zero-copy fast paths
  /// — callers must not resume a drain they cut short; drop the cursor
  /// instead.
  Status Drain(const std::function<bool(RowId, Row&&)>& visitor);

  /// Drains the cursor through a borrowing visitor (returns false to stop
  /// early; same exhaustion contract as Drain). Virtual so a cursor can
  /// skip intermediate buffering for visit-only consumers (a fresh private
  /// heap scan drains zero-copy, straight off the heap — selective filters
  /// then copy only what they keep).
  virtual Status DrainRef(const std::function<bool(RowId, const Row&)>& visitor);
};

}  // namespace youtopia

#endif  // YOUTOPIA_STORAGE_CURSOR_H_
