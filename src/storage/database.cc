#include "src/storage/database.h"

#include <istream>
#include <ostream>

#include "src/common/serde.h"

namespace youtopia {

namespace {
// v2: index definitions carry unique/ordered flags.
constexpr char kCheckpointMagic[] = "YTCKPT2";
}  // namespace

StatusOr<Table*> Database::CreateTable(const std::string& name,
                                       const Schema& schema) {
  std::lock_guard<std::mutex> g(mu_);
  if (catalog_.Contains(name)) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  TableId id = static_cast<TableId>(tables_.size());
  YT_RETURN_IF_ERROR(catalog_.Register(name, id));
  tables_.push_back(std::make_unique<Table>(id, name, schema));
  return tables_.back().get();
}

Status Database::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  YT_ASSIGN_OR_RETURN(TableId id, catalog_.Lookup(name));
  YT_RETURN_IF_ERROR(catalog_.Unregister(name));
  tables_[id].reset();  // keep slot so TableIds stay stable
  return Status::Ok();
}

StatusOr<Table*> Database::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> g(mu_);
  YT_ASSIGN_OR_RETURN(TableId id, catalog_.Lookup(name));
  Table* t = tables_[id].get();
  if (t == nullptr) return Status::NotFound("table " + name + " was dropped");
  return t;
}

StatusOr<const Table*> Database::GetTableConst(const std::string& name) const {
  YT_ASSIGN_OR_RETURN(Table * t, GetTable(name));
  return static_cast<const Table*>(t);
}

Table* Database::GetTableById(TableId id) const {
  std::lock_guard<std::mutex> g(mu_);
  if (id >= tables_.size()) return nullptr;
  return tables_[id].get();
}

std::vector<std::string> Database::TableNames() const {
  std::lock_guard<std::mutex> g(mu_);
  return catalog_.TableNames();
}

std::unique_ptr<Database> Database::Clone() const {
  std::lock_guard<std::mutex> g(mu_);
  auto copy = std::make_unique<Database>();
  copy->catalog_ = catalog_;
  copy->tables_.reserve(tables_.size());
  for (const auto& t : tables_) {
    copy->tables_.push_back(t ? t->Clone() : nullptr);
  }
  return copy;
}

Status Database::SaveTo(std::ostream* out) const {
  std::lock_guard<std::mutex> g(mu_);
  std::string buf;
  buf.append(kCheckpointMagic);
  uint32_t live = 0;
  for (const auto& t : tables_) {
    if (t) ++live;
  }
  EncodeU32(&buf, live);
  for (const auto& t : tables_) {
    if (!t) continue;
    EncodeU32(&buf, t->id());
    EncodeString(&buf, t->name());
    EncodeSchema(&buf, t->schema());
    // Secondary-index definitions with flags (the primary-key index is
    // rebuilt from the schema by the Table constructor and skipped on load).
    std::vector<IndexInfo> index_infos = t->IndexInfos();
    EncodeU32(&buf, static_cast<uint32_t>(index_infos.size()));
    for (const IndexInfo& info : index_infos) {
      EncodeU32(&buf, static_cast<uint32_t>(info.columns.size()));
      for (size_t c : info.columns) EncodeU32(&buf, static_cast<uint32_t>(c));
      EncodeU8(&buf, static_cast<uint8_t>((info.unique ? 1 : 0) |
                                          (info.ordered ? 2 : 0)));
    }
    EncodeU64(&buf, t->size());
    t->Scan([&buf](RowId rid, const Row& row) {
      EncodeU64(&buf, rid);
      EncodeRow(&buf, row);
      return true;
    });
  }
  std::string framed;
  EncodeU32(&framed, Crc32(buf));
  framed += buf;
  out->write(framed.data(), static_cast<std::streamsize>(framed.size()));
  if (!out->good()) return Status::Corruption("checkpoint write failed");
  return Status::Ok();
}

StatusOr<std::unique_ptr<Database>> Database::LoadFrom(std::istream* in) {
  std::string framed((std::istreambuf_iterator<char>(*in)),
                     std::istreambuf_iterator<char>());
  const char* p = framed.data();
  const char* end = p + framed.size();
  uint32_t crc;
  YT_RETURN_IF_ERROR(DecodeU32(&p, end, &crc));
  std::string body(p, end);
  if (Crc32(body) != crc) {
    return Status::Corruption("checkpoint checksum mismatch");
  }
  size_t magic_len = sizeof(kCheckpointMagic) - 1;
  if (body.size() < magic_len ||
      body.compare(0, magic_len, kCheckpointMagic) != 0) {
    return Status::Corruption("bad checkpoint magic");
  }
  p += magic_len;
  uint32_t num_tables;
  YT_RETURN_IF_ERROR(DecodeU32(&p, end, &num_tables));
  auto db = std::make_unique<Database>();
  for (uint32_t i = 0; i < num_tables; ++i) {
    uint32_t id;
    std::string name;
    Schema schema;
    uint64_t num_rows;
    YT_RETURN_IF_ERROR(DecodeU32(&p, end, &id));
    YT_RETURN_IF_ERROR(DecodeString(&p, end, &name));
    YT_RETURN_IF_ERROR(DecodeSchema(&p, end, &schema));
    uint32_t num_indexes;
    YT_RETURN_IF_ERROR(DecodeU32(&p, end, &num_indexes));
    std::vector<IndexInfo> index_infos(num_indexes);
    for (uint32_t x = 0; x < num_indexes; ++x) {
      uint32_t num_cols;
      YT_RETURN_IF_ERROR(DecodeU32(&p, end, &num_cols));
      for (uint32_t c = 0; c < num_cols; ++c) {
        uint32_t col;
        YT_RETURN_IF_ERROR(DecodeU32(&p, end, &col));
        index_infos[x].columns.push_back(col);
      }
      uint8_t flags;
      YT_RETURN_IF_ERROR(DecodeU8(&p, end, &flags));
      index_infos[x].unique = (flags & 1) != 0;
      index_infos[x].ordered = (flags & 2) != 0;
    }
    YT_RETURN_IF_ERROR(DecodeU64(&p, end, &num_rows));
    // Recreate with stable TableIds: pad slots if needed.
    while (db->tables_.size() < id) db->tables_.push_back(nullptr);
    if (db->tables_.size() != id) {
      return Status::Corruption("checkpoint table ids out of order");
    }
    YT_RETURN_IF_ERROR(db->catalog_.Register(name, id));
    db->tables_.push_back(std::make_unique<Table>(id, name, schema));
    Table* t = db->tables_.back().get();
    for (const IndexInfo& info : index_infos) {
      if (t->HasIndexOn(info.columns)) continue;  // PK index already rebuilt
      YT_RETURN_IF_ERROR(
          t->CreateIndexByPositions(info.columns, info.unique, info.ordered));
    }
    for (uint64_t r = 0; r < num_rows; ++r) {
      uint64_t rid;
      Row row;
      YT_RETURN_IF_ERROR(DecodeU64(&p, end, &rid));
      YT_RETURN_IF_ERROR(DecodeRow(&p, end, &row));
      YT_RETURN_IF_ERROR(t->InsertWithId(rid, row));
    }
  }
  return db;
}

bool Database::ContentEquals(const Database& other) const {
  std::vector<std::string> names = TableNames();
  if (names != other.TableNames()) return false;
  for (const std::string& name : names) {
    auto a = GetTable(name);
    auto b = other.GetTable(name);
    if (!a.ok() || !b.ok()) return false;
    if (!(a.value()->schema() == b.value()->schema())) return false;
    if (a.value()->size() != b.value()->size()) return false;
    bool equal = true;
    a.value()->Scan([&](RowId rid, const Row& row) {
      auto o = b.value()->Get(rid);
      if (!o.ok() || o.value() != row) {
        equal = false;
        return false;
      }
      return true;
    });
    if (!equal) return false;
  }
  return true;
}

}  // namespace youtopia
