#ifndef YOUTOPIA_STORAGE_DATABASE_H_
#define YOUTOPIA_STORAGE_DATABASE_H_

#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/storage/catalog.h"
#include "src/storage/table.h"

namespace youtopia {

/// The database: a catalog plus the set of tables. DDL is serialized through
/// an internal mutex; DML goes straight to the (latched) tables. The lock
/// manager / transaction manager above provide logical isolation.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  StatusOr<Table*> CreateTable(const std::string& name, const Schema& schema);
  Status DropTable(const std::string& name);
  StatusOr<Table*> GetTable(const std::string& name) const;
  StatusOr<const Table*> GetTableConst(const std::string& name) const;
  Table* GetTableById(TableId id) const;

  std::vector<std::string> TableNames() const;

  /// Deep copy of catalog + all tables (for snapshots and oracle replays).
  std::unique_ptr<Database> Clone() const;

  /// Serializes the full database (checkpoint image).
  Status SaveTo(std::ostream* out) const;
  /// Loads a checkpoint image produced by SaveTo.
  static StatusOr<std::unique_ptr<Database>> LoadFrom(std::istream* in);

  /// True iff both databases hold identical tables with identical contents;
  /// used by the isolation module's final-state comparisons.
  bool ContentEquals(const Database& other) const;

 private:
  mutable std::mutex mu_;
  Catalog catalog_;
  std::vector<std::unique_ptr<Table>> tables_;  // indexed by TableId
};

}  // namespace youtopia

#endif  // YOUTOPIA_STORAGE_DATABASE_H_
