#ifndef YOUTOPIA_STORAGE_MVCC_H_
#define YOUTOPIA_STORAGE_MVCC_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>

#include "src/common/ids.h"

namespace youtopia {

/// Engine-wide commit clock for the versioned read path. Timestamps are
/// logical: `ReadTs` returns the newest *published* commit timestamp, and a
/// snapshot reader at ts sees exactly the versions whose commit timestamp is
/// <= ts.
///
/// Commit-publish protocol: a committing transaction holds `commit_mutex`
/// across [AllocateCommitTs, stamp every written row, Publish], so a
/// timestamp is only ever published after every row carrying it is stamped.
/// A reader's snapshot (`ReadTs`, an acquire load of the last release-
/// published ts) therefore always names a cut where every commit <= ts is
/// fully stamped and every commit > ts is entirely invisible — readers never
/// observe a half-stamped commit. One clock is shared by every shard of a
/// sharded engine, so a cross-shard statement reads one cut.
class VersionClock {
 public:
  /// Newest published commit timestamp — the snapshot a new reader takes.
  uint64_t ReadTs() const {
    return last_published_.load(std::memory_order_acquire);
  }

  /// Serializes the [allocate, stamp, publish] commit window.
  std::mutex& commit_mutex() { return commit_mu_; }

  /// Next commit timestamp. Caller must hold commit_mutex.
  uint64_t AllocateCommitTs() {
    return last_published_.load(std::memory_order_relaxed) + 1;
  }

  /// Makes `ts` (and every row stamped with it) visible to new snapshots.
  /// Caller must hold commit_mutex.
  void Publish(uint64_t ts) {
    last_published_.store(ts, std::memory_order_release);
  }

 private:
  std::mutex commit_mu_;
  std::atomic<uint64_t> last_published_{0};
};

/// A snapshot reader's view: versions with begin_ts <= `ts` are visible,
/// plus everything written by `self` (a transaction always sees its own
/// uncommitted writes).
struct ReadView {
  uint64_t ts = 0;
  TxnId self = 0;
};

/// The set of snapshot timestamps currently pinned by live transactions.
/// Version-chain GC prunes only versions no live snapshot can reach, so the
/// oldest registered timestamp is the GC horizon. Shared across shards
/// alongside the clock.
class SnapshotRegistry {
 public:
  void Register(uint64_t ts) {
    std::lock_guard<std::mutex> g(mu_);
    ++active_[ts];
  }

  void Unregister(uint64_t ts) {
    std::lock_guard<std::mutex> g(mu_);
    auto it = active_.find(ts);
    if (it == active_.end()) return;
    if (--it->second == 0) active_.erase(it);
  }

  /// Re-pins a live transaction's snapshot (kReadCommitted refreshes its
  /// snapshot per statement).
  void Update(uint64_t old_ts, uint64_t new_ts) {
    if (old_ts == new_ts) return;
    std::lock_guard<std::mutex> g(mu_);
    auto it = active_.find(old_ts);
    if (it != active_.end() && --it->second == 0) active_.erase(it);
    ++active_[new_ts];
  }

  /// The GC horizon: the oldest pinned snapshot, or `fallback` (callers
  /// pass the clock's current ReadTs) when no snapshot is live.
  uint64_t OldestOr(uint64_t fallback) const {
    std::lock_guard<std::mutex> g(mu_);
    if (active_.empty()) return fallback;
    return active_.begin()->first;
  }

  size_t live_count() const {
    std::lock_guard<std::mutex> g(mu_);
    size_t n = 0;
    for (const auto& [ts, count] : active_) n += count;
    return n;
  }

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, size_t> active_;  ///< ts -> number of pins
};

}  // namespace youtopia

#endif  // YOUTOPIA_STORAGE_MVCC_H_
