#include "src/storage/shared_scan.h"

namespace youtopia {

SharedScan::SharedScan(const Table* table, uint64_t epoch)
    : table_(table), epoch_(epoch) {
  // The heap cannot grow while the scan is live (every consumer holds
  // table S), so reserving for the current size guarantees production
  // never reallocates — which is what lets readers index published
  // batches without the mutex.
  batches_.reserve(table->size() / kBatchRows + 2);
}

const SharedScan::Batch* SharedScan::GetBatch(size_t i) {
  if (i < published_.load(std::memory_order_acquire)) {
    return batches_[i].get();
  }
  std::lock_guard<std::mutex> g(mu_);
  while (batches_.size() <= i && !exhausted_) {
    auto batch = std::make_unique<Batch>();
    RowId next = table_->ScanChunk(next_from_, kBatchRows, &batch->rows);
    if (batch->rows.empty()) {
      exhausted_ = true;
      break;
    }
    next_from_ = next;
    if (next == 0) exhausted_ = true;
    batches_.push_back(std::move(batch));
    published_.store(batches_.size(), std::memory_order_release);
  }
  return i < batches_.size() ? batches_[i].get() : nullptr;
}

SharedScanManager::Ticket SharedScanManager::Join(const Table* table) {
  std::lock_guard<std::mutex> g(mu_);
  Ticket t;
  // A registered entry always has >= 1 consumer (Leave erases at 0), so a
  // live scan is attachable iff its epoch still matches.
  auto it = active_.find(table->id());
  if (it != active_.end() &&
      it->second.scan->epoch() == table->write_epoch()) {
    ++it->second.consumers;
    t.scan = it->second.scan;
    t.start_batch = t.scan->AttachIndex();
    t.attached = true;
    t.registered = true;
    return t;
  }
  t.scan = std::make_shared<SharedScan>(table, table->write_epoch());
  if (it == active_.end()) {
    active_.emplace(table->id(), Entry{t.scan, 1});
    t.registered = true;
  }
  // else: the slot is held by an epoch-incompatible live scan (defensive —
  // the lock protocol should prevent this); lead privately, unregistered.
  return t;
}

void SharedScanManager::Leave(const Ticket& ticket) {
  if (!ticket.registered) return;
  std::lock_guard<std::mutex> g(mu_);
  auto it = active_.find(ticket.scan->table()->id());
  if (it == active_.end() || it->second.scan != ticket.scan) return;
  if (--it->second.consumers == 0) active_.erase(it);
}

}  // namespace youtopia
