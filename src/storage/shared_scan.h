#ifndef YOUTOPIA_STORAGE_SHARED_SCAN_H_
#define YOUTOPIA_STORAGE_SHARED_SCAN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/storage/table.h"

namespace youtopia {

/// One in-flight circular heap scan of one table, shared by N consumers.
///
/// The *leader* (first consumer) only registers the scan and walks the
/// heap privately — an uncontended scan pays nothing for sharing. Batch
/// production starts with the first *attached* consumer: the heap is then
/// read once more, in RowId order, chunked into batches that stay alive
/// for the scan's lifetime, and whichever attached consumer needs a batch
/// that has not been produced yet produces it (so progress never depends
/// on one designated thread — there is no barrier that can hang). A
/// consumer that attaches mid-scan starts at the current production
/// watermark, consumes to the end, and wraps around to the batches
/// produced before it attached (circular-scan style); since batches cover
/// disjoint ascending RowId ranges, any start offset yields exactly one
/// full pass over the heap.
///
/// Consistency contract: every consumer must hold the table S lock for its
/// whole attach..detach window. Attach windows of live consumers overlap
/// (SharedScanManager only admits attaches while a consumer is still
/// inside), so some consumer's S lock covers every moment of production and
/// no writer (all writers take table IX) can change the heap mid-scan —
/// which is what makes the shared batches equal to what each consumer's
/// private scan would have read.
class SharedScan {
 public:
  /// Rows are produced in chunks of this many per batch.
  static constexpr size_t kBatchRows = 256;

  struct Batch {
    std::vector<std::pair<RowId, Row>> rows;
  };

  SharedScan(const Table* table, uint64_t epoch);

  const Table* table() const { return table_; }
  /// Table write epoch captured at registration — the attach barrier:
  /// a consumer only shares a scan whose epoch matches the epoch it
  /// observes under its own table S lock.
  uint64_t epoch() const { return epoch_; }

  /// Batch `i`, producing it (and its predecessors) from the heap when not
  /// yet published; nullptr once the heap is exhausted before batch `i`.
  const Batch* GetBatch(size_t i);

  /// The batch index the next attacher starts its cycle at (the current
  /// production watermark).
  size_t AttachIndex() const {
    return published_.load(std::memory_order_acquire);
  }

 private:
  const Table* table_;
  const uint64_t epoch_;
  std::mutex mu_;  ///< serializes producers; readers go lock-free
  /// Pre-reserved so production never reallocates: published batches are
  /// read without the mutex, fenced by `published_`.
  std::vector<std::unique_ptr<Batch>> batches_;
  std::atomic<size_t> published_{0};
  RowId next_from_ = 1;  ///< heap RowIds are allocated from 1
  bool exhausted_ = false;
};

/// Registry of in-flight shared scans, one slot per table. The first
/// consumer of a table *leads* (registers a fresh scan); later consumers
/// *attach* while the scan is live and epoch-compatible. A scan dies with
/// its last consumer — batches never outlive the continuous table-S window
/// that makes them valid, so a scanner arriving after a write gap always
/// leads a fresh scan.
class SharedScanManager {
 public:
  struct Ticket {
    std::shared_ptr<SharedScan> scan;
    size_t start_batch = 0;   ///< first batch of this consumer's cycle
    bool attached = false;    ///< false: this consumer leads (registers the
                              ///< scan but walks the heap privately)
    bool registered = false;  ///< scan is (was) in the registry
  };

  /// Joins the in-flight scan of `table` (attach) or registers a new one
  /// led by the caller. The caller must already hold the table S lock —
  /// that lock is what freezes `table->write_epoch()` across the window.
  Ticket Join(const Table* table);

  /// Detaches a consumer; the last one out unregisters the scan.
  void Leave(const Ticket& ticket);

 private:
  struct Entry {
    std::shared_ptr<SharedScan> scan;
    size_t consumers = 0;
  };

  std::mutex mu_;
  std::unordered_map<TableId, Entry> active_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_STORAGE_SHARED_SCAN_H_
