#include "src/storage/table.h"

#include <algorithm>

namespace youtopia {

Table::Table(TableId id, std::string name, Schema schema)
    : id_(id), name_(std::move(name)), schema_(std::move(schema)) {
  if (!schema_.primary_key().empty()) {
    (void)CreateIndexByPositions(schema_.primary_key(), /*unique=*/true);
  }
}

StatusOr<Row> Table::CoerceToSchema(const Row& row) const {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString() + " of table " + name_);
  }
  std::vector<Value> vals;
  vals.reserve(row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    YT_ASSIGN_OR_RETURN(Value v, row[i].CoerceTo(schema_.column(i).type));
    vals.push_back(std::move(v));
  }
  return Row(std::move(vals));
}

StatusOr<RowId> Table::Insert(const Row& row) {
  YT_ASSIGN_OR_RETURN(Row coerced, CoerceToSchema(row));
  return InsertCoerced(std::move(coerced));
}

StatusOr<RowId> Table::InsertCoerced(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity does not match schema of " +
                                   name_);
  }
  std::unique_lock g(latch_);
  YT_RETURN_IF_ERROR(CheckUniqueLocked(row, /*self=*/0));
  RowId rid = next_row_id_++;
  IndexInsertLocked(rid, row);
  rows_.emplace(rid, std::move(row));
  return rid;
}

Status Table::InsertWithId(RowId rid, const Row& row) {
  YT_ASSIGN_OR_RETURN(Row coerced, CoerceToSchema(row));
  std::unique_lock g(latch_);
  if (rows_.count(rid)) {
    return Status::AlreadyExists("row id " + std::to_string(rid) +
                                 " occupied in table " + name_);
  }
  YT_RETURN_IF_ERROR(CheckUniqueLocked(coerced, /*self=*/0));
  next_row_id_ = std::max(next_row_id_, rid + 1);
  IndexInsertLocked(rid, coerced);
  rows_.emplace(rid, std::move(coerced));
  return Status::Ok();
}

StatusOr<Row> Table::Get(RowId rid) const {
  std::shared_lock g(latch_);
  auto it = rows_.find(rid);
  if (it == rows_.end()) {
    return Status::NotFound("row " + std::to_string(rid) + " in table " +
                            name_);
  }
  return it->second;
}

Status Table::Update(RowId rid, const Row& row) {
  YT_ASSIGN_OR_RETURN(Row coerced, CoerceToSchema(row));
  return UpdateCoerced(rid, std::move(coerced));
}

Status Table::UpdateCoerced(RowId rid, Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity does not match schema of " +
                                   name_);
  }
  std::unique_lock g(latch_);
  auto it = rows_.find(rid);
  if (it == rows_.end()) {
    return Status::NotFound("row " + std::to_string(rid) + " in table " +
                            name_);
  }
  YT_RETURN_IF_ERROR(CheckUniqueLocked(row, rid));
  IndexRemoveLocked(rid, it->second);
  it->second = std::move(row);
  IndexInsertLocked(rid, it->second);
  return Status::Ok();
}

Status Table::Delete(RowId rid) {
  std::unique_lock g(latch_);
  auto it = rows_.find(rid);
  if (it == rows_.end()) {
    return Status::NotFound("row " + std::to_string(rid) + " in table " +
                            name_);
  }
  IndexRemoveLocked(rid, it->second);
  rows_.erase(it);
  return Status::Ok();
}

void Table::Scan(const std::function<bool(RowId, const Row&)>& visitor) const {
  std::shared_lock g(latch_);
  for (const auto& [rid, row] : rows_) {
    if (!visitor(rid, row)) break;
  }
}

Status Table::CreateIndex(const std::vector<std::string>& column_names) {
  std::vector<size_t> columns;
  for (const std::string& name : column_names) {
    YT_ASSIGN_OR_RETURN(size_t i, schema_.IndexOf(name));
    columns.push_back(i);
  }
  return CreateIndexByPositions(columns);
}

Status Table::CreateIndexByPositions(const std::vector<size_t>& columns,
                                     bool unique) {
  std::unique_lock g(latch_);
  for (size_t c : columns) {
    if (c >= schema_.num_columns()) {
      return Status::InvalidArgument("index column out of range for table " +
                                     name_);
    }
  }
  if (FindIndexLocked(columns) != nullptr) {
    return Status::AlreadyExists("index already exists on table " + name_);
  }
  HashIndex idx;
  idx.columns = columns;
  idx.unique = unique;
  for (const auto& [rid, row] : rows_) {
    auto& bucket = idx.map[ProjectKey(row, idx.columns)];
    if (unique && !bucket.empty()) {
      return Status::AlreadyExists("duplicate key in unique index on table " +
                                   name_);
    }
    bucket.push_back(rid);
  }
  indexes_.push_back(std::move(idx));
  return Status::Ok();
}

StatusOr<std::vector<RowId>> Table::IndexLookup(
    const std::vector<size_t>& columns, const Row& key) const {
  std::shared_lock g(latch_);
  const HashIndex* idx = FindIndexLocked(columns);
  if (idx == nullptr) {
    return Status::NotFound("no index on requested columns of " + name_);
  }
  auto it = idx->map.find(key);
  if (it == idx->map.end()) return std::vector<RowId>{};
  return it->second;
}

bool Table::HasIndexOn(const std::vector<size_t>& columns) const {
  std::shared_lock g(latch_);
  return FindIndexLocked(columns) != nullptr;
}

std::vector<std::vector<size_t>> Table::IndexedColumnSets() const {
  std::shared_lock g(latch_);
  std::vector<std::vector<size_t>> out;
  out.reserve(indexes_.size());
  for (const HashIndex& idx : indexes_) out.push_back(idx.columns);
  return out;
}

uint64_t Table::IndexKeyHash(const std::vector<size_t>& columns,
                             const Row& key) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (size_t c : columns) {
    h = (h ^ c) * 1099511628211ull;
  }
  h ^= key.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::vector<uint64_t> Table::IndexKeyHashesFor(const Row& row) const {
  std::shared_lock g(latch_);
  std::vector<uint64_t> out;
  out.reserve(indexes_.size());
  for (const HashIndex& idx : indexes_) {
    out.push_back(IndexKeyHash(idx.columns, ProjectKey(row, idx.columns)));
  }
  return out;
}

size_t Table::size() const {
  std::shared_lock g(latch_);
  return rows_.size();
}

std::unique_ptr<Table> Table::Clone() const {
  std::shared_lock g(latch_);
  auto copy = std::make_unique<Table>(id_, name_, schema_);
  copy->rows_ = rows_;
  copy->next_row_id_ = next_row_id_;
  copy->indexes_ = indexes_;
  return copy;
}

Status Table::CheckUniqueLocked(const Row& row, RowId self) const {
  for (const HashIndex& idx : indexes_) {
    if (!idx.unique) continue;
    auto it = idx.map.find(ProjectKey(row, idx.columns));
    if (it == idx.map.end()) continue;
    for (RowId r : it->second) {
      if (r != self) {
        return Status::AlreadyExists("duplicate primary key in table " +
                                     name_);
      }
    }
  }
  return Status::Ok();
}

void Table::IndexInsertLocked(RowId rid, const Row& row) {
  for (HashIndex& idx : indexes_) {
    idx.map[ProjectKey(row, idx.columns)].push_back(rid);
  }
}

void Table::IndexRemoveLocked(RowId rid, const Row& row) {
  for (HashIndex& idx : indexes_) {
    auto it = idx.map.find(ProjectKey(row, idx.columns));
    if (it == idx.map.end()) continue;
    auto& vec = it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), rid), vec.end());
    if (vec.empty()) idx.map.erase(it);
  }
}

const Table::HashIndex* Table::FindIndexLocked(
    const std::vector<size_t>& columns) const {
  for (const HashIndex& idx : indexes_) {
    if (idx.columns == columns) return &idx;
  }
  return nullptr;
}

Row Table::ProjectKey(const Row& row, const std::vector<size_t>& columns) {
  std::vector<Value> vals;
  vals.reserve(columns.size());
  for (size_t c : columns) vals.push_back(row[c]);
  return Row(std::move(vals));
}

}  // namespace youtopia
