#include "src/storage/table.h"

#include <algorithm>

namespace youtopia {

namespace {

bool RowHasNullIn(const Row& key, size_t from, size_t len) {
  for (size_t i = from; i < len && i < key.size(); ++i) {
    if (key[i].is_null()) return true;
  }
  return false;
}

bool RowHasNullPrefix(const Row& key, size_t len) {
  return RowHasNullIn(key, 0, len);
}

}  // namespace

IndexRange IndexRange::Point(Row key) {
  IndexRange r;
  r.lo = key;
  r.hi = std::move(key);
  r.lo_unbounded = r.hi_unbounded = false;
  r.lo_incl = r.hi_incl = true;
  return r;
}

int IndexRange::ComparePrefix(const Row& key, const Row& bound) {
  size_t n = std::min(key.size(), bound.size());
  for (size_t i = 0; i < n; ++i) {
    int c = key[i].Compare(bound[i]);
    if (c != 0) return c;
  }
  // Only the bound's own length participates: a longer key extending the
  // bound compares equal; a key shorter than the bound sorts below it.
  if (key.size() >= bound.size()) return 0;
  return -1;
}

bool IndexRange::Contains(const Row& key) const {
  if (!lo_unbounded) {
    int c = ComparePrefix(key, lo);
    if (c < 0 || (c == 0 && !lo_incl)) return false;
  }
  if (!hi_unbounded) {
    int c = ComparePrefix(key, hi);
    if (c > 0 || (c == 0 && !hi_incl)) return false;
  }
  return true;
}

bool IndexRange::Overlaps(const IndexRange& o) const {
  // `a` is entirely below `b` when a.hi ends before b.lo begins. On a
  // prefix-equal boundary the *shorter* bound's inclusivity decides: the
  // longer bound lies strictly inside the shorter one's extension set, so
  // an inclusive shorter bound always reaches keys on the other side of it
  // (lo=(5,3) starts inside hi=(5) inclusive's coverage of every 5-prefix
  // key), while an exclusive shorter bound excludes that whole set.
  auto below = [](const IndexRange& a, const IndexRange& b) {
    if (a.hi_unbounded || b.lo_unbounded) return false;
    size_t n = std::min(a.hi.size(), b.lo.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a.hi[i].Compare(b.lo[i]);
      if (c != 0) return c < 0;
    }
    bool touch = true;
    if (a.hi.size() <= b.lo.size()) touch &= a.hi_incl;
    if (b.lo.size() <= a.hi.size()) touch &= b.lo_incl;
    return !touch;
  };
  return !below(*this, o) && !below(o, *this);
}

bool IndexRange::operator==(const IndexRange& o) const {
  if (lo_unbounded != o.lo_unbounded || hi_unbounded != o.hi_unbounded) {
    return false;
  }
  if (!lo_unbounded && (lo_incl != o.lo_incl || lo != o.lo)) return false;
  if (!hi_unbounded && (hi_incl != o.hi_incl || hi != o.hi)) return false;
  return true;
}

std::string IndexRange::ToString() const {
  std::string s =
      lo_unbounded ? std::string("(-inf")
                   : std::string(lo_incl ? "[" : "(") + lo.ToString();
  s += ", ";
  s += hi_unbounded ? std::string("+inf)")
                    : hi.ToString() + std::string(hi_incl ? "]" : ")");
  return s;
}

Table::Table(TableId id, std::string name, Schema schema)
    : id_(id), name_(std::move(name)), schema_(std::move(schema)) {
  if (!schema_.primary_key().empty()) {
    (void)CreateIndexByPositions(schema_.primary_key(), /*unique=*/true,
                                 /*ordered=*/schema_.pk_ordered());
  }
}

StatusOr<Row> Table::CoerceToSchema(const Row& row) const {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString() + " of table " + name_);
  }
  std::vector<Value> vals;
  vals.reserve(row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    YT_ASSIGN_OR_RETURN(Value v, row[i].CoerceTo(schema_.column(i).type));
    vals.push_back(std::move(v));
  }
  // SQL primary keys imply NOT NULL: without this, the UNIQUE NULL
  // exemption would admit any number of NULL-keyed "duplicates".
  for (size_t c : schema_.primary_key()) {
    if (vals[c].is_null()) {
      return Status::InvalidArgument("NULL in primary-key column " +
                                     schema_.column(c).name + " of table " +
                                     name_);
    }
  }
  return Row(std::move(vals));
}

const Row* Table::VisibleVersion(const VersionedRow& vr, const ReadView& view) {
  // A transaction always sees its own uncommitted write.
  if (vr.writer != 0) {
    if (vr.writer == view.self) return vr.deleted ? nullptr : &vr.latest;
  } else if (vr.begin_ts <= view.ts) {
    // Committed latest, within the snapshot.
    return vr.deleted ? nullptr : &vr.latest;
  }
  // Latest is invisible (foreign uncommitted write, or committed past the
  // snapshot): walk the newest-first chain for the first version at or
  // below the snapshot.
  for (const RowVersion& v : vr.history) {
    if (v.begin_ts <= view.ts) return v.deleted ? nullptr : &v.data;
  }
  return nullptr;
}

bool Table::AnyVersionCarriesKey(const VersionedRow& vr,
                                 const std::vector<size_t>& columns,
                                 const Row& key) {
  if (!vr.deleted && ProjectKey(vr.latest, columns) == key) return true;
  for (const RowVersion& v : vr.history) {
    if (!v.deleted && ProjectKey(v.data, columns) == key) return true;
  }
  return false;
}

StatusOr<RowId> Table::Insert(const Row& row) {
  YT_ASSIGN_OR_RETURN(Row coerced, CoerceToSchema(row));
  return InsertCoerced(std::move(coerced));
}

StatusOr<RowId> Table::InsertCoerced(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity does not match schema of " +
                                   name_);
  }
  std::unique_lock g(latch_);
  YT_RETURN_IF_ERROR(CheckUniqueLocked(row, /*self=*/0));
  RowId rid = next_row_id_++;
  IndexInsertLocked(rid, row);
  VersionedRow vr;
  vr.latest = std::move(row);
  rows_.emplace(rid, std::move(vr));
  ++live_rows_;
  write_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return rid;
}

StatusOr<RowId> Table::InsertVersioned(Row coerced, TxnId writer) {
  if (coerced.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity does not match schema of " +
                                   name_);
  }
  std::unique_lock g(latch_);
  YT_RETURN_IF_ERROR(CheckUniqueLocked(coerced, /*self=*/0));
  RowId rid = next_row_id_++;
  IndexInsertLocked(rid, coerced);
  VersionedRow vr;
  vr.latest = std::move(coerced);
  vr.writer = writer;
  rows_.emplace(rid, std::move(vr));
  ++live_rows_;
  write_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return rid;
}

Status Table::InsertWithId(RowId rid, const Row& row) {
  YT_ASSIGN_OR_RETURN(Row coerced, CoerceToSchema(row));
  std::unique_lock g(latch_);
  auto it = rows_.find(rid);
  if (it != rows_.end()) {
    if (!it->second.deleted || it->second.writer != 0) {
      return Status::AlreadyExists("row id " + std::to_string(rid) +
                                   " occupied in table " + name_);
    }
    // Committed tombstone: replace in place (recovery-style resurrect).
    EraseEntryLocked(it);
  }
  YT_RETURN_IF_ERROR(CheckUniqueLocked(coerced, /*self=*/0));
  next_row_id_ = std::max(next_row_id_, rid + 1);
  IndexInsertLocked(rid, coerced);
  VersionedRow vr;
  vr.latest = std::move(coerced);
  rows_.emplace(rid, std::move(vr));
  ++live_rows_;
  write_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

StatusOr<Row> Table::Get(RowId rid) const {
  std::shared_lock g(latch_);
  auto it = rows_.find(rid);
  if (it == rows_.end() || it->second.deleted) {
    return Status::NotFound("row " + std::to_string(rid) + " in table " +
                            name_);
  }
  return it->second.latest;
}

StatusOr<Row> Table::GetVersioned(RowId rid, const ReadView& view) const {
  std::shared_lock g(latch_);
  auto it = rows_.find(rid);
  if (it != rows_.end()) {
    const Row* v = VisibleVersion(it->second, view);
    if (v != nullptr) return *v;
  }
  return Status::NotFound("row " + std::to_string(rid) + " in table " + name_);
}

Status Table::Update(RowId rid, const Row& row) {
  YT_ASSIGN_OR_RETURN(Row coerced, CoerceToSchema(row));
  return UpdateCoerced(rid, std::move(coerced));
}

Status Table::UpdateCoerced(RowId rid, Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity does not match schema of " +
                                   name_);
  }
  std::unique_lock g(latch_);
  auto it = rows_.find(rid);
  if (it == rows_.end() || it->second.deleted) {
    return Status::NotFound("row " + std::to_string(rid) + " in table " +
                            name_);
  }
  YT_RETURN_IF_ERROR(CheckUniqueLocked(row, rid));
  VersionedRow& vr = it->second;
  Row old = std::move(vr.latest);
  vr.latest = std::move(row);
  vr.writer = 0;
  IndexInsertLocked(rid, vr.latest);
  ScrubKeysLocked(rid, old);
  write_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

Status Table::UpdateVersioned(RowId rid, Row coerced, TxnId writer,
                              bool* pushed) {
  *pushed = false;
  if (coerced.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity does not match schema of " +
                                   name_);
  }
  std::unique_lock g(latch_);
  auto it = rows_.find(rid);
  if (it == rows_.end() || it->second.deleted) {
    return Status::NotFound("row " + std::to_string(rid) + " in table " +
                            name_);
  }
  YT_RETURN_IF_ERROR(CheckUniqueLocked(coerced, rid));
  VersionedRow& vr = it->second;
  if (vr.writer == writer) {
    // Re-write by the owning transaction: overwrite the uncommitted
    // version in place (intermediate states are never visible to anyone).
    Row old = std::move(vr.latest);
    vr.latest = std::move(coerced);
    IndexInsertLocked(rid, vr.latest);
    ScrubKeysLocked(rid, old);
  } else {
    // First write to a committed row: push the committed version onto the
    // chain so snapshot readers keep seeing it. Its index keys stay.
    vr.history.insert(vr.history.begin(),
                      RowVersion{vr.begin_ts, false, std::move(vr.latest)});
    vr.latest = std::move(coerced);
    vr.writer = writer;
    IndexInsertLocked(rid, vr.latest);
    *pushed = true;
  }
  write_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

Status Table::Delete(RowId rid) {
  std::unique_lock g(latch_);
  auto it = rows_.find(rid);
  if (it == rows_.end() || it->second.deleted) {
    return Status::NotFound("row " + std::to_string(rid) + " in table " +
                            name_);
  }
  EraseEntryLocked(it);
  write_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

Status Table::DeleteVersioned(RowId rid, TxnId writer, bool* pushed) {
  *pushed = false;
  std::unique_lock g(latch_);
  auto it = rows_.find(rid);
  if (it == rows_.end() || it->second.deleted) {
    return Status::NotFound("row " + std::to_string(rid) + " in table " +
                            name_);
  }
  VersionedRow& vr = it->second;
  if (vr.writer != writer) {
    // First write to a committed row: preserve it for older snapshots.
    vr.history.insert(vr.history.begin(),
                      RowVersion{vr.begin_ts, false, vr.latest});
    vr.writer = writer;
    *pushed = true;
  }
  // The tombstone keeps the old data in `latest` so rollback and key
  // scrubbing know what it carried; `deleted` hides it from every reader.
  vr.deleted = true;
  --live_rows_;
  write_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

void Table::StampCommit(RowId rid, TxnId writer, uint64_t ts) {
  std::unique_lock g(latch_);
  auto it = rows_.find(rid);
  if (it == rows_.end()) return;
  VersionedRow& vr = it->second;
  if (vr.writer != writer) return;  // already stamped (redundant undo entry)
  vr.begin_ts = ts;
  vr.writer = 0;
}

void Table::RollbackInsert(RowId rid, TxnId writer) {
  std::unique_lock g(latch_);
  auto it = rows_.find(rid);
  if (it == rows_.end()) return;
  VersionedRow& vr = it->second;
  if (vr.writer != writer || !vr.history.empty()) return;
  EraseEntryLocked(it);
  write_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

void Table::RollbackWrite(RowId rid, TxnId writer) {
  std::unique_lock g(latch_);
  auto it = rows_.find(rid);
  if (it == rows_.end()) return;
  VersionedRow& vr = it->second;
  // The undo log is processed in reverse, so the *first* rollback touching
  // this row restores the committed version and clears `writer`; later
  // entries for the same row (earlier writes of the same transaction) then
  // no-op on the writer mismatch. An insert-then-update row has an empty
  // chain here and is erased by its kInsert undo entry instead.
  if (vr.writer != writer || vr.history.empty()) return;
  bool was_live = !vr.deleted;
  Row discarded = std::move(vr.latest);
  RowVersion& top = vr.history.front();
  vr.latest = std::move(top.data);
  vr.deleted = top.deleted;
  vr.begin_ts = top.begin_ts;
  vr.writer = 0;
  vr.history.erase(vr.history.begin());
  if (was_live && vr.deleted) --live_rows_;
  if (!was_live && !vr.deleted) ++live_rows_;
  IndexInsertLocked(rid, vr.latest);
  ScrubKeysLocked(rid, discarded);
  write_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

uint64_t Table::LatestBeginTs(RowId rid) const {
  std::shared_lock g(latch_);
  auto it = rows_.find(rid);
  if (it == rows_.end() || it->second.writer != 0) return 0;
  return it->second.begin_ts;
}

size_t Table::PruneVersions(uint64_t oldest_snapshot) {
  std::unique_lock g(latch_);
  size_t pruned = 0;
  for (auto it = rows_.begin(); it != rows_.end();) {
    VersionedRow& vr = it->second;
    // Find the newest version visible at the horizon; everything older is
    // unreachable by any live or future snapshot. When the latest version
    // itself is committed at-or-below the horizon, the whole chain goes.
    size_t keep_from = 0;  // first history index to drop
    if (vr.writer != 0 || vr.begin_ts > oldest_snapshot) {
      while (keep_from < vr.history.size() &&
             vr.history[keep_from].begin_ts > oldest_snapshot) {
        ++keep_from;
      }
      // Keep the horizon version itself (the one a snapshot at exactly the
      // horizon reads).
      if (keep_from < vr.history.size()) ++keep_from;
    }
    if (keep_from < vr.history.size()) {
      std::vector<RowVersion> dropped(vr.history.begin() + keep_from,
                                      vr.history.end());
      vr.history.resize(keep_from);
      pruned += dropped.size();
      for (RowVersion& v : dropped) {
        if (!v.deleted) ScrubKeysLocked(it->first, v.data);
      }
    }
    // A committed tombstone with no remaining chain is dead weight: no
    // snapshot at-or-above the horizon can see any version of it.
    if (vr.deleted && vr.writer == 0 && vr.begin_ts <= oldest_snapshot &&
        vr.history.empty()) {
      ++pruned;
      EraseEntryLocked(it++);
      continue;
    }
    ++it;
  }
  return pruned;
}

void Table::Scan(const std::function<bool(RowId, const Row&)>& visitor) const {
  std::shared_lock g(latch_);
  for (const auto& [rid, vr] : rows_) {
    if (vr.deleted) continue;
    if (!visitor(rid, vr.latest)) break;
  }
}

RowId Table::ScanChunk(RowId from, size_t max_rows,
                       std::vector<std::pair<RowId, Row>>* out) const {
  out->clear();
  out->reserve(max_rows);
  std::shared_lock g(latch_);
  auto it = rows_.lower_bound(from);
  while (it != rows_.end() && out->size() < max_rows) {
    if (!it->second.deleted) out->emplace_back(it->first, it->second.latest);
    ++it;
  }
  return it == rows_.end() ? 0 : it->first;
}

RowId Table::ScanChunkVersioned(const ReadView& view, RowId from,
                                size_t max_rows,
                                std::vector<std::pair<RowId, Row>>* out) const {
  out->clear();
  out->reserve(max_rows);
  std::shared_lock g(latch_);
  auto it = rows_.lower_bound(from);
  while (it != rows_.end() && out->size() < max_rows) {
    const Row* v = VisibleVersion(it->second, view);
    if (v != nullptr) out->emplace_back(it->first, *v);
    ++it;
  }
  return it == rows_.end() ? 0 : it->first;
}

Status Table::CreateIndex(const std::vector<std::string>& column_names,
                          bool unique, bool ordered) {
  std::vector<size_t> columns;
  for (const std::string& name : column_names) {
    YT_ASSIGN_OR_RETURN(size_t i, schema_.IndexOf(name));
    columns.push_back(i);
  }
  return CreateIndexByPositions(columns, unique, ordered);
}

Status Table::CreateIndexByPositions(const std::vector<size_t>& columns,
                                     bool unique, bool ordered) {
  std::unique_lock g(latch_);
  for (size_t c : columns) {
    if (c >= schema_.num_columns()) {
      return Status::InvalidArgument("index column out of range for table " +
                                     name_);
    }
  }
  if (FindIndexLocked(columns) != nullptr) {
    return Status::AlreadyExists("index already exists on table " + name_);
  }
  Index idx;
  idx.columns = columns;
  idx.unique = unique;
  idx.ordered = ordered;
  // Backfill from every version of every row, so snapshot readers at older
  // timestamps can still probe the new index. Uniqueness only considers
  // live latest versions.
  for (const auto& [rid, vr] : rows_) {
    std::vector<Row> keys;
    if (!vr.deleted) keys.push_back(ProjectKey(vr.latest, idx.columns));
    for (const RowVersion& v : vr.history) {
      if (!v.deleted) keys.push_back(ProjectKey(v.data, idx.columns));
    }
    bool first = true;
    for (Row& key : keys) {
      auto& bucket = ordered ? idx.tree[key] : idx.hash[key];
      // Keys containing NULL are exempt from uniqueness (SQL UNIQUE).
      if (unique && first && !vr.deleted && !bucket.empty() &&
          !RowHasNullPrefix(key, key.size())) {
        return Status::AlreadyExists(
            "duplicate key in unique index on table " + name_);
      }
      if (std::find(bucket.begin(), bucket.end(), rid) == bucket.end()) {
        bucket.insert(std::lower_bound(bucket.begin(), bucket.end(), rid),
                      rid);
      }
      first = false;
    }
  }
  indexes_.push_back(std::move(idx));
  return Status::Ok();
}

const std::vector<RowId>* Table::IndexFind(const Index& idx, const Row& key) {
  if (idx.ordered) {
    auto it = idx.tree.find(key);
    return it == idx.tree.end() ? nullptr : &it->second;
  }
  auto it = idx.hash.find(key);
  return it == idx.hash.end() ? nullptr : &it->second;
}

StatusOr<std::vector<RowId>> Table::IndexLookup(
    const std::vector<size_t>& columns, const Row& key) const {
  std::shared_lock g(latch_);
  const Index* idx = FindIndexLocked(columns);
  if (idx == nullptr) {
    return Status::NotFound("no index on requested columns of " + name_);
  }
  const std::vector<RowId>* bucket = IndexFind(*idx, key);
  if (bucket == nullptr) return std::vector<RowId>{};
  // Buckets may carry stale entries (older versions' keys): confirm the
  // latest version still projects the key and is live.
  std::vector<RowId> out;
  out.reserve(bucket->size());
  for (RowId rid : *bucket) {
    auto it = rows_.find(rid);
    if (it == rows_.end() || it->second.deleted) continue;
    if (ProjectKey(it->second.latest, columns) == key) out.push_back(rid);
  }
  return out;
}

StatusOr<std::vector<std::pair<RowId, Row>>> Table::IndexLookupVersioned(
    const std::vector<size_t>& columns, const Row& key,
    const ReadView& view) const {
  std::shared_lock g(latch_);
  const Index* idx = FindIndexLocked(columns);
  if (idx == nullptr) {
    return Status::NotFound("no index on requested columns of " + name_);
  }
  std::vector<std::pair<RowId, Row>> out;
  const std::vector<RowId>* bucket = IndexFind(*idx, key);
  if (bucket == nullptr) return out;
  for (RowId rid : *bucket) {
    auto it = rows_.find(rid);
    if (it == rows_.end()) continue;
    const Row* v = VisibleVersion(it->second, view);
    if (v != nullptr && ProjectKey(*v, columns) == key) {
      out.emplace_back(rid, *v);
    }
  }
  return out;
}

namespace {

/// Shared shape of the two range-lookup walks: visits in-range keys in
/// direction order, NULL-filters bound-constrained columns, and lets the
/// caller emit a bucket's rows (returning true to stop at a limit).
template <typename Tree, typename EmitBucket>
void WalkRange(const Tree& tree, const IndexRangeSpec& spec,
               const EmitBucket& emit_bucket) {
  const IndexRange& r = spec.range;
  // NULL keys are invisible to range predicates, but only in the columns a
  // bound actually constrains — an unconstrained trailing NULL (or a fully
  // unbounded ORDER BY scan) still qualifies.
  const size_t null_len = std::max(r.lo_unbounded ? 0 : r.lo.size(),
                                   r.hi_unbounded ? 0 : r.hi.size());

  if (!spec.reverse) {
    auto it = r.lo_unbounded ? tree.begin() : tree.lower_bound(r.lo);
    // An exclusive (possibly prefix) lower bound excludes every key that
    // prefix-compares equal to it.
    if (!r.lo_unbounded && !r.lo_incl) {
      while (it != tree.end() &&
             IndexRange::ComparePrefix(it->first, r.lo) == 0) {
        ++it;
      }
    }
    for (; it != tree.end(); ++it) {
      const Row& key = it->first;
      if (!r.hi_unbounded) {
        int c = IndexRange::ComparePrefix(key, r.hi);
        if (c > 0 || (c == 0 && !r.hi_incl)) break;
      }
      if (RowHasNullIn(key, spec.null_filter_from, null_len)) continue;
      if (emit_bucket(key, it->second)) return;
    }
    return;
  }

  // Reverse scan: walk down from just past the upper bound, so a LIMIT
  // stops after the top keys instead of collecting the whole interval. An
  // inclusive prefix bound admits every extension of itself, and those sort
  // *after* upper_bound(hi) under Row order (the prefix row sorts first),
  // so advance past them to find the true end of the interval — a walk
  // bounded by the boundary prefix's own extensions, which are all in-range
  // keys anyway.
  auto end_it = tree.end();
  if (!r.hi_unbounded) {
    if (r.hi_incl) {
      end_it = tree.upper_bound(r.hi);
      while (end_it != tree.end() &&
             IndexRange::ComparePrefix(end_it->first, r.hi) == 0) {
        ++end_it;
      }
    } else {
      end_it = tree.lower_bound(r.hi);
    }
  }
  for (auto rit = std::make_reverse_iterator(end_it); rit != tree.rend();
       ++rit) {
    const Row& key = rit->first;
    if (!r.lo_unbounded) {
      int c = IndexRange::ComparePrefix(key, r.lo);
      if (c < 0 || (c == 0 && !r.lo_incl)) break;
    }
    if (RowHasNullIn(key, spec.null_filter_from, null_len)) continue;
    if (emit_bucket(key, rit->second)) return;
  }
}

}  // namespace

StatusOr<std::vector<RowId>> Table::RangeLookup(
    const IndexRangeSpec& spec) const {
  std::shared_lock g(latch_);
  const Index* idx = FindIndexLocked(spec.columns);
  if (idx == nullptr || !idx->ordered) {
    return Status::NotFound("no ordered index on requested columns of " +
                            name_);
  }
  std::vector<RowId> out;
  // Buckets are kept RowId-sorted, so emitting a key's rows is a plain
  // (possibly reversed) walk: RowIds ascend on a forward scan and descend
  // on a reverse scan (whole-result key-then-rid order, either direction).
  // Stale entries (older versions' keys) are filtered against the latest
  // version before counting toward the limit.
  auto emit_bucket = [&](const Row& key, const std::vector<RowId>& bucket) {
    auto emit_one = [&](RowId rid) {
      auto it = rows_.find(rid);
      if (it == rows_.end() || it->second.deleted) return false;
      if (ProjectKey(it->second.latest, spec.columns) != key) return false;
      out.push_back(rid);
      return spec.limit >= 0 && out.size() >= static_cast<size_t>(spec.limit);
    };
    if (spec.reverse) {
      for (auto rit = bucket.rbegin(); rit != bucket.rend(); ++rit) {
        if (emit_one(*rit)) return true;
      }
    } else {
      for (RowId rid : bucket) {
        if (emit_one(rid)) return true;
      }
    }
    return false;
  };
  WalkRange(idx->tree, spec, emit_bucket);
  return out;
}

StatusOr<std::vector<std::pair<RowId, Row>>> Table::RangeLookupVersioned(
    const IndexRangeSpec& spec, const ReadView& view) const {
  std::shared_lock g(latch_);
  const Index* idx = FindIndexLocked(spec.columns);
  if (idx == nullptr || !idx->ordered) {
    return Status::NotFound("no ordered index on requested columns of " +
                            name_);
  }
  std::vector<std::pair<RowId, Row>> out;
  auto emit_bucket = [&](const Row& key, const std::vector<RowId>& bucket) {
    auto emit_one = [&](RowId rid) {
      auto it = rows_.find(rid);
      if (it == rows_.end()) return false;
      const Row* v = VisibleVersion(it->second, view);
      if (v == nullptr || ProjectKey(*v, spec.columns) != key) return false;
      out.emplace_back(rid, *v);
      return spec.limit >= 0 && out.size() >= static_cast<size_t>(spec.limit);
    };
    if (spec.reverse) {
      for (auto rit = bucket.rbegin(); rit != bucket.rend(); ++rit) {
        if (emit_one(*rit)) return true;
      }
    } else {
      for (RowId rid : bucket) {
        if (emit_one(rid)) return true;
      }
    }
    return false;
  };
  WalkRange(idx->tree, spec, emit_bucket);
  return out;
}

bool Table::HasIndexOn(const std::vector<size_t>& columns) const {
  std::shared_lock g(latch_);
  return FindIndexLocked(columns) != nullptr;
}

std::vector<std::vector<size_t>> Table::IndexedColumnSets() const {
  std::shared_lock g(latch_);
  std::vector<std::vector<size_t>> out;
  out.reserve(indexes_.size());
  for (const Index& idx : indexes_) out.push_back(idx.columns);
  return out;
}

std::vector<IndexInfo> Table::IndexInfos() const {
  std::shared_lock g(latch_);
  std::vector<IndexInfo> out;
  out.reserve(indexes_.size());
  for (const Index& idx : indexes_) {
    out.push_back({idx.columns, idx.unique, idx.ordered});
  }
  return out;
}

uint64_t Table::IndexColumnsHash(const std::vector<size_t>& columns) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (size_t c : columns) {
    h = (h ^ c) * 1099511628211ull;
  }
  return h;
}

uint64_t Table::IndexKeyHash(const std::vector<size_t>& columns,
                             const Row& key) {
  uint64_t h = IndexColumnsHash(columns);
  h ^= key.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::vector<uint64_t> Table::IndexKeyHashesFor(const Row& row) const {
  std::shared_lock g(latch_);
  std::vector<uint64_t> out;
  out.reserve(indexes_.size());
  for (const Index& idx : indexes_) {
    out.push_back(IndexKeyHash(idx.columns, ProjectKey(row, idx.columns)));
  }
  return out;
}

std::vector<std::pair<uint64_t, Row>> Table::OrderedIndexKeysFor(
    const Row& row) const {
  std::shared_lock g(latch_);
  std::vector<std::pair<uint64_t, Row>> out;
  for (const Index& idx : indexes_) {
    if (!idx.ordered) continue;
    out.emplace_back(IndexColumnsHash(idx.columns),
                     ProjectKey(row, idx.columns));
  }
  return out;
}

size_t Table::size() const {
  std::shared_lock g(latch_);
  return live_rows_;
}

size_t Table::version_count() const {
  std::shared_lock g(latch_);
  size_t n = 0;
  for (const auto& [rid, vr] : rows_) n += 1 + vr.history.size();
  return n;
}

std::unique_ptr<Table> Table::Clone() const {
  std::shared_lock g(latch_);
  auto copy = std::make_unique<Table>(id_, name_, schema_);
  copy->rows_ = rows_;
  copy->next_row_id_ = next_row_id_;
  copy->live_rows_ = live_rows_;
  copy->indexes_ = indexes_;
  return copy;
}

Status Table::CheckUniqueLocked(const Row& row, RowId self) const {
  for (const Index& idx : indexes_) {
    if (!idx.unique) continue;
    Row key = ProjectKey(row, idx.columns);
    // SQL UNIQUE: keys containing NULL never collide.
    if (RowHasNullPrefix(key, key.size())) continue;
    const std::vector<RowId>* bucket = IndexFind(idx, key);
    if (bucket == nullptr) continue;
    for (RowId r : *bucket) {
      if (r == self) continue;
      // Only a *live latest* version that still projects the key collides;
      // stale bucket entries from superseded versions don't.
      auto it = rows_.find(r);
      if (it == rows_.end() || it->second.deleted) continue;
      if (ProjectKey(it->second.latest, idx.columns) != key) continue;
      return Status::AlreadyExists("duplicate key in unique index on table " +
                                   name_);
    }
  }
  return Status::Ok();
}

void Table::IndexInsertLocked(RowId rid, const Row& row) {
  for (Index& idx : indexes_) {
    Row key = ProjectKey(row, idx.columns);
    auto& bucket =
        idx.ordered ? idx.tree[std::move(key)] : idx.hash[std::move(key)];
    // Keep buckets RowId-sorted so range scans emit them without a per-read
    // sort. RowIds are allocated monotonically, so this lower_bound lands at
    // end() except for undo/recovery re-insertions. An older version may
    // already carry the same key (no-change update): dedup.
    auto pos = std::lower_bound(bucket.begin(), bucket.end(), rid);
    if (pos == bucket.end() || *pos != rid) bucket.insert(pos, rid);
  }
}

void Table::IndexRemoveLocked(RowId rid, const Row& row) {
  for (Index& idx : indexes_) {
    Row key = ProjectKey(row, idx.columns);
    if (idx.ordered) {
      auto it = idx.tree.find(key);
      if (it == idx.tree.end()) continue;
      auto& vec = it->second;
      vec.erase(std::remove(vec.begin(), vec.end(), rid), vec.end());
      if (vec.empty()) idx.tree.erase(it);
    } else {
      auto it = idx.hash.find(key);
      if (it == idx.hash.end()) continue;
      auto& vec = it->second;
      vec.erase(std::remove(vec.begin(), vec.end(), rid), vec.end());
      if (vec.empty()) idx.hash.erase(it);
    }
  }
}

void Table::ScrubKeysLocked(RowId rid, const Row& old_data) {
  auto it = rows_.find(rid);
  for (Index& idx : indexes_) {
    Row key = ProjectKey(old_data, idx.columns);
    if (it != rows_.end() &&
        AnyVersionCarriesKey(it->second, idx.columns, key)) {
      continue;  // some remaining version still needs the entry
    }
    if (idx.ordered) {
      auto kit = idx.tree.find(key);
      if (kit == idx.tree.end()) continue;
      auto& vec = kit->second;
      vec.erase(std::remove(vec.begin(), vec.end(), rid), vec.end());
      if (vec.empty()) idx.tree.erase(kit);
    } else {
      auto kit = idx.hash.find(key);
      if (kit == idx.hash.end()) continue;
      auto& vec = kit->second;
      vec.erase(std::remove(vec.begin(), vec.end(), rid), vec.end());
      if (vec.empty()) idx.hash.erase(kit);
    }
  }
}

void Table::EraseEntryLocked(std::map<RowId, VersionedRow>::iterator it) {
  RowId rid = it->first;
  VersionedRow vr = std::move(it->second);
  bool was_live = !vr.deleted;
  rows_.erase(it);
  // With the entry gone, every key any version carried is unreferenced.
  IndexRemoveLocked(rid, vr.latest);
  for (const RowVersion& v : vr.history) IndexRemoveLocked(rid, v.data);
  if (was_live) --live_rows_;
}

const Table::Index* Table::FindIndexLocked(
    const std::vector<size_t>& columns) const {
  for (const Index& idx : indexes_) {
    if (idx.columns == columns) return &idx;
  }
  return nullptr;
}

Row Table::ProjectKey(const Row& row, const std::vector<size_t>& columns) {
  std::vector<Value> vals;
  vals.reserve(columns.size());
  for (size_t c : columns) vals.push_back(row[c]);
  return Row(std::move(vals));
}

}  // namespace youtopia
