#include "src/storage/table.h"

#include <algorithm>

namespace youtopia {

namespace {

bool RowHasNullIn(const Row& key, size_t from, size_t len) {
  for (size_t i = from; i < len && i < key.size(); ++i) {
    if (key[i].is_null()) return true;
  }
  return false;
}

bool RowHasNullPrefix(const Row& key, size_t len) {
  return RowHasNullIn(key, 0, len);
}

}  // namespace

IndexRange IndexRange::Point(Row key) {
  IndexRange r;
  r.lo = key;
  r.hi = std::move(key);
  r.lo_unbounded = r.hi_unbounded = false;
  r.lo_incl = r.hi_incl = true;
  return r;
}

int IndexRange::ComparePrefix(const Row& key, const Row& bound) {
  size_t n = std::min(key.size(), bound.size());
  for (size_t i = 0; i < n; ++i) {
    int c = key[i].Compare(bound[i]);
    if (c != 0) return c;
  }
  // Only the bound's own length participates: a longer key extending the
  // bound compares equal; a key shorter than the bound sorts below it.
  if (key.size() >= bound.size()) return 0;
  return -1;
}

bool IndexRange::Contains(const Row& key) const {
  if (!lo_unbounded) {
    int c = ComparePrefix(key, lo);
    if (c < 0 || (c == 0 && !lo_incl)) return false;
  }
  if (!hi_unbounded) {
    int c = ComparePrefix(key, hi);
    if (c > 0 || (c == 0 && !hi_incl)) return false;
  }
  return true;
}

bool IndexRange::Overlaps(const IndexRange& o) const {
  // `a` is entirely below `b` when a.hi ends before b.lo begins. On a
  // prefix-equal boundary the *shorter* bound's inclusivity decides: the
  // longer bound lies strictly inside the shorter one's extension set, so
  // an inclusive shorter bound always reaches keys on the other side of it
  // (lo=(5,3) starts inside hi=(5) inclusive's coverage of every 5-prefix
  // key), while an exclusive shorter bound excludes that whole set.
  auto below = [](const IndexRange& a, const IndexRange& b) {
    if (a.hi_unbounded || b.lo_unbounded) return false;
    size_t n = std::min(a.hi.size(), b.lo.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a.hi[i].Compare(b.lo[i]);
      if (c != 0) return c < 0;
    }
    bool touch = true;
    if (a.hi.size() <= b.lo.size()) touch &= a.hi_incl;
    if (b.lo.size() <= a.hi.size()) touch &= b.lo_incl;
    return !touch;
  };
  return !below(*this, o) && !below(o, *this);
}

bool IndexRange::operator==(const IndexRange& o) const {
  if (lo_unbounded != o.lo_unbounded || hi_unbounded != o.hi_unbounded) {
    return false;
  }
  if (!lo_unbounded && (lo_incl != o.lo_incl || lo != o.lo)) return false;
  if (!hi_unbounded && (hi_incl != o.hi_incl || hi != o.hi)) return false;
  return true;
}

std::string IndexRange::ToString() const {
  std::string s =
      lo_unbounded ? std::string("(-inf")
                   : std::string(lo_incl ? "[" : "(") + lo.ToString();
  s += ", ";
  s += hi_unbounded ? std::string("+inf)")
                    : hi.ToString() + std::string(hi_incl ? "]" : ")");
  return s;
}

Table::Table(TableId id, std::string name, Schema schema)
    : id_(id), name_(std::move(name)), schema_(std::move(schema)) {
  if (!schema_.primary_key().empty()) {
    (void)CreateIndexByPositions(schema_.primary_key(), /*unique=*/true,
                                 /*ordered=*/schema_.pk_ordered());
  }
}

StatusOr<Row> Table::CoerceToSchema(const Row& row) const {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString() + " of table " + name_);
  }
  std::vector<Value> vals;
  vals.reserve(row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    YT_ASSIGN_OR_RETURN(Value v, row[i].CoerceTo(schema_.column(i).type));
    vals.push_back(std::move(v));
  }
  // SQL primary keys imply NOT NULL: without this, the UNIQUE NULL
  // exemption would admit any number of NULL-keyed "duplicates".
  for (size_t c : schema_.primary_key()) {
    if (vals[c].is_null()) {
      return Status::InvalidArgument("NULL in primary-key column " +
                                     schema_.column(c).name + " of table " +
                                     name_);
    }
  }
  return Row(std::move(vals));
}

StatusOr<RowId> Table::Insert(const Row& row) {
  YT_ASSIGN_OR_RETURN(Row coerced, CoerceToSchema(row));
  return InsertCoerced(std::move(coerced));
}

StatusOr<RowId> Table::InsertCoerced(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity does not match schema of " +
                                   name_);
  }
  std::unique_lock g(latch_);
  YT_RETURN_IF_ERROR(CheckUniqueLocked(row, /*self=*/0));
  RowId rid = next_row_id_++;
  IndexInsertLocked(rid, row);
  rows_.emplace(rid, std::move(row));
  write_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return rid;
}

Status Table::InsertWithId(RowId rid, const Row& row) {
  YT_ASSIGN_OR_RETURN(Row coerced, CoerceToSchema(row));
  std::unique_lock g(latch_);
  if (rows_.count(rid)) {
    return Status::AlreadyExists("row id " + std::to_string(rid) +
                                 " occupied in table " + name_);
  }
  YT_RETURN_IF_ERROR(CheckUniqueLocked(coerced, /*self=*/0));
  next_row_id_ = std::max(next_row_id_, rid + 1);
  IndexInsertLocked(rid, coerced);
  rows_.emplace(rid, std::move(coerced));
  write_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

StatusOr<Row> Table::Get(RowId rid) const {
  std::shared_lock g(latch_);
  auto it = rows_.find(rid);
  if (it == rows_.end()) {
    return Status::NotFound("row " + std::to_string(rid) + " in table " +
                            name_);
  }
  return it->second;
}

Status Table::Update(RowId rid, const Row& row) {
  YT_ASSIGN_OR_RETURN(Row coerced, CoerceToSchema(row));
  return UpdateCoerced(rid, std::move(coerced));
}

Status Table::UpdateCoerced(RowId rid, Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity does not match schema of " +
                                   name_);
  }
  std::unique_lock g(latch_);
  auto it = rows_.find(rid);
  if (it == rows_.end()) {
    return Status::NotFound("row " + std::to_string(rid) + " in table " +
                            name_);
  }
  YT_RETURN_IF_ERROR(CheckUniqueLocked(row, rid));
  IndexRemoveLocked(rid, it->second);
  it->second = std::move(row);
  IndexInsertLocked(rid, it->second);
  write_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

Status Table::Delete(RowId rid) {
  std::unique_lock g(latch_);
  auto it = rows_.find(rid);
  if (it == rows_.end()) {
    return Status::NotFound("row " + std::to_string(rid) + " in table " +
                            name_);
  }
  IndexRemoveLocked(rid, it->second);
  rows_.erase(it);
  write_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

void Table::Scan(const std::function<bool(RowId, const Row&)>& visitor) const {
  std::shared_lock g(latch_);
  for (const auto& [rid, row] : rows_) {
    if (!visitor(rid, row)) break;
  }
}

RowId Table::ScanChunk(RowId from, size_t max_rows,
                       std::vector<std::pair<RowId, Row>>* out) const {
  out->clear();
  out->reserve(max_rows);
  std::shared_lock g(latch_);
  auto it = rows_.lower_bound(from);
  while (it != rows_.end() && out->size() < max_rows) {
    out->emplace_back(it->first, it->second);
    ++it;
  }
  return it == rows_.end() ? 0 : it->first;
}

Status Table::CreateIndex(const std::vector<std::string>& column_names,
                          bool unique, bool ordered) {
  std::vector<size_t> columns;
  for (const std::string& name : column_names) {
    YT_ASSIGN_OR_RETURN(size_t i, schema_.IndexOf(name));
    columns.push_back(i);
  }
  return CreateIndexByPositions(columns, unique, ordered);
}

Status Table::CreateIndexByPositions(const std::vector<size_t>& columns,
                                     bool unique, bool ordered) {
  std::unique_lock g(latch_);
  for (size_t c : columns) {
    if (c >= schema_.num_columns()) {
      return Status::InvalidArgument("index column out of range for table " +
                                     name_);
    }
  }
  if (FindIndexLocked(columns) != nullptr) {
    return Status::AlreadyExists("index already exists on table " + name_);
  }
  Index idx;
  idx.columns = columns;
  idx.unique = unique;
  idx.ordered = ordered;
  for (const auto& [rid, row] : rows_) {
    Row key = ProjectKey(row, idx.columns);
    auto& bucket = ordered ? idx.tree[key] : idx.hash[key];
    // Keys containing NULL are exempt from uniqueness (SQL UNIQUE).
    if (unique && !bucket.empty() && !RowHasNullPrefix(key, key.size())) {
      return Status::AlreadyExists("duplicate key in unique index on table " +
                                   name_);
    }
    bucket.push_back(rid);
  }
  indexes_.push_back(std::move(idx));
  return Status::Ok();
}

const std::vector<RowId>* Table::IndexFind(const Index& idx, const Row& key) {
  if (idx.ordered) {
    auto it = idx.tree.find(key);
    return it == idx.tree.end() ? nullptr : &it->second;
  }
  auto it = idx.hash.find(key);
  return it == idx.hash.end() ? nullptr : &it->second;
}

StatusOr<std::vector<RowId>> Table::IndexLookup(
    const std::vector<size_t>& columns, const Row& key) const {
  std::shared_lock g(latch_);
  const Index* idx = FindIndexLocked(columns);
  if (idx == nullptr) {
    return Status::NotFound("no index on requested columns of " + name_);
  }
  const std::vector<RowId>* bucket = IndexFind(*idx, key);
  if (bucket == nullptr) return std::vector<RowId>{};
  return *bucket;
}

StatusOr<std::vector<RowId>> Table::RangeLookup(
    const IndexRangeSpec& spec) const {
  std::shared_lock g(latch_);
  const Index* idx = FindIndexLocked(spec.columns);
  if (idx == nullptr || !idx->ordered) {
    return Status::NotFound("no ordered index on requested columns of " +
                            name_);
  }
  const IndexRange& r = spec.range;
  // NULL keys are invisible to range predicates, but only in the columns a
  // bound actually constrains — an unconstrained trailing NULL (or a fully
  // unbounded ORDER BY scan) still qualifies.
  const size_t null_len =
      std::max(r.lo_unbounded ? 0 : r.lo.size(),
               r.hi_unbounded ? 0 : r.hi.size());

  std::vector<RowId> out;
  // Buckets are kept sorted by IndexInsertLocked, so emitting a key's rows
  // is a plain (possibly reversed) walk: RowIds ascend on a forward scan
  // and descend on a reverse scan (whole-result key-then-rid order, either
  // direction).
  auto emit_bucket = [&](const std::vector<RowId>& bucket) {
    if (spec.reverse) {
      out.insert(out.end(), bucket.rbegin(), bucket.rend());
    } else {
      out.insert(out.end(), bucket.begin(), bucket.end());
    }
    if (spec.limit >= 0 && out.size() >= static_cast<size_t>(spec.limit)) {
      out.resize(static_cast<size_t>(spec.limit));
      return true;  // limit reached
    }
    return false;
  };

  if (!spec.reverse) {
    auto it = r.lo_unbounded ? idx->tree.begin() : idx->tree.lower_bound(r.lo);
    // An exclusive (possibly prefix) lower bound excludes every key that
    // prefix-compares equal to it.
    if (!r.lo_unbounded && !r.lo_incl) {
      while (it != idx->tree.end() &&
             IndexRange::ComparePrefix(it->first, r.lo) == 0) {
        ++it;
      }
    }
    for (; it != idx->tree.end(); ++it) {
      const Row& key = it->first;
      if (!r.hi_unbounded) {
        int c = IndexRange::ComparePrefix(key, r.hi);
        if (c > 0 || (c == 0 && !r.hi_incl)) break;
      }
      if (RowHasNullIn(key, spec.null_filter_from, null_len)) continue;
      if (emit_bucket(it->second)) return out;
    }
    return out;
  }

  // Reverse scan: walk down from just past the upper bound, so a LIMIT
  // stops after the top keys instead of collecting the whole interval. An
  // inclusive prefix bound admits every extension of itself, and those sort
  // *after* upper_bound(hi) under Row order (the prefix row sorts first),
  // so advance past them to find the true end of the interval — a walk
  // bounded by the boundary prefix's own extensions, which are all in-range
  // keys anyway.
  auto end_it = idx->tree.end();
  if (!r.hi_unbounded) {
    if (r.hi_incl) {
      end_it = idx->tree.upper_bound(r.hi);
      while (end_it != idx->tree.end() &&
             IndexRange::ComparePrefix(end_it->first, r.hi) == 0) {
        ++end_it;
      }
    } else {
      end_it = idx->tree.lower_bound(r.hi);
    }
  }
  for (auto rit = std::make_reverse_iterator(end_it);
       rit != idx->tree.rend(); ++rit) {
    const Row& key = rit->first;
    if (!r.lo_unbounded) {
      int c = IndexRange::ComparePrefix(key, r.lo);
      if (c < 0 || (c == 0 && !r.lo_incl)) break;
    }
    if (RowHasNullIn(key, spec.null_filter_from, null_len)) continue;
    if (emit_bucket(rit->second)) return out;
  }
  return out;
}

bool Table::HasIndexOn(const std::vector<size_t>& columns) const {
  std::shared_lock g(latch_);
  return FindIndexLocked(columns) != nullptr;
}

std::vector<std::vector<size_t>> Table::IndexedColumnSets() const {
  std::shared_lock g(latch_);
  std::vector<std::vector<size_t>> out;
  out.reserve(indexes_.size());
  for (const Index& idx : indexes_) out.push_back(idx.columns);
  return out;
}

std::vector<IndexInfo> Table::IndexInfos() const {
  std::shared_lock g(latch_);
  std::vector<IndexInfo> out;
  out.reserve(indexes_.size());
  for (const Index& idx : indexes_) {
    out.push_back({idx.columns, idx.unique, idx.ordered});
  }
  return out;
}

uint64_t Table::IndexColumnsHash(const std::vector<size_t>& columns) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (size_t c : columns) {
    h = (h ^ c) * 1099511628211ull;
  }
  return h;
}

uint64_t Table::IndexKeyHash(const std::vector<size_t>& columns,
                             const Row& key) {
  uint64_t h = IndexColumnsHash(columns);
  h ^= key.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::vector<uint64_t> Table::IndexKeyHashesFor(const Row& row) const {
  std::shared_lock g(latch_);
  std::vector<uint64_t> out;
  out.reserve(indexes_.size());
  for (const Index& idx : indexes_) {
    out.push_back(IndexKeyHash(idx.columns, ProjectKey(row, idx.columns)));
  }
  return out;
}

std::vector<std::pair<uint64_t, Row>> Table::OrderedIndexKeysFor(
    const Row& row) const {
  std::shared_lock g(latch_);
  std::vector<std::pair<uint64_t, Row>> out;
  for (const Index& idx : indexes_) {
    if (!idx.ordered) continue;
    out.emplace_back(IndexColumnsHash(idx.columns),
                     ProjectKey(row, idx.columns));
  }
  return out;
}

size_t Table::size() const {
  std::shared_lock g(latch_);
  return rows_.size();
}

std::unique_ptr<Table> Table::Clone() const {
  std::shared_lock g(latch_);
  auto copy = std::make_unique<Table>(id_, name_, schema_);
  copy->rows_ = rows_;
  copy->next_row_id_ = next_row_id_;
  copy->indexes_ = indexes_;
  return copy;
}

Status Table::CheckUniqueLocked(const Row& row, RowId self) const {
  for (const Index& idx : indexes_) {
    if (!idx.unique) continue;
    Row key = ProjectKey(row, idx.columns);
    // SQL UNIQUE: keys containing NULL never collide.
    if (RowHasNullPrefix(key, key.size())) continue;
    const std::vector<RowId>* bucket = IndexFind(idx, key);
    if (bucket == nullptr) continue;
    for (RowId r : *bucket) {
      if (r != self) {
        return Status::AlreadyExists("duplicate key in unique index on table " +
                                     name_);
      }
    }
  }
  return Status::Ok();
}

void Table::IndexInsertLocked(RowId rid, const Row& row) {
  for (Index& idx : indexes_) {
    Row key = ProjectKey(row, idx.columns);
    auto& bucket =
        idx.ordered ? idx.tree[std::move(key)] : idx.hash[std::move(key)];
    // Keep buckets RowId-sorted so range scans emit them without a per-read
    // sort. RowIds are allocated monotonically, so this lower_bound lands at
    // end() except for undo/recovery re-insertions.
    bucket.insert(std::lower_bound(bucket.begin(), bucket.end(), rid), rid);
  }
}

void Table::IndexRemoveLocked(RowId rid, const Row& row) {
  for (Index& idx : indexes_) {
    Row key = ProjectKey(row, idx.columns);
    if (idx.ordered) {
      auto it = idx.tree.find(key);
      if (it == idx.tree.end()) continue;
      auto& vec = it->second;
      vec.erase(std::remove(vec.begin(), vec.end(), rid), vec.end());
      if (vec.empty()) idx.tree.erase(it);
    } else {
      auto it = idx.hash.find(key);
      if (it == idx.hash.end()) continue;
      auto& vec = it->second;
      vec.erase(std::remove(vec.begin(), vec.end(), rid), vec.end());
      if (vec.empty()) idx.hash.erase(it);
    }
  }
}

const Table::Index* Table::FindIndexLocked(
    const std::vector<size_t>& columns) const {
  for (const Index& idx : indexes_) {
    if (idx.columns == columns) return &idx;
  }
  return nullptr;
}

Row Table::ProjectKey(const Row& row, const std::vector<size_t>& columns) {
  std::vector<Value> vals;
  vals.reserve(columns.size());
  for (size_t c : columns) vals.push_back(row[c]);
  return Row(std::move(vals));
}

}  // namespace youtopia
