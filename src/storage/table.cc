#include "src/storage/table.h"

#include <algorithm>

namespace youtopia {

StatusOr<Row> Table::CoerceToSchema(const Row& row) const {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString() + " of table " + name_);
  }
  std::vector<Value> vals;
  vals.reserve(row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    YT_ASSIGN_OR_RETURN(Value v, row[i].CoerceTo(schema_.column(i).type));
    vals.push_back(std::move(v));
  }
  return Row(std::move(vals));
}

StatusOr<RowId> Table::Insert(const Row& row) {
  YT_ASSIGN_OR_RETURN(Row coerced, CoerceToSchema(row));
  std::unique_lock g(latch_);
  RowId rid = next_row_id_++;
  IndexInsertLocked(rid, coerced);
  rows_.emplace(rid, std::move(coerced));
  return rid;
}

Status Table::InsertWithId(RowId rid, const Row& row) {
  YT_ASSIGN_OR_RETURN(Row coerced, CoerceToSchema(row));
  std::unique_lock g(latch_);
  if (rows_.count(rid)) {
    return Status::AlreadyExists("row id " + std::to_string(rid) +
                                 " occupied in table " + name_);
  }
  next_row_id_ = std::max(next_row_id_, rid + 1);
  IndexInsertLocked(rid, coerced);
  rows_.emplace(rid, std::move(coerced));
  return Status::Ok();
}

StatusOr<Row> Table::Get(RowId rid) const {
  std::shared_lock g(latch_);
  auto it = rows_.find(rid);
  if (it == rows_.end()) {
    return Status::NotFound("row " + std::to_string(rid) + " in table " +
                            name_);
  }
  return it->second;
}

Status Table::Update(RowId rid, const Row& row) {
  YT_ASSIGN_OR_RETURN(Row coerced, CoerceToSchema(row));
  std::unique_lock g(latch_);
  auto it = rows_.find(rid);
  if (it == rows_.end()) {
    return Status::NotFound("row " + std::to_string(rid) + " in table " +
                            name_);
  }
  IndexRemoveLocked(rid, it->second);
  it->second = std::move(coerced);
  IndexInsertLocked(rid, it->second);
  return Status::Ok();
}

Status Table::Delete(RowId rid) {
  std::unique_lock g(latch_);
  auto it = rows_.find(rid);
  if (it == rows_.end()) {
    return Status::NotFound("row " + std::to_string(rid) + " in table " +
                            name_);
  }
  IndexRemoveLocked(rid, it->second);
  rows_.erase(it);
  return Status::Ok();
}

void Table::Scan(const std::function<bool(RowId, const Row&)>& visitor) const {
  std::shared_lock g(latch_);
  for (const auto& [rid, row] : rows_) {
    if (!visitor(rid, row)) break;
  }
}

Status Table::CreateIndex(const std::vector<std::string>& column_names) {
  std::unique_lock g(latch_);
  HashIndex idx;
  for (const std::string& name : column_names) {
    YT_ASSIGN_OR_RETURN(size_t i, schema_.IndexOf(name));
    idx.columns.push_back(i);
  }
  if (FindIndexLocked(idx.columns) != nullptr) {
    return Status::AlreadyExists("index already exists on table " + name_);
  }
  for (const auto& [rid, row] : rows_) {
    idx.map[ProjectKey(row, idx.columns)].push_back(rid);
  }
  indexes_.push_back(std::move(idx));
  return Status::Ok();
}

StatusOr<std::vector<RowId>> Table::IndexLookup(
    const std::vector<size_t>& columns, const Row& key) const {
  std::shared_lock g(latch_);
  const HashIndex* idx = FindIndexLocked(columns);
  if (idx == nullptr) {
    return Status::NotFound("no index on requested columns of " + name_);
  }
  auto it = idx->map.find(key);
  if (it == idx->map.end()) return std::vector<RowId>{};
  return it->second;
}

bool Table::HasIndexOn(const std::vector<size_t>& columns) const {
  std::shared_lock g(latch_);
  return FindIndexLocked(columns) != nullptr;
}

size_t Table::size() const {
  std::shared_lock g(latch_);
  return rows_.size();
}

std::unique_ptr<Table> Table::Clone() const {
  std::shared_lock g(latch_);
  auto copy = std::make_unique<Table>(id_, name_, schema_);
  copy->rows_ = rows_;
  copy->next_row_id_ = next_row_id_;
  copy->indexes_ = indexes_;
  return copy;
}

void Table::IndexInsertLocked(RowId rid, const Row& row) {
  for (HashIndex& idx : indexes_) {
    idx.map[ProjectKey(row, idx.columns)].push_back(rid);
  }
}

void Table::IndexRemoveLocked(RowId rid, const Row& row) {
  for (HashIndex& idx : indexes_) {
    auto it = idx.map.find(ProjectKey(row, idx.columns));
    if (it == idx.map.end()) continue;
    auto& vec = it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), rid), vec.end());
    if (vec.empty()) idx.map.erase(it);
  }
}

const Table::HashIndex* Table::FindIndexLocked(
    const std::vector<size_t>& columns) const {
  for (const HashIndex& idx : indexes_) {
    if (idx.columns == columns) return &idx;
  }
  return nullptr;
}

Row Table::ProjectKey(const Row& row, const std::vector<size_t>& columns) {
  std::vector<Value> vals;
  vals.reserve(columns.size());
  for (size_t c : columns) vals.push_back(row[c]);
  return Row(std::move(vals));
}

}  // namespace youtopia
