#ifndef YOUTOPIA_STORAGE_TABLE_H_
#define YOUTOPIA_STORAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/row.h"
#include "src/common/schema.h"
#include "src/common/statusor.h"

namespace youtopia {

using TableId = uint32_t;
using RowId = uint64_t;

/// In-memory heap table: RowId -> Row, with optional hash indexes on column
/// subsets. Physical access is guarded by a shared_mutex *latch*; logical
/// concurrency control (Strict 2PL) lives in the lock manager above. Scan
/// order is RowId order, which is insertion order, so executions are
/// deterministic.
class Table {
 public:
  Table(TableId id, std::string name, Schema schema)
      : id_(id), name_(std::move(name)), schema_(std::move(schema)) {}

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Validates arity/types (with coercion) and appends the row.
  StatusOr<RowId> Insert(const Row& row);

  /// Inserts at a specific RowId (recovery redo / checkpoint load). Fails if
  /// the id is occupied; bumps the row-id allocator past `rid`.
  Status InsertWithId(RowId rid, const Row& row);

  StatusOr<Row> Get(RowId rid) const;
  Status Update(RowId rid, const Row& row);
  Status Delete(RowId rid);

  /// Visits rows in RowId order; the visitor returns false to stop early.
  void Scan(const std::function<bool(RowId, const Row&)>& visitor) const;

  /// Builds a hash index over the named columns (backfills existing rows).
  Status CreateIndex(const std::vector<std::string>& column_names);

  /// Returns RowIds whose projection on `columns` equals `key`, or NotFound
  /// when no index covers exactly those columns.
  StatusOr<std::vector<RowId>> IndexLookup(const std::vector<size_t>& columns,
                                           const Row& key) const;
  bool HasIndexOn(const std::vector<size_t>& columns) const;

  size_t size() const;

  /// Deep copy (used for database snapshots/checkpoints).
  std::unique_ptr<Table> Clone() const;

 private:
  struct HashIndex {
    std::vector<size_t> columns;
    std::unordered_map<Row, std::vector<RowId>, RowHash> map;
  };

  StatusOr<Row> CoerceToSchema(const Row& row) const;
  void IndexInsertLocked(RowId rid, const Row& row);
  void IndexRemoveLocked(RowId rid, const Row& row);
  const HashIndex* FindIndexLocked(const std::vector<size_t>& columns) const;
  static Row ProjectKey(const Row& row, const std::vector<size_t>& columns);

  TableId id_;
  std::string name_;
  Schema schema_;
  mutable std::shared_mutex latch_;
  std::map<RowId, Row> rows_;
  RowId next_row_id_ = 1;
  std::vector<HashIndex> indexes_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_STORAGE_TABLE_H_
