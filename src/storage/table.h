#ifndef YOUTOPIA_STORAGE_TABLE_H_
#define YOUTOPIA_STORAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/row.h"
#include "src/common/schema.h"
#include "src/common/statusor.h"

namespace youtopia {

using TableId = uint32_t;
using RowId = uint64_t;

/// In-memory heap table: RowId -> Row, with optional hash indexes on column
/// subsets. Physical access is guarded by a shared_mutex *latch*; logical
/// concurrency control (Strict 2PL) lives in the lock manager above. Scan
/// order is RowId order, which is insertion order, so executions are
/// deterministic.
class Table {
 public:
  /// A schema with primary-key columns gets a unique hash index over them
  /// automatically (also on recovery/checkpoint load, which reconstruct the
  /// table through this constructor).
  Table(TableId id, std::string name, Schema schema);

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Validates arity/types (with coercion) and appends the row.
  StatusOr<RowId> Insert(const Row& row);
  /// Insert/Update for a row that already came out of Coerce() — skips the
  /// re-validation (the transaction manager coerces once up front to
  /// compute index-key locks).
  StatusOr<RowId> InsertCoerced(Row row);
  Status UpdateCoerced(RowId rid, Row row);

  /// Inserts at a specific RowId (recovery redo / checkpoint load). Fails if
  /// the id is occupied; bumps the row-id allocator past `rid`.
  Status InsertWithId(RowId rid, const Row& row);

  StatusOr<Row> Get(RowId rid) const;
  Status Update(RowId rid, const Row& row);
  Status Delete(RowId rid);

  /// Visits rows in RowId order; the visitor returns false to stop early.
  void Scan(const std::function<bool(RowId, const Row&)>& visitor) const;

  /// Builds a hash index over the named columns (backfills existing rows).
  Status CreateIndex(const std::vector<std::string>& column_names);
  /// Same, addressing columns by schema position. `unique` rejects duplicate
  /// keys at build time and on later inserts/updates (primary-key indexes).
  Status CreateIndexByPositions(const std::vector<size_t>& columns,
                                bool unique = false);

  /// Returns RowIds whose projection on `columns` equals `key`, or NotFound
  /// when no index covers exactly those columns.
  StatusOr<std::vector<RowId>> IndexLookup(const std::vector<size_t>& columns,
                                           const Row& key) const;
  bool HasIndexOn(const std::vector<size_t>& columns) const;

  /// Column sets of every index, in creation order (access-path planning).
  std::vector<std::vector<size_t>> IndexedColumnSets() const;

  /// Validates/coerces a row against the schema without inserting it (the
  /// transaction manager pre-computes index-key locks from the coerced row).
  StatusOr<Row> Coerce(const Row& row) const { return CoerceToSchema(row); }

  /// Stable hash identifying (index columns, key) — the lock manager's
  /// index-key predicate locks are keyed on this.
  static uint64_t IndexKeyHash(const std::vector<size_t>& columns,
                               const Row& key);
  /// IndexKeyHash for every index of this table, projected from `row` (which
  /// must already match the schema).
  std::vector<uint64_t> IndexKeyHashesFor(const Row& row) const;

  size_t size() const;

  /// Deep copy (used for database snapshots/checkpoints).
  std::unique_ptr<Table> Clone() const;

 private:
  struct HashIndex {
    std::vector<size_t> columns;
    bool unique = false;
    std::unordered_map<Row, std::vector<RowId>, RowHash> map;
  };

  StatusOr<Row> CoerceToSchema(const Row& row) const;
  /// Rejects rows that would duplicate a unique-index key (`self` excluded,
  /// for updates). Caller holds the latch.
  Status CheckUniqueLocked(const Row& row, RowId self) const;
  void IndexInsertLocked(RowId rid, const Row& row);
  void IndexRemoveLocked(RowId rid, const Row& row);
  const HashIndex* FindIndexLocked(const std::vector<size_t>& columns) const;
  static Row ProjectKey(const Row& row, const std::vector<size_t>& columns);

  TableId id_;
  std::string name_;
  Schema schema_;
  mutable std::shared_mutex latch_;
  std::map<RowId, Row> rows_;
  RowId next_row_id_ = 1;
  std::vector<HashIndex> indexes_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_STORAGE_TABLE_H_
