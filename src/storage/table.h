#ifndef YOUTOPIA_STORAGE_TABLE_H_
#define YOUTOPIA_STORAGE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/row.h"
#include "src/common/schema.h"
#include "src/common/statusor.h"
#include "src/storage/mvcc.h"

namespace youtopia {

using TableId = uint32_t;
using RowId = uint64_t;

/// An interval over an ordered index's key space. Bounds are rows of key
/// values and may be *shorter* than the index key (prefix bounds): a bound
/// compares only on its own length, so with an index on (a, b),
/// lo = (5) inclusive admits every key whose first column is >= 5, and an
/// exclusive prefix bound excludes every extension of itself (the SQL
/// `a = 5 AND b > 3` shape builds lo = (5, 3) exclusive, which excludes
/// (5, 3, *) but admits (5, 4)). An unbounded side admits everything.
///
/// The same struct keys the lock manager's key-range locks: a range read
/// locks the interval it scanned, a writer locks the degenerate Point(k)
/// interval of each ordered-index key it touches, and two locks conflict
/// only when their intervals overlap.
struct IndexRange {
  Row lo, hi;
  bool lo_unbounded = true, hi_unbounded = true;
  bool lo_incl = true, hi_incl = true;

  /// The whole key space (both sides unbounded).
  static IndexRange All() { return IndexRange{}; }
  /// The degenerate single-key interval [key, key].
  static IndexRange Point(Row key);

  bool fully_unbounded() const { return lo_unbounded && hi_unbounded; }

  /// Compares `key` against a (possibly prefix) bound: only the bound's own
  /// length participates, so a key extending the bound compares equal.
  static int ComparePrefix(const Row& key, const Row& bound);

  /// True when `key` lies inside the interval under prefix-bound semantics.
  bool Contains(const Row& key) const;

  /// True when some key could lie in both intervals (conservative on the
  /// boundary: prefix bounds of different lengths are treated as touching).
  bool Overlaps(const IndexRange& o) const;

  /// Exact structural equality (bounds, flags); identifies a lock record.
  bool operator==(const IndexRange& o) const;

  std::string ToString() const;
};

/// One ordered-index range read: the index's full column set, the interval,
/// the direction, and an optional cap on returned rows (applied after
/// direction, so a reverse scan returns the *top* `limit` keys).
struct IndexRangeSpec {
  std::vector<size_t> columns;  ///< full column set of the ordered index
  IndexRange range;
  bool reverse = false;
  int64_t limit = -1;  ///< -1 = unlimited
  /// First key position whose NULL values disqualify a key (NULLs before it
  /// pass). SQL predicates never match NULL, so statements leave this at 0
  /// — every bound-constrained column filters; the grounder's valuation
  /// unification *does* match NULL on its equality prefix, so its range
  /// probes set it to the prefix length, NULL-filtering the range column
  /// only.
  size_t null_filter_from = 0;
};

/// Column set + flags of one index (access-path planning).
struct IndexInfo {
  std::vector<size_t> columns;
  bool unique = false;
  bool ordered = false;
};

/// In-memory versioned heap table: RowId -> version chain, with optional
/// hash or ordered (B-tree) indexes on column subsets. Each entry holds the
/// *latest* version in place plus a newest-first chain of committed
/// overwritten versions, each stamped with the commit timestamp that
/// created it — snapshot readers (`*Versioned` accessors, taking a
/// `ReadView`) pick the visible version latch-only, never touching the lock
/// manager, while the legacy accessors keep the pre-MVCC in-place
/// semantics for 2PL-locked paths and recovery. Physical access is guarded
/// by a shared_mutex *latch*; logical concurrency control lives above (2PL
/// for writes and locking reads, the commit clock for snapshot reads).
/// Scan order is RowId order, which is insertion order, so executions are
/// deterministic.
///
/// Index maintenance under versioning is additive: a versioned update adds
/// the new key but keeps the old one (an older version still carries it),
/// so every index probe re-checks that the version it returns actually
/// projects the probed key. Stale entries are scrubbed when the last
/// version carrying the key disappears (rollback, same-writer overwrite,
/// GC prune, physical erase).
class Table {
 public:
  /// A schema with primary-key columns gets a unique index over them
  /// automatically (ordered when the schema says so; also on
  /// recovery/checkpoint load, which reconstruct the table through this
  /// constructor).
  Table(TableId id, std::string name, Schema schema);

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Validates arity/types (with coercion) and appends the row.
  StatusOr<RowId> Insert(const Row& row);
  /// Insert/Update for a row that already came out of Coerce() — skips the
  /// re-validation (the transaction manager coerces once up front to
  /// compute index-key locks).
  StatusOr<RowId> InsertCoerced(Row row);
  Status UpdateCoerced(RowId rid, Row row);

  /// Inserts at a specific RowId (recovery redo / checkpoint load). Fails if
  /// the id is occupied by a live row; a committed tombstone at `rid` is
  /// replaced in place. Bumps the row-id allocator past `rid`.
  Status InsertWithId(RowId rid, const Row& row);

  StatusOr<Row> Get(RowId rid) const;
  Status Update(RowId rid, const Row& row);
  Status Delete(RowId rid);

  // --- Versioned mutation path (transaction manager writes) ---
  //
  // These keep the heap's version chains correct across commit and abort:
  // the first write a transaction makes to a committed row pushes the
  // committed version onto the chain (`*pushed` reports it, for
  // versions_created accounting); re-writes by the same transaction
  // overwrite in place. `StampCommit` runs inside the commit clock's
  // publish window and stamps the row with its commit timestamp;
  // `RollbackWrite`/`RollbackInsert` restore the pre-transaction state on
  // abort (processed through the undo log in reverse, so the first
  // rollback of a row restores the committed version and later entries for
  // the same row no-op).

  /// Appends an uncommitted row owned by `writer`.
  StatusOr<RowId> InsertVersioned(Row coerced, TxnId writer);
  /// Overwrites `rid` with an uncommitted version owned by `writer`.
  Status UpdateVersioned(RowId rid, Row coerced, TxnId writer, bool* pushed);
  /// Marks `rid` deleted (tombstone) by `writer`; the row stays readable to
  /// older snapshots.
  Status DeleteVersioned(RowId rid, TxnId writer, bool* pushed);
  /// Stamps `writer`'s uncommitted version of `rid` with commit timestamp
  /// `ts` and releases ownership. No-op unless `writer` owns the latest
  /// version (idempotent across redundant undo-log entries).
  void StampCommit(RowId rid, TxnId writer, uint64_t ts);
  /// Abort path for an inserted row: erases the entry outright.
  void RollbackInsert(RowId rid, TxnId writer);
  /// Abort path for an update/delete: pops the newest committed version
  /// back into place. No-op unless `writer` owns the latest version.
  void RollbackWrite(RowId rid, TxnId writer);

  // --- Snapshot read path (no locks, latch-only) ---

  /// The version of `rid` visible to `view`, or NotFound (absent, not yet
  /// visible, or deleted at the snapshot).
  StatusOr<Row> GetVersioned(RowId rid, const ReadView& view) const;
  /// Chunked snapshot scan: copies up to `max_rows` visible rows with
  /// RowId >= `from` into `*out`, returns the RowId to resume from (0 when
  /// exhausted).
  RowId ScanChunkVersioned(const ReadView& view, RowId from, size_t max_rows,
                           std::vector<std::pair<RowId, Row>>* out) const;
  /// Index point probe at a snapshot: (rid, visible row) pairs whose
  /// *visible version* projects `key` (stale entries filtered out).
  StatusOr<std::vector<std::pair<RowId, Row>>> IndexLookupVersioned(
      const std::vector<size_t>& columns, const Row& key,
      const ReadView& view) const;
  /// Ordered-index range read at a snapshot, key order then RowId order.
  StatusOr<std::vector<std::pair<RowId, Row>>> RangeLookupVersioned(
      const IndexRangeSpec& spec, const ReadView& view) const;

  /// Commit timestamp of the newest committed version of `rid` (0 when the
  /// row is absent or the latest version is uncommitted — the caller holds
  /// the row X lock, so an uncommitted latest is its own). First-updater-
  /// wins checks compare this against the writer's snapshot.
  uint64_t LatestBeginTs(RowId rid) const;

  /// Drops every committed version unreachable from any snapshot >=
  /// `oldest_snapshot` (keeps the newest version at-or-below the horizon;
  /// fully-superseded committed tombstones are erased outright). Returns
  /// the number of versions pruned.
  size_t PruneVersions(uint64_t oldest_snapshot);

  /// Visits rows in RowId order; the visitor returns false to stop early.
  void Scan(const std::function<bool(RowId, const Row&)>& visitor) const;

  /// Copies up to `max_rows` rows with RowId >= `from` into `*out` (cleared
  /// and reserved first), in RowId order. Returns the RowId to resume from,
  /// or 0 when the heap past `from` is exhausted. Chunked scans hold the
  /// latch per chunk, not per table — cursors pull through this.
  RowId ScanChunk(RowId from, size_t max_rows,
                  std::vector<std::pair<RowId, Row>>* out) const;

  /// Monotonic counter bumped by every row mutation (insert/update/delete).
  /// A shared scan captures it at registration; attachers compare it under
  /// their own table S lock, so a scan from before any write is never
  /// shared across the write (the shared-scan attach barrier).
  uint64_t write_epoch() const {
    return write_epoch_.load(std::memory_order_acquire);
  }

  /// Builds an index over the named columns (backfills existing rows).
  /// `unique` rejects duplicate keys — except keys containing NULL, which
  /// are exempt from uniqueness per SQL. `ordered` builds a B-tree instead
  /// of a hash map, enabling RangeLookup.
  Status CreateIndex(const std::vector<std::string>& column_names,
                     bool unique = false, bool ordered = false);
  /// Same, addressing columns by schema position.
  Status CreateIndexByPositions(const std::vector<size_t>& columns,
                                bool unique = false, bool ordered = false);

  /// Returns RowIds whose *latest* version is live and projects `key` on
  /// `columns`, or NotFound when no index covers exactly those columns.
  /// Works on hash and ordered indexes alike.
  StatusOr<std::vector<RowId>> IndexLookup(const std::vector<size_t>& columns,
                                           const Row& key) const;
  bool HasIndexOn(const std::vector<size_t>& columns) const;

  /// RowIds whose key projection lies in `spec.range`, in key order (then
  /// RowId order within a key; descending keys when `spec.reverse`),
  /// truncated to `spec.limit`. Keys with NULL in a *bound-constrained*
  /// column are skipped (SQL comparisons with NULL select nothing) — NULLs
  /// in columns past every bound's length still qualify, so a fully
  /// unbounded range (ORDER BY service) returns every row. NotFound when no
  /// *ordered* index exists on exactly `spec.columns`.
  StatusOr<std::vector<RowId>> RangeLookup(const IndexRangeSpec& spec) const;

  /// Column sets of every index, in creation order (access-path planning).
  std::vector<std::vector<size_t>> IndexedColumnSets() const;
  /// Same with the unique/ordered flags.
  std::vector<IndexInfo> IndexInfos() const;

  /// Validates/coerces a row against the schema without inserting it (the
  /// transaction manager pre-computes index-key locks from the coerced row).
  StatusOr<Row> Coerce(const Row& row) const { return CoerceToSchema(row); }

  /// Stable hash identifying (index columns, key) — the lock manager's
  /// index-key predicate locks are keyed on this.
  static uint64_t IndexKeyHash(const std::vector<size_t>& columns,
                               const Row& key);
  /// Stable hash identifying an index's column set — names the key-range
  /// lock *space* of an ordered index.
  static uint64_t IndexColumnsHash(const std::vector<size_t>& columns);

  /// IndexKeyHash for every index of this table, projected from `row` (which
  /// must already match the schema).
  std::vector<uint64_t> IndexKeyHashesFor(const Row& row) const;
  /// (IndexColumnsHash, projected key) for every *ordered* index — writers
  /// take key-range X locks on the Point() interval of each, so range
  /// readers of an interval containing the key are excluded.
  std::vector<std::pair<uint64_t, Row>> OrderedIndexKeysFor(
      const Row& row) const;

  /// Number of live rows (latest version not a tombstone).
  size_t size() const;

  /// Total stored versions across all chains (latest + history), for GC
  /// observability and tests.
  size_t version_count() const;

  /// Deep copy (used for database snapshots/checkpoints).
  std::unique_ptr<Table> Clone() const;

 private:
  /// One committed, superseded version in a chain.
  struct RowVersion {
    uint64_t begin_ts = 0;  ///< commit timestamp that created this version
    bool deleted = false;   ///< tombstone (the version is a delete)
    Row data;
  };

  /// One heap entry: the latest version in place + newest-first history of
  /// committed versions it superseded. `writer` != 0 marks the latest
  /// version uncommitted (owned by that transaction); `begin_ts` is only
  /// meaningful once `writer` == 0.
  struct VersionedRow {
    Row latest;
    bool deleted = false;
    uint64_t begin_ts = 0;
    TxnId writer = 0;
    std::vector<RowVersion> history;
  };

  /// One secondary index: a hash map or an ordered tree over projected keys.
  struct Index {
    std::vector<size_t> columns;
    bool unique = false;
    bool ordered = false;
    std::unordered_map<Row, std::vector<RowId>, RowHash> hash;  // !ordered
    std::map<Row, std::vector<RowId>> tree;                     // ordered
  };

  StatusOr<Row> CoerceToSchema(const Row& row) const;
  /// Rejects rows that would duplicate a unique-index key among *live
  /// latest* versions (`self` excluded, for updates; keys containing NULL
  /// are exempt). Caller holds the latch.
  Status CheckUniqueLocked(const Row& row, RowId self) const;
  void IndexInsertLocked(RowId rid, const Row& row);
  void IndexRemoveLocked(RowId rid, const Row& row);
  /// Removes (key, rid) entries projected from `old_data` for every index
  /// key no remaining version of `rid` still carries. Call *after* the
  /// version holding `old_data` has been discarded.
  void ScrubKeysLocked(RowId rid, const Row& old_data);
  /// True when some non-deleted version of `vr` projects `key` on `columns`.
  static bool AnyVersionCarriesKey(const VersionedRow& vr,
                                   const std::vector<size_t>& columns,
                                   const Row& key);
  /// The version of `vr` visible to `view`, or nullptr (tombstone/none).
  static const Row* VisibleVersion(const VersionedRow& vr,
                                   const ReadView& view);
  /// Physically erases an entry and every index key its versions carry.
  void EraseEntryLocked(std::map<RowId, VersionedRow>::iterator it);
  const Index* FindIndexLocked(const std::vector<size_t>& columns) const;
  /// RowIds under `key` in `idx`, or nullptr when absent.
  static const std::vector<RowId>* IndexFind(const Index& idx, const Row& key);
  static Row ProjectKey(const Row& row, const std::vector<size_t>& columns);

  TableId id_;
  std::string name_;
  Schema schema_;
  mutable std::shared_mutex latch_;
  std::map<RowId, VersionedRow> rows_;
  RowId next_row_id_ = 1;
  size_t live_rows_ = 0;  ///< entries whose latest version is not a tombstone
  std::vector<Index> indexes_;
  std::atomic<uint64_t> write_epoch_{0};
};

}  // namespace youtopia

#endif  // YOUTOPIA_STORAGE_TABLE_H_
