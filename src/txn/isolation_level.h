#ifndef YOUTOPIA_TXN_ISOLATION_LEVEL_H_
#define YOUTOPIA_TXN_ISOLATION_LEVEL_H_

namespace youtopia {

/// Isolation levels (§3.3.3 / §4). Full entangled isolation is Strict 2PL
/// with table-granular scan locks (which also makes quasi-reads repeatable:
/// a grounding read on a table holds its S lock to commit, so the Fig. 3(b)
/// Donald insert blocks) plus group commits at the entangled-transaction
/// layer. The relaxed levels shorten read-lock duration, the paper's knob
/// for trading isolation for concurrency.
enum class IsolationLevel {
  kFullEntangled = 0,  ///< Strict 2PL + group commit (no anomalies)
  kSerializable,       ///< Strict 2PL, no group-commit enforcement
  kReadCommitted,      ///< read locks released right after each read
  kReadUncommitted,    ///< no read locks at all
};

const char* IsolationLevelName(IsolationLevel l);

/// True when the level holds read locks to end of transaction.
inline bool HoldsReadLocks(IsolationLevel l) {
  return l == IsolationLevel::kFullEntangled ||
         l == IsolationLevel::kSerializable;
}

/// True when the level takes read locks at all.
inline bool TakesReadLocks(IsolationLevel l) {
  return l != IsolationLevel::kReadUncommitted;
}

}  // namespace youtopia

#endif  // YOUTOPIA_TXN_ISOLATION_LEVEL_H_
