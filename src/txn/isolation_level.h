#ifndef YOUTOPIA_TXN_ISOLATION_LEVEL_H_
#define YOUTOPIA_TXN_ISOLATION_LEVEL_H_

namespace youtopia {

/// Isolation levels (§3.3.3 / §4). Full entangled isolation is Strict 2PL
/// with table-granular scan locks (which also makes quasi-reads repeatable:
/// a grounding read on a table holds its S lock to commit, so the Fig. 3(b)
/// Donald insert blocks) plus group commits at the entangled-transaction
/// layer. The relaxed levels shorten read-lock duration, the paper's knob
/// for trading isolation for concurrency.
enum class IsolationLevel {
  kFullEntangled = 0,  ///< Strict 2PL + group commit (no anomalies)
  kSerializable,       ///< Strict 2PL, no group-commit enforcement
  kReadCommitted,      ///< read locks released right after each read
  kReadUncommitted,    ///< no read locks at all
  /// Snapshot isolation: every read of the transaction runs against the one
  /// snapshot taken at Begin (versioned heap, no read locks); writes keep
  /// 2PL X locks with a first-updater-wins check against the snapshot.
  kSnapshot,
};

const char* IsolationLevelName(IsolationLevel l);

/// True when the level holds read locks to end of transaction.
inline bool HoldsReadLocks(IsolationLevel l) {
  return l == IsolationLevel::kFullEntangled ||
         l == IsolationLevel::kSerializable;
}

/// True when the level takes read locks at all. kSnapshot stays true: it is
/// the *fallback* behavior when MVCC reads are ablated away
/// (set_mvcc_reads_enabled(false)), where snapshot transactions degrade to
/// read-committed-style locking reads.
inline bool TakesReadLocks(IsolationLevel l) {
  return l != IsolationLevel::kReadUncommitted;
}

/// True when a locking read's S locks are dropped as soon as the statement
/// (cursor) finishes instead of being held to commit.
inline bool ReleasesReadLocksEarly(IsolationLevel l) {
  return l == IsolationLevel::kReadCommitted || l == IsolationLevel::kSnapshot;
}

/// True when the level reads through the versioned heap (no read locks,
/// never blocking writers) whenever the engine has MVCC reads enabled.
/// kReadCommitted reads a fresh snapshot per statement; kSnapshot pins one
/// snapshot for the whole transaction. The stricter levels keep 2PL reads
/// (their guarantees depend on blocking), and kReadUncommitted already
/// reads lock-free.
inline bool UsesSnapshotReads(IsolationLevel l) {
  return l == IsolationLevel::kReadCommitted || l == IsolationLevel::kSnapshot;
}

}  // namespace youtopia

#endif  // YOUTOPIA_TXN_ISOLATION_LEVEL_H_
