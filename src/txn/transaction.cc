#include "src/txn/transaction.h"

#include <algorithm>

namespace youtopia {

const char* TxnStateName(TxnState s) {
  switch (s) {
    case TxnState::kActive: return "ACTIVE";
    case TxnState::kBlocked: return "BLOCKED";
    case TxnState::kReadyToCommit: return "READY_TO_COMMIT";
    case TxnState::kCommitted: return "COMMITTED";
    case TxnState::kAborted: return "ABORTED";
  }
  return "?";
}

const char* IsolationLevelName(IsolationLevel l) {
  switch (l) {
    case IsolationLevel::kFullEntangled: return "FULL_ENTANGLED";
    case IsolationLevel::kSerializable: return "SERIALIZABLE";
    case IsolationLevel::kReadCommitted: return "READ_COMMITTED";
    case IsolationLevel::kReadUncommitted: return "READ_UNCOMMITTED";
    case IsolationLevel::kSnapshot: return "SNAPSHOT";
  }
  return "?";
}

void Transaction::AddPartners(const std::vector<TxnId>& ps) {
  for (TxnId p : ps) {
    if (p == id_) continue;
    if (std::find(partners_.begin(), partners_.end(), p) == partners_.end()) {
      partners_.push_back(p);
    }
  }
}

}  // namespace youtopia
