#ifndef YOUTOPIA_TXN_TRANSACTION_H_
#define YOUTOPIA_TXN_TRANSACTION_H_

#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/row.h"
#include "src/storage/table.h"
#include "src/txn/isolation_level.h"

namespace youtopia {

/// Lifecycle states. kBlocked and kReadyToCommit exist for the entangled
/// execution model (§4): a transaction blocks while its entangled query
/// waits for evaluation and becomes ready-to-commit when its program ends
/// but group-commit constraints are still pending.
enum class TxnState {
  kActive = 0,
  kBlocked,
  kReadyToCommit,
  kCommitted,
  kAborted,
};

const char* TxnStateName(TxnState s);

/// One undo action; applied in reverse order on abort. The WAL is redo-only,
/// so rollback of live transactions is entirely in-memory.
struct UndoEntry {
  enum class Kind { kInsert, kUpdate, kDelete };
  Kind kind;
  std::string table;
  RowId row_id = 0;
  Row before;  ///< pre-image for update/delete undo
};

/// A classical transaction handle. Created by TransactionManager::Begin and
/// driven through the manager's data operations; not thread-safe (one
/// connection drives one transaction, as in the paper's setup).
class Transaction {
 public:
  Transaction(TxnId id, IsolationLevel level, int64_t lock_timeout_micros)
      : id_(id), level_(level), lock_timeout_micros_(lock_timeout_micros) {}

  TxnId id() const { return id_; }
  IsolationLevel isolation_level() const { return level_; }
  TxnState state() const { return state_; }
  void set_state(TxnState s) { state_ = s; }
  bool active() const {
    return state_ == TxnState::kActive || state_ == TxnState::kBlocked ||
           state_ == TxnState::kReadyToCommit;
  }

  int64_t lock_timeout_micros() const { return lock_timeout_micros_; }
  /// Per-transaction override of the manager default (tests and sessions
  /// bounding a single statement's blocking).
  void set_lock_timeout_micros(int64_t micros) {
    lock_timeout_micros_ = micros;
  }

  /// Entanglement bookkeeping (set when the transaction receives an
  /// entangled-query answer; drives group commit + widow prevention).
  bool entangled() const { return entangled_; }
  void MarkEntangled() { entangled_ = true; }
  const std::vector<TxnId>& partners() const { return partners_; }
  void AddPartners(const std::vector<TxnId>& ps);

  std::vector<UndoEntry>& undo_log() { return undo_log_; }
  const std::vector<UndoEntry>& undo_log() const { return undo_log_; }

  /// Number of data operations performed (stats/tests).
  size_t num_writes() const { return num_writes_; }
  void count_write() { ++num_writes_; }

  /// Snapshot timestamp for versioned reads. 0 means "no snapshot yet";
  /// kReadCommitted transactions get a fresh one per statement while
  /// kSnapshot pins the Begin-time one. When the snapshot was adopted from
  /// a distributed coordinator (`external`), per-statement refresh is
  /// suppressed so every branch of a cross-shard statement reads one cut.
  uint64_t read_ts() const { return read_ts_; }
  void set_read_ts(uint64_t ts) { read_ts_ = ts; }
  bool external_read_ts() const { return external_read_ts_; }
  void set_external_read_ts(bool v) { external_read_ts_ = v; }
  /// Whether this transaction currently pins `read_ts` in the snapshot
  /// registry (so Commit/Abort know to unregister it exactly once).
  bool snapshot_registered() const { return snapshot_registered_; }
  void set_snapshot_registered(bool v) { snapshot_registered_ = v; }
  /// Whether this transaction's writes already carry their commit timestamp
  /// (a 2PC coordinator stamps every branch of a distributed commit with
  /// one timestamp before phase 2; the branch's own commit must not stamp
  /// again with a fresh one).
  bool commit_stamped() const { return commit_stamped_; }
  void set_commit_stamped(bool v) { commit_stamped_ = v; }

  /// Trace id this transaction's spans belong to (0 = untraced). Stamped at
  /// Begin when metrics are on; a 2PC coordinator re-uses it so coordinator
  /// and branch spans assemble into one trace.
  uint64_t trace_id() const { return trace_id_; }
  void set_trace_id(uint64_t id) { trace_id_ = id; }

  /// Open read cursors of this transaction (transactions are
  /// single-threaded, so plain bookkeeping suffices). A closing cursor may
  /// perform kReadCommitted early lock release only when it is the last
  /// one open — shared locks are merged per (txn, key), so releasing while
  /// a sibling cursor is still open could strip a table/row S lock that
  /// sibling depends on.
  void cursor_opened() { ++open_cursors_; }
  /// Returns the count after closing.
  int cursor_closed() { return --open_cursors_; }
  /// Currently open cursors — nonzero means a statement is mid-flight, so
  /// kReadCommitted snapshot refresh must wait (a join's probe cursors read
  /// the same cut as their outer scan).
  int open_cursors() const { return open_cursors_; }

 private:
  TxnId id_;
  IsolationLevel level_;
  int64_t lock_timeout_micros_;
  TxnState state_ = TxnState::kActive;
  uint64_t read_ts_ = 0;
  bool external_read_ts_ = false;
  bool snapshot_registered_ = false;
  bool commit_stamped_ = false;
  uint64_t trace_id_ = 0;
  int open_cursors_ = 0;
  bool entangled_ = false;
  std::vector<TxnId> partners_;
  std::vector<UndoEntry> undo_log_;
  size_t num_writes_ = 0;
};

}  // namespace youtopia

#endif  // YOUTOPIA_TXN_TRANSACTION_H_
