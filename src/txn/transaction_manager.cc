#include "src/txn/transaction_manager.h"

#include <algorithm>
#include <fstream>

namespace youtopia {

TransactionManager::TransactionManager(Database* db, LockManager* locks,
                                       WalWriter* wal, Options options)
    : db_(db), locks_(locks), wal_(wal), options_(options) {}

TransactionManager::TransactionManager(Database* db, LockManager* locks,
                                       WalWriter* wal)
    : TransactionManager(db, locks, wal, Options()) {}

std::unique_ptr<Transaction> TransactionManager::Begin() {
  return Begin(options_.default_isolation);
}

std::unique_ptr<Transaction> TransactionManager::Begin(IsolationLevel level) {
  TxnId id = next_txn_id_.fetch_add(1);
  stats_.begins.fetch_add(1, std::memory_order_relaxed);
  auto txn = std::make_unique<Transaction>(id, level,
                                           options_.lock_timeout_micros);
  if (wal_ != nullptr) {
    (void)wal_->Append(WalRecord::Begin(id));
  }
  return txn;
}

Status TransactionManager::AcquireIndexKeyLocks(Transaction* txn,
                                                const Table* t,
                                                std::vector<uint64_t> hashes) {
  std::sort(hashes.begin(), hashes.end());
  hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
  for (uint64_t h : hashes) {
    YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(),
                                       LockKey::IndexKey(t->id(), h),
                                       LockMode::kX,
                                       txn->lock_timeout_micros()));
  }
  return Status::Ok();
}

Status TransactionManager::AcquireOrderedKeyLocks(
    Transaction* txn, const Table* t,
    std::vector<std::pair<uint64_t, Row>> keys) {
  std::sort(keys.begin(), keys.end(),
            [](const std::pair<uint64_t, Row>& a,
               const std::pair<uint64_t, Row>& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second.Compare(b.second) < 0;
            });
  keys.erase(std::unique(keys.begin(), keys.end(),
                         [](const std::pair<uint64_t, Row>& a,
                            const std::pair<uint64_t, Row>& b) {
                           return a.first == b.first && a.second == b.second;
                         }),
             keys.end());
  for (auto& [index_id, key] : keys) {
    YT_RETURN_IF_ERROR(locks_->AcquireRange(
        txn->id(), RangeSpaceKey{t->id(), index_id},
        IndexRange::Point(std::move(key)), LockMode::kX,
        txn->lock_timeout_micros()));
  }
  return Status::Ok();
}

StatusOr<RowId> TransactionManager::Insert(Transaction* txn,
                                           const std::string& table,
                                           const Row& row) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                     LockMode::kIX,
                                     txn->lock_timeout_micros()));
  // Index-key X locks before touching the index structures: concurrent
  // indexed equality readers of the same key hold S on the hash, so this
  // insert cannot create a phantom under them.
  YT_ASSIGN_OR_RETURN(Row coerced, t->Coerce(row));
  YT_RETURN_IF_ERROR(
      AcquireIndexKeyLocks(txn, t, t->IndexKeyHashesFor(coerced)));
  // Key-range X on each ordered-index key: a range reader whose scanned
  // interval contains this key holds S on that interval, so the insert
  // cannot create a phantom inside it.
  YT_RETURN_IF_ERROR(
      AcquireOrderedKeyLocks(txn, t, t->OrderedIndexKeysFor(coerced)));
  YT_ASSIGN_OR_RETURN(RowId rid, t->InsertCoerced(std::move(coerced)));
  // X on the new row: no other transaction can see it before commit anyway
  // (it is brand new), but the lock keeps the row protocol uniform.
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::RowOf(t->id(), rid),
                                     LockMode::kX,
                                     txn->lock_timeout_micros()));
  txn->undo_log().push_back(
      {UndoEntry::Kind::kInsert, t->name(), rid, Row()});
  txn->count_write();
  if (wal_ != nullptr) {
    (void)wal_->Append(WalRecord::Insert(txn->id(), t->name(), rid, row));
  }
  if (options_.observer != nullptr) {
    options_.observer->OnWrite(txn->id(), {t->name(), rid});
  }
  return rid;
}

Status TransactionManager::AcquireReadLocks(Transaction* txn, const Table* t,
                                            RowId rid) {
  if (!TakesReadLocks(txn->isolation_level())) return Status::Ok();
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                     LockMode::kIS,
                                     txn->lock_timeout_micros()));
  return locks_->Acquire(txn->id(), LockKey::RowOf(t->id(), rid), LockMode::kS,
                         txn->lock_timeout_micros());
}

void TransactionManager::ReleaseEarlyReadLocks(Transaction* txn,
                                               const Table* t, RowId rid) {
  if (txn->isolation_level() != IsolationLevel::kReadCommitted) return;
  // Short read locks: drop the row S immediately; keep table IS (cheap,
  // compatible with everything but table X) until commit.
  if (!locks_->Holds(txn->id(), LockKey::RowOf(t->id(), rid), LockMode::kX)) {
    locks_->ReleaseKey(txn->id(), LockKey::RowOf(t->id(), rid));
  }
}

StatusOr<Row> TransactionManager::Get(Transaction* txn,
                                      const std::string& table, RowId rid) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  YT_RETURN_IF_ERROR(AcquireReadLocks(txn, t, rid));
  auto row = t->Get(rid);
  if (options_.observer != nullptr) {
    options_.observer->OnRead(txn->id(), {t->name(), rid});
  }
  ReleaseEarlyReadLocks(txn, t, rid);
  return row;
}

Status TransactionManager::Update(Transaction* txn, const std::string& table,
                                  RowId rid, const Row& row) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                     LockMode::kIX,
                                     txn->lock_timeout_micros()));
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::RowOf(t->id(), rid),
                                     LockMode::kX,
                                     txn->lock_timeout_micros()));
  YT_ASSIGN_OR_RETURN(Row before, t->Get(rid));
  // The update moves this row's index entries from the old keys to the new
  // ones; X both sides so equality readers of either key are excluded.
  YT_ASSIGN_OR_RETURN(Row coerced, t->Coerce(row));
  std::vector<uint64_t> hashes = t->IndexKeyHashesFor(before);
  for (uint64_t h : t->IndexKeyHashesFor(coerced)) hashes.push_back(h);
  YT_RETURN_IF_ERROR(AcquireIndexKeyLocks(txn, t, std::move(hashes)));
  std::vector<std::pair<uint64_t, Row>> okeys = t->OrderedIndexKeysFor(before);
  for (auto& k : t->OrderedIndexKeysFor(coerced)) okeys.push_back(std::move(k));
  YT_RETURN_IF_ERROR(AcquireOrderedKeyLocks(txn, t, std::move(okeys)));
  YT_RETURN_IF_ERROR(t->UpdateCoerced(rid, std::move(coerced)));
  txn->undo_log().push_back(
      {UndoEntry::Kind::kUpdate, t->name(), rid, before});
  txn->count_write();
  if (wal_ != nullptr) {
    (void)wal_->Append(
        WalRecord::Update(txn->id(), t->name(), rid, before, row));
  }
  if (options_.observer != nullptr) {
    options_.observer->OnWrite(txn->id(), {t->name(), rid});
  }
  return Status::Ok();
}

Status TransactionManager::Delete(Transaction* txn, const std::string& table,
                                  RowId rid) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                     LockMode::kIX,
                                     txn->lock_timeout_micros()));
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::RowOf(t->id(), rid),
                                     LockMode::kX,
                                     txn->lock_timeout_micros()));
  YT_ASSIGN_OR_RETURN(Row before, t->Get(rid));
  YT_RETURN_IF_ERROR(
      AcquireIndexKeyLocks(txn, t, t->IndexKeyHashesFor(before)));
  YT_RETURN_IF_ERROR(
      AcquireOrderedKeyLocks(txn, t, t->OrderedIndexKeysFor(before)));
  YT_RETURN_IF_ERROR(t->Delete(rid));
  txn->undo_log().push_back(
      {UndoEntry::Kind::kDelete, t->name(), rid, before});
  txn->count_write();
  if (wal_ != nullptr) {
    (void)wal_->Append(WalRecord::Delete(txn->id(), t->name(), rid, before));
  }
  if (options_.observer != nullptr) {
    options_.observer->OnWrite(txn->id(), {t->name(), rid});
  }
  return Status::Ok();
}

Status TransactionManager::Scan(
    Transaction* txn, const std::string& table,
    const std::function<bool(RowId, const Row&)>& visitor) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  if (TakesReadLocks(txn->isolation_level())) {
    YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                       LockMode::kS,
                                       txn->lock_timeout_micros()));
  }
  t->Scan(visitor);
  stats_.table_scans.fetch_add(1, std::memory_order_relaxed);
  if (options_.observer != nullptr) {
    options_.observer->OnRead(txn->id(), {t->name(), 0});
  }
  if (txn->isolation_level() == IsolationLevel::kReadCommitted &&
      !locks_->Holds(txn->id(), LockKey::Table(t->id()), LockMode::kX) &&
      !locks_->Holds(txn->id(), LockKey::Table(t->id()), LockMode::kIX)) {
    locks_->ReleaseKey(txn->id(), LockKey::Table(t->id()));
  }
  return Status::Ok();
}

Status TransactionManager::LockTableForWrite(Transaction* txn,
                                             const std::string& table) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  return locks_->Acquire(txn->id(), LockKey::Table(t->id()), LockMode::kX,
                         txn->lock_timeout_micros());
}

Status TransactionManager::ScanForGrounding(
    Transaction* txn, const std::string& table,
    const std::function<bool(RowId, const Row&)>& visitor) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  if (TakesReadLocks(txn->isolation_level())) {
    YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                       LockMode::kS,
                                       txn->lock_timeout_micros()));
  }
  t->Scan(visitor);
  stats_.grounding_scans.fetch_add(1, std::memory_order_relaxed);
  if (options_.observer != nullptr) {
    options_.observer->OnGroundingRead(txn->id(), {t->name(), 0});
  }
  return Status::Ok();
}

Status TransactionManager::IndexedRead(
    Transaction* txn, Table* t, const std::vector<size_t>& columns,
    const Row& key, IndexedReadKind kind, const RowVisitor& visitor) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  const bool grounding = kind == IndexedReadKind::kGroundingLookup ||
                         kind == IndexedReadKind::kGroundingJoinProbe;
  const bool take_locks = TakesReadLocks(txn->isolation_level());
  const LockKey key_lock =
      LockKey::IndexKey(t->id(), Table::IndexKeyHash(columns, key));
  if (take_locks) {
    YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                       LockMode::kIS,
                                       txn->lock_timeout_micros()));
    // S on the key hash: no writer can add/remove/move a row under this
    // equality key until we are done (phantom protection for the predicate).
    YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), key_lock, LockMode::kS,
                                       txn->lock_timeout_micros()));
  }
  YT_ASSIGN_OR_RETURN(std::vector<RowId> rids, t->IndexLookup(columns, key));
  std::sort(rids.begin(), rids.end());  // deterministic (scan) order
  if (grounding && options_.observer != nullptr) {
    // Table-granular R^G, as with scans: the grounding read logically
    // covers the relation (quasi-read derivation stays conservative).
    options_.observer->OnGroundingRead(txn->id(), {t->name(), 0});
  }
  std::vector<RowId> visited;
  for (RowId rid : rids) {
    if (take_locks) {
      YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(),
                                         LockKey::RowOf(t->id(), rid),
                                         LockMode::kS,
                                         txn->lock_timeout_micros()));
    }
    auto row = t->Get(rid);
    if (!row.ok()) continue;  // lockless levels may race a delete
    visited.push_back(rid);
    if (!grounding && options_.observer != nullptr) {
      options_.observer->OnRead(txn->id(), {t->name(), rid});
    }
    // The lookup owns this copy of the row; hand it over so collectors can
    // move instead of copying a second time.
    if (!visitor(rid, std::move(row).value())) break;
  }
  switch (kind) {
    case IndexedReadKind::kLookup:
      stats_.index_lookups.fetch_add(1, std::memory_order_relaxed);
      break;
    case IndexedReadKind::kGroundingLookup:
      stats_.grounding_index_lookups.fetch_add(1, std::memory_order_relaxed);
      break;
    case IndexedReadKind::kJoinProbe:
      stats_.join_probes.fetch_add(1, std::memory_order_relaxed);
      break;
    case IndexedReadKind::kGroundingJoinProbe:
      stats_.grounding_join_probes.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (txn->isolation_level() == IsolationLevel::kReadCommitted) {
    // Short read locks: drop the row S and key S now; keep table IS. Never
    // drop a key lock this transaction holds in X — that protects its own
    // earlier uncommitted write to this key.
    for (RowId rid : visited) ReleaseEarlyReadLocks(txn, t, rid);
    if (!locks_->Holds(txn->id(), key_lock, LockMode::kX)) {
      locks_->ReleaseKey(txn->id(), key_lock);
    }
  }
  return Status::Ok();
}

Status TransactionManager::GetByIndex(Transaction* txn,
                                      const std::string& table,
                                      const std::vector<size_t>& columns,
                                      const Row& key,
                                      const RowVisitor& visitor) {
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  return IndexedRead(txn, t, columns, key, IndexedReadKind::kLookup, visitor);
}

Status TransactionManager::LookupForGrounding(Transaction* txn,
                                              const std::string& table,
                                              const std::vector<size_t>& columns,
                                              const Row& key,
                                              const RowVisitor& visitor) {
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  return IndexedRead(txn, t, columns, key, IndexedReadKind::kGroundingLookup,
                     visitor);
}

Status TransactionManager::ProbeJoin(Transaction* txn, Table* t,
                                     const std::vector<size_t>& columns,
                                     const Row& key,
                                     const RowVisitor& visitor) {
  return IndexedRead(txn, t, columns, key, IndexedReadKind::kJoinProbe,
                     visitor);
}

Status TransactionManager::ProbeJoinForGrounding(
    Transaction* txn, Table* t, const std::vector<size_t>& columns,
    const Row& key, const RowVisitor& visitor) {
  return IndexedRead(txn, t, columns, key,
                     IndexedReadKind::kGroundingJoinProbe, visitor);
}

Status TransactionManager::IndexedRangeRead(Transaction* txn, Table* t,
                                            const IndexRangeSpec& spec,
                                            IndexedReadKind kind,
                                            const RowVisitor& visitor) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  const bool grounding = kind == IndexedReadKind::kGroundingRangeLookup ||
                         kind == IndexedReadKind::kGroundingRangeProbe;
  const bool take_locks = TakesReadLocks(txn->isolation_level());
  const RangeSpaceKey space{t->id(), Table::IndexColumnsHash(spec.columns)};
  const bool whole_space = spec.range.fully_unbounded();
  if (take_locks) {
    if (whole_space) {
      // A fully unbounded interval covers the whole key space; the table S
      // lock is the cheaper equivalent (one record, no interval tests).
      YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                         LockMode::kS,
                                         txn->lock_timeout_micros()));
    } else {
      YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                         LockMode::kIS,
                                         txn->lock_timeout_micros()));
      // S on the scanned interval: no writer can insert, delete, or move a
      // row whose key falls inside it until we are done (gap + key phantom
      // protection for the range predicate).
      YT_RETURN_IF_ERROR(locks_->AcquireRange(txn->id(), space, spec.range,
                                              LockMode::kS,
                                              txn->lock_timeout_micros()));
    }
  }
  YT_ASSIGN_OR_RETURN(std::vector<RowId> rids, t->RangeLookup(spec));
  if (grounding && options_.observer != nullptr) {
    options_.observer->OnGroundingRead(txn->id(), {t->name(), 0});
  }
  std::vector<RowId> visited;
  for (RowId rid : rids) {  // key order — preserved for ORDER BY service
    if (take_locks) {
      YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(),
                                         LockKey::RowOf(t->id(), rid),
                                         LockMode::kS,
                                         txn->lock_timeout_micros()));
    }
    auto row = t->Get(rid);
    if (!row.ok()) continue;  // lockless levels may race a delete
    visited.push_back(rid);
    if (!grounding && options_.observer != nullptr) {
      options_.observer->OnRead(txn->id(), {t->name(), rid});
    }
    if (!visitor(rid, std::move(row).value())) break;
  }
  switch (kind) {
    case IndexedReadKind::kRangeLookup:
      stats_.range_lookups.fetch_add(1, std::memory_order_relaxed);
      break;
    case IndexedReadKind::kGroundingRangeLookup:
      stats_.grounding_range_lookups.fetch_add(1, std::memory_order_relaxed);
      break;
    case IndexedReadKind::kRangeJoinProbe:
      stats_.range_join_probes.fetch_add(1, std::memory_order_relaxed);
      break;
    case IndexedReadKind::kGroundingRangeProbe:
      stats_.grounding_range_probes.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
  if (txn->isolation_level() == IsolationLevel::kReadCommitted) {
    for (RowId rid : visited) ReleaseEarlyReadLocks(txn, t, rid);
    if (whole_space) {
      if (!locks_->Holds(txn->id(), LockKey::Table(t->id()), LockMode::kX) &&
          !locks_->Holds(txn->id(), LockKey::Table(t->id()), LockMode::kIX)) {
        locks_->ReleaseKey(txn->id(), LockKey::Table(t->id()));
      }
    } else {
      // Only the shared interval is dropped; an X range lock this
      // transaction holds protects its own earlier writes and stays.
      locks_->ReleaseSharedRange(txn->id(), space, spec.range);
    }
  }
  return Status::Ok();
}

Status TransactionManager::GetByIndexRange(Transaction* txn,
                                           const std::string& table,
                                           const IndexRangeSpec& spec,
                                           const RowVisitor& visitor) {
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  return IndexedRangeRead(txn, t, spec, IndexedReadKind::kRangeLookup,
                          visitor);
}

Status TransactionManager::GetByIndexRangeForGrounding(
    Transaction* txn, Table* t, const IndexRangeSpec& spec,
    const RowVisitor& visitor) {
  return IndexedRangeRead(txn, t, spec,
                          IndexedReadKind::kGroundingRangeLookup, visitor);
}

Status TransactionManager::ProbeJoinRange(Transaction* txn, Table* t,
                                          const IndexRangeSpec& spec,
                                          const RowVisitor& visitor) {
  return IndexedRangeRead(txn, t, spec, IndexedReadKind::kRangeJoinProbe,
                          visitor);
}

Status TransactionManager::ProbeJoinRangeForGrounding(
    Transaction* txn, Table* t, const IndexRangeSpec& spec,
    const RowVisitor& visitor) {
  return IndexedRangeRead(txn, t, spec, IndexedReadKind::kGroundingRangeProbe,
                          visitor);
}

StatusOr<std::vector<std::pair<RowId, Row>>>
TransactionManager::LockRowsForWriteRange(Transaction* txn,
                                          const std::string& table,
                                          const IndexRangeSpec& spec) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                     LockMode::kIX,
                                     txn->lock_timeout_micros()));
  // X on the scanned interval first: serializes with range readers of any
  // overlapping interval and with writers touching keys inside it. Then X
  // row locks before any row is read — no S->X upgrade can occur later.
  YT_RETURN_IF_ERROR(locks_->AcquireRange(
      txn->id(), RangeSpaceKey{t->id(), Table::IndexColumnsHash(spec.columns)},
      spec.range, LockMode::kX, txn->lock_timeout_micros()));
  YT_ASSIGN_OR_RETURN(std::vector<RowId> rids, t->RangeLookup(spec));
  std::vector<std::pair<RowId, Row>> out;
  out.reserve(rids.size());
  for (RowId rid : rids) {
    YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(),
                                       LockKey::RowOf(t->id(), rid),
                                       LockMode::kX,
                                       txn->lock_timeout_micros()));
    YT_ASSIGN_OR_RETURN(Row row, t->Get(rid));
    out.emplace_back(rid, std::move(row));
  }
  stats_.range_lookups.fetch_add(1, std::memory_order_relaxed);
  return out;
}

StatusOr<std::vector<std::pair<RowId, Row>>>
TransactionManager::LockRowsForWrite(Transaction* txn,
                                     const std::string& table,
                                     const std::vector<size_t>& columns,
                                     const Row& key) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                     LockMode::kIX,
                                     txn->lock_timeout_micros()));
  // X on the key hash first: serializes with equality readers of this key
  // and with concurrent writers inserting rows under it.
  YT_RETURN_IF_ERROR(locks_->Acquire(
      txn->id(), LockKey::IndexKey(t->id(), Table::IndexKeyHash(columns, key)),
      LockMode::kX, txn->lock_timeout_micros()));
  YT_ASSIGN_OR_RETURN(std::vector<RowId> rids, t->IndexLookup(columns, key));
  std::sort(rids.begin(), rids.end());
  std::vector<std::pair<RowId, Row>> out;
  out.reserve(rids.size());
  for (RowId rid : rids) {
    YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(),
                                       LockKey::RowOf(t->id(), rid),
                                       LockMode::kX,
                                       txn->lock_timeout_micros()));
    YT_ASSIGN_OR_RETURN(Row row, t->Get(rid));
    out.emplace_back(rid, std::move(row));
  }
  stats_.index_lookups.fetch_add(1, std::memory_order_relaxed);
  return out;
}

Status TransactionManager::ApplyUndo(Transaction* txn) {
  auto& log = txn->undo_log();
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(it->table));
    switch (it->kind) {
      case UndoEntry::Kind::kInsert:
        YT_RETURN_IF_ERROR(t->Delete(it->row_id));
        break;
      case UndoEntry::Kind::kUpdate:
        YT_RETURN_IF_ERROR(t->Update(it->row_id, it->before));
        break;
      case UndoEntry::Kind::kDelete:
        YT_RETURN_IF_ERROR(t->InsertWithId(it->row_id, it->before));
        break;
    }
  }
  log.clear();
  return Status::Ok();
}

Status TransactionManager::Commit(Transaction* txn) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  if (wal_ != nullptr) {
    auto lsn = wal_->AppendAndFlush(WalRecord::Commit(txn->id()));
    if (!lsn.ok()) return lsn.status();
  }
  txn->set_state(TxnState::kCommitted);
  locks_->ReleaseAll(txn->id());
  stats_.commits.fetch_add(1, std::memory_order_relaxed);
  if (options_.observer != nullptr) options_.observer->OnCommit(txn->id());
  return Status::Ok();
}

Status TransactionManager::Abort(Transaction* txn) {
  if (txn->state() == TxnState::kAborted) return Status::Ok();
  if (txn->state() == TxnState::kCommitted) {
    return Status::Internal("cannot abort a committed transaction");
  }
  YT_RETURN_IF_ERROR(ApplyUndo(txn));
  if (wal_ != nullptr) {
    (void)wal_->Append(WalRecord::Abort(txn->id()));
  }
  txn->set_state(TxnState::kAborted);
  locks_->ReleaseAll(txn->id());
  stats_.aborts.fetch_add(1, std::memory_order_relaxed);
  if (options_.observer != nullptr) options_.observer->OnAbort(txn->id());
  return Status::Ok();
}

Status TransactionManager::CommitGroup(
    const std::vector<Transaction*>& members) {
  for (Transaction* t : members) {
    if (!t->active()) {
      return Status::Aborted("group member " + std::to_string(t->id()) +
                             " not active");
    }
  }
  GroupId gid = next_group_id_.fetch_add(1);
  std::vector<TxnId> ids;
  ids.reserve(members.size());
  for (Transaction* t : members) ids.push_back(t->id());
  if (wal_ != nullptr) {
    for (TxnId id : ids) {
      (void)wal_->Append(WalRecord::Commit(id));
    }
    auto lsn = wal_->AppendAndFlush(WalRecord::GroupCommit(gid, ids));
    if (!lsn.ok()) return lsn.status();
  }
  for (Transaction* t : members) {
    t->set_state(TxnState::kCommitted);
    locks_->ReleaseAll(t->id());
    stats_.commits.fetch_add(1, std::memory_order_relaxed);
    if (options_.observer != nullptr) options_.observer->OnCommit(t->id());
  }
  stats_.group_commits.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status TransactionManager::LogEntangle(
    EntanglementId eid, const std::vector<Transaction*>& members) {
  std::vector<TxnId> ids;
  ids.reserve(members.size());
  for (Transaction* t : members) ids.push_back(t->id());
  for (Transaction* t : members) {
    t->MarkEntangled();
    t->AddPartners(ids);
  }
  if (wal_ != nullptr) {
    auto lsn = wal_->AppendAndFlush(WalRecord::Entangle(eid, ids));
    if (!lsn.ok()) return lsn.status();
  }
  if (options_.observer != nullptr) {
    options_.observer->OnEntangle(eid, ids);
  }
  return Status::Ok();
}

StatusOr<Table*> TransactionManager::CreateTable(const std::string& name,
                                                 const Schema& schema) {
  YT_ASSIGN_OR_RETURN(Table * t, db_->CreateTable(name, schema));
  if (wal_ != nullptr) {
    auto lsn = wal_->AppendAndFlush(WalRecord::CreateTable(name, schema));
    if (!lsn.ok()) return lsn.status();
  }
  return t;
}

Status TransactionManager::CreateIndex(const std::string& table,
                                       const std::vector<std::string>& columns,
                                       bool unique, bool ordered) {
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  YT_RETURN_IF_ERROR(t->CreateIndex(columns, unique, ordered));
  if (wal_ != nullptr) {
    auto lsn = wal_->AppendAndFlush(
        WalRecord::CreateIndex(t->name(), columns, unique, ordered));
    if (!lsn.ok()) return lsn.status();
  }
  return Status::Ok();
}

Status TransactionManager::Checkpoint(const std::string& checkpoint_path) {
  if (wal_ == nullptr) return Status::Internal("no WAL configured");
  std::ofstream out(checkpoint_path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    return Status::Corruption("cannot open checkpoint file " +
                              checkpoint_path);
  }
  YT_RETURN_IF_ERROR(db_->SaveTo(&out));
  out.close();
  return wal_->ResetWithCheckpoint(checkpoint_path);
}

}  // namespace youtopia
