#include "src/txn/transaction_manager.h"

#include <fstream>

namespace youtopia {

TransactionManager::TransactionManager(Database* db, LockManager* locks,
                                       WalWriter* wal, Options options)
    : db_(db), locks_(locks), wal_(wal), options_(options) {}

TransactionManager::TransactionManager(Database* db, LockManager* locks,
                                       WalWriter* wal)
    : TransactionManager(db, locks, wal, Options()) {}

std::unique_ptr<Transaction> TransactionManager::Begin() {
  return Begin(options_.default_isolation);
}

std::unique_ptr<Transaction> TransactionManager::Begin(IsolationLevel level) {
  TxnId id = next_txn_id_.fetch_add(1);
  stats_.begins.fetch_add(1, std::memory_order_relaxed);
  auto txn = std::make_unique<Transaction>(id, level,
                                           options_.lock_timeout_micros);
  if (wal_ != nullptr) {
    (void)wal_->Append(WalRecord::Begin(id));
  }
  return txn;
}

StatusOr<RowId> TransactionManager::Insert(Transaction* txn,
                                           const std::string& table,
                                           const Row& row) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                     LockMode::kIX,
                                     txn->lock_timeout_micros()));
  YT_ASSIGN_OR_RETURN(RowId rid, t->Insert(row));
  // X on the new row: no other transaction can see it before commit anyway
  // (it is brand new), but the lock keeps the row protocol uniform.
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::RowOf(t->id(), rid),
                                     LockMode::kX,
                                     txn->lock_timeout_micros()));
  txn->undo_log().push_back(
      {UndoEntry::Kind::kInsert, t->name(), rid, Row()});
  txn->count_write();
  if (wal_ != nullptr) {
    (void)wal_->Append(WalRecord::Insert(txn->id(), t->name(), rid, row));
  }
  if (options_.observer != nullptr) {
    options_.observer->OnWrite(txn->id(), {t->name(), rid});
  }
  return rid;
}

Status TransactionManager::AcquireReadLocks(Transaction* txn, const Table* t,
                                            RowId rid) {
  if (!TakesReadLocks(txn->isolation_level())) return Status::Ok();
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                     LockMode::kIS,
                                     txn->lock_timeout_micros()));
  return locks_->Acquire(txn->id(), LockKey::RowOf(t->id(), rid), LockMode::kS,
                         txn->lock_timeout_micros());
}

void TransactionManager::ReleaseEarlyReadLocks(Transaction* txn,
                                               const Table* t, RowId rid) {
  if (txn->isolation_level() != IsolationLevel::kReadCommitted) return;
  // Short read locks: drop the row S immediately; keep table IS (cheap,
  // compatible with everything but table X) until commit.
  if (!locks_->Holds(txn->id(), LockKey::RowOf(t->id(), rid), LockMode::kX)) {
    locks_->ReleaseKey(txn->id(), LockKey::RowOf(t->id(), rid));
  }
}

StatusOr<Row> TransactionManager::Get(Transaction* txn,
                                      const std::string& table, RowId rid) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  YT_RETURN_IF_ERROR(AcquireReadLocks(txn, t, rid));
  auto row = t->Get(rid);
  if (options_.observer != nullptr) {
    options_.observer->OnRead(txn->id(), {t->name(), rid});
  }
  ReleaseEarlyReadLocks(txn, t, rid);
  return row;
}

Status TransactionManager::Update(Transaction* txn, const std::string& table,
                                  RowId rid, const Row& row) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                     LockMode::kIX,
                                     txn->lock_timeout_micros()));
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::RowOf(t->id(), rid),
                                     LockMode::kX,
                                     txn->lock_timeout_micros()));
  YT_ASSIGN_OR_RETURN(Row before, t->Get(rid));
  YT_RETURN_IF_ERROR(t->Update(rid, row));
  txn->undo_log().push_back(
      {UndoEntry::Kind::kUpdate, t->name(), rid, before});
  txn->count_write();
  if (wal_ != nullptr) {
    (void)wal_->Append(
        WalRecord::Update(txn->id(), t->name(), rid, before, row));
  }
  if (options_.observer != nullptr) {
    options_.observer->OnWrite(txn->id(), {t->name(), rid});
  }
  return Status::Ok();
}

Status TransactionManager::Delete(Transaction* txn, const std::string& table,
                                  RowId rid) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                     LockMode::kIX,
                                     txn->lock_timeout_micros()));
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::RowOf(t->id(), rid),
                                     LockMode::kX,
                                     txn->lock_timeout_micros()));
  YT_ASSIGN_OR_RETURN(Row before, t->Get(rid));
  YT_RETURN_IF_ERROR(t->Delete(rid));
  txn->undo_log().push_back(
      {UndoEntry::Kind::kDelete, t->name(), rid, before});
  txn->count_write();
  if (wal_ != nullptr) {
    (void)wal_->Append(WalRecord::Delete(txn->id(), t->name(), rid, before));
  }
  if (options_.observer != nullptr) {
    options_.observer->OnWrite(txn->id(), {t->name(), rid});
  }
  return Status::Ok();
}

Status TransactionManager::Scan(
    Transaction* txn, const std::string& table,
    const std::function<bool(RowId, const Row&)>& visitor) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  if (TakesReadLocks(txn->isolation_level())) {
    YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                       LockMode::kS,
                                       txn->lock_timeout_micros()));
  }
  t->Scan(visitor);
  if (options_.observer != nullptr) {
    options_.observer->OnRead(txn->id(), {t->name(), 0});
  }
  if (txn->isolation_level() == IsolationLevel::kReadCommitted &&
      !locks_->Holds(txn->id(), LockKey::Table(t->id()), LockMode::kX) &&
      !locks_->Holds(txn->id(), LockKey::Table(t->id()), LockMode::kIX)) {
    locks_->ReleaseKey(txn->id(), LockKey::Table(t->id()));
  }
  return Status::Ok();
}

Status TransactionManager::LockTableForWrite(Transaction* txn,
                                             const std::string& table) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  return locks_->Acquire(txn->id(), LockKey::Table(t->id()), LockMode::kX,
                         txn->lock_timeout_micros());
}

Status TransactionManager::ScanForGrounding(
    Transaction* txn, const std::string& table,
    const std::function<bool(RowId, const Row&)>& visitor) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  if (TakesReadLocks(txn->isolation_level())) {
    YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                       LockMode::kS,
                                       txn->lock_timeout_micros()));
  }
  t->Scan(visitor);
  if (options_.observer != nullptr) {
    options_.observer->OnGroundingRead(txn->id(), {t->name(), 0});
  }
  return Status::Ok();
}

Status TransactionManager::ApplyUndo(Transaction* txn) {
  auto& log = txn->undo_log();
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(it->table));
    switch (it->kind) {
      case UndoEntry::Kind::kInsert:
        YT_RETURN_IF_ERROR(t->Delete(it->row_id));
        break;
      case UndoEntry::Kind::kUpdate:
        YT_RETURN_IF_ERROR(t->Update(it->row_id, it->before));
        break;
      case UndoEntry::Kind::kDelete:
        YT_RETURN_IF_ERROR(t->InsertWithId(it->row_id, it->before));
        break;
    }
  }
  log.clear();
  return Status::Ok();
}

Status TransactionManager::Commit(Transaction* txn) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  if (wal_ != nullptr) {
    auto lsn = wal_->AppendAndFlush(WalRecord::Commit(txn->id()));
    if (!lsn.ok()) return lsn.status();
  }
  txn->set_state(TxnState::kCommitted);
  locks_->ReleaseAll(txn->id());
  stats_.commits.fetch_add(1, std::memory_order_relaxed);
  if (options_.observer != nullptr) options_.observer->OnCommit(txn->id());
  return Status::Ok();
}

Status TransactionManager::Abort(Transaction* txn) {
  if (txn->state() == TxnState::kAborted) return Status::Ok();
  if (txn->state() == TxnState::kCommitted) {
    return Status::Internal("cannot abort a committed transaction");
  }
  YT_RETURN_IF_ERROR(ApplyUndo(txn));
  if (wal_ != nullptr) {
    (void)wal_->Append(WalRecord::Abort(txn->id()));
  }
  txn->set_state(TxnState::kAborted);
  locks_->ReleaseAll(txn->id());
  stats_.aborts.fetch_add(1, std::memory_order_relaxed);
  if (options_.observer != nullptr) options_.observer->OnAbort(txn->id());
  return Status::Ok();
}

Status TransactionManager::CommitGroup(
    const std::vector<Transaction*>& members) {
  for (Transaction* t : members) {
    if (!t->active()) {
      return Status::Aborted("group member " + std::to_string(t->id()) +
                             " not active");
    }
  }
  GroupId gid = next_group_id_.fetch_add(1);
  std::vector<TxnId> ids;
  ids.reserve(members.size());
  for (Transaction* t : members) ids.push_back(t->id());
  if (wal_ != nullptr) {
    for (TxnId id : ids) {
      (void)wal_->Append(WalRecord::Commit(id));
    }
    auto lsn = wal_->AppendAndFlush(WalRecord::GroupCommit(gid, ids));
    if (!lsn.ok()) return lsn.status();
  }
  for (Transaction* t : members) {
    t->set_state(TxnState::kCommitted);
    locks_->ReleaseAll(t->id());
    stats_.commits.fetch_add(1, std::memory_order_relaxed);
    if (options_.observer != nullptr) options_.observer->OnCommit(t->id());
  }
  stats_.group_commits.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status TransactionManager::LogEntangle(
    EntanglementId eid, const std::vector<Transaction*>& members) {
  std::vector<TxnId> ids;
  ids.reserve(members.size());
  for (Transaction* t : members) ids.push_back(t->id());
  for (Transaction* t : members) {
    t->MarkEntangled();
    t->AddPartners(ids);
  }
  if (wal_ != nullptr) {
    auto lsn = wal_->AppendAndFlush(WalRecord::Entangle(eid, ids));
    if (!lsn.ok()) return lsn.status();
  }
  if (options_.observer != nullptr) {
    options_.observer->OnEntangle(eid, ids);
  }
  return Status::Ok();
}

StatusOr<Table*> TransactionManager::CreateTable(const std::string& name,
                                                 const Schema& schema) {
  YT_ASSIGN_OR_RETURN(Table * t, db_->CreateTable(name, schema));
  if (wal_ != nullptr) {
    auto lsn = wal_->AppendAndFlush(WalRecord::CreateTable(name, schema));
    if (!lsn.ok()) return lsn.status();
  }
  return t;
}

Status TransactionManager::Checkpoint(const std::string& checkpoint_path) {
  if (wal_ == nullptr) return Status::Internal("no WAL configured");
  std::ofstream out(checkpoint_path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    return Status::Corruption("cannot open checkpoint file " +
                              checkpoint_path);
  }
  YT_RETURN_IF_ERROR(db_->SaveTo(&out));
  out.close();
  return wal_->ResetWithCheckpoint(checkpoint_path);
}

}  // namespace youtopia
