#include "src/txn/transaction_manager.h"

#include <algorithm>
#include <fstream>

#include "src/common/fault.h"
#include "src/common/metrics.h"

namespace youtopia {

namespace {

bool IsGroundingOrigin(ReadOrigin origin) {
  return origin == ReadOrigin::kGrounding ||
         origin == ReadOrigin::kGroundingJoin;
}

/// Per-isolation-level commit/abort latency histograms plus the engine-wide
/// termination counters, resolved against the registry once.
struct TxnMetricHandles {
  Counter* commits;
  Counter* aborts;
  Histogram* commit_by_level[5];
  Histogram* abort_by_level[5];
};

const TxnMetricHandles& TxnMetrics() {
  static const TxnMetricHandles h = [] {
    MetricsRegistry* r = MetricsRegistry::Global();
    static constexpr const char* kLevels[5] = {
        "full_entangled", "serializable", "read_committed",
        "read_uncommitted", "snapshot"};
    TxnMetricHandles out;
    out.commits = r->counter("txn.commits");
    out.aborts = r->counter("txn.aborts");
    for (int i = 0; i < 5; ++i) {
      out.commit_by_level[i] = r->histogram(
          std::string("txn.commit_micros.") + kLevels[i]);
      out.abort_by_level[i] = r->histogram(
          std::string("txn.abort_micros.") + kLevels[i]);
    }
    return out;
  }();
  return h;
}

Histogram* CommitLatencyHist(IsolationLevel l) {
  return TxnMetrics().commit_by_level[static_cast<int>(l)];
}

Histogram* AbortLatencyHist(IsolationLevel l) {
  return TxnMetrics().abort_by_level[static_cast<int>(l)];
}

/// The kReadCommitted early-release rule, shared by every cursor type:
/// drop the shared lock on `key` unless this transaction holds it in a
/// write mode (X; for table keys also IX) — those protect the
/// transaction's own uncommitted writes and must survive to commit.
void ReleaseUnlessWriteHeld(LockManager* locks, TxnId txn, LockKey key) {
  if (locks->Holds(txn, key, LockMode::kX)) return;
  if (key.is_table() && locks->Holds(txn, key, LockMode::kIX)) return;
  locks->ReleaseKey(txn, key);
}

/// Heap-scan cursor: either a private chunked walk of the heap or a
/// consumer of a shared circular scan. A *leader* registers the scan so
/// concurrent scanners can find it, but walks the heap privately — batch
/// materialization only starts with the first *attached* consumer, so an
/// uncontended scan pays nothing for sharing. All consumers hold their own
/// table S lock (acquired by OpenCursor) for the cursor's lifetime; closing
/// detaches from the shared scan *before* any early lock release, so shared
/// batches never outlive the continuous table-S window that makes them
/// valid.
class ScanCursor : public TableCursor {
 public:
  static constexpr size_t kChunkRows = SharedScan::kBatchRows;
  // One batched pull == one materialized chunk: the swap fast path below
  // leans on the default pull target matching the chunk size.
  static_assert(kChunkRows == RowBatch::kDefaultRows);

  ScanCursor(LockManager* locks, Transaction* txn, const Table* table,
             SharedScanManager* manager, SharedScanManager::Ticket ticket,
             bool release_table_on_close)
      : locks_(locks),
        txn_(txn),
        table_(table),
        manager_(manager),
        ticket_(std::move(ticket)),
        release_table_on_close_(release_table_on_close) {
    txn_->cursor_opened();
    if (ticket_.attached) {
      cur_batch_ = ticket_.start_batch;
    } else {
      buf_.reserve(kChunkRows);
    }
  }

  ~ScanCursor() override {
    if (ticket_.scan != nullptr) manager_->Leave(ticket_);
    // Early release only when this is the transaction's last open cursor:
    // S locks merge per (txn, key), so dropping the table S here could
    // strip it from under a sibling cursor still scanning this table.
    if (txn_->cursor_closed() == 0 && release_table_on_close_ &&
        ReleasesReadLocksEarly(txn_->isolation_level())) {
      ReleaseUnlessWriteHeld(locks_, txn_->id(),
                             LockKey::Table(table_->id()));
    }
  }

  /// Visit-only drain: a fresh private scan skips chunk materialization
  /// and walks the heap directly under the latch (the pre-cursor
  /// Table::Scan semantics — selective consumers copy only what they
  /// keep). Attached or already-started cursors use the generic pull loop.
  Status DrainRef(
      const std::function<bool(RowId, const Row&)>& visitor) override {
    if (!ticket_.attached && !started_ && !done_) {
      done_ = true;
      table_->Scan(visitor);
      return Status::Ok();
    }
    return TableCursor::DrainRef(visitor);
  }

  StatusOr<bool> NextRef(RowId* rid, const Row** row) override {
    started_ = true;
    if (ticket_.attached) {
      while (batch_ == nullptr || pos_ >= batch_->rows.size()) {
        if (!AdvanceSharedBatch()) return false;
      }
      *rid = batch_->rows[pos_].first;
      *row = &batch_->rows[pos_].second;
      ++pos_;
      return true;
    }
    if (!RefillPrivate()) return false;
    *rid = buf_[pos_].first;
    *row = &buf_[pos_].second;
    ++pos_;
    return true;
  }

  StatusOr<bool> Next(RowId* rid, Row* row) override {
    // Private chunks are owned by this cursor: hand rows over by move.
    // Shared batches are read by many consumers: fall back to the copying
    // base implementation.
    started_ = true;
    if (ticket_.attached) return TableCursor::Next(rid, row);
    if (!RefillPrivate()) return false;
    *rid = buf_[pos_].first;
    *row = std::move(buf_[pos_].second);
    ++pos_;
    return true;
  }

  /// Batched pull. Private mode hands a whole heap chunk over by swap —
  /// the chunk buffer and the caller's batch then ping-pong, so a full
  /// scan costs one virtual call and zero row copies per 256 rows.
  /// Shared mode bulk-copies out of the shared batch (many consumers read
  /// it, so rows cannot move).
  StatusOr<bool> NextBatch(RowBatch* batch, size_t max_rows) override {
    started_ = true;
    batch->clear();
    if (max_rows == 0) max_rows = 1;
    if (ticket_.attached) {
      while (batch->rows.size() < max_rows) {
        if (batch_ == nullptr || pos_ >= batch_->rows.size()) {
          if (!AdvanceSharedBatch()) break;
          continue;
        }
        size_t take = std::min(max_rows - batch->rows.size(),
                               batch_->rows.size() - pos_);
        batch->rows.insert(batch->rows.end(), batch_->rows.begin() + pos_,
                           batch_->rows.begin() + pos_ + take);
        pos_ += take;
      }
      return !batch->rows.empty();
    }
    if (!RefillPrivate()) return false;
    if (pos_ == 0) {
      // Whole chunk (chunks are kChunkRows-sized, i.e. the default pull
      // target; a smaller max_rows still takes the chunk wholesale — the
      // target is pacing, not a cap).
      batch->rows.swap(buf_);
      buf_.clear();  // keep the swapped-in capacity for the next ScanChunk
    } else {
      size_t take = buf_.size() - pos_;
      batch->reserve(take);
      std::move(buf_.begin() + pos_, buf_.end(),
                std::back_inserter(batch->rows));
      buf_.clear();
      pos_ = 0;
    }
    return true;
  }

  size_t size_hint() const override { return table_->size(); }

 private:
  /// Moves to the next shared batch of this consumer's cycle:
  /// start_batch..end, then wrap to 0..start_batch-1.
  bool AdvanceSharedBatch() {
    while (true) {
      if (!wrapped_) {
        const SharedScan::Batch* b = ticket_.scan->GetBatch(cur_batch_);
        if (b != nullptr) {
          batch_ = b;
          pos_ = 0;
          ++cur_batch_;
          return true;
        }
        total_ = cur_batch_;
        wrapped_ = true;
        cur_batch_ = 0;
        continue;
      }
      if (cur_batch_ >= std::min(ticket_.start_batch, total_)) return false;
      batch_ = ticket_.scan->GetBatch(cur_batch_);  // published: non-null
      pos_ = 0;
      ++cur_batch_;
      return true;
    }
  }

  /// Ensures buf_[pos_] is the next unreturned private row.
  bool RefillPrivate() {
    if (pos_ < buf_.size()) return true;
    if (done_) return false;
    RowId next = table_->ScanChunk(next_from_, kChunkRows, &buf_);
    pos_ = 0;
    if (buf_.empty()) {
      done_ = true;
      return false;
    }
    next_from_ = next;
    if (next == 0) done_ = true;
    return true;
  }

  LockManager* locks_;
  Transaction* txn_;
  const Table* table_;
  SharedScanManager* manager_;
  SharedScanManager::Ticket ticket_;
  bool release_table_on_close_;
  // Shared-mode state.
  const SharedScan::Batch* batch_ = nullptr;
  size_t cur_batch_ = 0;
  size_t total_ = 0;
  bool wrapped_ = false;
  // Private-mode state.
  std::vector<std::pair<RowId, Row>> buf_;
  RowId next_from_ = 1;
  bool done_ = false;
  bool started_ = false;
  // Position within the current batch / chunk.
  size_t pos_ = 0;
};

/// Cursor over a RowId list fetched at open time (hash lookup or ordered
/// range lookup). Row S locks are taken as rows are pulled; closing
/// performs the read-committed early release of everything the cursor
/// locked.
class FetchedRowsCursor : public TableCursor {
 public:
  /// What to release (besides visited row locks) on a read-committed close.
  enum class Release { kIndexKey, kRange, kTableS };

  FetchedRowsCursor(LockManager* locks, Transaction* txn, Table* table,
                    OpObserver* observer, bool take_locks, bool observe_rows,
                    std::vector<RowId> rids, Release release,
                    LockKey key_lock, RangeSpaceKey space, IndexRange range)
      : locks_(locks),
        txn_(txn),
        table_(table),
        observer_(observer),
        take_locks_(take_locks),
        observe_rows_(observe_rows),
        rids_(std::move(rids)),
        release_(release),
        key_lock_(key_lock),
        space_(space),
        range_(std::move(range)) {
    txn_->cursor_opened();
    visited_.reserve(rids_.size());
  }

  ~FetchedRowsCursor() override {
    // Last-open-cursor gate: see ~ScanCursor.
    if (txn_->cursor_closed() != 0 || !take_locks_ ||
        !ReleasesReadLocksEarly(txn_->isolation_level())) {
      return;
    }
    // Short read locks: drop the row S and predicate S now; keep table IS.
    // Never drop a lock this transaction holds in X — that protects its own
    // earlier uncommitted writes.
    for (RowId rid : visited_) {
      ReleaseUnlessWriteHeld(locks_, txn_->id(),
                             LockKey::RowOf(table_->id(), rid));
    }
    switch (release_) {
      case Release::kIndexKey:
        ReleaseUnlessWriteHeld(locks_, txn_->id(), key_lock_);
        break;
      case Release::kRange:
        locks_->ReleaseSharedRange(txn_->id(), space_, range_);
        break;
      case Release::kTableS:
        ReleaseUnlessWriteHeld(locks_, txn_->id(),
                               LockKey::Table(table_->id()));
        break;
    }
  }

  StatusOr<bool> NextRef(RowId* rid, const Row** row) override {
    YT_ASSIGN_OR_RETURN(bool more, Advance(rid));
    if (!more) return false;
    *row = &current_;
    return true;
  }

  StatusOr<bool> Next(RowId* rid, Row* row) override {
    YT_ASSIGN_OR_RETURN(bool more, Advance(rid));
    if (!more) return false;
    *row = std::move(current_);
    return true;
  }

  /// Batched pull: one virtual call per batch, but the per-row S lock
  /// acquisition (and deleted-row skip) stays inside the loop — batching
  /// never changes the lock protocol.
  StatusOr<bool> NextBatch(RowBatch* batch, size_t max_rows) override {
    batch->clear();
    if (max_rows == 0) max_rows = 1;
    batch->reserve(std::min(max_rows, rids_.size() - idx_));
    RowId rid = 0;
    while (batch->rows.size() < max_rows) {
      YT_ASSIGN_OR_RETURN(bool more, Advance(&rid));
      if (!more) break;
      batch->rows.emplace_back(rid, std::move(current_));
    }
    return !batch->rows.empty();
  }

  size_t size_hint() const override { return rids_.size() - idx_; }

 private:
  StatusOr<bool> Advance(RowId* out_rid) {
    while (idx_ < rids_.size()) {
      RowId rid = rids_[idx_++];
      if (take_locks_) {
        YT_RETURN_IF_ERROR(locks_->Acquire(txn_->id(),
                                           LockKey::RowOf(table_->id(), rid),
                                           LockMode::kS,
                                           txn_->lock_timeout_micros()));
      }
      auto row = table_->Get(rid);
      if (!row.ok()) continue;  // lockless levels may race a delete
      visited_.push_back(rid);
      if (observe_rows_ && observer_ != nullptr) {
        observer_->OnRead(txn_->id(), {table_->name(), rid});
      }
      current_ = std::move(row).value();
      *out_rid = rid;
      return true;
    }
    return false;
  }

  LockManager* locks_;
  Transaction* txn_;
  Table* table_;
  OpObserver* observer_;
  bool take_locks_;
  bool observe_rows_;
  std::vector<RowId> rids_;
  Release release_;
  LockKey key_lock_;
  RangeSpaceKey space_;
  IndexRange range_;
  size_t idx_ = 0;
  std::vector<RowId> visited_;
  Row current_;
};

/// Snapshot heap-scan cursor: a private chunked walk over the versioned
/// heap at one ReadView. Takes no locks, never attaches to shared scans
/// (those exist to amortize work under a table-S freeze this cursor does
/// not impose), and closing releases nothing — readers neither block nor
/// are blocked by writers.
class SnapshotScanCursor : public TableCursor {
 public:
  static constexpr size_t kChunkRows = SharedScan::kBatchRows;

  SnapshotScanCursor(Transaction* txn, const Table* table, ReadView view)
      : txn_(txn), table_(table), view_(view) {
    txn_->cursor_opened();
    buf_.reserve(kChunkRows);
  }

  ~SnapshotScanCursor() override { txn_->cursor_closed(); }

  Status DrainRef(
      const std::function<bool(RowId, const Row&)>& visitor) override {
    if (started_) return TableCursor::DrainRef(visitor);
    started_ = done_ = true;
    // Fresh cursor: chunked walk without the pull-loop round trips.
    std::vector<std::pair<RowId, Row>> chunk;
    RowId from = 1;
    while (true) {
      RowId next = table_->ScanChunkVersioned(view_, from, kChunkRows, &chunk);
      for (auto& [rid, row] : chunk) {
        if (!visitor(rid, row)) return Status::Ok();
      }
      if (next == 0) return Status::Ok();
      from = next;
    }
  }

  StatusOr<bool> NextRef(RowId* rid, const Row** row) override {
    started_ = true;
    if (!Refill()) return false;
    *rid = buf_[pos_].first;
    *row = &buf_[pos_].second;
    ++pos_;
    return true;
  }

  StatusOr<bool> Next(RowId* rid, Row* row) override {
    started_ = true;
    if (!Refill()) return false;
    *rid = buf_[pos_].first;
    *row = std::move(buf_[pos_].second);
    ++pos_;
    return true;
  }

  /// Batched pull: whole chunks move by swap, as in the private ScanCursor
  /// fast path.
  StatusOr<bool> NextBatch(RowBatch* batch, size_t max_rows) override {
    started_ = true;
    batch->clear();
    if (max_rows == 0) max_rows = 1;
    if (!Refill()) return false;
    if (pos_ == 0) {
      batch->rows.swap(buf_);
      buf_.clear();
    } else {
      size_t take = buf_.size() - pos_;
      batch->reserve(take);
      std::move(buf_.begin() + pos_, buf_.end(),
                std::back_inserter(batch->rows));
      buf_.clear();
      pos_ = 0;
    }
    return true;
  }

  size_t size_hint() const override { return table_->size(); }

 private:
  bool Refill() {
    if (pos_ < buf_.size()) return true;
    if (done_) return false;
    RowId next = table_->ScanChunkVersioned(view_, next_from_, kChunkRows,
                                            &buf_);
    pos_ = 0;
    // A chunk may come back empty while the heap continues (all entries in
    // the window invisible at this snapshot): keep pulling.
    while (buf_.empty() && next != 0) {
      next = table_->ScanChunkVersioned(view_, next, kChunkRows, &buf_);
    }
    if (buf_.empty()) {
      done_ = true;
      return false;
    }
    next_from_ = next;
    if (next == 0) done_ = true;
    return true;
  }

  Transaction* txn_;
  const Table* table_;
  ReadView view_;
  std::vector<std::pair<RowId, Row>> buf_;
  RowId next_from_ = 1;
  size_t pos_ = 0;
  bool done_ = false;
  bool started_ = false;
};

/// Cursor over (RowId, Row) pairs materialized at open time by a versioned
/// index/range probe. Lock-free by construction; rows are handed out by
/// move (the cursor owns its copies). Per-row schedule observation happens
/// as rows are pulled, mirroring the locking FetchedRowsCursor.
class MaterializedRowsCursor : public TableCursor {
 public:
  MaterializedRowsCursor(Transaction* txn, const Table* table,
                         OpObserver* observer, bool observe_rows,
                         std::vector<std::pair<RowId, Row>> rows)
      : txn_(txn),
        table_(table),
        observer_(observer),
        observe_rows_(observe_rows),
        rows_(std::move(rows)) {
    txn_->cursor_opened();
  }

  ~MaterializedRowsCursor() override { txn_->cursor_closed(); }

  StatusOr<bool> NextRef(RowId* rid, const Row** row) override {
    if (idx_ >= rows_.size()) return false;
    Observe(rows_[idx_].first);
    *rid = rows_[idx_].first;
    *row = &rows_[idx_].second;
    ++idx_;
    return true;
  }

  StatusOr<bool> Next(RowId* rid, Row* row) override {
    if (idx_ >= rows_.size()) return false;
    Observe(rows_[idx_].first);
    *rid = rows_[idx_].first;
    *row = std::move(rows_[idx_].second);
    ++idx_;
    return true;
  }

  StatusOr<bool> NextBatch(RowBatch* batch, size_t max_rows) override {
    batch->clear();
    if (max_rows == 0) max_rows = 1;
    if (idx_ >= rows_.size()) return false;
    if (idx_ == 0 && rows_.size() <= max_rows) {
      for (const auto& [rid, row] : rows_) Observe(rid);
      batch->rows.swap(rows_);
      idx_ = 0;
      rows_.clear();
      return true;
    }
    size_t take = std::min(max_rows, rows_.size() - idx_);
    batch->reserve(take);
    for (size_t i = 0; i < take; ++i) {
      Observe(rows_[idx_].first);
      batch->rows.push_back(std::move(rows_[idx_]));
      ++idx_;
    }
    return true;
  }

  size_t size_hint() const override { return rows_.size() - idx_; }

 private:
  void Observe(RowId rid) {
    if (observe_rows_ && observer_ != nullptr) {
      observer_->OnRead(txn_->id(), {table_->name(), rid});
    }
  }

  Transaction* txn_;
  const Table* table_;
  OpObserver* observer_;
  bool observe_rows_;
  std::vector<std::pair<RowId, Row>> rows_;
  size_t idx_ = 0;
};

}  // namespace

TransactionManager::TransactionManager(Database* db, LockManager* locks,
                                       WalWriter* wal, Options options)
    : db_(db), locks_(locks), wal_(wal), options_(options) {
  if (options_.clock != nullptr) {
    clock_ = options_.clock;
  } else {
    owned_clock_ = std::make_unique<VersionClock>();
    clock_ = owned_clock_.get();
  }
  if (options_.snapshots != nullptr) {
    snapshots_ = options_.snapshots;
  } else {
    owned_snapshots_ = std::make_unique<SnapshotRegistry>();
    snapshots_ = owned_snapshots_.get();
  }
  // Count physical flushes into our stats; shard::Router re-points every
  // shard's counter at its own aggregate after construction.
  if (wal_ != nullptr) wal_->set_flush_counter(&stats_.wal_flushes);
}

TransactionManager::TransactionManager(Database* db, LockManager* locks,
                                       WalWriter* wal)
    : TransactionManager(db, locks, wal, Options()) {}

TransactionManager::~TransactionManager() {
  // The WalWriter is caller-owned and may outlive us — detach the counter
  // before our stats go away.
  if (wal_ != nullptr) wal_->set_flush_counter(nullptr);
}

std::unique_ptr<Transaction> TransactionManager::Begin() {
  return Begin(options_.default_isolation);
}

std::unique_ptr<Transaction> TransactionManager::Begin(IsolationLevel level) {
  TxnId id = next_txn_id_.fetch_add(1);
  stats_.begins.fetch_add(1, std::memory_order_relaxed);
  auto txn = std::make_unique<Transaction>(id, level,
                                           options_.lock_timeout_micros);
  // Sampled tracing: 1 in N transactions carries a trace id, so the
  // commit-path spans (lock waits, group-commit waits, 2PC phases) assemble
  // into a trace without taxing every transaction with ring pushes. A
  // transaction begun inside an already-sampled span (a traced SQL
  // statement) joins that trace instead of drawing again — its commit
  // spans then parent under the statement's tree.
  if (metrics_enabled()) {
    const TraceContext& ctx = CurrentTraceContext();
    if (ctx.trace_id != 0) {
      txn->set_trace_id(ctx.trace_id);
    } else if (Tracer::Global()->ShouldSample()) {
      txn->set_trace_id(Tracer::Global()->NewTraceId());
    }
  }
  if (wal_ != nullptr) {
    (void)wal_->Append(WalRecord::Begin(id));
  }
  // kSnapshot pins its one snapshot for the whole transaction right here;
  // kReadCommitted acquires a fresh cut lazily at each statement instead.
  if (options_.enable_mvcc_reads &&
      level == IsolationLevel::kSnapshot) {
    uint64_t ts = clock_->ReadTs();
    txn->set_read_ts(ts);
    snapshots_->Register(ts);
    txn->set_snapshot_registered(true);
  }
  return txn;
}

void TransactionManager::AdoptSnapshot(Transaction* txn, uint64_t ts) {
  if (txn->snapshot_registered()) {
    snapshots_->Unregister(txn->read_ts());
    txn->set_snapshot_registered(false);
  }
  txn->set_read_ts(ts);
  txn->set_external_read_ts(true);
}

void TransactionManager::MaybeRefreshSnapshot(Transaction* txn,
                                              bool grounding) {
  if (txn->external_read_ts()) return;  // coordinator owns the snapshot
  if (txn->isolation_level() == IsolationLevel::kSnapshot &&
      txn->snapshot_registered()) {
    return;  // pinned at Begin for the whole transaction
  }
  // kReadCommitted: refresh per statement only — never mid-statement (a
  // join's probe cursors must read the same cut as their outer scan), and
  // grounding reads after the first keep the cut the grounding started on
  // (every body atom of an entangled query reads one consistent state).
  if (txn->read_ts() != 0 && (txn->open_cursors() > 0 || grounding)) return;
  uint64_t ts = clock_->ReadTs();
  if (txn->snapshot_registered()) {
    snapshots_->Update(txn->read_ts(), ts);
  } else {
    snapshots_->Register(ts);
    txn->set_snapshot_registered(true);
  }
  txn->set_read_ts(ts);
}

void TransactionManager::StampWrites(Transaction* txn) {
  if (txn->undo_log().empty() || txn->commit_stamped()) return;
  // The [allocate, stamp, publish] window: the timestamp becomes readable
  // only after every row carrying it is stamped, so no snapshot ever sees
  // half a commit. Row X locks are still held here (released after).
  std::lock_guard<std::mutex> g(clock_->commit_mutex());
  uint64_t ts = clock_->AllocateCommitTs();
  for (const UndoEntry& e : txn->undo_log()) {
    auto t = db_->GetTable(e.table);
    if (t.ok()) t.value()->StampCommit(e.row_id, txn->id(), ts);
  }
  clock_->Publish(ts);
}

void TransactionManager::StampWritesAt(Transaction* txn, uint64_t ts) {
  for (const UndoEntry& e : txn->undo_log()) {
    auto t = db_->GetTable(e.table);
    if (t.ok()) t.value()->StampCommit(e.row_id, txn->id(), ts);
  }
  txn->set_commit_stamped(true);
}

void TransactionManager::ReleaseSnapshot(Transaction* txn) {
  if (!txn->snapshot_registered()) return;
  snapshots_->Unregister(txn->read_ts());
  txn->set_snapshot_registered(false);
}

size_t TransactionManager::GcVersions() {
  uint64_t horizon = snapshots_->OldestOr(clock_->ReadTs());
  size_t pruned = 0;
  for (const std::string& name : db_->TableNames()) {
    auto t = db_->GetTable(name);
    if (t.ok()) pruned += t.value()->PruneVersions(horizon);
  }
  if (pruned > 0) {
    stats_.versions_pruned.fetch_add(pruned, std::memory_order_relaxed);
  }
  return pruned;
}

Status TransactionManager::AcquireIndexKeyLocks(Transaction* txn,
                                                const Table* t,
                                                std::vector<uint64_t> hashes) {
  std::sort(hashes.begin(), hashes.end());
  hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
  std::vector<LockKey> keys;
  keys.reserve(hashes.size());
  for (uint64_t h : hashes) keys.push_back(LockKey::IndexKey(t->id(), h));
  return locks_->AcquireBatch(txn->id(), keys, LockMode::kX,
                              txn->lock_timeout_micros());
}

Status TransactionManager::AcquireOrderedKeyLocks(
    Transaction* txn, const Table* t,
    std::vector<std::pair<uint64_t, Row>> keys) {
  std::sort(keys.begin(), keys.end(),
            [](const std::pair<uint64_t, Row>& a,
               const std::pair<uint64_t, Row>& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second.Compare(b.second) < 0;
            });
  keys.erase(std::unique(keys.begin(), keys.end(),
                         [](const std::pair<uint64_t, Row>& a,
                            const std::pair<uint64_t, Row>& b) {
                           return a.first == b.first && a.second == b.second;
                         }),
             keys.end());
  for (auto& [index_id, key] : keys) {
    YT_RETURN_IF_ERROR(locks_->AcquireRange(
        txn->id(), RangeSpaceKey{t->id(), index_id},
        IndexRange::Point(std::move(key)), LockMode::kX,
        txn->lock_timeout_micros()));
  }
  return Status::Ok();
}

StatusOr<RowId> TransactionManager::Insert(Transaction* txn,
                                           const std::string& table,
                                           const Row& row) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                     LockMode::kIX,
                                     txn->lock_timeout_micros()));
  // Index-key X locks before touching the index structures: concurrent
  // indexed equality readers of the same key hold S on the hash, so this
  // insert cannot create a phantom under them.
  YT_ASSIGN_OR_RETURN(Row coerced, t->Coerce(row));
  YT_RETURN_IF_ERROR(
      AcquireIndexKeyLocks(txn, t, t->IndexKeyHashesFor(coerced)));
  // Key-range X on each ordered-index key: a range reader whose scanned
  // interval contains this key holds S on that interval, so the insert
  // cannot create a phantom inside it.
  YT_RETURN_IF_ERROR(
      AcquireOrderedKeyLocks(txn, t, t->OrderedIndexKeysFor(coerced)));
  YT_ASSIGN_OR_RETURN(RowId rid,
                      t->InsertVersioned(std::move(coerced), txn->id()));
  // X on the new row: no other transaction can see it before commit anyway
  // (it is brand new), but the lock keeps the row protocol uniform.
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::RowOf(t->id(), rid),
                                     LockMode::kX,
                                     txn->lock_timeout_micros()));
  txn->undo_log().push_back(
      {UndoEntry::Kind::kInsert, t->name(), rid, Row()});
  txn->count_write();
  if (wal_ != nullptr) {
    // A failed redo append dooms the statement — ignoring it would let a
    // later durable COMMIT replay a transaction missing this write. The
    // undo entry above rolls the in-memory insert back on abort.
    YT_RETURN_IF_ERROR(
        wal_->Append(WalRecord::Insert(txn->id(), t->name(), rid, row))
            .status());
  }
  if (options_.observer != nullptr) {
    options_.observer->OnWrite(txn->id(), {t->name(), rid});
  }
  return rid;
}

Status TransactionManager::AcquireReadLocks(Transaction* txn, const Table* t,
                                            RowId rid) {
  if (!TakesReadLocks(txn->isolation_level())) return Status::Ok();
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                     LockMode::kIS,
                                     txn->lock_timeout_micros()));
  return locks_->Acquire(txn->id(), LockKey::RowOf(t->id(), rid), LockMode::kS,
                         txn->lock_timeout_micros());
}

void TransactionManager::ReleaseEarlyReadLocks(Transaction* txn,
                                               const Table* t, RowId rid) {
  if (!ReleasesReadLocksEarly(txn->isolation_level())) return;
  // Short read locks: drop the row S immediately; keep table IS (cheap,
  // compatible with everything but table X) until commit.
  if (!locks_->Holds(txn->id(), LockKey::RowOf(t->id(), rid), LockMode::kX)) {
    locks_->ReleaseKey(txn->id(), LockKey::RowOf(t->id(), rid));
  }
}

StatusOr<Row> TransactionManager::Get(Transaction* txn,
                                      const std::string& table, RowId rid) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  if (SnapshotReadsActive(txn)) {
    MaybeRefreshSnapshot(txn, /*grounding=*/false);
    stats_.snapshot_reads.fetch_add(1, std::memory_order_relaxed);
    auto row = t->GetVersioned(rid, ReadView{txn->read_ts(), txn->id()});
    if (options_.observer != nullptr) {
      options_.observer->OnRead(txn->id(), {t->name(), rid});
    }
    return row;
  }
  YT_RETURN_IF_ERROR(AcquireReadLocks(txn, t, rid));
  auto row = t->Get(rid);
  if (options_.observer != nullptr) {
    options_.observer->OnRead(txn->id(), {t->name(), rid});
  }
  ReleaseEarlyReadLocks(txn, t, rid);
  return row;
}

Status TransactionManager::Update(Transaction* txn, const std::string& table,
                                  RowId rid, const Row& row) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                     LockMode::kIX,
                                     txn->lock_timeout_micros()));
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::RowOf(t->id(), rid),
                                     LockMode::kX,
                                     txn->lock_timeout_micros()));
  // First-updater-wins: a snapshot transaction may not overwrite a version
  // committed after its snapshot (lost-update prevention — the X lock above
  // means any conflicting writer has already committed and stamped).
  if (options_.enable_mvcc_reads &&
      txn->isolation_level() == IsolationLevel::kSnapshot &&
      t->LatestBeginTs(rid) > txn->read_ts()) {
    return Status::Aborted("write-write conflict: row " + std::to_string(rid) +
                           " of " + t->name() +
                           " was updated after this snapshot");
  }
  YT_ASSIGN_OR_RETURN(Row before, t->Get(rid));
  // The update moves this row's index entries from the old keys to the new
  // ones; X both sides so equality readers of either key are excluded.
  YT_ASSIGN_OR_RETURN(Row coerced, t->Coerce(row));
  std::vector<uint64_t> hashes = t->IndexKeyHashesFor(before);
  for (uint64_t h : t->IndexKeyHashesFor(coerced)) hashes.push_back(h);
  YT_RETURN_IF_ERROR(AcquireIndexKeyLocks(txn, t, std::move(hashes)));
  std::vector<std::pair<uint64_t, Row>> okeys = t->OrderedIndexKeysFor(before);
  for (auto& k : t->OrderedIndexKeysFor(coerced)) okeys.push_back(std::move(k));
  YT_RETURN_IF_ERROR(AcquireOrderedKeyLocks(txn, t, std::move(okeys)));
  bool pushed = false;
  YT_RETURN_IF_ERROR(
      t->UpdateVersioned(rid, std::move(coerced), txn->id(), &pushed));
  if (pushed) {
    stats_.versions_created.fetch_add(1, std::memory_order_relaxed);
  }
  txn->undo_log().push_back(
      {UndoEntry::Kind::kUpdate, t->name(), rid, before});
  txn->count_write();
  if (wal_ != nullptr) {
    // As in Insert: a lost redo record must fail the statement.
    YT_RETURN_IF_ERROR(
        wal_->Append(WalRecord::Update(txn->id(), t->name(), rid, before, row))
            .status());
  }
  if (options_.observer != nullptr) {
    options_.observer->OnWrite(txn->id(), {t->name(), rid});
  }
  return Status::Ok();
}

Status TransactionManager::Delete(Transaction* txn, const std::string& table,
                                  RowId rid) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                     LockMode::kIX,
                                     txn->lock_timeout_micros()));
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::RowOf(t->id(), rid),
                                     LockMode::kX,
                                     txn->lock_timeout_micros()));
  // First-updater-wins, as in Update.
  if (options_.enable_mvcc_reads &&
      txn->isolation_level() == IsolationLevel::kSnapshot &&
      t->LatestBeginTs(rid) > txn->read_ts()) {
    return Status::Aborted("write-write conflict: row " + std::to_string(rid) +
                           " of " + t->name() +
                           " was updated after this snapshot");
  }
  YT_ASSIGN_OR_RETURN(Row before, t->Get(rid));
  YT_RETURN_IF_ERROR(
      AcquireIndexKeyLocks(txn, t, t->IndexKeyHashesFor(before)));
  YT_RETURN_IF_ERROR(
      AcquireOrderedKeyLocks(txn, t, t->OrderedIndexKeysFor(before)));
  bool pushed = false;
  YT_RETURN_IF_ERROR(t->DeleteVersioned(rid, txn->id(), &pushed));
  if (pushed) {
    stats_.versions_created.fetch_add(1, std::memory_order_relaxed);
  }
  txn->undo_log().push_back(
      {UndoEntry::Kind::kDelete, t->name(), rid, before});
  txn->count_write();
  if (wal_ != nullptr) {
    // As in Insert: a lost redo record must fail the statement.
    YT_RETURN_IF_ERROR(
        wal_->Append(WalRecord::Delete(txn->id(), t->name(), rid, before))
            .status());
  }
  if (options_.observer != nullptr) {
    options_.observer->OnWrite(txn->id(), {t->name(), rid});
  }
  return Status::Ok();
}

void TransactionManager::CountRead(const AccessPlan& plan, ReadOrigin origin) {
  switch (plan.kind) {
    case AccessPlan::Kind::kTableScan:
      if (IsGroundingOrigin(origin)) {
        stats_.grounding_scans.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats_.table_scans.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case AccessPlan::Kind::kIndexLookup:
      switch (origin) {
        case ReadOrigin::kStatement:
          stats_.index_lookups.fetch_add(1, std::memory_order_relaxed);
          break;
        case ReadOrigin::kGrounding:
          stats_.grounding_index_lookups.fetch_add(1,
                                                   std::memory_order_relaxed);
          break;
        case ReadOrigin::kJoin:
          stats_.join_probes.fetch_add(1, std::memory_order_relaxed);
          break;
        case ReadOrigin::kGroundingJoin:
          stats_.grounding_join_probes.fetch_add(1,
                                                 std::memory_order_relaxed);
          break;
      }
      break;
    case AccessPlan::Kind::kIndexRange:
      switch (origin) {
        case ReadOrigin::kStatement:
          stats_.range_lookups.fetch_add(1, std::memory_order_relaxed);
          break;
        case ReadOrigin::kGrounding:
          stats_.grounding_range_lookups.fetch_add(1,
                                                   std::memory_order_relaxed);
          break;
        case ReadOrigin::kJoin:
          stats_.range_join_probes.fetch_add(1, std::memory_order_relaxed);
          break;
        case ReadOrigin::kGroundingJoin:
          stats_.grounding_range_probes.fetch_add(1,
                                                  std::memory_order_relaxed);
          break;
      }
      break;
  }
}

StatusOr<std::unique_ptr<TableCursor>> TransactionManager::OpenCursor(
    Transaction* txn, Table* t, AccessPlan plan, ReadOrigin origin) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  const bool grounding = IsGroundingOrigin(origin);

  // The snapshot read path: pick the visible version at the transaction's
  // ReadView instead of locking current state. Zero lock-manager traffic —
  // scans, index probes, range reads, join probes, and grounding all run
  // here when the level reads snapshots and MVCC is enabled.
  if (SnapshotReadsActive(txn)) {
    MaybeRefreshSnapshot(txn, grounding);
    const ReadView view{txn->read_ts(), txn->id()};
    CountRead(plan, origin);
    stats_.snapshot_reads.fetch_add(1, std::memory_order_relaxed);

    if (plan.is_scan()) {
      if (options_.observer != nullptr) {
        if (grounding) {
          options_.observer->OnGroundingRead(txn->id(), {t->name(), 0});
        } else {
          options_.observer->OnRead(txn->id(), {t->name(), 0});
        }
      }
      return std::unique_ptr<TableCursor>(
          new SnapshotScanCursor(txn, t, view));
    }

    std::vector<std::pair<RowId, Row>> rows;
    if (plan.is_index()) {
      YT_ASSIGN_OR_RETURN(rows,
                          t->IndexLookupVersioned(plan.columns, plan.key,
                                                  view));
      // Deterministic (scan) order, as on the locking path.
      std::sort(rows.begin(), rows.end(),
                [](const std::pair<RowId, Row>& a,
                   const std::pair<RowId, Row>& b) { return a.first < b.first; });
    } else {
      YT_ASSIGN_OR_RETURN(rows,
                          t->RangeLookupVersioned(plan.ToRangeSpec(), view));
    }
    if (grounding && options_.observer != nullptr) {
      // Table-granular R^G, as with scans (quasi-read derivation stays
      // conservative).
      options_.observer->OnGroundingRead(txn->id(), {t->name(), 0});
    }
    return std::unique_ptr<TableCursor>(new MaterializedRowsCursor(
        txn, t, options_.observer, /*observe_rows=*/!grounding,
        std::move(rows)));
  }

  const bool take_locks = TakesReadLocks(txn->isolation_level());

  if (plan.is_scan()) {
    if (take_locks) {
      YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                         LockMode::kS,
                                         txn->lock_timeout_micros()));
    }
    CountRead(plan, origin);
    if (options_.observer != nullptr) {
      if (grounding) {
        options_.observer->OnGroundingRead(txn->id(), {t->name(), 0});
      } else {
        options_.observer->OnRead(txn->id(), {t->name(), 0});
      }
    }
    // Sharing requires the table S lock (just taken above): the continuous
    // S window across all consumers is what freezes the heap mid-scan.
    SharedScanManager::Ticket ticket;
    if (take_locks && options_.enable_shared_scans) {
      ticket = shared_scans_.Join(t);
      if (ticket.attached) {
        stats_.shared_scan_attaches.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats_.shared_scan_leads.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Grounding scans keep the table S lock even at kReadCommitted
    // (quasi-read repeatability); statement scans drop it at close.
    return std::unique_ptr<TableCursor>(
        new ScanCursor(locks_, txn, t, &shared_scans_, std::move(ticket),
                       /*release_table_on_close=*/take_locks && !grounding));
  }

  if (plan.is_index()) {
    const LockKey key_lock =
        LockKey::IndexKey(t->id(), Table::IndexKeyHash(plan.columns, plan.key));
    if (take_locks) {
      YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                         LockMode::kIS,
                                         txn->lock_timeout_micros()));
      // S on the key hash: no writer can add/remove/move a row under this
      // equality key while the cursor lives (phantom protection for the
      // equality predicate).
      YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), key_lock, LockMode::kS,
                                         txn->lock_timeout_micros()));
    }
    YT_ASSIGN_OR_RETURN(std::vector<RowId> rids,
                        t->IndexLookup(plan.columns, plan.key));
    std::sort(rids.begin(), rids.end());  // deterministic (scan) order
    CountRead(plan, origin);
    if (grounding && options_.observer != nullptr) {
      // Table-granular R^G, as with scans: the grounding read logically
      // covers the relation (quasi-read derivation stays conservative).
      options_.observer->OnGroundingRead(txn->id(), {t->name(), 0});
    }
    return std::unique_ptr<TableCursor>(new FetchedRowsCursor(
        locks_, txn, t, options_.observer, take_locks,
        /*observe_rows=*/!grounding, std::move(rids),
        FetchedRowsCursor::Release::kIndexKey, key_lock, RangeSpaceKey{},
        IndexRange()));
  }

  // kIndexRange.
  IndexRangeSpec spec = plan.ToRangeSpec();
  const RangeSpaceKey space{t->id(), Table::IndexColumnsHash(spec.columns)};
  const bool whole_space = spec.range.fully_unbounded();
  if (take_locks) {
    if (whole_space) {
      // A fully unbounded interval covers the whole key space; the table S
      // lock is the cheaper equivalent (one record, no interval tests).
      YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                         LockMode::kS,
                                         txn->lock_timeout_micros()));
    } else {
      YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                         LockMode::kIS,
                                         txn->lock_timeout_micros()));
      // S on the scanned interval: no writer can insert, delete, or move a
      // row whose key falls inside it while the cursor lives (gap + key
      // phantom protection for the range predicate).
      YT_RETURN_IF_ERROR(locks_->AcquireRange(txn->id(), space, spec.range,
                                              LockMode::kS,
                                              txn->lock_timeout_micros()));
    }
  }
  YT_ASSIGN_OR_RETURN(std::vector<RowId> rids, t->RangeLookup(spec));
  CountRead(plan, origin);
  if (grounding && options_.observer != nullptr) {
    options_.observer->OnGroundingRead(txn->id(), {t->name(), 0});
  }
  return std::unique_ptr<TableCursor>(new FetchedRowsCursor(
      locks_, txn, t, options_.observer, take_locks,
      /*observe_rows=*/!grounding, std::move(rids),
      whole_space ? FetchedRowsCursor::Release::kTableS
                  : FetchedRowsCursor::Release::kRange,
      LockKey::Table(t->id()), space, std::move(spec.range)));
}

Status TransactionManager::LockTableForWrite(Transaction* txn,
                                             const std::string& table) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  return locks_->Acquire(txn->id(), LockKey::Table(t->id()), LockMode::kX,
                         txn->lock_timeout_micros());
}

StatusOr<std::vector<std::pair<RowId, Row>>>
TransactionManager::LockTableAndCollectForWrite(Transaction* txn,
                                                const std::string& table) {
  YT_RETURN_IF_ERROR(LockTableForWrite(txn, table));
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  std::vector<std::pair<RowId, Row>> out;
  out.reserve(t->size());
  t->Scan([&](RowId rid, const Row& row) {
    out.emplace_back(rid, row);
    return true;
  });
  return out;
}

Status TransactionManager::Load(const std::string& table, const Row& row) {
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  return t->Insert(row).status();
}

StatusOr<std::vector<std::pair<RowId, Row>>>
TransactionManager::LockRowsForWriteRange(Transaction* txn,
                                          const std::string& table,
                                          const IndexRangeSpec& spec) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                     LockMode::kIX,
                                     txn->lock_timeout_micros()));
  // X on the scanned interval first: serializes with range readers of any
  // overlapping interval and with writers touching keys inside it. Then X
  // row locks before any row is read — no S->X upgrade can occur later.
  YT_RETURN_IF_ERROR(locks_->AcquireRange(
      txn->id(), RangeSpaceKey{t->id(), Table::IndexColumnsHash(spec.columns)},
      spec.range, LockMode::kX, txn->lock_timeout_micros()));
  YT_ASSIGN_OR_RETURN(std::vector<RowId> rids, t->RangeLookup(spec));
  // The whole statement's row set locks in ONE lock-manager round — one
  // mutex acquisition and one wait instead of one per row.
  std::vector<LockKey> row_keys;
  row_keys.reserve(rids.size());
  for (RowId rid : rids) row_keys.push_back(LockKey::RowOf(t->id(), rid));
  YT_RETURN_IF_ERROR(locks_->AcquireBatch(txn->id(), row_keys, LockMode::kX,
                                          txn->lock_timeout_micros()));
  std::vector<std::pair<RowId, Row>> out;
  out.reserve(rids.size());
  for (RowId rid : rids) {
    YT_ASSIGN_OR_RETURN(Row row, t->Get(rid));
    out.emplace_back(rid, std::move(row));
  }
  stats_.range_lookups.fetch_add(1, std::memory_order_relaxed);
  return out;
}

StatusOr<std::vector<std::pair<RowId, Row>>>
TransactionManager::LockRowsForWrite(Transaction* txn,
                                     const std::string& table,
                                     const std::vector<size_t>& columns,
                                     const Row& key) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  YT_RETURN_IF_ERROR(locks_->Acquire(txn->id(), LockKey::Table(t->id()),
                                     LockMode::kIX,
                                     txn->lock_timeout_micros()));
  // X on the key hash first: serializes with equality readers of this key
  // and with concurrent writers inserting rows under it.
  YT_RETURN_IF_ERROR(locks_->Acquire(
      txn->id(), LockKey::IndexKey(t->id(), Table::IndexKeyHash(columns, key)),
      LockMode::kX, txn->lock_timeout_micros()));
  YT_ASSIGN_OR_RETURN(std::vector<RowId> rids, t->IndexLookup(columns, key));
  std::sort(rids.begin(), rids.end());
  // One lock-manager round for the statement's whole row set.
  std::vector<LockKey> row_keys;
  row_keys.reserve(rids.size());
  for (RowId rid : rids) row_keys.push_back(LockKey::RowOf(t->id(), rid));
  YT_RETURN_IF_ERROR(locks_->AcquireBatch(txn->id(), row_keys, LockMode::kX,
                                          txn->lock_timeout_micros()));
  std::vector<std::pair<RowId, Row>> out;
  out.reserve(rids.size());
  for (RowId rid : rids) {
    YT_ASSIGN_OR_RETURN(Row row, t->Get(rid));
    out.emplace_back(rid, std::move(row));
  }
  stats_.index_lookups.fetch_add(1, std::memory_order_relaxed);
  return out;
}

Status TransactionManager::ApplyUndo(Transaction* txn) {
  // Reverse order: the first rollback touching a row pops the committed
  // version back into place; later entries for the same row no-op (the
  // table checks version ownership). Inserted rows are erased outright.
  auto& log = txn->undo_log();
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(it->table));
    switch (it->kind) {
      case UndoEntry::Kind::kInsert:
        t->RollbackInsert(it->row_id, txn->id());
        break;
      case UndoEntry::Kind::kUpdate:
      case UndoEntry::Kind::kDelete:
        t->RollbackWrite(it->row_id, txn->id());
        break;
    }
  }
  log.clear();
  return Status::Ok();
}

Status TransactionManager::Commit(Transaction* txn) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  ScopedTraceSpan span("txn.commit", txn->trace_id());
  LatencyTimer timer(CommitLatencyHist(txn->isolation_level()));
  // Read-only commit: nothing was written (every Insert/Update/Delete pushes
  // an undo entry, and undo clears only on abort), so there is no redo to
  // make durable — skip the commit record AND the flush. This covers
  // read-only autocommit statements and the read-only branches of a
  // cross-shard transaction, which the Router commits locally through here.
  if (wal_ != nullptr && !txn->undo_log().empty()) {
    auto lsn = wal_->AppendAndFlush(WalRecord::Commit(txn->id()));
    if (!lsn.ok()) {
      // A failed commit-record force-write is unresolvable in place: the
      // record may or may not have reached the device, so aborting in
      // memory could contradict a COMMIT that recovery will replay. Stop
      // cold (every WAL freezes) and let recovery decide — the classical
      // fsync-failure rule.
      FaultInjector::Global()->ForceCrash("commit-record write failed: " +
                                          lsn.status().message());
      return lsn.status();
    }
  }
  // Stamp while the row X locks are still held; only then release.
  StampWrites(txn);
  txn->set_state(TxnState::kCommitted);
  ReleaseSnapshot(txn);
  locks_->ReleaseAll(txn->id());
  stats_.commits.fetch_add(1, std::memory_order_relaxed);
  if (timer.active()) TxnMetrics().commits->Add();
  if (options_.observer != nullptr) options_.observer->OnCommit(txn->id());
  if (commits_since_gc_.fetch_add(1, std::memory_order_relaxed) + 1 >=
      kGcCommitInterval) {
    commits_since_gc_.store(0, std::memory_order_relaxed);
    (void)GcVersions();
  }
  return Status::Ok();
}

Status TransactionManager::Abort(Transaction* txn) {
  if (txn->state() == TxnState::kAborted) return Status::Ok();
  if (txn->state() == TxnState::kCommitted) {
    return Status::Internal("cannot abort a committed transaction");
  }
  LatencyTimer timer(AbortLatencyHist(txn->isolation_level()));
  YT_RETURN_IF_ERROR(ApplyUndo(txn));
  if (wal_ != nullptr) {
    (void)wal_->Append(WalRecord::Abort(txn->id()));
  }
  txn->set_state(TxnState::kAborted);
  ReleaseSnapshot(txn);
  locks_->ReleaseAll(txn->id());
  stats_.aborts.fetch_add(1, std::memory_order_relaxed);
  if (timer.active()) TxnMetrics().aborts->Add();
  if (options_.observer != nullptr) options_.observer->OnAbort(txn->id());
  return Status::Ok();
}

Status TransactionManager::Prepare(Transaction* txn, GroupId gtid) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  ScopedTraceSpan span("txn.prepare");
  if (wal_ != nullptr) {
    // Force-write: the yes-vote is durable (and with it, this
    // transaction's buffered redo records) before the coordinator may
    // decide commit. Unlike a commit record, a failed prepare write needs
    // no crash escalation: even if the PREPARE did reach the device,
    // recovery resolves it presumed-abort (no decision exists yet), which
    // matches the in-memory abort the coordinator performs.
    auto lsn = wal_->AppendAndFlush(WalRecord::Prepare(txn->id(), gtid));
    if (!lsn.ok()) return lsn.status();
  }
  txn->set_state(TxnState::kReadyToCommit);
  stats_.prepares.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status TransactionManager::CommitPrepared(Transaction* txn, GroupId gtid) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  // The local decision record is advisory — the coordinator's log already
  // holds the durable decision, so phase 2 completes in memory even when
  // the append fails (or the "txn.phase2.append" fault swallows it). The
  // returned status only tells the coordinator whether this participant's
  // own log now resolves the branch: decision-log GC must keep the
  // coordinator record until that is true everywhere.
  Status append_st;
  if (wal_ != nullptr) {
    FaultInjector* fi = FaultInjector::Global();
    if (fi->enabled()) append_st = fi->Hit("txn.phase2.append");
    if (append_st.ok()) {
      append_st =
          wal_->Append(WalRecord::CommitDecision(txn->id(), gtid)).status();
    }
  }
  StampWrites(txn);
  txn->set_state(TxnState::kCommitted);
  ReleaseSnapshot(txn);
  locks_->ReleaseAll(txn->id());
  stats_.commits.fetch_add(1, std::memory_order_relaxed);
  if (metrics_enabled()) TxnMetrics().commits->Add();
  if (options_.observer != nullptr) options_.observer->OnCommit(txn->id());
  return append_st;
}

Status TransactionManager::CommitGroup(
    const std::vector<Transaction*>& members) {
  for (Transaction* t : members) {
    if (!t->active()) {
      return Status::Aborted("group member " + std::to_string(t->id()) +
                             " not active");
    }
  }
  GroupId gid = next_group_id_.fetch_add(1);
  std::vector<TxnId> ids;
  ids.reserve(members.size());
  for (Transaction* t : members) ids.push_back(t->id());
  if (wal_ != nullptr) {
    for (TxnId id : ids) {
      // Losing a member COMMIT makes the later GROUP_COMMIT unreplayable
      // for that member; fail before the group record is force-written —
      // every member is still undoable at this point.
      YT_RETURN_IF_ERROR(wal_->Append(WalRecord::Commit(id)).status());
    }
    auto lsn = wal_->AppendAndFlush(WalRecord::GroupCommit(gid, ids));
    if (!lsn.ok()) return lsn.status();
  }
  // One commit timestamp for the whole group: an entangled commit is
  // atomic, so no snapshot may see only part of it.
  bool any_writes = false;
  for (Transaction* t : members) any_writes |= !t->undo_log().empty();
  if (any_writes) {
    std::lock_guard<std::mutex> g(clock_->commit_mutex());
    uint64_t ts = clock_->AllocateCommitTs();
    for (Transaction* txn : members) {
      for (const UndoEntry& e : txn->undo_log()) {
        auto t = db_->GetTable(e.table);
        if (t.ok()) t.value()->StampCommit(e.row_id, txn->id(), ts);
      }
    }
    clock_->Publish(ts);
  }
  for (Transaction* t : members) {
    t->set_state(TxnState::kCommitted);
    ReleaseSnapshot(t);
    locks_->ReleaseAll(t->id());
    stats_.commits.fetch_add(1, std::memory_order_relaxed);
    if (metrics_enabled()) TxnMetrics().commits->Add();
    if (options_.observer != nullptr) options_.observer->OnCommit(t->id());
  }
  stats_.group_commits.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status TransactionManager::LogEntangle(
    EntanglementId eid, const std::vector<Transaction*>& members) {
  std::vector<TxnId> ids;
  ids.reserve(members.size());
  for (Transaction* t : members) ids.push_back(t->id());
  for (Transaction* t : members) {
    t->MarkEntangled();
    t->AddPartners(ids);
  }
  if (wal_ != nullptr) {
    auto lsn = wal_->AppendAndFlush(WalRecord::Entangle(eid, ids));
    if (!lsn.ok()) return lsn.status();
  }
  if (options_.observer != nullptr) {
    options_.observer->OnEntangle(eid, ids);
  }
  return Status::Ok();
}

StatusOr<Table*> TransactionManager::CreateTable(const std::string& name,
                                                 const Schema& schema) {
  YT_ASSIGN_OR_RETURN(Table * t, db_->CreateTable(name, schema));
  if (wal_ != nullptr) {
    auto lsn = wal_->AppendAndFlush(WalRecord::CreateTable(name, schema));
    if (!lsn.ok()) return lsn.status();
  }
  return t;
}

Status TransactionManager::CreateIndex(const std::string& table,
                                       const std::vector<std::string>& columns,
                                       bool unique, bool ordered) {
  YT_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  YT_RETURN_IF_ERROR(t->CreateIndex(columns, unique, ordered));
  if (wal_ != nullptr) {
    auto lsn = wal_->AppendAndFlush(
        WalRecord::CreateIndex(t->name(), columns, unique, ordered));
    if (!lsn.ok()) return lsn.status();
  }
  return Status::Ok();
}

Status TransactionManager::Checkpoint(const std::string& checkpoint_path) {
  if (wal_ == nullptr) return Status::Internal("no WAL configured");
  std::ofstream out(checkpoint_path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    return Status::Corruption("cannot open checkpoint file " +
                              checkpoint_path);
  }
  YT_RETURN_IF_ERROR(db_->SaveTo(&out));
  out.close();
  return wal_->ResetWithCheckpoint(checkpoint_path);
}

}  // namespace youtopia
