#ifndef YOUTOPIA_TXN_TRANSACTION_MANAGER_H_
#define YOUTOPIA_TXN_TRANSACTION_MANAGER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/op_observer.h"
#include "src/common/statusor.h"
#include "src/lock/lock_manager.h"
#include "src/storage/database.h"
#include "src/txn/transaction.h"
#include "src/wal/wal_writer.h"

namespace youtopia {

/// Aggregate transaction counters (benches / tests).
struct TxnStats {
  std::atomic<uint64_t> begins{0};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> aborts{0};
  std::atomic<uint64_t> group_commits{0};
};

/// Classical ACID transaction manager over the in-memory engine:
/// Strict 2PL through the LockManager, redo-only WAL through WalWriter
/// (optional: pass nullptr for a volatile database), in-memory undo for live
/// rollback. Exposes the group-commit primitive and the ENTANGLE logging hook
/// that the entangled layer builds on.
class TransactionManager {
 public:
  struct Options {
    IsolationLevel default_isolation = IsolationLevel::kFullEntangled;
    int64_t lock_timeout_micros = 2'000'000;  ///< 2 s default lock wait
    OpObserver* observer = nullptr;           ///< optional schedule recorder
  };

  TransactionManager(Database* db, LockManager* locks, WalWriter* wal,
                     Options options);
  TransactionManager(Database* db, LockManager* locks, WalWriter* wal);

  Database* db() const { return db_; }
  LockManager* locks() const { return locks_; }
  TxnStats& stats() { return stats_; }
  void set_observer(OpObserver* obs) { options_.observer = obs; }
  OpObserver* observer() const { return options_.observer; }

  /// Starts a transaction at the given (or default) isolation level.
  std::unique_ptr<Transaction> Begin();
  std::unique_ptr<Transaction> Begin(IsolationLevel level);

  // --- Data operations (acquire locks, log, maintain undo). ---

  StatusOr<RowId> Insert(Transaction* txn, const std::string& table,
                         const Row& row);
  StatusOr<Row> Get(Transaction* txn, const std::string& table, RowId rid);
  Status Update(Transaction* txn, const std::string& table, RowId rid,
                const Row& row);
  Status Delete(Transaction* txn, const std::string& table, RowId rid);

  /// Full-table scan under a table S lock (serializable levels); the visitor
  /// returns false to stop.
  Status Scan(Transaction* txn, const std::string& table,
              const std::function<bool(RowId, const Row&)>& visitor);

  /// Takes a table-level X lock up front (UPDATE/DELETE statements lock the
  /// whole table before scanning, avoiding S->X upgrade deadlocks between
  /// writers).
  Status LockTableForWrite(Transaction* txn, const std::string& table);

  /// Like Scan but recorded as a *grounding* read (R^G); used by the
  /// entangled-query grounder so the isolation recorder can derive
  /// quasi-reads.
  Status ScanForGrounding(Transaction* txn, const std::string& table,
                          const std::function<bool(RowId, const Row&)>& visitor);

  // --- Termination. ---

  Status Commit(Transaction* txn);
  Status Abort(Transaction* txn);

  /// Atomically commits a set of entangled transactions: per-member COMMIT
  /// records, then one GROUP_COMMIT record, then a single flush. Durability
  /// of every member hinges on the group record (entanglement-aware
  /// recovery).
  Status CommitGroup(const std::vector<Transaction*>& members);

  /// Logs an ENTANGLE record (and marks the members). Called by the
  /// entangled-query evaluator when an entanglement operation succeeds.
  Status LogEntangle(EntanglementId eid, const std::vector<Transaction*>& members);

  // --- DDL (system transaction 0, autocommitted). ---

  StatusOr<Table*> CreateTable(const std::string& name, const Schema& schema);

  /// Writes a checkpoint image to `checkpoint_path` and truncates the WAL.
  /// Callers must quiesce transactions first.
  Status Checkpoint(const std::string& checkpoint_path);

 private:
  Status ApplyUndo(Transaction* txn);
  Status AcquireReadLocks(Transaction* txn, const Table* t, RowId rid);
  void ReleaseEarlyReadLocks(Transaction* txn, const Table* t, RowId rid);

  Database* db_;
  LockManager* locks_;
  WalWriter* wal_;  // may be nullptr (volatile mode)
  Options options_;
  std::atomic<TxnId> next_txn_id_{1};
  std::atomic<GroupId> next_group_id_{1};
  TxnStats stats_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_TXN_TRANSACTION_MANAGER_H_
