#ifndef YOUTOPIA_TXN_TRANSACTION_MANAGER_H_
#define YOUTOPIA_TXN_TRANSACTION_MANAGER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/op_observer.h"
#include "src/common/statusor.h"
#include "src/lock/lock_manager.h"
#include "src/storage/cursor.h"
#include "src/storage/database.h"
#include "src/storage/mvcc.h"
#include "src/storage/shared_scan.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_engine.h"
#include "src/wal/wal_writer.h"

namespace youtopia {

/// Classical ACID transaction manager over the in-memory engine:
/// Strict 2PL through the LockManager, redo-only WAL through WalWriter
/// (optional: pass nullptr for a volatile database), in-memory undo for live
/// rollback. Exposes the group-commit primitive and the ENTANGLE logging hook
/// that the entangled layer builds on. Implements the TxnEngine seam the
/// executor/grounder consume — shard::Router runs one of these per shard and
/// adds the Prepare/CommitPrepared participant protocol below for
/// cross-shard two-phase commit.
class TransactionManager : public TxnEngine {
 public:
  struct Options {
    IsolationLevel default_isolation = IsolationLevel::kFullEntangled;
    int64_t lock_timeout_micros = 2'000'000;  ///< 2 s default lock wait
    OpObserver* observer = nullptr;           ///< optional schedule recorder
    /// Concurrent heap scans of the same table share one circular scan
    /// (one heap walk, many consumers). Off = every scan walks privately
    /// (the ablation baseline).
    bool enable_shared_scans = true;
    /// Snapshot-read levels (kReadCommitted, kSnapshot) read the versioned
    /// heap with zero locks. Off = they fall back to locking reads (the
    /// MVCC ablation baseline). Writes maintain version chains either way.
    bool enable_mvcc_reads = true;
    /// Commit clock / live-snapshot set for versioned reads. Null = the
    /// manager owns private ones; shard::Router passes one shared pair to
    /// every shard so a cross-shard statement reads one cut.
    VersionClock* clock = nullptr;
    SnapshotRegistry* snapshots = nullptr;
  };

  TransactionManager(Database* db, LockManager* locks, WalWriter* wal,
                     Options options);
  TransactionManager(Database* db, LockManager* locks, WalWriter* wal);
  ~TransactionManager() override;

  Database* db() const override { return db_; }
  LockManager* locks() const { return locks_; }
  WalWriter* wal() const { return wal_; }
  TxnStats& stats() override { return stats_; }
  void set_observer(OpObserver* obs) { options_.observer = obs; }
  OpObserver* observer() const { return options_.observer; }
  /// Ablation switch for scan sharing (benches / differential tests).
  void set_shared_scans_enabled(bool on) { options_.enable_shared_scans = on; }
  bool shared_scans_enabled() const { return options_.enable_shared_scans; }
  /// Ablation switch for the versioned read path (benches / differential
  /// tests): off makes snapshot-read levels take locks again.
  void set_mvcc_reads_enabled(bool enabled) override {
    options_.enable_mvcc_reads = enabled;
  }
  bool mvcc_reads_enabled() const override {
    return options_.enable_mvcc_reads;
  }
  VersionClock* clock() const { return clock_; }
  SnapshotRegistry* snapshots() const { return snapshots_; }
  /// Bumps the transaction-id allocator past recovered ids (reopen after
  /// crash recovery).
  void set_next_txn_id(TxnId next) { next_txn_id_.store(next); }

  /// Starts a transaction at the given (or default) isolation level.
  std::unique_ptr<Transaction> Begin() override;
  std::unique_ptr<Transaction> Begin(IsolationLevel level) override;

  // --- Data operations (acquire locks, log, maintain undo). ---

  StatusOr<RowId> Insert(Transaction* txn, const std::string& table,
                         const Row& row) override;
  StatusOr<Row> Get(Transaction* txn, const std::string& table,
                    RowId rid) override;
  Status Update(Transaction* txn, const std::string& table, RowId rid,
                const Row& row) override;
  Status Delete(Transaction* txn, const std::string& table,
                RowId rid) override;
  Status Load(const std::string& table, const Row& row) override;

  // --- The unified read path. ---

  /// Opens a pull cursor for `plan` over `t` — the one seam every read
  /// access path goes through. Lock protocol by plan kind:
  ///   * kTableScan: table S (the phantom-protection fallback for
  ///     predicates no index covers). When scan sharing is enabled and the
  ///     level takes read locks, the cursor attaches to a compatible
  ///     in-flight shared scan of the same table (circular: late joiners
  ///     start mid-heap and wrap) or leads a fresh one — every consumer
  ///     still holds its own table S lock, so results are identical to a
  ///     private walk.
  ///   * kIndexLookup: table IS + S on the index-key hash (equality-
  ///     predicate phantom protection) + S on each row as it is pulled.
  ///   * kIndexRange: table IS + key-range S on the scanned interval
  ///     (gap + key phantom protection) + S on each row as it is pulled; a
  ///     fully unbounded interval degrades to the table S lock.
  /// kReadCommitted releases the shared locks when the cursor closes
  /// (grounding-origin heap scans keep the table S — quasi-read
  /// repeatability); kReadUncommitted takes no read locks. `origin` picks
  /// the stats counter and whether rows are recorded as R or R^G. The
  /// cursor must not outlive the transaction or the manager.
  using TxnEngine::OpenCursor;
  StatusOr<std::unique_ptr<TableCursor>> OpenCursor(Transaction* txn, Table* t,
                                                    AccessPlan plan,
                                                    ReadOrigin origin) override;

  /// GetByIndex for write statements: X-locks the index key and every
  /// matched row (plus table IX) and returns the matched rows. UPDATE/DELETE
  /// with a covering index route here instead of LockTableForWrite, so
  /// writers on different keys no longer serialize on the table lock.
  StatusOr<std::vector<std::pair<RowId, Row>>> LockRowsForWrite(
      Transaction* txn, const std::string& table,
      const std::vector<size_t>& columns, const Row& key) override;

  /// GetByIndexRange for write statements: X-locks the scanned interval and
  /// every matched row (plus table IX) up front and returns the matched
  /// rows. Range-covered UPDATE/DELETE route here instead of
  /// LockTableForWrite — X row locks are taken before any read, so the
  /// scan-then-upgrade (S->X) deadlock between range writers cannot occur.
  StatusOr<std::vector<std::pair<RowId, Row>>> LockRowsForWriteRange(
      Transaction* txn, const std::string& table,
      const IndexRangeSpec& spec) override;

  /// Takes a table-level X lock up front (UPDATE/DELETE statements lock the
  /// whole table before scanning, avoiding S->X upgrade deadlocks between
  /// writers).
  Status LockTableForWrite(Transaction* txn,
                           const std::string& table) override;

  /// LockTableForWrite plus a collection of the whole heap — the
  /// uncovered-predicate write fallback behind one call so partitioned
  /// engines can fan it out.
  StatusOr<std::vector<std::pair<RowId, Row>>> LockTableAndCollectForWrite(
      Transaction* txn, const std::string& table) override;

  // --- Termination. ---

  Status Commit(Transaction* txn) override;
  Status Abort(Transaction* txn) override;

  /// Atomically commits a set of entangled transactions: per-member COMMIT
  /// records, then one GROUP_COMMIT record, then a single flush. Durability
  /// of every member hinges on the group record (entanglement-aware
  /// recovery).
  Status CommitGroup(const std::vector<Transaction*>& members) override;

  /// Logs an ENTANGLE record (and marks the members). Called by the
  /// entangled-query evaluator when an entanglement operation succeeds.
  Status LogEntangle(EntanglementId eid,
                     const std::vector<Transaction*>& members) override;

  // --- Two-phase-commit participant protocol (driven by shard::Router). ---

  /// Phase 1: makes the transaction's writes durable and votes yes by
  /// force-writing a PREPARE record carrying the coordinator's global
  /// transaction id. The transaction keeps every lock and moves to
  /// kReadyToCommit; its outcome now belongs to the coordinator — after a
  /// crash, recovery finds the PREPARE and resolves the transaction from
  /// the coordinator's decision log instead of presuming abort.
  Status Prepare(Transaction* txn, GroupId gtid);

  /// Phase 2 (commit): appends the shard-local COMMIT_DECISION record
  /// (unflushed — the decision is already durable in the coordinator's
  /// log; the local record just lets recovery resolve without consulting
  /// it) and releases locks. Abort-after-prepare is plain Abort().
  ///
  /// The in-memory commit always completes; the returned status reports
  /// only whether the advisory local record was appended. A non-OK return
  /// means this participant still depends on the coordinator's decision
  /// log to resolve its branch after a crash — the coordinator's
  /// decision-log GC must keep the gtid until every branch reports OK.
  /// Fault site: "txn.phase2.append".
  Status CommitPrepared(Transaction* txn, GroupId gtid);

  // --- DDL (system transaction 0, autocommitted). ---

  /// Creates the table; a schema with primary-key columns gets a unique
  /// index over them automatically (inside the Table constructor).
  StatusOr<Table*> CreateTable(const std::string& name,
                               const Schema& schema) override;

  /// Builds a secondary index (hash by default; `ordered` builds a B-tree
  /// enabling range access; `unique` enforces key uniqueness, NULL keys
  /// exempt) and WAL-logs it so recovery rebuilds it.
  Status CreateIndex(const std::string& table,
                     const std::vector<std::string>& columns,
                     bool unique = false, bool ordered = false) override;

  /// Writes a checkpoint image to `checkpoint_path` and truncates the WAL.
  /// Callers must quiesce transactions first.
  Status Checkpoint(const std::string& checkpoint_path);

  // --- MVCC snapshot management. ---

  /// Stamps `txn`'s writes with an externally allocated commit timestamp —
  /// the atomic-visibility seam of cross-shard 2PC: the coordinator holds
  /// the shared clock's commit mutex, stamps every prepared write branch
  /// with one timestamp, then publishes it, so no snapshot ever sees a
  /// distributed commit half-applied. The branch's later CommitPrepared
  /// sees `commit_stamped` and skips its own stamping.
  void StampWritesAt(Transaction* txn, uint64_t ts);

  /// Pins a coordinator-chosen snapshot timestamp on a (branch) transaction
  /// so every shard of a cross-shard statement reads the same cut. The
  /// coordinator holds the registry pin; the branch only carries the
  /// timestamp and never refreshes it per statement.
  void AdoptSnapshot(Transaction* txn, uint64_t ts);

  /// Prunes version chains across all tables down to the oldest live
  /// snapshot (or the current clock reading when none is live). Runs
  /// automatically every `kGcCommitInterval` commits; public for tests and
  /// idle-time maintenance. Returns versions pruned (also accumulated into
  /// stats().versions_pruned).
  size_t GcVersions();

  static constexpr uint64_t kGcCommitInterval = 64;

 private:
  Status ApplyUndo(Transaction* txn);
  /// True when this transaction's reads are served from the versioned heap.
  bool SnapshotReadsActive(const Transaction* txn) const {
    return options_.enable_mvcc_reads &&
           UsesSnapshotReads(txn->isolation_level());
  }
  /// Ensures the transaction has the snapshot its next read should use:
  /// kSnapshot keeps the Begin-time one; kReadCommitted takes a fresh cut
  /// per statement (suppressed mid-statement — open cursors — and for
  /// grounding reads after the first, which all share one cut; suppressed
  /// entirely for adopted coordinator snapshots).
  void MaybeRefreshSnapshot(Transaction* txn, bool grounding);
  /// Stamps every row this transaction wrote with one freshly allocated
  /// commit timestamp and publishes it (the [allocate, stamp, publish]
  /// window under the clock's commit mutex). No-op for read-only
  /// transactions.
  void StampWrites(Transaction* txn);
  /// Drops the transaction's registry pin, if it holds one.
  void ReleaseSnapshot(Transaction* txn);
  Status AcquireReadLocks(Transaction* txn, const Table* t, RowId rid);
  void ReleaseEarlyReadLocks(Transaction* txn, const Table* t, RowId rid);
  /// X-locks the index-key hashes a write touches (sorted for deterministic
  /// acquisition order).
  Status AcquireIndexKeyLocks(Transaction* txn, const Table* t,
                              std::vector<uint64_t> hashes);
  /// Key-range X locks on the Point() interval of every ordered-index key a
  /// write touches (sorted for deterministic order) — this is what makes a
  /// write conflict with concurrent range readers whose scanned interval
  /// contains the key, and pass freely otherwise.
  Status AcquireOrderedKeyLocks(Transaction* txn, const Table* t,
                                std::vector<std::pair<uint64_t, Row>> keys);
  /// Bumps the (plan kind, origin) cell of the access-path counters.
  void CountRead(const AccessPlan& plan, ReadOrigin origin);

  Database* db_;
  LockManager* locks_;
  WalWriter* wal_;  // may be nullptr (volatile mode)
  Options options_;
  std::atomic<TxnId> next_txn_id_{1};
  std::atomic<GroupId> next_group_id_{1};
  TxnStats stats_;
  SharedScanManager shared_scans_;
  // Commit clock + live-snapshot set: shared (Options) or privately owned.
  std::unique_ptr<VersionClock> owned_clock_;
  std::unique_ptr<SnapshotRegistry> owned_snapshots_;
  VersionClock* clock_;
  SnapshotRegistry* snapshots_;
  std::atomic<uint64_t> commits_since_gc_{0};
};

}  // namespace youtopia

#endif  // YOUTOPIA_TXN_TRANSACTION_MANAGER_H_
