#ifndef YOUTOPIA_TXN_TRANSACTION_MANAGER_H_
#define YOUTOPIA_TXN_TRANSACTION_MANAGER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/op_observer.h"
#include "src/common/statusor.h"
#include "src/lock/lock_manager.h"
#include "src/storage/database.h"
#include "src/txn/transaction.h"
#include "src/wal/wal_writer.h"

namespace youtopia {

/// Aggregate transaction counters (benches / tests). The access-path
/// counters make plan choices observable: every read routed through an
/// index bumps index_lookups / grounding_index_lookups, every full scan
/// bumps table_scans / grounding_scans, and every bind-driven join probe
/// bumps join_probes / grounding_join_probes (with *_cache_hits counting
/// per-binding keys the executor/grounder served from their probe caches
/// without re-entering the transaction manager).
struct TxnStats {
  std::atomic<uint64_t> begins{0};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> aborts{0};
  std::atomic<uint64_t> group_commits{0};
  std::atomic<uint64_t> index_lookups{0};
  std::atomic<uint64_t> table_scans{0};
  std::atomic<uint64_t> grounding_index_lookups{0};
  std::atomic<uint64_t> grounding_scans{0};
  std::atomic<uint64_t> join_probes{0};
  std::atomic<uint64_t> join_probe_cache_hits{0};
  std::atomic<uint64_t> grounding_join_probes{0};
  std::atomic<uint64_t> grounding_join_probe_cache_hits{0};
  std::atomic<uint64_t> range_lookups{0};
  std::atomic<uint64_t> grounding_range_lookups{0};
  std::atomic<uint64_t> range_join_probes{0};
  std::atomic<uint64_t> range_probe_cache_hits{0};
  std::atomic<uint64_t> grounding_range_probes{0};
  std::atomic<uint64_t> grounding_range_probe_cache_hits{0};
};

/// Classical ACID transaction manager over the in-memory engine:
/// Strict 2PL through the LockManager, redo-only WAL through WalWriter
/// (optional: pass nullptr for a volatile database), in-memory undo for live
/// rollback. Exposes the group-commit primitive and the ENTANGLE logging hook
/// that the entangled layer builds on.
class TransactionManager {
 public:
  struct Options {
    IsolationLevel default_isolation = IsolationLevel::kFullEntangled;
    int64_t lock_timeout_micros = 2'000'000;  ///< 2 s default lock wait
    OpObserver* observer = nullptr;           ///< optional schedule recorder
  };

  TransactionManager(Database* db, LockManager* locks, WalWriter* wal,
                     Options options);
  TransactionManager(Database* db, LockManager* locks, WalWriter* wal);

  Database* db() const { return db_; }
  LockManager* locks() const { return locks_; }
  TxnStats& stats() { return stats_; }
  void set_observer(OpObserver* obs) { options_.observer = obs; }
  OpObserver* observer() const { return options_.observer; }

  /// Starts a transaction at the given (or default) isolation level.
  std::unique_ptr<Transaction> Begin();
  std::unique_ptr<Transaction> Begin(IsolationLevel level);

  // --- Data operations (acquire locks, log, maintain undo). ---

  StatusOr<RowId> Insert(Transaction* txn, const std::string& table,
                         const Row& row);
  StatusOr<Row> Get(Transaction* txn, const std::string& table, RowId rid);
  Status Update(Transaction* txn, const std::string& table, RowId rid,
                const Row& row);
  Status Delete(Transaction* txn, const std::string& table, RowId rid);

  /// Full-table scan under a table S lock (serializable levels); the visitor
  /// returns false to stop. The table S lock is also the phantom-protection
  /// fallback for predicates no index covers.
  Status Scan(Transaction* txn, const std::string& table,
              const std::function<bool(RowId, const Row&)>& visitor);

  /// Visitor for indexed reads. The row is handed over by value — the
  /// lookup materializes its own copy out of the heap, so the visitor can
  /// move it instead of copying a second time (lambdas taking
  /// `const Row&` still bind, so both styles work at call sites).
  using RowVisitor = std::function<bool(RowId, Row&&)>;

  /// Indexed equality read: visits the rows whose `columns` projection
  /// equals `key` (RowId order), under row-granular locks instead of a table
  /// S lock. At serializable levels this takes table IS + S on the index-key
  /// hash (phantom protection for the equality predicate: any writer that
  /// inserts, deletes, or moves a row under this key takes X on the same
  /// hash) + S on each matched row. kReadCommitted releases the S locks at
  /// the end of the call; kReadUncommitted takes none. `key` must be coerced
  /// to the indexed columns' types (the planner does this).
  Status GetByIndex(Transaction* txn, const std::string& table,
                    const std::vector<size_t>& columns, const Row& key,
                    const RowVisitor& visitor);

  /// GetByIndex for write statements: X-locks the index key and every
  /// matched row (plus table IX) and returns the matched rows. UPDATE/DELETE
  /// with a covering index route here instead of LockTableForWrite, so
  /// writers on different keys no longer serialize on the table lock.
  StatusOr<std::vector<std::pair<RowId, Row>>> LockRowsForWrite(
      Transaction* txn, const std::string& table,
      const std::vector<size_t>& columns, const Row& key);

  /// Indexed range read: visits rows whose projection on `spec.columns`
  /// lies in `spec.range`, in index-key order (descending with
  /// `spec.reverse`), under key-range granularity instead of a table S
  /// lock. At serializable levels this takes table IS + key-range S on the
  /// scanned interval (phantom protection: any writer inserting, deleting,
  /// or moving a row whose ordered-index key falls inside the interval
  /// takes key-range X on that key's point interval) + S on each matched
  /// row. A fully unbounded range (ORDER BY service with no sargable
  /// bound) degrades to the table S lock — it covers the whole key space
  /// anyway. kReadCommitted releases the S locks at the end of the call.
  Status GetByIndexRange(Transaction* txn, const std::string& table,
                         const IndexRangeSpec& spec, const RowVisitor& visitor);

  /// GetByIndexRange recorded as a grounding read (R^G) and counted as a
  /// grounding_range_lookup — the grounder's eager range-filtered atoms.
  Status GetByIndexRangeForGrounding(Transaction* txn, Table* t,
                                     const IndexRangeSpec& spec,
                                     const RowVisitor& visitor);

  /// Per-binding range probe for bind-driven joins whose join predicate is
  /// an inequality (`inner.col > outer.col`): same locking as
  /// GetByIndexRange, counted as a range_join_probe. The key-range S lock
  /// replaces PR 2's per-key predicate hash for these probes.
  Status ProbeJoinRange(Transaction* txn, Table* t, const IndexRangeSpec& spec,
                        const RowVisitor& visitor);

  /// ProbeJoinRange recorded as a grounding read (R^G).
  Status ProbeJoinRangeForGrounding(Transaction* txn, Table* t,
                                    const IndexRangeSpec& spec,
                                    const RowVisitor& visitor);

  /// GetByIndexRange for write statements: X-locks the scanned interval and
  /// every matched row (plus table IX) up front and returns the matched
  /// rows. Range-covered UPDATE/DELETE route here instead of
  /// LockTableForWrite — X row locks are taken before any read, so the
  /// scan-then-upgrade (S->X) deadlock between range writers cannot occur.
  StatusOr<std::vector<std::pair<RowId, Row>>> LockRowsForWriteRange(
      Transaction* txn, const std::string& table, const IndexRangeSpec& spec);

  /// Takes a table-level X lock up front (UPDATE/DELETE statements lock the
  /// whole table before scanning, avoiding S->X upgrade deadlocks between
  /// writers).
  Status LockTableForWrite(Transaction* txn, const std::string& table);

  /// Like Scan but recorded as a *grounding* read (R^G); used by the
  /// entangled-query grounder so the isolation recorder can derive
  /// quasi-reads.
  Status ScanForGrounding(Transaction* txn, const std::string& table,
                          const std::function<bool(RowId, const Row&)>& visitor);

  /// Indexed grounding read (constant atom positions are equality keys).
  /// Locking mirrors GetByIndex; the schedule observer still records a
  /// table-granular R^G, keeping the recorded schedule conservative.
  Status LookupForGrounding(
      Transaction* txn, const std::string& table,
      const std::vector<size_t>& columns, const Row& key,
      const RowVisitor& visitor);

  /// Per-binding probe for bind-driven index nested-loop joins: same
  /// locking and visiting as GetByIndex, but counted as a join_probe and
  /// addressed by Table* so the per-binding hot path skips the catalog name
  /// lookup. Re-entrant under locks the transaction already holds (repeat
  /// acquisitions merge in the lock manager); callers avoid re-locking the
  /// same key per probe by caching probe results per bound key.
  Status ProbeJoin(Transaction* txn, Table* t,
                   const std::vector<size_t>& columns, const Row& key,
                   const RowVisitor& visitor);

  /// ProbeJoin recorded as a grounding read (R^G) and counted as a
  /// grounding_join_probe — the grounder's bind-driven atom fetches.
  Status ProbeJoinForGrounding(Transaction* txn, Table* t,
                               const std::vector<size_t>& columns,
                               const Row& key, const RowVisitor& visitor);

  // --- Termination. ---

  Status Commit(Transaction* txn);
  Status Abort(Transaction* txn);

  /// Atomically commits a set of entangled transactions: per-member COMMIT
  /// records, then one GROUP_COMMIT record, then a single flush. Durability
  /// of every member hinges on the group record (entanglement-aware
  /// recovery).
  Status CommitGroup(const std::vector<Transaction*>& members);

  /// Logs an ENTANGLE record (and marks the members). Called by the
  /// entangled-query evaluator when an entanglement operation succeeds.
  Status LogEntangle(EntanglementId eid, const std::vector<Transaction*>& members);

  // --- DDL (system transaction 0, autocommitted). ---

  /// Creates the table; a schema with primary-key columns gets a unique
  /// index over them automatically (inside the Table constructor).
  StatusOr<Table*> CreateTable(const std::string& name, const Schema& schema);

  /// Builds a secondary index (hash by default; `ordered` builds a B-tree
  /// enabling range access; `unique` enforces key uniqueness, NULL keys
  /// exempt) and WAL-logs it so recovery rebuilds it.
  Status CreateIndex(const std::string& table,
                     const std::vector<std::string>& columns,
                     bool unique = false, bool ordered = false);

  /// Writes a checkpoint image to `checkpoint_path` and truncates the WAL.
  /// Callers must quiesce transactions first.
  Status Checkpoint(const std::string& checkpoint_path);

 private:
  Status ApplyUndo(Transaction* txn);
  Status AcquireReadLocks(Transaction* txn, const Table* t, RowId rid);
  void ReleaseEarlyReadLocks(Transaction* txn, const Table* t, RowId rid);
  /// X-locks the index-key hashes a write touches (sorted for deterministic
  /// acquisition order).
  Status AcquireIndexKeyLocks(Transaction* txn, const Table* t,
                              std::vector<uint64_t> hashes);
  /// Key-range X locks on the Point() interval of every ordered-index key a
  /// write touches (sorted for deterministic order) — this is what makes a
  /// write conflict with concurrent range readers whose scanned interval
  /// contains the key, and pass freely otherwise.
  Status AcquireOrderedKeyLocks(Transaction* txn, const Table* t,
                                std::vector<std::pair<uint64_t, Row>> keys);
  /// How an indexed read is counted and observed.
  enum class IndexedReadKind { kLookup, kGroundingLookup, kJoinProbe,
                               kGroundingJoinProbe, kRangeLookup,
                               kGroundingRangeLookup, kRangeJoinProbe,
                               kGroundingRangeProbe };
  /// Shared lookup core for GetByIndex / LookupForGrounding / ProbeJoin*.
  Status IndexedRead(Transaction* txn, Table* t,
                     const std::vector<size_t>& columns, const Row& key,
                     IndexedReadKind kind, const RowVisitor& visitor);
  /// Shared range-read core for GetByIndexRange* / ProbeJoinRange*.
  Status IndexedRangeRead(Transaction* txn, Table* t,
                          const IndexRangeSpec& spec, IndexedReadKind kind,
                          const RowVisitor& visitor);

  Database* db_;
  LockManager* locks_;
  WalWriter* wal_;  // may be nullptr (volatile mode)
  Options options_;
  std::atomic<TxnId> next_txn_id_{1};
  std::atomic<GroupId> next_group_id_{1};
  TxnStats stats_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_TXN_TRANSACTION_MANAGER_H_
