#include "src/txn/txn_engine.h"

namespace youtopia {

StatusOr<AggregateGroups> TxnEngine::AggregateTable(Transaction* txn, Table* t,
                                                    AccessPlan plan,
                                                    const AggregateSpec& spec,
                                                    ReadOrigin origin) {
  // The generic fold: one cursor, one aggregator, batch-at-a-time. On a
  // sharded engine this is the *row-shipping* path — OpenCursor fans out
  // and every surviving row crosses the shard boundary before folding.
  YT_ASSIGN_OR_RETURN(auto cursor,
                      OpenCursor(txn, t, std::move(plan), origin));
  Aggregator agg(spec);
  RowBatch batch;
  while (true) {
    YT_ASSIGN_OR_RETURN(bool more, cursor->NextBatch(&batch));
    if (!more) break;
    for (const auto& [rid, row] : batch.rows) agg.Accumulate(row);
  }
  YT_RETURN_IF_ERROR(agg.Finish());
  return agg.TakeGroups();
}

}  // namespace youtopia
