#ifndef YOUTOPIA_TXN_TXN_ENGINE_H_
#define YOUTOPIA_TXN_TXN_ENGINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/ids.h"
#include "src/common/statusor.h"
#include "src/storage/aggregate.h"
#include "src/storage/cursor.h"
#include "src/storage/database.h"
#include "src/txn/transaction.h"

namespace youtopia {

/// Aggregate transaction counters (benches / tests). The access-path
/// counters make plan choices observable: every read routed through an
/// index bumps index_lookups / grounding_index_lookups, every full scan
/// bumps table_scans / grounding_scans, and every bind-driven join probe
/// bumps join_probes / grounding_join_probes (with *_cache_hits counting
/// per-binding keys the executor/grounder served from their probe caches
/// without re-entering the transaction manager). shared_scan_leads /
/// shared_scan_attaches make scan sharing observable: every heap-scan
/// cursor either leads a fresh shared scan or attaches to an in-flight one.
/// The shard counters make routing and commit protocol choices observable:
/// a shard::Router bumps shard_routed_lookups for every plan pinned to one
/// shard, fanout_cursors for every plan fanned out across all shards, and
/// exactly one of single_shard_txns / two_phase_commits per commit
/// operation; `prepares` counts kPrepare WAL records written by a
/// participant transaction manager (zero on the one-phase fast path).
struct TxnStats {
  std::atomic<uint64_t> begins{0};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> aborts{0};
  std::atomic<uint64_t> group_commits{0};
  std::atomic<uint64_t> index_lookups{0};
  std::atomic<uint64_t> table_scans{0};
  std::atomic<uint64_t> grounding_index_lookups{0};
  std::atomic<uint64_t> grounding_scans{0};
  std::atomic<uint64_t> join_probes{0};
  std::atomic<uint64_t> join_probe_cache_hits{0};
  std::atomic<uint64_t> grounding_join_probes{0};
  std::atomic<uint64_t> grounding_join_probe_cache_hits{0};
  std::atomic<uint64_t> range_lookups{0};
  std::atomic<uint64_t> grounding_range_lookups{0};
  std::atomic<uint64_t> range_join_probes{0};
  std::atomic<uint64_t> range_probe_cache_hits{0};
  std::atomic<uint64_t> grounding_range_probes{0};
  std::atomic<uint64_t> grounding_range_probe_cache_hits{0};
  std::atomic<uint64_t> shared_scan_leads{0};
  std::atomic<uint64_t> shared_scan_attaches{0};
  std::atomic<uint64_t> single_shard_txns{0};
  std::atomic<uint64_t> two_phase_commits{0};
  std::atomic<uint64_t> fanout_cursors{0};
  std::atomic<uint64_t> shard_routed_lookups{0};
  std::atomic<uint64_t> prepares{0};
  /// AggregateTable calls a sharded engine answered by folding partial
  /// states inside the per-shard drain threads instead of shipping rows to
  /// the coordinator.
  std::atomic<uint64_t> aggregate_pushdowns{0};
  /// MVCC observability: committed versions pushed onto chains by
  /// first-writes, versions dropped by GC, and reads served from the
  /// versioned heap without taking any lock (one count per snapshot-served
  /// cursor/get).
  std::atomic<uint64_t> versions_created{0};
  std::atomic<uint64_t> versions_pruned{0};
  std::atomic<uint64_t> snapshot_reads{0};
  /// Physical WAL flushes (one per group-commit batch, not per committer).
  /// With group commit, wal_flushes << commits under concurrency; read-only
  /// commits contribute zero (they write no commit record at all). On a
  /// shard::Router this aggregates every shard WAL plus the coordinator
  /// decision log.
  std::atomic<uint64_t> wal_flushes{0};
};

/// How a read is counted and recorded by the schedule observer — the one
/// axis that used to distinguish the `*ForGrounding` twins. kStatement and
/// kJoin record ordinary reads (R); kGrounding and kGroundingJoin record
/// grounding reads (R^G, table-granular, keeping the recorded schedule
/// conservative). The join origins additionally count as per-binding
/// probes instead of statement lookups.
enum class ReadOrigin { kStatement, kGrounding, kJoin, kGroundingJoin };

/// The transactional engine seam the SQL executor, the entangled-query
/// grounder, and the entangled transaction engine are written against.
/// Two implementations exist:
///   * TransactionManager — the single-node engine (one Database, one
///     LockManager, one WAL);
///   * shard::Router — the hash-partitioned engine, which routes the same
///     vocabulary across N per-shard TransactionManagers and runs
///     two-phase commit when a transaction wrote on more than one shard.
/// `db()` is the *catalog view*: every table's schema and index set is
/// visible there, and the Table pointers it hands out are valid arguments
/// to OpenCursor — but partitioned implementations do NOT keep every row in
/// it, so reads must go through the engine, never through Table::Scan
/// directly.
class TxnEngine {
 public:
  virtual ~TxnEngine() = default;

  virtual Database* db() const = 0;
  virtual TxnStats& stats() = 0;

  virtual std::unique_ptr<Transaction> Begin() = 0;
  virtual std::unique_ptr<Transaction> Begin(IsolationLevel level) = 0;

  /// Ablation switch for the versioned read path: when disabled, the
  /// snapshot-read levels (kReadCommitted, kSnapshot) fall back to locking
  /// reads and behave exactly as before MVCC. Writes always maintain
  /// version chains either way. Partitioned engines fan the switch out to
  /// every shard.
  virtual void set_mvcc_reads_enabled(bool enabled) = 0;
  virtual bool mvcc_reads_enabled() const = 0;

  // --- Data operations. ---

  virtual StatusOr<RowId> Insert(Transaction* txn, const std::string& table,
                                 const Row& row) = 0;
  virtual StatusOr<Row> Get(Transaction* txn, const std::string& table,
                            RowId rid) = 0;
  virtual Status Update(Transaction* txn, const std::string& table, RowId rid,
                        const Row& row) = 0;
  virtual Status Delete(Transaction* txn, const std::string& table,
                        RowId rid) = 0;

  /// Direct (non-transactional, unlocked, unlogged) row load for workload
  /// builders — setup is never part of a measurement. Partitioned engines
  /// route the row to its owning shard(s).
  virtual Status Load(const std::string& table, const Row& row) = 0;

  // --- The unified read path. ---

  /// Opens a pull cursor for `plan` over `t` — the one seam every read
  /// access path goes through. `t` must come from this engine's `db()`
  /// catalog view. See TransactionManager::OpenCursor for the lock
  /// protocol; shard::Router additionally routes the plan to one shard or
  /// fans it out across all of them behind a MergedCursor.
  virtual StatusOr<std::unique_ptr<TableCursor>> OpenCursor(
      Transaction* txn, Table* t, AccessPlan plan, ReadOrigin origin) = 0;

  /// Name-addressed convenience overload (resolves through `db()`).
  StatusOr<std::unique_ptr<TableCursor>> OpenCursor(Transaction* txn,
                                                    const std::string& table,
                                                    AccessPlan plan,
                                                    ReadOrigin origin) {
    YT_ASSIGN_OR_RETURN(Table * t, db()->GetTable(table));
    return OpenCursor(txn, t, std::move(plan), origin);
  }

  // --- Aggregation over one read. ---

  /// Folds `spec` over the rows `plan` selects from `t` and returns the
  /// merged group states (finalize with Aggregator::Finalize). Takes the
  /// same locks as OpenCursor(plan) — an aggregate read is a read. The
  /// base implementation drains a cursor batch-at-a-time through one
  /// Aggregator; shard::Router overrides it to fold per-shard partials
  /// inside the fan-out drain threads and merge them at the coordinator,
  /// so only group states — not rows — cross the shard boundary.
  virtual StatusOr<AggregateGroups> AggregateTable(Transaction* txn, Table* t,
                                                   AccessPlan plan,
                                                   const AggregateSpec& spec,
                                                   ReadOrigin origin);

  /// Name-addressed convenience overload (resolves through `db()`).
  StatusOr<AggregateGroups> AggregateTable(Transaction* txn,
                                           const std::string& table,
                                           AccessPlan plan,
                                           const AggregateSpec& spec,
                                           ReadOrigin origin) {
    YT_ASSIGN_OR_RETURN(Table * t, db()->GetTable(table));
    return AggregateTable(txn, t, std::move(plan), spec, origin);
  }

  // --- Write-statement candidate acquisition (X locks before reads). ---

  /// Indexed equality candidates for a write statement: X-locks the index
  /// key and every matched row (plus table IX) and returns the matched
  /// rows.
  virtual StatusOr<std::vector<std::pair<RowId, Row>>> LockRowsForWrite(
      Transaction* txn, const std::string& table,
      const std::vector<size_t>& columns, const Row& key) = 0;

  /// Range candidates for a write statement: X-locks the scanned interval
  /// and every matched row (plus table IX) up front and returns the matched
  /// rows.
  virtual StatusOr<std::vector<std::pair<RowId, Row>>> LockRowsForWriteRange(
      Transaction* txn, const std::string& table,
      const IndexRangeSpec& spec) = 0;

  /// Takes a table-level X lock up front (UPDATE/DELETE statements lock the
  /// whole table before scanning, avoiding S->X upgrade deadlocks between
  /// writers).
  virtual Status LockTableForWrite(Transaction* txn,
                                   const std::string& table) = 0;

  /// The uncovered-predicate write fallback: table X lock(s) up front, then
  /// every row of the table — the one way a write statement may see the
  /// whole heap (partitioned engines collect across all shards).
  virtual StatusOr<std::vector<std::pair<RowId, Row>>>
  LockTableAndCollectForWrite(Transaction* txn, const std::string& table) = 0;

  // --- Termination. ---

  virtual Status Commit(Transaction* txn) = 0;
  virtual Status Abort(Transaction* txn) = 0;

  /// Atomically commits a set of entangled transactions (durability of
  /// every member hinges on one record: GROUP_COMMIT on a single node, the
  /// coordinator's commit decision under cross-shard 2PC).
  virtual Status CommitGroup(const std::vector<Transaction*>& members) = 0;

  /// Logs an ENTANGLE record (and marks the members). Called by the
  /// entangled-query evaluator when an entanglement operation succeeds.
  virtual Status LogEntangle(EntanglementId eid,
                             const std::vector<Transaction*>& members) = 0;

  // --- DDL (system transaction 0, autocommitted). ---

  virtual StatusOr<Table*> CreateTable(const std::string& name,
                                       const Schema& schema) = 0;
  virtual Status CreateIndex(const std::string& table,
                             const std::vector<std::string>& columns,
                             bool unique = false, bool ordered = false) = 0;

  // --- Convenience wrappers over OpenCursor (drain-through-visitor). ---

  /// Visitor for indexed reads. The row is handed over by value — the
  /// cursor materializes its own copy, so the visitor can move it instead
  /// of copying a second time (lambdas taking `const Row&` still bind, so
  /// both styles work at call sites).
  using RowVisitor = std::function<bool(RowId, Row&&)>;

  /// Full-table scan under a table S lock (serializable levels); the
  /// visitor returns false to stop.
  Status Scan(Transaction* txn, const std::string& table,
              const std::function<bool(RowId, const Row&)>& visitor) {
    YT_ASSIGN_OR_RETURN(auto cursor,
                        OpenCursor(txn, table, AccessPlan::TableScan(),
                                   ReadOrigin::kStatement));
    return cursor->DrainRef(visitor);
  }

  /// Like Scan but recorded as a *grounding* read (R^G); used by the
  /// entangled-query grounder so the isolation recorder can derive
  /// quasi-reads.
  Status ScanForGrounding(
      Transaction* txn, const std::string& table,
      const std::function<bool(RowId, const Row&)>& visitor) {
    YT_ASSIGN_OR_RETURN(auto cursor,
                        OpenCursor(txn, table, AccessPlan::TableScan(),
                                   ReadOrigin::kGrounding));
    return cursor->DrainRef(visitor);
  }

  /// Indexed equality read: visits the rows whose `columns` projection
  /// equals `key` (RowId order). `key` must be coerced to the indexed
  /// columns' types (the planner does this).
  Status GetByIndex(Transaction* txn, const std::string& table,
                    const std::vector<size_t>& columns, const Row& key,
                    const RowVisitor& visitor) {
    YT_ASSIGN_OR_RETURN(auto cursor,
                        OpenCursor(txn, table, AccessPlan::Lookup(columns, key),
                                   ReadOrigin::kStatement));
    return cursor->Drain(visitor);
  }

  /// Indexed range read: visits rows whose projection on `spec.columns`
  /// lies in `spec.range`, in index-key order (descending with
  /// `spec.reverse`).
  Status GetByIndexRange(Transaction* txn, const std::string& table,
                         const IndexRangeSpec& spec,
                         const RowVisitor& visitor) {
    YT_ASSIGN_OR_RETURN(auto cursor,
                        OpenCursor(txn, table, AccessPlan::Range(spec),
                                   ReadOrigin::kStatement));
    return cursor->Drain(visitor);
  }
};

}  // namespace youtopia

#endif  // YOUTOPIA_TXN_TXN_ENGINE_H_
