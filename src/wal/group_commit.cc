#include "src/wal/group_commit.h"

#include <algorithm>
#include <chrono>

#include "src/common/clock.h"
#include "src/common/fault.h"
#include "src/common/metrics.h"
#include "src/wal/wal_writer.h"

namespace youtopia {

namespace {

/// The park-work hook is per serving thread: a SessionServer worker installs
/// its own closure on entry and clears it on exit, so a follower blocked in
/// WaitForDurable on THIS thread can drive other sessions of the same server.
thread_local std::function<bool()>* tls_park_work = nullptr;

struct GroupCommitMetricHandles {
  Histogram* wait_micros;     ///< full WaitForDurable (ticket to resolution)
  Histogram* batch_records;   ///< LSNs covered per leader flush
  Histogram* linger_micros;   ///< pacing leader's linger before flushing
};

const GroupCommitMetricHandles& GcMetrics() {
  static const GroupCommitMetricHandles h = [] {
    MetricsRegistry* r = MetricsRegistry::Global();
    return GroupCommitMetricHandles{
        r->histogram("wal.group_commit_wait_micros"),
        r->histogram("wal.batch_records"),
        r->histogram("wal.leader_linger_micros")};
  }();
  return h;
}

/// Times one WaitForDurable call end to end: flush-wait attribution for the
/// calling statement plus the wait histogram and (when a trace is active) a
/// "wal.group_commit_wait" span. Declared before the queue mutex so the
/// destructor runs unlocked.
class FlushWaitRecorder {
 public:
  FlushWaitRecorder() {
    if (metrics_enabled()) start_ = SystemClock::Default()->NowMicros();
  }
  ~FlushWaitRecorder() {
    if (start_ < 0) return;
    const int64_t waited = SystemClock::Default()->NowMicros() - start_;
    CurrentThreadOpStats().flush_wait_micros += waited;
    GcMetrics().wait_micros->Record(waited);
    TraceContext& ctx = CurrentTraceContext();
    if (ctx.trace_id != 0) {
      Tracer::Span span;
      span.trace_id = ctx.trace_id;
      span.parent_id = ctx.span_id;
      span.span_id = Tracer::Global()->NewSpanId();
      span.name = "wal.group_commit_wait";
      span.start_micros = start_;
      span.duration_micros = waited;
      Tracer::Global()->Record(std::move(span));
    }
  }

 private:
  int64_t start_ = -1;
};

}  // namespace

void GroupCommitQueue::SetThreadParkWork(std::function<bool()>* work) {
  tls_park_work = work;
}

void GroupCommitQueue::ResetHorizon() {
  {
    std::lock_guard<std::mutex> g(mu_);
    ++epoch_;
    durable_lsn_ = 0;
    failed_lsn_ = 0;
    failed_status_ = Status::Ok();
  }
  cv_.notify_all();  // stale-epoch tickets resolve immediately
}

Status GroupCommitQueue::FlushBatch() {
  FaultInjector* fi = FaultInjector::Global();
  if (fi->enabled()) {
    if (fi->crashed()) {
      return Status::Internal("WAL frozen by simulated crash at " +
                              fi->crash_site());
    }
    YT_RETURN_IF_ERROR(fi->Hit("wal.group_flush"));
  }
  return wal_->Flush();
}

Status GroupCommitQueue::WaitForDurable(uint64_t lsn) {
  waits_.fetch_add(1, std::memory_order_relaxed);
  FlushWaitRecorder wait_recorder;
  std::function<bool()>* park = tls_park_work;
  std::unique_lock<std::mutex> g(mu_);
  const uint64_t entry_epoch = epoch_;
  ++waiters_;
  cv_.notify_all();  // a pacing leader counts waiters toward its batch
  for (;;) {
    // Epoch first: a re-anchor (decision-log GC rewrite, recovery reopen)
    // happened while we waited. Our LSN means nothing in the new sequence
    // and no future flush can cover it — but the re-anchor contract says
    // the old log was made durable before the reset, so the ticket IS
    // durable. Waiting any longer would hang forever against a horizon
    // that restarted below us.
    if (epoch_ != entry_epoch) {
      --waiters_;
      return Status::Ok();
    }
    // Failure next: if a flush attempt covered our LSN and failed, our
    // durability is unknowable — report it even if a later retry succeeded
    // (conservative: the caller never acked, recovery replays or drops).
    if (lsn <= failed_lsn_) {
      --waiters_;
      return failed_status_;
    }
    if (lsn <= durable_lsn_) {
      --waiters_;
      return Status::Ok();
    }
    if (!leader_active_) {
      // Leader election: first un-durable waiter with no flush in flight.
      leader_active_ = true;
      int64_t delay = max_delay_micros_.load(std::memory_order_relaxed);
      bool lost_leadership = false;
      int64_t linger_start = -1;
      if (delay > 0) {
        if (metrics_enabled()) {
          linger_start = SystemClock::Default()->NowMicros();
        }
        // Pacing: linger so concurrent committers can append and enqueue —
        // their records ride this flush instead of forcing their own. The
        // lingering leader is idle capacity: run park work while waiting —
        // but a parked statement may block indefinitely on ANOTHER queue's
        // flush, and a blocked thread must never hold this queue's flush
        // token (two queues whose leaders park into each other would
        // deadlock). So hand leadership back before parking and re-elect
        // after; if another waiter took over meanwhile, fall back to the
        // outer loop and follow them.
        auto deadline =
            std::chrono::steady_clock::now() + std::chrono::microseconds(delay);
        uint64_t batch = max_batch_.load(std::memory_order_relaxed);
        while (waiters_ < batch && std::chrono::steady_clock::now() < deadline) {
          if (park != nullptr && *park) {
            leader_active_ = false;
            cv_.notify_all();
            g.unlock();
            bool did_work = (*park)();
            g.lock();
            if (lsn <= failed_lsn_ || lsn <= durable_lsn_ || leader_active_ ||
                epoch_ != entry_epoch) {
              lost_leadership = true;
              break;
            }
            leader_active_ = true;
            if (did_work) continue;
          }
          cv_.wait_until(g, deadline);
        }
      }
      if (lost_leadership) continue;  // outer loop rechecks our ticket
      if (linger_start >= 0) {
        GcMetrics().linger_micros->Record(
            SystemClock::Default()->NowMicros() - linger_start);
      }
      // Everything appended up to here is in the stdio buffer; one flush
      // covers it all. Read the target before unlocking so we never claim
      // durability for records appended during the flush itself.
      uint64_t target = wal_->last_lsn();
      const uint64_t flush_epoch = epoch_;
      g.unlock();
      Status st = FlushBatch();
      g.lock();
      leader_active_ = false;
      batches_.fetch_add(1, std::memory_order_relaxed);
      if (epoch_ == flush_epoch) {
        // A re-anchor during the flush makes `target` meaningless in the
        // new LSN sequence — recording it would mark unflushed new-epoch
        // records durable. Discard; stale tickets resolve via the epoch.
        if (st.ok()) {
          if (metrics_enabled() && target > durable_lsn_) {
            GcMetrics().batch_records->Record(
                static_cast<int64_t>(target - durable_lsn_));
          }
          durable_lsn_ = std::max(durable_lsn_, target);
        } else {
          failed_lsn_ = std::max(failed_lsn_, target);
          failed_status_ = st;
        }
      }
      cv_.notify_all();
      continue;  // loop re-checks durable/failed for our own ticket
    }
    // Follower: park the ticket, not the thread. If the serving layer
    // installed park work, run another session's statement; otherwise (or
    // when no work is ready) sleep briefly. The bounded wait doubles as a
    // safety net against a wedged leader under the crash latch.
    if (park != nullptr && *park) {
      g.unlock();
      bool did_work = (*park)();
      g.lock();
      if (did_work) continue;
    }
    cv_.wait_for(g, std::chrono::milliseconds(1));
  }
}

}  // namespace youtopia
