#ifndef YOUTOPIA_WAL_GROUP_COMMIT_H_
#define YOUTOPIA_WAL_GROUP_COMMIT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

#include "src/common/status.h"

namespace youtopia {

class WalWriter;

/// Group-commit queue for one WalWriter: committers append their records,
/// enqueue their end-LSN, and block on a ticket; whoever arrives while no
/// flush is in flight becomes the leader, performs ONE flush covering every
/// record appended so far, and wakes everyone at-or-below the flushed LSN.
/// Followers that pile up during a flush share the next one — batching is
/// driven by contention, so the idle-path latency stays one flush deep.
///
/// Pacing knobs: `set_max_batch_delay_micros` makes the leader linger that
/// long (or until `max_batch_size` tickets queue up) before flushing, trading
/// latency for larger batches. The default delay is 0: no waiting, natural
/// batching only.
///
/// Park-don't-block: a serving thread (sql::SessionServer) can install a
/// thread-local park-work hook. A follower whose ticket is not yet durable
/// runs the hook — e.g. executes another session's statement — instead of
/// sleeping on the condition variable, and a PACING leader does the same
/// while it lingers, so one thread keeps many sessions moving while their
/// commits ride the same fsync. Parked work may itself commit, possibly on a
/// different queue, and block there — so a thread NEVER holds leadership
/// while parked: the lingering leader hands the token back before running
/// the hook and re-elects (or follows the new leader) afterwards. A blocked
/// thread holding the flush token is the one shape that deadlocks.
///
/// Failure semantics: a failed batch flush (including the injected
/// "wal.group_flush" fault site) marks every LSN the attempt covered as
/// failed — those waiters get the error, since their durability is unknowable
/// — but later appends may still succeed. Commit paths escalate a failed
/// commit-record flush to FaultInjector::ForceCrash, same as before. Once the
/// crash latch is set, waiters drain with an error instead of hanging.
class GroupCommitQueue {
 public:
  explicit GroupCommitQueue(WalWriter* wal) : wal_(wal) {}

  GroupCommitQueue(const GroupCommitQueue&) = delete;
  GroupCommitQueue& operator=(const GroupCommitQueue&) = delete;

  /// Blocks until every record with LSN <= `lsn` is durably flushed (or the
  /// flush that covered `lsn` failed). The calling thread may be elected
  /// leader and perform the flush itself.
  Status WaitForDurable(uint64_t lsn);

  /// Forgets everything flushed so far and opens a new ticket epoch. MUST be
  /// called whenever the log's LSN sequence is re-anchored (truncation, GC
  /// rewrite, recovery reopen): a regressed LSN must never test at-or-below
  /// a stale durable horizon. Contract for callers with waiters in flight
  /// (decision-log GC): the OLD log must be made durable before the
  /// re-anchor — stale-epoch tickets are released as durable, because their
  /// LSNs mean nothing in the new sequence and can never be flushed again.
  void ResetHorizon();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void set_max_batch_delay_micros(int64_t micros) {
    max_delay_micros_.store(micros, std::memory_order_relaxed);
  }
  int64_t max_batch_delay_micros() const {
    return max_delay_micros_.load(std::memory_order_relaxed);
  }
  void set_max_batch_size(uint64_t n) {
    max_batch_.store(n, std::memory_order_relaxed);
  }

  /// Leader flushes performed / tickets served — batching visibility
  /// (batches() << waits() means the fsync is being shared).
  uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  uint64_t waits() const { return waits_.load(std::memory_order_relaxed); }

  /// Installs (or clears, with nullptr) the calling thread's park-work hook.
  /// The hook should run one unit of useful work and return true, or return
  /// false immediately when none is available. It is invoked without any
  /// queue lock held and may itself commit (re-entering WaitForDurable).
  static void SetThreadParkWork(std::function<bool()>* work);

 private:
  Status FlushBatch();

  WalWriter* wal_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t durable_lsn_ = 0;  ///< everything at-or-below is on disk
  uint64_t failed_lsn_ = 0;   ///< highest LSN covered by a failed flush
  Status failed_status_ = Status::Ok();
  uint64_t epoch_ = 0;  ///< bumped by ResetHorizon; horizons don't cross it
  bool leader_active_ = false;  ///< a leader is lingering or flushing
  uint64_t waiters_ = 0;
  std::atomic<bool> enabled_{true};
  std::atomic<int64_t> max_delay_micros_{0};
  std::atomic<uint64_t> max_batch_{64};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> waits_{0};
};

}  // namespace youtopia

#endif  // YOUTOPIA_WAL_GROUP_COMMIT_H_
