#include "src/wal/log_record.h"

#include "src/common/serde.h"
#include "src/common/strings.h"

namespace youtopia {

const char* WalRecordTypeName(WalRecordType t) {
  switch (t) {
    case WalRecordType::kBegin: return "BEGIN";
    case WalRecordType::kInsert: return "INSERT";
    case WalRecordType::kUpdate: return "UPDATE";
    case WalRecordType::kDelete: return "DELETE";
    case WalRecordType::kCommit: return "COMMIT";
    case WalRecordType::kAbort: return "ABORT";
    case WalRecordType::kEntangle: return "ENTANGLE";
    case WalRecordType::kGroupCommit: return "GROUP_COMMIT";
    case WalRecordType::kCreateTable: return "CREATE_TABLE";
    case WalRecordType::kCheckpointRef: return "CHECKPOINT_REF";
    case WalRecordType::kCreateIndex: return "CREATE_INDEX";
    case WalRecordType::kPrepare: return "PREPARE";
    case WalRecordType::kCommitDecision: return "COMMIT_DECISION";
  }
  return "?";
}

WalRecord WalRecord::Begin(TxnId txn) {
  WalRecord r;
  r.type = WalRecordType::kBegin;
  r.txn = txn;
  return r;
}

WalRecord WalRecord::Insert(TxnId txn, std::string table, RowId rid,
                            Row after) {
  WalRecord r;
  r.type = WalRecordType::kInsert;
  r.txn = txn;
  r.table = std::move(table);
  r.row_id = rid;
  r.after = std::move(after);
  return r;
}

WalRecord WalRecord::Update(TxnId txn, std::string table, RowId rid,
                            Row before, Row after) {
  WalRecord r;
  r.type = WalRecordType::kUpdate;
  r.txn = txn;
  r.table = std::move(table);
  r.row_id = rid;
  r.before = std::move(before);
  r.after = std::move(after);
  return r;
}

WalRecord WalRecord::Delete(TxnId txn, std::string table, RowId rid,
                            Row before) {
  WalRecord r;
  r.type = WalRecordType::kDelete;
  r.txn = txn;
  r.table = std::move(table);
  r.row_id = rid;
  r.before = std::move(before);
  return r;
}

WalRecord WalRecord::Commit(TxnId txn) {
  WalRecord r;
  r.type = WalRecordType::kCommit;
  r.txn = txn;
  return r;
}

WalRecord WalRecord::Abort(TxnId txn) {
  WalRecord r;
  r.type = WalRecordType::kAbort;
  r.txn = txn;
  return r;
}

WalRecord WalRecord::Entangle(EntanglementId eid, std::vector<TxnId> members) {
  WalRecord r;
  r.type = WalRecordType::kEntangle;
  r.eid = eid;
  r.members = std::move(members);
  return r;
}

WalRecord WalRecord::GroupCommit(GroupId group, std::vector<TxnId> members) {
  WalRecord r;
  r.type = WalRecordType::kGroupCommit;
  r.group = group;
  r.members = std::move(members);
  return r;
}

WalRecord WalRecord::Prepare(TxnId txn, GroupId gtid) {
  WalRecord r;
  r.type = WalRecordType::kPrepare;
  r.txn = txn;
  r.group = gtid;
  return r;
}

WalRecord WalRecord::CommitDecision(TxnId txn, GroupId gtid) {
  WalRecord r;
  r.type = WalRecordType::kCommitDecision;
  r.txn = txn;
  r.group = gtid;
  return r;
}

WalRecord WalRecord::CreateTable(std::string table, Schema schema) {
  WalRecord r;
  r.type = WalRecordType::kCreateTable;
  r.table = std::move(table);
  r.schema = std::move(schema);
  return r;
}

WalRecord WalRecord::CreateIndex(std::string table,
                                 const std::vector<std::string>& columns,
                                 bool unique, bool ordered) {
  WalRecord r;
  r.type = WalRecordType::kCreateIndex;
  r.table = std::move(table);
  r.aux = Join(columns, ",");
  std::vector<std::string> flags;
  if (unique) flags.push_back("unique");
  if (ordered) flags.push_back("ordered");
  if (!flags.empty()) r.aux += "|" + Join(flags, ",");
  return r;
}

std::vector<std::string> WalRecord::IndexColumns() const {
  return Split(Split(aux, '|').front(), ',');
}

bool WalRecord::IndexUnique() const {
  std::vector<std::string> parts = Split(aux, '|');
  return parts.size() > 1 && parts[1].find("unique") != std::string::npos;
}

bool WalRecord::IndexOrdered() const {
  std::vector<std::string> parts = Split(aux, '|');
  return parts.size() > 1 && parts[1].find("ordered") != std::string::npos;
}

WalRecord WalRecord::CheckpointRef(std::string path,
                                   uint64_t lsn_at_checkpoint) {
  WalRecord r;
  r.type = WalRecordType::kCheckpointRef;
  r.aux = std::move(path);
  r.lsn = lsn_at_checkpoint;
  return r;
}

void WalRecord::EncodeTo(std::string* dst) const {
  EncodeU64(dst, lsn);
  EncodeU8(dst, static_cast<uint8_t>(type));
  EncodeU64(dst, txn);
  EncodeString(dst, table);
  EncodeU64(dst, row_id);
  EncodeRow(dst, before);
  EncodeRow(dst, after);
  EncodeSchema(dst, schema);
  EncodeU64(dst, eid);
  EncodeU64(dst, group);
  EncodeU32(dst, static_cast<uint32_t>(members.size()));
  for (TxnId m : members) EncodeU64(dst, m);
  EncodeString(dst, aux);
}

StatusOr<WalRecord> WalRecord::Decode(const std::string& payload) {
  const char* p = payload.data();
  const char* end = p + payload.size();
  WalRecord r;
  uint8_t type;
  YT_RETURN_IF_ERROR(DecodeU64(&p, end, &r.lsn));
  YT_RETURN_IF_ERROR(DecodeU8(&p, end, &type));
  if (type < static_cast<uint8_t>(WalRecordType::kBegin) ||
      type > static_cast<uint8_t>(WalRecordType::kCommitDecision)) {
    return Status::Corruption("bad WAL record type");
  }
  r.type = static_cast<WalRecordType>(type);
  YT_RETURN_IF_ERROR(DecodeU64(&p, end, &r.txn));
  YT_RETURN_IF_ERROR(DecodeString(&p, end, &r.table));
  YT_RETURN_IF_ERROR(DecodeU64(&p, end, &r.row_id));
  YT_RETURN_IF_ERROR(DecodeRow(&p, end, &r.before));
  YT_RETURN_IF_ERROR(DecodeRow(&p, end, &r.after));
  YT_RETURN_IF_ERROR(DecodeSchema(&p, end, &r.schema));
  YT_RETURN_IF_ERROR(DecodeU64(&p, end, &r.eid));
  YT_RETURN_IF_ERROR(DecodeU64(&p, end, &r.group));
  uint32_t n;
  YT_RETURN_IF_ERROR(DecodeU32(&p, end, &n));
  r.members.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t m;
    YT_RETURN_IF_ERROR(DecodeU64(&p, end, &m));
    r.members.push_back(m);
  }
  YT_RETURN_IF_ERROR(DecodeString(&p, end, &r.aux));
  return r;
}

std::string WalRecord::ToString() const {
  std::string s = StrFormat("[lsn=%llu %s txn=%llu",
                            static_cast<unsigned long long>(lsn),
                            WalRecordTypeName(type),
                            static_cast<unsigned long long>(txn));
  if (!table.empty()) s += " table=" + table;
  if (row_id != 0) s += " rid=" + std::to_string(row_id);
  if (!members.empty()) {
    s += " members={";
    for (size_t i = 0; i < members.size(); ++i) {
      if (i) s += ",";
      s += std::to_string(members[i]);
    }
    s += "}";
  }
  s += "]";
  return s;
}

}  // namespace youtopia
