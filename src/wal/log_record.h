#ifndef YOUTOPIA_WAL_LOG_RECORD_H_
#define YOUTOPIA_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/row.h"
#include "src/common/schema.h"
#include "src/common/statusor.h"
#include "src/storage/table.h"

namespace youtopia {

/// WAL record kinds. The log is redo-only: recovery replays the after-images
/// of durably committed transactions; live rollback uses in-memory undo.
/// kEntangle and kGroupCommit make coordination state persistent, which is
/// what enables the paper's entanglement-aware recovery (§4): an entangled
/// transaction is durable only when its group's kGroupCommit record made it
/// to the log.
///
/// kPrepare and kCommitDecision are the two-phase-commit records of the
/// sharded engine. A participant shard force-writes kPrepare(txn, gtid) to
/// vote yes; from then on the transaction is *in doubt* after a crash — its
/// outcome is the coordinator's, resolved from the coordinator log's
/// kCommitDecision(gtid) (present = commit, absent = presumed abort).
/// Phase 2 appends a shard-local kCommitDecision(txn, gtid) so a shard that
/// got the decision can also resolve on its own.
enum class WalRecordType : uint8_t {
  kBegin = 1,
  kInsert,
  kUpdate,
  kDelete,
  kCommit,
  kAbort,
  kEntangle,        ///< members coordinated in one entanglement operation
  kGroupCommit,     ///< all members of a group are durably committed
  kCreateTable,     ///< DDL (system transaction, txn = 0)
  kCheckpointRef,   ///< first record of a fresh log; points at a checkpoint
  kCreateIndex,     ///< DDL: secondary index (column names in aux)
  kPrepare,         ///< 2PC vote: writes durable, outcome in doubt (group =
                    ///< the coordinator's global transaction id)
  kCommitDecision,  ///< 2PC decision for `group`; txn = 0 in the
                    ///< coordinator log, the branch id on a shard
};

/// One WAL record. Unused fields are empty for a given type.
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kBegin;
  TxnId txn = 0;
  std::string table;
  RowId row_id = 0;
  Row before;  ///< update/delete before-image (debugging / audits)
  Row after;   ///< insert/update after-image (redo)
  Schema schema;
  EntanglementId eid = 0;
  GroupId group = 0;
  std::vector<TxnId> members;
  std::string aux;  ///< checkpoint path for kCheckpointRef

  static WalRecord Begin(TxnId txn);
  static WalRecord Insert(TxnId txn, std::string table, RowId rid, Row after);
  static WalRecord Update(TxnId txn, std::string table, RowId rid, Row before,
                          Row after);
  static WalRecord Delete(TxnId txn, std::string table, RowId rid, Row before);
  static WalRecord Commit(TxnId txn);
  static WalRecord Abort(TxnId txn);
  static WalRecord Entangle(EntanglementId eid, std::vector<TxnId> members);
  static WalRecord GroupCommit(GroupId group, std::vector<TxnId> members);
  static WalRecord Prepare(TxnId txn, GroupId gtid);
  static WalRecord CommitDecision(TxnId txn, GroupId gtid);
  static WalRecord CreateTable(std::string table, Schema schema);
  static WalRecord CreateIndex(std::string table,
                               const std::vector<std::string>& columns,
                               bool unique = false, bool ordered = false);
  static WalRecord CheckpointRef(std::string path, uint64_t lsn_at_checkpoint);

  /// Column names of a kCreateIndex record (decoded from aux, which holds
  /// "col,col[|flag,flag]" with flags drawn from {unique, ordered}).
  std::vector<std::string> IndexColumns() const;
  bool IndexUnique() const;
  bool IndexOrdered() const;

  /// Payload encoding (no framing; the writer adds length + CRC).
  void EncodeTo(std::string* dst) const;
  static StatusOr<WalRecord> Decode(const std::string& payload);

  std::string ToString() const;
};

const char* WalRecordTypeName(WalRecordType t);

}  // namespace youtopia

#endif  // YOUTOPIA_WAL_LOG_RECORD_H_
