#include "src/wal/recovery.h"

#include <filesystem>
#include <fstream>
#include <map>

#include "src/common/fault.h"

namespace youtopia {

namespace {

/// Repairs a torn log tail in place: truncates the file to the last intact
/// record boundary. Without this, the writer's append-mode reopen would
/// place new records *after* the garbage bytes, where no reader can ever
/// reach them — every post-recovery commit would be silently unrecoverable.
/// Idempotent: a re-run recovery sees a clean tail.
Status TruncateTornTail(const std::string& wal_path,
                        const WalReader::Result& log,
                        uint64_t* truncated_bytes) {
  std::error_code ec;
  uint64_t size = std::filesystem::file_size(wal_path, ec);
  if (ec || size <= log.valid_bytes) return Status::Ok();
  *truncated_bytes = size - log.valid_bytes;
  std::filesystem::resize_file(wal_path, log.valid_bytes, ec);
  if (ec) {
    return Status::Corruption("cannot truncate torn WAL tail of " + wal_path);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<RecoveryManager::Result> RecoveryManager::Recover(
    const std::string& wal_path) {
  return Recover(wal_path, Options());
}

StatusOr<RecoveryManager::Result> RecoveryManager::Recover(
    const std::string& wal_path, const Options& options) {
  YT_ASSIGN_OR_RETURN(WalReader::Result log, WalReader::ReadAll(wal_path));

  Result result;
  result.torn_tail = log.torn_tail;
  result.max_lsn = log.max_lsn;
  if (log.torn_tail) {
    YT_RETURN_IF_ERROR(
        TruncateTornTail(wal_path, log, &result.truncated_bytes));
  }

  // --- Load checkpoint base image if the log starts with a reference.
  if (!log.records.empty() &&
      log.records.front().type == WalRecordType::kCheckpointRef) {
    std::ifstream in(log.records.front().aux, std::ios::binary);
    if (!in.good()) {
      return Status::Corruption("missing checkpoint file " +
                                log.records.front().aux);
    }
    YT_ASSIGN_OR_RETURN(result.db, Database::LoadFrom(&in));
  } else {
    result.db = std::make_unique<Database>();
  }

  // --- Analysis pass.
  std::set<TxnId> has_commit;
  std::set<TxnId> has_abort;
  std::set<TxnId> entangled;        // appears in any ENTANGLE record
  std::set<TxnId> group_committed;  // appears in any GROUP_COMMIT record
  std::map<TxnId, GroupId> prepared;  // 2PC yes-vote -> coordinator gtid
  std::set<TxnId> seen;
  for (const WalRecord& r : log.records) {
    if (r.txn != 0) {
      seen.insert(r.txn);
      result.max_txn_id = std::max(result.max_txn_id, r.txn);
    }
    switch (r.type) {
      case WalRecordType::kCommit:
        has_commit.insert(r.txn);
        break;
      case WalRecordType::kCommitDecision:
        // Shard-local phase-2 record: resolves the branch like a COMMIT.
        if (r.txn != 0) has_commit.insert(r.txn);
        result.max_gtid = std::max(result.max_gtid, r.group);
        break;
      case WalRecordType::kPrepare:
        prepared.emplace(r.txn, r.group);
        result.max_gtid = std::max(result.max_gtid, r.group);
        break;
      case WalRecordType::kAbort:
        has_abort.insert(r.txn);
        break;
      case WalRecordType::kEntangle:
        for (TxnId m : r.members) {
          entangled.insert(m);
          seen.insert(m);
          result.max_txn_id = std::max(result.max_txn_id, m);
        }
        break;
      case WalRecordType::kGroupCommit:
        for (TxnId m : r.members) group_committed.insert(m);
        break;
      default:
        break;
    }
  }
  // Resolve in-doubt transactions: prepared, no local terminal record.
  // The coordinator's decision log is the authority; absence of a commit
  // decision there means presumed abort.
  for (const auto& [t, gtid] : prepared) {
    if (has_commit.count(t) || has_abort.count(t)) continue;
    result.in_doubt.insert(t);
    result.in_doubt_gtid.emplace(t, gtid);
    if (options.committed_gtids != nullptr &&
        options.committed_gtids->count(gtid)) {
      has_commit.insert(t);
    }
  }
  for (TxnId t : seen) {
    bool durable;
    if (entangled.count(t)) {
      durable = group_committed.count(t) > 0;
      if (!durable && has_commit.count(t)) result.rolled_back.insert(t);
    } else {
      durable = has_commit.count(t) > 0;
    }
    if (durable) {
      result.committed.insert(t);
    } else if (!result.rolled_back.count(t)) {
      result.discarded.insert(t);
    }
  }

  // --- Redo pass: DDL always (system txn 0), DML only for winners.
  FaultInjector* fi = FaultInjector::Global();
  for (const WalRecord& r : log.records) {
    // "recovery.redo" fires per replayed record: a kCrash here kills the
    // replay mid-pass, and a re-run must reach the same final state
    // (recovery idempotence — the log is never mutated by redo, only the
    // rebuilt in-memory image, which a failed attempt discards).
    if (fi->enabled()) YT_RETURN_IF_ERROR(fi->Hit("recovery.redo"));
    switch (r.type) {
      case WalRecordType::kCreateTable: {
        if (!result.db->GetTable(r.table).ok()) {
          YT_ASSIGN_OR_RETURN(Table * t,
                              result.db->CreateTable(r.table, r.schema));
          (void)t;
        }
        break;
      }
      case WalRecordType::kCreateIndex: {
        YT_ASSIGN_OR_RETURN(Table * t, result.db->GetTable(r.table));
        Status s =
            t->CreateIndex(r.IndexColumns(), r.IndexUnique(), r.IndexOrdered());
        // AlreadyExists: the index came back with a checkpoint image.
        if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
        break;
      }
      case WalRecordType::kInsert: {
        if (!result.committed.count(r.txn)) break;
        YT_ASSIGN_OR_RETURN(Table * t, result.db->GetTable(r.table));
        YT_RETURN_IF_ERROR(t->InsertWithId(r.row_id, r.after));
        break;
      }
      case WalRecordType::kUpdate: {
        if (!result.committed.count(r.txn)) break;
        YT_ASSIGN_OR_RETURN(Table * t, result.db->GetTable(r.table));
        YT_RETURN_IF_ERROR(t->Update(r.row_id, r.after));
        break;
      }
      case WalRecordType::kDelete: {
        if (!result.committed.count(r.txn)) break;
        YT_ASSIGN_OR_RETURN(Table * t, result.db->GetTable(r.table));
        YT_RETURN_IF_ERROR(t->Delete(r.row_id));
        break;
      }
      default:
        break;
    }
  }
  return result;
}

}  // namespace youtopia
