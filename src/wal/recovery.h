#ifndef YOUTOPIA_WAL_RECOVERY_H_
#define YOUTOPIA_WAL_RECOVERY_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/storage/database.h"
#include "src/wal/wal_reader.h"

namespace youtopia {

/// Entanglement-aware crash recovery (paper §4, "Persistence and Recovery").
///
/// Analysis: a classical transaction is durably committed iff its COMMIT
/// record is in the log. An *entangled* transaction (one that appears in any
/// ENTANGLE record) is durably committed iff a GROUP_COMMIT record naming it
/// is in the log — a bare COMMIT is NOT enough. This implements the paper's
/// rule: "if two transactions entangle and only one manages to commit prior
/// to a crash, both must be rolled back during recovery."
///
/// A transaction with a PREPARE record but no local COMMIT / ABORT /
/// COMMIT_DECISION is *in doubt*: it voted yes in a two-phase commit and
/// its outcome belongs to the coordinator. It commits iff its global
/// transaction id appears in `Options::committed_gtids` (the decisions
/// read from the coordinator's log) and is presumed aborted otherwise —
/// the classical presumed-abort rule; shard::Router::Recover wires the
/// coordinator log through here.
///
/// Redo: rebuild the database from the checkpoint referenced by the log head
/// (if any), then replay DDL and the after-images of durably committed
/// transactions in LSN order. Because the log is redo-only, losers need no
/// undo: their effects were never reapplied.
class RecoveryManager {
 public:
  struct Options {
    /// Commit decisions known from the coordinator's log; nullptr means
    /// no external decisions (every in-doubt transaction aborts).
    const std::set<GroupId>* committed_gtids = nullptr;
  };

  struct Result {
    std::unique_ptr<Database> db;
    std::set<TxnId> committed;       ///< durably committed transactions
    std::set<TxnId> rolled_back;     ///< had COMMIT but lost it to the
                                     ///< group-commit rule (widow prevention)
    std::set<TxnId> discarded;       ///< in-flight or aborted at crash time
    std::set<TxnId> in_doubt;        ///< prepared, resolved only through the
                                     ///< coordinator's decisions (members of
                                     ///< committed or discarded too)
    /// The coordinator gtid of each in-doubt branch — the coordinator
    /// writes a durable shard-local decision for the committed ones after
    /// recovery, so its own decision log can be GC'd safely.
    std::map<TxnId, GroupId> in_doubt_gtid;
    uint64_t max_lsn = 0;
    TxnId max_txn_id = 0;
    /// Highest 2PC global transaction id seen in PREPARE / COMMIT_DECISION
    /// records — the coordinator must allocate above this after recovery
    /// so a presumed-aborted gtid can never be reused (and later decided).
    GroupId max_gtid = 0;
    bool torn_tail = false;
    /// Torn-tail bytes removed from the log file (the partial trailing
    /// record a crash mid-write left); 0 when the tail was clean.
    uint64_t truncated_bytes = 0;
  };

  /// Runs recovery from `wal_path`. Checkpoints are located through the
  /// log's CheckpointRef head record.
  static StatusOr<Result> Recover(const std::string& wal_path);
  static StatusOr<Result> Recover(const std::string& wal_path,
                                  const Options& options);
};

}  // namespace youtopia

#endif  // YOUTOPIA_WAL_RECOVERY_H_
