#ifndef YOUTOPIA_WAL_RECOVERY_H_
#define YOUTOPIA_WAL_RECOVERY_H_

#include <memory>
#include <set>
#include <string>

#include "src/storage/database.h"
#include "src/wal/wal_reader.h"

namespace youtopia {

/// Entanglement-aware crash recovery (paper §4, "Persistence and Recovery").
///
/// Analysis: a classical transaction is durably committed iff its COMMIT
/// record is in the log. An *entangled* transaction (one that appears in any
/// ENTANGLE record) is durably committed iff a GROUP_COMMIT record naming it
/// is in the log — a bare COMMIT is NOT enough. This implements the paper's
/// rule: "if two transactions entangle and only one manages to commit prior
/// to a crash, both must be rolled back during recovery."
///
/// Redo: rebuild the database from the checkpoint referenced by the log head
/// (if any), then replay DDL and the after-images of durably committed
/// transactions in LSN order. Because the log is redo-only, losers need no
/// undo: their effects were never reapplied.
class RecoveryManager {
 public:
  struct Result {
    std::unique_ptr<Database> db;
    std::set<TxnId> committed;       ///< durably committed transactions
    std::set<TxnId> rolled_back;     ///< had COMMIT but lost it to the
                                     ///< group-commit rule (widow prevention)
    std::set<TxnId> discarded;       ///< in-flight or aborted at crash time
    uint64_t max_lsn = 0;
    TxnId max_txn_id = 0;
    bool torn_tail = false;
  };

  /// Runs recovery from `wal_path`. Checkpoints are located through the
  /// log's CheckpointRef head record.
  static StatusOr<Result> Recover(const std::string& wal_path);
};

}  // namespace youtopia

#endif  // YOUTOPIA_WAL_RECOVERY_H_
