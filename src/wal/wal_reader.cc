#include "src/wal/wal_reader.h"

#include <cstdio>

#include "src/common/serde.h"

namespace youtopia {

StatusOr<WalReader::Result> WalReader::ReadAll(const std::string& path) {
  Result result;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return result;  // no log yet: fresh database
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  std::fclose(f);

  const char* p = data.data();
  const char* end = p + data.size();
  while (p < end) {
    uint32_t len, crc;
    if (!DecodeU32(&p, end, &len).ok() || !DecodeU32(&p, end, &crc).ok() ||
        end - p < static_cast<ptrdiff_t>(len)) {
      result.torn_tail = true;
      break;
    }
    std::string payload(p, len);
    p += len;
    if (Crc32(payload) != crc) {
      result.torn_tail = true;
      break;
    }
    auto rec = WalRecord::Decode(payload);
    if (!rec.ok()) {
      result.torn_tail = true;
      break;
    }
    result.max_lsn = std::max(result.max_lsn, rec.value().lsn);
    result.records.push_back(std::move(rec).value());
    result.valid_bytes = static_cast<uint64_t>(p - data.data());
  }
  return result;
}

}  // namespace youtopia
