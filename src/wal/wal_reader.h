#ifndef YOUTOPIA_WAL_WAL_READER_H_
#define YOUTOPIA_WAL_WAL_READER_H_

#include <string>
#include <vector>

#include "src/wal/log_record.h"

namespace youtopia {

/// Reads a WAL file back into records. A truncated or checksum-failing tail
/// is treated as a torn write from the crash and reading stops there (this
/// is the normal crash case, not an error); `torn_tail` reports whether that
/// happened.
class WalReader {
 public:
  struct Result {
    std::vector<WalRecord> records;
    bool torn_tail = false;
    uint64_t max_lsn = 0;
    /// Byte offset just past the last intact record — where a torn tail
    /// starts. Recovery truncates the file here before reopening it for
    /// append (new records written after garbage would be unreachable).
    uint64_t valid_bytes = 0;
  };

  /// Missing file yields an empty Result (fresh database).
  static StatusOr<Result> ReadAll(const std::string& path);
};

}  // namespace youtopia

#endif  // YOUTOPIA_WAL_WAL_READER_H_
