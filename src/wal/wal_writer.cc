#include "src/wal/wal_writer.h"

#include <unistd.h>

#include "src/common/serde.h"

namespace youtopia {

WalWriter::~WalWriter() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

Status WalWriter::Open(const std::string& path, Options options,
                       bool truncate) {
  std::lock_guard<std::mutex> g(mu_);
  if (file_ != nullptr) return Status::Internal("WAL already open");
  file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file_ == nullptr) {
    return Status::Corruption("cannot open WAL file " + path);
  }
  path_ = path;
  options_ = options;
  return Status::Ok();
}

StatusOr<uint64_t> WalWriter::Append(WalRecord rec) {
  std::lock_guard<std::mutex> g(mu_);
  if (file_ == nullptr) return Status::Internal("WAL not open");
  rec.lsn = next_lsn_++;
  std::string payload;
  rec.EncodeTo(&payload);
  std::string frame;
  EncodeU32(&frame, static_cast<uint32_t>(payload.size()));
  EncodeU32(&frame, Crc32(payload));
  frame += payload;
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::Corruption("WAL append failed");
  }
  return rec.lsn;
}

StatusOr<uint64_t> WalWriter::AppendAndFlush(WalRecord rec) {
  YT_ASSIGN_OR_RETURN(uint64_t lsn, Append(std::move(rec)));
  YT_RETURN_IF_ERROR(Flush());
  return lsn;
}

Status WalWriter::Flush() {
  std::lock_guard<std::mutex> g(mu_);
  if (file_ == nullptr) return Status::Internal("WAL not open");
  if (std::fflush(file_) != 0) return Status::Corruption("WAL flush failed");
  if (options_.sync_on_flush) {
    if (fsync(fileno(file_)) != 0) {
      return Status::Corruption("WAL fsync failed");
    }
  }
  return Status::Ok();
}

Status WalWriter::Close() {
  std::lock_guard<std::mutex> g(mu_);
  if (file_ == nullptr) return Status::Ok();
  std::fflush(file_);
  if (options_.sync_on_flush) fsync(fileno(file_));
  std::fclose(file_);
  file_ = nullptr;
  return Status::Ok();
}

Status WalWriter::ResetWithCheckpoint(const std::string& checkpoint_path) {
  uint64_t lsn_snapshot;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (file_ == nullptr) return Status::Internal("WAL not open");
    std::fflush(file_);
    std::fclose(file_);
    file_ = std::fopen(path_.c_str(), "wb");
    if (file_ == nullptr) {
      return Status::Corruption("cannot truncate WAL file " + path_);
    }
    lsn_snapshot = next_lsn_;
  }
  YT_ASSIGN_OR_RETURN(
      uint64_t lsn,
      Append(WalRecord::CheckpointRef(checkpoint_path, lsn_snapshot)));
  (void)lsn;
  return Flush();
}

}  // namespace youtopia
