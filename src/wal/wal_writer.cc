#include "src/wal/wal_writer.h"

#include <unistd.h>
#if __has_include(<stdio_ext.h>)
#include <stdio_ext.h>  // __fpurge: drop the stdio userspace buffer (glibc)
#define YOUTOPIA_HAVE_FPURGE 1
#endif

#include "src/common/fault.h"
#include "src/common/metrics.h"
#include "src/common/serde.h"

namespace youtopia {

namespace {

Histogram* FlushLatencyHist() {
  static Histogram* h =
      MetricsRegistry::Global()->histogram("wal.flush_micros");
  return h;
}

Counter* FlushesCounter() {
  static Counter* c = MetricsRegistry::Global()->counter("wal.flushes");
  return c;
}

/// Closes a FILE* the way a killed process leaves it: whatever sits in the
/// stdio userspace buffer never reaches the file. Used whenever the fault
/// injector's crash state is latched — flushing on close would leak records
/// a real crash loses, hiding exactly the bugs the torture harness hunts.
void CloseDiscardingBuffer(std::FILE* f) {
#if defined(YOUTOPIA_HAVE_FPURGE)
  __fpurge(f);
#endif
  std::fclose(f);
}

}  // namespace

WalWriter::~WalWriter() {
  if (file_ == nullptr) return;
  if (FaultInjector::Global()->crashed()) {
    CloseDiscardingBuffer(file_);
    return;
  }
  std::fflush(file_);
  std::fclose(file_);
}

Status WalWriter::Open(const std::string& path, Options options,
                       bool truncate) {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (file_ != nullptr) return Status::Internal("WAL already open");
    file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (file_ == nullptr) {
      return Status::Corruption("cannot open WAL file " + path);
    }
    path_ = path;
    options_ = options;
  }
  // Outside mu_: the queue's leader path holds its own mutex while reading
  // last_lsn() (queue -> wal order); never take them the other way around.
  group_.ResetHorizon();
  return Status::Ok();
}

StatusOr<uint64_t> WalWriter::Append(WalRecord rec) {
  std::lock_guard<std::mutex> g(mu_);
  if (file_ == nullptr) return Status::Internal("WAL not open");
  FaultInjector* fi = FaultInjector::Global();
  if (fi->enabled()) {
    // Once the crash state is latched, every log freezes: a dead process
    // appends nothing, so the files must read back exactly as a kill at
    // the crash site would leave them.
    if (fi->crashed()) {
      return Status::Internal("WAL frozen by simulated crash at " +
                              fi->crash_site());
    }
    YT_RETURN_IF_ERROR(fi->Hit("wal.append"));
  }
  rec.lsn = next_lsn_++;
  std::string payload;
  rec.EncodeTo(&payload);
  std::string frame;
  EncodeU32(&frame, static_cast<uint32_t>(payload.size()));
  EncodeU32(&frame, Crc32(payload));
  frame += payload;
  if (fi->enabled()) {
    size_t keep = fi->TornWriteLen("wal.append.torn", frame.size());
    if (keep < frame.size()) {
      // Torn write: a prefix of the frame reaches the OS (it must survive
      // the buffer purge on close — the bytes did hit the device), then
      // the process dies mid-write. Recovery must truncate this tail.
      (void)std::fwrite(frame.data(), 1, keep, file_);
      (void)std::fflush(file_);
      return Status::Internal("simulated crash: torn WAL write at " + path_);
    }
  }
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::Corruption("WAL append failed");
  }
  return rec.lsn;
}

StatusOr<uint64_t> WalWriter::AppendAndFlush(WalRecord rec) {
  YT_ASSIGN_OR_RETURN(uint64_t lsn, Append(std::move(rec)));
  YT_RETURN_IF_ERROR(SyncToLsn(lsn));
  return lsn;
}

Status WalWriter::SyncToLsn(uint64_t lsn) {
  if (group_.enabled()) return group_.WaitForDurable(lsn);
  return Flush();
}

uint64_t WalWriter::last_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return next_lsn_ - 1;
}

Status WalWriter::Flush() {
  std::lock_guard<std::mutex> g(mu_);
  if (file_ == nullptr) return Status::Internal("WAL not open");
  FaultInjector* fi = FaultInjector::Global();
  if (fi->enabled()) {
    if (fi->crashed()) {
      return Status::Internal("WAL frozen by simulated crash at " +
                              fi->crash_site());
    }
    YT_RETURN_IF_ERROR(fi->Hit("wal.flush"));
  }
  LatencyTimer timer(FlushLatencyHist());
  if (std::fflush(file_) != 0) return Status::Corruption("WAL flush failed");
  if (options_.sync_on_flush) {
    if (fsync(fileno(file_)) != 0) {
      return Status::Corruption("WAL fsync failed");
    }
  }
  if (timer.active()) FlushesCounter()->Add();
  if (auto* counter = flush_counter_.load(std::memory_order_acquire)) {
    counter->fetch_add(1, std::memory_order_relaxed);
  }
  return Status::Ok();
}

Status WalWriter::Close() {
  std::lock_guard<std::mutex> g(mu_);
  if (file_ == nullptr) return Status::Ok();
  if (FaultInjector::Global()->crashed()) {
    CloseDiscardingBuffer(file_);
    file_ = nullptr;
    return Status::Ok();
  }
  std::fflush(file_);
  if (options_.sync_on_flush) fsync(fileno(file_));
  std::fclose(file_);
  file_ = nullptr;
  return Status::Ok();
}

Status WalWriter::ResetWithCheckpoint(const std::string& checkpoint_path) {
  uint64_t lsn_snapshot;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (file_ == nullptr) return Status::Internal("WAL not open");
    std::fflush(file_);
    std::fclose(file_);
    file_ = std::fopen(path_.c_str(), "wb");
    if (file_ == nullptr) {
      return Status::Corruption("cannot truncate WAL file " + path_);
    }
    lsn_snapshot = next_lsn_;
  }
  YT_ASSIGN_OR_RETURN(
      uint64_t lsn,
      Append(WalRecord::CheckpointRef(checkpoint_path, lsn_snapshot)));
  (void)lsn;
  return Flush();
}

}  // namespace youtopia
