#ifndef YOUTOPIA_WAL_WAL_WRITER_H_
#define YOUTOPIA_WAL_WAL_WRITER_H_

#include <cstdio>
#include <mutex>
#include <string>

#include "src/wal/log_record.h"

namespace youtopia {

/// Append-only WAL file writer. Each record is framed as
/// [u32 payload_len][u32 crc32(payload)][payload]. Appends buffer in
/// userspace; Flush() pushes to the OS (and fsyncs when `sync_on_flush`).
/// Thread-safe: the transaction manager appends from many connections.
///
/// Fault-injection sites (src/common/fault.h): "wal.append" (append
/// failure before any byte is written), "wal.append.torn" (short write — a
/// prefix of the frame reaches the file, then the crash state latches),
/// "wal.flush" (failed flush/fsync). Once the injector's crash state is
/// latched, every writer freezes: appends and flushes are rejected, and
/// close discards the userspace buffer instead of flushing it, so the file
/// reads back exactly as a process kill at the crash point would leave it.
class WalWriter {
 public:
  struct Options {
    bool sync_on_flush = false;  ///< fsync on every Flush (commit durability)
  };

  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (creates or truncates when `truncate`) the log file.
  Status Open(const std::string& path, Options options, bool truncate);
  bool is_open() const { return file_ != nullptr; }

  /// Assigns the next LSN, frames and buffers the record. Returns the LSN.
  StatusOr<uint64_t> Append(WalRecord rec);

  /// Appends and immediately flushes (commit path).
  StatusOr<uint64_t> AppendAndFlush(WalRecord rec);

  Status Flush();

  /// Closes the file (flushes first).
  Status Close();

  /// Restart the log in `path` with a checkpoint-reference first record
  /// (log truncation after a checkpoint).
  Status ResetWithCheckpoint(const std::string& checkpoint_path);

  uint64_t next_lsn() const { return next_lsn_; }
  void set_next_lsn(uint64_t lsn) { next_lsn_ = lsn; }
  const std::string& path() const { return path_; }

 private:
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  Options options_;
  uint64_t next_lsn_ = 1;
};

}  // namespace youtopia

#endif  // YOUTOPIA_WAL_WAL_WRITER_H_
