#ifndef YOUTOPIA_WAL_WAL_WRITER_H_
#define YOUTOPIA_WAL_WAL_WRITER_H_

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

#include "src/wal/group_commit.h"
#include "src/wal/log_record.h"

namespace youtopia {

/// Append-only WAL file writer. Each record is framed as
/// [u32 payload_len][u32 crc32(payload)][payload]. Appends buffer in
/// userspace; Flush() pushes to the OS (and fsyncs when `sync_on_flush`).
/// Thread-safe: the transaction manager appends from many connections.
///
/// Fault-injection sites (src/common/fault.h): "wal.append" (append
/// failure before any byte is written), "wal.append.torn" (short write — a
/// prefix of the frame reaches the file, then the crash state latches),
/// "wal.flush" (failed flush/fsync), "wal.group_flush" (the group-commit
/// leader's batch flush fails before reaching the file — every ticket the
/// batch covered errors out). Once the injector's crash state is
/// latched, every writer freezes: appends and flushes are rejected, and
/// close discards the userspace buffer instead of flushing it, so the file
/// reads back exactly as a process kill at the crash point would leave it.
class WalWriter {
 public:
  struct Options {
    bool sync_on_flush = false;  ///< fsync on every Flush (commit durability)
  };

  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (creates or truncates when `truncate`) the log file.
  Status Open(const std::string& path, Options options, bool truncate);
  bool is_open() const { return file_ != nullptr; }

  /// Assigns the next LSN, frames and buffers the record. Returns the LSN.
  StatusOr<uint64_t> Append(WalRecord rec);

  /// Appends and waits for durability (commit path). With group commit
  /// enabled (the default) the wait goes through the GroupCommitQueue: one
  /// leader flush covers every concurrent committer's records. With it
  /// disabled, each call performs its own Flush — the ablation baseline.
  StatusOr<uint64_t> AppendAndFlush(WalRecord rec);

  /// Waits until every record with LSN <= `lsn` is durable (group queue when
  /// enabled, direct Flush otherwise). Lets callers separate Append from the
  /// durability wait — e.g. the 2PC coordinator appends its decision under
  /// its own mutex but waits for the flush outside it, so concurrent
  /// decisions share one flush.
  Status SyncToLsn(uint64_t lsn);

  Status Flush();

  /// Closes the file (flushes first).
  Status Close();

  /// Restart the log in `path` with a checkpoint-reference first record
  /// (log truncation after a checkpoint).
  Status ResetWithCheckpoint(const std::string& checkpoint_path);

  uint64_t next_lsn() const { return next_lsn_; }
  /// Re-anchors the LSN sequence (recovery reopen, decision-log GC). The
  /// group-commit durable horizon resets with it: an LSN regression must
  /// never let a fresh record test at-or-below a stale flushed mark.
  void set_next_lsn(uint64_t lsn) {
    next_lsn_ = lsn;
    group_.ResetHorizon();
  }
  /// Highest LSN assigned so far (0 when nothing was appended).
  uint64_t last_lsn() const;
  const std::string& path() const { return path_; }

  /// Group-commit controls. Enabled by default; disabling is the ablation
  /// (every AppendAndFlush performs its own flush).
  void set_group_commit_enabled(bool on) { group_.set_enabled(on); }
  bool group_commit_enabled() const { return group_.enabled(); }
  GroupCommitQueue* group_commit() { return &group_; }

  /// Optional flush counter (TxnStats::wal_flushes): bumped once per
  /// successful Flush, i.e. once per group-commit batch — not per committer.
  /// Pass nullptr to detach. The counter must outlive the attachment.
  void set_flush_counter(std::atomic<uint64_t>* counter) {
    flush_counter_.store(counter, std::memory_order_release);
  }

 private:
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  Options options_;
  uint64_t next_lsn_ = 1;
  std::atomic<std::atomic<uint64_t>*> flush_counter_{nullptr};
  GroupCommitQueue group_{this};
};

}  // namespace youtopia

#endif  // YOUTOPIA_WAL_WAL_WRITER_H_
