#include "src/workload/social_graph.h"

#include <algorithm>

namespace youtopia::workload {

SocialGraph SocialGraph::PreferentialAttachment(size_t num_users,
                                                size_t edges_per_node,
                                                uint64_t seed) {
  SocialGraph g;
  if (num_users == 0) return g;
  g.adj_.resize(num_users);
  Rng rng(seed);
  if (edges_per_node == 0) edges_per_node = 1;

  // Degree-proportional sampling via the classic endpoint-list trick.
  std::vector<uint32_t> endpoints;
  size_t seed_nodes = std::min(num_users, edges_per_node + 1);
  // Seed clique over the first few nodes.
  for (uint32_t a = 0; a < seed_nodes; ++a) {
    for (uint32_t b = a + 1; b < seed_nodes; ++b) {
      g.adj_[a].push_back(b);
      g.adj_[b].push_back(a);
      endpoints.push_back(a);
      endpoints.push_back(b);
      ++g.num_edges_;
    }
  }
  for (uint32_t v = static_cast<uint32_t>(seed_nodes); v < num_users; ++v) {
    size_t added = 0;
    size_t guard = 0;
    while (added < edges_per_node && guard++ < edges_per_node * 20) {
      uint32_t target = endpoints.empty()
                            ? static_cast<uint32_t>(rng.Index(v))
                            : endpoints[rng.Index(endpoints.size())];
      if (target == v) continue;
      if (std::find(g.adj_[v].begin(), g.adj_[v].end(), target) !=
          g.adj_[v].end()) {
        continue;
      }
      g.adj_[v].push_back(target);
      g.adj_[target].push_back(v);
      endpoints.push_back(v);
      endpoints.push_back(target);
      ++g.num_edges_;
      ++added;
    }
  }
  for (auto& nbrs : g.adj_) std::sort(nbrs.begin(), nbrs.end());
  return g;
}

bool SocialGraph::AreFriends(uint32_t a, uint32_t b) const {
  if (a >= adj_.size()) return false;
  return std::binary_search(adj_[a].begin(), adj_[a].end(), b);
}

std::vector<std::pair<uint32_t, uint32_t>> SocialGraph::Edges() const {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(num_edges_);
  for (uint32_t a = 0; a < adj_.size(); ++a) {
    for (uint32_t b : adj_[a]) {
      if (a < b) edges.emplace_back(a, b);
    }
  }
  return edges;
}

size_t SocialGraph::MaxDegree() const {
  size_t m = 0;
  for (const auto& nbrs : adj_) m = std::max(m, nbrs.size());
  return m;
}

}  // namespace youtopia::workload
