#ifndef YOUTOPIA_WORKLOAD_SOCIAL_GRAPH_H_
#define YOUTOPIA_WORKLOAD_SOCIAL_GRAPH_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace youtopia::workload {

/// Synthetic stand-in for the paper's Slashdot social network [1]
/// (soc-Slashdot0902: ~82k nodes, ~948k edges, heavy-tailed degrees). The
/// experiments only use the graph to pick coordination partners among
/// friends, so any heavy-tailed friendship graph exercises the same code
/// paths; we generate one by preferential attachment with a configurable
/// size (documented substitution, see DESIGN.md).
class SocialGraph {
 public:
  /// Barabasi-Albert-style generator: each new node attaches to
  /// `edges_per_node` existing nodes chosen proportionally to degree.
  /// Edges are undirected (mutual friendship), deterministic per seed.
  static SocialGraph PreferentialAttachment(size_t num_users,
                                            size_t edges_per_node,
                                            uint64_t seed);

  size_t num_users() const { return adj_.size(); }
  size_t num_edges() const { return num_edges_; }
  const std::vector<uint32_t>& FriendsOf(uint32_t user) const {
    return adj_[user];
  }
  bool AreFriends(uint32_t a, uint32_t b) const;

  /// All undirected edges (a < b), deterministic order.
  std::vector<std::pair<uint32_t, uint32_t>> Edges() const;

  /// Maximum degree (sanity checks on the heavy tail).
  size_t MaxDegree() const;

 private:
  std::vector<std::vector<uint32_t>> adj_;
  size_t num_edges_ = 0;
};

}  // namespace youtopia::workload

#endif  // YOUTOPIA_WORKLOAD_SOCIAL_GRAPH_H_
