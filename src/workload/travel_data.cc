#include "src/workload/travel_data.h"

#include "src/common/strings.h"

namespace youtopia::workload {

StatusOr<TravelData> TravelData::Build(TxnEngine* tm,
                                       TravelDataOptions options) {
  TravelData data;
  data.graph_ = SocialGraph::PreferentialAttachment(
      options.num_users, options.edges_per_node, options.seed);

  // Cities: CITY00..CITYnn.
  for (size_t c = 0; c < options.num_cities; ++c) {
    data.cities_.push_back(StrFormat("CITY%02zu", c));
  }

  Rng rng(options.seed ^ 0x5eed);
  data.hometowns_.resize(options.num_users);
  for (size_t u = 0; u < options.num_users; ++u) {
    data.hometowns_[u] = data.cities_[rng.Index(data.cities_.size())];
  }

  // --- Schema. Point-access columns carry indexes: User.uid and Flight.fid
  // are primary keys, Friends gets a secondary index on uid1 (adjacency
  // probes and the §D social join's Friends.uid1 = c conjunct). Under a
  // sharded engine the primary keys double as partition keys.
  Schema user_schema({{"uid", TypeId::kInt64},
                      {"hometown", TypeId::kString}});
  user_schema.set_primary_key({0});
  YT_RETURN_IF_ERROR(tm->CreateTable("User", user_schema).status());
  YT_RETURN_IF_ERROR(
      tm->CreateTable("Friends", Schema({{"uid1", TypeId::kInt64},
                                         {"uid2", TypeId::kInt64}}))
          .status());
  YT_RETURN_IF_ERROR(tm->CreateIndex("Friends", {"uid1"}));
  Schema flight_schema({{"source", TypeId::kString},
                        {"destination", TypeId::kString},
                        {"fid", TypeId::kInt64}});
  flight_schema.set_primary_key({2});
  YT_RETURN_IF_ERROR(tm->CreateTable("Flight", flight_schema).status());
  YT_RETURN_IF_ERROR(
      tm->CreateTable("Reserve", Schema({{"uid", TypeId::kInt64},
                                         {"fid", TypeId::kInt64}}))
          .status());

  // --- Data (loaded directly through the engine; setup is not part of any
  // measurement, and a partitioned engine routes each row to its shard).
  for (size_t u = 0; u < options.num_users; ++u) {
    YT_RETURN_IF_ERROR(
        tm->Load("User", Row({Value::Int(static_cast<int64_t>(u)),
                              Value::Str(data.hometowns_[u])})));
  }
  for (const auto& [a, b] : data.graph_.Edges()) {
    YT_RETURN_IF_ERROR(
        tm->Load("Friends", Row({Value::Int(a), Value::Int(b)})));
    YT_RETURN_IF_ERROR(
        tm->Load("Friends", Row({Value::Int(b), Value::Int(a)})));
  }
  int64_t fid = 100;
  for (const std::string& src : data.cities_) {
    for (const std::string& dst : data.cities_) {
      if (src == dst) continue;
      for (size_t k = 0; k < options.flights_per_route; ++k) {
        YT_RETURN_IF_ERROR(
            tm->Load("Flight", Row({Value::Str(src), Value::Str(dst),
                                    Value::Int(fid++)})));
      }
    }
  }

  for (const auto& [a, b] : data.graph_.Edges()) {
    if (data.hometowns_[a] == data.hometowns_[b]) {
      data.same_town_pairs_.emplace_back(a, b);
    }
  }
  return data;
}

Status TravelData::BuildFigure1Tables(TxnEngine* tm) {
  // Figure 1(a) of the paper, with dates as day numbers (May 3 = 503).
  YT_RETURN_IF_ERROR(
      tm->CreateTable("Flights", Schema({{"fno", TypeId::kInt64},
                                         {"fdate", TypeId::kInt64},
                                         {"dest", TypeId::kString}}))
          .status());
  // Date predicates over Flights are the paper's range shape ("fdate
  // between May 3 and May 5"): an ordered index makes them sargable and
  // key-range-lockable instead of table scans under table S locks.
  YT_RETURN_IF_ERROR(tm->CreateIndex("Flights", {"fdate"}, /*unique=*/false,
                                     /*ordered=*/true));
  YT_RETURN_IF_ERROR(
      tm->CreateTable("Airlines", Schema({{"fno", TypeId::kInt64},
                                          {"airline", TypeId::kString}}))
          .status());
  YT_RETURN_IF_ERROR(
      tm->CreateTable("Hotels", Schema({{"hid", TypeId::kInt64},
                                        {"location", TypeId::kString}}))
          .status());
  struct F {
    int64_t fno, fdate;
    const char* dest;
  };
  for (const F& f : std::initializer_list<F>{{122, 503, "LA"},
                                             {123, 504, "LA"},
                                             {124, 503, "LA"},
                                             {235, 505, "Paris"}}) {
    YT_RETURN_IF_ERROR(
        tm->Load("Flights", Row({Value::Int(f.fno), Value::Int(f.fdate),
                                 Value::Str(f.dest)})));
  }
  struct A {
    int64_t fno;
    const char* airline;
  };
  for (const A& a : std::initializer_list<A>{{122, "United"},
                                             {123, "United"},
                                             {124, "USAir"},
                                             {235, "Delta"}}) {
    YT_RETURN_IF_ERROR(
        tm->Load("Airlines", Row({Value::Int(a.fno), Value::Str(a.airline)})));
  }
  for (int64_t h : {701, 702, 703}) {
    YT_RETURN_IF_ERROR(
        tm->Load("Hotels", Row({Value::Int(h), Value::Str("LA")})));
  }
  return Status::Ok();
}

}  // namespace youtopia::workload
