#ifndef YOUTOPIA_WORKLOAD_TRAVEL_DATA_H_
#define YOUTOPIA_WORKLOAD_TRAVEL_DATA_H_

#include <string>
#include <vector>

#include "src/txn/txn_engine.h"
#include "src/workload/social_graph.h"

namespace youtopia::workload {

/// Scale knobs for the §D travel database.
struct TravelDataOptions {
  size_t num_users = 1000;
  size_t edges_per_node = 4;
  size_t num_cities = 10;
  size_t flights_per_route = 2;  ///< flights per ordered city pair
  uint64_t seed = 42;
};

/// Builds and populates the paper's §D schema:
///   User(uid INT, hometown VARCHAR)
///   Friends(uid1 INT, uid2 INT)           -- both directions materialized
///   Flight(source VARCHAR, destination VARCHAR, fid INT)
///   Reserve(uid INT, fid INT)             -- booking target, starts empty
/// plus the Figure 1/2 example tables when requested.
class TravelData {
 public:
  static StatusOr<TravelData> Build(TxnEngine* tm,
                                    TravelDataOptions options);

  /// Creates the Figure 1 flight/airline/hotel example tables
  /// (Flights/Airlines/Hotels) with the paper's literal rows.
  static Status BuildFigure1Tables(TxnEngine* tm);

  const SocialGraph& graph() const { return graph_; }
  const std::vector<std::string>& cities() const { return cities_; }
  const std::string& hometown_of(uint32_t user) const {
    return hometowns_[user];
  }
  size_t num_users() const { return hometowns_.size(); }

  /// Friend pairs living in the same hometown — the pairs whose §D entangled
  /// queries can actually ground. Deterministic order.
  const std::vector<std::pair<uint32_t, uint32_t>>& same_town_pairs() const {
    return same_town_pairs_;
  }

 private:
  SocialGraph graph_;
  std::vector<std::string> cities_;
  std::vector<std::string> hometowns_;
  std::vector<std::pair<uint32_t, uint32_t>> same_town_pairs_;
};

}  // namespace youtopia::workload

#endif  // YOUTOPIA_WORKLOAD_TRAVEL_DATA_H_
