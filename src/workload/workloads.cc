#include "src/workload/workloads.h"

#include "src/common/strings.h"

namespace youtopia::workload {

const char* WorkloadTypeName(WorkloadType t) {
  switch (t) {
    case WorkloadType::kNoSocialT: return "NoSocial-T";
    case WorkloadType::kSocialT: return "Social-T";
    case WorkloadType::kEntangledT: return "Entangled-T";
    case WorkloadType::kNoSocialQ: return "NoSocial-Q";
    case WorkloadType::kSocialQ: return "Social-Q";
    case WorkloadType::kEntangledQ: return "Entangled-Q";
  }
  return "?";
}

bool IsTransactional(WorkloadType t) {
  return t == WorkloadType::kNoSocialT || t == WorkloadType::kSocialT ||
         t == WorkloadType::kEntangledT;
}

bool IsEntangled(WorkloadType t) {
  return t == WorkloadType::kEntangledT || t == WorkloadType::kEntangledQ;
}

StatusOr<std::pair<uint32_t, uint32_t>> WorkloadGenerator::NextStreamPair() {
  const auto& pairs = data_->same_town_pairs();
  if (pairs.size() <= reserved_loners_) {
    return Status::InvalidArgument(
        "travel data has too few same-town friend pairs for this workload");
  }
  size_t span = pairs.size() - reserved_loners_;
  const auto& p = pairs[stream_cursor_++ % span];
  return p;
}

std::string WorkloadGenerator::PickDest(const std::string& hometown) {
  const auto& cities = data_->cities();
  for (size_t attempts = 0; attempts < 8; ++attempts) {
    const std::string& c = cities[rng_.Index(cities.size())];
    if (c != hometown) return c;
  }
  return cities[0] != hometown ? cities[0] : cities[1];
}

StatusOr<etxn::EntangledTransactionSpec> WorkloadGenerator::BookingSpec(
    WorkloadType type, uint32_t me, uint32_t friend_id,
    const std::string& dest, int64_t trip, int64_t timeout_micros,
    const std::string& name) {
  etxn::EntangledTransactionSpec spec;
  spec.name = name;
  spec.transactional = IsTransactional(type);
  spec.timeout_micros = timeout_micros;

  auto add = [&spec](const std::string& text) -> Status {
    YT_ASSIGN_OR_RETURN(etxn::Statement s, etxn::Statement::Sql(text));
    spec.statements.push_back(std::move(s));
    return Status::Ok();
  };

  // §D workload shapes (NoSocial / Social / Entangled).
  YT_RETURN_IF_ERROR(add(StrFormat(
      "SELECT @uid, @hometown FROM User WHERE uid=%u", me)));

  if (type == WorkloadType::kSocialT || type == WorkloadType::kSocialQ) {
    YT_RETURN_IF_ERROR(add(StrFormat(
        "SELECT uid2 FROM Friends, User u1, User u2 "
        "WHERE Friends.uid1=%u AND Friends.uid2=u2.uid AND u1.uid=%u "
        "AND u1.hometown=u2.hometown LIMIT 1",
        me, me)));
  }

  if (IsEntangled(type)) {
    YT_RETURN_IF_ERROR(add(StrFormat(
        "SELECT %u AS @uid, '%s' AS @destination, %lld INTO ANSWER Reserve "
        "WHERE (%u, %u) IN "
        "(SELECT uid1, uid2 FROM Friends, User u1, User u2 "
        " WHERE Friends.uid1=%u AND Friends.uid2=%u "
        " AND u1.uid=%u AND u2.uid=%u AND u1.hometown=u2.hometown) "
        "AND (%u, '%s', %lld) IN ANSWER Reserve "
        "CHOOSE 1",
        me, dest.c_str(), static_cast<long long>(trip), me, friend_id, me,
        friend_id, me, friend_id, friend_id, dest.c_str(),
        static_cast<long long>(trip))));
    YT_RETURN_IF_ERROR(add(
        "SELECT @fid FROM Flight WHERE source=@hometown "
        "AND destination=@destination LIMIT 1"));
  } else {
    YT_RETURN_IF_ERROR(add(StrFormat(
        "SELECT @fid FROM Flight WHERE source=@hometown "
        "AND destination='%s' LIMIT 1",
        dest.c_str())));
  }

  YT_RETURN_IF_ERROR(
      add("INSERT INTO Reserve (uid, fid) VALUES (@uid, @fid)"));
  return spec;
}

StatusOr<std::vector<etxn::EntangledTransactionSpec>>
WorkloadGenerator::Generate(WorkloadType type, size_t n,
                            int64_t timeout_micros) {
  std::vector<etxn::EntangledTransactionSpec> specs;
  if (IsEntangled(type)) {
    if (n % 2 != 0) ++n;
    specs.reserve(n);
    for (size_t i = 0; i < n; i += 2) {
      YT_ASSIGN_OR_RETURN(auto pair, NextStreamPair());
      auto [a, b] = pair;
      std::string dest = PickDest(data_->hometown_of(a));
      int64_t trip = next_trip_++;
      YT_ASSIGN_OR_RETURN(
          etxn::EntangledTransactionSpec sa,
          BookingSpec(type, a, b, dest, trip, timeout_micros,
                      StrFormat("%s-%zu-a", WorkloadTypeName(type), i)));
      YT_ASSIGN_OR_RETURN(
          etxn::EntangledTransactionSpec sb,
          BookingSpec(type, b, a, dest, trip, timeout_micros,
                      StrFormat("%s-%zu-b", WorkloadTypeName(type), i)));
      specs.push_back(std::move(sa));
      specs.push_back(std::move(sb));
    }
    return specs;
  }
  specs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t me = static_cast<uint32_t>(rng_.Index(data_->num_users()));
    std::string dest = PickDest(data_->hometown_of(me));
    YT_ASSIGN_OR_RETURN(
        etxn::EntangledTransactionSpec s,
        BookingSpec(type, me, 0, dest, next_trip_++, timeout_micros,
                    StrFormat("%s-%zu", WorkloadTypeName(type), i)));
    specs.push_back(std::move(s));
  }
  return specs;
}

StatusOr<std::vector<etxn::EntangledTransactionSpec>>
WorkloadGenerator::Loners(size_t p, int64_t timeout_micros) {
  const auto& pairs = data_->same_town_pairs();
  if (pairs.size() < p + 1) {
    return Status::InvalidArgument(
        "not enough same-town pairs to reserve " + std::to_string(p) +
        " loners");
  }
  reserved_loners_ = p;
  std::vector<etxn::EntangledTransactionSpec> specs;
  specs.reserve(p);
  for (size_t i = 0; i < p; ++i) {
    // Tail region of the pair list, disjoint from the streaming region.
    const auto& [a, b] = pairs[pairs.size() - 1 - i];
    std::string dest = PickDest(data_->hometown_of(a));
    YT_ASSIGN_OR_RETURN(etxn::EntangledTransactionSpec s,
                        BookingSpec(WorkloadType::kEntangledT, a, b, dest,
                                    next_trip_++, timeout_micros,
                                    StrFormat("Loner-%zu", i)));
    specs.push_back(std::move(s));
  }
  return specs;
}

StatusOr<std::vector<etxn::EntangledTransactionSpec>>
WorkloadGenerator::SpokeHubGroup(size_t k, size_t group_id,
                                 int64_t timeout_micros) {
  if (k < 2) return Status::InvalidArgument("spoke-hub needs k >= 2");
  std::vector<etxn::EntangledTransactionSpec> specs;
  etxn::EntangledTransactionSpec hub;
  hub.name = StrFormat("hub-%zu", group_id);
  hub.transactional = true;
  hub.timeout_micros = timeout_micros;
  for (size_t i = 1; i < k; ++i) {
    std::string h = StrFormat("h%zu", group_id);
    std::string s = StrFormat("s%zu_%zu", group_id, i);
    YT_ASSIGN_OR_RETURN(
        etxn::Statement hq,
        etxn::Statement::Sql(StrFormat(
            "SELECT '%s', '%s' INTO ANSWER Coord "
            "WHERE ('%s', '%s') IN ANSWER Coord CHOOSE 1",
            h.c_str(), s.c_str(), s.c_str(), h.c_str())));
    hub.statements.push_back(std::move(hq));

    etxn::EntangledTransactionSpec spoke;
    spoke.name = StrFormat("spoke-%zu-%zu", group_id, i);
    spoke.transactional = true;
    spoke.timeout_micros = timeout_micros;
    YT_ASSIGN_OR_RETURN(
        etxn::Statement sq,
        etxn::Statement::Sql(StrFormat(
            "SELECT '%s', '%s' INTO ANSWER Coord "
            "WHERE ('%s', '%s') IN ANSWER Coord CHOOSE 1",
            s.c_str(), h.c_str(), h.c_str(), s.c_str())));
    spoke.statements.push_back(std::move(sq));
    specs.push_back(std::move(spoke));
  }
  specs.push_back(std::move(hub));
  return specs;
}

StatusOr<std::vector<etxn::EntangledTransactionSpec>>
WorkloadGenerator::CycleGroup(size_t k, size_t group_id,
                              int64_t timeout_micros) {
  if (k < 2) return Status::InvalidArgument("cycle needs k >= 2");
  std::vector<etxn::EntangledTransactionSpec> specs;
  specs.reserve(k);
  for (size_t j = 0; j < k; ++j) {
    etxn::EntangledTransactionSpec spec;
    spec.name = StrFormat("cycle-%zu-%zu", group_id, j);
    spec.transactional = true;
    spec.timeout_micros = timeout_micros;
    for (const char* ring : {"A", "B"}) {
      std::string mine = StrFormat("c%s%zu_%zu", ring, group_id, j);
      std::string next = StrFormat("c%s%zu_%zu", ring, group_id,
                                   (j + 1) % k);
      YT_ASSIGN_OR_RETURN(
          etxn::Statement q,
          etxn::Statement::Sql(StrFormat(
              "SELECT '%s' INTO ANSWER Coord "
              "WHERE ('%s') IN ANSWER Coord CHOOSE 1",
              mine.c_str(), next.c_str())));
      spec.statements.push_back(std::move(q));
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace youtopia::workload
