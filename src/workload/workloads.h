#ifndef YOUTOPIA_WORKLOAD_WORKLOADS_H_
#define YOUTOPIA_WORKLOAD_WORKLOADS_H_

#include <vector>

#include "src/etxn/spec.h"
#include "src/workload/travel_data.h"

namespace youtopia::workload {

/// The six §5.2.2 workloads: travel-booking programs as transactions (-T)
/// or as bare statement sequences (-Q), with no social data, social lookups,
/// or entangled coordination.
enum class WorkloadType {
  kNoSocialT = 0,
  kSocialT,
  kEntangledT,
  kNoSocialQ,
  kSocialQ,
  kEntangledQ,
};

const char* WorkloadTypeName(WorkloadType t);
bool IsTransactional(WorkloadType t);
bool IsEntangled(WorkloadType t);

/// Generates §D-faithful program specs over a TravelData instance.
///
/// Entangled programs are produced in matched pairs (consecutive specs
/// coordinate with each other), reproducing the Figure 6(a) setup where
/// every transaction finds a partner within its batch. Loners() produces
/// partner-less entangled programs for the Figure 6(b) pending-transaction
/// experiment; their coordination values are disjoint from the paired
/// stream so they can never accidentally match.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const TravelData* data, uint64_t seed)
      : data_(data), rng_(seed) {}

  /// n specs of the given type (n rounded up to even for entangled types).
  StatusOr<std::vector<etxn::EntangledTransactionSpec>> Generate(
      WorkloadType type, size_t n, int64_t timeout_micros);

  /// p entangled programs whose partners never arrive (Fig 6(b)). Call
  /// before Generate so the pair spaces stay disjoint.
  StatusOr<std::vector<etxn::EntangledTransactionSpec>> Loners(
      size_t p, int64_t timeout_micros);

  /// Figure 6(c) Spoke-hub structure: one hub program with k-1 entangled
  /// queries plus k-1 single-query spoke programs (coordinating set size k).
  StatusOr<std::vector<etxn::EntangledTransactionSpec>> SpokeHubGroup(
      size_t k, size_t group_id, int64_t timeout_micros);

  /// Figure 6(c) Cyclic structure: k programs, each with 2 entangled
  /// queries; each query ring forms one cyclic entanglement of size k.
  StatusOr<std::vector<etxn::EntangledTransactionSpec>> CycleGroup(
      size_t k, size_t group_id, int64_t timeout_micros);

 private:
  /// `trip` is a per-pair nonce carried in the coordination tuple so that a
  /// user appearing in several pairs (or a pair instance repeated across
  /// batches) can only entangle with its intended partner — this enforces
  /// the paper's Fig 6(a) premise that every transaction coordinates within
  /// its own batch.
  StatusOr<etxn::EntangledTransactionSpec> BookingSpec(
      WorkloadType type, uint32_t me, uint32_t friend_id,
      const std::string& dest, int64_t trip, int64_t timeout_micros,
      const std::string& name);

  /// Next same-town pair from the streaming region (excludes loner pairs).
  StatusOr<std::pair<uint32_t, uint32_t>> NextStreamPair();
  /// Destination different from `hometown`.
  std::string PickDest(const std::string& hometown);

  const TravelData* data_;
  Rng rng_;
  size_t stream_cursor_ = 0;
  size_t reserved_loners_ = 0;
  int64_t next_trip_ = 1;
};

}  // namespace youtopia::workload

#endif  // YOUTOPIA_WORKLOAD_WORKLOADS_H_
