#ifndef YOUTOPIA_YOUTOPIA_H_
#define YOUTOPIA_YOUTOPIA_H_

/// Umbrella header for the Youtopia entangled-transactions library
/// (reproduction of Gupta et al., "Entangled Transactions", PVLDB 4(7),
/// 2011). Typical embedding:
///
///   Database db;
///   LockManager locks;
///   WalWriter wal;                       // optional durability
///   (void)wal.Open("youtopia.walog", {}, /*truncate=*/false);
///   TransactionManager tm(&db, &locks, &wal);
///
///   etxn::EngineOptions opts;            // connections, run frequency f...
///   etxn::EntangledTransactionEngine engine(&tm, opts);
///
///   auto spec = etxn::EntangledTransactionSpec::FromScript("Mickey", R"sql(
///     BEGIN TRANSACTION WITH TIMEOUT 2 DAYS;
///     SELECT 'Mickey', fno, fdate AS @ArrivalDay INTO ANSWER FlightRes
///     WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA')
///     AND ('Minnie', fno, fdate) IN ANSWER FlightRes CHOOSE 1;
///     INSERT INTO Bookings (name, ref) VALUES ('Mickey', @ArrivalDay);
///     COMMIT;
///   )sql");
///   auto handle = engine.Submit(std::move(spec).value());
///   Status result = handle->Wait();
///
/// See README.md for the architecture map and DESIGN.md for the paper
/// correspondence.

#include "src/common/clock.h"
#include "src/common/ids.h"
#include "src/common/row.h"
#include "src/common/schema.h"
#include "src/common/status.h"
#include "src/common/statusor.h"
#include "src/common/value.h"
#include "src/eq/compiler.h"
#include "src/eq/coordinator.h"
#include "src/eq/grounder.h"
#include "src/eq/ir.h"
#include "src/eq/safety.h"
#include "src/etxn/engine.h"
#include "src/etxn/handle.h"
#include "src/etxn/spec.h"
#include "src/isolation/checker.h"
#include "src/isolation/oracle.h"
#include "src/isolation/recorder.h"
#include "src/isolation/schedule.h"
#include "src/lock/lock_manager.h"
#include "src/sql/parser.h"
#include "src/sql/session.h"
#include "src/storage/database.h"
#include "src/txn/transaction_manager.h"
#include "src/wal/recovery.h"
#include "src/wal/wal_writer.h"
#include "src/workload/social_graph.h"
#include "src/workload/travel_data.h"
#include "src/workload/workloads.h"

#endif  // YOUTOPIA_YOUTOPIA_H_
