#include <gtest/gtest.h>

#include <set>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/common/schema.h"
#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/common/statusor.h"
#include "src/common/strings.h"
#include "src/common/thread_pool.h"
#include "src/common/value.h"
#include "tests/test_util.h"

namespace youtopia {
namespace {

TEST(StatusTest, OkAndErrorBasics) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status nf = Status::NotFound("table Foo");
  EXPECT_FALSE(nf.ok());
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_EQ(nf.ToString(), "NotFound: table Foo");
  EXPECT_EQ(nf.code(), StatusCode::kNotFound);
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::Aborted("boom"); };
  auto wrapper = [&]() -> Status {
    YT_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kAborted);
}

TEST(StatusOrTest, ValueAndError) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  StatusOr<int> e = Status::TimedOut("late");
  EXPECT_FALSE(e.ok());
  EXPECT_TRUE(e.status().IsTimedOut());
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto get = [](bool ok) -> StatusOr<std::string> {
    if (!ok) return Status::NotFound("nope");
    return std::string("yes");
  };
  auto use = [&](bool ok) -> StatusOr<size_t> {
    YT_ASSIGN_OR_RETURN(std::string s, get(ok));
    return s.size();
  };
  EXPECT_EQ(use(true).value(), 3u);
  EXPECT_EQ(use(false).status().code(), StatusCode::kNotFound);
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(7).as_int(), 7);
  EXPECT_EQ(Value::Str("hi").as_string(), "hi");
  EXPECT_DOUBLE_EQ(Value::Double(1.5).as_double(), 1.5);
  EXPECT_TRUE(Value::Bool(true).as_bool());
  EXPECT_EQ(Value::Int(7).type(), TypeId::kInt64);
}

TEST(ValueTest, CrossTypeNumericComparison) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.0).Compare(Value::Int(2)), 0);
  // Hash consistency for equal cross-type numerics.
  EXPECT_EQ(Value::Int(2).Hash(), Value::Double(2.0).Hash());
}

TEST(ValueTest, TotalOrderAcrossTypes) {
  // NULL < BOOL < numeric < string.
  EXPECT_LT(Value::Null(), Value::Bool(false));
  EXPECT_LT(Value::Bool(true), Value::Int(0));
  EXPECT_LT(Value::Int(999), Value::Str(""));
}

TEST(ValueTest, Arithmetic) {
  EXPECT_EQ(Value::Add(Value::Int(2), Value::Int(3)).value(), Value::Int(5));
  EXPECT_EQ(Value::Sub(Value::Int(506), Value::Int(503)).value(),
            Value::Int(3));
  EXPECT_EQ(Value::Mul(Value::Int(4), Value::Double(0.5)).value(),
            Value::Double(2.0));
  EXPECT_EQ(Value::Div(Value::Int(9), Value::Int(3)).value(), Value::Int(3));
  EXPECT_FALSE(Value::Div(Value::Int(1), Value::Int(0)).ok());
  EXPECT_EQ(Value::Add(Value::Str("a"), Value::Str("b")).value(),
            Value::Str("ab"));
  EXPECT_TRUE(Value::Add(Value::Null(), Value::Int(1)).value().is_null());
  EXPECT_FALSE(Value::Sub(Value::Str("a"), Value::Int(1)).ok());
}

TEST(ValueTest, Coercion) {
  EXPECT_EQ(Value::Str("42").CoerceTo(TypeId::kInt64).value(), Value::Int(42));
  EXPECT_EQ(Value::Int(1).CoerceTo(TypeId::kString).value(), Value::Str("1"));
  EXPECT_EQ(Value::Double(3.0).CoerceTo(TypeId::kInt64).value(),
            Value::Int(3));
  EXPECT_FALSE(Value::Double(3.5).CoerceTo(TypeId::kInt64).ok());
  EXPECT_FALSE(Value::Str("xyz").CoerceTo(TypeId::kInt64).ok());
  EXPECT_TRUE(Value::Null().CoerceTo(TypeId::kInt64).value().is_null());
}

TEST(ValueTest, TruthinessFollowsSqlishCoercion) {
  EXPECT_FALSE(Value::Null().Truthy());
  EXPECT_FALSE(Value::Bool(false).Truthy());
  EXPECT_FALSE(Value::Int(0).Truthy());
  EXPECT_TRUE(Value::Int(-1).Truthy());
  EXPECT_TRUE(Value::Str("x").Truthy());
  EXPECT_FALSE(Value::Str("").Truthy());
}

TEST(TypeTest, ParseNames) {
  EXPECT_EQ(TypeFromName("INT").value(), TypeId::kInt64);
  EXPECT_EQ(TypeFromName("bigint").value(), TypeId::kInt64);
  EXPECT_EQ(TypeFromName("VarChar").value(), TypeId::kString);
  EXPECT_EQ(TypeFromName("DOUBLE").value(), TypeId::kDouble);
  EXPECT_EQ(TypeFromName("BOOLEAN").value(), TypeId::kBool);
  EXPECT_FALSE(TypeFromName("BLOB").ok());
}

TEST(SchemaTest, IndexOfIsCaseInsensitive) {
  Schema s({{"Uid", TypeId::kInt64}, {"Hometown", TypeId::kString}});
  EXPECT_EQ(s.IndexOf("uid").value(), 0u);
  EXPECT_EQ(s.IndexOf("HOMETOWN").value(), 1u);
  EXPECT_FALSE(s.IndexOf("nope").ok());
  EXPECT_TRUE(s.HasColumn("hometown"));
  EXPECT_EQ(s.ToString(), "(Uid INT, Hometown VARCHAR)");
}

TEST(RowTest, CompareAndHash) {
  Row a({Value::Int(1), Value::Str("x")});
  Row b({Value::Int(1), Value::Str("x")});
  Row c({Value::Int(1), Value::Str("y")});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);
  EXPECT_LT(a.Compare(c), 0);
  EXPECT_EQ(Row::Concat(a, c).size(), 4u);
}

TEST(StringsTest, Helpers) {
  EXPECT_EQ(ToUpper("aBc"), "ABC");
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Split("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(Trim("  x \n"), "x");
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(SerdeTest, RoundTripValuesAndRows) {
  std::vector<Value> vals = {Value::Null(), Value::Bool(true), Value::Int(-5),
                             Value::Double(2.25), Value::Str("hello")};
  for (const Value& v : vals) {
    std::string buf;
    EncodeValue(&buf, v);
    const char* p = buf.data();
    Value out;
    ASSERT_OK(DecodeValue(&p, buf.data() + buf.size(), &out));
    EXPECT_EQ(out, v) << v.ToString();
  }
  Row row({Value::Int(1), Value::Str("two"), Value::Double(3.0)});
  std::string buf;
  EncodeRow(&buf, row);
  const char* p = buf.data();
  Row out;
  ASSERT_OK(DecodeRow(&p, buf.data() + buf.size(), &out));
  EXPECT_EQ(out, row);
}

TEST(SerdeTest, TruncationIsCorruptionNotCrash) {
  std::string buf;
  EncodeRow(&buf, Row({Value::Str("abcdefgh")}));
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string part = buf.substr(0, cut);
    const char* p = part.data();
    Row out;
    Status s = DecodeRow(&p, part.data() + part.size(), &out);
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kCorruption);
  }
}

TEST(SerdeTest, Crc32KnownVector) {
  // CRC32 of "123456789" is the classic check value 0xCBF43926.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  std::vector<int64_t> va, vb, vc;
  for (int i = 0; i < 32; ++i) {
    va.push_back(a.Uniform(0, 1000));
    vb.push_back(b.Uniform(0, 1000));
    vc.push_back(c.Uniform(0, 1000));
  }
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(RngTest, BoundsRespected) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Uniform(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
    size_t z = r.Zipf(10, 0.9);
    EXPECT_LT(z, 10u);
  }
}

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.SleepMicros(25);  // sleeping advances virtual time
  EXPECT_EQ(clock.NowMicros(), 175);
  Stopwatch sw(&clock);
  clock.Advance(1000);
  EXPECT_EQ(sw.ElapsedMicros(), 1000);
}

TEST(ThreadPoolTest, RunsAllTasksAndWaits) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, TasksMayBlockEachOtherAcrossThreads) {
  // A parked task (like a blocked entangled query) must not prevent another
  // thread from running the task that unblocks it.
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool go = false;
  bool parked_done = false;
  pool.Submit([&] {
    std::unique_lock<std::mutex> l(mu);
    cv.wait(l, [&] { return go; });
    parked_done = true;
  });
  pool.Submit([&] {
    std::lock_guard<std::mutex> g(mu);
    go = true;
    cv.notify_all();
  });
  pool.Wait();
  EXPECT_TRUE(parked_done);
}

}  // namespace
}  // namespace youtopia
